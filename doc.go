// Package kylix is a sparse allreduce for commodity clusters: a Go
// implementation of "Kylix: A Sparse Allreduce for Commodity Clusters"
// (Zhao & Canny, ICPP 2014).
//
// In a sparse allreduce, every machine i of an m-machine cluster
// declares a set of in-indices (the features it wants reduced values
// for) and a set of out-indices with values (its contribution). Kylix
// routes the contributions down a nested, heterogeneous-degree butterfly
// network — scatter-reducing at every layer — and gathers the fully
// reduced values back up, delivering to each machine exactly the values
// it asked for. For the power-law data that dominates "Big Data"
// workloads, per-layer traffic shrinks geometrically (the "Kylix"
// profile), and layer degrees can be tuned so that every packet stays
// above the network's minimum efficient size — the failure mode that
// caps direct all-to-all designs.
//
// Quickstart (in-process cluster):
//
//	cluster, _ := kylix.NewCluster(8, kylix.WithDegrees(4, 2))
//	defer cluster.Close()
//	err := cluster.Run(func(node *kylix.Node) error {
//	    in := []int32{1, 2, 3}           // indices this node wants back
//	    out := []int32{2, 3, 4}          // indices this node contributes
//	    vals := []float32{1, 1, 1}       // one value per out index
//	    red, err := node.Configure(in, out)
//	    if err != nil {
//	        return err
//	    }
//	    got, err := red.Reduce(vals)     // got[i] = global sum for in[i]
//	    ...
//	})
//
// The same Node API runs over real TCP sockets (see ListenNode and
// cmd/kylix-node) and supports replication-based fault tolerance
// (WithReplication), pluggable reducers (sum, max, min, bitwise-or),
// multi-value features (WithWidth), fused configure+reduce for minibatch
// workloads whose index sets change every round, and derived tag-channel
// networks (Node.Channel) so several independent reductions — say an
// OR-reduce sketch network plus a sum-reduce convergence counter — can
// interleave over one cluster.
//
// DesignDegrees implements the paper's §IV workflow for choosing optimal
// layer degrees from the data's power-law statistics, and the repository
// regenerates every table and figure of the paper's evaluation (see
// EXPERIMENTS.md and cmd/kylix-bench).
package kylix
