package kylix_test

import (
	"math"
	"sync"
	"testing"
	"time"

	"kylix"
)

// The chaos soak is the acceptance test for the fault fabric: an s=2
// replicated 16-machine cluster runs multi-round allreduces while a
// seeded schedule drops, duplicates, delays and reorders messages and
// crash-stops one replica mid-round, every round — and every surviving
// machine's results must be bit-identical to a fault-free run. Faults
// are confined to the upper replica half, the regime the paper's §V
// replication guarantees to survive (each group keeps its lower
// survivor).

const (
	soakPhys    = 16
	soakLogical = 8
	soakRounds  = 6
)

var soakVictims = []int{9, 11, 13, 15, 10} // killed mid-round in rounds 1..5

func soakOpts(transport kylix.Transport, plan kylix.FaultPlan) []kylix.Option {
	return []kylix.Option{
		kylix.WithTransport(transport),
		kylix.WithReplication(2),
		kylix.WithDegrees(4, 2),
		kylix.WithRecvTimeout(15 * time.Second),
		kylix.WithFaults(plan),
	}
}

// soakRound is one allreduce: logical rank q contributes round- and
// rank-dependent non-trivial floats to two shared features and one
// private feature, and gathers the shared ones plus a neighbour's
// private feature. Bit-exactness of the results is meaningful because
// float addition order matters and the protocol fixes it.
func soakRound(node *kylix.Node, round int) ([]float32, error) {
	q := node.Rank()
	neighbour := int32(100 + (q+1)%soakLogical)
	out := []int32{0, 1, int32(100 + q)}
	in := []int32{0, 1, neighbour}
	red, err := node.Configure(in, out)
	if err != nil {
		return nil, err
	}
	vals := []float32{
		float32(q+1) * 0.1 * float32(round+1),
		1.0 / float32(q+2),
		float32(q*100 + round),
	}
	return red.Reduce(vals)
}

// runSoak runs `rounds` rounds on a fresh cluster, returning per-round
// per-physical-rank results (nil entries for crash-stopped machines)
// and the cumulative per-rank fabric send counts after each round (the
// logical clock kill schedules are written against).
func runSoak(t *testing.T, transport kylix.Transport, plan kylix.FaultPlan, rounds int) (results [][][]float32, snaps [][]int64, cluster *kylix.Cluster) {
	t.Helper()
	cluster, err := kylix.NewCluster(soakPhys, soakOpts(transport, plan)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cluster.Close() })
	fab := cluster.Faults()
	for r := 0; r < rounds; r++ {
		res := make([][]float32, soakPhys)
		var mu sync.Mutex
		err := cluster.Run(func(node *kylix.Node) error {
			v, err := soakRound(node, r)
			if err != nil {
				return err
			}
			mu.Lock()
			res[node.PhysicalRank()] = v
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("%v round %d: %v", transport, r, err)
		}
		snap := make([]int64, soakPhys)
		for p := 0; p < soakPhys; p++ {
			snap[p] = fab.Sends(p)
		}
		results = append(results, res)
		snaps = append(snaps, snap)
	}
	return results, snaps, cluster
}

func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

func testChaosSoak(t *testing.T, transport kylix.Transport) {
	// Pass 1 — fault-free probe: establishes the ground-truth results
	// and measures each rank's per-round send counts, which are
	// identical in the chaos pass (counting precedes fault decisions).
	baseline, snaps, _ := runSoak(t, transport, kylix.FaultPlan{Seed: 42}, soakRounds)
	for r := 0; r < soakRounds; r++ {
		for p := 0; p < soakPhys; p++ {
			if baseline[r][p] == nil {
				t.Fatalf("baseline round %d rank %d produced no result", r, p)
			}
			if tw := baseline[r][p%soakLogical]; !bitsEqual(baseline[r][p], tw) {
				t.Fatalf("baseline round %d: replicas of logical %d disagree", r, p%soakLogical)
			}
		}
	}

	// Schedule each kill halfway through its round's send window so the
	// victim dies mid-scatter, not between rounds.
	kills := make([]kylix.FaultKill, len(soakVictims))
	for i, v := range soakVictims {
		r := i + 1
		prev, cur := snaps[r-1][v], snaps[r][v]
		if cur-prev < 2 {
			t.Fatalf("victim %d sends only %d frames in round %d; cannot land a mid-round kill", v, cur-prev, r)
		}
		kills[i] = kylix.FaultKill{Rank: v, AfterSends: int(prev + (cur-prev)/2)}
	}
	plan := kylix.FaultPlan{
		Seed:      42,
		Faulty:    []int{8, 9, 10, 11, 12, 13, 14, 15}, // upper replicas only: §V's survivable regime
		Drop:      0.10,
		Duplicate: 0.15,
		Delay:     0.25,
		MaxDelay:  2 * time.Millisecond,
		Reorder:   0.08,
		Kills:     kills,
	}

	// Pass 2 — chaos: same workload under the full fault schedule.
	chaos, _, cluster := runSoak(t, transport, plan, soakRounds)
	fab := cluster.Faults()

	deadAsOf := map[int]int{} // victim -> round it dies in
	for i, v := range soakVictims {
		deadAsOf[v] = i + 1
	}
	for r := 0; r < soakRounds; r++ {
		for p := 0; p < soakPhys; p++ {
			dieRound, dies := deadAsOf[p]
			if dies && r >= dieRound {
				if chaos[r][p] != nil && r > dieRound {
					t.Fatalf("round %d: rank %d produced a result after dying in round %d", r, p, dieRound)
				}
				continue
			}
			if chaos[r][p] == nil {
				t.Fatalf("round %d: surviving rank %d produced no result", r, p)
			}
			if !bitsEqual(chaos[r][p], baseline[r][p]) {
				t.Fatalf("round %d rank %d: chaos result %v differs from fault-free %v",
					r, p, chaos[r][p], baseline[r][p])
			}
		}
	}

	// The schedule must actually have fired: every victim dead at its
	// exact send threshold, and every message-level fault class engaged.
	for i, v := range soakVictims {
		if !fab.Killed(v) {
			t.Fatalf("victim %d was never killed", v)
		}
		if got := fab.Sends(v); got != int64(kills[i].AfterSends)+1 {
			t.Fatalf("victim %d attempted %d sends, want crash on attempt %d", v, got, kills[i].AfterSends+1)
		}
	}
	st := fab.Stats()
	if st.Dropped == 0 || st.Duplicated == 0 || st.Delayed == 0 || st.Reordered == 0 {
		t.Fatalf("chaos schedule never engaged: %+v", st)
	}
	t.Logf("%v soak: %d rounds, %d kills, stats %+v", transport, soakRounds, len(soakVictims), st)
}

// reconfigRound is one round of the evolving-sets soak: rank q's sets
// gain a fresh shared feature every other round (so the incremental
// pass sees changed and unchanged generations alike), and the values
// are round- and rank-dependent non-trivial floats.
func reconfigRound(q, round int) (in, out []int32, vals []float32) {
	neighbour := int32(100 + (q+1)%soakLogical)
	shared := int32(200 + round/2)
	out = []int32{0, 1, int32(100 + q), shared}
	in = []int32{0, 1, neighbour, shared}
	vals = []float32{
		float32(q+1) * 0.1 * float32(round+1),
		1.0 / float32(q+2),
		float32(q*100 + round),
		float32(q+3) / float32(round+2),
	}
	return in, out, vals
}

// runReconfigSoak drives soakRounds evolving-set rounds over one
// long-lived Reduction per node — Configure once, then Reconfigure
// every round — and returns each physical rank's per-round config
// digest and reduced values.
func runReconfigSoak(t *testing.T, transport kylix.Transport, plan kylix.FaultPlan) (digests [][]uint64, results [][][]float32) {
	t.Helper()
	cluster, err := kylix.NewCluster(soakPhys, soakOpts(transport, plan)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cluster.Close() })
	digests = make([][]uint64, soakRounds)
	results = make([][][]float32, soakRounds)
	for r := range digests {
		digests[r] = make([]uint64, soakPhys)
		results[r] = make([][]float32, soakPhys)
	}
	var mu sync.Mutex
	err = cluster.Run(func(node *kylix.Node) error {
		p := node.PhysicalRank()
		q := node.Rank()
		var red *kylix.Reduction
		for r := 0; r < soakRounds; r++ {
			in, out, vals := reconfigRound(q, r)
			var err error
			if red == nil {
				red, err = node.Configure(in, out)
			} else {
				err = red.Reconfigure(in, out)
			}
			if err != nil {
				return err
			}
			res, err := red.Reduce(vals)
			if err != nil {
				return err
			}
			mu.Lock()
			digests[r][p] = red.ConfigDigest()
			results[r][p] = res
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%v reconfigure soak: %v", transport, err)
	}
	return digests, results
}

// testReconfigureChaosSoak proves incremental reconfiguration is
// fault-transparent: a cluster whose sets evolve every round under
// message drops, duplicates, delays and reordering must end every round
// with routing state (config digest) and reduced values bit-identical
// to a fault-free run of the same schedule.
func testReconfigureChaosSoak(t *testing.T, transport kylix.Transport) {
	baseline, baseRes := runReconfigSoak(t, transport, kylix.FaultPlan{Seed: 53})
	plan := kylix.FaultPlan{
		Seed:      53,
		Faulty:    []int{8, 9, 10, 11, 12, 13, 14, 15}, // upper replicas: §V's survivable regime
		Drop:      0.10,
		Duplicate: 0.15,
		Delay:     0.25,
		MaxDelay:  2 * time.Millisecond,
		Reorder:   0.08,
	}
	chaos, chaosRes := runReconfigSoak(t, transport, plan)
	for r := 0; r < soakRounds; r++ {
		for p := 0; p < soakPhys; p++ {
			if chaos[r][p] != baseline[r][p] {
				t.Errorf("round %d rank %d: chaos config digest %#x differs from fault-free %#x",
					r, p, chaos[r][p], baseline[r][p])
			}
			if !bitsEqual(chaosRes[r][p], baseRes[r][p]) {
				t.Errorf("round %d rank %d: chaos reduce %v differs from fault-free %v",
					r, p, chaosRes[r][p], baseRes[r][p])
			}
		}
		// Replicas of one logical rank must also agree with each other.
		for p := soakLogical; p < soakPhys; p++ {
			if chaos[r][p] != chaos[r][p-soakLogical] {
				t.Errorf("round %d: replica digests of logical %d disagree", r, p-soakLogical)
			}
		}
	}
}

func TestReconfigureChaosSoakMemory(t *testing.T) { testReconfigureChaosSoak(t, kylix.TransportMemory) }

func TestReconfigureChaosSoakTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP soak skipped in -short")
	}
	testReconfigureChaosSoak(t, kylix.TransportTCP)
}

func TestChaosSoakMemory(t *testing.T) { testChaosSoak(t, kylix.TransportMemory) }

func TestChaosSoakTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP soak skipped in -short")
	}
	testChaosSoak(t, kylix.TransportTCP)
}

// TestClusterKillWorksOnTCPWithFaults: Cluster.Kill historically
// required the memory transport; with a fault fabric it now works over
// TCP too (manual kill between rounds, survivors keep the results).
func TestClusterKillWorksOnTCPWithFaults(t *testing.T) {
	cluster, err := kylix.NewCluster(8, kylix.WithTransport(kylix.TransportTCP),
		kylix.WithReplication(2), kylix.WithDegrees(2, 2),
		kylix.WithRecvTimeout(10*time.Second),
		kylix.WithFaults(kylix.FaultPlan{Seed: 7}))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Kill(5); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := map[int]float32{}
	err = cluster.Run(func(node *kylix.Node) error {
		red, err := node.Configure([]int32{3}, []int32{3})
		if err != nil {
			return err
		}
		res, err := red.Reduce([]float32{2})
		if err != nil {
			return err
		}
		mu.Lock()
		got[node.PhysicalRank()] = res[0]
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("%d survivors finished, want 7", len(got))
	}
	for p, v := range got {
		if v != 8 { // 4 logical ranks x 2
			t.Fatalf("rank %d: %f, want 8", p, v)
		}
	}
}
