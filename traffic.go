package kylix

import (
	"fmt"
	"strings"

	"kylix/internal/comm"
	"kylix/internal/netsim"
	"kylix/internal/trace"
)

// Phase identifies which protocol pass a traffic row belongs to.
type Phase string

// Protocol phases.
const (
	PhaseConfig       Phase = "config"
	PhaseReduce       Phase = "reduce"
	PhaseGather       Phase = "gather"
	PhaseConfigReduce Phase = "config+reduce"
	PhaseApplication  Phase = "app"
)

// LayerTraffic is one (phase, layer) cell of recorded traffic.
type LayerTraffic struct {
	Phase Phase
	Layer int
	// Msgs and Bytes include self-sends, the paper's Figure 5
	// convention; WireBytes excludes them.
	Msgs      int64
	Bytes     int64
	WireBytes int64
	// RawBytes is what the same messages would have cost in the
	// uncompressed wire format (8 bytes per index key, 4 bytes per
	// float32 value); the ratio RawBytes/Bytes is the codec's
	// compression factor at this layer — the index codec's for config
	// phases, the value codec's for value-only phases (which equal
	// Bytes only when WithQuantization is off).
	RawBytes int64
	// MaxNodeRecvBytes is the heaviest single receiver's byte volume in
	// this layer — the fan-in hotspot the cost model's incast term
	// penalizes.
	MaxNodeRecvBytes int64
	// ModelSec is the layer's modelled duration on the paper's EC2
	// cluster.
	ModelSec float64
}

// TrafficReport summarizes recorded traffic and its modelled timing.
type TrafficReport struct {
	Layers []LayerTraffic
	// ConfigSec / ReduceSec are the modelled phase times of Figure 6 and
	// Table I (reduce includes the gather pass).
	ConfigSec float64
	ReduceSec float64
}

// TotalSec is the modelled end-to-end allreduce time.
func (r *TrafficReport) TotalSec() float64 { return r.ConfigSec + r.ReduceSec }

// TotalBytes sums traffic (self included) over all layers, optionally
// filtered by phase ("" = all).
func (r *TrafficReport) TotalBytes(phase Phase) int64 {
	var total int64
	for _, lt := range r.Layers {
		if phase == "" || lt.Phase == phase {
			total += lt.Bytes
		}
	}
	return total
}

// TotalRawBytes is TotalBytes for the uncompressed-equivalent volume:
// what the same traffic would have cost before the compressed index
// wire format and (when quantization is on) the value codec.
func (r *TrafficReport) TotalRawBytes(phase Phase) int64 {
	var total int64
	for _, lt := range r.Layers {
		if phase == "" || lt.Phase == phase {
			total += lt.RawBytes
		}
	}
	return total
}

// String renders a per-layer table.
func (r *TrafficReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %5s %12s %14s %14s %14s %14s %6s %10s\n", "phase", "layer", "msgs", "bytes", "rawBytes", "wireBytes", "maxRecvBytes", "x", "modelSec")
	for _, lt := range r.Layers {
		ratio := 1.0
		if lt.Bytes > 0 {
			ratio = float64(lt.RawBytes) / float64(lt.Bytes)
		}
		fmt.Fprintf(&b, "%-14s %5d %12d %14d %14d %14d %14d %6.2f %10.4f\n",
			lt.Phase, lt.Layer, lt.Msgs, lt.Bytes, lt.RawBytes, lt.WireBytes, lt.MaxNodeRecvBytes, ratio, lt.ModelSec)
	}
	fmt.Fprintf(&b, "modelled: config %.4fs, reduce %.4fs\n", r.ConfigSec, r.ReduceSec)
	return b.String()
}

func phaseOf(kind comm.Kind) Phase {
	switch kind {
	case comm.KindConfig:
		return PhaseConfig
	case comm.KindReduce:
		return PhaseReduce
	case comm.KindGather:
		return PhaseGather
	case comm.KindConfigReduce:
		return PhaseConfigReduce
	default:
		return PhaseApplication
	}
}

func buildTrafficReport(col *trace.Collector, model netsim.Model, threads int) *TrafficReport {
	rep := netsim.Estimate(col, model, threads)
	out := &TrafficReport{ConfigSec: rep.ConfigSec, ReduceSec: rep.ReduceSec}
	// Join the raw layer volumes with the modelled times (both are
	// sorted by kind then layer).
	raw := col.Layers()
	for i, lt := range raw {
		row := LayerTraffic{
			Phase: phaseOf(lt.Kind), Layer: lt.Layer,
			Msgs: lt.Msgs, Bytes: lt.Bytes, WireBytes: lt.Bytes - lt.SelfBytes, RawBytes: lt.RawBytes,
			MaxNodeRecvBytes: lt.MaxNodeRecvBytes,
		}
		if i < len(rep.Layers) {
			row.ModelSec = rep.Layers[i].Seconds
		}
		out.Layers = append(out.Layers, row)
	}
	return out
}
