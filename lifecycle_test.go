package kylix_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kylix"
	"kylix/internal/leakcheck"
)

// TestClusterCloseIdempotent pins the satellite-3 contract: Close may
// be called any number of times, from any goroutine, without blocking
// or double-teardown.
func TestClusterCloseIdempotent(t *testing.T) {
	defer leakcheck.Check(t)()
	c, err := kylix.NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); c.Close() }()
	}
	wg.Wait()
	c.Close() // and once more after everyone
	if err := c.Run(func(n *kylix.Node) error { return nil }); !errors.Is(err, kylix.ErrClusterClosed) {
		t.Fatalf("Run after Close = %v, want ErrClusterClosed", err)
	}
	if _, err := c.OpenStream(); !errors.Is(err, kylix.ErrClusterClosed) {
		t.Fatalf("OpenStream after Close = %v, want ErrClusterClosed", err)
	}
}

// TestClusterCloseRaceHammer drives Cluster.Run and Stream.Run from
// many goroutines while several others call Close concurrently — the
// regression test for the lifecycle races Close used to have (teardown
// yanking transports out from under an in-flight pass). Run under
// -race by scripts/check.sh. A pass either completes cleanly (it
// entered before the drain gate shut) or fails with ErrClusterClosed;
// the drain guarantee means no pass observes a half-torn-down fabric.
func TestClusterCloseRaceHammer(t *testing.T) {
	defer leakcheck.Check(t)()
	for iter := 0; iter < 5; iter++ {
		c, err := kylix.NewCluster(8, kylix.WithDegrees(4, 2),
			kylix.WithRecvTimeout(10*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		st, err := c.OpenStream()
		if err != nil {
			t.Fatal(err)
		}
		var completed atomic.Int64
		var wg sync.WaitGroup
		runner := func(run func(func(*kylix.Node) error) error) {
			defer wg.Done()
			for {
				err := run(func(n *kylix.Node) error {
					set := []int32{int32(n.Rank()), int32(n.Rank()+1) % 8}
					_, _, err := n.ConfigureReduce(set, set, []float32{1, 2})
					return err
				})
				if err == nil {
					completed.Add(1)
					continue
				}
				if errors.Is(err, kylix.ErrClusterClosed) || errors.Is(err, kylix.ErrStreamClosed) {
					return
				}
				var busy *kylix.StreamBusyError
				if errors.As(err, &busy) {
					continue
				}
				t.Errorf("iter %d: pass failed mid-close with %v", iter, err)
				return
			}
		}
		wg.Add(2)
		go runner(c.Run)
		go runner(st.Run)
		time.Sleep(time.Duration(1+iter) * time.Millisecond)
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); c.Close() }()
		}
		wg.Wait()
		if completed.Load() == 0 && iter > 0 {
			t.Logf("iter %d: close won before any pass completed", iter)
		}
	}
}
