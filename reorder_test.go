package kylix_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"kylix"
)

// Delivery-order permutation property: the reduction hot path takes
// pieces in arrival order but folds them in canonical member order, so
// an adversarially delayed/duplicated/reordered delivery schedule must
// produce results bit-identical to an undisturbed run. Unlike the chaos
// soak (which reconfigures every round), this drives the
// configure-once/reduce-many path, so the same scratch-arena
// generations are recycled across rounds while deliveries arrive
// permuted.
//
// Two regimes per transport and seed:
//   - unreplicated: per-link Delay scrambles cross-sender arrival order
//     (the order RecvGroup observes) plus Duplicate; Reorder must stay
//     off because a parked message with no successor on its link would
//     deadlock an unreplicated cluster (the soak's §V caveat).
//   - replicated: adds true per-link Reorder, confined to the upper
//     replica half so every receiver still gets a clean copy.

const permRounds = 5

type permRegime struct {
	name    string
	phys    int
	logical int
	opts    []kylix.Option
	chaos   kylix.FaultPlan
}

func permRegimes(seed int64) []permRegime {
	return []permRegime{
		{
			name: "delay", phys: 8, logical: 8,
			chaos: kylix.FaultPlan{
				Seed:      seed,
				Delay:     0.50,
				MaxDelay:  2 * time.Millisecond,
				Duplicate: 0.25,
			},
		},
		{
			name: "reorder", phys: 16, logical: 8,
			opts: []kylix.Option{kylix.WithReplication(2)},
			chaos: kylix.FaultPlan{
				Seed:      seed,
				Faulty:    []int{8, 9, 10, 11, 12, 13, 14, 15},
				Reorder:   0.40,
				Delay:     0.30,
				MaxDelay:  2 * time.Millisecond,
				Duplicate: 0.20,
			},
		},
	}
}

// runPermuted runs permRounds reductions over one Reduction per node
// under the given fault plan and returns results[physRank][round].
func runPermuted(t *testing.T, transport kylix.Transport, rg permRegime, plan kylix.FaultPlan) ([][][]float32, *kylix.FaultInjector) {
	t.Helper()
	opts := append([]kylix.Option{
		kylix.WithTransport(transport),
		kylix.WithDegrees(4, 2),
		kylix.WithWidth(2),
		kylix.WithRecvTimeout(15 * time.Second),
		kylix.WithFaults(plan),
	}, rg.opts...)
	cluster, err := kylix.NewCluster(rg.phys, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	results := make([][][]float32, rg.phys)
	var mu sync.Mutex
	err = cluster.Run(func(node *kylix.Node) error {
		q := node.Rank()
		// Two features shared by everyone plus one private feature that a
		// neighbour gathers: collisions make the float fold order matter,
		// which is what bit-exactness is a property of.
		out := []int32{0, 1, int32(100 + q)}
		in := []int32{0, 1, int32(100 + (q+1)%rg.logical)}
		red, err := node.Configure(in, out)
		if err != nil {
			return err
		}
		var mine [][]float32
		for r := 0; r < permRounds; r++ {
			vals := []float32{
				float32(q+1) * 0.1 * float32(r+1), 1.0 / float32(q+2+r),
				1.0 / float32(q*3+r+1), float32(q*100+r) * 0.01,
				float32(q) - 0.5*float32(r), float32(r+1) * 0.3,
			}
			res, err := red.Reduce(vals)
			if err != nil {
				return fmt.Errorf("round %d: %w", r, err)
			}
			mine = append(mine, res)
		}
		mu.Lock()
		results[node.PhysicalRank()] = mine
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results, cluster.Faults()
}

func testDeliveryPermutation(t *testing.T, transport kylix.Transport) {
	for _, seed := range []int64{1, 7, 99} {
		for _, rg := range permRegimes(seed) {
			t.Run(fmt.Sprintf("%s/seed%d", rg.name, seed), func(t *testing.T) {
				clean, _ := runPermuted(t, transport, rg, kylix.FaultPlan{Seed: seed})
				chaos, fab := runPermuted(t, transport, rg, rg.chaos)
				st := fab.Stats()
				if st.Delayed == 0 || st.Duplicated == 0 {
					t.Fatalf("permutation schedule never engaged: %+v", st)
				}
				if rg.chaos.Reorder > 0 && st.Reordered == 0 {
					t.Fatalf("reorder schedule never engaged: %+v", st)
				}
				for p := 0; p < rg.phys; p++ {
					for r := 0; r < permRounds; r++ {
						if !bitsEqual(chaos[p][r], clean[p][r]) {
							t.Fatalf("rank %d round %d: permuted delivery gave %v, in-order gave %v",
								p, r, chaos[p][r], clean[p][r])
						}
					}
				}
			})
		}
	}
}

func TestDeliveryPermutationMemory(t *testing.T) { testDeliveryPermutation(t, kylix.TransportMemory) }

func TestDeliveryPermutationTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP permutation property skipped in -short")
	}
	testDeliveryPermutation(t, kylix.TransportTCP)
}
