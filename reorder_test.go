package kylix_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"kylix"
)

// Delivery-order permutation property: the reduction hot path takes
// pieces in arrival order but folds them in canonical member order, so
// an adversarially delayed/duplicated/reordered delivery schedule must
// produce results bit-identical to an undisturbed run. Unlike the chaos
// soak (which reconfigures every round), this drives the
// configure-once/reduce-many path, so the same scratch-arena
// generations are recycled across rounds while deliveries arrive
// permuted.
//
// Two regimes per transport and seed:
//   - unreplicated: per-link Delay scrambles cross-sender arrival order
//     (the order RecvGroup observes) plus Duplicate; Reorder must stay
//     off because a parked message with no successor on its link would
//     deadlock an unreplicated cluster (the soak's §V caveat).
//   - replicated: adds true per-link Reorder, confined to the upper
//     replica half so every receiver still gets a clean copy.

const permRounds = 5

type permRegime struct {
	name    string
	phys    int
	logical int
	opts    []kylix.Option
	chaos   kylix.FaultPlan
}

func permRegimes(seed int64) []permRegime {
	return []permRegime{
		{
			name: "delay", phys: 8, logical: 8,
			chaos: kylix.FaultPlan{
				Seed:      seed,
				Delay:     0.50,
				MaxDelay:  2 * time.Millisecond,
				Duplicate: 0.25,
			},
		},
		{
			name: "reorder", phys: 16, logical: 8,
			opts: []kylix.Option{kylix.WithReplication(2)},
			chaos: kylix.FaultPlan{
				Seed:      seed,
				Faulty:    []int{8, 9, 10, 11, 12, 13, 14, 15},
				Reorder:   0.40,
				Delay:     0.30,
				MaxDelay:  2 * time.Millisecond,
				Duplicate: 0.20,
			},
		},
	}
}

// runPermuted runs permRounds reductions over one Reduction per node
// under the given fault plan and returns results[physRank][round].
func runPermuted(t *testing.T, transport kylix.Transport, rg permRegime, plan kylix.FaultPlan) ([][][]float32, *kylix.FaultInjector) {
	t.Helper()
	opts := append([]kylix.Option{
		kylix.WithTransport(transport),
		kylix.WithDegrees(4, 2),
		kylix.WithWidth(2),
		kylix.WithRecvTimeout(15 * time.Second),
		kylix.WithFaults(plan),
	}, rg.opts...)
	cluster, err := kylix.NewCluster(rg.phys, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cluster.Close() })
	results := make([][][]float32, rg.phys)
	var mu sync.Mutex
	err = cluster.Run(func(node *kylix.Node) error {
		q := node.Rank()
		// Two features shared by everyone plus one private feature that a
		// neighbour gathers: collisions make the float fold order matter,
		// which is what bit-exactness is a property of.
		out := []int32{0, 1, int32(100 + q)}
		in := []int32{0, 1, int32(100 + (q+1)%rg.logical)}
		red, err := node.Configure(in, out)
		if err != nil {
			return err
		}
		var mine [][]float32
		for r := 0; r < permRounds; r++ {
			vals := []float32{
				float32(q+1) * 0.1 * float32(r+1), 1.0 / float32(q+2+r),
				1.0 / float32(q*3+r+1), float32(q*100+r) * 0.01,
				float32(q) - 0.5*float32(r), float32(r+1) * 0.3,
			}
			res, err := red.Reduce(vals)
			if err != nil {
				return fmt.Errorf("round %d: %w", r, err)
			}
			mine = append(mine, res)
		}
		mu.Lock()
		results[node.PhysicalRank()] = mine
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results, cluster.Faults()
}

func testDeliveryPermutation(t *testing.T, transport kylix.Transport) {
	for _, seed := range []int64{1, 7, 99} {
		for _, rg := range permRegimes(seed) {
			t.Run(fmt.Sprintf("%s/seed%d", rg.name, seed), func(t *testing.T) {
				clean, _ := runPermuted(t, transport, rg, kylix.FaultPlan{Seed: seed})
				chaos, fab := runPermuted(t, transport, rg, rg.chaos)
				st := fab.Stats()
				if st.Delayed == 0 || st.Duplicated == 0 {
					t.Fatalf("permutation schedule never engaged: %+v", st)
				}
				if rg.chaos.Reorder > 0 && st.Reordered == 0 {
					t.Fatalf("reorder schedule never engaged: %+v", st)
				}
				for p := 0; p < rg.phys; p++ {
					for r := 0; r < permRounds; r++ {
						if !bitsEqual(chaos[p][r], clean[p][r]) {
							t.Fatalf("rank %d round %d: permuted delivery gave %v, in-order gave %v",
								p, r, chaos[p][r], clean[p][r])
						}
					}
				}
			})
		}
	}
}

func TestDeliveryPermutationMemory(t *testing.T) { testDeliveryPermutation(t, kylix.TransportMemory) }

func TestDeliveryPermutationTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP permutation property skipped in -short")
	}
	testDeliveryPermutation(t, kylix.TransportTCP)
}

// Worker-count invariance: sharding the combine/gather folds across the
// intra-node pool must not move a single bit — shards partition rows,
// never the per-row fold order. The shared index block is sized so the
// layer accumulator and gather kernels actually cross the sharding
// threshold (the combine_shards counter proves they did), and the chaos
// schedule permutes arrival order underneath, so the property is checked
// where it is sharpest: sharded folds over arrival-order-staged pieces,
// compared bitwise against the single-threaded serial fold.

// wideBlock is sized so per-kernel volumes clear par's sharding
// threshold after the butterfly splits them: a layer-1 piece is
// wideBlock/4 rows and the bottom turnaround wideBlock/8, and at width
// 2 both stay >= 2 x 8192 elements — the smallest kernel that shards.
const (
	wideRounds = 2
	wideBlock  = 1 << 16
)

func runPermutedWide(t *testing.T, transport kylix.Transport, workers int, plan kylix.FaultPlan) ([][][]float32, int64, *kylix.FaultInjector) {
	t.Helper()
	const phys = 8
	cluster, err := kylix.NewCluster(phys,
		kylix.WithTransport(transport),
		kylix.WithDegrees(4, 2),
		kylix.WithWidth(2),
		kylix.WithRecvTimeout(30*time.Second),
		kylix.WithCombineWorkers(workers),
		kylix.WithObservability(),
		kylix.WithFaults(plan),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cluster.Close() })
	results := make([][][]float32, phys)
	var mu sync.Mutex
	err = cluster.Run(func(node *kylix.Node) error {
		q := node.Rank()
		// Every node contributes the whole block: 8-way collisions on
		// every index, so each accumulator row folds a full member-order
		// chain and any fold-order slip shows up bitwise.
		idx := make([]int32, wideBlock)
		for i := range idx {
			idx[i] = int32(i)
		}
		red, err := node.Configure(idx, idx)
		if err != nil {
			return err
		}
		vals := make([]float32, wideBlock*2)
		var mine [][]float32
		for r := 0; r < wideRounds; r++ {
			for i := 0; i < wideBlock; i++ {
				vals[2*i] = float32(q+1) * 0.001 * float32(i%97+r+1)
				vals[2*i+1] = 1.0 / float32(q*31+i%113+r+2)
			}
			res, err := red.Reduce(vals)
			if err != nil {
				return fmt.Errorf("round %d: %w", r, err)
			}
			mine = append(mine, res)
		}
		mu.Lock()
		results[node.PhysicalRank()] = mine
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	shards := cluster.Metrics().Counter("combine_shards").Value()
	return results, shards, cluster.Faults()
}

func testWorkerShardInvariance(t *testing.T, transport kylix.Transport) {
	const seed = 7
	chaosPlan := kylix.FaultPlan{
		Seed:      seed,
		Delay:     0.50,
		MaxDelay:  2 * time.Millisecond,
		Duplicate: 0.25,
	}
	serial, serialShards, _ := runPermutedWide(t, transport, 1, kylix.FaultPlan{Seed: seed})
	if serialShards != 0 {
		t.Fatalf("combine_shards = %d on a single-worker machine, want 0", serialShards)
	}
	for _, w := range []int{2, 4} {
		t.Run(fmt.Sprintf("workers%d", w), func(t *testing.T) {
			clean, shards, _ := runPermutedWide(t, transport, w, kylix.FaultPlan{Seed: seed})
			if shards == 0 {
				t.Fatalf("pool never sharded at %d workers: workload below threshold?", w)
			}
			chaos, _, fab := runPermutedWide(t, transport, w, chaosPlan)
			if st := fab.Stats(); st.Delayed == 0 || st.Duplicated == 0 {
				t.Fatalf("permutation schedule never engaged: %+v", st)
			}
			for p := range serial {
				for r := 0; r < wideRounds; r++ {
					if !bitsEqual(clean[p][r], serial[p][r]) {
						t.Fatalf("rank %d round %d: %d-worker fold differs from serial", p, r, w)
					}
					if !bitsEqual(chaos[p][r], serial[p][r]) {
						t.Fatalf("rank %d round %d: %d-worker fold under permuted delivery differs from serial", p, r, w)
					}
				}
			}
		})
	}
}

func TestWorkerShardInvarianceMemory(t *testing.T) {
	testWorkerShardInvariance(t, kylix.TransportMemory)
}

func TestWorkerShardInvarianceTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP worker invariance skipped in -short")
	}
	testWorkerShardInvariance(t, kylix.TransportTCP)
}
