package kylix

import (
	"fmt"
	"io"

	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/sparse"
	"kylix/internal/tcpnet"
	"kylix/internal/topo"
)

// Node is one machine's handle on the allreduce. Methods are collective:
// every live machine must call the same sequence of Configure /
// Reduce / ConfigureReduce / TreeAllreduce operations.
type Node struct {
	mach     *core.Machine
	ep       comm.Endpoint // logical (replication-wrapped) endpoint
	bf       *topo.Butterfly
	cfg      config
	base     uint32
	physRank int
	width    int
	closer   io.Closer
	// tn is the node's raw TCP transport when built by ListenNode —
	// CloseStream purges through it. Nil for in-process cluster nodes.
	tn *tcpnet.Node
	// channels holds networks derived with Channel, so tag accounting
	// covers them across repeated Cluster.Run calls.
	channels []*Node
}

// newNode builds one machine's handle. physRank is the machine's
// position in the physical cluster — distinct from ep.Rank() when ep is
// a membership view (dense member rank) or a replication wrapper
// (logical rank); observability is keyed by the physical identity.
func newNode(ep comm.Endpoint, bf *topo.Butterfly, cfg config, roundBase uint32, physRank int) (*Node, error) {
	lep, err := wrapReplication(ep, cfg)
	if err != nil {
		return nil, err
	}
	mach, err := core.NewMachine(lep, bf, core.Options{
		Width:          cfg.width,
		Reducer:        cfg.reducer,
		Strict:         cfg.strict,
		Channel:        cfg.channel,
		Stream:         cfg.stream,
		RoundBase:      roundBase,
		Quant:          cfg.quant,
		Tracer:         cfg.obsv.Node(physRank),
		CombineWorkers: cfg.combineWorkers,
	})
	if err != nil {
		return nil, err
	}
	return &Node{
		mach: mach, ep: lep, bf: bf, cfg: cfg, base: roundBase,
		physRank: physRank, width: cfg.width,
	}, nil
}

// Channel derives a second, independent allreduce network over the same
// cluster: its message tags live in the given channel namespace, so it
// can interleave collectives with the main network freely. This is how
// multi-network programs compose — e.g. an OR-reduce sketch network plus
// a width-1 sum network for a global convergence counter. The channel
// must differ from the node's own (default 0) and from other derived
// channels, and every machine must derive the same channels with the
// same options.
//
// Options may override WithWidth, WithReducer and WithStrict; transport
// and replication are inherited.
func (n *Node) Channel(ch uint8, opts ...Option) (*Node, error) {
	if ch == n.cfg.channel {
		return nil, fmt.Errorf("kylix: channel %d is the node's own", ch)
	}
	cfg := n.cfg
	cfg.channel = ch
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.channel != ch {
		return nil, fmt.Errorf("kylix: channel option conflicts with Channel(%d)", ch)
	}
	mach, err := core.NewMachine(n.ep, n.bf, core.Options{
		Width:          cfg.width,
		Reducer:        cfg.reducer,
		Strict:         cfg.strict,
		Channel:        ch,
		Stream:         cfg.stream,
		RoundBase:      n.base,
		Quant:          cfg.quant,
		Tracer:         cfg.obsv.Node(n.physRank),
		CombineWorkers: cfg.combineWorkers,
	})
	if err != nil {
		return nil, err
	}
	derived := &Node{
		mach: mach, ep: n.ep, bf: n.bf, cfg: cfg, base: n.base,
		physRank: n.physRank, width: cfg.width,
	}
	n.channels = append(n.channels, derived)
	return derived, nil
}

// roundsUsed reports the maximum tag rounds consumed by this node and
// its derived channels (Cluster.Run uses it to keep tag spaces fresh
// across runs).
func (n *Node) roundsUsed() uint32 {
	used := n.mach.RoundsUsed()
	for _, c := range n.channels {
		if u := c.roundsUsed(); u > used {
			used = u
		}
	}
	return used
}

// Rank is the node's logical rank (the rank its data partition is
// addressed by). Without replication it equals the physical rank.
func (n *Node) Rank() int { return n.mach.Rank() }

// PhysicalRank is the machine's position in the physical cluster.
func (n *Node) PhysicalRank() int { return n.physRank }

// Size is the logical cluster size the topology spans.
func (n *Node) Size() int { return n.mach.Topology().M() }

// Width is the number of float32 values carried per feature.
func (n *Node) Width() int { return n.width }

// Observability returns the Observatory wired into this node's cluster
// (or this process, for ListenNode). Nil without WithObservability.
func (n *Node) Observability() *Observatory { return n.cfg.obsv }

// Metrics returns the node's metrics registry. Nil without
// WithObservability.
func (n *Node) Metrics() *MetricsRegistry { return n.cfg.obsv.Registry() }

// Close releases a node created by ListenNode (no-op otherwise).
func (n *Node) Close() error {
	if n.closer != nil {
		return n.closer.Close()
	}
	return nil
}

// Reduction is a reusable routing configuration for fixed in/out index
// sets: configure once, reduce any number of value vectors (the
// PageRank pattern). Values are exchanged in the caller's original
// index order.
type Reduction struct {
	node    *Node
	cfg     *core.Config
	inPerm  []int32 // user in position -> key-ordered position
	outPerm []int32
	nIn     int
	nOut    int
}

// Configure runs the downward configuration pass for the given index
// sets. in lists the indices whose reduced values this node wants; out
// lists the indices it will contribute values for. in may contain
// duplicates (each position receives the value); out must not.
func (n *Node) Configure(in, out []int32) (*Reduction, error) {
	inSet, inPerm, outSet, outPerm, err := n.prepareSets(in, out)
	if err != nil {
		return nil, err
	}
	cfg, err := n.mach.Configure(inSet, outSet)
	if err != nil {
		return nil, err
	}
	return &Reduction{node: n, cfg: cfg, inPerm: inPerm, outPerm: outPerm, nIn: len(in), nOut: len(out)}, nil
}

// ConfigureReduce fuses configuration and reduction into one network
// pass — the efficient path when the index sets change on every call
// (minibatch training). It returns the reusable Reduction and the
// reduced values for in, in the caller's order.
func (n *Node) ConfigureReduce(in, out []int32, outVals []float32) (*Reduction, []float32, error) {
	inSet, inPerm, outSet, outPerm, err := n.prepareSets(in, out)
	if err != nil {
		return nil, nil, err
	}
	sorted, err := permuteOut(outVals, outPerm, len(outSet), n.width, len(out))
	if err != nil {
		return nil, nil, err
	}
	cfg, gathered, err := n.mach.ConfigureReduce(inSet, outSet, sorted)
	if err != nil {
		return nil, nil, err
	}
	red := &Reduction{node: n, cfg: cfg, inPerm: inPerm, outPerm: outPerm, nIn: len(in), nOut: len(out)}
	return red, permuteIn(gathered, inPerm, n.width), nil
}

// TreeAllreduce runs the tree-topology baseline (§II-A1) in one shot:
// slower and memory-hungry on sparse data (the root holds the dense
// union) but useful as an oracle and for the ablation benchmarks. It
// returns the reduced in-values in caller order and the largest
// intermediate union size this machine held.
func (n *Node) TreeAllreduce(in, out []int32, outVals []float32) ([]float32, int, error) {
	inSet, inPerm, outSet, outPerm, err := n.prepareSets(in, out)
	if err != nil {
		return nil, 0, err
	}
	sorted, err := permuteOut(outVals, outPerm, len(outSet), n.width, len(out))
	if err != nil {
		return nil, 0, err
	}
	gathered, maxUnion, err := n.mach.TreeAllreduce(inSet, outSet, sorted)
	if err != nil {
		return nil, 0, err
	}
	return permuteIn(gathered, inPerm, n.width), maxUnion, nil
}

func (n *Node) prepareSets(in, out []int32) (sparse.Set, []int32, sparse.Set, []int32, error) {
	inSet, inPerm, err := sparse.NewSet(in)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("kylix: in indices: %w", err)
	}
	outSet, outPerm, err := sparse.NewSet(out)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("kylix: out indices: %w", err)
	}
	if len(outSet) != len(out) {
		return nil, nil, nil, nil, fmt.Errorf("kylix: out indices contain duplicates (%d unique of %d)", len(outSet), len(out))
	}
	return inSet, inPerm, outSet, outPerm, nil
}

// Missing reports how many requested in-indices had no contributor in
// this node's bottom range (0 under WithStrict).
func (r *Reduction) Missing() int { return r.cfg.Missing() }

// Reduce pushes this node's contribution (one Width-sized row per out
// index, in the order passed to Configure) and returns the reduced
// values for the in indices, in their original order.
func (r *Reduction) Reduce(outVals []float32) ([]float32, error) {
	w := r.node.width
	sorted, err := permuteOut(outVals, r.outPerm, len(r.cfg.OutSet()), w, r.nOut)
	if err != nil {
		return nil, err
	}
	gathered, err := r.cfg.Reduce(sorted)
	if err != nil {
		return nil, err
	}
	return permuteIn(gathered, r.inPerm, w), nil
}

// Reconfigure rebinds the Reduction to new index sets incrementally,
// reusing the routing state the change does not touch: unchanged pieces
// cross the wire as two-byte markers and layers whose inputs did not
// move keep their unions and position maps. It is the cheap path when
// sets evolve slowly between reductions (a few indices enter or leave);
// when most indices change, a fresh Configure or ConfigureReduce costs
// the same and is simpler to reason about.
//
// Reconfigure is collective: every live node must call it in the same
// round order (with its own, possibly unchanged, sets). It is safe
// exactly where Reduce is — same cluster membership, same topology,
// same SPMD call sequence. On error the Reduction is poisoned and must
// be replaced via Configure; see Config.Reconfigure.
func (r *Reduction) Reconfigure(in, out []int32) error {
	n := r.node
	inSet, inPerm, outSet, outPerm, err := n.prepareSets(in, out)
	if err != nil {
		return err
	}
	if err := r.cfg.Reconfigure(inSet, outSet); err != nil {
		return err
	}
	r.inPerm, r.outPerm = inPerm, outPerm
	r.nIn, r.nOut = len(in), len(out)
	return nil
}

// ConfigDigest returns a 64-bit fingerprint of the Reduction's routing
// state (sets, groups, offsets, unions, position maps, bottom
// turnaround). Two nodes — or two runs — whose digests agree route
// identically; the chaos suite uses it to prove reconfiguration under
// faults converges to exactly the fault-free state.
func (r *Reduction) ConfigDigest() uint64 { return r.cfg.Digest() }

// permuteOut reorders caller-order values into key order.
func permuteOut(vals []float32, perm []int32, setLen, width, nOut int) ([]float32, error) {
	if len(vals) != nOut*width {
		return nil, fmt.Errorf("kylix: got %d values, want %d (%d out indices x width %d)", len(vals), nOut*width, nOut, width)
	}
	sorted := make([]float32, setLen*width)
	for p := 0; p < nOut; p++ {
		copy(sorted[int(perm[p])*width:(int(perm[p])+1)*width], vals[p*width:(p+1)*width])
	}
	return sorted, nil
}

// permuteIn reorders key-order gathered values into caller order.
func permuteIn(gathered []float32, perm []int32, width int) []float32 {
	out := make([]float32, len(perm)*width)
	for p := range perm {
		copy(out[p*width:(p+1)*width], gathered[int(perm[p])*width:(int(perm[p])+1)*width])
	}
	return out
}
