# Developer entry points. `make check` is the full gate a PR must pass:
# vet (including the kylix-vet invariant analyzers), build, the whole
# test suite, the race lane over the packages with the heaviest
# concurrency (transports, mailbox, reduction core, fault fabric,
# replication, membership), the elastic-membership chaos soak, and the
# allocation gate on the warm reduction hot path.

GO ?= go
KYLIX_VET := bin/kylix-vet

.PHONY: check vet kylix-vet build test race soak benchgate bench profile fuzz lint

check: vet build test race soak benchgate

# Standard go vet plus the project invariant suite (hotpathalloc,
# lockobs, determinism, commcheck, goleak, lockorder, atomicmix) run
# through the same vet driver, so results are per-package cached and
# keyed on the tool binary's hash.
vet: kylix-vet
	$(GO) vet ./...
	$(GO) vet -vettool=$(KYLIX_VET) ./...

kylix-vet:
	@mkdir -p bin
	$(GO) build -o $(KYLIX_VET) ./cmd/kylix-vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short-mode race lane: the concurrency-critical packages under the race
# detector. Short mode keeps it minutes, not tens of minutes. comm and
# core ride along since the mailbox free lists and the arena flip are
# exactly where a data race would corrupt results silently; membership is
# the gossip control plane, whose agents are all ticker-vs-receiver races.
race:
	$(GO) test -race -short ./internal/comm/... ./internal/core/... ./internal/faultnet/... ./internal/tcpnet/... ./internal/replica/... ./internal/trace/... ./internal/obs/... ./internal/membership/...

# The elastic-membership chaos soak: scripted joins, leaves and
# replacements with machines and the coordinator killed mid-transition,
# on both transports, checked bit-identical against a fresh cluster.
soak:
	$(GO) test -run 'TestElasticChurn|TestTCPChurnSoak' -count=1 . ./internal/replica/

# Hot-path benchmarks with memory accounting; writes BENCH_reduce.json.
bench:
	scripts/bench.sh

# The zero-allocation regression gate: fails if either warm Reduce
# benchmark (plain or with the observability layer enabled) reports
# >0 allocs/op, or if the observed run got >10% slower than the number
# recorded in BENCH_reduce.json. Runs the full bench sweep as a side
# effect.
benchgate:
	scripts/bench.sh --gate

# Optional deep-lint lane: staticcheck + govulncheck, pinned via go run.
# Needs network access to the module proxy; skips gracefully offline.
lint:
	scripts/lint.sh

# CPU + heap profiles of the paper-evaluation run at quick scale.
# Inspect with: go tool pprof cpu.pprof (or mem.pprof).
profile:
	$(GO) run ./cmd/kylix-bench -scale quick -exp fig6,fig8 -cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof and mem.pprof; inspect with: go tool pprof cpu.pprof"

# A quick pass over the fault fabric's determinism fuzzer.
fuzz:
	$(GO) test -run FuzzDecide -fuzz FuzzDecide -fuzztime 10s ./internal/faultnet/
