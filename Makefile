# Developer entry points. `make check` is the full gate a PR must pass:
# vet, build, the whole test suite, the race lane over the packages with
# the heaviest concurrency (transports, fault fabric, replication), and
# the allocation gate on the warm reduction hot path.

GO ?= go

.PHONY: check vet build test race benchgate bench profile fuzz

check: vet build test race benchgate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short-mode race lane: the concurrency-critical packages under the race
# detector. Short mode keeps it minutes, not tens of minutes.
race:
	$(GO) test -race -short ./internal/faultnet/... ./internal/tcpnet/... ./internal/replica/... ./internal/trace/... ./internal/obs/...

# Hot-path benchmarks with memory accounting; writes BENCH_reduce.json.
bench:
	scripts/bench.sh

# The zero-allocation regression gate: fails if either warm Reduce
# benchmark (plain or with the observability layer enabled) reports
# >0 allocs/op, or if the observed run got >10% slower than the number
# recorded in BENCH_reduce.json. Runs the full bench sweep as a side
# effect.
benchgate:
	scripts/bench.sh --gate

# CPU + heap profiles of the paper-evaluation run at quick scale.
# Inspect with: go tool pprof cpu.pprof (or mem.pprof).
profile:
	$(GO) run ./cmd/kylix-bench -scale quick -exp fig6,fig8 -cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof and mem.pprof; inspect with: go tool pprof cpu.pprof"

# A quick pass over the fault fabric's determinism fuzzer.
fuzz:
	$(GO) test -run FuzzDecide -fuzz FuzzDecide -fuzztime 10s ./internal/faultnet/
