# Developer entry points. `make check` is the full gate a PR must pass:
# vet, build, the whole test suite, and the race lane over the packages
# with the heaviest concurrency (transports, fault fabric, replication).

GO ?= go

.PHONY: check vet build test race fuzz

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short-mode race lane: the concurrency-critical packages under the race
# detector. Short mode keeps it minutes, not tens of minutes.
race:
	$(GO) test -race -short ./internal/faultnet/... ./internal/tcpnet/... ./internal/replica/...

# A quick pass over the fault fabric's determinism fuzzer.
fuzz:
	$(GO) test -run FuzzDecide -fuzz FuzzDecide -fuzztime 10s ./internal/faultnet/
