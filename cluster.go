package kylix

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"kylix/internal/comm"
	"kylix/internal/faultnet"
	"kylix/internal/membership"
	"kylix/internal/memnet"
	"kylix/internal/netsim"
	"kylix/internal/obs"
	"kylix/internal/replica"
	"kylix/internal/stream"
	"kylix/internal/tcpnet"
	"kylix/internal/topo"
	"kylix/internal/trace"
)

// ErrClusterClosed is returned by operations on a closed Cluster.
var ErrClusterClosed = errors.New("kylix: cluster closed")

// closeDrainTimeout bounds how long Close waits for in-flight Runs to
// finish before tearing transports anyway (stragglers then fail with
// comm.ErrClosed, which is the honest outcome of closing under load).
const closeDrainTimeout = 5 * time.Second

// Cluster is an in-process Kylix cluster: m machines connected by the
// chosen transport, ready to run SPMD allreduce programs. For
// cross-process deployments use ListenNode instead.
type Cluster struct {
	cfg       config
	bf        *topo.Butterfly
	phys      int
	capacity  int
	mem       *memnet.Network
	tcp       []*tcpnet.Node
	fabric    *faultnet.Fabric
	collector *trace.Collector
	obs       *obs.Observatory
	// Elastic control plane (nil without WithElastic): one membership
	// agent per provisioned rank plus the operator-side service, and the
	// gate that drains in-flight Runs before each epoch cutover.
	svc  *membership.Service
	gate runGate
	// roundBase is where the next Run's tag sequence starts; successive
	// runs over the same transports must never reuse tags (stale
	// replica-race cancellations would swallow them). Tenant streams
	// keep their own bases — each stream id is a whole fresh tag space.
	roundBase atomic.Uint32
	// closed latches Cluster.Close: set exactly once (Close is
	// idempotent), checked by every pass after it enters the run gate so
	// the close-time drain covers it.
	closed atomic.Bool
	// streams admits tenant streams and allocates their never-reused
	// ids; sched grants their passes fabric slots fairly; smet is the
	// stream layer's metric bundle (live but unregistered without
	// WithObservability).
	streams *stream.Registry
	sched   *stream.Scheduler
	smet    *obs.StreamMetrics
}

// NewCluster creates a cluster of m physical machines. With
// WithReplication(s), the topology spans m/s logical machines and every
// logical machine runs s replicas.
func NewCluster(m int, opts ...Option) (*Cluster, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if m < 1 {
		return nil, fmt.Errorf("kylix: machine count %d must be >= 1", m)
	}
	if cfg.replication < 1 || m%cfg.replication != 0 {
		return nil, fmt.Errorf("kylix: machine count %d not divisible by replication factor %d", m, cfg.replication)
	}
	if !cfg.quant.Valid() {
		return nil, fmt.Errorf("kylix: invalid quantization mode %d", cfg.quant)
	}
	logical := m / cfg.replication
	bf, err := buildTopology(cfg, logical)
	if err != nil {
		return nil, err
	}
	capacity := m
	if cfg.elastic != nil {
		if cfg.elastic.Spares < 0 {
			return nil, fmt.Errorf("kylix: spare count %d must be >= 0", cfg.elastic.Spares)
		}
		cfg.elastic.defaults()
		capacity = m + cfg.elastic.Spares
	}

	if cfg.observe {
		cfg.obsv = obs.New(capacity, 0)
	}
	c := &Cluster{cfg: cfg, bf: bf, phys: m, capacity: capacity, obs: cfg.obsv}
	if cfg.faults != nil {
		fab, err := faultnet.New(*cfg.faults)
		if err != nil {
			return nil, err
		}
		fab.InitSize(capacity)
		if c.obs != nil {
			fab.SetObserver(c.obs.FaultObserver())
		}
		c.fabric = fab
	}
	var rec comm.Recorder = comm.NopRecorder{}
	if cfg.trace {
		c.collector = trace.NewCollector(capacity)
		rec = c.collector
	}
	switch cfg.transport {
	case TransportMemory:
		c.mem = memnet.New(capacity,
			memnet.WithRecorder(rec),
			memnet.WithRecvTimeout(cfg.recvTimeout),
			memnet.WithRecvObserver(c.obs.RecvObserver))
	case TransportTCP:
		nodes, err := tcpnet.LocalCluster(capacity, tcpnet.Options{
			RecvTimeout:   cfg.recvTimeout,
			MaxBatchBytes: cfg.maxBatchBytes,
			EnableNagle:   cfg.nagle,
			Recorder:      rec,
			RecvObserver:  c.obs.RecvObserver,
			Metrics:       c.obs.Transport(),
		})
		if err != nil {
			return nil, err
		}
		c.tcp = nodes
	default:
		return nil, fmt.Errorf("kylix: unknown transport %d", cfg.transport)
	}
	if cfg.elastic != nil {
		c.startElastic(m)
	}
	c.streams = stream.NewRegistry(cfg.maxStreams)
	c.sched = stream.NewScheduler(cfg.streamSlots)
	c.smet = obs.NewStreamMetrics(c.obs.Registry())
	return c, nil
}

// startElastic spins up the membership control plane: one agent per
// provisioned rank (members and spares alike) gossiping over the same
// transports as the data plane, plus the operator-side service.
func (c *Cluster) startElastic(m int) {
	e := c.cfg.elastic
	members := make([]int, m)
	for i := range members {
		members[i] = i
	}
	initial := membership.Record{
		Epoch:   1,
		Leader:  0,
		Members: members,
		Degrees: c.bf.Degrees(),
	}
	var met *obs.MembershipMetrics
	if c.obs != nil {
		met = obs.NewMembershipMetrics(c.obs.Registry())
	} else {
		met = obs.NewMembershipMetrics(nil)
	}
	opts := membership.Options{
		Heartbeat:    e.Heartbeat,
		SuspectAfter: e.SuspectAfter,
		DrainTimeout: e.DrainTimeout,
		AutoEvict:    !e.DisableAutoEvict,
		Replication:  c.cfg.replication,
		Seed:         e.Seed,
		Drain:        c.gate.drain,
		Metrics:      met,
	}
	agents := make([]*membership.Agent, c.capacity)
	for r := 0; r < c.capacity; r++ {
		var ep comm.Endpoint
		if c.mem != nil {
			ep = c.mem.Endpoint(r)
		} else {
			ep = c.tcp[r]
		}
		if c.fabric != nil {
			ep = c.fabric.Wrap(ep)
		}
		agents[r] = membership.NewAgent(r, ep, initial, opts)
	}
	c.svc = membership.NewService(agents, func(r int) bool { return !c.deadRank(r) })
}

func buildTopology(cfg config, logical int) (*topo.Butterfly, error) {
	degrees := cfg.degrees
	switch {
	case cfg.binary:
		var err error
		degrees, err = topo.Binary(logical)
		if err != nil {
			return nil, err
		}
	case degrees == nil:
		degrees = topo.Direct(logical)
	}
	bf, err := topo.New(degrees)
	if err != nil {
		return nil, err
	}
	if bf.M() != logical {
		return nil, fmt.Errorf("kylix: degrees %v span %d machines, cluster has %d logical", degrees, bf.M(), logical)
	}
	return bf, nil
}

// Size returns the physical machine count — for an elastic cluster,
// the current epoch's member count.
func (c *Cluster) Size() int {
	if c.svc != nil {
		return len(c.snapshot().Members)
	}
	return c.phys
}

// LogicalSize returns the machine count the topology spans (Size divided
// by the replication factor).
func (c *Cluster) LogicalSize() int { return c.Size() / c.cfg.replication }

// Degrees returns the butterfly degrees in use — for an elastic
// cluster, the current epoch's degrees.
func (c *Cluster) Degrees() []int {
	if c.svc != nil {
		return c.snapshot().Degrees
	}
	return c.bf.Degrees()
}

// Kill marks a physical machine dead — at any point, including
// mid-round. With WithFaults the kill goes through the fault fabric and
// works on both transports; otherwise it requires TransportMemory. A
// replicated cluster keeps functioning as long as every replica group
// retains a live member. Killing an already-dead machine is idempotent
// and reports it with a *DeadNodeError.
func (c *Cluster) Kill(rank int) error {
	if rank < 0 || rank >= c.capacity {
		return fmt.Errorf("kylix: rank %d outside provisioned cluster [0,%d)", rank, c.capacity)
	}
	if c.deadRank(rank) {
		return &DeadNodeError{Rank: rank}
	}
	switch {
	case c.fabric != nil:
		c.fabric.Kill(rank)
		if c.mem != nil {
			c.mem.Kill(rank)
		}
	case c.mem != nil:
		c.mem.Kill(rank)
	default:
		return fmt.Errorf("kylix: failure injection without WithFaults requires TransportMemory")
	}
	if c.svc != nil {
		if a := c.svc.Agent(rank); a != nil {
			a.Stop()
		}
	}
	return nil
}

// Faults returns the live fault controller of a cluster built with
// WithFaults (nil otherwise): manual kills, partitions, per-rank send
// counts and Flush.
func (c *Cluster) Faults() *FaultInjector { return c.fabric }

// Metrics returns the cluster's metrics registry — reconnect counters,
// receive-wait histograms, per-layer byte volumes and the rest of the
// observability layer's numbers. Nil without WithObservability.
func (c *Cluster) Metrics() *MetricsRegistry { return c.obs.Registry() }

// Observability returns the cluster's Observatory: span timelines plus
// the Chrome trace / timeline exporters. Nil without WithObservability.
func (c *Cluster) Observability() *Observatory { return c.obs }

// Run executes fn concurrently on every live machine and waits for all
// of them. Each machine's fn receives its own Node; returning an error
// from any machine fails the run. Runs may be repeated on the same
// cluster (failures can be injected in between); each run's message tags
// continue where the previous run's stopped.
//
// On an elastic cluster each Run executes over the current epoch's
// membership: the member ranks run fn over a dense view of the
// surviving machines, on the epoch's own butterfly — exactly the
// cluster shape a fresh deployment of those machines would have.
func (c *Cluster) Run(fn func(*Node) error) error {
	return c.runPass(c.cfg, &c.roundBase, fn)
}

// runPass is the shared collective-pass runner behind Cluster.Run and
// Stream.Run: it executes fn on every live machine with nodes built
// from cfg, accounting consumed tag rounds into base so the caller's
// next pass starts on fresh tags. cfg.stream selects the tag namespace
// the pass's nodes mint into.
//
//kylix:owned
func (c *Cluster) runPass(cfg config, base *atomic.Uint32, fn func(*Node) error) error {
	// Enter the gate before the closed check: Close sets the flag and
	// then drains the gate, so every pass that got past this check is
	// covered by the close-time drain, and every pass entering after the
	// flag is set fails here without touching the (possibly torn-down)
	// transports.
	c.gate.enter()
	defer c.gate.exit()
	if c.closed.Load() {
		return ErrClusterClosed
	}
	// Epoch snapshot: members == nil means the static full cluster.
	var members []int
	bf := c.bf
	if c.svc != nil {
		rec := c.snapshot()
		ebf, err := topo.New(rec.Degrees)
		if err != nil {
			return fmt.Errorf("kylix: epoch %d degrees %v: %w", rec.Epoch, rec.Degrees, err)
		}
		if ebf.M() != len(rec.Members)/c.cfg.replication {
			return fmt.Errorf("kylix: epoch %d degrees %v span %d machines, membership has %d logical",
				rec.Epoch, rec.Degrees, ebf.M(), len(rec.Members)/c.cfg.replication)
		}
		members, bf = rec.Members, ebf
	}
	baseRound := base.Load()
	var maxUsed atomic.Uint32
	body := func(ep comm.Endpoint) error {
		physRank := ep.Rank()
		if c.fabric != nil {
			ep = c.fabric.Wrap(ep)
		}
		if members != nil {
			view, verr := membership.NewView(ep, members)
			if verr != nil {
				return verr
			}
			ep = view
		}
		node, err := newNode(ep, bf, cfg, baseRound, physRank)
		if err != nil {
			return err
		}
		err = fn(node)
		if err != nil && c.fabric != nil && c.fabric.Killed(physRank) {
			// The machine crash-stopped under the fault plan: its own
			// failed operations are the injected fault, not a program
			// error. Survivors' results are what the run is judged on.
			err = nil
		}
		for {
			used := node.roundsUsed()
			cur := maxUsed.Load()
			if used <= cur || maxUsed.CompareAndSwap(cur, used) {
				break
			}
		}
		return err
	}
	var err error
	if c.mem != nil {
		err = memnet.Run(c.mem, body, members...)
	} else {
		ranks := members
		if ranks == nil {
			ranks = make([]int, len(c.tcp))
			for i := range ranks {
				ranks[i] = i
			}
		}
		errc := make(chan error, len(ranks))
		started := 0
		for _, r := range ranks {
			if c.deadRank(r) {
				continue
			}
			started++
			go func(ep comm.Endpoint) { errc <- body(ep) }(c.tcp[r])
		}
		for i := 0; i < started; i++ {
			if e := <-errc; e != nil && err == nil {
				err = e
			}
		}
	}
	base.Store(baseRound + maxUsed.Load())
	return err
}

// Traffic returns the layer-by-layer traffic recorded so far (requires
// WithTrace) together with modelled EC2 times under the paper's cost
// model. threads is the per-node send/receive concurrency to model.
func (c *Cluster) Traffic(threads int) (*TrafficReport, error) {
	if c.collector == nil {
		return nil, fmt.Errorf("kylix: traffic recording not enabled; construct the cluster with WithTrace()")
	}
	return buildTrafficReport(c.collector, netsim.EC2(), threads), nil
}

// ResetTraffic clears recorded traffic (e.g. to time configuration and
// reduction separately).
func (c *Cluster) ResetTraffic() {
	if c.collector != nil {
		c.collector.Reset()
	}
}

// Close releases all transports (stopping the membership control plane
// and flushing any in-flight injected faults first). It is idempotent
// and safe concurrent with in-flight Runs: the closed flag stops new
// passes at the run gate, then Close drains the gate (bounded by
// closeDrainTimeout) so live passes finish before their transports are
// torn down. A drain that times out proceeds anyway — stragglers fail
// with comm.ErrClosed rather than hanging teardown forever.
//
// The returned error joins the terminal stream errors of the TCP
// transports: a run that silently degraded (sticky stream failures,
// half-closed peers) surfaces here rather than vanishing at teardown.
// Later calls return nil.
func (c *Cluster) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	c.gate.drain(closeDrainTimeout)
	if c.svc != nil {
		c.svc.Stop()
	}
	if c.fabric != nil {
		c.fabric.Close()
	}
	if c.mem != nil {
		c.mem.Close()
	}
	return tcpnet.CloseAll(c.tcp)
}

// closeStreamTransports purges one stream's namespace from every
// machine's mailbox on whichever transport the cluster runs.
func (c *Cluster) closeStreamTransports(id comm.StreamID) {
	if c.mem != nil {
		c.mem.CloseStream(id)
	}
	for _, n := range c.tcp {
		n.CloseStream(id)
	}
}

// ListenNode joins a cross-process TCP cluster: addrs lists every
// machine's listen address (one process per rank calls ListenNode with
// its own rank). The returned Node is ready for Configure/Reduce once
// all peers are up; Close releases it.
func ListenNode(rank int, addrs []string, opts ...Option) (*Node, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.elastic != nil {
		return nil, fmt.Errorf("kylix: WithElastic requires an in-process Cluster (membership agents span every rank)")
	}
	if cfg.replication < 1 || len(addrs)%cfg.replication != 0 {
		return nil, fmt.Errorf("kylix: %d machines not divisible by replication %d", len(addrs), cfg.replication)
	}
	bf, err := buildTopology(cfg, len(addrs)/cfg.replication)
	if err != nil {
		return nil, err
	}
	if cfg.observe {
		// Each process observes its own rank; the other ranks' tracers
		// exist but stay empty.
		cfg.obsv = obs.New(len(addrs), 0)
	}
	tn, err := tcpnet.Listen(rank, addrs, tcpnet.Options{
		RecvTimeout:   cfg.recvTimeout,
		MaxBatchBytes: cfg.maxBatchBytes,
		EnableNagle:   cfg.nagle,
		RecvObserver:  cfg.obsv.RecvObserver,
		Metrics:       cfg.obsv.Transport(),
	})
	if err != nil {
		return nil, err
	}
	var ep comm.Endpoint = tn
	var closer io.Closer = tn
	if cfg.faults != nil {
		// Cross-process fault injection: every process builds its own
		// fabric from the shared plan; decisions are seed-derived, so
		// the fabrics agree without coordination.
		fab, ferr := faultnet.New(*cfg.faults)
		if ferr != nil {
			_ = tn.Close()
			return nil, ferr
		}
		if cfg.obsv != nil {
			fab.SetObserver(cfg.obsv.FaultObserver())
		}
		ep = fab.Wrap(tn)
		closer = &fabricCloser{fab: fab, under: tn}
	}
	node, err := newNode(ep, bf, cfg, 0, rank)
	if err != nil {
		_ = tn.Close()
		return nil, err
	}
	node.closer = closer
	node.tn = tn
	return node, nil
}

// fabricCloser flushes a node's fault fabric before closing its
// transport so decided-but-delayed messages are not stranded.
type fabricCloser struct {
	fab   *faultnet.Fabric
	under io.Closer
}

func (f *fabricCloser) Close() error {
	f.fab.Close()
	return f.under.Close()
}

// wrapReplication applies the replica layer when configured.
func wrapReplication(ep comm.Endpoint, cfg config) (comm.Endpoint, error) {
	if cfg.replication == 1 {
		return ep, nil
	}
	return replica.Wrap(ep, cfg.replication)
}
