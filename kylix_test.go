package kylix_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"kylix"
)

func TestQuickstartSum(t *testing.T) {
	cluster, err := kylix.NewCluster(4, kylix.WithDegrees(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	var mu sync.Mutex
	got := map[int][]float32{}
	err = cluster.Run(func(node *kylix.Node) error {
		in := []int32{10, 20}
		out := []int32{10, 20, 30}
		vals := []float32{1, 2, 3}
		red, err := node.Configure(in, out)
		if err != nil {
			return err
		}
		res, err := red.Reduce(vals)
		if err != nil {
			return err
		}
		mu.Lock()
		got[node.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, res := range got {
		if res[0] != 4 || res[1] != 8 { // 4 machines x (1, 2)
			t.Fatalf("rank %d got %v, want [4 8]", rank, res)
		}
	}
}

func TestUserOrderPreserved(t *testing.T) {
	// Indices deliberately unsorted and in different orders per call.
	cluster, err := kylix.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	err = cluster.Run(func(node *kylix.Node) error {
		out := []int32{50, 7, 99}
		vals := []float32{float32(50), float32(7), float32(99)} // value = index
		in := []int32{99, 50, 7, 99}                            // dups allowed in `in`
		red, err := node.Configure(in, out)
		if err != nil {
			return err
		}
		res, err := red.Reduce(vals)
		if err != nil {
			return err
		}
		want := []float32{198, 100, 14, 198} // 2 machines x index
		for i := range want {
			if res[i] != want[i] {
				t.Errorf("rank %d slot %d: got %v want %v", node.Rank(), i, res, want)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateOutRejected(t *testing.T) {
	cluster, err := kylix.NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	err = cluster.Run(func(node *kylix.Node) error {
		_, err := node.Configure([]int32{1}, []int32{2, 2})
		if err == nil {
			t.Error("duplicate out indices accepted")
		} else if !strings.Contains(err.Error(), "duplicate") {
			t.Errorf("unexpected error: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWidthAndReducerOptions(t *testing.T) {
	cluster, err := kylix.NewCluster(2, kylix.WithWidth(2), kylix.WithReducer(kylix.Max))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	err = cluster.Run(func(node *kylix.Node) error {
		out := []int32{5}
		vals := []float32{float32(node.Rank()), float32(10 - node.Rank())}
		red, err := node.Configure(out, out)
		if err != nil {
			return err
		}
		res, err := red.Reduce(vals)
		if err != nil {
			return err
		}
		if res[0] != 1 || res[1] != 10 { // max(0,1), max(10,9)
			t.Errorf("rank %d: %v", node.Rank(), res)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConfigureReduceFacade(t *testing.T) {
	cluster, err := kylix.NewCluster(4, kylix.WithDegrees(4))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	err = cluster.Run(func(node *kylix.Node) error {
		out := []int32{int32(node.Rank()), 100}
		vals := []float32{1, 1}
		red, res, err := node.ConfigureReduce([]int32{100}, out, vals)
		if err != nil {
			return err
		}
		if res[0] != 4 {
			t.Errorf("rank %d: shared index sum %v, want 4", node.Rank(), res[0])
		}
		// The returned Reduction is reusable.
		res2, err := red.Reduce(vals)
		if err != nil {
			return err
		}
		if res2[0] != 4 {
			t.Errorf("rank %d: reused reduction gave %v", node.Rank(), res2[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPTransportFacade(t *testing.T) {
	cluster, err := kylix.NewCluster(3, kylix.WithTransport(kylix.TransportTCP))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	err = cluster.Run(func(node *kylix.Node) error {
		out := []int32{1}
		red, err := node.Configure(out, out)
		if err != nil {
			return err
		}
		res, err := red.Reduce([]float32{2})
		if err != nil {
			return err
		}
		if res[0] != 6 {
			t.Errorf("rank %d over TCP: %v", node.Rank(), res)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReplicationWithFailures(t *testing.T) {
	cluster, err := kylix.NewCluster(8, kylix.WithReplication(2), kylix.WithDegrees(2, 2),
		kylix.WithRecvTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.LogicalSize() != 4 || cluster.Size() != 8 {
		t.Fatalf("sizes: %d/%d", cluster.LogicalSize(), cluster.Size())
	}
	if err := cluster.Kill(5); err != nil { // logical 1's replica
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[int]float32{}
	err = cluster.Run(func(node *kylix.Node) error {
		out := []int32{int32(node.Rank()), 7}
		red, err := node.Configure([]int32{7}, out)
		if err != nil {
			return err
		}
		res, err := red.Reduce([]float32{1, 1})
		if err != nil {
			return err
		}
		mu.Lock()
		seen[node.Rank()] = res[0]
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("results from %d logical ranks", len(seen))
	}
	for rank, v := range seen {
		if v != 4 { // one contribution per logical rank
			t.Fatalf("logical %d: %f, want 4", rank, v)
		}
	}
}

func TestTreeAllreduceFacade(t *testing.T) {
	cluster, err := kylix.NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	err = cluster.Run(func(node *kylix.Node) error {
		out := []int32{int32(node.Rank() % 2), 9}
		res, maxUnion, err := node.TreeAllreduce([]int32{9}, out, []float32{1, 1})
		if err != nil {
			return err
		}
		if res[0] != 4 {
			t.Errorf("tree sum %v", res)
		}
		if maxUnion < 2 {
			t.Errorf("union size %d", maxUnion)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStrictOption(t *testing.T) {
	cluster, err := kylix.NewCluster(2, kylix.WithStrict(), kylix.WithRecvTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	var mu sync.Mutex
	failed := 0
	_ = cluster.Run(func(node *kylix.Node) error {
		_, err := node.Configure([]int32{12345}, []int32{1})
		if err != nil {
			mu.Lock()
			failed++
			mu.Unlock()
		}
		return nil
	})
	if failed == 0 {
		t.Fatal("strict mode did not reject uncovered in-index")
	}
}

func TestTrafficReport(t *testing.T) {
	cluster, err := kylix.NewCluster(4, kylix.WithDegrees(2, 2), kylix.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	err = cluster.Run(func(node *kylix.Node) error {
		rng := rand.New(rand.NewSource(int64(node.Rank())))
		out := make([]int32, 0, 50)
		seen := map[int32]bool{}
		for len(out) < 50 {
			v := rng.Int31n(500)
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		red, err := node.Configure(out, out)
		if err != nil {
			return err
		}
		_, err = red.Reduce(make([]float32, 50))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cluster.Traffic(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Layers) == 0 || rep.TotalSec() <= 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.TotalBytes(kylix.PhaseConfig) <= 0 || rep.TotalBytes("") <= rep.TotalBytes(kylix.PhaseConfig) {
		t.Fatal("byte accounting inconsistent")
	}
	if !strings.Contains(rep.String(), "config") {
		t.Fatal("report rendering broken")
	}
	cluster.ResetTraffic()
	rep2, _ := cluster.Traffic(16)
	if len(rep2.Layers) != 0 {
		t.Fatal("ResetTraffic did not clear")
	}
}

func TestTrafficWithoutTraceErrors(t *testing.T) {
	cluster, err := kylix.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := cluster.Traffic(4); err == nil {
		t.Fatal("Traffic without WithTrace should error")
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := kylix.NewCluster(0); err == nil {
		t.Error("accepted m=0")
	}
	if _, err := kylix.NewCluster(4, kylix.WithDegrees(3)); err == nil {
		t.Error("accepted mismatched degrees")
	}
	if _, err := kylix.NewCluster(4, kylix.WithReplication(3)); err == nil {
		t.Error("accepted non-divisible replication")
	}
	if _, err := kylix.NewCluster(6, kylix.WithBinaryButterfly()); err == nil {
		t.Error("accepted binary butterfly on non-power-of-two")
	}
}

func TestBinaryButterflyOption(t *testing.T) {
	cluster, err := kylix.NewCluster(8, kylix.WithBinaryButterfly())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	d := cluster.Degrees()
	if len(d) != 3 || d[0] != 2 {
		t.Fatalf("degrees = %v", d)
	}
}

func TestDesignDegreesFacade(t *testing.T) {
	degrees, err := kylix.DesignDegrees(kylix.DesignInput{
		N: 60_000_000, Alpha: 0.8, Density0: 0.21,
		Machines: 64, ElemBytes: 4, MinPacket: 5 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(degrees) != 3 || degrees[0] != 8 || degrees[1] != 4 || degrees[2] != 2 {
		t.Fatalf("DesignDegrees = %v, want [8 4 2]", degrees)
	}
}

func TestKillRequiresMemoryTransport(t *testing.T) {
	cluster, err := kylix.NewCluster(2, kylix.WithTransport(kylix.TransportTCP))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Kill(0); err == nil {
		t.Fatal("Kill on TCP transport should error")
	}
}

func TestListenNodeCrossCluster(t *testing.T) {
	// Build a 3-node TCP cluster through the public multi-process API
	// (all in one process here, which exercises the same code path).
	addrs := []string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"}
	// Phase 1: bind rank 0 to learn a concrete port layout. For a
	// deterministic in-process test we pre-bind fixed ports instead.
	ports, err := reservePorts(3)
	if err != nil {
		t.Skip("cannot reserve ports:", err)
	}
	for i, p := range ports {
		addrs[i] = p
	}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			node, err := kylix.ListenNode(r, addrs, kylix.WithRecvTimeout(10*time.Second))
			if err != nil {
				errs[r] = err
				return
			}
			defer node.Close()
			out := []int32{42}
			red, err := node.Configure(out, out)
			if err != nil {
				errs[r] = err
				return
			}
			res, err := red.Reduce([]float32{1.5})
			if err != nil {
				errs[r] = err
				return
			}
			if math.Abs(float64(res[0]-4.5)) > 1e-5 {
				errs[r] = errResult
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

var errResult = &resultError{}

type resultError struct{}

func (*resultError) Error() string { return "wrong reduced value" }

func TestWidthWithReplicationAndFailure(t *testing.T) {
	// Width-2 features over a replicated cluster with one dead machine:
	// the full option surface composed.
	cluster, err := kylix.NewCluster(8,
		kylix.WithReplication(2), kylix.WithDegrees(2, 2),
		kylix.WithWidth(2), kylix.WithRecvTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Kill(6); err != nil { // logical 2's replica
		t.Fatal(err)
	}
	err = cluster.Run(func(node *kylix.Node) error {
		if node.Width() != 2 {
			t.Errorf("width = %d", node.Width())
		}
		out := []int32{5}
		vals := []float32{1, float32(node.Rank())}
		red, err := node.Configure(out, out)
		if err != nil {
			return err
		}
		got, err := red.Reduce(vals)
		if err != nil {
			return err
		}
		if got[0] != 4 { // 4 logical machines x 1
			t.Errorf("rank %d col0 = %f", node.Rank(), got[0])
		}
		if got[1] != 0+1+2+3 {
			t.Errorf("rank %d col1 = %f", node.Rank(), got[1])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedRunsShareTagSpace(t *testing.T) {
	// Regression: repeated cluster.Run calls on a replicated cluster
	// must not reuse message tags (stale race cancellations would
	// swallow them). Three runs with failures injected in between.
	cluster, err := kylix.NewCluster(8, kylix.WithReplication(2),
		kylix.WithDegrees(4), kylix.WithRecvTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	round := func() error {
		return cluster.Run(func(node *kylix.Node) error {
			out := []int32{3}
			red, err := node.Configure(out, out)
			if err != nil {
				return err
			}
			got, err := red.Reduce([]float32{1})
			if err != nil {
				return err
			}
			if got[0] != 4 {
				return fmt.Errorf("sum %v", got[0])
			}
			return nil
		})
	}
	if err := round(); err != nil {
		t.Fatal("round 1:", err)
	}
	if err := cluster.Kill(5); err != nil {
		t.Fatal(err)
	}
	if err := round(); err != nil {
		t.Fatal("round 2:", err)
	}
	if err := cluster.Kill(6); err != nil {
		t.Fatal(err)
	}
	if err := round(); err != nil {
		t.Fatal("round 3:", err)
	}
}

func TestReducerOptionOverTCP(t *testing.T) {
	cluster, err := kylix.NewCluster(2, kylix.WithTransport(kylix.TransportTCP), kylix.WithReducer(kylix.Min))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	err = cluster.Run(func(node *kylix.Node) error {
		out := []int32{1}
		red, err := node.Configure(out, out)
		if err != nil {
			return err
		}
		got, err := red.Reduce([]float32{float32(10 - node.Rank())})
		if err != nil {
			return err
		}
		if got[0] != 9 { // min(10, 9)
			t.Errorf("min over TCP = %v", got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMissingAccessor(t *testing.T) {
	cluster, err := kylix.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	var mu sync.Mutex
	total := 0
	err = cluster.Run(func(node *kylix.Node) error {
		red, err := node.Configure([]int32{1, 77777}, []int32{1})
		if err != nil {
			return err
		}
		mu.Lock()
		total += red.Missing()
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 1 {
		t.Fatalf("missing total = %d, want 1", total)
	}
}

func TestDesignFromSampleFacade(t *testing.T) {
	// Synthetic power-law occurrence sample -> fitted design.
	rng := rand.New(rand.NewSource(1))
	n := int64(1 << 13)
	var occ []int32
	for i := 0; i < 30000; i++ {
		// Zipf-ish: rank r with probability ~ 1/r.
		r := int32(math.Exp(rng.Float64()*math.Log(float64(n)))) - 1
		if r >= int32(n) {
			r = int32(n) - 1
		}
		occ = append(occ, r)
	}
	degrees, alpha, err := kylix.DesignFromSample(7, occ, n, 16, 4, 512)
	if err != nil {
		t.Fatal(err)
	}
	prod := 1
	for _, d := range degrees {
		prod *= d
	}
	if prod != 16 {
		t.Fatalf("degrees %v", degrees)
	}
	if alpha < 0.3 || alpha > 2.5 {
		t.Fatalf("alpha %f out of fit range", alpha)
	}
}

func TestChannelDerivedNetworks(t *testing.T) {
	// The diameter/components pattern at the facade level: a MAX network
	// on channel 1 interleaved with the main SUM network, across two
	// cluster runs.
	cluster, err := kylix.NewCluster(4, kylix.WithDegrees(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	round := func() error {
		return cluster.Run(func(node *kylix.Node) error {
			maxNet, err := node.Channel(1, kylix.WithReducer(kylix.Max))
			if err != nil {
				return err
			}
			out := []int32{5}
			sumRed, err := node.Configure(out, out)
			if err != nil {
				return err
			}
			maxRed, err := maxNet.Configure(out, out)
			if err != nil {
				return err
			}
			v := []float32{float32(node.Rank() + 1)}
			sum, err := sumRed.Reduce(v)
			if err != nil {
				return err
			}
			mx, err := maxRed.Reduce(v)
			if err != nil {
				return err
			}
			if sum[0] != 10 {
				t.Errorf("sum = %v, want 10", sum[0])
			}
			if mx[0] != 4 {
				t.Errorf("max = %v, want 4", mx[0])
			}
			return nil
		})
	}
	if err := round(); err != nil {
		t.Fatal("round 1:", err)
	}
	if err := round(); err != nil {
		t.Fatal("round 2:", err)
	}
}

func TestChannelValidation(t *testing.T) {
	cluster, err := kylix.NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	err = cluster.Run(func(node *kylix.Node) error {
		if _, err := node.Channel(0); err == nil {
			t.Error("accepted the node's own channel")
		}
		if _, err := node.Channel(1, kylix.WithChannel(2)); err == nil {
			t.Error("accepted conflicting channel option")
		}
		ch, err := node.Channel(3, kylix.WithWidth(2))
		if err != nil {
			return err
		}
		if ch.Width() != 2 {
			t.Errorf("derived width %d", ch.Width())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
