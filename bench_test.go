package kylix_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (§VII), each delegating to the internal/bench harness that regenerates
// the corresponding result, plus micro-benchmarks of the protocol's hot
// paths. Run with:
//
//	go test -bench=. -benchmem
//
// The per-op wall time of the Figure/Table benchmarks is the local cost
// of regenerating the experiment; the experiment's *content* (modelled
// EC2 seconds, traffic volumes) is printed by cmd/kylix-bench and
// recorded in EXPERIMENTS.md.

import (
	"math/rand"
	"testing"

	"kylix"
	"kylix/internal/bench"
	"kylix/internal/netsim"
)

func benchScale() bench.Scale {
	return bench.QuickScale()
}

// BenchmarkFigure2PacketSweep regenerates the throughput-vs-packet-size
// curve (the minimum-efficient-packet effect).
func BenchmarkFigure2PacketSweep(b *testing.B) {
	model := netsim.EC2()
	for i := 0; i < b.N; i++ {
		if tab := bench.Figure2(model); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure4Density regenerates the density-function curves.
func BenchmarkFigure4Density(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := bench.Figure4(); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure5LayerVolumes regenerates the per-layer communication
// volume profile (the "Kylix" shape) from a real protocol run.
func BenchmarkFigure5LayerVolumes(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure5(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6Topologies regenerates the direct/optimal/binary
// config+reduce timing comparison.
func BenchmarkFigure6Topologies(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure6(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7Threads regenerates the thread-count sweep.
func BenchmarkFigure7Threads(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure7(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIFaultTolerance regenerates the replication cost table
// (real runs with killed machines).
func BenchmarkTableIFaultTolerance(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.TableI(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8Systems regenerates the Kylix/PowerGraph-proxy/
// Hadoop-proxy PageRank comparison.
func BenchmarkFigure8Systems(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure8(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9Scaling regenerates the cluster-size scaling study.
func BenchmarkFigure9Scaling(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure9(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDesignSearch regenerates the workflow-vs-exhaustive
// degree-search ablation.
func BenchmarkAblationDesignSearch(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationDesignSearch(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFusedConfigReduce regenerates the fused-vs-separate
// configure+reduce ablation.
func BenchmarkAblationFusedConfigReduce(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationFusedConfigReduce(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPacketRacing regenerates the §V-B racing-gain table.
func BenchmarkAblationPacketRacing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := bench.AblationPacketRacing(); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkAblationJitterDES regenerates the discrete-event jitter
// ablation (layer-count and fan-in effects under latency variance).
func BenchmarkAblationJitterDES(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationJitterDES(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- protocol hot-path micro-benchmarks ---

// benchCluster runs configure once and b.N reduces over an in-process
// cluster, reporting per-allreduce cost.
func benchAllreduce(b *testing.B, machines int, degrees []int, nnzPerNode int, opts ...kylix.Option) {
	opts = append(opts, kylix.WithDegrees(degrees...))
	cluster, err := kylix.NewCluster(machines, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()

	sets := make([][]int32, machines)
	for r := range sets {
		rng := rand.New(rand.NewSource(int64(r)))
		seen := map[int32]bool{}
		for len(sets[r]) < nnzPerNode {
			v := rng.Int31n(int32(nnzPerNode * 8))
			if !seen[v] {
				seen[v] = true
				sets[r] = append(sets[r], v)
			}
		}
	}
	b.ResetTimer()
	err = cluster.Run(func(node *kylix.Node) error {
		set := sets[node.Rank()%len(sets)]
		vals := make([]float32, len(set))
		red, err := node.Configure(set, set)
		if err != nil {
			return err
		}
		for i := 0; i < b.N; i++ {
			if _, err := red.Reduce(vals); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAllreduce8x4x2 measures the paper's optimal 64-machine
// topology end to end (in-process transport).
func BenchmarkAllreduce8x4x2(b *testing.B) {
	benchAllreduce(b, 64, []int{8, 4, 2}, 2048)
}

// BenchmarkAllreduceDirect64 measures the direct all-to-all baseline on
// the same workload.
func BenchmarkAllreduceDirect64(b *testing.B) {
	benchAllreduce(b, 64, []int{64}, 2048)
}

// BenchmarkAllreduceBinary64 measures the binary butterfly baseline.
func BenchmarkAllreduceBinary64(b *testing.B) {
	benchAllreduce(b, 64, []int{2, 2, 2, 2, 2, 2}, 2048)
}

// BenchmarkAllreduceReplicated measures the replication overhead
// (factor 2 over 8x4 on 64 physical machines).
func BenchmarkAllreduceReplicated(b *testing.B) {
	benchAllreduce(b, 64, []int{8, 4}, 2048, kylix.WithReplication(2))
}

// BenchmarkConfigureReduceFused measures the combined configure+reduce
// path used by minibatch workloads (fresh sets each op).
func BenchmarkConfigureReduceFused(b *testing.B) {
	cluster, err := kylix.NewCluster(16, kylix.WithDegrees(4, 4))
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	b.ResetTimer()
	err = cluster.Run(func(node *kylix.Node) error {
		rng := rand.New(rand.NewSource(int64(node.Rank())))
		for i := 0; i < b.N; i++ {
			seen := map[int32]bool{}
			var set []int32
			for len(set) < 256 {
				v := rng.Int31n(4096)
				if !seen[v] {
					seen[v] = true
					set = append(set, v)
				}
			}
			vals := make([]float32, len(set))
			if _, _, err := node.ConfigureReduce(set, set, vals); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAllreduceTCP measures the same collective over real loopback
// TCP sockets.
func BenchmarkAllreduceTCP(b *testing.B) {
	benchAllreduce(b, 8, []int{4, 2}, 2048, kylix.WithTransport(kylix.TransportTCP))
}
