package kylix_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"kylix/internal/leakcheck"
)

// TestDaemonStreams runs the long-lived multi-tenant deployment end to
// end: four kylix-node processes in -daemon mode, driven over rank 0's
// HTTP control API. Two streams created with identical parameters must
// report identical aggregate digests even though their traffic
// interleaves on the shared fabric — the daemon-level isolation check —
// and close/shutdown must tear everything down cleanly.
func TestDaemonStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	defer leakcheck.Check(t)()
	dir := t.TempDir()
	nodeBin := filepath.Join(dir, "kylix-node")
	if out, err := exec.Command("go", "build", "-o", nodeBin, "kylix/cmd/kylix-node").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	addrs, err := reservePorts(5)
	if err != nil {
		t.Skip("cannot reserve ports:", err)
	}
	hosts := strings.Join(addrs[:4], ",")
	controlAddr := addrs[4]

	outs := make([][]byte, 4)
	errs := make([]error, 4)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cmd := exec.Command(nodeBin,
				"-rank", fmt.Sprint(r),
				"-hosts", hosts,
				"-degrees", "2x2",
				"-daemon",
				"-control-addr", controlAddr,
				"-timeout", "30s",
			)
			outs[r], errs[r] = cmd.CombinedOutput()
		}(r)
	}

	base := "http://" + controlAddr
	call := func(method, path string) (map[string]any, int) {
		t.Helper()
		req, err := http.NewRequest(method, base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		var resp *http.Response
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err = http.DefaultClient.Do(req)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s %s: %v", method, path, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
		defer resp.Body.Close()
		var body map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return body, resp.StatusCode
	}

	// Two tenants with identical workload parameters on the shared
	// fabric: their digests must agree exactly.
	a, code := call("POST", "/streams?n=8192&nnz=256&seed=7")
	if code != http.StatusOK {
		t.Fatalf("create a: status %d (%v)", code, a)
	}
	b, code := call("POST", "/streams?n=8192&nnz=256&seed=7")
	if code != http.StatusOK {
		t.Fatalf("create b: status %d (%v)", code, b)
	}
	if a["digest"] != b["digest"] {
		t.Fatalf("identical tenants diverged: %v vs %v", a["digest"], b["digest"])
	}
	aID, bID := int(a["stream"].(float64)), int(b["stream"].(float64))
	if aID == bID {
		t.Fatalf("stream id %d reused", aID)
	}

	// Warm passes on both tenants; same rounds, same seed -> same digest.
	ra, code := call("POST", fmt.Sprintf("/streams/%d/reduce?rounds=2", aID))
	if code != http.StatusOK {
		t.Fatalf("reduce a: status %d (%v)", code, ra)
	}
	rb, code := call("POST", fmt.Sprintf("/streams/%d/reduce?rounds=2", bID))
	if code != http.StatusOK {
		t.Fatalf("reduce b: status %d (%v)", code, rb)
	}
	if ra["digest"] != rb["digest"] {
		t.Fatalf("identical reduces diverged: %v vs %v", ra["digest"], rb["digest"])
	}

	// Close tenant a; reducing on it afterwards must fail; b still works.
	if _, code := call("DELETE", fmt.Sprintf("/streams/%d", aID)); code != http.StatusOK {
		t.Fatalf("close a: status %d", code)
	}
	if _, code := call("POST", fmt.Sprintf("/streams/%d/reduce?rounds=1", aID)); code == http.StatusOK {
		t.Fatal("reduce on closed stream succeeded")
	}
	if _, code := call("POST", fmt.Sprintf("/streams/%d/reduce?rounds=1", bID)); code != http.StatusOK {
		t.Fatal("surviving stream broken after sibling close")
	}

	if _, code := call("POST", "/shutdown"); code != http.StatusOK {
		t.Fatal("shutdown failed")
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("daemons did not exit after shutdown")
	}
	for r := 0; r < 4; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d failed: %v\n%s", r, errs[r], outs[r])
		}
		if !strings.Contains(string(outs[r]), "daemon OK") {
			t.Fatalf("rank %d did not shut down cleanly: %s", r, outs[r])
		}
	}
}
