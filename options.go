package kylix

import (
	"math/rand"
	"time"

	"kylix/internal/comm"
	"kylix/internal/faultnet"
	"kylix/internal/obs"
	"kylix/internal/powerlaw"
	"kylix/internal/sparse"
)

// Reducer combines the values of a feature contributed by different
// machines. See Sum, Max, Min and Or.
type Reducer = sparse.Reducer

// Built-in reducers.
var (
	// Sum adds contributions (the default; PageRank, gradients).
	Sum = sparse.Sum
	// Max keeps the elementwise maximum.
	Max = sparse.Max
	// Min keeps the elementwise minimum (label propagation).
	Min = sparse.Min
	// Or treats each float32 as a 32-bit mask and unions them
	// (Flajolet-Martin sketches).
	Or = sparse.Or
)

// Quantization selects the wire encoding of reduce/gather value blocks;
// see WithQuantization.
type Quantization = sparse.Quantization

// Quantization modes.
const (
	// QuantOff ships raw float32 values (the default, bit-exact).
	QuantOff = sparse.QuantOff
	// QuantFP16 ships IEEE half-precision values: 2 bytes per value
	// (2x smaller), round-to-nearest-even, ~3 decimal digits.
	QuantFP16 = sparse.QuantFP16
	// QuantINT8 ships per-piece max-abs-scaled 8-bit values: a 4-byte
	// scale plus 1 byte per value (~4x smaller).
	QuantINT8 = sparse.QuantINT8
)

// ParseQuantization maps "off" (or ""), "fp16" and "int8" to the
// corresponding mode, for flags and HTTP parameters.
func ParseQuantization(s string) (Quantization, error) {
	return sparse.ParseQuantization(s)
}

// ValuesDigest is an order-sensitive FNV-1a hash of a float32 vector's
// exact bit patterns — the oracle for asserting that reduction results
// are bit-identical across runs, transports and fault schedules.
func ValuesDigest(vals []float32) uint64 { return sparse.ValuesDigest(vals) }

// Transport selects how cluster machines exchange messages.
type Transport int

const (
	// TransportMemory runs machines as goroutines with in-memory
	// mailboxes: fastest, supports failure injection. The default.
	TransportMemory Transport = iota
	// TransportTCP runs machines as goroutines connected through real
	// loopback TCP sockets, exercising the full wire path.
	TransportTCP
)

type config struct {
	degrees        []int
	binary         bool
	transport      Transport
	replication    int
	width          int
	reducer        Reducer
	strict         bool
	recvTimeout    time.Duration
	channel        uint8
	trace          bool
	faults         *faultnet.Plan
	observe        bool
	elastic        *ElasticOptions
	combineWorkers int
	maxBatchBytes  int
	nagle          bool
	// quant is the wire encoding of value blocks (default QuantOff).
	quant Quantization
	// stream is the tag namespace nodes built from this config mint
	// into. DefaultStream for Cluster.Run and ListenNode; set by
	// Cluster.OpenStream for tenant streams.
	stream comm.StreamID
	// maxStreams bounds how many streams may be open at once.
	maxStreams int
	// streamInflight bounds each stream's queued-plus-running passes.
	streamInflight int
	// streamSlots is the fabric's global concurrent-pass budget.
	streamSlots int
	// obsv is the live Observatory once construction wired it (set by
	// NewCluster/ListenNode when observe is on, then read by newNode).
	obsv *obs.Observatory
}

func defaultConfig() config {
	return config{
		transport:      TransportMemory,
		replication:    1,
		width:          1,
		reducer:        Sum,
		recvTimeout:    30 * time.Second,
		maxStreams:     64,
		streamInflight: 4,
		streamSlots:    4,
	}
}

// Option customizes a Cluster or a listening Node.
type Option func(*config)

// WithDegrees fixes the butterfly layer degrees d_1, ..., d_l. Their
// product must equal the (logical) machine count. Without this option
// the cluster uses the direct (single-layer) topology.
func WithDegrees(degrees ...int) Option {
	return func(c *config) { c.degrees = append([]int(nil), degrees...) }
}

// WithBinaryButterfly selects the log2(m)-layer degree-2 topology. The
// (logical) machine count must be a power of two.
func WithBinaryButterfly() Option {
	return func(c *config) { c.binary = true }
}

// WithTransport selects the message transport.
func WithTransport(t Transport) Option {
	return func(c *config) { c.transport = t }
}

// WithReplication enables the paper's §V fault tolerance: data and
// messages are replicated s ways, receivers race the copies, and the
// protocol survives any failures that leave one live replica per group.
// The machine count must be divisible by s; the topology then spans the
// m/s logical machines.
func WithReplication(s int) Option {
	return func(c *config) { c.replication = s }
}

// WithWidth sets the number of float32 values carried per feature
// (default 1).
func WithWidth(w int) Option {
	return func(c *config) { c.width = w }
}

// WithReducer sets the combining operation (default Sum).
func WithReducer(r Reducer) Option {
	return func(c *config) { c.reducer = r }
}

// WithCombineWorkers sizes each machine's intra-node worker pool: large
// combine/gather folds are sharded by disjoint index ranges across n
// goroutines, the paper's Figure 7 threading of the combine stage.
// 0 (the default) selects min(GOMAXPROCS, 4); 1 keeps every kernel on
// the machine goroutine. Results are bit-identical for every setting —
// sharding partitions rows, never the per-row fold order — and the warm
// Reduce stays allocation-free.
func WithCombineWorkers(n int) Option {
	return func(c *config) { c.combineWorkers = n }
}

// WithQuantization selects the wire encoding of the values shipped by
// the scatter-reduce and allgather passes. QuantOff (the default) sends
// raw float32s and is bit-exact. QuantFP16 and QuantINT8 quantize every
// value piece on send and dequantize on arrival — 2x and ~4x less value
// traffic — with an error-feedback residual per (layer, piece,
// direction): each round's quantization error is added to the next
// round's values before encoding, so values too small to survive one
// round's rounding accumulate until they ship instead of being lost
// forever. Results stay deterministic — every rank's output is a pure
// function of the inputs and call sequence, bit-identical across
// reruns, transports and chaotic fault schedules — but lossy modes are
// (by design) not bit-equal to a QuantOff run; relative error is
// bounded by the mode's precision. The warm Reduce remains
// allocation-free. Passed to OpenStream / Node.Stream it overrides the
// cluster default for that stream, so tenants choose their own
// precision/bandwidth point.
func WithQuantization(q Quantization) Option {
	return func(c *config) { c.quant = q }
}

// WithMaxBatchBytes bounds the TCP transport's per-peer write batches:
// queued frames are coalesced into a single gather-write (writev) of up
// to n payload bytes, turning many small layer-piece sends into one
// syscall — the Figure 2 packet-size floor chased at the sender. 0 (the
// default) selects 1 MiB; 1 effectively disables coalescing (every
// frame still goes out in one writev instead of two plain writes). The
// memory transport ignores it.
func WithMaxBatchBytes(n int) Option {
	return func(c *config) { c.maxBatchBytes = n }
}

// WithNagle re-enables the kernel's Nagle algorithm on the TCP
// transport's connections (TCP_NODELAY off). The default disables
// Nagle and owns flush policy in the transport's batching writer —
// frames queued in one protocol burst leave in one writev, and the last
// packet of a burst is never held hostage to a delayed ACK. Enable it
// only to compare against kernel-paced batching.
func WithNagle() Option {
	return func(c *config) { c.nagle = true }
}

// WithStrict makes configuration fail when a requested in-index has no
// contributor anywhere (instead of gathering the reducer's identity).
func WithStrict() Option {
	return func(c *config) { c.strict = true }
}

// WithRecvTimeout bounds blocking receives so dead unreplicated peers
// surface as errors rather than hangs (default 30s; 0 waits forever).
func WithRecvTimeout(d time.Duration) Option {
	return func(c *config) { c.recvTimeout = d }
}

// WithChannel namespaces the node's message tags so several independent
// allreduce networks can share the same cluster (e.g. a main reduction
// plus a convergence counter).
func WithChannel(ch uint8) Option {
	return func(c *config) { c.channel = ch }
}

// WithTrace enables traffic recording; see Cluster.Traffic.
func WithTrace() Option {
	return func(c *config) { c.trace = true }
}

// WithMaxStreams bounds how many tenant streams may be open on the
// cluster at once (default 64; n <= 0 means unbounded). OpenStream
// past the bound fails with stream.ErrTooManyStreams — admission
// control, the service's first line of overload defense.
func WithMaxStreams(n int) Option {
	return func(c *config) { c.maxStreams = n }
}

// WithStreamInflight bounds each stream's queued-plus-running
// collective passes (default 4; n <= 0 means unbounded). A pass
// submitted past the bound is rejected immediately with a
// *StreamBusyError instead of queueing without limit — per-tenant
// backpressure. Passed to OpenStream it overrides the cluster default
// for that stream.
func WithStreamInflight(n int) Option {
	return func(c *config) { c.streamInflight = n }
}

// WithStreamSlots sets the fabric's global concurrent-pass budget
// (default 4; n <= 0 selects 1, fully serialized). When more streams
// want to run than there are slots, grants rotate round-robin across
// the waiting streams, so one greedy tenant cannot starve the rest.
func WithStreamSlots(n int) Option {
	return func(c *config) { c.streamSlots = n }
}

// Observatory is the runtime observability state of a cluster built
// with WithObservability: per-machine span timelines of every
// config/reduce/gather pass, the metrics registry, and the exporters
// (Chrome trace_event JSON, human-readable timeline, HTTP endpoint).
type Observatory = obs.Observatory

// MetricsRegistry is the named counter/gauge/histogram collection
// exposed by Cluster.Metrics.
type MetricsRegistry = obs.Registry

// TraceSpan is one timed slice of protocol work on one machine.
type TraceSpan = obs.Span

// MetricsServer is a running observability HTTP endpoint.
type MetricsServer = obs.Server

// ServeMetrics starts the observability HTTP endpoint on addr —
// /metrics (expvar-style JSON snapshot), /trace (Chrome trace_event
// JSON) and /timeline (per-phase text summary). ":0" picks a free
// port; the bound address is in the returned server's Addr.
func ServeMetrics(addr string, o *Observatory) (*MetricsServer, error) {
	return obs.Serve(addr, o)
}

// WithObservability enables the runtime observability layer: per-layer
// spans on every pass, transport metrics (reconnects, resend-ring
// occupancy, dedup hits, receive waits) and fault-event timelines.
// Access the data via Cluster.Metrics / Cluster.Observability (or
// Node.Observability for ListenNode), export with
// Observatory.WriteChromeTrace / WriteTimeline, or serve it over HTTP
// with obs.Serve. The hot path stays allocation-free with this on.
func WithObservability() Option {
	return func(c *config) { c.observe = true }
}

// FaultPlan scripts deterministic fault injection for WithFaults: a
// seeded schedule of message drops, delays, duplicates, per-link
// reorders, crash-stop kills at precise points mid-round, and rank-set
// partitions. Every decision is a pure function of (Seed, sender,
// receiver, tag) — no wall clock — so the same plan replays identically
// on every run and both transports. See faultnet.Plan for field
// semantics.
type FaultPlan = faultnet.Plan

// FaultKill crash-stops a rank after exactly AfterSends sends — the
// deterministic way to land a failure mid-scatter or mid-gather.
type FaultKill = faultnet.Kill

// FaultPartition separates rank groups for a window of the sender's
// send count.
type FaultPartition = faultnet.Partition

// FaultInjector is the live fault controller of a cluster built with
// WithFaults: it exposes manual Kill/Partition/Heal, per-rank send
// counts (the logical clock kill schedules use), and Flush for
// releasing held messages between rounds.
type FaultInjector = faultnet.Fabric

// WithFaults interposes a deterministic chaos layer between the
// protocol and the transport (memory or TCP): messages are dropped,
// delayed, duplicated, reordered and partitioned, and machines crash-
// stopped mid-round, exactly as the seeded plan dictates. Combined with
// WithReplication(s) the §V guarantee applies: as long as the plan
// leaves one live, un-dropped replica per group — e.g. by listing only
// one replica half in plan.Faulty — every allreduce completes with
// results bit-identical to a fault-free run. The live controller is
// available as Cluster.Faults.
//
//	kylix.NewCluster(16,
//		kylix.WithReplication(2),
//		kylix.WithFaults(kylix.FaultPlan{
//			Seed:   42,
//			Faulty: []int{8, 9, 10, 11, 12, 13, 14, 15}, // upper replicas only
//			Drop:   0.1, Duplicate: 0.15,
//			Delay:  0.25, MaxDelay: 2 * time.Millisecond,
//			Kills:  []kylix.FaultKill{{Rank: 9, AfterSends: 40}},
//		}))
func WithFaults(plan FaultPlan) Option {
	return func(c *config) {
		p := plan
		c.faults = &p
	}
}

// DesignInput parameterizes DesignDegrees; see the package
// documentation of the design workflow (paper §IV).
type DesignInput = powerlaw.DesignInput

// DesignDegrees runs the paper's §IV workflow: given the feature count,
// the power-law exponent, the measured density of the initial per-node
// partition, the machine count and the network's minimum efficient
// packet size, it returns the optimal butterfly degrees (largest degree
// per layer that keeps packets at or above the floor, product equal to
// the machine count).
func DesignDegrees(in DesignInput) ([]int, error) {
	return powerlaw.Design(in)
}

// DesignFromSample runs the measure-then-design pipeline for datasets
// whose power-law exponent is unknown (§IV's empirical-curve variant):
// it fits (alpha, lambda) to a sample of raw feature occurrences (with
// multiplicity, e.g. all edge endpoints of one machine's partition) and
// returns the optimal degrees plus the fitted exponent.
func DesignFromSample(seed int64, occurrences []int32, n int64, machines, elemBytes int, minPacket float64) (degrees []int, alpha float64, err error) {
	rng := rand.New(rand.NewSource(seed))
	degrees, alpha, _, err = powerlaw.DesignFromSample(rng, occurrences, n, machines, elemBytes, minPacket)
	return degrees, alpha, err
}
