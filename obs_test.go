package kylix_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"kylix"
)

// zipfSets builds per-node power-law index sets — the data shape whose
// per-layer traffic contraction is the paper's Figure 5 "Kylix" profile.
func zipfSets(t *testing.T, m int, n int64, nnz int) [][]int32 {
	t.Helper()
	sets := make([][]int32, m)
	for r := 0; r < m; r++ {
		rng := rand.New(rand.NewSource(20140901 + int64(r)*7919))
		zipf := rand.NewZipf(rng, 1.3, 1, uint64(n-1))
		seen := map[int32]bool{}
		set := make([]int32, 0, nnz)
		for len(set) < nnz {
			idx := int32(zipf.Uint64())
			if !seen[idx] {
				seen[idx] = true
				set = append(set, idx)
			}
		}
		sets[r] = set
	}
	return sets
}

// TestObservabilityLayerProfile runs a power-law allreduce with the full
// observability layer on and checks the three tentpole outputs: the
// per-layer byte counters contract layer by layer (the Figure 5
// profile), the span timelines carry the same story, and the Chrome
// trace export is valid trace_event JSON.
func TestObservabilityLayerProfile(t *testing.T) {
	const (
		m   = 16
		n   = int64(4096)
		nnz = 512
	)
	cluster, err := kylix.NewCluster(m,
		kylix.WithDegrees(4, 4),
		kylix.WithObservability(),
		kylix.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.Observability() == nil || cluster.Metrics() == nil {
		t.Fatal("observability accessors nil despite WithObservability")
	}

	sets := zipfSets(t, m, n, nnz)
	err = cluster.Run(func(node *kylix.Node) error {
		set := sets[node.Rank()]
		vals := make([]float32, len(set))
		for i := range vals {
			vals[i] = 1
		}
		red, _, err := node.ConfigureReduce(set, set, vals)
		if err != nil {
			return err
		}
		_, err = red.Reduce(vals)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	snap := cluster.Metrics().Snapshot()
	l1 := snap.Counters["bytes_reduce_L1"]
	l2 := snap.Counters["bytes_reduce_L2"]
	if l1 == 0 || l2 == 0 {
		t.Fatalf("per-layer reduce byte counters missing: L1=%d L2=%d", l1, l2)
	}
	if l1 <= l2 {
		t.Fatalf("power-law reduce traffic did not contract: L1=%d <= L2=%d", l1, l2)
	}
	// Every machine counts each of its two collective passes.
	if got := snap.Counters["reduce_rounds"]; got != 2*m {
		t.Fatalf("reduce_rounds = %d, want %d", got, 2*m)
	}
	if snap.Counters["recv_msgs"] == 0 || snap.Counters["recv_bytes"] == 0 {
		t.Fatal("receive counters empty: transport observer not wired")
	}
	if snap.Histograms["recv_wait_ns"].Count == 0 {
		t.Fatal("receive wait histogram empty")
	}

	// The span timelines must tell the same per-layer story.
	layerOut := map[int]int64{}
	for _, sp := range cluster.Observability().Spans() {
		if sp.Event == "" && sp.Layer > 0 && sp.Kind.String() == "reduce" {
			layerOut[sp.Layer] += sp.BytesOut
		}
	}
	if layerOut[1] <= layerOut[2] || layerOut[2] == 0 {
		t.Fatalf("span per-layer bytes not contracting: %v", layerOut)
	}

	var buf bytes.Buffer
	if err := cluster.Observability().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	var meta, slices int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			slices++
		}
	}
	if meta != m || slices == 0 {
		t.Fatalf("trace events: %d metadata (want %d), %d slices (want > 0)", meta, m, slices)
	}

	// The traffic report surfaces the per-receiver hotspot volumes.
	rep, err := cluster.Traffic(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, lt := range rep.Layers {
		if lt.Bytes > 0 && lt.MaxNodeRecvBytes == 0 {
			t.Fatalf("layer %v L%d has traffic but no per-receiver max", lt.Phase, lt.Layer)
		}
		if lt.MaxNodeRecvBytes > lt.Bytes {
			t.Fatalf("per-receiver max %d exceeds layer total %d", lt.MaxNodeRecvBytes, lt.Bytes)
		}
	}
}

// TestObservabilityOffByDefault pins the opt-in contract: without
// WithObservability every accessor returns nil and runs still work.
func TestObservabilityOffByDefault(t *testing.T) {
	cluster, err := kylix.NewCluster(4, kylix.WithDegrees(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.Observability() != nil || cluster.Metrics() != nil {
		t.Fatal("observability accessors non-nil without the option")
	}
	err = cluster.Run(func(node *kylix.Node) error {
		if node.Observability() != nil || node.Metrics() != nil {
			t.Error("node observability accessors non-nil without the option")
		}
		set := []int32{int32(node.Rank()), 100}
		_, _, err := node.ConfigureReduce(set, set, []float32{1, 1})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestObservabilityRecordsFaults wires the fault fabric and the
// observability layer together: injected duplicates must land in the
// fault counters and as instant events on the span timeline.
func TestObservabilityRecordsFaults(t *testing.T) {
	cluster, err := kylix.NewCluster(4,
		kylix.WithDegrees(2, 2),
		kylix.WithObservability(),
		kylix.WithFaults(kylix.FaultPlan{Seed: 7, Duplicate: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	err = cluster.Run(func(node *kylix.Node) error {
		set := []int32{int32(node.Rank() * 3), 50, 51}
		vals := []float32{1, 1, 1}
		_, _, err := node.ConfigureReduce(set, set, vals)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := cluster.Metrics().Snapshot()
	if snap.Counters["fault_duplicate"] == 0 {
		t.Fatal("injected duplicates not counted")
	}
	var instants int64
	for _, sp := range cluster.Observability().Spans() {
		if sp.Event == "duplicate" {
			instants++
		}
	}
	if instants == 0 {
		t.Fatal("no duplicate instant events on the timeline")
	}
	if instants != snap.Counters["fault_duplicate"] {
		t.Fatalf("instant events (%d) disagree with counter (%d)", instants, snap.Counters["fault_duplicate"])
	}
}
