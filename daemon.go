package kylix

import (
	"fmt"

	"kylix/internal/comm"
	"kylix/internal/core"
)

// StreamCtl is the tenant-stream control-plane message served by the
// kylix-node daemon over the cluster's KindControl tag space: stream
// create/reduce/close/shutdown commands broadcast by the coordinator
// rank and the per-rank acknowledgements. See cmd/kylix-node -daemon.
type StreamCtl = comm.StreamCtl

// StreamCtl operation codes.
const (
	OpStreamCreate   = comm.OpStreamCreate
	OpStreamReduce   = comm.OpStreamReduce
	OpStreamClose    = comm.OpStreamClose
	OpStreamShutdown = comm.OpStreamShutdown
	OpStreamAck      = comm.OpStreamAck
)

// The daemon's control channel lives on KindControl layer 1 (the
// membership gossip owns layer 0): commands flow coordinator -> rank on
// ctlCmd, acknowledgements rank -> coordinator on ctlAck. Each (sender,
// tag) mailbox queue is FIFO, so a fixed pair of tags carries the whole
// sequenced protocol.
var (
	streamCtlCmdTag = comm.MakeTag(comm.KindControl, 1, 0)
	streamCtlAckTag = comm.MakeTag(comm.KindControl, 1, 1)
)

// ControlSend sends a daemon control message to the given rank (ack
// messages go on the ack tag so a coordinator that is also a worker
// never confuses its own command echo with a reply).
func (n *Node) ControlSend(to int, ctl *StreamCtl) error {
	tag := streamCtlCmdTag
	if ctl.Op == OpStreamAck {
		tag = streamCtlAckTag
	}
	return n.ep.Send(to, tag, ctl)
}

// ControlRecv blocks for the next daemon control message from the given
// rank: commands when ack is false, acknowledgements when true. Receive
// timeouts surface as *comm.TimeoutError via errors.As-compatible
// wrapping — an idle daemon loop should treat them as "no command yet"
// and keep waiting.
func (n *Node) ControlRecv(from int, ack bool) (*StreamCtl, error) {
	tag := streamCtlCmdTag
	if ack {
		tag = streamCtlAckTag
	}
	p, err := n.ep.Recv(from, tag)
	if err != nil {
		return nil, err
	}
	ctl, ok := p.(*StreamCtl)
	if !ok {
		return nil, fmt.Errorf("kylix: unexpected %T on the stream control channel", p)
	}
	return ctl, nil
}

// Stream derives a node bound to the given tenant stream id over the
// same endpoint: its message tags live in the stream's namespace, so
// its collectives interleave freely with the main node's and with other
// streams' — the cross-process counterpart of Cluster.OpenStream.
// Every machine must derive the same id with the same options, the id
// must be nonzero (0 is the node's own namespace) and must be derived
// at most once per node lifetime (each derivation starts the stream's
// tag space from round zero). Options may override WithWidth,
// WithReducer and WithStrict; transport and replication are inherited.
func (n *Node) Stream(id uint16, opts ...Option) (*Node, error) {
	if id == 0 {
		return nil, fmt.Errorf("kylix: stream 0 is the node's own namespace")
	}
	cfg := n.cfg
	cfg.stream = comm.StreamID(id)
	for _, o := range opts {
		o(&cfg)
	}
	mach, err := core.NewMachine(n.ep, n.bf, core.Options{
		Width:          cfg.width,
		Reducer:        cfg.reducer,
		Strict:         cfg.strict,
		Channel:        cfg.channel,
		Quant:          cfg.quant,
		Stream:         cfg.stream,
		Tracer:         cfg.obsv.Node(n.physRank),
		CombineWorkers: cfg.combineWorkers,
	})
	if err != nil {
		return nil, err
	}
	return &Node{
		mach: mach, ep: n.ep, bf: n.bf, cfg: cfg,
		physRank: n.physRank, width: cfg.width, tn: n.tn,
	}, nil
}

// CloseStream purges the given tenant stream's namespace from this
// machine's transport mailbox: queued messages are dropped, the
// pending-sender index entries are removed, and late deliveries (TCP
// resend replays) into the dead namespace are discarded from then on.
// Collective: every machine must close the same streams. Only
// meaningful on nodes with a real transport (ListenNode); in-process
// clusters purge through Stream.Close.
func (n *Node) CloseStream(id uint16) {
	if n.tn != nil {
		n.tn.CloseStream(comm.StreamID(id))
	}
}
