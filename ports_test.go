package kylix_test

import "net"

// reservePorts finds n free loopback TCP ports by binding and releasing
// listeners. There is a small race window before the real listeners
// rebind, which is acceptable for tests.
func reservePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range listeners {
			_ = ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}
