package kylix_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"kylix"
	"kylix/internal/leakcheck"
)

// streamWorkload is one tenant's deterministic reduction: per-rank
// Zipf index sets seeded by the tenant id, values a non-trivial
// function of (tenant, rank, round) so cross-delivered payloads would
// corrupt results detectably, and several Reduce rounds per Configure
// so warm-path traffic shares the fabric too.
type streamWorkload struct {
	tenant int
	sets   [][]int32
}

func newStreamWorkload(t testing.TB, tenant, m int, n int64, nnz int) *streamWorkload {
	t.Helper()
	sets := make([][]int32, m)
	for r := 0; r < m; r++ {
		rng := rand.New(rand.NewSource(int64(tenant)*1_000_003 + int64(r)*7919 + 1))
		zipf := rand.NewZipf(rng, 1.3, 1, uint64(n-1))
		seen := map[int32]bool{}
		set := make([]int32, 0, nnz)
		for len(set) < nnz {
			idx := int32(zipf.Uint64())
			if !seen[idx] {
				seen[idx] = true
				set = append(set, idx)
			}
		}
		sets[r] = set
	}
	return &streamWorkload{tenant: tenant, sets: sets}
}

// run executes the workload's pass on one node: ConfigureReduce plus
// `rounds` warm Reduces, returning the concatenated per-round results.
func (w *streamWorkload) run(node *kylix.Node, rounds int) ([][]float32, error) {
	set := w.sets[node.Rank()]
	vals := make([]float32, len(set))
	for i := range vals {
		vals[i] = float32(w.tenant+1) + float32(node.Rank())*0.25 + float32(i%7)*0.125
	}
	red, first, err := node.ConfigureReduce(set, set, vals)
	if err != nil {
		return nil, err
	}
	out := [][]float32{first}
	for r := 1; r < rounds; r++ {
		for i := range vals {
			vals[i] = float32(w.tenant+1)*float32(r+1) + float32(node.Rank())*0.5
		}
		res, err := red.Reduce(vals)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// collect runs the workload over a runner (Cluster.Run or Stream.Run)
// and gathers every rank's per-round results.
func (w *streamWorkload) collect(runner func(func(*kylix.Node) error) error, m, rounds int) ([][][]float32, error) {
	res := make([][][]float32, m)
	var mu sync.Mutex
	err := runner(func(node *kylix.Node) error {
		v, err := w.run(node, rounds)
		if err != nil {
			return err
		}
		mu.Lock()
		res[node.Rank()] = v
		mu.Unlock()
		return nil
	})
	return res, err
}

func assertStreamMatchesIsolated(t *testing.T, tenant int, got, want [][][]float32) {
	t.Helper()
	for rank := range want {
		if got[rank] == nil || want[rank] == nil {
			t.Fatalf("tenant %d rank %d: missing results", tenant, rank)
		}
		for round := range want[rank] {
			if !bitsEqual(got[rank][round], want[rank][round]) {
				t.Fatalf("tenant %d rank %d round %d: concurrent result differs from isolated run",
					tenant, rank, round)
			}
		}
	}
}

// TestStreamIsolation64 is the tentpole gate: K concurrent Zipf
// streams over one shared 64-machine fabric produce per-stream results
// bit-identical to K isolated runs. Before the widened tag layout,
// concurrent Configs collided on identical tags and cross-delivered
// payloads; this is the regression test for that headline bug.
func TestStreamIsolation64(t *testing.T) {
	defer leakcheck.Check(t)()
	const (
		m       = 64
		n       = int64(8192)
		nnz     = 256
		tenants = 4
		rounds  = 3
	)
	opts := []kylix.Option{
		kylix.WithDegrees(4, 4, 4),
		kylix.WithRecvTimeout(60 * time.Second),
	}

	// Isolated ground truth: each tenant alone on a fresh cluster.
	isolated := make([][][][]float32, tenants)
	workloads := make([]*streamWorkload, tenants)
	for k := 0; k < tenants; k++ {
		workloads[k] = newStreamWorkload(t, k, m, n, nnz)
		solo, err := kylix.NewCluster(m, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := workloads[k].collect(solo.Run, m, rounds)
		solo.Close()
		if err != nil {
			t.Fatalf("isolated tenant %d: %v", k, err)
		}
		isolated[k] = res
	}

	// Concurrent: all tenants share one fabric, running at once.
	shared, err := kylix.NewCluster(m, append(opts, kylix.WithStreamSlots(tenants))...)
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()
	concurrent := make([][][][]float32, tenants)
	errs := make([]error, tenants)
	var wg sync.WaitGroup
	for k := 0; k < tenants; k++ {
		st, err := shared.OpenStream()
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		wg.Add(1)
		go func(k int, st *kylix.Stream) {
			defer wg.Done()
			concurrent[k], errs[k] = workloads[k].collect(st.Run, m, rounds)
		}(k, st)
	}
	wg.Wait()
	for k := 0; k < tenants; k++ {
		if errs[k] != nil {
			t.Fatalf("concurrent tenant %d: %v", k, errs[k])
		}
		assertStreamMatchesIsolated(t, k, concurrent[k], isolated[k])
	}
	if shared.ActiveStreams() != tenants {
		t.Fatalf("ActiveStreams = %d, want %d", shared.ActiveStreams(), tenants)
	}
}

// testStreamIsolationChaos runs K concurrent streams under the chaos
// fault fabric (drops, duplicates, delays, reorders confined to the
// upper replica half — §V's survivable regime) and asserts each
// stream's results stay bit-identical to its isolated fault-free run.
// Adversarial tag overlap is built in: every tenant uses the same
// (kind, layer, seq) triples, distinguished only by the stream field.
func testStreamIsolationChaos(t *testing.T, transport kylix.Transport) {
	const (
		phys    = 16
		logical = 8
		n       = int64(2048)
		nnz     = 96
		tenants = 3
		rounds  = 3
	)
	base := []kylix.Option{
		kylix.WithTransport(transport),
		kylix.WithReplication(2),
		kylix.WithDegrees(4, 2),
		kylix.WithRecvTimeout(30 * time.Second),
	}
	isolated := make([][][][]float32, tenants)
	workloads := make([]*streamWorkload, tenants)
	for k := 0; k < tenants; k++ {
		workloads[k] = newStreamWorkload(t, k, logical, n, nnz)
		solo, err := kylix.NewCluster(phys, base...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := workloads[k].collect(solo.Run, logical, rounds)
		solo.Close()
		if err != nil {
			t.Fatalf("isolated tenant %d: %v", k, err)
		}
		isolated[k] = res
	}

	plan := kylix.FaultPlan{
		Seed:      4242,
		Faulty:    []int{8, 9, 10, 11, 12, 13, 14, 15},
		Drop:      0.08,
		Duplicate: 0.12,
		Delay:     0.20,
		MaxDelay:  2 * time.Millisecond,
		Reorder:   0.06,
	}
	shared, err := kylix.NewCluster(phys, append(append([]kylix.Option{}, base...),
		kylix.WithFaults(plan), kylix.WithStreamSlots(tenants))...)
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()
	concurrent := make([][][][]float32, tenants)
	errs := make([]error, tenants)
	var wg sync.WaitGroup
	for k := 0; k < tenants; k++ {
		st, err := shared.OpenStream()
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		wg.Add(1)
		go func(k int, st *kylix.Stream) {
			defer wg.Done()
			concurrent[k], errs[k] = workloads[k].collect(st.Run, logical, rounds)
		}(k, st)
	}
	wg.Wait()
	for k := 0; k < tenants; k++ {
		if errs[k] != nil {
			t.Fatalf("chaos tenant %d: %v", k, errs[k])
		}
		assertStreamMatchesIsolated(t, k, concurrent[k], isolated[k])
	}
	st := shared.Faults().Stats()
	if st.Dropped == 0 || st.Duplicated == 0 || st.Delayed == 0 {
		t.Fatalf("chaos schedule never engaged: %+v", st)
	}
}

func TestStreamIsolationChaosMemory(t *testing.T) {
	testStreamIsolationChaos(t, kylix.TransportMemory)
}

func TestStreamIsolationChaosTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp chaos soak")
	}
	testStreamIsolationChaos(t, kylix.TransportTCP)
}

// TestStreamAdmission pins the WithMaxStreams bound and id hygiene.
func TestStreamAdmission(t *testing.T) {
	defer leakcheck.Check(t)()
	c, err := kylix.NewCluster(4, kylix.WithMaxStreams(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a, err := c.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.OpenStream(); !errors.Is(err, kylix.ErrTooManyStreams) {
		t.Fatalf("err = %v, want ErrTooManyStreams", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := c.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if d.ID() == a.ID() || d.ID() == b.ID() {
		t.Fatalf("stream id %d reused", d.ID())
	}
	// Close is idempotent.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if c.ActiveStreams() != 2 {
		t.Fatalf("ActiveStreams = %d, want 2", c.ActiveStreams())
	}
}

// TestStreamBackpressure pins the per-stream in-flight bound: a pass
// submitted while the bound's worth of passes are queued or running is
// rejected immediately with a *StreamBusyError.
func TestStreamBackpressure(t *testing.T) {
	c, err := kylix.NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.OpenStream(kylix.WithStreamInflight(1))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	release := make(chan struct{})
	running := make(chan struct{}, 4)
	done := make(chan error, 1)
	go func() {
		done <- st.Run(func(node *kylix.Node) error {
			running <- struct{}{}
			<-release
			return nil
		})
	}()
	<-running // the pass is live and holding the stream's one slot
	err = st.Run(func(node *kylix.Node) error { return nil })
	var busy *kylix.StreamBusyError
	if !errors.As(err, &busy) {
		t.Fatalf("err = %v, want *StreamBusyError", err)
	}
	if busy.Stream != st.ID() || busy.Inflight != 1 {
		t.Fatalf("busy context = %+v", busy)
	}
	close(release)
	for i := 0; i < 3; i++ {
		<-running // remaining ranks of the in-flight pass
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The slot freed: submissions flow again.
	if err := st.Run(func(node *kylix.Node) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestStreamCloseSemantics pins the lifecycle state machine: Run after
// Close fails with ErrStreamClosed, a queued pass fails when the close
// lands first, and the in-flight pass drains cleanly.
func TestStreamCloseSemantics(t *testing.T) {
	defer leakcheck.Check(t)()
	c, err := kylix.NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.OpenStream()
	if err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	running := make(chan struct{}, 4)
	inflight := make(chan error, 1)
	go func() {
		inflight <- st.Run(func(node *kylix.Node) error {
			running <- struct{}{}
			<-release
			return nil
		})
	}()
	<-running
	queued := make(chan error, 1)
	go func() {
		queued <- st.Run(func(node *kylix.Node) error { return nil })
	}()
	time.Sleep(10 * time.Millisecond) // let the second pass queue on the stream
	closed := make(chan error, 1)
	go func() { closed <- st.Close() }()
	time.Sleep(10 * time.Millisecond)
	close(release) // drain the in-flight pass

	if err := <-inflight; err != nil {
		t.Fatalf("in-flight pass failed: %v", err)
	}
	if err := <-queued; !errors.Is(err, kylix.ErrStreamClosed) {
		t.Fatalf("queued pass err = %v, want ErrStreamClosed", err)
	}
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := st.Run(func(node *kylix.Node) error { return nil }); !errors.Is(err, kylix.ErrStreamClosed) {
		t.Fatalf("run after close = %v, want ErrStreamClosed", err)
	}
	if !st.Closed() {
		t.Fatal("Closed() false after Close")
	}
}

// TestStreamMetricsExposed checks the per-tenant counters land in the
// registry (and therefore on the HTTP /metrics endpoint).
func TestStreamMetricsExposed(t *testing.T) {
	c, err := kylix.NewCluster(4, kylix.WithObservability())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Run(func(node *kylix.Node) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	snap := c.Metrics().Snapshot()
	key := fmt.Sprintf("stream/%d/passes", st.ID())
	if snap.Counters[key] != 1 {
		t.Fatalf("%s = %d, want 1", key, snap.Counters[key])
	}
	if snap.Counters["streams_opened"] != 1 || snap.Counters["streams_closed"] != 1 {
		t.Fatalf("aggregate stream counters wrong: %v", snap.Counters)
	}
	if snap.Gauges["streams_active"] != 0 {
		t.Fatalf("streams_active = %d after close", snap.Gauges["streams_active"])
	}
}
