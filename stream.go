package kylix

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kylix/internal/comm"
	"kylix/internal/obs"
	"kylix/internal/stream"
)

// ErrStreamClosed is returned by operations on a closed Stream (and by
// receives inside a pass racing a concurrent close). It aliases
// comm.ErrStreamClosed so errors.Is works across layers.
var ErrStreamClosed = comm.ErrStreamClosed

// ErrTooManyStreams is returned by OpenStream at the WithMaxStreams
// admission bound.
var ErrTooManyStreams = stream.ErrTooManyStreams

// StreamBusyError reports a pass rejected at the stream's in-flight
// bound (WithStreamInflight) — per-tenant backpressure. The caller
// should shed load or retry later; nothing was submitted.
type StreamBusyError struct {
	// Stream is the rejecting stream's id.
	Stream uint16
	// Inflight is the bound that was hit.
	Inflight int
}

// Error implements error.
func (e *StreamBusyError) Error() string {
	return fmt.Sprintf("kylix: stream %d at its in-flight bound (%d passes)", e.Stream, e.Inflight)
}

// Stream is one tenant's handle on a shared cluster: an isolated tag
// namespace over the same machines and transports, with its own
// round accounting, per-stream options (width, reducer, strictness),
// admission bound and metrics. Many streams run concurrent reductions
// over one fabric with results bit-identical to isolated runs.
//
// A Stream's collective passes are serialized with respect to each
// other (tag rounds must not interleave within one namespace);
// concurrency comes from running many streams. Run and Close are safe
// for concurrent use.
type Stream struct {
	c   *Cluster
	id  comm.StreamID
	cfg config
	// base is the stream's private tag-round cursor; each stream id is
	// a whole fresh tag space, so streams never coordinate on rounds.
	base atomic.Uint32
	// mu serializes the stream's passes; Close takes it to wait for the
	// in-flight pass to drain before purging mailbox state.
	mu sync.Mutex //kylix:lock stream-pass
	// inflight counts queued-plus-running Run calls for the admission
	// bound.
	inflight    atomic.Int64
	maxInflight int
	closed      atomic.Bool
	counters    *obs.StreamCounters
}

// OpenStream admits a new tenant stream. Options may override the
// cluster's data-plane settings for this stream — WithWidth,
// WithReducer, WithStrict, WithCombineWorkers, WithStreamInflight —
// while transport-level options are fixed at cluster construction and
// ignored here. Fails with ErrTooManyStreams at the WithMaxStreams
// bound and ErrClusterClosed after Close.
func (c *Cluster) OpenStream(opts ...Option) (*Stream, error) {
	if c.closed.Load() {
		return nil, ErrClusterClosed
	}
	id, err := c.streams.Open()
	if err != nil {
		return nil, err
	}
	cfg := c.cfg
	for _, o := range opts {
		o(&cfg)
	}
	cfg.stream = id
	s := &Stream{c: c, id: id, cfg: cfg, maxInflight: cfg.streamInflight}
	s.counters = c.smet.PerStream(uint16(id))
	c.smet.StreamsOpened.Inc()
	c.smet.StreamsActive.Set(int64(c.streams.Active()))
	return s, nil
}

// ID returns the stream's id (unique for the cluster's lifetime, never
// reused).
func (s *Stream) ID() uint16 { return uint16(s.id) }

// Run executes one collective pass on every live machine under this
// stream's tag namespace — the per-tenant Cluster.Run. Passes of one
// stream are serialized; across streams they run concurrently up to
// the cluster's WithStreamSlots budget, granted round-robin so no
// tenant starves. A pass submitted past the stream's in-flight bound
// is rejected immediately with a *StreamBusyError.
func (s *Stream) Run(fn func(*Node) error) error {
	if s.closed.Load() {
		return ErrStreamClosed
	}
	n := s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.maxInflight > 0 && n > int64(s.maxInflight) {
		s.c.smet.AdmissionRejected.Inc()
		s.counters.Rejected.Inc()
		return &StreamBusyError{Stream: uint16(s.id), Inflight: s.maxInflight}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return ErrStreamClosed
	}
	// Acquire the fabric slot while holding mu: each stream presents at
	// most one acquire at a time, which is exactly the shape the
	// scheduler's rotation serves fairly.
	start := time.Now()
	if err := s.c.sched.Acquire(s.id); err != nil {
		return err
	}
	s.c.smet.SchedWaitNs.Observe(time.Since(start).Nanoseconds())
	defer s.c.sched.Release()
	err := s.c.runPass(s.cfg, &s.base, fn)
	if err != nil {
		s.counters.Errors.Inc()
	} else {
		s.counters.Passes.Inc()
	}
	return err
}

// Configure opens a Reduction on the stream: it runs the configuration
// pass collectively (fn receives each machine's Node exactly as
// Cluster.Run) — a convenience wrapper over Run for the common
// configure-once shape.
func (s *Stream) Configure(fn func(*Node) error) error { return s.Run(fn) }

// Close tears the stream down: queued passes fail with ErrStreamClosed,
// the in-flight pass (if any) drains, and every machine's mailbox
// purges the stream's queued messages and pending-sender index entries
// — late deliveries (resend replays, chaos-delayed frames) are dropped
// from then on. Close is idempotent and safe concurrent with Run. The
// stream's admission slot is released, but its id is never reused.
func (s *Stream) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Fail waiters queued on the scheduler first — they hold mu while
	// blocked in Acquire, so this is what lets Close take mu below.
	s.c.sched.CloseStream(s.id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.c.closeStreamTransports(s.id)
	s.c.streams.Close(s.id)
	s.c.smet.StreamsClosed.Inc()
	s.c.smet.StreamsActive.Set(int64(s.c.streams.Active()))
	return nil
}

// Closed reports whether the stream has been closed.
func (s *Stream) Closed() bool { return s.closed.Load() }

// ActiveStreams reports the number of currently open tenant streams.
func (c *Cluster) ActiveStreams() int { return c.streams.Active() }
