package kylix_test

import (
	"sync"
	"testing"
	"time"

	"kylix"
)

// The streams benchmarks measure aggregate multi-tenant throughput on
// the TCP transport, where passes spend real time blocked on socket
// round-trips: one iteration is the same four tenant passes, run
// back-to-back (Serial) or concurrently over the shared fabric
// (Concurrent). scripts/bench.sh --gate requires the concurrent
// aggregate to beat the serial one — the whole point of multiplexing
// streams over shared transports is overlapping those waits.

const benchStreamTenants = 4

func benchStreamsSetup(b *testing.B) (*kylix.Cluster, []*kylix.Stream, []*streamWorkload) {
	b.Helper()
	const m = 8
	c, err := kylix.NewCluster(m,
		kylix.WithTransport(kylix.TransportTCP),
		kylix.WithDegrees(4, 2),
		kylix.WithStreamSlots(benchStreamTenants),
		kylix.WithRecvTimeout(30*time.Second))
	if err != nil {
		b.Fatal(err)
	}
	streams := make([]*kylix.Stream, benchStreamTenants)
	loads := make([]*streamWorkload, benchStreamTenants)
	for k := range streams {
		if streams[k], err = c.OpenStream(); err != nil {
			b.Fatal(err)
		}
		loads[k] = newStreamWorkload(b, k, m, 4096, 24)
	}
	// One warm-up pass per stream so connection setup is off the clock.
	for k, st := range streams {
		if _, err := loads[k].collect(st.Run, m, 1); err != nil {
			b.Fatal(err)
		}
	}
	return c, streams, loads
}

func benchPass(b *testing.B, st *kylix.Stream, w *streamWorkload) {
	b.Helper()
	if _, err := w.collect(st.Run, 8, 2); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkStreamsSerial(b *testing.B) {
	c, streams, loads := benchStreamsSetup(b)
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k, st := range streams {
			benchPass(b, st, loads[k])
		}
	}
}

func BenchmarkStreamsConcurrent(b *testing.B) {
	c, streams, loads := benchStreamsSetup(b)
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for k, st := range streams {
			wg.Add(1)
			go func(k int, st *kylix.Stream) {
				defer wg.Done()
				benchPass(b, st, loads[k])
			}(k, st)
		}
		wg.Wait()
	}
}
