package kylix_test

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMultiProcessCluster builds the real binaries and runs a 4-process
// Kylix cluster over TCP sockets — the full OS-process deployment path,
// not goroutines. Each rank self-verifies its allreduce result against a
// local recomputation and prints "OK".
func TestMultiProcessCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	dir := t.TempDir()
	nodeBin := filepath.Join(dir, "kylix-node")
	build := exec.Command("go", "build", "-o", nodeBin, "kylix/cmd/kylix-node")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	addrs, err := reservePorts(4)
	if err != nil {
		t.Skip("cannot reserve ports:", err)
	}
	hosts := strings.Join(addrs, ",")

	type procOut struct {
		out []byte
		err error
	}
	results := make([]procOut, 4)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cmd := exec.Command(nodeBin,
				"-rank", fmt.Sprint(r),
				"-hosts", hosts,
				"-degrees", "2x2",
				"-n", "8192", "-nnz", "512",
				"-timeout", "30s",
			)
			out, err := cmd.CombinedOutput()
			results[r] = procOut{out, err}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("multi-process cluster did not finish in time")
	}
	for r, res := range results {
		if res.err != nil {
			t.Fatalf("rank %d failed: %v\n%s", r, res.err, res.out)
		}
		if !strings.Contains(string(res.out), "OK") {
			t.Fatalf("rank %d did not verify: %s", r, res.out)
		}
	}
	// All digests must differ per rank (each rank's in-set differs) but
	// print successfully.
	t.Logf("rank outputs:\n%s%s%s%s",
		results[0].out, results[1].out, results[2].out, results[3].out)
}

// TestMultiProcessPageRank runs the distributed PageRank workload across
// real processes and checks the ranks' digests agree on mass ordering
// (each digest is the local In-vertex mass; all must be positive and
// finite, and all ranks must report success).
func TestMultiProcessPageRank(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	dir := t.TempDir()
	nodeBin := filepath.Join(dir, "kylix-node")
	build := exec.Command("go", "build", "-o", nodeBin, "kylix/cmd/kylix-node")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	addrs, err := reservePorts(3)
	if err != nil {
		t.Skip("cannot reserve ports:", err)
	}
	hosts := strings.Join(addrs, ",")
	outs := make([][]byte, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cmd := exec.Command(nodeBin,
				"-rank", fmt.Sprint(r),
				"-hosts", hosts,
				"-workload", "pagerank",
				"-n", "4096", "-nnz", "16384", "-iters", "3",
				"-timeout", "30s",
			)
			outs[r], errs[r] = cmd.CombinedOutput()
		}(r)
	}
	wg.Wait()
	for r := 0; r < 3; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v\n%s", r, errs[r], outs[r])
		}
		if !strings.Contains(string(outs[r]), "pagerank 3 iters") {
			t.Fatalf("rank %d output unexpected: %s", r, outs[r])
		}
	}
}

// TestDesignCLI exercises cmd/kylix-design end to end: the paper's
// Twitter parameters must print the 8x4x2 design, and the fit-demo mode
// must recover the exponent from a raw sample.
func TestDesignCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "kylix-design")
	if out, err := exec.Command("go", "build", "-o", bin, "kylix/cmd/kylix-design").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-n", "60000000", "-alpha", "0.8", "-density", "0.21", "-machines", "64").CombinedOutput()
	if err != nil {
		t.Fatalf("design: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "8 x 4 x 2") {
		t.Fatalf("design output missing 8x4x2:\n%s", out)
	}
	out, err = exec.Command(bin, "-fit-demo").CombinedOutput()
	if err != nil {
		t.Fatalf("fit-demo: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "fitted alpha") || !strings.Contains(string(out), "designed degrees") {
		t.Fatalf("fit-demo output unexpected:\n%s", out)
	}
}

// TestBenchCLI smoke-tests cmd/kylix-bench on the cheapest experiments.
func TestBenchCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "kylix-bench")
	if out, err := exec.Command("go", "build", "-o", bin, "kylix/cmd/kylix-bench").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-scale", "quick", "-exp", "fig2,fig4,ablation-racing").CombinedOutput()
	if err != nil {
		t.Fatalf("bench: %v\n%s", err, out)
	}
	for _, want := range []string{"Figure 2", "Figure 4", "packet racing"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("bench output missing %q:\n%s", want, out)
		}
	}
	// Unknown experiment and bad scale fail loudly.
	if _, err := exec.Command(bin, "-scale", "bogus").CombinedOutput(); err == nil {
		t.Fatal("accepted bogus scale")
	}
}
