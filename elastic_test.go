package kylix

import (
	"errors"
	"sync"
	"testing"
	"time"

	"kylix/internal/comm"
)

// elasticOpts returns control-plane timings tuned for test convergence
// on the memory transport, where gossip delivery is instant.
func elasticOpts(spares int) ElasticOptions {
	return ElasticOptions{
		Spares:           spares,
		Heartbeat:        2 * time.Millisecond,
		SuspectAfter:     60 * time.Millisecond,
		DrainTimeout:     time.Second,
		ProposeTimeout:   30 * time.Second,
		DisableAutoEvict: true, // the soaks script their own evictions
		Seed:             11,
	}
}

// elasticOptsFor adapts the timings to the transport: over real TCP
// sockets a 2ms heartbeat across 20 ranks floods the writers (gossip
// latency then exceeds the suspicion window and the control plane
// flaps), so the TCP soak paces gossip an order of magnitude slower.
func elasticOptsFor(transport Transport, spares int) ElasticOptions {
	o := elasticOpts(spares)
	if transport == TransportTCP {
		o.Heartbeat = 15 * time.Millisecond
		o.SuspectAfter = 300 * time.Millisecond
	}
	return o
}

// reduceEpoch runs one allreduce over the cluster's current membership:
// logical rank q contributes q+1 to the shared feature 0 and to a
// private feature 100+q. It returns per-logical-rank result vectors and
// routing digests. A Config digest fingerprints one rank's routing
// state, so all replicas of the same logical rank must agree on it —
// and a churned cluster's per-rank digests must equal a fresh cluster's
// (the all-survivors-agree cutover oracle).
func reduceEpoch(t *testing.T, c *Cluster) (map[int][]float32, map[int]uint64) {
	t.Helper()
	logical := c.LogicalSize()
	var mu sync.Mutex
	results := make(map[int][]float32, logical)
	digests := make(map[int][]uint64, logical)
	err := c.Run(func(n *Node) error {
		q := n.Rank()
		in := []int32{0}
		out := []int32{0, int32(100 + q)}
		vals := []float32{float32(q + 1), float32(q + 1)}
		red, res, err := n.ConfigureReduce(in, out, vals)
		if err != nil {
			return err
		}
		mu.Lock()
		results[q] = res
		digests[q] = append(digests[q], red.ConfigDigest())
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("epoch %d run: %v", c.Epoch(), err)
	}
	want := float32(0)
	for q := 0; q < logical; q++ {
		want += float32(q + 1)
	}
	outDigests := map[int]uint64{}
	for q := 0; q < logical; q++ {
		if results[q] == nil {
			t.Fatalf("epoch %d: logical rank %d produced no result", c.Epoch(), q)
		}
		if results[q][0] != want {
			t.Fatalf("epoch %d logical %d: shared sum %f, want %f", c.Epoch(), q, results[q][0], want)
		}
		for _, d := range digests[q] {
			if d != digests[q][0] {
				t.Fatalf("epoch %d logical %d: replicas disagree on routing digest: %x", c.Epoch(), q, digests[q])
			}
		}
		outDigests[q] = digests[q][0]
	}
	return results, outDigests
}

// runElasticChurn is the acceptance soak: a replicated elastic cluster
// survives scripted joins, leaves and replacements — with machines and
// the membership coordinator killed mid-sequence, and a partition that
// heals — and its post-churn reduction is bit-identical to a freshly
// built cluster of the final membership.
func runElasticChurn(t *testing.T, transport Transport) {
	const (
		m      = 16
		s      = 2
		spares = 4
	)
	c, err := NewCluster(m,
		WithTransport(transport),
		WithReplication(s),
		WithElastic(elasticOptsFor(transport, spares)),
		WithFaults(FaultPlan{Seed: 99}),
		WithRecvTimeout(15*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fab := c.Faults()

	if c.Epoch() != 1 || c.Size() != m || c.Capacity() != m+spares {
		t.Fatalf("initial epoch/size/capacity = %d/%d/%d", c.Epoch(), c.Size(), c.Capacity())
	}
	reduceEpoch(t, c) // epoch 1 baseline

	// Scripted churn. Member counts stay divisible by s throughout.
	if err := c.Join(16, 17); err != nil { // 16 -> 18 members
		t.Fatalf("join: %v", err)
	}
	if c.Epoch() != 2 || c.Size() != 18 {
		t.Fatalf("post-join epoch/size = %d/%d", c.Epoch(), c.Size())
	}
	reduceEpoch(t, c)

	// A machine dies; its replica partner carries its group until the
	// dead rank is swapped for a spare.
	if err := c.Kill(5); err != nil {
		t.Fatalf("kill 5: %v", err)
	}
	if err := c.Replace(5, 18); err != nil {
		t.Fatalf("replace 5->18: %v", err)
	}
	reduceEpoch(t, c)

	// Kill the membership coordinator itself at its next control-plane
	// send: the proposal must survive its death and commit through the
	// successor coordinator.
	leader := c.Members()[0]
	fab.KillOnKind(leader, comm.KindControl)
	if err := c.Replace(leader, 19); err != nil {
		t.Fatalf("replace dead coordinator %d->19: %v", leader, err)
	}
	if !fab.Killed(leader) {
		t.Fatalf("coordinator %d was never killed by the armed fault", leader)
	}
	reduceEpoch(t, c)

	// A partition splits the membership gossip and heals; the following
	// transition must still converge every survivor.
	members := c.Members()
	fab.Partition(members[:4], members[4:])
	time.Sleep(50 * time.Millisecond)
	fab.Heal()
	if err := c.Leave(16, 17); err != nil { // 18 -> 16 members
		t.Fatalf("leave: %v", err)
	}
	final, digests := reduceEpoch(t, c)

	// The churned cluster must behave exactly like a freshly built
	// cluster of the same final membership: per-rank routing digests
	// identical (the cutover oracle) and results bit-identical.
	fresh, err := NewCluster(c.Size(),
		WithReplication(s),
		WithDegrees(c.Degrees()...),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	freshResults, freshDigests := reduceEpoch(t, fresh)
	if len(final) != len(freshResults) {
		t.Fatalf("churned cluster has %d logical ranks, fresh has %d", len(final), len(freshResults))
	}
	for q, res := range final {
		if digests[q] != freshDigests[q] {
			t.Fatalf("logical %d: churned routing digest %x != fresh %x", q, digests[q], freshDigests[q])
		}
		fres := freshResults[q]
		if len(res) != len(fres) {
			t.Fatalf("logical %d: result lengths %d vs %d", q, len(res), len(fres))
		}
		for i := range res {
			if res[i] != fres[i] {
				t.Fatalf("logical %d: churned result %v != fresh result %v", q, res, fres)
			}
		}
	}
}

func TestElasticChurnMemory(t *testing.T) {
	runElasticChurn(t, TransportMemory)
}

func TestElasticChurnTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP elastic soak skipped in -short")
	}
	runElasticChurn(t, TransportTCP)
}

// TestKillIdempotent verifies Kill's structured double-kill report.
func TestKillIdempotent(t *testing.T) {
	c, err := NewCluster(4, WithRecvTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Kill(2); err != nil {
		t.Fatalf("first kill: %v", err)
	}
	err = c.Kill(2)
	var dne *DeadNodeError
	if !errors.As(err, &dne) || dne.Rank != 2 {
		t.Fatalf("second kill = %v, want DeadNodeError{Rank: 2}", err)
	}
	if err := c.Kill(99); err == nil {
		t.Fatal("out-of-range kill must error")
	}
}

// TestElasticValidation covers the construction and API guard rails.
func TestElasticValidation(t *testing.T) {
	c, err := NewCluster(4, WithRecvTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Join(5); err == nil {
		t.Fatal("Join without WithElastic must error")
	}
	if _, err := ListenNode(0, []string{"127.0.0.1:0"}, WithElastic(ElasticOptions{})); err == nil {
		t.Fatal("ListenNode with WithElastic must error")
	}
	if _, err := NewCluster(4, WithElastic(ElasticOptions{Spares: -1})); err == nil {
		t.Fatal("negative spares must error")
	}

	e, err := NewCluster(4, WithElastic(elasticOpts(1)), WithReplication(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// 4 -> 5 members breaks the replication divisibility.
	if err := e.Join(4); err == nil {
		t.Fatal("join breaking divisibility must error")
	}
	if err := e.Leave(99); err == nil {
		t.Fatal("leave of a non-member must error")
	}
}

// TestElasticEpochMetrics checks the control plane's numbers surface
// through the observability registry after a live transition.
func TestElasticEpochMetrics(t *testing.T) {
	c, err := NewCluster(4,
		WithElastic(elasticOpts(2)),
		WithObservability(),
		WithRecvTimeout(5*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Join(4, 5); err != nil {
		t.Fatalf("join: %v", err)
	}
	reduceEpoch(t, c)
	snap := c.Metrics().Snapshot()
	if got := snap.Gauges["epoch_current"]; got != 2 {
		t.Fatalf("epoch_current = %d, want 2", got)
	}
	if got := snap.Counters["epoch_transitions"]; got < 1 {
		t.Fatalf("epoch_transitions = %d, want >= 1", got)
	}
	if snap.Histograms["drain_ns"].Count < 1 {
		t.Fatalf("drain_ns histogram empty: %+v", snap.Histograms["drain_ns"])
	}
	if snap.Histograms["hb_rtt_ns"].Count < 1 {
		t.Fatalf("hb_rtt_ns histogram empty: %+v", snap.Histograms["hb_rtt_ns"])
	}
}
