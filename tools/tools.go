//go:build lint_tools

// Package tools pins the versions of the out-of-module developer tools
// used by the optional deep-lint lane (scripts/lint.sh, `make lint`).
//
// The build tag keeps this file out of every ordinary build — the repo
// has no module dependencies and must stay buildable offline. The tools
// are fetched on demand with `go install <module>@<version>` into a
// throwaway GOBIN, so go.mod is never touched; scripts/lint.sh extracts
// the versions below so there is a single place to bump them.
package tools

// Pinned tool versions, one source of truth for scripts/lint.sh.
const (
	// StaticcheckVersion pins honnef.co/go/tools/cmd/staticcheck.
	StaticcheckVersion = "v0.5.1"
	// GovulncheckVersion pins golang.org/x/vuln/cmd/govulncheck.
	GovulncheckVersion = "v1.1.3"
)
