// Quickstart: an 8-machine in-process cluster summing sparse vectors.
// Every machine contributes values on its own sparse index set and asks
// for a (different) sparse set back; Kylix routes contributions through
// a 4x2 nested butterfly and returns exactly the requested values.
package main

import (
	"fmt"
	"log"
	"sync"

	"kylix"
)

func main() {
	cluster, err := kylix.NewCluster(8, kylix.WithDegrees(4, 2))
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()

	var mu sync.Mutex
	results := make(map[int][]float32)

	err = cluster.Run(func(node *kylix.Node) error {
		r := int32(node.Rank())
		// Each machine contributes 1.0 to feature r and to feature 100,
		// and asks for feature 100 plus its right neighbour's feature.
		out := []int32{r, 100}
		vals := []float32{1, 1}
		in := []int32{100, (r + 1) % 8}

		red, err := node.Configure(in, out)
		if err != nil {
			return err
		}
		got, err := red.Reduce(vals)
		if err != nil {
			return err
		}
		mu.Lock()
		results[node.Rank()] = got
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	for r := 0; r < 8; r++ {
		got := results[r]
		fmt.Printf("machine %d: feature 100 = %.0f (all 8 contributed), neighbour feature = %.0f\n",
			r, got[0], got[1])
		if got[0] != 8 || got[1] != 1 {
			log.Fatalf("unexpected result on machine %d: %v", r, got)
		}
	}
	fmt.Println("quickstart OK")
}
