// Distributed topic modelling with a collapsed Gibbs sampler (the
// §I-A1 MCMC workload): 6 machines train LDA on sharded synthetic
// documents with planted topic structure. Each sweep exchanges the
// sparse word-topic count deltas — width K = topics values per word —
// through a fused configure+reduce, and a second allreduce network on
// its own tag channel carries the global per-topic totals.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"kylix/internal/apps/lda"
	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/memnet"
	"kylix/internal/topo"
)

const (
	machines = 6
	vocab    = 400
	topics   = 5
	sweeps   = 25
)

func main() {
	corpora := make([]*lda.Corpus, machines)
	for r := range corpora {
		corpora[r] = lda.GenCorpus(rand.New(rand.NewSource(int64(10+r))), vocab, topics, 80, 50)
	}

	bf := topo.MustNew([]int{3, 2})
	net := memnet.New(machines)
	defer net.Close()

	var mu sync.Mutex
	results := make([]*lda.Result, machines)
	err := memnet.Run(net, func(ep comm.Endpoint) error {
		m, err := core.NewMachine(ep, bf, core.Options{Width: topics})
		if err != nil {
			return err
		}
		totals, err := core.NewMachine(ep, bf, core.Options{Width: topics, Channel: 1})
		if err != nil {
			return err
		}
		res, err := lda.RunNode(m, totals, corpora[ep.Rank()],
			lda.Params{Topics: topics, Alpha: 0.2, Beta: 0.05, Sweeps: sweeps},
			rand.New(rand.NewSource(int64(ep.Rank())+77)))
		if err != nil {
			return err
		}
		mu.Lock()
		results[ep.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trained LDA with %d topics on %d machines (%d sweeps)\n", topics, machines, sweeps)
	for r, res := range results {
		first := res.LogLikelihood[0]
		last := res.LogLikelihood[len(res.LogLikelihood)-1]
		fmt.Printf("machine %d: shard log-likelihood %.0f -> %.0f\n", r, first, last)
		if last <= first {
			log.Fatalf("machine %d: sampler did not improve", r)
		}
	}
	fmt.Printf("global topic totals (identical on all machines): %.0f\n", results[0].TopicTotals)
	for r := 1; r < machines; r++ {
		for z := 0; z < topics; z++ {
			if results[r].TopicTotals[z] != results[0].TopicTotals[z] {
				log.Fatal("machines disagree on global topic totals")
			}
		}
	}
	fmt.Println("topicmodel OK")
}
