// PageRank over a synthetic power-law graph on a 16-machine in-process
// Kylix cluster — the paper's flagship workload (§VII-D). Edges are
// randomly partitioned; each machine configures the allreduce once
// (in = its non-zero columns, out = its non-zero rows) and then runs one
// Reduce per iteration. The distributed ranks are checked against a
// single-machine reference, and the recorded traffic is translated into
// modelled EC2 time by the paper-calibrated cost model.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sync"

	"kylix"
	"kylix/internal/apps/pagerank"
	"kylix/internal/graph"
)

const (
	machines = 16
	vertices = 1 << 14
	edgeCnt  = 1 << 17
	iters    = 10
)

func main() {
	rng := rand.New(rand.NewSource(7))
	edges := graph.GenPowerLaw(rng, vertices, edgeCnt, 0.8, 0.8)
	parts := graph.PartitionEdges(rng, edges, machines)
	shards, err := pagerank.BuildShards(vertices, edges, parts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, %d-way partition density %.3f\n",
		vertices, edgeCnt, machines, graph.DensityOfPartition(vertices, parts))

	cluster, err := kylix.NewCluster(machines, kylix.WithDegrees(8, 2), kylix.WithTrace())
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()

	type nodeOut struct {
		in    []int32
		ranks []float32
	}
	var mu sync.Mutex
	outs := make([]nodeOut, machines)

	err = cluster.Run(func(node *kylix.Node) error {
		shard := shards[node.Rank()]
		in := shard.In.Indices()
		out := shard.Out.Indices()
		red, err := node.Configure(in, out)
		if err != nil {
			return err
		}
		x := make([]float32, len(in))
		for i := range x {
			x[i] = 1.0 / vertices
		}
		y := make([]float32, len(out))
		for it := 0; it < iters; it++ {
			if err := shard.Multiply(x, y); err != nil {
				return err
			}
			gathered, err := red.Reduce(y)
			if err != nil {
				return err
			}
			for i := range x {
				x[i] = (1-pagerank.Damping)/vertices + pagerank.Damping*gathered[i]
			}
		}
		mu.Lock()
		outs[node.Rank()] = nodeOut{in: in, ranks: x}
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the sequential reference.
	want := pagerank.Sequential(vertices, edges, iters)
	worst := 0.0
	for r := range outs {
		for i, v := range outs[r].in {
			diff := math.Abs(float64(outs[r].ranks[i] - want[v]))
			if diff > worst {
				worst = diff
			}
		}
	}
	fmt.Printf("verified %d machines against sequential PageRank, max abs diff %.2e\n", machines, worst)
	if worst > 1e-4 {
		log.Fatal("distributed ranks diverge from reference")
	}

	rep, err := cluster.Traffic(16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntraffic (config once + %d reduces):\n%s", iters, rep)
}
