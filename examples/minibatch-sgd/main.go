// Distributed minibatch logistic regression (§I-A1): 8 machines train a
// shared sparse model with the paper's home-machine sharding. Every
// round runs two fused configure+reduce operations — fetch the batch's
// current weights, then push the batch's gradients — exercising the
// combined message flow built for workloads whose in/out sets change on
// every allreduce.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"kylix/internal/apps/sgd"
	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/memnet"
	"kylix/internal/topo"
)

const (
	machines = 8
	features = 2000
	rounds   = 60
)

func main() {
	// Per-machine datasets drawn from the same ground-truth model.
	datasets := make([]*sgd.Dataset, machines)
	for r := range datasets {
		datasets[r] = sgd.GenDataset(rand.New(rand.NewSource(int64(100+r))), features, 300, 8, 1.0, 4242)
	}

	bf := topo.MustNew([]int{4, 2})
	net := memnet.New(machines)
	defer net.Close()

	var mu sync.Mutex
	results := make([]*sgd.Result, machines)
	err := memnet.Run(net, func(ep comm.Endpoint) error {
		mach, err := core.NewMachine(ep, bf, core.Options{})
		if err != nil {
			return err
		}
		home := sgd.HomeSets(features, machines, ep.Rank())
		res, err := sgd.RunNode(mach, datasets[ep.Rank()], home, sgd.Params{
			Rounds: rounds, BatchSize: 32, LearnRate: 1.0, L2: 1e-4,
		}, rand.New(rand.NewSource(int64(ep.Rank()))))
		if err != nil {
			return err
		}
		mu.Lock()
		results[ep.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trained %d rounds of minibatch SGD on %d machines (%d features)\n",
		rounds, machines, features)
	for r, res := range results {
		head := avg(res.Losses[:10])
		tail := avg(res.Losses[len(res.Losses)-10:])
		fmt.Printf("machine %d: loss %.4f -> %.4f over %d homed features\n",
			r, head, tail, len(res.Model))
		if tail >= head {
			log.Fatalf("machine %d did not learn", r)
		}
	}
	fmt.Println("minibatch-sgd OK")
}

// avg is the mean of a loss window (single-round losses are too noisy
// to compare directly).
func avg(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
