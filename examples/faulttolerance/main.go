// Fault tolerance (§V): a 16-machine cluster replicated 2x keeps
// completing allreduces — with identical results — while machines die
// between rounds. Messages race to both replicas of every logical rank;
// receivers take the first copy, so a dead replica is simply never the
// winner.
//
// The second half turns on the deterministic chaos fabric (WithFaults):
// the same cluster shape runs with seeded message drops, duplicates,
// delays and a scheduled mid-round crash-stop confined to the upper
// replica half — and still produces the exact same sums.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"kylix"
	"kylix/internal/replica"
)

const (
	physical = 16
	logical  = 8 // replication factor 2
)

func main() {
	cluster, err := kylix.NewCluster(physical,
		kylix.WithReplication(2),
		kylix.WithDegrees(4, 2),
		kylix.WithRecvTimeout(10*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()

	fmt.Printf("cluster: %d physical machines, %d logical (replication 2)\n",
		cluster.Size(), cluster.LogicalSize())
	fmt.Printf("expected random failures to fatal loss (birthday bound): ~%.1f\n",
		replica.BirthdayBound(physical))

	round := func(name string) {
		var mu sync.Mutex
		sums := map[int]float32{}
		err := cluster.Run(func(node *kylix.Node) error {
			// Every logical rank contributes 1.0 to a shared feature and
			// to a private one (offset past the shared id space).
			out := []int32{7, 1000 + int32(node.Rank())}
			red, err := node.Configure([]int32{7}, out)
			if err != nil {
				return err
			}
			got, err := red.Reduce([]float32{1, 1})
			if err != nil {
				return err
			}
			mu.Lock()
			sums[node.Rank()] = got[0]
			mu.Unlock()
			return nil
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		for rank, v := range sums {
			if v != logical {
				log.Fatalf("%s: logical rank %d saw sum %v, want %d", name, rank, v, logical)
			}
		}
		fmt.Printf("%s: all %d logical ranks agree (shared feature = %d)\n", name, len(sums), logical)
	}

	round("round 1 (no failures)")

	// Kill three machines in distinct replica groups.
	for _, dead := range []int{9, 12, 14} {
		if err := cluster.Kill(dead); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("killed physical machine %d (replica of logical %d)\n", dead, dead%logical)
	}
	round("round 2 (3 dead machines)")

	// --- Chaos fabric: scripted faults, identical results ---
	//
	// A fresh cluster under a seeded fault plan: 10% of upper-half
	// messages dropped, 15% duplicated, 25% delayed, and machine 11
	// crash-stopped after its 60th send — mid-round. Because faults are
	// confined to one replica half, every group keeps a clean survivor
	// (§V's condition) and the sums stay exactly 8.
	chaotic, err := kylix.NewCluster(physical,
		kylix.WithReplication(2),
		kylix.WithDegrees(4, 2),
		kylix.WithRecvTimeout(10*time.Second),
		kylix.WithFaults(kylix.FaultPlan{
			Seed:      2026,
			Faulty:    []int{8, 9, 10, 11, 12, 13, 14, 15},
			Drop:      0.10,
			Duplicate: 0.15,
			Delay:     0.25,
			MaxDelay:  2 * time.Millisecond,
			Kills:     []kylix.FaultKill{{Rank: 11, AfterSends: 60}},
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = chaotic.Close() }()

	for r := 1; r <= 3; r++ {
		var mu sync.Mutex
		sums := map[int]float32{}
		err := chaotic.Run(func(node *kylix.Node) error {
			out := []int32{7, 1000 + int32(node.Rank())}
			red, err := node.Configure([]int32{7}, out)
			if err != nil {
				return err
			}
			got, err := red.Reduce([]float32{1, 1})
			if err != nil {
				return err
			}
			mu.Lock()
			sums[node.Rank()] = got[0]
			mu.Unlock()
			return nil
		})
		if err != nil {
			log.Fatalf("chaos round %d: %v", r, err)
		}
		for rank, v := range sums {
			if v != logical {
				log.Fatalf("chaos round %d: logical rank %d saw sum %v, want %d", r, rank, v, logical)
			}
		}
		st := chaotic.Faults().Stats()
		fmt.Printf("chaos round %d: exact sums under faults (dropped %d, duplicated %d, delayed %d, killed 11: %v)\n",
			r, st.Dropped, st.Duplicated, st.Delayed, chaotic.Faults().Killed(11))
	}

	fmt.Println("faulttolerance OK")
}
