// Fault tolerance (§V): a 16-machine cluster replicated 2x keeps
// completing allreduces — with identical results — while machines die
// between rounds. Messages race to both replicas of every logical rank;
// receivers take the first copy, so a dead replica is simply never the
// winner.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"kylix"
	"kylix/internal/replica"
)

const (
	physical = 16
	logical  = 8 // replication factor 2
)

func main() {
	cluster, err := kylix.NewCluster(physical,
		kylix.WithReplication(2),
		kylix.WithDegrees(4, 2),
		kylix.WithRecvTimeout(10*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fmt.Printf("cluster: %d physical machines, %d logical (replication 2)\n",
		cluster.Size(), cluster.LogicalSize())
	fmt.Printf("expected random failures to fatal loss (birthday bound): ~%.1f\n",
		replica.BirthdayBound(physical))

	round := func(name string) {
		var mu sync.Mutex
		sums := map[int]float32{}
		err := cluster.Run(func(node *kylix.Node) error {
			// Every logical rank contributes 1.0 to a shared feature and
			// to a private one (offset past the shared id space).
			out := []int32{7, 1000 + int32(node.Rank())}
			red, err := node.Configure([]int32{7}, out)
			if err != nil {
				return err
			}
			got, err := red.Reduce([]float32{1, 1})
			if err != nil {
				return err
			}
			mu.Lock()
			sums[node.Rank()] = got[0]
			mu.Unlock()
			return nil
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		for rank, v := range sums {
			if v != logical {
				log.Fatalf("%s: logical rank %d saw sum %v, want %d", name, rank, v, logical)
			}
		}
		fmt.Printf("%s: all %d logical ranks agree (shared feature = %d)\n", name, len(sums), logical)
	}

	round("round 1 (no failures)")

	// Kill three machines in distinct replica groups.
	for _, dead := range []int{9, 12, 14} {
		if err := cluster.Kill(dead); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("killed physical machine %d (replica of logical %d)\n", dead, dead%logical)
	}
	round("round 2 (3 dead machines)")

	fmt.Println("faulttolerance OK")
}
