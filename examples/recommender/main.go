// Distributed matrix-factorization recommender via alternating least
// squares — the §I-A1 factor-model workload. Ratings are sharded by user
// across 4 machines; item factors are kept globally consistent by
// sum-allreducing each item's packed normal equations (K(K+1)/2 + K
// floats per item) and solving the ridge system identically everywhere.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sync"

	"kylix/internal/apps/als"
	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/memnet"
	"kylix/internal/topo"
)

const (
	machines = 4
	users    = 50 // per machine
	items    = 300
	rank     = 3
)

func main() {
	shards := make([][]als.Rating, machines)
	for r := range shards {
		shards[r] = als.GenRatings(rand.New(rand.NewSource(int64(100+r))), users, items, 15, rank, 4242)
	}

	bf := topo.MustNew([]int{2, 2})
	net := memnet.New(machines)
	defer net.Close()

	var mu sync.Mutex
	results := make([]*als.Result, machines)
	err := memnet.Run(net, func(ep comm.Endpoint) error {
		m, err := core.NewMachine(ep, bf, core.Options{Width: als.PackWidth(rank)})
		if err != nil {
			return err
		}
		res, err := als.RunNode(m, users, shards[ep.Rank()],
			als.Params{Rank: rank, Lambda: 0.05, Iters: 8},
			rand.New(rand.NewSource(int64(ep.Rank()))))
		if err != nil {
			return err
		}
		mu.Lock()
		results[ep.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ALS rank-%d factorization on %d machines (%d users each, %d items)\n",
		rank, machines, users, items)
	for r, res := range results {
		fmt.Printf("machine %d: RMSE %.3f -> %.3f over %d items\n",
			r, res.RMSE[0], res.RMSE[len(res.RMSE)-1], len(res.ItemFactors))
		if res.RMSE[len(res.RMSE)-1] > 0.2 {
			log.Fatalf("machine %d did not fit the low-rank data", r)
		}
	}

	// Items rated on several machines carry identical factors everywhere.
	checked := 0
	for item, f0 := range results[0].ItemFactors {
		for r := 1; r < machines; r++ {
			if fr, ok := results[r].ItemFactors[item]; ok {
				checked++
				for c := range f0 {
					if math.Abs(f0[c]-fr[c]) > 1e-4 {
						log.Fatalf("item %d factors diverge across machines", item)
					}
				}
			}
		}
	}
	fmt.Printf("verified %d shared item factors are bit-for-bit consistent across machines\n", checked)
	fmt.Println("recommender OK")
}
