// Graph diameter estimation with Flajolet-Martin sketches (§I-A2's HADI
// workload): vertices carry bitstring sketches of their reachable sets,
// one bitwise-OR allreduce grows them per hop, and a piggybacked
// sum-allreduce (on a second tag channel of the same cluster) detects
// global convergence. Demonstrates Kylix's pluggable reducers and
// multi-network endpoints.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"kylix/internal/apps/diameter"
	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/graph"
	"kylix/internal/memnet"
	"kylix/internal/sparse"
	"kylix/internal/topo"
)

const (
	machines = 8
	vertices = 600
	edgeCnt  = 1800
	width    = 4 // sketch words per vertex
)

func main() {
	rng := rand.New(rand.NewSource(11))
	edges := graph.GenPowerLaw(rng, vertices, edgeCnt, 0.8, 0.8)
	parts := graph.PartitionEdges(rng, edges, machines)
	shards := make([]*graph.Shard, machines)
	for i := range parts {
		s, err := graph.BuildShard(parts[i], nil)
		if err != nil {
			log.Fatal(err)
		}
		shards[i] = s
	}

	bf := topo.MustNew([]int{4, 2})
	net := memnet.New(machines)
	defer net.Close()

	var mu sync.Mutex
	results := make([]*diameter.Result, machines)
	err := memnet.Run(net, func(ep comm.Endpoint) error {
		mach, err := core.NewMachine(ep, bf, core.Options{Reducer: sparse.Or, Width: width})
		if err != nil {
			return err
		}
		conv, err := core.NewMachine(ep, bf, core.Options{Channel: 1})
		if err != nil {
			return err
		}
		res, err := diameter.RunNode(mach, conv, shards[ep.Rank()], 40, width, 99)
		if err != nil {
			return err
		}
		mu.Lock()
		results[ep.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	oracle := diameter.SequentialSketchDiameter(vertices, edges, 40, width, 99)
	fmt.Printf("graph: %d vertices, %d edges on %d machines\n", vertices, edgeCnt, machines)
	fmt.Printf("per-hop changed-sketch counts: %v\n", results[0].Changes)
	for r, res := range results {
		if res.Diameter != oracle {
			log.Fatalf("machine %d estimated %d, oracle %d", r, res.Diameter, oracle)
		}
	}
	fmt.Printf("effective diameter estimate: %d hops (all %d machines agree with the sketch oracle)\n",
		oracle, machines)

	// Neighbourhood-size estimates for a few vertices held by machine 0.
	res := results[0]
	for i := 0; i < 3 && i < len(res.Vertices); i++ {
		est := diameter.EstimateNeighbourhood(res.Sketches[i*width : (i+1)*width])
		fmt.Printf("vertex %d: ~%.0f reachable vertices (FM estimate)\n", res.Vertices[i].Index(), est)
	}
	fmt.Println("diameter OK")
}
