package kylix_test

import (
	"math"
	"sync"
	"testing"
	"time"

	"kylix"
)

// The quantization soak is the acceptance test for wire-level value
// quantization: a replicated cluster runs multi-round allreduces over a
// persistent Config (so the error-feedback residuals evolve across
// rounds) in fp16 and int8, fault-free and under the seeded chaos
// schedule, on both transports. Three properties are asserted:
//
//  1. Determinism — per-rank results are bit-identical between a
//     fault-free quantized run, a chaotic quantized run, and a rerun of
//     the chaotic run (same ValuesDigest per rank per round). Lossy
//     encodings are pure functions of their inputs, and the protocol
//     fixes the combine order, so chaos may only perturb timing.
//  2. Bounded error — against the bit-exact QuantOff reference, the
//     max error relative to the result's magnitude stays under the
//     stated per-mode bound (fp16: 2e-2, int8: 1.5e-1; one quantize
//     hop per layer per direction, each within half a step).
//  3. The encoding actually round-trips under replication, duplication
//     and reordering — any mis-sized or misrouted block fails the run.
const (
	quantSoakRounds = 5
	quantFP16Bound  = 2e-2
	quantINT8Bound  = 1.5e-1
)

// quantSoakRun drives quantSoakRounds reductions over one Config per
// node and returns per-round per-physical-rank results.
func quantSoakRun(t *testing.T, transport kylix.Transport, quant kylix.Quantization, plan kylix.FaultPlan) [][][]float32 {
	t.Helper()
	opts := append(soakOpts(transport, plan), kylix.WithQuantization(quant))
	cluster, err := kylix.NewCluster(soakPhys, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cluster.Close() })
	results := make([][][]float32, quantSoakRounds)
	for r := range results {
		results[r] = make([][]float32, soakPhys)
	}
	var mu sync.Mutex
	err = cluster.Run(func(node *kylix.Node) error {
		q := node.Rank()
		neighbour := int32(100 + (q+1)%soakLogical)
		out := []int32{0, 1, int32(100 + q)}
		in := []int32{0, 1, neighbour}
		red, err := node.Configure(in, out)
		if err != nil {
			return err
		}
		for r := 0; r < quantSoakRounds; r++ {
			// Features of comparable magnitude: int8's per-block scale is
			// set by the block maximum, so its stated bound presumes values
			// within an order of magnitude or so of each other (a feature
			// 1000x smaller than its blockmates is below one quantization
			// step by construction; error feedback recovers it over rounds,
			// not within one).
			vals := []float32{
				float32(q+1) * 0.1 * float32(r+1),
				1.0 / float32(q+2),
				0.5*float32(q) + 0.3*float32(r) + 1,
			}
			res, err := red.Reduce(vals)
			if err != nil {
				return err
			}
			mu.Lock()
			results[r][node.PhysicalRank()] = append([]float32(nil), res...)
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%v %v soak: %v", transport, quant, err)
	}
	return results
}

// quantChaosPlan mirrors the reconfigure soak's schedule: every
// non-crash fault class at once, confined to the upper replica half.
func quantChaosPlan() kylix.FaultPlan {
	return kylix.FaultPlan{
		Seed:      53,
		Faulty:    []int{8, 9, 10, 11, 12, 13, 14, 15},
		Drop:      0.10,
		Duplicate: 0.15,
		Delay:     0.25,
		MaxDelay:  2 * time.Millisecond,
		Reorder:   0.08,
	}
}

func quantRelErr(got, ref []float32) float64 {
	maxAbs, maxErr := 0.0, 0.0
	for i := range ref {
		if a := math.Abs(float64(ref[i])); a > maxAbs {
			maxAbs = a
		}
		if e := math.Abs(float64(got[i] - ref[i])); e > maxErr {
			maxErr = e
		}
	}
	if maxAbs == 0 {
		return maxErr
	}
	return maxErr / maxAbs
}

func testQuantSoak(t *testing.T, transport kylix.Transport, quant kylix.Quantization, bound float64) {
	exact := quantSoakRun(t, transport, kylix.QuantOff, kylix.FaultPlan{Seed: 42})
	clean := quantSoakRun(t, transport, quant, kylix.FaultPlan{Seed: 42})
	chaos := quantSoakRun(t, transport, quant, quantChaosPlan())
	rerun := quantSoakRun(t, transport, quant, quantChaosPlan())

	for r := 0; r < quantSoakRounds; r++ {
		for p := 0; p < soakPhys; p++ {
			if e := quantRelErr(clean[r][p], exact[r][p]); e > bound {
				t.Errorf("round %d rank %d: max relative error %.4g > %.4g vs exact run", r, p, e, bound)
			}
			if !bitsEqual(chaos[r][p], clean[r][p]) {
				t.Errorf("round %d rank %d: chaotic quantized result differs from fault-free quantized result", r, p)
			}
			if kylix.ValuesDigest(rerun[r][p]) != kylix.ValuesDigest(chaos[r][p]) {
				t.Errorf("round %d rank %d: chaos rerun digest differs (nondeterministic quantized reduce)", r, p)
			}
		}
	}
}

func TestQuantizedChaosSoakFP16(t *testing.T) {
	testQuantSoak(t, kylix.TransportMemory, kylix.QuantFP16, quantFP16Bound)
}

func TestQuantizedChaosSoakINT8(t *testing.T) {
	testQuantSoak(t, kylix.TransportMemory, kylix.QuantINT8, quantINT8Bound)
}

func TestQuantizedChaosSoakFP16TCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP soak skipped in -short")
	}
	testQuantSoak(t, kylix.TransportTCP, kylix.QuantFP16, quantFP16Bound)
}

func TestQuantizedChaosSoakINT8TCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP soak skipped in -short")
	}
	testQuantSoak(t, kylix.TransportTCP, kylix.QuantINT8, quantINT8Bound)
}
