module kylix

go 1.22
