package kylix

import (
	"fmt"
	"sync/atomic"
	"time"

	"kylix/internal/membership"
)

// ElasticOptions tunes the epoch-numbered membership control plane
// enabled by WithElastic. Zero values pick production defaults; tests
// shrink the timing fields to converge fast.
type ElasticOptions struct {
	// Spares is how many extra physical ranks to provision beyond the
	// initial member count. Spares run transports and membership agents
	// from the start but carry no data until a Join or Replace admits
	// them; ranks [m, m+Spares) are the spare pool.
	Spares int
	// Heartbeat is the control-plane gossip period (default 10ms).
	Heartbeat time.Duration
	// SuspectAfter is how long a member may stay silent before the
	// failure detector suspects it (default 20x Heartbeat).
	SuspectAfter time.Duration
	// DrainTimeout bounds the quiesce of in-flight Runs before each
	// epoch cutover (default 2s). A drain that times out proceeds
	// anyway; replica racing keeps old-epoch rounds completing.
	DrainTimeout time.Duration
	// ProposeTimeout bounds Join/Leave/Replace end to end, including
	// retries across coordinator failover (default 30s).
	ProposeTimeout time.Duration
	// DisableAutoEvict stops the coordinator from proposing removal of
	// suspected-dead members on its own. Eviction then happens only
	// through explicit Leave/Replace calls.
	DisableAutoEvict bool
	// Seed drives control-plane gossip jitter (timing only).
	Seed int64
}

func (e *ElasticOptions) defaults() {
	if e.ProposeTimeout == 0 {
		e.ProposeTimeout = 30 * time.Second
	}
}

// WithElastic enables live membership: the cluster runs an epoch-
// numbered, leader-coordinated control plane over the same transports
// as the data plane, and Cluster.Join / Leave / Replace change the
// member set between Runs. Each committed epoch re-derives the
// butterfly for the surviving logical size, and the next Run executes
// over the new member view — with results bit-identical to a freshly
// built cluster of the same membership.
func WithElastic(o ElasticOptions) Option {
	return func(c *config) {
		e := o
		c.elastic = &e
	}
}

// DeadNodeError reports an operation aimed at a machine that is
// already dead (Kill of a killed rank).
type DeadNodeError struct {
	// Rank is the dead machine's physical rank.
	Rank int
}

// Error implements error.
func (e *DeadNodeError) Error() string {
	return fmt.Sprintf("kylix: node %d is already dead", e.Rank)
}

// runGate counts in-flight Runs so an epoch cutover can drain them:
// the membership agents' Drain hook blocks (bounded) until the data
// plane goes quiet.
type runGate struct {
	active atomic.Int64
}

func (g *runGate) enter() { g.active.Add(1) }
func (g *runGate) exit()  { g.active.Add(-1) }

// drain waits for in-flight Runs to finish, polling until quiet or
// timeout; reports whether the gate fully quiesced.
func (g *runGate) drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for g.active.Load() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// deadRank reports whether a physical rank has been killed.
func (c *Cluster) deadRank(rank int) bool {
	if c.fabric != nil && c.fabric.Killed(rank) {
		return true
	}
	return c.mem != nil && c.mem.Dead(rank)
}

// snapshot returns the newest committed membership record (elastic
// clusters only; callers must check c.svc first).
func (c *Cluster) snapshot() membership.Record {
	return c.svc.Snapshot()
}

// Members returns the physical ranks of the current epoch's members
// (for non-elastic clusters, all ranks).
func (c *Cluster) Members() []int {
	if c.svc == nil {
		members := make([]int, c.phys)
		for i := range members {
			members[i] = i
		}
		return members
	}
	return append([]int(nil), c.snapshot().Members...)
}

// Epoch returns the current membership epoch (1 is the initial
// membership; 0 for non-elastic clusters, which never transition).
func (c *Cluster) Epoch() uint64 {
	if c.svc == nil {
		return 0
	}
	return c.snapshot().Epoch
}

// Capacity returns the number of provisioned physical ranks —
// members plus spares.
func (c *Cluster) Capacity() int { return c.capacity }

// Join admits spare ranks as members: it proposes the change through
// the membership control plane, waits for a quorum of current members
// to acknowledge, drains in-flight Runs, and cuts every survivor over
// to the new epoch. The resulting member count must stay divisible by
// the replication factor. Blocks until all survivors converge.
func (c *Cluster) Join(ranks ...int) error {
	return c.proposeChange(membership.Change{Add: ranks})
}

// Leave removes members from the cluster. The departing ranks keep
// their transports (they return to the spare pool) but carry no data
// from the next epoch on.
func (c *Cluster) Leave(ranks ...int) error {
	return c.proposeChange(membership.Change{Remove: ranks})
}

// Replace swaps one member for a spare in a single epoch transition —
// the repair path after a machine dies. Member count and topology are
// unchanged.
func (c *Cluster) Replace(old, new int) error {
	return c.proposeChange(membership.Change{Add: []int{new}, Remove: []int{old}})
}

func (c *Cluster) proposeChange(ch membership.Change) error {
	if c.svc == nil {
		return fmt.Errorf("kylix: membership changes require WithElastic")
	}
	timeout := c.cfg.elastic.ProposeTimeout
	if _, err := c.svc.Propose(ch, timeout); err != nil {
		return err
	}
	_, err := c.svc.WaitConverged(timeout)
	return err
}
