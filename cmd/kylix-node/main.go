// kylix-node is one machine of a real multi-process Kylix cluster over
// TCP. Every participating process runs it with the same -hosts list and
// its own -rank; the cluster then executes a verifiable sparse-sum
// allreduce demo (or distributed PageRank with -workload pagerank) and
// prints a result digest that must agree across all ranks.
//
// Local 4-process example (or just use cmd/kylix-run):
//
//	kylix-node -rank 0 -hosts 127.0.0.1:7000,127.0.0.1:7001 &
//	kylix-node -rank 1 -hosts 127.0.0.1:7000,127.0.0.1:7001
//
// With -daemon the process instead stays up serving multi-tenant
// stream create/reduce/close commands; see daemon.go.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"kylix"
	"kylix/internal/graph"
)

func main() {
	var (
		rank        = flag.Int("rank", -1, "this process's rank in the host list")
		hosts       = flag.String("hosts", "", "comma-separated host:port list, one per rank")
		degrees     = flag.String("degrees", "", "butterfly degrees like 4x2 (default: direct)")
		workload    = flag.String("workload", "allreduce", "allreduce or pagerank")
		n           = flag.Int64("n", 1<<16, "feature/vertex space size")
		nnz         = flag.Int("nnz", 1<<14, "per-node nonzeros (allreduce) or total edges (pagerank)")
		iters       = flag.Int("iters", 3, "pagerank iterations")
		seed        = flag.Int64("seed", 42, "shared workload seed (must match across ranks)")
		timeout     = flag.Duration("timeout", 60*time.Second, "receive timeout")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /trace and /timeline over HTTP on this address (enables observability)")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace_event JSON of this rank's run to the file (enables observability)")
		daemon      = flag.Bool("daemon", false, "run as a long-lived multi-tenant stream daemon instead of a one-shot workload")
		controlAddr = flag.String("control-addr", "", "daemon rank 0: serve the stream control API over HTTP on this address")
	)
	flag.Parse()

	addrs := strings.Split(*hosts, ",")
	if *rank < 0 || *rank >= len(addrs) || *hosts == "" {
		fmt.Fprintln(os.Stderr, "kylix-node: need -rank within -hosts list")
		os.Exit(2)
	}
	opts := []kylix.Option{kylix.WithRecvTimeout(*timeout)}
	if *metricsAddr != "" || *traceOut != "" {
		opts = append(opts, kylix.WithObservability())
	}
	if *degrees != "" {
		var ds []int
		for _, part := range strings.Split(*degrees, "x") {
			d, err := strconv.Atoi(part)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kylix-node: bad -degrees %q\n", *degrees)
				os.Exit(2)
			}
			ds = append(ds, d)
		}
		opts = append(opts, kylix.WithDegrees(ds...))
	}

	node, err := kylix.ListenNode(*rank, addrs, opts...)
	if err != nil {
		fatal(err)
	}
	defer node.Close()

	if *metricsAddr != "" {
		srv, err := kylix.ServeMetrics(*metricsAddr, node.Observability())
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("rank %d: metrics on http://%s/metrics (also /trace, /timeline)\n", *rank, srv.Addr)
	}

	if *daemon {
		if err := runDaemon(node, *rank, *controlAddr); err != nil {
			fatal(err)
		}
	} else {
		switch *workload {
		case "allreduce":
			runAllreduce(node, *n, *nnz, *seed)
		case "pagerank":
			runPagerank(node, *n, *nnz, *iters, *seed)
		default:
			fmt.Fprintf(os.Stderr, "kylix-node: unknown workload %q\n", *workload)
			os.Exit(2)
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := node.Observability().WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("rank %d: trace written to %s (load in chrome://tracing)\n", *rank, *traceOut)
	}
}

// runAllreduce performs one verifiable random sparse-sum allreduce: each
// rank contributes value (rank+1) on a deterministic random index set,
// so every gathered value is checkable locally against a recomputation
// of the other ranks' sets.
func runAllreduce(node *kylix.Node, n int64, nnz int, seed int64) {
	mySet := nodeSet(node.Rank(), n, nnz, seed)
	vals := make([]float32, len(mySet))
	for i := range vals {
		vals[i] = float32(node.Rank() + 1)
	}
	start := time.Now()
	red, got, err := node.ConfigureReduce(mySet, mySet, vals)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	_ = red

	// Verify against a local recomputation of everyone's sets.
	want := map[int32]float32{}
	for r := 0; r < node.Size(); r++ {
		for _, idx := range nodeSet(r, n, nnz, seed) {
			want[idx] += float32(r + 1)
		}
	}
	var digest float64
	for i, idx := range mySet {
		if math.Abs(float64(got[i]-want[idx])) > 1e-3 {
			fatal(fmt.Errorf("verification failed at index %d: got %f want %f", idx, got[i], want[idx]))
		}
		digest += float64(got[i])
	}
	fmt.Printf("rank %d: allreduce of %d indices OK in %v, digest %.3f\n",
		node.Rank(), len(mySet), elapsed.Round(time.Millisecond), digest)
}

// runPagerank runs a small distributed PageRank over TCP: all ranks
// generate the same graph from the seed and take their rank-th edge
// partition.
func runPagerank(node *kylix.Node, n int64, edges, iters int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	all := graph.GenPowerLaw(rng, n, edges, 0.8, 0.8)
	parts := graph.PartitionEdges(rng, all, node.Size())
	deg := graph.OutDegrees(n, all)
	mine := parts[node.Rank()]
	shard, err := graph.BuildShard(mine, graph.PageRankWeights(mine, deg))
	if err != nil {
		fatal(err)
	}

	in := shard.In.Indices()
	out := shard.Out.Indices()
	red, err := node.Configure(in, out)
	if err != nil {
		fatal(err)
	}
	x := make([]float32, len(in))
	for i := range x {
		x[i] = 1 / float32(n)
	}
	y := make([]float32, len(out))
	start := time.Now()
	for it := 0; it < iters; it++ {
		if err := shard.Multiply(x, y); err != nil {
			fatal(err)
		}
		gathered, err := red.Reduce(y)
		if err != nil {
			fatal(err)
		}
		base := (1 - 0.85) / float32(n)
		for i := range x {
			x[i] = base + 0.85*gathered[i]
		}
	}
	var digest float64
	for _, v := range x {
		digest += float64(v)
	}
	fmt.Printf("rank %d: pagerank %d iters over %d local edges in %v, digest %.6f\n",
		node.Rank(), iters, shard.NNZ(), time.Since(start).Round(time.Millisecond), digest)
}

// nodeSet derives rank r's deterministic index set.
func nodeSet(r int, n int64, nnz int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed + int64(r)*104729))
	seen := make(map[int32]bool, nnz)
	set := make([]int32, 0, nnz)
	for len(set) < nnz {
		idx := int32(rng.Int63n(n))
		if !seen[idx] {
			seen[idx] = true
			set = append(set, idx)
		}
	}
	return set
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kylix-node:", err)
	os.Exit(1)
}
