package main

import (
	"net"
	"net/http"
	"testing"
	"time"

	"kylix/internal/leakcheck"
)

// TestStopControlServerBounded is the daemon-shutdown regression test:
// a client parked inside a handler must not pin the control server —
// the graceful drain gives up after the grace period, escalates to a
// hard close, and the serve goroutine is joined before returning.
func TestStopControlServerBounded(t *testing.T) {
	defer leakcheck.Check(t)()

	entered := make(chan struct{})
	stuck := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/hang", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-stuck
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	reqDone := make(chan struct{})
	go func() {
		defer close(reqDone)
		resp, err := http.Get("http://" + ln.Addr().String() + "/hang")
		if err == nil {
			_ = resp.Body.Close()
		}
	}()
	<-entered // the request is now wedged inside the handler

	start := time.Now()
	stopControlServer(srv, serveErr, 50*time.Millisecond)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shutdown took %v; the stuck client pinned the server", elapsed)
	}

	// Unwedge the handler so its goroutine (and the client's) can exit;
	// leakcheck then verifies nothing lingers.
	close(stuck)
	<-reqDone
	http.DefaultClient.CloseIdleConnections()
}

// TestStopControlServerIdle covers the fast path: with no in-flight
// requests the drain completes immediately and the serve goroutine's
// error is collected.
func TestStopControlServerIdle(t *testing.T) {
	defer leakcheck.Check(t)()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.NewServeMux()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	stopControlServer(srv, serveErr, shutdownGrace)
	select {
	case err := <-serveErr:
		t.Fatalf("serve error channel not drained by stopControlServer (got %v)", err)
	default:
	}
}
