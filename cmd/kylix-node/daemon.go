package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"kylix"
	"kylix/internal/comm"
)

// Daemon mode turns kylix-node into a long-running multi-tenant
// service: every rank joins the fabric once and then executes stream
// create/reduce/close commands broadcast by rank 0 over the existing
// KindControl channel (kylix.StreamCtl, one command per sequence
// number, every rank acks). Rank 0 additionally serves the control API
// over HTTP:
//
//	POST   /streams?n=..&nnz=..&seed=..&width=..&quant=off|fp16|int8
//	                                              -> create a stream
//	POST   /streams/{id}/reduce?rounds=..&seed=.. -> warm reduction passes
//	DELETE /streams/{id}                          -> close the stream
//	POST   /shutdown                              -> stop every rank
//
// Responses carry the aggregate result digest summed over all ranks;
// two streams created with the same parameters must report identical
// digests no matter what else shares the fabric — the multi-tenant
// isolation contract, checked end-to-end by the integration test.

// tenant is one stream's live state on this rank.
type tenant struct {
	node *kylix.Node
	red  *kylix.Reduction
	set  []int32
	seed int64
	// rounds counts warm passes run so far: the value schedule is a pure
	// function of (seed, rank, per-tenant round), so two tenants created
	// with the same parameters stay digest-identical no matter how their
	// commands interleave with the rest of the fabric.
	rounds uint32
}

// daemon is the per-rank command executor plus, on rank 0, the
// coordinator state.
type daemon struct {
	node    *kylix.Node
	rank    int
	size    int
	tenants map[uint16]*tenant
}

// ctlResult is the coordinator's summary of one completed command.
type ctlResult struct {
	Stream uint16  `json:"stream"`
	Seq    uint32  `json:"seq"`
	Digest float64 `json:"digest"`
	Ranks  int     `json:"ranks"`
}

// command pairs a broadcastable control message with its reply path.
type command struct {
	ctl   *kylix.StreamCtl
	reply chan commandReply
}

type commandReply struct {
	res ctlResult
	err error
}

func runDaemon(node *kylix.Node, rank int, controlAddr string) error {
	d := &daemon{node: node, rank: rank, size: node.Size(), tenants: map[uint16]*tenant{}}
	if rank != 0 {
		fmt.Printf("rank %d: daemon ready\n", rank)
		return d.workerLoop()
	}
	return d.coordinate(controlAddr)
}

// workerLoop executes broadcast commands in sequence order until
// shutdown. Receive timeouts just mean an idle fabric.
func (d *daemon) workerLoop() error {
	for {
		ctl, err := d.node.ControlRecv(0, false)
		if errors.Is(err, comm.ErrTimeout) {
			continue
		}
		if err != nil {
			return err
		}
		stop := d.execute(ctl)
		if stop {
			fmt.Printf("rank %d: daemon OK\n", d.rank)
			return nil
		}
	}
}

// execute runs one collective command and acks it; returns true on
// shutdown.
func (d *daemon) execute(ctl *kylix.StreamCtl) bool {
	digest, err := d.apply(ctl)
	ack := &kylix.StreamCtl{
		Op: kylix.OpStreamAck, Seq: ctl.Seq, Stream: ctl.Stream,
		Digest: math.Float64bits(digest),
	}
	if err != nil {
		fmt.Printf("rank %d: seq %d failed: %v\n", d.rank, ctl.Seq, err)
		ack.N = 1
	}
	if err := d.node.ControlSend(0, ack); err != nil {
		fmt.Printf("rank %d: ack %d failed: %v\n", d.rank, ctl.Seq, err)
	}
	return ctl.Op == kylix.OpStreamShutdown
}

// apply performs the command's collective work on this rank.
func (d *daemon) apply(ctl *kylix.StreamCtl) (float64, error) {
	switch ctl.Op {
	case kylix.OpStreamCreate:
		if _, live := d.tenants[uint16(ctl.Stream)]; live {
			return 0, fmt.Errorf("stream %d already exists", ctl.Stream)
		}
		snode, err := d.node.Stream(uint16(ctl.Stream),
			kylix.WithWidth(int(ctl.Width)),
			kylix.WithQuantization(kylix.Quantization(ctl.Quant)))
		if err != nil {
			return 0, err
		}
		set := tenantSet(d.rank, ctl.N, int(ctl.NNZ), ctl.Seed)
		vals := tenantVals(set, int(ctl.Width), d.rank, ctl.Seed, 0)
		red, got, err := snode.ConfigureReduce(set, set, vals)
		if err != nil {
			return 0, err
		}
		d.tenants[uint16(ctl.Stream)] = &tenant{node: snode, red: red, set: set, seed: ctl.Seed}
		return digestOf(got), nil
	case kylix.OpStreamReduce:
		tn, live := d.tenants[uint16(ctl.Stream)]
		if !live {
			return 0, fmt.Errorf("stream %d not open", ctl.Stream)
		}
		var digest float64
		for r := uint32(1); r <= ctl.Rounds; r++ {
			vals := tenantVals(tn.set, tn.node.Width(), d.rank, tn.seed, tn.rounds+r)
			got, err := tn.red.Reduce(vals)
			if err != nil {
				return 0, err
			}
			digest = digestOf(got)
		}
		tn.rounds += ctl.Rounds
		return digest, nil
	case kylix.OpStreamClose:
		if _, live := d.tenants[uint16(ctl.Stream)]; !live {
			return 0, fmt.Errorf("stream %d not open", ctl.Stream)
		}
		delete(d.tenants, uint16(ctl.Stream))
		d.node.CloseStream(uint16(ctl.Stream))
		return 0, nil
	case kylix.OpStreamShutdown:
		return 0, nil
	default:
		return 0, fmt.Errorf("unknown stream op %d", ctl.Op)
	}
}

// coordinate is rank 0: an HTTP control API feeding the sequenced
// broadcast loop, with rank 0 executing its own share of every command.
//
//kylix:owned
func (d *daemon) coordinate(controlAddr string) error {
	if controlAddr == "" {
		return fmt.Errorf("daemon rank 0 needs -control-addr")
	}
	cmds := make(chan command)
	mux := http.NewServeMux()
	var nextStream uint16
	enqueue := func(ctl *kylix.StreamCtl) (ctlResult, error) {
		reply := make(chan commandReply, 1)
		cmds <- command{ctl: ctl, reply: reply}
		r := <-reply
		return r.res, r.err
	}
	respond := func(w http.ResponseWriter, res ctlResult, err error) {
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(res)
	}
	qInt := func(r *http.Request, name string, def int64) int64 {
		if s := r.URL.Query().Get(name); s != "" {
			if v, err := strconv.ParseInt(s, 10, 64); err == nil {
				return v
			}
		}
		return def
	}
	mux.HandleFunc("POST /streams", func(w http.ResponseWriter, r *http.Request) {
		quant, err := kylix.ParseQuantization(r.URL.Query().Get("quant"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		nextStream++
		res, err := enqueue(&kylix.StreamCtl{
			Op:     kylix.OpStreamCreate,
			Stream: comm.StreamID(nextStream),
			Seed:   qInt(r, "seed", 42),
			N:      qInt(r, "n", 1<<16),
			NNZ:    uint32(qInt(r, "nnz", 1<<10)),
			Width:  uint32(qInt(r, "width", 1)),
			Quant:  uint8(quant),
		})
		respond(w, res, err)
	})
	mux.HandleFunc("POST /streams/{id}/reduce", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 16)
		if err != nil {
			http.Error(w, "bad stream id", http.StatusBadRequest)
			return
		}
		res, qerr := enqueue(&kylix.StreamCtl{
			Op:     kylix.OpStreamReduce,
			Stream: comm.StreamID(id),
			Rounds: uint32(qInt(r, "rounds", 1)),
		})
		respond(w, res, qerr)
	})
	mux.HandleFunc("DELETE /streams/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 16)
		if err != nil {
			http.Error(w, "bad stream id", http.StatusBadRequest)
			return
		}
		res, qerr := enqueue(&kylix.StreamCtl{Op: kylix.OpStreamClose, Stream: comm.StreamID(id)})
		respond(w, res, qerr)
	})
	shutdown := make(chan struct{})
	mux.HandleFunc("POST /shutdown", func(w http.ResponseWriter, r *http.Request) {
		res, err := enqueue(&kylix.StreamCtl{Op: kylix.OpStreamShutdown})
		respond(w, res, err)
		close(shutdown)
	})
	srv := &http.Server{Addr: controlAddr, Handler: mux}
	httpErr := make(chan error, 1)
	go func() { httpErr <- srv.ListenAndServe() }()
	fmt.Printf("rank 0: daemon ready, control API on http://%s\n", controlAddr)

	var seq uint32
	for {
		select {
		case cmd := <-cmds:
			seq++
			cmd.ctl.Seq = seq
			res, err := d.broadcast(cmd.ctl)
			cmd.reply <- commandReply{res: res, err: err}
			if cmd.ctl.Op == kylix.OpStreamShutdown {
				<-shutdown
				// Graceful: lets the /shutdown response flush first —
				// but bounded and joined, so a stuck client cannot pin
				// the daemon.
				stopControlServer(srv, httpErr, shutdownGrace)
				fmt.Println("rank 0: daemon OK")
				return nil
			}
		case err := <-httpErr:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				return err
			}
		}
	}
}

// shutdownGrace bounds the control server's graceful drain: in-flight
// requests get this long to flush, then the server is force-closed.
const shutdownGrace = 5 * time.Second

// stopControlServer shuts the control API down with a bounded graceful
// drain and then joins the serve goroutine: Shutdown waits at most
// grace for in-flight requests, a timeout escalates to Close (dropping
// stragglers), and the final receive collects ListenAndServe's exit so
// the caller never returns with the listener goroutine still live.
func stopControlServer(srv *http.Server, serveErr <-chan error, grace time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		_ = srv.Close()
	}
	<-serveErr
}

// broadcast sends one command to every rank (rank 0 included — its own
// worker share runs inline here), then collects all acks and folds the
// per-rank digests into the aggregate.
func (d *daemon) broadcast(ctl *kylix.StreamCtl) (ctlResult, error) {
	for r := 1; r < d.size; r++ {
		if err := d.node.ControlSend(r, ctl); err != nil {
			return ctlResult{}, fmt.Errorf("broadcast to rank %d: %w", r, err)
		}
	}
	// Rank 0's own share, inline (collective with the other ranks).
	digest, err := d.apply(ctl)
	if err != nil {
		return ctlResult{}, fmt.Errorf("rank 0: %w", err)
	}
	res := ctlResult{Stream: uint16(ctl.Stream), Seq: ctl.Seq, Digest: digest, Ranks: d.size}
	for r := 1; r < d.size; r++ {
		for {
			ack, err := d.node.ControlRecv(r, true)
			if errors.Is(err, comm.ErrTimeout) {
				continue
			}
			if err != nil {
				return ctlResult{}, fmt.Errorf("ack from rank %d: %w", r, err)
			}
			if ack.Seq != ctl.Seq {
				// A stale ack from a request that timed out at the HTTP
				// layer; skip it.
				continue
			}
			if ack.N != 0 {
				return ctlResult{}, fmt.Errorf("rank %d failed seq %d", r, ctl.Seq)
			}
			res.Digest += math.Float64frombits(ack.Digest)
			break
		}
	}
	return res, nil
}

// tenantSet derives rank r's deterministic index set for a stream
// workload (same shape as nodeSet but keyed by the stream's seed).
func tenantSet(r int, n int64, nnz int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed + int64(r)*104729))
	seen := make(map[int32]bool, nnz)
	set := make([]int32, 0, nnz)
	for len(set) < nnz {
		idx := int32(rng.Int63n(n))
		if !seen[idx] {
			seen[idx] = true
			set = append(set, idx)
		}
	}
	return set
}

// tenantVals derives the rank's contribution for one pass: a pure
// function of (seed, rank, round) so re-running the same command
// sequence reproduces the same digests bit-for-bit.
func tenantVals(set []int32, width, rank int, seed int64, round uint32) []float32 {
	vals := make([]float32, len(set)*width)
	for i := range vals {
		vals[i] = float32(rank+1) + float32(seed%97)*0.5 + float32(round)*0.25 + float32(i%5)*0.125
	}
	return vals
}

// digestOf folds gathered values into the rank's result digest.
func digestOf(vals []float32) float64 {
	var d float64
	for _, v := range vals {
		d += float64(v)
	}
	return d
}
