// kylix-run launches an m-process Kylix cluster on the local machine:
// it picks free ports, spawns one kylix-node per rank, and relays their
// output. It is the one-command demonstration that the protocol runs
// across real OS processes and sockets, not just goroutines.
//
//	kylix-run -m 4 -degrees 2x2
//	kylix-run -m 4 -workload pagerank
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

func main() {
	var (
		m           = flag.Int("m", 4, "number of node processes")
		degrees     = flag.String("degrees", "", "butterfly degrees like 4x2 (default: direct)")
		workload    = flag.String("workload", "allreduce", "allreduce or pagerank")
		nodeBin     = flag.String("node-bin", "", "path to kylix-node (default: next to this binary, else go run)")
		n           = flag.Int64("n", 1<<16, "feature/vertex space size")
		nnz         = flag.Int("nnz", 1<<14, "per-node nonzeros or total edges")
		traceOut    = flag.String("trace-out", "", "per-rank Chrome trace files: rank r writes <trace-out>.rank<r>.json")
		metricsAddr = flag.String("metrics-addr", "", "rank 0 serves /metrics, /trace, /timeline on this address")
	)
	flag.Parse()

	addrs, err := freePorts(*m)
	if err != nil {
		fatal(err)
	}
	hostList := strings.Join(addrs, ",")

	procs := make([]*exec.Cmd, *m)
	for r := 0; r < *m; r++ {
		args := []string{
			"-rank", fmt.Sprint(r),
			"-hosts", hostList,
			"-workload", *workload,
			"-n", fmt.Sprint(*n),
			"-nnz", fmt.Sprint(*nnz),
		}
		if *degrees != "" {
			args = append(args, "-degrees", *degrees)
		}
		if *traceOut != "" {
			args = append(args, "-trace-out", fmt.Sprintf("%s.rank%d.json", *traceOut, r))
		}
		if *metricsAddr != "" && r == 0 {
			args = append(args, "-metrics-addr", *metricsAddr)
		}
		cmd := nodeCommand(*nodeBin, args)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fatal(err)
		}
		procs[r] = cmd
	}
	failed := false
	for r, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "kylix-run: rank %d: %v\n", r, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("kylix-run: all %d ranks completed\n", *m)
}

// nodeCommand builds the child process command, preferring an explicit
// binary, then a kylix-node next to this executable, then `go run`.
func nodeCommand(explicit string, args []string) *exec.Cmd {
	if explicit != "" {
		return exec.Command(explicit, args...)
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "kylix-node")
		if _, err := os.Stat(sibling); err == nil {
			return exec.Command(sibling, args...)
		}
	}
	return exec.Command("go", append([]string{"run", "kylix/cmd/kylix-node"}, args...)...)
}

// freePorts reserves m distinct loopback ports by binding and releasing.
func freePorts(m int) ([]string, error) {
	addrs := make([]string, m)
	listeners := make([]net.Listener, 0, m)
	defer func() {
		for _, ln := range listeners {
			_ = ln.Close()
		}
	}()
	for i := 0; i < m; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kylix-run:", err)
	os.Exit(1)
}
