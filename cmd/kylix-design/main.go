// kylix-design runs the paper's Section IV network-design workflow:
// given the dataset's feature count, power-law exponent and measured
// per-partition density, plus the cluster size and the network's minimum
// efficient packet size, it prints the optimal butterfly degrees and the
// Proposition 4.1 per-layer predictions.
//
// The paper's Twitter configuration:
//
//	kylix-design -n 60000000 -alpha 0.8 -density 0.21 -machines 64
//	=> degrees 8x4x2
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"kylix/internal/powerlaw"
	"kylix/internal/topo"
)

func main() {
	var (
		fitDemo   = flag.Bool("fit-demo", false, "demonstrate the §IV empirical-curve variant: synthesize an occurrence sample at the given parameters, fit (alpha, lambda) back from it, and design from the fit")
		n         = flag.Int64("n", 60_000_000, "total feature (vertex) count")
		alpha     = flag.Float64("alpha", 0.8, "power-law exponent of the data (0.5-2 for most real datasets)")
		density   = flag.Float64("density", 0.21, "measured nonzero density of one machine's partition")
		machines  = flag.Int("machines", 64, "cluster size m (degrees multiply to m)")
		elemBytes = flag.Int("elem-bytes", 4, "wire bytes per vector element")
		minPacket = flag.Float64("min-packet", 5<<20, "minimum efficient packet size in bytes (read off Figure 2)")
		maxDegree = flag.Int("max-degree", 0, "optional cap on any layer's degree (0 = none)")
		showTopo  = flag.Bool("show-topology", false, "print the designed network's layer groups (small m)")
	)
	flag.Parse()

	if *fitDemo {
		runFitDemo(*n, *alpha, *density, *machines, *elemBytes, *minPacket)
		return
	}

	degrees, err := powerlaw.Design(powerlaw.DesignInput{
		N: *n, Alpha: *alpha, Density0: *density,
		Machines: *machines, ElemBytes: *elemBytes,
		MinPacket: *minPacket, MaxDegree: *maxDegree,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "kylix-design: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("optimal degrees: ")
	for i, d := range degrees {
		if i > 0 {
			fmt.Print(" x ")
		}
		fmt.Print(d)
	}
	fmt.Println()

	lambda0, err := powerlaw.SolveLambda(*n, *alpha, *density)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kylix-design: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nProposition 4.1 predictions (lambda0 = %.4g):\n", lambda0)
	fmt.Printf("%-6s %-8s %-9s %-14s %-14s\n", "layer", "degree", "density", "dataPerNodeMB", "msgMB")
	stats := powerlaw.Predict(*n, *alpha, lambda0, degrees)
	for i, d := range degrees {
		dataMB := stats[i].ElemsPerNode * float64(*elemBytes) / (1 << 20)
		fmt.Printf("%-6d %-8d %-9.3f %-14.2f %-14.2f\n",
			i+1, d, stats[i].Density, dataMB, dataMB/float64(d))
	}
	bottom := stats[len(stats)-1]
	fmt.Printf("%-6s %-8s %-9.3f %-14.2f\n", "bottom", "-", bottom.Density,
		bottom.ElemsPerNode*float64(*elemBytes)/(1<<20))

	if *showTopo {
		bf, err := topo.New(degrees)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kylix-design: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\n%s", bf.Describe())
	}
}

// runFitDemo exercises the measure-then-design pipeline on synthetic
// data: it draws one partition's occurrence sample at the requested
// parameters (capping n so the demo stays instant), fits the power-law
// parameters back from the raw sample, and designs the network from the
// fit — the workflow a practitioner follows when alpha is unknown.
func runFitDemo(n int64, alpha, density float64, machines, elemBytes int, minPacket float64) {
	const demoCap = 1 << 15
	scale := 1.0
	if n > demoCap {
		scale = float64(demoCap) / float64(n)
		minPacket *= scale
		n = demoCap
	}
	lambda0, err := powerlaw.SolveLambda(n, alpha, density)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kylix-design: %v\n", err)
		os.Exit(1)
	}
	gen := &powerlaw.Generator{N: n, Alpha: alpha, Lambda0: lambda0}
	rng := rand.New(rand.NewSource(1))
	occ := gen.Occurrences(rng)
	fmt.Printf("sampled %d raw occurrences over %d features (true alpha %.2f, density %.3f)\n",
		len(occ), n, alpha, density)
	degrees, fitAlpha, _, err := powerlaw.DesignFromSample(rng, occ, n, machines, elemBytes, minPacket)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kylix-design: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("fitted alpha: %.2f\n", fitAlpha)
	fmt.Printf("designed degrees: ")
	for i, d := range degrees {
		if i > 0 {
			fmt.Print(" x ")
		}
		fmt.Print(d)
	}
	fmt.Println()
}
