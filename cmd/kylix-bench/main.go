// kylix-bench regenerates every table and figure of the Kylix paper's
// evaluation section (ICPP 2014 §VII) from synthetic power-law workloads
// and the EC2-calibrated network cost model. See EXPERIMENTS.md for the
// paper-vs-reproduction comparison the output feeds.
//
// Usage:
//
//	kylix-bench                  # all experiments at default scale
//	kylix-bench -exp fig6,fig8   # a subset
//	kylix-bench -scale quick     # smaller, faster workloads
//	kylix-bench -measured        # include the real-TCP packet sweep
//	kylix-bench -trace-out t.json  # run a live traced allreduce instead,
//	                               # writing a Chrome trace (chrome://tracing)
//	kylix-bench -metrics-addr :0   # ... and serve /metrics, /trace, /timeline
//	kylix-bench -elastic           # live elastic run: allreduce, a live
//	                               # membership transition, allreduce again
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"kylix"
	"kylix/internal/bench"
	"kylix/internal/netsim"
)

func main() {
	var (
		scaleName   = flag.String("scale", "default", "experiment scale: default or quick")
		exps        = flag.String("exp", "all", "comma-separated experiments: fig2,fig4,fig5,fig6,fig7,fig8,fig9,table1,ablation-design,ablation-fused,ablation-racing,ablation-jitter or all")
		measured    = flag.Bool("measured", false, "also run the real loopback-TCP packet sweep for fig2")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile taken after the experiments to this file")
		traceOut    = flag.String("trace-out", "", "run a live observed allreduce and write its Chrome trace_event JSON here (instead of the modelled experiments)")
		metricsAddr = flag.String("metrics-addr", "", "with the live run: serve /metrics, /trace and /timeline on this address until interrupted")
		elastic     = flag.Bool("elastic", false, "run a live elastic-membership demo: allreduce, a live Join transition, allreduce on the new epoch (epoch metrics on -metrics-addr)")
		threads     = flag.String("threads", "", "comma-separated worker counts (e.g. 1,2,4): run the live Figure 7 intra-node threading sweep — warm width-4 reductions with the combine stage sharded across each pool size — instead of the modelled experiments")
		quantName   = flag.String("quant", "off", "wire value quantization for the live traced run: off, fp16 or int8")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kylix-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "kylix-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kylix-bench: memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "kylix-bench: memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	var sc bench.Scale
	switch *scaleName {
	case "default":
		sc = bench.DefaultScale()
	case "quick":
		sc = bench.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "kylix-bench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	if *elastic {
		if err := runElastic(sc, *metricsAddr); err != nil {
			fmt.Fprintf(os.Stderr, "kylix-bench: elastic run: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *threads != "" {
		if err := runThreadSweep(*threads); err != nil {
			fmt.Fprintf(os.Stderr, "kylix-bench: threads sweep: %v\n", err)
			os.Exit(1)
		}
		return
	}
	quant, err := kylix.ParseQuantization(*quantName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kylix-bench: %v\n", err)
		os.Exit(1)
	}
	if *traceOut != "" || *metricsAddr != "" {
		if err := runTraced(sc, quant, *traceOut, *metricsAddr); err != nil {
			fmt.Fprintf(os.Stderr, "kylix-bench: traced run: %v\n", err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	type experiment struct {
		name string
		run  func() (*bench.Table, error)
	}
	experiments := []experiment{
		{"fig2", func() (*bench.Table, error) { return bench.Figure2(netsim.EC2()), nil }},
		{"fig4", func() (*bench.Table, error) { return bench.Figure4(), nil }},
		{"fig5", func() (*bench.Table, error) { return bench.Figure5(sc) }},
		{"fig6", func() (*bench.Table, error) { return bench.Figure6(sc) }},
		{"fig7", func() (*bench.Table, error) { return bench.Figure7(sc) }},
		{"table1", func() (*bench.Table, error) { return bench.TableI(sc) }},
		{"fig8", func() (*bench.Table, error) { return bench.Figure8(sc) }},
		{"fig9", func() (*bench.Table, error) { return bench.Figure9(sc) }},
		{"ablation-design", func() (*bench.Table, error) { return bench.AblationDesignSearch(sc) }},
		{"ablation-fused", func() (*bench.Table, error) { return bench.AblationFusedConfigReduce(sc) }},
		{"ablation-racing", func() (*bench.Table, error) { return bench.AblationPacketRacing(), nil }},
		{"ablation-jitter", func() (*bench.Table, error) { return bench.AblationJitterDES(sc) }},
	}

	fmt.Printf("kylix-bench: scale=%s (n=%d, machines=%d)\n\n", *scaleName, sc.N, sc.Machines)
	for _, e := range experiments {
		if !all && !want[e.name] {
			continue
		}
		start := time.Now()
		tab, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "kylix-bench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Print(tab.Render())
		fmt.Printf("   [%s ran in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}

	if *measured && (all || want["fig2"]) {
		tab, err := bench.Figure2Measured(250 * time.Millisecond)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kylix-bench: measured fig2: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(tab.Render())
		fmt.Println()
	}
}

// tracedReduceRounds is how many warm Reduce passes the live traced run
// performs after the fused configure+reduce, so the Chrome trace shows
// several repetitions of the layer profile.
const tracedReduceRounds = 3

// runTraced runs one live, fully observed allreduce at the given scale —
// a power-law (Zipf) workload over a multi-layer butterfly — and exports
// what the observability layer saw: a Chrome trace_event JSON (traceOut),
// the per-phase timeline and a metrics snapshot on stdout, and optionally
// the live HTTP endpoint (metricsAddr). On power-law data the per-layer
// reduce slices in the trace shrink layer by layer — the paper's Figure 5
// "Kylix" traffic profile, visible on a timeline.
func runTraced(sc bench.Scale, quant kylix.Quantization, traceOut, metricsAddr string) error {
	degrees := factorDegrees(sc.Machines)
	opts := []kylix.Option{kylix.WithObservability(), kylix.WithTrace(),
		kylix.WithQuantization(quant)}
	if len(degrees) > 1 {
		opts = append(opts, kylix.WithDegrees(degrees...))
	}
	cluster, err := kylix.NewCluster(sc.Machines, opts...)
	if err != nil {
		return err
	}
	defer func() { _ = cluster.Close() }()

	var srv *kylix.MetricsServer
	if metricsAddr != "" {
		srv, err = kylix.ServeMetrics(metricsAddr, cluster.Observability())
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics (also /trace, /timeline)\n", srv.Addr)
	}

	nnz := int(sc.N / 8)
	if nnz < 64 {
		nnz = 64
	}
	fmt.Printf("traced run: m=%d degrees=%v n=%d nnz/node=%d quant=%v (%d reduce rounds)\n",
		sc.Machines, cluster.Degrees(), sc.N, nnz, quant, tracedReduceRounds)
	start := time.Now()
	err = cluster.Run(func(node *kylix.Node) error {
		set := zipfSet(sc.Seed+int64(node.Rank())*7919, sc.N, nnz)
		vals := make([]float32, len(set))
		for i := range vals {
			vals[i] = 1
		}
		red, _, err := node.ConfigureReduce(set, set, vals)
		if err != nil {
			return err
		}
		for r := 0; r < tracedReduceRounds; r++ {
			if _, err := red.Reduce(vals); err != nil {
				return err
			}
		}
		// Exercise the incremental path: one priming pass (stores the
		// received pieces), one warm unchanged pass (all two-byte
		// markers), so the reconfigure counters below have both flavours.
		if err := red.Reconfigure(set, set); err != nil {
			return err
		}
		if err := red.Reconfigure(set, set); err != nil {
			return err
		}
		if _, err := red.Reduce(vals); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("allreduce complete in %v\n\n", time.Since(start).Round(time.Millisecond))

	o := cluster.Observability()
	if err := o.WriteTimeline(os.Stdout); err != nil {
		return err
	}
	if err := printConfigCompression(cluster, o); err != nil {
		return err
	}
	if err := printValueCompression(cluster, o); err != nil {
		return err
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := o.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nChrome trace written to %s (load in chrome://tracing)\n", traceOut)
	}
	return nil
}

// runElastic runs a live elastic-membership demonstration: an observed
// allreduce on the initial epoch, a live Join transition that grows the
// membership onto spare machines, and a second allreduce on the new
// epoch's re-derived butterfly. The control plane's epoch metrics
// (epoch_current, epoch_transitions, drain_ns, hb_rtt_ns) are printed
// afterwards and, with -metrics-addr, are visible on /metrics while the
// transition happens.
func runElastic(sc bench.Scale, metricsAddr string) error {
	m := sc.Machines
	const spares = 2
	opts := []kylix.Option{
		kylix.WithObservability(),
		kylix.WithElastic(kylix.ElasticOptions{Spares: spares}),
	}
	if degrees := factorDegrees(m); len(degrees) > 1 {
		opts = append(opts, kylix.WithDegrees(degrees...))
	}
	cluster, err := kylix.NewCluster(m, opts...)
	if err != nil {
		return err
	}
	defer func() { _ = cluster.Close() }()

	if metricsAddr != "" {
		srv, err := kylix.ServeMetrics(metricsAddr, cluster.Observability())
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics (epoch gauges update live)\n", srv.Addr)
	}

	nnz := int(sc.N / 8)
	if nnz < 64 {
		nnz = 64
	}
	reduceOnce := func() error {
		return cluster.Run(func(node *kylix.Node) error {
			set := zipfSet(sc.Seed+int64(node.Rank())*7919, sc.N, nnz)
			vals := make([]float32, len(set))
			for i := range vals {
				vals[i] = 1
			}
			red, _, err := node.ConfigureReduce(set, set, vals)
			if err != nil {
				return err
			}
			_, err = red.Reduce(vals)
			return err
		})
	}

	fmt.Printf("elastic run: m=%d spares=%d epoch=%d degrees=%v n=%d nnz/node=%d\n",
		cluster.Size(), spares, cluster.Epoch(), cluster.Degrees(), sc.N, nnz)
	start := time.Now()
	if err := reduceOnce(); err != nil {
		return err
	}
	fmt.Printf("epoch %d allreduce complete in %v\n",
		cluster.Epoch(), time.Since(start).Round(time.Millisecond))

	fmt.Printf("joining spare machines %d, %d ...\n", m, m+1)
	start = time.Now()
	if err := cluster.Join(m, m+1); err != nil {
		return err
	}
	fmt.Printf("transition to epoch %d committed in %v: %d members, degrees=%v\n",
		cluster.Epoch(), time.Since(start).Round(time.Millisecond),
		cluster.Size(), cluster.Degrees())
	start = time.Now()
	if err := reduceOnce(); err != nil {
		return err
	}
	fmt.Printf("epoch %d allreduce complete in %v\n\n",
		cluster.Epoch(), time.Since(start).Round(time.Millisecond))

	snap := cluster.Metrics().Snapshot()
	fmt.Printf("epoch metrics:\n")
	fmt.Printf("  epoch_current        %d\n", snap.Gauges["epoch_current"])
	fmt.Printf("  epoch_transitions    %d\n", snap.Counters["epoch_transitions"])
	fmt.Printf("  epoch_stale_rejected %d\n", snap.Counters["epoch_stale_rejected"])
	drain := snap.Histograms["drain_ns"]
	fmt.Printf("  drain_ns             count=%d p50=%v max=%v\n",
		drain.Count, time.Duration(drain.P50), time.Duration(drain.Max))
	rtt := snap.Histograms["hb_rtt_ns"]
	fmt.Printf("  hb_rtt_ns            count=%d p50=%v p99=%v\n",
		rtt.Count, time.Duration(rtt.P50), time.Duration(rtt.P99))
	return nil
}

// runThreadSweep measures the live Figure 7 curve: the same warm
// width-4 reduction with the intra-node combine/gather stage sharded
// across each requested pool size. The workload is a fully shared index
// block, so every accumulator row folds a full member-order chain and
// the kernels dominate the round; the block is sized so layer pieces
// clear par's sharding threshold. Speedups above 1 need real cores —
// on a single-CPU host the workers time-slice and the sweep reports
// the scheduling overhead instead (which is the honest curve there).
func runThreadSweep(spec string) error {
	var counts []int
	for _, f := range strings.Split(spec, ",") {
		var w int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &w); err != nil || w < 1 {
			return fmt.Errorf("bad worker count %q", f)
		}
		counts = append(counts, w)
	}
	const (
		machines = 8
		width    = 4
		block    = 1 << 16
		rounds   = 5
	)
	fmt.Printf("fig7 live sweep: m=%d degrees=[4 2] width=%d shared-block=%d rounds=%d GOMAXPROCS=%d\n\n",
		machines, width, block, rounds, runtime.GOMAXPROCS(0))
	fmt.Printf("%8s %14s %10s %14s\n", "workers", "ms/round", "speedup", "shards/round")

	idx := make([]int32, block)
	for i := range idx {
		idx[i] = int32(i)
	}
	var serial time.Duration
	for _, workers := range counts {
		cluster, err := kylix.NewCluster(machines,
			kylix.WithDegrees(4, 2),
			kylix.WithWidth(width),
			kylix.WithCombineWorkers(workers),
			kylix.WithObservability())
		if err != nil {
			return err
		}
		walls := make([]time.Duration, machines)
		err = cluster.Run(func(node *kylix.Node) error {
			q := node.Rank()
			vals := make([]float32, block*width)
			for i := range vals {
				vals[i] = float32(q+1) * 0.001 * float32(i%97+1)
			}
			red, err := node.Configure(idx, idx)
			if err != nil {
				return err
			}
			for r := 0; r < 2; r++ { // warm both arena generations
				if _, err := red.Reduce(vals); err != nil {
					return err
				}
			}
			start := time.Now()
			for r := 0; r < rounds; r++ {
				if _, err := red.Reduce(vals); err != nil {
					return err
				}
			}
			walls[node.PhysicalRank()] = time.Since(start)
			return nil
		})
		if err != nil {
			_ = cluster.Close()
			return err
		}
		var wall time.Duration
		for _, w := range walls {
			if w > wall {
				wall = w
			}
		}
		shards := cluster.Metrics().Counter("combine_shards").Value()
		_ = cluster.Close()
		perRound := wall / rounds
		if workers == counts[0] && workers == 1 {
			serial = perRound
		}
		speedup := "-"
		if serial > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(serial)/float64(perRound))
		}
		fmt.Printf("%8d %14.2f %10s %14d\n",
			workers, float64(perRound.Microseconds())/1000, speedup, shards/int64(rounds+2))
	}
	return nil
}

// printConfigCompression renders the per-layer raw-vs-encoded volume of
// the configuration phases: what the index sets cost on the wire with
// the compressed codec against what the old 8-byte-per-key format would
// have shipped, plus the incremental-reconfigure layer counters.
func printConfigCompression(cluster *kylix.Cluster, o *kylix.Observatory) error {
	rep, err := cluster.Traffic(4)
	if err != nil {
		return err
	}
	fmt.Printf("\nconfig wire compression (index codec, per layer):\n")
	fmt.Printf("%-14s %5s %14s %14s %7s\n", "phase", "layer", "encodedBytes", "rawBytes", "x")
	for _, lt := range rep.Layers {
		if lt.Phase != kylix.PhaseConfig && lt.Phase != kylix.PhaseConfigReduce {
			continue
		}
		if lt.Layer == 0 || lt.Bytes == 0 {
			continue
		}
		fmt.Printf("%-14s %5d %14d %14d %6.2fx\n",
			lt.Phase, lt.Layer, lt.Bytes, lt.RawBytes, float64(lt.RawBytes)/float64(lt.Bytes))
	}
	reg := o.Registry()
	enc := reg.Counter("config_bytes_encoded").Value()
	raw := reg.Counter("config_bytes_raw").Value()
	if enc > 0 {
		fmt.Printf("config sets total: encoded %d, raw-equivalent %d (%.2fx smaller)\n",
			enc, raw, float64(raw)/float64(enc))
	}
	fast := reg.Counter("reconfigure_fast_layers").Value()
	full := reg.Counter("reconfigure_full_layers").Value()
	if fast+full > 0 {
		fmt.Printf("reconfigure layers: %d reused unions (fast), %d rebuilt\n", fast, full)
	}
	return nil
}

// printValueCompression renders the per-layer quantized-vs-raw volume
// of the value planes (reduce and gather): what the value blocks cost
// on the wire under the selected quantization against the raw
// 4-byte-per-float32 format, plus the cluster-wide totals from the
// values_bytes_* counters.
func printValueCompression(cluster *kylix.Cluster, o *kylix.Observatory) error {
	rep, err := cluster.Traffic(4)
	if err != nil {
		return err
	}
	fmt.Printf("\nvalue wire compression (quantization codec, per layer):\n")
	fmt.Printf("%-14s %5s %14s %14s %7s\n", "phase", "layer", "encodedBytes", "rawBytes", "x")
	for _, lt := range rep.Layers {
		if lt.Phase != kylix.PhaseReduce && lt.Phase != kylix.PhaseGather {
			continue
		}
		if lt.Layer == 0 || lt.Bytes == 0 {
			continue
		}
		fmt.Printf("%-14s %5d %14d %14d %6.2fx\n",
			lt.Phase, lt.Layer, lt.Bytes, lt.RawBytes, float64(lt.RawBytes)/float64(lt.Bytes))
	}
	reg := o.Registry()
	enc := reg.Counter("values_bytes_encoded").Value()
	raw := reg.Counter("values_bytes_raw").Value()
	if enc > 0 {
		fmt.Printf("value blocks total: encoded %d, raw-equivalent %d (%.2fx smaller)\n",
			enc, raw, float64(raw)/float64(enc))
	}
	return nil
}

// zipfSet draws nnz distinct Zipf-distributed indices in [0, n) — the
// power-law feature sets the paper's design analysis assumes.
func zipfSet(seed, n int64, nnz int) []int32 {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.25, 1, uint64(n-1))
	seen := make(map[int32]bool, nnz)
	set := make([]int32, 0, nnz)
	for len(set) < nnz {
		idx := int32(zipf.Uint64())
		if !seen[idx] {
			seen[idx] = true
			set = append(set, idx)
		}
	}
	return set
}

// factorDegrees splits the machine count into a multi-layer butterfly
// degree list (fours first, then twos, then whatever prime is left) so
// the traced run exercises several layers.
func factorDegrees(m int) []int {
	var ds []int
	for m > 1 {
		switch {
		case m%4 == 0 && m > 4:
			ds = append(ds, 4)
			m /= 4
		case m%2 == 0:
			ds = append(ds, 2)
			m /= 2
		default:
			f := 3
			for ; m%f != 0; f += 2 {
			}
			ds = append(ds, f)
			m /= f
		}
	}
	return ds
}
