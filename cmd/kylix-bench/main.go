// kylix-bench regenerates every table and figure of the Kylix paper's
// evaluation section (ICPP 2014 §VII) from synthetic power-law workloads
// and the EC2-calibrated network cost model. See EXPERIMENTS.md for the
// paper-vs-reproduction comparison the output feeds.
//
// Usage:
//
//	kylix-bench                  # all experiments at default scale
//	kylix-bench -exp fig6,fig8   # a subset
//	kylix-bench -scale quick     # smaller, faster workloads
//	kylix-bench -measured        # include the real-TCP packet sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"kylix/internal/bench"
	"kylix/internal/netsim"
)

func main() {
	var (
		scaleName  = flag.String("scale", "default", "experiment scale: default or quick")
		exps       = flag.String("exp", "all", "comma-separated experiments: fig2,fig4,fig5,fig6,fig7,fig8,fig9,table1,ablation-design,ablation-fused,ablation-racing,ablation-jitter or all")
		measured   = flag.Bool("measured", false, "also run the real loopback-TCP packet sweep for fig2")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the experiments to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kylix-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "kylix-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kylix-bench: memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "kylix-bench: memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	var sc bench.Scale
	switch *scaleName {
	case "default":
		sc = bench.DefaultScale()
	case "quick":
		sc = bench.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "kylix-bench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	type experiment struct {
		name string
		run  func() (*bench.Table, error)
	}
	experiments := []experiment{
		{"fig2", func() (*bench.Table, error) { return bench.Figure2(netsim.EC2()), nil }},
		{"fig4", func() (*bench.Table, error) { return bench.Figure4(), nil }},
		{"fig5", func() (*bench.Table, error) { return bench.Figure5(sc) }},
		{"fig6", func() (*bench.Table, error) { return bench.Figure6(sc) }},
		{"fig7", func() (*bench.Table, error) { return bench.Figure7(sc) }},
		{"table1", func() (*bench.Table, error) { return bench.TableI(sc) }},
		{"fig8", func() (*bench.Table, error) { return bench.Figure8(sc) }},
		{"fig9", func() (*bench.Table, error) { return bench.Figure9(sc) }},
		{"ablation-design", func() (*bench.Table, error) { return bench.AblationDesignSearch(sc) }},
		{"ablation-fused", func() (*bench.Table, error) { return bench.AblationFusedConfigReduce(sc) }},
		{"ablation-racing", func() (*bench.Table, error) { return bench.AblationPacketRacing(), nil }},
		{"ablation-jitter", func() (*bench.Table, error) { return bench.AblationJitterDES(sc) }},
	}

	fmt.Printf("kylix-bench: scale=%s (n=%d, machines=%d)\n\n", *scaleName, sc.N, sc.Machines)
	for _, e := range experiments {
		if !all && !want[e.name] {
			continue
		}
		start := time.Now()
		tab, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "kylix-bench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Print(tab.Render())
		fmt.Printf("   [%s ran in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}

	if *measured && (all || want["fig2"]) {
		tab, err := bench.Figure2Measured(250 * time.Millisecond)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kylix-bench: measured fig2: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(tab.Render())
		fmt.Println()
	}
}
