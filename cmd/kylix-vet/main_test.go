package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolProtocol builds the real binary and drives it the two ways
// production does: through `go vet -vettool` (the unitchecker protocol:
// -V=full handshake, per-package cfg files, vetx fact plumbing) and
// standalone. A clean package set must pass, and a fixture with known
// violations must fail with the analyzer named in the output.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets packages")
	}
	root := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "kylix-vet")
	if out, err := command(root, "go", "build", "-o", bin, "./cmd/kylix-vet").CombinedOutput(); err != nil {
		t.Fatalf("building kylix-vet: %v\n%s", err, out)
	}

	// Clean packages: go vet with the tool must succeed.
	if out, err := command(root, "go", "vet", "-vettool="+bin,
		"./internal/core/...", "./internal/comm/...", "./internal/sparse/...").CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool over clean packages failed: %v\n%s", err, out)
	}

	// A fixture with violations: go vet must fail and name the check.
	out, err := command(root, "go", "vet", "-vettool="+bin,
		"./internal/analysis/testdata/src/commtest").CombinedOutput()
	if err == nil {
		t.Errorf("go vet -vettool accepted the commtest fixture:\n%s", out)
	} else if !strings.Contains(string(out), "[commcheck]") {
		t.Errorf("go vet -vettool output does not name commcheck: %v\n%s", err, out)
	}

	// Cross-package facts through vetx files: hotpathtest's violations
	// include one that lives in hotpathdep and must be reported at the
	// hotpathtest call site.
	out, err = command(root, "go", "vet", "-vettool="+bin,
		"./internal/analysis/testdata/src/hotpathtest").CombinedOutput()
	if err == nil {
		t.Errorf("go vet -vettool accepted the hotpathtest fixture:\n%s", out)
	} else if !strings.Contains(string(out), "reaches make") {
		t.Errorf("transitive hotpathdep finding missing from vet output: %v\n%s", err, out)
	}

	// Lock-order facts through vetx files: lockordertest's inversion
	// against lockorderdep's beta class is only detectable when the
	// dep's LockNames and acquisition facts crossed the package
	// boundary, so this pins the gob fact plumbing for lockorder.
	out, err = command(root, "go", "vet", "-vettool="+bin,
		"./internal/analysis/testdata/src/lockordertest").CombinedOutput()
	if err == nil {
		t.Errorf("go vet -vettool accepted the lockordertest fixture:\n%s", out)
	} else {
		for _, want := range []string{"[lockorder]", `"beta"`, "lock-order cycle"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("cross-package lockorder finding missing %q: %v\n%s", want, err, out)
			}
		}
	}

	// Standalone mode on the same fixture.
	out, err = command(root, bin, "./internal/analysis/testdata/src/hotpathtest").CombinedOutput()
	if err == nil {
		t.Errorf("standalone kylix-vet accepted the hotpathtest fixture:\n%s", out)
	} else if !strings.Contains(string(out), "[hotpathalloc]") {
		t.Errorf("standalone output does not name hotpathalloc: %v\n%s", err, out)
	}

	// Standalone -json: a findings run exits 1 with a parseable array
	// attributing file, line and analyzer.
	jsonCmd := command(root, bin, "-json", "./internal/analysis/testdata/src/atomicmixtest")
	jsonOut, err := jsonCmd.Output()
	if err == nil {
		t.Errorf("-json run over atomicmixtest fixture exited 0")
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if jerr := json.Unmarshal(jsonOut, &findings); jerr != nil {
		t.Errorf("-json output not parseable: %v\n%s", jerr, jsonOut)
	} else if len(findings) == 0 {
		t.Errorf("-json output empty for a fixture with violations")
	} else {
		for _, f := range findings {
			if f.Analyzer != "atomicmix" || f.File == "" || f.Line == 0 || f.Message == "" {
				t.Errorf("malformed -json finding: %+v", f)
			}
		}
	}

	// Standalone -json on a clean package: empty array, exit 0.
	jsonOut, err = command(root, bin, "-json", "./internal/sparse").Output()
	if err != nil {
		t.Errorf("-json over clean package failed: %v", err)
	} else if strings.TrimSpace(string(jsonOut)) != "[]" {
		t.Errorf("-json clean output not an empty array: %s", jsonOut)
	}

	// The -V=full handshake go vet uses for build-cache keying.
	out, err = command(root, bin, "-V=full").CombinedOutput()
	if err != nil || !strings.HasPrefix(string(out), "kylix-vet version ") {
		t.Errorf("-V=full handshake broken: %v\n%s", err, out)
	}
}

func command(dir, name string, args ...string) *exec.Cmd {
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	return cmd
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}
