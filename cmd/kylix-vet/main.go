// Command kylix-vet runs the project's invariant analyzers (see
// internal/analysis): hotpathalloc, lockobs, determinism, commcheck,
// goleak, lockorder and atomicmix.
//
// Two modes:
//
//	kylix-vet [-checks=a,b] [-json] [packages...]   # standalone, defaults to ./...
//	go vet -vettool=$(command -v kylix-vet) ./...   # as a vet backend
//
// Standalone mode loads the whole dependency closure itself (via
// `go list -export -deps -json`) and analyzes every project package in
// dependency order, so cross-package hotpath call-graph facts work
// without a driver. In vettool mode cmd/go invokes the binary once per
// package with a *.cfg file; facts travel through go vet's vetx files,
// and results participate in the build cache keyed by this binary's
// content hash (the -V=full handshake).
//
// With -json, diagnostics are machine-readable: standalone mode prints
// a JSON array of {file, line, col, analyzer, detail, message} objects
// to stdout; vettool mode prints the unitchecker-style
// {"<package>": {"<analyzer>": [{posn, message}]}} object go vet's own
// -json flag expects.
//
// Exit codes. Standalone: 0 clean, 1 findings or load/analysis error,
// 2 usage error. Vettool backend: 0 clean, 1 internal error, 2
// findings (the unitchecker convention cmd/go reports as "vet
// failed") — except with -json, where findings exit 0 and the JSON
// stream is the signal, matching `go vet -json`.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kylix/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The -V=full handshake must work regardless of other flags: cmd/go
	// probes it first and hashes the reply into the build cache key.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			fmt.Printf("kylix-vet version %s\n", selfHash())
			return 0
		}
		if a == "-flags" || a == "--flags" {
			// cmd/go asks which analyzer flags the tool supports; the
			// suite is configured by annotations, not flags.
			fmt.Println("[]")
			return 0
		}
	}

	fs := flag.NewFlagSet("kylix-vet", flag.ContinueOnError)
	checks := fs.String("checks", "", "comma-separated analyzer subset (default: all)")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON diagnostics")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := analysis.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kylix-vet:", err)
		return 2
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnit(rest[0], analyzers, *jsonOut)
	}
	return runStandalone(rest, analyzers, *jsonOut)
}

// jsonDiag is the standalone -json record: one finding, fully located
// and attributed, so CI annotators need no parsing beyond JSON.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Detail   string `json:"detail,omitempty"`
	Message  string `json:"message"`
}

// unitPosnDiag is the vettool -json record, matching the shape
// x/tools' unitchecker emits and `go vet -json` aggregates.
type unitPosnDiag struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

func toJSONDiags(diags []analysis.Diagnostic) []jsonDiag {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Check,
			Detail:   d.Detail,
			Message:  d.Message,
		})
	}
	return out
}

// runUnit is the go vet backend path: analyze one package unit, print
// findings to stderr, exit 2 when there are any (the unitchecker
// convention cmd/go treats as "vet failed"). With jsonOut the findings
// go to stdout as the unitchecker JSON object and the exit is 0 —
// cmd/go's -json drivers treat the stream, not the status, as the
// result.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	diags, err := analysis.RunUnit(cfgFile, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kylix-vet:", err)
		return 1
	}
	if jsonOut {
		byCheck := map[string][]unitPosnDiag{}
		for _, d := range diags {
			byCheck[d.Check] = append(byCheck[d.Check], unitPosnDiag{
				Posn:    fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column),
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(map[string]map[string][]unitPosnDiag{unitID(cfgFile): byCheck}); err != nil {
			fmt.Fprintln(os.Stderr, "kylix-vet:", err)
			return 1
		}
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// unitID recovers the package identifier from the vet cfg file for the
// JSON output's top-level key.
func unitID(cfgFile string) string {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return "unknown"
	}
	var cfg analysis.UnitConfig
	if err := json.Unmarshal(data, &cfg); err != nil || cfg.ID == "" {
		return "unknown"
	}
	return cfg.ID
}

// runStandalone loads the patterns (default ./...) and analyzes every
// matched project package. Findings exit 1 in both output formats; the
// stderr count stays off the -json stdout stream so pipelines can
// consume pure JSON.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "kylix-vet:", err)
		return 1
	}
	ld, err := analysis.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kylix-vet:", err)
		return 1
	}
	diags, err := ld.Run(analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kylix-vet:", err)
		return 1
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(toJSONDiags(diags)); err != nil {
			fmt.Fprintln(os.Stderr, "kylix-vet:", err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "kylix-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selfHash fingerprints the running binary so go vet's build cache
// invalidates when the tool changes.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}
