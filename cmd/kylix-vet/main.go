// Command kylix-vet runs the project's invariant analyzers (see
// internal/analysis): hotpathalloc, lockobs, determinism and commcheck.
//
// Two modes:
//
//	kylix-vet [-checks=a,b] [packages...]     # standalone, defaults to ./...
//	go vet -vettool=$(command -v kylix-vet) ./...   # as a vet backend
//
// Standalone mode loads the whole dependency closure itself (via
// `go list -export -deps -json`) and analyzes every project package in
// dependency order, so cross-package hotpath call-graph facts work
// without a driver. In vettool mode cmd/go invokes the binary once per
// package with a *.cfg file; facts travel through go vet's vetx files,
// and results participate in the build cache keyed by this binary's
// content hash (the -V=full handshake).
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kylix/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The -V=full handshake must work regardless of other flags: cmd/go
	// probes it first and hashes the reply into the build cache key.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			fmt.Printf("kylix-vet version %s\n", selfHash())
			return 0
		}
		if a == "-flags" || a == "--flags" {
			// cmd/go asks which analyzer flags the tool supports; the
			// suite is configured by annotations, not flags.
			fmt.Println("[]")
			return 0
		}
	}

	fs := flag.NewFlagSet("kylix-vet", flag.ContinueOnError)
	checks := fs.String("checks", "", "comma-separated analyzer subset (default: all)")
	jsonOut := fs.Bool("json", false, "ignored; accepted for go vet compatibility")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	_ = *jsonOut
	analyzers, err := analysis.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kylix-vet:", err)
		return 2
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnit(rest[0], analyzers)
	}
	return runStandalone(rest, analyzers)
}

// runUnit is the go vet backend path: analyze one package unit, print
// findings to stderr, exit 2 when there are any (the unitchecker
// convention cmd/go treats as "vet failed").
func runUnit(cfgFile string, analyzers []*analysis.Analyzer) int {
	diags, err := analysis.RunUnit(cfgFile, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kylix-vet:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// runStandalone loads the patterns (default ./...) and analyzes every
// matched project package.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer) int {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "kylix-vet:", err)
		return 1
	}
	ld, err := analysis.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kylix-vet:", err)
		return 1
	}
	diags, err := ld.Run(analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kylix-vet:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "kylix-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selfHash fingerprints the running binary so go vet's build cache
// invalidates when the tool changes.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}
