package memnet

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"kylix/internal/comm"
	"kylix/internal/trace"
)

func TestPointToPoint(t *testing.T) {
	n := New(2)
	defer n.Close()
	a, b := n.Endpoint(0), n.Endpoint(1)
	tag := comm.MakeTag(comm.KindApp, 0, 0)
	if err := a.Send(1, tag, &comm.Bytes{Data: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	p, err := b.Recv(0, tag)
	if err != nil {
		t.Fatal(err)
	}
	if string(p.(*comm.Bytes).Data) != "hi" {
		t.Fatal("wrong data")
	}
}

func TestSelfSend(t *testing.T) {
	n := New(1)
	defer n.Close()
	ep := n.Endpoint(0)
	tag := comm.MakeTag(comm.KindApp, 0, 1)
	if err := ep.Send(0, tag, &comm.Floats{Vals: []float32{7}}); err != nil {
		t.Fatal(err)
	}
	p, err := ep.Recv(0, tag)
	if err != nil || p.(*comm.Floats).Vals[0] != 7 {
		t.Fatalf("self send broken: %v %v", p, err)
	}
}

func TestSendBoundsChecked(t *testing.T) {
	n := New(2)
	defer n.Close()
	if err := n.Endpoint(0).Send(5, comm.MakeTag(comm.KindApp, 0, 0), &comm.Bytes{}); err == nil {
		t.Fatal("want error for out-of-range rank")
	}
}

func TestEndpointPanicsOnBadRank(t *testing.T) {
	n := New(2)
	defer n.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	n.Endpoint(2)
}

func TestKillDropsTraffic(t *testing.T) {
	n := New(3, WithRecvTimeout(100*time.Millisecond))
	defer n.Close()
	n.Kill(1)
	if !n.Dead(1) || n.Dead(0) {
		t.Fatal("liveness flags wrong")
	}
	tag := comm.MakeTag(comm.KindApp, 0, 0)
	// Sending into a dead machine succeeds silently.
	if err := n.Endpoint(0).Send(1, tag, &comm.Bytes{}); err != nil {
		t.Fatal(err)
	}
	// A dead machine cannot send.
	if err := n.Endpoint(1).Send(0, tag, &comm.Bytes{}); !errors.Is(err, comm.ErrClosed) {
		t.Fatalf("dead send err = %v", err)
	}
	// Receives from it time out.
	if _, err := n.Endpoint(2).Recv(1, tag); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("recv err = %v", err)
	}
}

func TestRecorderSeesTrafficIncludingDead(t *testing.T) {
	col := trace.NewCollector(3)
	n := New(3, WithRecorder(col))
	defer n.Close()
	n.Kill(2)
	tag := comm.MakeTag(comm.KindReduce, 1, 0)
	payload := &comm.Floats{Vals: make([]float32, 10)}
	if err := n.Endpoint(0).Send(1, tag, payload); err != nil {
		t.Fatal(err)
	}
	if err := n.Endpoint(0).Send(2, tag, payload); err != nil {
		t.Fatal(err)
	}
	layers := col.KindLayers(comm.KindReduce)
	if len(layers) != 1 || layers[0].Msgs != 2 {
		t.Fatalf("recorder missed dead-target send: %+v", layers)
	}
	if layers[0].Bytes != 2*int64(payload.WireSize()) {
		t.Fatalf("bytes = %d", layers[0].Bytes)
	}
}

func TestRunAllRanks(t *testing.T) {
	n := New(4)
	defer n.Close()
	var count atomic.Int32
	err := Run(n, func(ep comm.Endpoint) error {
		count.Add(1)
		if ep.Size() != 4 {
			t.Error("wrong size")
		}
		// Ring exchange: everyone sends right, receives from left.
		tag := comm.MakeTag(comm.KindApp, 0, 9)
		if err := ep.Send((ep.Rank()+1)%4, tag, &comm.Floats{Vals: []float32{float32(ep.Rank())}}); err != nil {
			return err
		}
		p, err := ep.Recv((ep.Rank()+3)%4, tag)
		if err != nil {
			return err
		}
		if int(p.(*comm.Floats).Vals[0]) != (ep.Rank()+3)%4 {
			t.Errorf("rank %d got wrong neighbour value", ep.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 4 {
		t.Fatalf("ran %d ranks", count.Load())
	}
}

func TestRunPropagatesError(t *testing.T) {
	n := New(2)
	defer n.Close()
	sentinel := errors.New("boom")
	err := Run(n, func(ep comm.Endpoint) error {
		if ep.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	n := New(2)
	defer n.Close()
	err := Run(n, func(ep comm.Endpoint) error {
		if ep.Rank() == 0 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestRunSkipsDeadRanks(t *testing.T) {
	n := New(3)
	defer n.Close()
	n.Kill(1)
	var count atomic.Int32
	if err := Run(n, func(ep comm.Endpoint) error {
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 2 {
		t.Fatalf("ran %d ranks, want 2", count.Load())
	}
}

func TestRunSubsetOfRanks(t *testing.T) {
	n := New(4)
	defer n.Close()
	var mask atomic.Int32
	if err := Run(n, func(ep comm.Endpoint) error {
		mask.Add(int32(1 << ep.Rank()))
		return nil
	}, 1, 3); err != nil {
		t.Fatal(err)
	}
	if mask.Load() != 0b1010 {
		t.Fatalf("ran mask %b", mask.Load())
	}
}

func TestRecvAnyRacingAcrossEndpoints(t *testing.T) {
	n := New(3)
	defer n.Close()
	tag := comm.MakeTag(comm.KindGather, 2, 0)
	if err := n.Endpoint(1).Send(2, tag, &comm.Bytes{Data: []byte("fast")}); err != nil {
		t.Fatal(err)
	}
	from, p, err := n.Endpoint(2).RecvAny([]int{0, 1}, tag)
	if err != nil {
		t.Fatal(err)
	}
	if from != 1 || string(p.(*comm.Bytes).Data) != "fast" {
		t.Fatalf("race won by %d", from)
	}
}
