// Package memnet is the in-process cluster transport: every machine is a
// goroutine with a comm.Mailbox, sends are direct enqueues, and machine
// failure is injectable. It moves the same payloads and records the same
// wire sizes as the TCP transport, so protocol behaviour and traffic
// traces are identical across the two — only wall-clock differs, which
// the netsim model supplies.
package memnet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kylix/internal/comm"
)

// Option configures a Network.
type Option func(*Network)

// WithRecorder attaches a traffic recorder (e.g. a trace.Collector).
func WithRecorder(r comm.Recorder) Option {
	return func(n *Network) { n.rec = r }
}

// WithRecvTimeout bounds every blocking receive; 0 waits forever. The
// default of 30s turns protocol deadlocks (e.g. an unreplicated network
// with a dead node) into errors instead of hangs.
func WithRecvTimeout(d time.Duration) Option {
	return func(n *Network) { n.timeout = d }
}

// WithRecvObserver installs a per-rank receive observer factory (the
// observability layer's receive hook); the factory may return nil for
// ranks that should not be observed.
func WithRecvObserver(f func(rank int) comm.RecvObserver) Option {
	return func(n *Network) { n.recvObs = f }
}

// Network is an m-machine in-process cluster.
type Network struct {
	size    int
	boxes   []*comm.Mailbox
	dead    []atomic.Bool
	rec     comm.Recorder
	rawRec  comm.RawRecorder // non-nil when rec also takes raw sizes
	record  bool             // false when rec is a NopRecorder
	recvObs func(rank int) comm.RecvObserver
	timeout time.Duration
}

// New creates a network of m machines.
func New(m int, opts ...Option) *Network {
	n := &Network{size: m, rec: comm.NopRecorder{}, timeout: 30 * time.Second}
	for _, o := range opts {
		o(n)
	}
	// Payload encoding (WireSize) exists purely for accounting on this
	// zero-copy transport, so skip it entirely when nobody is listening —
	// compressed config payloads would otherwise run their codec once per
	// send in untraced runs.
	if _, nop := n.rec.(comm.NopRecorder); !nop {
		n.record = true
		n.rawRec, _ = n.rec.(comm.RawRecorder)
	}
	n.boxes = make([]*comm.Mailbox, m)
	n.dead = make([]atomic.Bool, m)
	for i := range n.boxes {
		n.boxes[i] = comm.NewMailbox(n.timeout)
		if n.recvObs != nil {
			if ro := n.recvObs(i); ro != nil {
				n.boxes[i].SetRecvObserver(ro)
			}
		}
	}
	return n
}

// Size returns the machine count.
func (n *Network) Size() int { return n.size }

// Kill marks a machine dead: its inbound messages are dropped and its
// endpoint operations fail. Used by the fault-tolerance experiments.
// Kill is safe at any point, including while the victim is mid-round:
// its blocked receives fail with ErrClosed immediately (crash-stop),
// peers' sends to it become silent drops, and Run treats the victim's
// resulting transport errors as the injected failure rather than a
// program error.
func (n *Network) Kill(rank int) {
	n.dead[rank].Store(true)
	n.boxes[rank].Close()
}

// Dead reports whether a machine has been killed.
func (n *Network) Dead(rank int) bool { return n.dead[rank].Load() }

// Close shuts down every mailbox.
func (n *Network) Close() {
	for _, b := range n.boxes {
		b.Close()
	}
}

// CloseStream tears down one stream's namespace on every machine:
// queued messages dropped, pending-sender index purged, late
// deliveries discarded, blocked receives failed with ErrStreamClosed.
// The network itself stays live for every other stream.
func (n *Network) CloseStream(id comm.StreamID) {
	for _, b := range n.boxes {
		b.CloseStream(id)
	}
}

// StreamPending sums one stream's queued, undelivered messages across
// all machines (tests and leak diagnostics).
func (n *Network) StreamPending(id comm.StreamID) int {
	total := 0
	for _, b := range n.boxes {
		total += b.StreamPending(id)
	}
	return total
}

// IndexedTags sums the live pending-sender index entries across all
// machines (tests and leak diagnostics).
func (n *Network) IndexedTags() int {
	total := 0
	for _, b := range n.boxes {
		total += b.IndexedTags()
	}
	return total
}

// Endpoint returns machine rank's endpoint.
func (n *Network) Endpoint(rank int) comm.Endpoint {
	if rank < 0 || rank >= n.size {
		panic(fmt.Sprintf("memnet: rank %d out of [0,%d)", rank, n.size))
	}
	return &endpoint{net: n, rank: rank}
}

type endpoint struct {
	net  *Network
	rank int
}

func (e *endpoint) Rank() int { return e.rank }
func (e *endpoint) Size() int { return e.net.size }

func (e *endpoint) Send(to int, tag comm.Tag, p comm.Payload) error {
	if to < 0 || to >= e.net.size {
		return fmt.Errorf("memnet: send to rank %d out of [0,%d)", to, e.net.size)
	}
	if e.net.dead[e.rank].Load() {
		return comm.ErrClosed
	}
	// Charge the sender's NIC whether or not the target is alive.
	if e.net.record {
		if e.net.rawRec != nil {
			e.net.rawRec.RecordRaw(e.rank, to, tag, p.WireSize(), comm.RawWireSize(p))
		} else {
			e.net.rec.Record(e.rank, to, tag, p.WireSize())
		}
	}
	if e.net.dead[to].Load() {
		return nil // silently dropped, like a packet into a dead host
	}
	e.net.boxes[to].Deliver(e.rank, tag, p)
	return nil
}

func (e *endpoint) Recv(from int, tag comm.Tag) (comm.Payload, error) {
	return e.net.boxes[e.rank].Recv(from, tag)
}

func (e *endpoint) RecvAny(froms []int, tag comm.Tag) (int, comm.Payload, error) {
	return e.net.boxes[e.rank].RecvAny(froms, tag)
}

func (e *endpoint) RecvGroup(groups [][]int, tag comm.Tag) (int, comm.Payload, error) {
	return e.net.boxes[e.rank].RecvGroup(groups, tag)
}

func (e *endpoint) Close() error {
	e.net.boxes[e.rank].Close()
	return nil
}

// Run executes fn concurrently on every live machine of the network (or
// on the given subset of ranks) and returns the combined errors. Panics
// inside a machine are converted to errors so one broken rank cannot
// take down the test process silently.
//
//kylix:owned
func Run(n *Network, fn func(ep comm.Endpoint) error, ranks ...int) error {
	if len(ranks) == 0 {
		ranks = make([]int, n.size)
		for i := range ranks {
			ranks[i] = i
		}
	}
	errs := make([]error, len(ranks))
	var wg sync.WaitGroup
	for i, r := range ranks {
		if n.Dead(r) {
			continue
		}
		wg.Add(1)
		go func(i, rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[i] = fmt.Errorf("memnet: rank %d panicked: %v", rank, rec)
				}
			}()
			errs[i] = fn(n.Endpoint(rank))
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			// A machine killed mid-round fails its own in-flight
			// operations with ErrClosed (or times out waiting on traffic
			// that will never come). That is the injected crash-stop, not
			// a program error: survivors' results are what the run is
			// judged on.
			if n.Dead(ranks[i]) && (errors.Is(err, comm.ErrClosed) || errors.Is(err, comm.ErrTimeout)) {
				continue
			}
			return fmt.Errorf("rank %d: %w", ranks[i], err)
		}
	}
	return nil
}
