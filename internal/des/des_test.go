package des

import (
	"math"
	"math/rand"
	"testing"

	"kylix/internal/netsim"
	"kylix/internal/topo"
)

func testModel() netsim.Model {
	m := netsim.EC2()
	// Shrink the constants so message times are O(µs) and tests are
	// about structure, not absolute calibration.
	m.MsgOverheadSec = 1e-6
	m.LatencySec = 1e-6
	return m
}

func flatBytes(bf *topo.Butterfly, per float64) []float64 {
	out := make([]float64, bf.Layers())
	for i := range out {
		out[i] = per
	}
	return out
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(Config{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("accepted nil topology")
	}
	bf := topo.MustNew([]int{4})
	if _, err := Simulate(Config{Topology: bf, LayerBytes: []float64{1, 2}}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("accepted mismatched layer volumes")
	}
}

func TestDeterministicNetworkIsSymmetric(t *testing.T) {
	bf := topo.MustNew([]int{4, 2})
	cfg := Config{
		Topology: bf, LayerBytes: flatBytes(bf, 1<<16),
		Model: testModel(), Threads: 16,
	}
	res, err := Simulate(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// No jitter: machines finish within one NIC-serialization window of
	// each other (the member owning the last hash sub-range receives its
	// pieces last), so makespan sits just above the mean but nowhere
	// near a straggler blow-up.
	if res.MakespanSec < res.MeanFinishSec {
		t.Fatalf("makespan %g below mean %g", res.MakespanSec, res.MeanFinishSec)
	}
	if res.MakespanSec > 2*res.MeanFinishSec {
		t.Fatalf("deterministic spread too wide: makespan %g mean %g",
			res.MakespanSec, res.MeanFinishSec)
	}
	if len(res.LayerFinishSec) != 2 {
		t.Fatalf("layer finishes: %v", res.LayerFinishSec)
	}
	// Layers finish in order.
	if res.LayerFinishSec[1] <= res.LayerFinishSec[0] {
		t.Fatal("layer finish times not increasing")
	}
}

func TestGatherDoublesWork(t *testing.T) {
	bf := topo.MustNew([]int{4})
	base := Config{Topology: bf, LayerBytes: flatBytes(bf, 1<<16), Model: testModel(), Threads: 16}
	down, err := Simulate(base, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	full := base
	full.Gather = true
	both, err := Simulate(full, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if both.MakespanSec <= down.MakespanSec {
		t.Fatal("gather pass added no time")
	}
	if both.MakespanSec > 2.5*down.MakespanSec {
		t.Fatal("gather pass more than doubled+slack the round")
	}
}

func TestLayersAndFanInUnderJitter(t *testing.T) {
	// Structural effects in the latency-dominated regime:
	//  - deterministically, round time scales with layer count, so the
	//    6-layer binary butterfly pays ~2x the 3-layer optimal (the
	//    paper's argument against binary butterflies);
	//  - under moderate jitter the ordering persists;
	//  - heavy jitter punishes wide fan-in hardest: direct's 64-way
	//    receive barrier (max of 64 heavy-tailed draws) degrades more
	//    from sigma 0 -> 1 than the butterflies' narrow barriers.
	model := testModel()
	model.LatencySec = 1e-3
	mk := func(degrees []int, sigma float64) Config {
		bf := topo.MustNew(degrees)
		return Config{
			Topology: bf, LayerBytes: flatBytes(bf, 1024),
			Model: model, Threads: 16, LatencySigma: sigma,
		}
	}
	run := func(degrees []int, sigma float64) float64 {
		v, err := ExpectedMakespan(mk(degrees, sigma), 42, 200)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	optimal := []int{8, 4, 2}
	binary := []int{2, 2, 2, 2, 2, 2}
	direct := []int{64}

	if bin0, opt0 := run(binary, 0), run(optimal, 0); bin0 < 1.7*opt0 {
		t.Fatalf("deterministic: binary %g should pay ~2x optimal %g", bin0, opt0)
	}
	if bin5, opt5 := run(binary, 0.5), run(optimal, 0.5); bin5 <= opt5 {
		t.Fatalf("sigma 0.5: binary %g should stay slower than optimal %g", bin5, opt5)
	}
	directBlowup := run(direct, 1.0) / run(direct, 0)
	optimalBlowup := run(optimal, 1.0) / run(optimal, 0)
	if directBlowup <= optimalBlowup {
		t.Fatalf("direct's 64-way fan-in blowup %.1fx should exceed optimal's %.1fx",
			directBlowup, optimalBlowup)
	}
}

func TestRacingShortensStochasticRounds(t *testing.T) {
	bf := topo.MustNew([]int{8})
	model := testModel()
	model.LatencySec = 1e-3
	base := Config{
		Topology: bf, LayerBytes: flatBytes(bf, 1024),
		Model: model, Threads: 16, LatencySigma: 1.2,
	}
	plain, err := ExpectedMakespan(base, 7, 300)
	if err != nil {
		t.Fatal(err)
	}
	raced := base
	raced.Replication = 2
	fast, err := ExpectedMakespan(raced, 7, 300)
	if err != nil {
		t.Fatal(err)
	}
	if fast >= plain {
		t.Fatalf("racing did not shorten rounds: %g vs %g", fast, plain)
	}
	// On a deterministic network racing is a no-op.
	det := base
	det.LatencySigma = 0
	detPlain, _ := ExpectedMakespan(det, 7, 3)
	det.Replication = 2
	detRaced, _ := ExpectedMakespan(det, 7, 3)
	if math.Abs(detPlain-detRaced) > 1e-12 {
		t.Fatal("racing changed a deterministic network")
	}
}

func TestThreadsPipelineSends(t *testing.T) {
	bf := topo.MustNew([]int{16})
	model := testModel()
	model.MsgOverheadSec = 1e-4 // make per-message service dominate
	cfg := Config{Topology: bf, LayerBytes: flatBytes(bf, 1024), Model: model}
	cfg.Threads = 1
	t1, err := Simulate(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Threads = 8
	t8, err := Simulate(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if t8.MakespanSec >= t1.MakespanSec {
		t.Fatalf("threads did not pipeline sends: %g vs %g", t8.MakespanSec, t1.MakespanSec)
	}
}

func TestBiggerVolumesTakeLonger(t *testing.T) {
	bf := topo.MustNew([]int{4, 2})
	cfg := Config{Topology: bf, Model: testModel(), Threads: 16}
	cfg.LayerBytes = flatBytes(bf, 1<<14)
	small, err := Simulate(cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	cfg.LayerBytes = flatBytes(bf, 1<<22)
	big, err := Simulate(cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if big.MakespanSec <= small.MakespanSec {
		t.Fatal("volume had no effect")
	}
}
