// Package des is a discrete-event simulator of the Kylix protocol
// schedule. Where internal/netsim prices traffic statically (volume
// through a cost curve), des replays the *dependency structure* of a
// nested-butterfly round event by event: a machine can only send its
// layer-i pieces after finishing layer i-1, every message's service time
// is sampled from the cost model plus stochastic latency, a receive
// completes when the last (or, under replication racing, the first-copy-
// per-peer last) message lands, and the round's makespan is the slowest
// machine's finish time.
//
// This captures what the static estimate cannot: straggler
// amplification across layers (§VI-B's motivation for opportunistic
// messaging), the latency-variance benefit of §V-B packet racing with
// the real fan-in/fan-out pattern, and the way extra layers compound
// jitter — the effect the paper cites against binary butterflies.
package des

import (
	"fmt"
	"math"
	"math/rand"

	"kylix/internal/netsim"
	"kylix/internal/topo"
)

// Config parameterizes one simulated allreduce round.
type Config struct {
	// Topology is the butterfly to simulate.
	Topology *topo.Butterfly
	// LayerBytes[i] is the expected per-machine data volume (bytes)
	// held entering communication layer i+1 — e.g. Proposition 4.1
	// predictions or measured per-layer unions. Length must equal the
	// topology's layer count.
	LayerBytes []float64
	// Model prices message service times (overhead, copies, goodput).
	Model netsim.Model
	// Threads is the per-machine send/receive concurrency.
	Threads int
	// LatencySigma is the log-normal spread multiplying each message's
	// base latency (0 = deterministic network).
	LatencySigma float64
	// Replication duplicates every message s ways and races the copies
	// (s = 1 disables).
	Replication int
	// Gather simulates the upward pass too (a full allreduce round);
	// otherwise only the scatter-reduce is simulated.
	Gather bool
}

// Result reports a simulated round.
type Result struct {
	// MakespanSec is the completion time of the slowest machine.
	MakespanSec float64
	// MeanFinishSec is the average machine completion time.
	MeanFinishSec float64
	// LayerFinishSec[i] is the time by which every machine finished
	// communication layer i+1 of the downward pass.
	LayerFinishSec []float64
}

// Simulate runs one round. The rng drives latency sampling; fixed seeds
// give reproducible rounds. Machines are assumed compute-balanced (the
// hash partitioning guarantees it up to noise), so per-machine volumes
// use the expected LayerBytes.
func Simulate(cfg Config, rng *rand.Rand) (*Result, error) {
	bf := cfg.Topology
	if bf == nil {
		return nil, fmt.Errorf("des: nil topology")
	}
	if len(cfg.LayerBytes) != bf.Layers() {
		return nil, fmt.Errorf("des: %d layer volumes for %d layers", len(cfg.LayerBytes), bf.Layers())
	}
	s := cfg.Replication
	if s < 1 {
		s = 1
	}
	m := bf.M()

	// ready[k] is the earliest time machine k can start its next layer.
	ready := make([]float64, m)
	layerFinish := make([]float64, 0, bf.Layers())

	runLayer := func(layer int, bytesPerNode float64) {
		d := bf.Degree(layer)
		// arrival[k] collects, per receiving machine, the arrival time
		// of the piece from each of its d group members (first replica
		// copy wins).
		arrival := make([][]float64, m)
		for k := range arrival {
			arrival[k] = make([]float64, 0, d)
		}
		msgBytes := bytesPerNode / float64(d)
		for j := 0; j < m; j++ {
			group := bf.Group(j, layer)
			// Sender j emits its d pieces back to back. CPU work
			// (per-message overhead + copies) pipelines across t
			// threads; wire bytes serialize through the single NIC.
			cpu, wire := serviceTime(cfg, msgBytes, d)
			t := float64(effThreads(cfg))
			for q, member := range group {
				sendDone := ready[j] + cpu*math.Floor(float64(q)/t+1) + wire*float64(q+1)
				// Replicated copies race: the winner is the minimum of
				// s independent latency draws.
				best := math.Inf(1)
				for c := 0; c < s; c++ {
					lat := latency(cfg, rng)
					if v := sendDone + lat; v < best {
						best = v
					}
				}
				if member == j {
					best = sendDone // self pieces skip the wire
				}
				arrival[member] = append(arrival[member], best)
			}
		}
		// A machine finishes the layer when its last piece arrives.
		for k := 0; k < m; k++ {
			last := ready[k]
			for _, a := range arrival[k] {
				if a > last {
					last = a
				}
			}
			ready[k] = last
		}
		worst := 0.0
		for _, r := range ready {
			if r > worst {
				worst = r
			}
		}
		layerFinish = append(layerFinish, worst)
	}

	// Downward scatter-reduce.
	for layer := 1; layer <= bf.Layers(); layer++ {
		runLayer(layer, cfg.LayerBytes[layer-1])
	}
	// Upward allgather retraces the layers in reverse with (roughly) the
	// same per-layer volumes.
	if cfg.Gather {
		for layer := bf.Layers(); layer >= 1; layer-- {
			runLayer(layer, cfg.LayerBytes[layer-1])
		}
	}

	res := &Result{LayerFinishSec: layerFinish}
	sum := 0.0
	for _, r := range ready {
		if r > res.MakespanSec {
			res.MakespanSec = r
		}
		sum += r
	}
	res.MeanFinishSec = sum / float64(m)
	return res, nil
}

// serviceTime prices one message's sender-side work, split into the CPU
// part (per-message overhead + memory copies — pipelines across threads)
// and the wire part (size-dependent goodput stretched by the same
// fan-in contention the static estimator applies — serializes through
// the NIC regardless of thread count).
func serviceTime(cfg Config, msgBytes float64, degree int) (cpu, wire float64) {
	mdl := cfg.Model
	cpu = mdl.MsgOverheadSec
	if mdl.CopyBps > 0 {
		cpu += msgBytes / mdl.CopyBps
	}
	if msgBytes > 0 {
		wire = msgBytes / mdl.Goodput(msgBytes)
		wire *= 1 + mdl.IncastCoef*float64(degree-1)
	}
	return cpu, wire
}

// latency samples one message's one-way latency.
func latency(cfg Config, rng *rand.Rand) float64 {
	base := cfg.Model.LatencySec
	if cfg.LatencySigma == 0 {
		return base
	}
	return base * math.Exp(cfg.LatencySigma*rng.NormFloat64())
}

func effThreads(cfg Config) int {
	t := cfg.Threads
	if t < 1 {
		t = 1
	}
	if t > cfg.Model.Cores {
		t = cfg.Model.Cores
	}
	return t
}

// ExpectedMakespan averages Simulate over trials for stable comparisons.
func ExpectedMakespan(cfg Config, seed int64, trials int) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	total := 0.0
	for i := 0; i < trials; i++ {
		res, err := Simulate(cfg, rng)
		if err != nil {
			return 0, err
		}
		total += res.MakespanSec
	}
	return total / float64(trials), nil
}
