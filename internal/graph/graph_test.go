package graph

import (
	"math/rand"
	"testing"

	"kylix/internal/sparse"
)

func TestGenPowerLawBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := int64(10000)
	edges := GenPowerLaw(rng, n, 5000, 0.8, 1.0)
	if len(edges) != 5000 {
		t.Fatalf("edge count %d", len(edges))
	}
	for _, e := range edges {
		if e.Src < 0 || int64(e.Src) >= n || e.Dst < 0 || int64(e.Dst) >= n {
			t.Fatalf("edge out of range: %+v", e)
		}
	}
}

func TestGenPowerLawSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := int64(10000)
	edges := GenPowerLaw(rng, n, 20000, 1.0, 1.0)
	deg := OutDegrees(n, edges)
	// A power-law graph has a few very-high-degree vertices.
	var maxDeg int32
	nonzero := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
		if d > 0 {
			nonzero++
		}
	}
	avg := float64(len(edges)) / float64(nonzero)
	if float64(maxDeg) < 10*avg {
		t.Errorf("max degree %d not power-law-ish vs avg %.1f", maxDeg, avg)
	}
}

func TestVertexOfRankBijectiveEnough(t *testing.T) {
	// Distinct ranks map to mostly distinct vertices (the mix is a hash
	// reduce; collisions must be rare).
	n := int64(100000)
	seen := map[int32]bool{}
	coll := 0
	for r := int64(1); r <= 10000; r++ {
		v := vertexOfRank(r, n)
		if seen[v] {
			coll++
		}
		seen[v] = true
	}
	if coll > 600 { // ~binomial expectation for 10k draws into 100k bins
		t.Errorf("%d collisions in 10000 draws", coll)
	}
}

func TestPartitionEdgesCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	edges := GenPowerLaw(rng, 1000, 2000, 1, 1)
	parts := PartitionEdges(rng, edges, 7)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != len(edges) {
		t.Fatalf("partition lost edges: %d of %d", total, len(edges))
	}
	// Roughly balanced.
	for i, p := range parts {
		if len(p) < len(edges)/7/2 || len(p) > len(edges)/7*2 {
			t.Errorf("partition %d badly unbalanced: %d", i, len(p))
		}
	}
}

func TestBuildShardPositions(t *testing.T) {
	edges := []Edge{{1, 5}, {2, 5}, {1, 7}}
	s, err := BuildShard(edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.In) != 2 || len(s.Out) != 2 {
		t.Fatalf("in=%d out=%d", len(s.In), len(s.Out))
	}
	for e, edge := range edges {
		if s.In[s.SrcPos[e]].Index() != edge.Src {
			t.Fatalf("edge %d source position wrong", e)
		}
		if s.Out[s.DstPos[e]].Index() != edge.Dst {
			t.Fatalf("edge %d dest position wrong", e)
		}
		if s.W[e] != 1 {
			t.Fatal("default weight not 1")
		}
	}
	if s.NNZ() != 3 {
		t.Fatal("NNZ wrong")
	}
}

func TestBuildShardWeightMismatch(t *testing.T) {
	if _, err := BuildShard([]Edge{{1, 2}}, []float32{1, 2}); err == nil {
		t.Fatal("accepted weight length mismatch")
	}
}

func TestShardMultiply(t *testing.T) {
	edges := []Edge{{0, 1}, {2, 1}, {0, 3}}
	s, err := BuildShard(edges, []float32{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, len(s.In))
	for i, k := range s.In {
		x[i] = float32(k.Index() + 1) // x[vertex v] = v+1
	}
	y := make([]float32, len(s.Out))
	if err := s.Multiply(x, y); err != nil {
		t.Fatal(err)
	}
	// y[1] = 2*x[0] + 3*x[2] = 2*1+3*3 = 11; y[3] = 4*x[0] = 4.
	want := map[int32]float32{1: 11, 3: 4}
	for i, k := range s.Out {
		if y[i] != want[k.Index()] {
			t.Fatalf("y[%d] = %f, want %f", k.Index(), y[i], want[k.Index()])
		}
	}
	if err := s.Multiply(x[:1], y); err == nil {
		t.Fatal("accepted short x")
	}
}

func TestShardMultiplyMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := int64(200)
	edges := GenPowerLaw(rng, n, 1000, 1, 1)
	w := make([]float32, len(edges))
	for i := range w {
		w[i] = rng.Float32()
	}
	s, err := BuildShard(edges, w)
	if err != nil {
		t.Fatal(err)
	}
	csr := NewCSR(int32(n), edges, w)

	xDense := make([]float32, n)
	for i := range xDense {
		xDense[i] = rng.Float32()
	}
	yDense := make([]float32, n)
	csr.Multiply(xDense, yDense)

	x := make([]float32, len(s.In))
	for i, k := range s.In {
		x[i] = xDense[k.Index()]
	}
	y := make([]float32, len(s.Out))
	if err := s.Multiply(x, y); err != nil {
		t.Fatal(err)
	}
	for i, k := range s.Out {
		if diff := y[i] - yDense[k.Index()]; diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("vertex %d: shard %f vs csr %f", k.Index(), y[i], yDense[k.Index()])
		}
	}
}

func TestPageRankWeights(t *testing.T) {
	edges := []Edge{{0, 1}, {0, 2}, {1, 2}}
	deg := OutDegrees(3, edges)
	w := PageRankWeights(edges, deg)
	if w[0] != 0.5 || w[1] != 0.5 || w[2] != 1 {
		t.Fatalf("weights = %v", w)
	}
}

func TestCSRDegrees(t *testing.T) {
	csr := NewCSR(4, []Edge{{0, 1}, {2, 1}, {3, 0}}, nil)
	deg := csr.Degrees()
	if deg[1] != 2 || deg[0] != 1 || deg[2] != 0 {
		t.Fatalf("degrees = %v", deg)
	}
}

func TestDensityOfPartition(t *testing.T) {
	// One partition touching half the vertices.
	parts := [][]Edge{{{0, 1}, {2, 3}}}
	d := DensityOfPartition(8, parts)
	if d != 0.5 {
		t.Fatalf("density = %f, want 0.5", d)
	}
	if DensityOfPartition(8, nil) != 0 {
		t.Fatal("empty partition density should be 0")
	}
}

func TestDensityShrinksWithMoreParts(t *testing.T) {
	// More partitions -> sparser per-partition vertex sets: the effect
	// that makes Kylix's lower layers cheap.
	rng := rand.New(rand.NewSource(5))
	n := int64(5000)
	edges := GenPowerLaw(rng, n, 40000, 0.8, 0.8)
	d4 := DensityOfPartition(n, PartitionEdges(rng, edges, 4))
	d64 := DensityOfPartition(n, PartitionEdges(rng, edges, 64))
	if d64 >= d4 {
		t.Fatalf("density did not shrink: 4-way %f vs 64-way %f", d4, d64)
	}
}

func TestSortEdges(t *testing.T) {
	e := []Edge{{2, 1}, {1, 9}, {1, 2}}
	SortEdges(e)
	if e[0] != (Edge{1, 2}) || e[2] != (Edge{2, 1}) {
		t.Fatalf("sorted = %v", e)
	}
}

func TestShardSetsAreSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	edges := GenPowerLaw(rng, 500, 300, 1, 1)
	s, err := BuildShard(edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s.In.IsSorted() || !s.Out.IsSorted() {
		t.Fatal("shard sets must be sorted key sets")
	}
	_ = sparse.Set(s.In)
}
