// Package graph provides the distributed sparse-matrix substrate the
// evaluation workloads run on: power-law edge generation (the synthetic
// stand-ins for the Twitter-followers and Yahoo web graphs), random edge
// partitioning (§II-B: the partitioning scheme the paper uses, since
// greedy partitioning's precomputation dwarfs the runtime), and per-
// machine SpMV shards whose in-sets are their non-zero columns and
// out-sets their non-zero rows — exactly the sparse-allreduce interface
// of §I-A2.
package graph

import (
	"fmt"
	"math/rand"
	"sort"

	"kylix/internal/powerlaw"
	"kylix/internal/sparse"
)

// Edge is one directed edge src -> dst.
type Edge struct {
	Src, Dst int32
}

// GenPowerLaw draws nnz directed edges over n vertices with Zipf-like
// endpoint distributions: source ranks follow alphaOut, destination
// ranks alphaIn. Vertex ids are a fixed pseudorandom permutation of the
// rank order so that "hot" vertices are spread across the id space as
// in real graph crawls. Duplicate edges are kept (they model multi-
// interactions and only change weights).
func GenPowerLaw(rng *rand.Rand, n int64, nnz int, alphaOut, alphaIn float64) []Edge {
	edges := make([]Edge, nnz)
	for i := range edges {
		src := vertexOfRank(powerlaw.ZipfRank(rng, n, alphaOut), n)
		dst := vertexOfRank(powerlaw.ZipfRank(rng, n, alphaIn), n)
		edges[i] = Edge{Src: src, Dst: dst}
	}
	return edges
}

// vertexOfRank maps a 1-based popularity rank to a vertex id through a
// cheap measure-preserving mix (an affine permutation mod n).
func vertexOfRank(rank, n int64) int32 {
	// 0x9E3779B1 is coprime with any n not divisible by it; to be safe
	// for every n use a multiplier forced odd and re-mod. An affine map
	// with odd multiplier is a bijection mod 2^k only; for general n we
	// accept a tiny non-uniformity by hashing then reducing.
	h := uint64(rank-1) * 0x9E3779B97F4A7C15
	return int32((h ^ h>>31) % uint64(n))
}

// PartitionEdges distributes edges uniformly at random over m machines
// (the random edge partitioning of §II-B).
func PartitionEdges(rng *rand.Rand, edges []Edge, m int) [][]Edge {
	parts := make([][]Edge, m)
	for i := range parts {
		parts[i] = make([]Edge, 0, len(edges)/m+1)
	}
	for _, e := range edges {
		p := rng.Intn(m)
		parts[p] = append(parts[p], e)
	}
	return parts
}

// OutDegrees counts each vertex's out-degree across the full edge set
// (needed for PageRank's column normalization).
func OutDegrees(n int64, edges []Edge) []int32 {
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e.Src]++
	}
	return deg
}

// Shard is one machine's share of a distributed sparse matrix, stored as
// position-indexed triplets: In lists the distinct source vertices whose
// values the shard needs (its allreduce in-set), Out the distinct
// destination vertices it produces (its out-set), and each local edge is
// (position in In, position in Out, weight).
type Shard struct {
	// In is the sorted key set of distinct sources (non-zero columns).
	In sparse.Set
	// Out is the sorted key set of distinct destinations (non-zero rows).
	Out sparse.Set
	// SrcPos/DstPos/W are the local edges in triplet form.
	SrcPos []int32
	DstPos []int32
	W      []float32
}

// BuildShard converts an edge list (with optional per-edge weights; nil
// means weight 1) into a Shard.
func BuildShard(edges []Edge, weights []float32) (*Shard, error) {
	if weights != nil && len(weights) != len(edges) {
		return nil, fmt.Errorf("graph: %d edges but %d weights", len(edges), len(weights))
	}
	srcIdx := make([]int32, len(edges))
	dstIdx := make([]int32, len(edges))
	for i, e := range edges {
		srcIdx[i], dstIdx[i] = e.Src, e.Dst
	}
	in, srcPerm, err := sparse.NewSet(srcIdx)
	if err != nil {
		return nil, err
	}
	out, dstPerm, err := sparse.NewSet(dstIdx)
	if err != nil {
		return nil, err
	}
	s := &Shard{In: in, Out: out, SrcPos: srcPerm, DstPos: dstPerm}
	if weights == nil {
		s.W = make([]float32, len(edges))
		for i := range s.W {
			s.W[i] = 1
		}
	} else {
		s.W = append([]float32(nil), weights...)
	}
	return s, nil
}

// NNZ returns the shard's local edge count.
func (s *Shard) NNZ() int { return len(s.W) }

// Multiply computes the local sparse product y = X_i * x: x holds one
// value per In key, y (zeroed by this call) receives one value per Out
// key. This is the compute half of a PageRank iteration; the allreduce
// sums the per-shard y's and routes each machine its In values back.
func (s *Shard) Multiply(x, y []float32) error {
	if len(x) != len(s.In) || len(y) != len(s.Out) {
		return fmt.Errorf("graph: Multiply got |x|=%d |y|=%d, want %d and %d",
			len(x), len(y), len(s.In), len(s.Out))
	}
	for i := range y {
		y[i] = 0
	}
	for e := range s.W {
		y[s.DstPos[e]] += s.W[e] * x[s.SrcPos[e]]
	}
	return nil
}

// PageRankWeights returns per-edge weights 1/outdeg(src) for a shard's
// edge list, given global out-degrees.
func PageRankWeights(edges []Edge, outDeg []int32) []float32 {
	w := make([]float32, len(edges))
	for i, e := range edges {
		if d := outDeg[e.Src]; d > 0 {
			w[i] = 1 / float32(d)
		}
	}
	return w
}

// CSR is a compressed-sparse-row adjacency matrix, used by the
// sequential reference implementations the distributed apps are tested
// against and by the MapReduce baseline.
type CSR struct {
	N      int32
	RowPtr []int64
	Col    []int32
	W      []float32
}

// NewCSR builds a CSR from edges grouped by destination row: row v
// lists the sources contributing to v (i.e. the transpose orientation
// used by y[dst] += w * x[src]).
func NewCSR(n int32, edges []Edge, weights []float32) *CSR {
	counts := make([]int64, n+1)
	for _, e := range edges {
		counts[e.Dst+1]++
	}
	for i := int32(0); i < n; i++ {
		counts[i+1] += counts[i]
	}
	col := make([]int32, len(edges))
	w := make([]float32, len(edges))
	next := append([]int64(nil), counts[:n]...)
	for i, e := range edges {
		p := next[e.Dst]
		next[e.Dst]++
		col[p] = e.Src
		if weights != nil {
			w[p] = weights[i]
		} else {
			w[p] = 1
		}
	}
	return &CSR{N: n, RowPtr: counts, Col: col, W: w}
}

// Multiply computes y = A x densely: y[v] = sum over stored (v, u, w) of
// w * x[u].
func (a *CSR) Multiply(x, y []float32) {
	for v := int32(0); v < a.N; v++ {
		var sum float32
		for p := a.RowPtr[v]; p < a.RowPtr[v+1]; p++ {
			sum += a.W[p] * x[a.Col[p]]
		}
		y[v] = sum
	}
}

// Degrees returns the per-row stored-entry counts (in-degrees in the
// transpose orientation).
func (a *CSR) Degrees() []int32 {
	deg := make([]int32, a.N)
	for v := int32(0); v < a.N; v++ {
		deg[v] = int32(a.RowPtr[v+1] - a.RowPtr[v])
	}
	return deg
}

// DensityOfPartition measures the average fraction of the n vertices
// that appear (as source or destination) in each partition — the
// quantity the paper reports as 0.21 (Twitter, 64-way) and 0.035
// (Yahoo, 64-way) and the input to the design workflow.
func DensityOfPartition(n int64, parts [][]Edge) float64 {
	if len(parts) == 0 {
		return 0
	}
	total := 0.0
	for _, part := range parts {
		seen := make(map[int32]struct{}, len(part))
		for _, e := range part {
			seen[e.Src] = struct{}{}
			seen[e.Dst] = struct{}{}
		}
		total += float64(len(seen)) / float64(n)
	}
	return total / float64(len(parts))
}

// SortEdges orders edges by (src, dst); used by tests for deterministic
// comparison.
func SortEdges(edges []Edge) {
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].Src != edges[b].Src {
			return edges[a].Src < edges[b].Src
		}
		return edges[a].Dst < edges[b].Dst
	})
}
