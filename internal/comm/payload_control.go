package comm

import (
	"encoding/binary"
	"fmt"
)

// wireControl is the discriminator of the membership control payload.
// It extends the 1-11 range assigned in payload.go / payload_config.go.
const wireControl = 12

// Control is the membership control plane's gossip message: every field
// is epoch-stamped so receivers can order states without a clock. One
// message type carries heartbeats, committed-epoch anti-entropy, epoch
// proposals and proposal acknowledgements at once — the protocol is
// convergent under drops, duplicates and reorder, so no field needs
// reliable delivery.
//
// Interpretation of the fields (the state machine lives in
// internal/membership; comm only defines the wire shape):
//
//   - Epoch/Leader/Members/Degrees describe the sender's committed
//     epoch record. A receiver whose own committed epoch is newer
//     rejects the message as stale (and answers with its state).
//   - PropEpoch != 0 piggybacks the sender's pending proposal for the
//     next epoch.
//   - Ack != 0 endorses the proposal whose record digest it names.
//   - Clock/Echo implement heartbeat RTT measurement: each side stamps
//     its local nanos into Clock and echoes the peer's last Clock back.
type Control struct {
	// Op is the membership-defined operation code (opState etc.).
	Op uint8
	// Epoch is the sender's committed epoch number.
	Epoch uint64
	// Leader is the rank that committed the epoch (ties at equal Epoch
	// resolve toward the lower leader).
	Leader int32
	// Members is the committed member set, sorted physical ranks.
	Members []int32
	// Degrees is the committed epoch's butterfly degree vector.
	Degrees []int32
	// PropEpoch is the pending proposal's target epoch (0 = none).
	PropEpoch uint64
	// PropLeader is the proposer's rank.
	PropLeader int32
	// PropMembers is the proposed member set.
	PropMembers []int32
	// PropDegrees is the proposed degree vector.
	PropDegrees []int32
	// Ack names (by record digest) the proposal the sender endorses
	// (0 = none).
	Ack uint64
	// Clock is the sender's local monotonic nanos at send time.
	Clock int64
	// Echo returns the receiver's last observed Clock (0 = none), from
	// which the receiver derives a heartbeat round-trip time.
	Echo int64
}

// StalerThan reports whether the message's committed epoch is strictly
// older than the given epoch — the stale-epoch rejection predicate.
func (p *Control) StalerThan(epoch uint64) bool { return p.Epoch < epoch }

// Clone implements Payload.
func (p *Control) Clone() Payload {
	q := *p
	q.Members = append([]int32(nil), p.Members...)
	q.Degrees = append([]int32(nil), p.Degrees...)
	q.PropMembers = append([]int32(nil), p.PropMembers...)
	q.PropDegrees = append([]int32(nil), p.PropDegrees...)
	return &q
}

// WireSize implements Payload.
func (p *Control) WireSize() int {
	return 1 + 1 + 8 + 4 + // disc, op, epoch, leader
		4 + 4*len(p.Members) +
		4 + 4*len(p.Degrees) +
		8 + 4 + // prop epoch, prop leader
		4 + 4*len(p.PropMembers) +
		4 + 4*len(p.PropDegrees) +
		8 + 8 + 8 // ack, clock, echo
}

func appendInt32s(buf []byte, vs []int32) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(vs)))
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	return buf
}

// AppendTo implements Payload.
func (p *Control) AppendTo(buf []byte) []byte {
	buf = append(buf, wireControl, p.Op)
	buf = binary.LittleEndian.AppendUint64(buf, p.Epoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Leader))
	buf = appendInt32s(buf, p.Members)
	buf = appendInt32s(buf, p.Degrees)
	buf = binary.LittleEndian.AppendUint64(buf, p.PropEpoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.PropLeader))
	buf = appendInt32s(buf, p.PropMembers)
	buf = appendInt32s(buf, p.PropDegrees)
	buf = binary.LittleEndian.AppendUint64(buf, p.Ack)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Clock))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Echo))
	return buf
}

// decodeControlPayload parses the bytes after the wireControl
// discriminator.
func decodeControlPayload(buf []byte) (Payload, error) {
	readU32 := func() (uint32, error) {
		if len(buf) < 4 {
			return 0, fmt.Errorf("comm: truncated control payload")
		}
		v := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		return v, nil
	}
	readU64 := func() (uint64, error) {
		if len(buf) < 8 {
			return 0, fmt.Errorf("comm: truncated control payload")
		}
		v := binary.LittleEndian.Uint64(buf)
		buf = buf[8:]
		return v, nil
	}
	readInt32s := func() ([]int32, error) {
		n, err := readU32()
		if err != nil {
			return nil, err
		}
		if len(buf) < int(n)*4 {
			return nil, fmt.Errorf("comm: truncated control payload")
		}
		if n == 0 {
			return nil, nil
		}
		vs := make([]int32, n)
		for i := range vs {
			vs[i] = int32(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		buf = buf[n*4:]
		return vs, nil
	}
	if len(buf) < 1 {
		return nil, fmt.Errorf("comm: truncated control payload")
	}
	c := &Control{Op: buf[0]}
	buf = buf[1:]
	var err error
	if c.Epoch, err = readU64(); err != nil {
		return nil, err
	}
	leader, err := readU32()
	if err != nil {
		return nil, err
	}
	c.Leader = int32(leader)
	if c.Members, err = readInt32s(); err != nil {
		return nil, err
	}
	if c.Degrees, err = readInt32s(); err != nil {
		return nil, err
	}
	if c.PropEpoch, err = readU64(); err != nil {
		return nil, err
	}
	propLeader, err := readU32()
	if err != nil {
		return nil, err
	}
	c.PropLeader = int32(propLeader)
	if c.PropMembers, err = readInt32s(); err != nil {
		return nil, err
	}
	if c.PropDegrees, err = readInt32s(); err != nil {
		return nil, err
	}
	if c.Ack, err = readU64(); err != nil {
		return nil, err
	}
	clock, err := readU64()
	if err != nil {
		return nil, err
	}
	c.Clock = int64(clock)
	echo, err := readU64()
	if err != nil {
		return nil, err
	}
	c.Echo = int64(echo)
	return c, nil
}
