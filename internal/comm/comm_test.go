package comm

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"kylix/internal/sparse"
)

func TestTagPacking(t *testing.T) {
	for _, kind := range []Kind{KindConfig, KindReduce, KindGather, KindConfigReduce, KindApp} {
		for _, layer := range []int{0, 1, 7, 255} {
			for _, seq := range []uint32{0, 1, 1 << 30} {
				tag := MakeTag(kind, layer, seq)
				if tag.Kind() != kind || tag.Layer() != layer || tag.Seq() != seq {
					t.Fatalf("tag round trip failed: %v -> kind=%v layer=%d seq=%d",
						tag, tag.Kind(), tag.Layer(), tag.Seq())
				}
			}
		}
	}
}

func TestTagUnique(t *testing.T) {
	seen := map[Tag]bool{}
	for _, kind := range []Kind{KindConfig, KindReduce} {
		for layer := 0; layer < 4; layer++ {
			for seq := uint32(0); seq < 4; seq++ {
				tag := MakeTag(kind, layer, seq)
				if seen[tag] {
					t.Fatalf("duplicate tag %v", tag)
				}
				seen[tag] = true
			}
		}
	}
}

// TestMakeTagClampsBadLayer replaces the old panic contract: an
// out-of-range layer is clamped to the nearest encodable bound and
// counted in TagClamps, because once untrusted stream RPCs reach the
// comm layer a malformed request must not take down the daemon.
func TestMakeTagClampsBadLayer(t *testing.T) {
	before := TagClamps()
	if got := MakeTag(KindConfig, 256, 7); got.Layer() != 255 || got.Seq() != 7 {
		t.Fatalf("layer 256 clamped to %d, want 255", got.Layer())
	}
	if got := MakeTag(KindConfig, -3, 7); got.Layer() != 0 {
		t.Fatalf("layer -3 clamped to %d, want 0", got.Layer())
	}
	if d := TagClamps() - before; d != 2 {
		t.Fatalf("TagClamps advanced by %d, want 2", d)
	}
	// In-range layers are never counted.
	before = TagClamps()
	MakeTag(KindConfig, 255, 0)
	MakeStreamTag(3, KindReduce, 0, 0)
	if TagClamps() != before {
		t.Fatal("in-range layer counted as clamp")
	}
}

// TestCheckLayer pins the structured-error validation path used at
// trust boundaries (daemon RPCs) where clamping would mask bad input.
func TestCheckLayer(t *testing.T) {
	if err := CheckLayer(0); err != nil {
		t.Fatal(err)
	}
	if err := CheckLayer(255); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{-1, 256, 1 << 20} {
		err := CheckLayer(bad)
		var tre *TagRangeError
		if !errors.As(err, &tre) {
			t.Fatalf("CheckLayer(%d) = %v, want *TagRangeError", bad, err)
		}
		if tre.Field != "layer" || tre.Value != bad || tre.Max != 255 {
			t.Fatalf("error context = %+v", tre)
		}
		if tre.Error() == "" {
			t.Fatal("empty error string")
		}
	}
}

// TestStreamTagPacking round-trips the widened layout: kind, stream,
// layer and seq all extract to what was packed, across the full
// extremes of each field.
func TestStreamTagPacking(t *testing.T) {
	for _, stream := range []StreamID{0, 1, 255, 256, 65535} {
		for _, kind := range []Kind{KindConfig, KindReduce, KindControl} {
			for _, layer := range []int{0, 7, 255} {
				for _, seq := range []uint32{0, 1 << 24, ^uint32(0)} {
					tag := MakeStreamTag(stream, kind, layer, seq)
					if tag.Kind() != kind || tag.Stream() != stream ||
						tag.Layer() != layer || tag.Seq() != seq {
						t.Fatalf("round trip failed: kind=%v stream=%d layer=%d seq=%d -> %v/%d/%d/%d",
							kind, stream, layer, seq, tag.Kind(), tag.Stream(), tag.Layer(), tag.Seq())
					}
				}
			}
		}
	}
	// MakeTag mints into DefaultStream.
	if s := MakeTag(KindReduce, 1, 2).Stream(); s != DefaultStream {
		t.Fatalf("MakeTag stream = %d, want DefaultStream", s)
	}
}

// TestStreamTagUnique is the headline-bug regression: identical
// (kind, layer, seq) triples on different streams must be distinct
// tags, so concurrent Configs on one fabric cannot cross-deliver.
func TestStreamTagUnique(t *testing.T) {
	seen := map[Tag]bool{}
	for stream := StreamID(0); stream < 8; stream++ {
		for _, kind := range []Kind{KindConfig, KindReduce} {
			for layer := 0; layer < 4; layer++ {
				for seq := uint32(0); seq < 4; seq++ {
					tag := MakeStreamTag(stream, kind, layer, seq)
					if seen[tag] {
						t.Fatalf("duplicate tag %v across streams", tag)
					}
					seen[tag] = true
				}
			}
		}
	}
}

func TestStreamTagString(t *testing.T) {
	if s := MakeStreamTag(9, KindReduce, 2, 7).String(); s != "reduce/S9/L2/#7" {
		t.Fatalf("stream tag string = %q", s)
	}
	if s := MakeTag(KindReduce, 2, 7).String(); s != "reduce/L2/#7" {
		t.Fatalf("default-stream tag string = %q", s)
	}
}

func TestKindString(t *testing.T) {
	if KindConfig.String() != "config" || Kind(99).String() == "" {
		t.Error("Kind.String broken")
	}
	if MakeTag(KindReduce, 2, 7).String() == "" {
		t.Error("Tag.String broken")
	}
}

func roundTrip(t *testing.T, p Payload) Payload {
	t.Helper()
	buf := p.AppendTo(nil)
	if len(buf) != p.WireSize() {
		t.Fatalf("WireSize %d but encoded %d bytes", p.WireSize(), len(buf))
	}
	q, err := DecodePayload(buf)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestKeysPayloadRoundTrip(t *testing.T) {
	p := &Keys{Keys: sparse.MustNewSet([]int32{1, 5, 9})}
	q := roundTrip(t, p).(*Keys)
	if !q.Keys.Equal(p.Keys) {
		t.Fatal("keys mismatch")
	}
}

func TestFloatsPayloadRoundTrip(t *testing.T) {
	p := &Floats{Vals: []float32{1.5, -2.25, 0}}
	q := roundTrip(t, p).(*Floats)
	for i := range p.Vals {
		if q.Vals[i] != p.Vals[i] {
			t.Fatal("vals mismatch")
		}
	}
}

func TestKeysValsPayloadRoundTrip(t *testing.T) {
	p := &KeysVals{Keys: sparse.MustNewSet([]int32{2, 4}), Vals: []float32{3, 1, 4, 1}}
	q := roundTrip(t, p).(*KeysVals)
	if !q.Keys.Equal(p.Keys) || len(q.Vals) != 4 || q.Vals[2] != 4 {
		t.Fatal("keysvals mismatch")
	}
}

func TestBytesPayloadRoundTrip(t *testing.T) {
	p := &Bytes{Data: []byte("hello")}
	q := roundTrip(t, p).(*Bytes)
	if string(q.Data) != "hello" {
		t.Fatal("bytes mismatch")
	}
}

func TestEmptyPayloads(t *testing.T) {
	for _, p := range []Payload{&Keys{}, &Floats{}, &KeysVals{}, &Bytes{}, &InOut{}, &Combined{}, &Delta{}, &Delta{InSame: true, OutSame: true}, &Control{}, &StreamCtl{}} {
		roundTrip(t, p)
	}
}

func TestControlPayloadRoundTrip(t *testing.T) {
	p := &Control{
		Op:          3,
		Epoch:       42,
		Leader:      1,
		Members:     []int32{0, 1, 2, 5},
		Degrees:     []int32{2, 2},
		PropEpoch:   43,
		PropLeader:  2,
		PropMembers: []int32{0, 1, 2, 5, 7, 9},
		PropDegrees: []int32{3},
		Ack:         0xdeadbeefcafe,
		Clock:       123456789,
		Echo:        987654321,
	}
	q := roundTrip(t, p.Clone()).(*Control)
	if q.Op != p.Op || q.Epoch != p.Epoch || q.Leader != p.Leader ||
		q.PropEpoch != p.PropEpoch || q.PropLeader != p.PropLeader ||
		q.Ack != p.Ack || q.Clock != p.Clock || q.Echo != p.Echo {
		t.Fatalf("control scalar mismatch: %+v vs %+v", q, p)
	}
	for _, pair := range [][2][]int32{
		{q.Members, p.Members}, {q.Degrees, p.Degrees},
		{q.PropMembers, p.PropMembers}, {q.PropDegrees, p.PropDegrees},
	} {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("control slice length mismatch: %v vs %v", pair[0], pair[1])
		}
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("control slice mismatch: %v vs %v", pair[0], pair[1])
			}
		}
	}
	if !q.StalerThan(43) || q.StalerThan(42) {
		t.Fatal("StalerThan broken")
	}
	// Clone must not share slice memory with the original.
	c := p.Clone().(*Control)
	c.Members[0] = 99
	if p.Members[0] == 99 {
		t.Fatal("Clone shares Members memory")
	}
}

func TestStreamCtlPayloadRoundTrip(t *testing.T) {
	p := &StreamCtl{
		Op:     OpStreamReduce,
		Seq:    7,
		Stream: 514,
		Seed:   -42,
		N:      1 << 20,
		NNZ:    4096,
		Rounds: 3,
		Width:  4,
		Digest: 0xfeedfacecafebeef,
	}
	q := roundTrip(t, p).(*StreamCtl)
	if *q != *p {
		t.Fatalf("streamctl mismatch: %+v vs %+v", q, p)
	}
	if got := p.AppendTo(nil); len(got) != p.WireSize() {
		t.Fatalf("WireSize %d but encoded %d bytes", p.WireSize(), len(got))
	}
}

func TestDeltaPayloadRoundTrip(t *testing.T) {
	in := sparse.MustNewSet([]int32{1, 2, 3})
	p := &Delta{OutSame: true, In: in}
	q := roundTrip(t, p).(*Delta)
	if q.InSame || !q.OutSame || !q.In.Equal(in) || len(q.Out) != 0 {
		t.Fatalf("delta mismatch: %+v", q)
	}
	// The all-same marker is two bytes regardless of the sets it stands for.
	if n := (&Delta{InSame: true, OutSame: true}).WireSize(); n != 2 {
		t.Fatalf("all-same delta costs %d bytes, want 2", n)
	}
}

// TestCompressedWireSavings pins the headline property of the v2 config
// wire format: on an eighth-density index set (the Zipf workload regime
// of Figure 4), the compressed encoding is at most 1/3 of the raw
// 8-byte-per-key format.
func TestCompressedWireSavings(t *testing.T) {
	idx := make([]int32, 0, 4096)
	for i := int32(0); len(idx) < 4096; i += 8 {
		idx = append(idx, i)
	}
	set := sparse.MustNewSet(idx)
	p := &InOut{In: set, Out: set}
	wire, raw := p.WireSize(), p.RawWireSize()
	if wire*3 > raw {
		t.Fatalf("compressed %d bytes vs raw %d: want <= 1/3", wire, raw)
	}
	// Floats do not compress; RawWireSize falls back to WireSize.
	f := &Floats{Vals: []float32{1, 2}}
	if RawWireSize(f) != f.WireSize() {
		t.Fatal("RawWireSize of a value payload diverged from WireSize")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{99},                              // unknown discriminator
		{1, 5},                            // truncated length
		{1, 10, 0, 0, 0},                  // keys count 10, no data
		{2, 3, 0, 0, 0, 1},                // floats truncated
		{3, 1, 0, 0, 0},                   // keysvals missing second count
		{3, 1, 0, 0, 0, 1, 0, 0, 0, 1, 2}, // keysvals truncated body
		{4, 9, 0, 0, 0, 'x'},              // bytes truncated
	}
	for i, c := range cases {
		if _, err := DecodePayload(c); err == nil {
			t.Errorf("case %d: want decode error", i)
		}
	}
}

func TestDecodeBytesCopies(t *testing.T) {
	buf := (&Bytes{Data: []byte("abc")}).AppendTo(nil)
	q, err := DecodePayload(buf)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] = 'z'
	if string(q.(*Bytes).Data) != "abc" {
		t.Fatal("decoded Bytes aliases input buffer")
	}
}

func TestMailboxBasic(t *testing.T) {
	mb := NewMailbox(time.Second)
	mb.Deliver(3, MakeTag(KindConfig, 1, 0), &Bytes{Data: []byte("x")})
	p, err := mb.Recv(3, MakeTag(KindConfig, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if string(p.(*Bytes).Data) != "x" {
		t.Fatal("wrong payload")
	}
}

func TestMailboxBlocksUntilDelivery(t *testing.T) {
	mb := NewMailbox(5 * time.Second)
	tag := MakeTag(KindReduce, 0, 0)
	done := make(chan Payload, 1)
	go func() {
		p, err := mb.Recv(7, tag)
		if err != nil {
			done <- nil
			return
		}
		done <- p
	}()
	time.Sleep(10 * time.Millisecond)
	mb.Deliver(7, tag, &Floats{Vals: []float32{1}})
	select {
	case p := <-done:
		if p == nil {
			t.Fatal("recv errored")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv did not wake")
	}
}

func TestMailboxTimeout(t *testing.T) {
	mb := NewMailbox(50 * time.Millisecond)
	start := time.Now()
	tag := MakeTag(KindConfig, 0, 0)
	_, err := mb.Recv(0, tag)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout far too late")
	}
	// The error carries the context a hung soak test needs: which tag,
	// which senders, how long the receiver waited.
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err %T is not a *TimeoutError", err)
	}
	if te.Tag != tag || len(te.From) != 1 || te.From[0] != 0 {
		t.Fatalf("timeout context = %+v, want tag %v from [0]", te, tag)
	}
	if te.Elapsed < 50*time.Millisecond {
		t.Fatalf("elapsed %v below the 50ms deadline", te.Elapsed)
	}
}

func TestMailboxClose(t *testing.T) {
	mb := NewMailbox(0)
	go func() {
		time.Sleep(10 * time.Millisecond)
		mb.Close()
	}()
	if _, err := mb.Recv(0, MakeTag(KindConfig, 0, 0)); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// Deliveries after close are dropped without panic.
	mb.Deliver(0, MakeTag(KindConfig, 0, 0), &Bytes{})
}

func TestMailboxFIFOPerSender(t *testing.T) {
	mb := NewMailbox(time.Second)
	tag := MakeTag(KindApp, 0, 0)
	for i := 0; i < 10; i++ {
		mb.Deliver(1, tag, &Floats{Vals: []float32{float32(i)}})
	}
	for i := 0; i < 10; i++ {
		p, err := mb.Recv(1, tag)
		if err != nil {
			t.Fatal(err)
		}
		if p.(*Floats).Vals[0] != float32(i) {
			t.Fatalf("out of order: got %v at %d", p.(*Floats).Vals[0], i)
		}
	}
}

func TestMailboxRecvAnyRace(t *testing.T) {
	mb := NewMailbox(time.Second)
	tag := MakeTag(KindReduce, 1, 3)
	mb.Deliver(5, tag, &Bytes{Data: []byte("winner")})
	from, p, err := mb.RecvAny([]int{2, 5, 9}, tag)
	if err != nil {
		t.Fatal(err)
	}
	if from != 5 || string(p.(*Bytes).Data) != "winner" {
		t.Fatalf("won from %d", from)
	}
	// Late duplicates from the losers are discarded.
	mb.Deliver(2, tag, &Bytes{Data: []byte("late")})
	mb.Deliver(9, tag, &Bytes{Data: []byte("late")})
	if n := mb.Pending(); n != 0 {
		t.Fatalf("%d late duplicates retained", n)
	}
}

func TestMailboxRecvAnyDoesNotCancelOtherTags(t *testing.T) {
	mb := NewMailbox(time.Second)
	tagA := MakeTag(KindReduce, 1, 0)
	tagB := MakeTag(KindReduce, 1, 1)
	mb.Deliver(5, tagA, &Bytes{})
	if _, _, err := mb.RecvAny([]int{2, 5}, tagA); err != nil {
		t.Fatal(err)
	}
	// Sender 2 lost the race for tagA, but its tagB messages still flow.
	mb.Deliver(2, tagB, &Bytes{Data: []byte("ok")})
	if p, err := mb.Recv(2, tagB); err != nil || string(p.(*Bytes).Data) != "ok" {
		t.Fatalf("tagB delivery broken: %v %v", p, err)
	}
}

func TestMailboxResetDiscards(t *testing.T) {
	mb := NewMailbox(time.Second)
	tag := MakeTag(KindGather, 0, 0)
	mb.Deliver(1, tag, &Bytes{})
	if _, _, err := mb.RecvAny([]int{1, 2}, tag); err != nil {
		t.Fatal(err)
	}
	mb.ResetDiscards()
	mb.Deliver(2, tag, &Bytes{})
	if _, err := mb.Recv(2, tag); err != nil {
		t.Fatal("delivery after ResetDiscards dropped")
	}
}

// TestMailboxCloseStreamPurgesIndex is the satellite-1 leak
// regression: a stream closed with undelivered (indexed, never
// drained) messages must leave no stale entries in the pending-sender
// index, no queued payloads, and no discard marks.
func TestMailboxCloseStreamPurgesIndex(t *testing.T) {
	mb := NewMailbox(time.Second)
	const s = StreamID(7)
	// Undelivered messages across several tags and senders: all indexed.
	for layer := 0; layer < 4; layer++ {
		for from := 0; from < 3; from++ {
			mb.Deliver(from, MakeStreamTag(s, KindReduce, layer, 0), &Bytes{Data: []byte("leak")})
		}
	}
	// A replica race leaves discard marks for the losers too.
	raceTag := MakeStreamTag(s, KindGather, 0, 1)
	mb.Deliver(1, raceTag, &Bytes{})
	if _, _, err := mb.RecvAny([]int{1, 2}, raceTag); err != nil {
		t.Fatal(err)
	}
	// Traffic on another stream must survive the close untouched.
	otherTag := MakeStreamTag(8, KindReduce, 0, 0)
	mb.Deliver(0, otherTag, &Bytes{Data: []byte("ok")})

	if mb.IndexedTags() == 0 || mb.StreamPending(s) == 0 {
		t.Fatal("precondition: stream has pending indexed messages")
	}
	mb.CloseStream(s)
	if n := mb.StreamPending(s); n != 0 {
		t.Fatalf("%d messages retained after CloseStream", n)
	}
	if n := mb.IndexedTags(); n != 1 { // only otherTag remains
		t.Fatalf("pending-sender index has %d entries after CloseStream, want 1", n)
	}
	// Late deliveries (resend-ring replays, faultnet delays) are dropped
	// rather than re-leaking index entries.
	mb.Deliver(0, MakeStreamTag(s, KindReduce, 0, 2), &Bytes{})
	mb.Deliver(2, raceTag, &Bytes{})
	if mb.StreamPending(s) != 0 || mb.IndexedTags() != 1 {
		t.Fatal("late delivery into a dead stream re-leaked state")
	}
	// The other stream still flows.
	if p, err := mb.Recv(0, otherTag); err != nil || string(p.(*Bytes).Data) != "ok" {
		t.Fatalf("cross-stream traffic broken by CloseStream: %v %v", p, err)
	}
	if mb.IndexedTags() != 0 {
		t.Fatal("index not empty after draining the survivor")
	}
}

// TestMailboxCloseStreamWakesReceivers checks a receive blocked on a
// closed stream fails with ErrStreamClosed while the endpoint itself
// stays live.
func TestMailboxCloseStreamWakesReceivers(t *testing.T) {
	mb := NewMailbox(0)
	const s = StreamID(3)
	errc := make(chan error, 3)
	go func() {
		_, err := mb.Recv(0, MakeStreamTag(s, KindReduce, 0, 0))
		errc <- err
	}()
	go func() {
		_, _, err := mb.RecvAny([]int{0, 1}, MakeStreamTag(s, KindReduce, 1, 0))
		errc <- err
	}()
	go func() {
		_, _, err := mb.RecvGroup([][]int{{0}, {1}}, MakeStreamTag(s, KindGather, 0, 0))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	mb.CloseStream(s)
	for i := 0; i < 3; i++ {
		select {
		case err := <-errc:
			if !errors.Is(err, ErrStreamClosed) {
				t.Fatalf("err = %v, want ErrStreamClosed", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("blocked receive did not wake on CloseStream")
		}
	}
	if !mb.StreamDead(s) {
		t.Fatal("stream not marked dead")
	}
	// DefaultStream can never be closed.
	mb.CloseStream(DefaultStream)
	if mb.StreamDead(DefaultStream) {
		t.Fatal("DefaultStream was closed")
	}
	mb.Deliver(0, MakeTag(KindReduce, 0, 0), &Bytes{Data: []byte("live")})
	if p, err := mb.Recv(0, MakeTag(KindReduce, 0, 0)); err != nil || string(p.(*Bytes).Data) != "live" {
		t.Fatalf("endpoint dead after CloseStream: %v %v", p, err)
	}
}

// TestMailboxStreamIsolation pins that two streams using identical
// (kind, layer, seq) triples never cross-deliver — the headline bug of
// the narrow tag layout.
func TestMailboxStreamIsolation(t *testing.T) {
	mb := NewMailbox(time.Second)
	a := MakeStreamTag(1, KindReduce, 2, 5)
	b := MakeStreamTag(2, KindReduce, 2, 5)
	mb.Deliver(0, a, &Bytes{Data: []byte("A")})
	mb.Deliver(0, b, &Bytes{Data: []byte("B")})
	if p, err := mb.Recv(0, b); err != nil || string(p.(*Bytes).Data) != "B" {
		t.Fatalf("stream 2 got %v, %v", p, err)
	}
	if p, err := mb.Recv(0, a); err != nil || string(p.(*Bytes).Data) != "A" {
		t.Fatalf("stream 1 got %v, %v", p, err)
	}
}

func TestMailboxConcurrentStress(t *testing.T) {
	mb := NewMailbox(5 * time.Second)
	const senders = 8
	const msgs = 200
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(s)))
			for i := 0; i < msgs; i++ {
				if rng.Intn(4) == 0 {
					time.Sleep(time.Microsecond)
				}
				mb.Deliver(s, MakeTag(KindApp, 0, uint32(i)), &Floats{Vals: []float32{float32(s*1000 + i)}})
			}
		}(s)
	}
	var rg sync.WaitGroup
	errs := make(chan error, senders)
	for s := 0; s < senders; s++ {
		rg.Add(1)
		go func(s int) {
			defer rg.Done()
			for i := 0; i < msgs; i++ {
				p, err := mb.Recv(s, MakeTag(KindApp, 0, uint32(i)))
				if err != nil {
					errs <- err
					return
				}
				if p.(*Floats).Vals[0] != float32(s*1000+i) {
					errs <- ErrTimeout
					return
				}
			}
		}(s)
	}
	wg.Wait()
	rg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
