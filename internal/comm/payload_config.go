package comm

import (
	"encoding/binary"
	"fmt"
	"math"

	"kylix/internal/sparse"
)

// Additional wire discriminators (continuing payload.go's space).
//
// The configuration pass originally shipped index sets in the raw
// 8-byte-per-key formats 6 and 7. Version 2 of the config wire format
// adds the compressed forms 8–10 (index sets encoded with
// sparse.AppendCompressed) and the incremental-reconfigure marker 11.
// Encoders emit only the compressed discriminators; decoders keep
// accepting the raw ones so mixed-version traffic still parses.
const (
	wireInOut     = 6  // raw InOut (decode-only)
	wireCombined  = 7  // raw Combined (decode-only)
	wireKeysC     = 8  // compressed Keys
	wireInOutC    = 9  // compressed InOut
	wireCombinedC = 10 // compressed Combined
	wireDelta     = 11 // incremental reconfigure piece
)

// InOut carries a node's in- and out- index-set pieces in one
// configuration message, as §III-A sends both partitions together.
type InOut struct {
	In  sparse.Set
	Out sparse.Set

	memo wireMemo
}

// Combined carries in-keys, out-keys and out-values in a single message:
// the fused configure+reduce downward pass that §III recommends for
// minibatch workloads whose in/out sets change every allreduce.
type Combined struct {
	In   sparse.Set
	Out  sparse.Set
	Vals []float32

	memo wireMemo
}

// Delta is the incremental counterpart of InOut, sent by
// Config.Reconfigure: each direction is either a same-as-last-time
// marker (one flag bit, zero keys) or the full replacement piece. The
// receiver substitutes its stored copy of the previous piece for each
// marker, so an unchanged layer costs two bytes per neighbour instead
// of a re-shipped set.
type Delta struct {
	// InSame/OutSame mark directions whose piece is identical to the one
	// sent in the previous configuration pass over this Config.
	InSame, OutSame bool
	// In/Out carry the replacement pieces for the directions not marked
	// Same (nil otherwise).
	In  sparse.Set
	Out sparse.Set

	memo wireMemo
}

// Clone implements Payload.
func (p *InOut) Clone() Payload {
	return &InOut{In: p.In.Clone(), Out: p.Out.Clone()}
}

// Clone implements Payload.
func (p *Combined) Clone() Payload {
	return &Combined{
		In:   p.In.Clone(),
		Out:  p.Out.Clone(),
		Vals: append([]float32(nil), p.Vals...),
	}
}

// Clone implements Payload.
func (p *Delta) Clone() Payload {
	return &Delta{
		InSame:  p.InSame,
		OutSame: p.OutSame,
		In:      p.In.Clone(),
		Out:     p.Out.Clone(),
	}
}

func (p *InOut) encode() []byte {
	buf := sparse.AppendCompressed([]byte{wireInOutC}, p.In)
	return sparse.AppendCompressed(buf, p.Out)
}

// WireSize implements Payload.
func (p *InOut) WireSize() int { return p.memo.wireSize(p.encode) }

// AppendTo implements Payload.
func (p *InOut) AppendTo(buf []byte) []byte {
	return append(buf, p.memo.bytes(p.encode)...)
}

// RawWireSize implements RawSizer.
func (p *InOut) RawWireSize() int { return 1 + 4 + 4 + 8*len(p.In) + 8*len(p.Out) }

// encodeSets encodes the immutable prefix of a Combined payload: the
// discriminator and both compressed set blocks. Vals deliberately stays
// out of the memo — the fused pass points Vals at value buffers the
// caller may overwrite after the round, and the traffic recorder can
// touch a retained payload later (fault-injecting transports re-Send
// held pointers), so the memoized bytes must never read Vals. Its wire
// cost is pure arithmetic anyway.
func (p *Combined) encodeSets() []byte {
	buf := sparse.AppendCompressed([]byte{wireCombinedC}, p.In)
	return sparse.AppendCompressed(buf, p.Out)
}

// WireSize implements Payload.
func (p *Combined) WireSize() int {
	return p.memo.wireSize(p.encodeSets) + uvarintLen(uint64(len(p.Vals))) + 4*len(p.Vals)
}

// AppendTo implements Payload. The set prefix comes from the memo; the
// values are appended fresh, reading Vals at encode time exactly as the
// raw format did.
func (p *Combined) AppendTo(buf []byte) []byte {
	buf = append(buf, p.memo.bytes(p.encodeSets)...)
	buf = binary.AppendUvarint(buf, uint64(len(p.Vals)))
	for _, v := range p.Vals {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	return buf
}

// uvarintLen is the encoded size of x as a uvarint.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// RawWireSize implements RawSizer.
func (p *Combined) RawWireSize() int {
	return 1 + 4 + 4 + 4 + 8*len(p.In) + 8*len(p.Out) + 4*len(p.Vals)
}

func (p *Delta) encode() []byte {
	var flags byte
	if p.InSame {
		flags |= 1
	}
	if p.OutSame {
		flags |= 2
	}
	buf := []byte{wireDelta, flags}
	if !p.InSame {
		buf = sparse.AppendCompressed(buf, p.In)
	}
	if !p.OutSame {
		buf = sparse.AppendCompressed(buf, p.Out)
	}
	return buf
}

// WireSize implements Payload.
func (p *Delta) WireSize() int { return p.memo.wireSize(p.encode) }

// AppendTo implements Payload.
func (p *Delta) AppendTo(buf []byte) []byte {
	return append(buf, p.memo.bytes(p.encode)...)
}

// RawWireSize implements RawSizer.
func (p *Delta) RawWireSize() int {
	n := 2
	if !p.InSame {
		n += 4 + 8*len(p.In)
	}
	if !p.OutSame {
		n += 4 + 8*len(p.Out)
	}
	return n
}

func decodeKeys(buf []byte, n uint32) (sparse.Set, []byte, error) {
	if len(buf) < int(n)*8 {
		return nil, nil, fmt.Errorf("comm: truncated key block")
	}
	keys := make(sparse.Set, n)
	for i := range keys {
		keys[i] = sparse.Key(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return keys, buf[n*8:], nil
}

// decodeConfigPayload handles the discriminators defined in this file;
// it is called from DecodePayload's default branch. Decoded compressed
// payloads have their memoized wire size preset (the decoder knows the
// consumed byte count), so traffic accounting on a forwarded payload
// does not re-run the codec.
func decodeConfigPayload(kind byte, buf []byte) (Payload, error) {
	whole := len(buf) + 1 // discriminator byte included
	readU32 := func() (uint32, error) {
		if len(buf) < 4 {
			return 0, fmt.Errorf("comm: truncated payload")
		}
		v := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		return v, nil
	}
	switch kind {
	case wireInOut:
		ni, err := readU32()
		if err != nil {
			return nil, err
		}
		no, err := readU32()
		if err != nil {
			return nil, err
		}
		in, rest, err := decodeKeys(buf, ni)
		if err != nil {
			return nil, err
		}
		out, _, err := decodeKeys(rest, no)
		if err != nil {
			return nil, err
		}
		return &InOut{In: in, Out: out}, nil
	case wireCombined:
		ni, err := readU32()
		if err != nil {
			return nil, err
		}
		no, err := readU32()
		if err != nil {
			return nil, err
		}
		nv, err := readU32()
		if err != nil {
			return nil, err
		}
		in, rest, err := decodeKeys(buf, ni)
		if err != nil {
			return nil, err
		}
		out, rest, err := decodeKeys(rest, no)
		if err != nil {
			return nil, err
		}
		if len(rest) < int(nv)*4 {
			return nil, fmt.Errorf("comm: truncated combined values")
		}
		vals := make([]float32, nv)
		for i := range vals {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(rest[i*4:]))
		}
		return &Combined{In: in, Out: out, Vals: vals}, nil
	case wireKeysC:
		keys, rest, err := sparse.DecodeCompressed(nil, buf)
		if err != nil {
			return nil, err
		}
		p := &Keys{Keys: keys}
		p.memo.size = whole - len(rest)
		return p, nil
	case wireInOutC:
		in, rest, err := sparse.DecodeCompressed(nil, buf)
		if err != nil {
			return nil, err
		}
		out, rest, err := sparse.DecodeCompressed(nil, rest)
		if err != nil {
			return nil, err
		}
		p := &InOut{In: in, Out: out}
		p.memo.size = whole - len(rest)
		return p, nil
	case wireCombinedC:
		in, rest, err := sparse.DecodeCompressed(nil, buf)
		if err != nil {
			return nil, err
		}
		out, rest, err := sparse.DecodeCompressed(nil, rest)
		if err != nil {
			return nil, err
		}
		prefix := whole - len(rest) // discriminator + both set blocks
		nv, sz := binary.Uvarint(rest)
		if sz <= 0 || nv > 1<<32 {
			return nil, fmt.Errorf("comm: bad combined value count")
		}
		rest = rest[sz:]
		if uint64(len(rest)) < nv*4 {
			return nil, fmt.Errorf("comm: truncated combined values")
		}
		vals := make([]float32, nv)
		for i := range vals {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(rest[i*4:]))
		}
		p := &Combined{In: in, Out: out, Vals: vals}
		p.memo.size = prefix
		return p, nil
	case wireDelta:
		if len(buf) < 1 {
			return nil, fmt.Errorf("comm: truncated delta payload")
		}
		flags := buf[0]
		if flags > 3 {
			return nil, fmt.Errorf("comm: bad delta flags %#x", flags)
		}
		rest := buf[1:]
		p := &Delta{InSame: flags&1 != 0, OutSame: flags&2 != 0}
		var err error
		if !p.InSame {
			p.In, rest, err = sparse.DecodeCompressed(nil, rest)
			if err != nil {
				return nil, err
			}
		}
		if !p.OutSame {
			p.Out, rest, err = sparse.DecodeCompressed(nil, rest)
			if err != nil {
				return nil, err
			}
		}
		p.memo.size = whole - len(rest)
		return p, nil
	default:
		return nil, fmt.Errorf("comm: unknown payload discriminator %d", kind)
	}
}
