package comm

import (
	"encoding/binary"
	"fmt"
	"math"

	"kylix/internal/sparse"
)

// Additional wire discriminators (continuing payload.go's space).
const (
	wireInOut    = 6
	wireCombined = 7
)

// InOut carries a node's in- and out- index-set pieces in one
// configuration message, as §III-A sends both partitions together.
type InOut struct {
	In  sparse.Set
	Out sparse.Set
}

// Combined carries in-keys, out-keys and out-values in a single message:
// the fused configure+reduce downward pass that §III recommends for
// minibatch workloads whose in/out sets change every allreduce.
type Combined struct {
	In   sparse.Set
	Out  sparse.Set
	Vals []float32
}

// Clone implements Payload.
func (p *InOut) Clone() Payload {
	return &InOut{In: p.In.Clone(), Out: p.Out.Clone()}
}

// Clone implements Payload.
func (p *Combined) Clone() Payload {
	return &Combined{
		In:   p.In.Clone(),
		Out:  p.Out.Clone(),
		Vals: append([]float32(nil), p.Vals...),
	}
}

// WireSize implements Payload.
func (p *InOut) WireSize() int { return 1 + 4 + 4 + 8*len(p.In) + 8*len(p.Out) }

// AppendTo implements Payload.
func (p *InOut) AppendTo(buf []byte) []byte {
	buf = append(buf, wireInOut)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.In)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Out)))
	buf = appendKeys(buf, p.In)
	buf = appendKeys(buf, p.Out)
	return buf
}

// WireSize implements Payload.
func (p *Combined) WireSize() int {
	return 1 + 4 + 4 + 4 + 8*len(p.In) + 8*len(p.Out) + 4*len(p.Vals)
}

// AppendTo implements Payload.
func (p *Combined) AppendTo(buf []byte) []byte {
	buf = append(buf, wireCombined)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.In)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Out)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Vals)))
	buf = appendKeys(buf, p.In)
	buf = appendKeys(buf, p.Out)
	for _, v := range p.Vals {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	return buf
}

func appendKeys(buf []byte, s sparse.Set) []byte {
	for _, k := range s {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
	}
	return buf
}

func decodeKeys(buf []byte, n uint32) (sparse.Set, []byte, error) {
	if len(buf) < int(n)*8 {
		return nil, nil, fmt.Errorf("comm: truncated key block")
	}
	keys := make(sparse.Set, n)
	for i := range keys {
		keys[i] = sparse.Key(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return keys, buf[n*8:], nil
}

// decodeConfigPayload handles the discriminators defined in this file;
// it is called from DecodePayload's default branch.
func decodeConfigPayload(kind byte, buf []byte) (Payload, error) {
	readU32 := func() (uint32, error) {
		if len(buf) < 4 {
			return 0, fmt.Errorf("comm: truncated payload")
		}
		v := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		return v, nil
	}
	switch kind {
	case wireInOut:
		ni, err := readU32()
		if err != nil {
			return nil, err
		}
		no, err := readU32()
		if err != nil {
			return nil, err
		}
		in, rest, err := decodeKeys(buf, ni)
		if err != nil {
			return nil, err
		}
		out, _, err := decodeKeys(rest, no)
		if err != nil {
			return nil, err
		}
		return &InOut{In: in, Out: out}, nil
	case wireCombined:
		ni, err := readU32()
		if err != nil {
			return nil, err
		}
		no, err := readU32()
		if err != nil {
			return nil, err
		}
		nv, err := readU32()
		if err != nil {
			return nil, err
		}
		in, rest, err := decodeKeys(buf, ni)
		if err != nil {
			return nil, err
		}
		out, rest, err := decodeKeys(rest, no)
		if err != nil {
			return nil, err
		}
		if len(rest) < int(nv)*4 {
			return nil, fmt.Errorf("comm: truncated combined values")
		}
		vals := make([]float32, nv)
		for i := range vals {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(rest[i*4:]))
		}
		return &Combined{In: in, Out: out, Vals: vals}, nil
	default:
		return nil, fmt.Errorf("comm: unknown payload discriminator %d", kind)
	}
}
