package comm

import "time"

// RecvObserver observes completed receives for the observability layer.
// Transports call ObserveRecv once per finished matched receive — on
// success with the payload's wire size and the time the receiver spent
// blocked, on failure with the error (a timed-out receive carries its
// *TimeoutError, which observers turn into an error span). RecvGroup
// receives additionally report their wait through ObserveRecvGroup,
// the hot path's arrival-order primitive. Observers are called outside
// transport locks and must be safe for concurrent use; implementations
// must not allocate on the success path (the warm Reduce is gated at
// 0 allocs/op with observation enabled).
type RecvObserver interface {
	ObserveRecv(from int, tag Tag, bytes int, wait time.Duration, err error)
	ObserveRecvGroup(tag Tag, wait time.Duration)
}

// Recorder observes transport sends for traffic accounting. Transports
// call Record once per message with the payload's wire size; recording
// happens at send time, so traffic toward dead machines is charged to
// the sender exactly as a physical NIC would be.
type Recorder interface {
	Record(from, to int, tag Tag, bytes int)
}

// RawRecorder is an optional Recorder extension for transports that
// also know a payload's uncompressed size (RawWireSize). Transports
// prefer RecordRaw when the recorder implements it, so compression
// ratios surface in traffic reports without a second accounting pass.
type RawRecorder interface {
	Recorder
	RecordRaw(from, to int, tag Tag, wireBytes, rawBytes int)
}

// NopRecorder discards all samples. Transports special-case it: when
// the configured recorder is a NopRecorder they skip the WireSize call
// entirely, so untraced runs never pay for encoding payloads that
// in-memory delivery would not otherwise serialize.
type NopRecorder struct{}

// Record implements Recorder.
func (NopRecorder) Record(from, to int, tag Tag, bytes int) {}
