package comm

// Recorder observes transport sends for traffic accounting. Transports
// call Record once per message with the payload's wire size; recording
// happens at send time, so traffic toward dead machines is charged to
// the sender exactly as a physical NIC would be.
type Recorder interface {
	Record(from, to int, tag Tag, bytes int)
}

// NopRecorder discards all samples.
type NopRecorder struct{}

// Record implements Recorder.
func (NopRecorder) Record(from, to int, tag Tag, bytes int) {}
