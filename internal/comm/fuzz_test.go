package comm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kylix/internal/sparse"
)

// TestDecodeRandomBytesNeverPanics hammers DecodePayload with random
// byte strings: arbitrary input must produce an error or a payload,
// never a panic or an out-of-bounds read. (The TCP transport feeds
// DecodePayload straight from the network.)
func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		rng.Read(buf)
		if trial%3 == 0 && n > 0 {
			// Bias toward valid discriminators so deeper paths run
			// (1-14 covers every assigned payload type, including the
			// quantized value block).
			buf[0] = byte(1 + rng.Intn(14))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("DecodePayload panicked on %v: %v", buf, r)
				}
			}()
			_, _ = DecodePayload(buf)
		}()
	}
}

func keys32(raw []uint16) []int32 {
	out := make([]int32, len(raw))
	for i, r := range raw {
		out[i] = int32(r)
	}
	return out
}

// TestEncodeDecodeQuick round-trips randomized payloads of every type.
func TestEncodeDecodeQuick(t *testing.T) {
	toSet := func(raw []uint16) sparse.Set {
		idx := make([]int32, len(raw))
		for i, r := range raw {
			idx[i] = int32(r)
		}
		return sparse.MustNewSet(idx)
	}
	f := func(keysRaw []uint16, vals []float32, data []byte) bool {
		keys := toSet(keysRaw)
		qf := &QVals{Mode: sparse.QuantFP16, N: len(vals),
			Data: make([]byte, sparse.QuantizedSize(sparse.QuantFP16, len(vals)))}
		sparse.QuantizeFP16(qf.Data, vals, nil)
		qi := &QVals{Mode: sparse.QuantINT8, N: len(vals),
			Data: make([]byte, sparse.QuantizedSize(sparse.QuantINT8, len(vals)))}
		sparse.QuantizeINT8(qi.Data, vals, nil)
		payloads := []Payload{
			&Keys{Keys: keys},
			&Floats{Vals: vals},
			&KeysVals{Keys: keys, Vals: vals},
			&Bytes{Data: data},
			&InOut{In: keys, Out: keys},
			&Combined{In: keys, Out: keys, Vals: vals},
			&Delta{In: keys, Out: keys},
			&Delta{InSame: true, Out: keys},
			&Delta{InSame: true, OutSame: true},
			&Control{Op: 1, Epoch: uint64(len(vals)), Leader: 3,
				Members: keys32(keysRaw), Degrees: []int32{2, 2},
				PropEpoch: uint64(len(data)), PropMembers: keys32(keysRaw),
				Ack: 7, Clock: int64(len(keysRaw)), Echo: 9},
			&StreamCtl{Op: OpStreamCreate, Seq: uint32(len(data)),
				Stream: StreamID(len(keysRaw)), Seed: int64(len(vals)),
				N: 1 << 16, NNZ: uint32(len(keysRaw)), Rounds: 2, Width: 1,
				Digest: uint64(len(data)), Quant: uint8(sparse.QuantFP16)},
			qf, qi,
			&QVals{Mode: sparse.QuantFP16, N: 0, Data: []byte{}},
		}
		for _, p := range payloads {
			buf := p.AppendTo(nil)
			if len(buf) != p.WireSize() {
				return false
			}
			q, err := DecodePayload(buf)
			if err != nil {
				return false
			}
			if q.WireSize() != p.WireSize() {
				return false
			}
			// Re-encoding the decoded payload is byte-identical.
			buf2 := q.AppendTo(nil)
			if string(buf) != string(buf2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestTruncationAlwaysErrors verifies every strict prefix of a valid
// encoding fails to decode (no silent short reads).
func TestTruncationAlwaysErrors(t *testing.T) {
	keys := sparse.MustNewSet([]int32{1, 2, 3, 100})
	p := &Combined{In: keys, Out: keys, Vals: []float32{1, 2, 3, 4}}
	buf := p.AppendTo(nil)
	for cut := 1; cut < len(buf); cut++ {
		if _, err := DecodePayload(buf[:cut]); err == nil {
			t.Fatalf("prefix of length %d decoded successfully", cut)
		}
	}
}
