// Package comm defines the transport-independent messaging abstraction
// that the Kylix protocol runs on: ranked endpoints exchanging tagged,
// typed payloads with blocking matched receives. Two transports implement
// it — internal/memnet (in-process, one goroutine per machine) and
// internal/tcpnet (real TCP sockets, in- or cross-process).
//
// The design mirrors the paper's §VI-B implementation notes: sends are
// asynchronous and never block on the receiver (opportunistic
// communication), receives match on (sender, tag), and RecvAny provides
// the "first replica wins" racing primitive of §V-B.
package comm

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Kind classifies a message's role within the protocol.
type Kind uint8

const (
	// KindConfig carries in/out index sets during the downward
	// configuration pass.
	KindConfig Kind = iota + 1
	// KindReduce carries partial values during the downward
	// scatter-reduce pass.
	KindReduce
	// KindGather carries reduced values during the upward allgather.
	KindGather
	// KindConfigReduce carries indices and values together (the combined
	// configure+reduce used by minibatch workloads).
	KindConfigReduce
	// KindApp is reserved for application-level traffic (e.g. the
	// MapReduce baseline's shuffle).
	KindApp
	// KindControl carries the membership control plane's epoch-stamped
	// gossip (heartbeats, epoch proposals, acknowledgements). Control
	// traffic shares the transports with the data plane but lives in its
	// own kind so tags never collide with protocol rounds.
	KindControl
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindConfig:
		return "config"
	case KindReduce:
		return "reduce"
	case KindGather:
		return "gather"
	case KindConfigReduce:
		return "config+reduce"
	case KindApp:
		return "app"
	case KindControl:
		return "control"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// StreamID names one logical tenant of a shared fabric. Every Tag
// embeds the stream that minted it, so concurrent reductions multiplex
// over the same endpoints without their messages cross-delivering:
// identical (kind, layer, seq) triples from two streams are distinct
// tags. Stream 0 (DefaultStream) is the classic single-tenant
// namespace used by Cluster.Run and the membership control plane.
type StreamID uint16

// DefaultStream is the implicit stream of single-tenant traffic:
// MakeTag mints into it, and it is never closed.
const DefaultStream StreamID = 0

// Tag identifies one matched send/receive step: the message kind, the
// stream (tenant) it belongs to, the communication layer, and a
// sequence number distinguishing successive rounds (e.g. PageRank
// iterations).
//
// Bit layout (most significant first):
//
//	63........56 55........40 39........32 31...........0
//	  kind (8)     stream (16)   layer (8)     seq (32)
type Tag uint64

// tagClamps counts tags whose layer was out of [0, 255] and got
// clamped by MakeStreamTag. The protocol never produces one (layers
// are bounded by the degree vector length), so a nonzero count is a
// caller bug surfaced as a metric instead of a daemon-killing panic.
var tagClamps atomic.Uint64

// TagClamps reports how many tag constructions clamped an
// out-of-range layer since process start.
func TagClamps() uint64 { return tagClamps.Load() }

// MakeStreamTag packs stream, kind, layer and sequence number into a
// Tag. A layer outside [0, 255] is clamped to the nearest bound and
// counted in TagClamps — never a panic: once untrusted stream RPCs can
// reach the comm layer, a malformed request must not take down the
// daemon. Callers validating untrusted input up front should use
// CheckLayer and reject before minting.
func MakeStreamTag(stream StreamID, kind Kind, layer int, seq uint32) Tag {
	if layer < 0 || layer > 255 {
		tagClamps.Add(1)
		if layer < 0 {
			layer = 0
		} else {
			layer = 255
		}
	}
	return Tag(uint64(kind)<<56 | uint64(stream)<<40 | uint64(uint8(layer))<<32 | uint64(seq))
}

// MakeTag packs kind, layer and sequence number into a DefaultStream
// Tag — the single-tenant constructor. Layer handling matches
// MakeStreamTag (clamp + count, no panic).
func MakeTag(kind Kind, layer int, seq uint32) Tag {
	return MakeStreamTag(DefaultStream, kind, layer, seq)
}

// TagRangeError reports a tag component outside its encodable range —
// the structured rejection for untrusted inputs (daemon RPCs) that
// must be validated rather than silently clamped.
type TagRangeError struct {
	// Field names the offending component ("layer").
	Field string
	// Value is the out-of-range value as given.
	Value int
	// Max is the largest encodable value (Min is always 0).
	Max int
}

// Error implements error.
func (e *TagRangeError) Error() string {
	return fmt.Sprintf("comm: tag %s %d out of range [0, %d]", e.Field, e.Value, e.Max)
}

// CheckLayer validates a layer for tag encoding, returning a
// *TagRangeError when it cannot be represented. Use it at trust
// boundaries; trusted protocol code calls MakeStreamTag directly.
func CheckLayer(layer int) error {
	if layer < 0 || layer > 255 {
		return &TagRangeError{Field: "layer", Value: layer, Max: 255}
	}
	return nil
}

// Kind extracts the message kind.
func (t Tag) Kind() Kind { return Kind(t >> 56) }

// Stream extracts the stream (tenant) id.
func (t Tag) Stream() StreamID { return StreamID(t >> 40) }

// Layer extracts the communication layer.
func (t Tag) Layer() int { return int(uint8(t >> 32)) }

// Seq extracts the sequence number.
func (t Tag) Seq() uint32 { return uint32(t) }

// String implements fmt.Stringer. The stream is shown only when it is
// not DefaultStream, so single-tenant logs look as before.
func (t Tag) String() string {
	if s := t.Stream(); s != DefaultStream {
		return fmt.Sprintf("%s/S%d/L%d/#%d", t.Kind(), s, t.Layer(), t.Seq())
	}
	return fmt.Sprintf("%s/L%d/#%d", t.Kind(), t.Layer(), t.Seq())
}

// Errors shared by transports.
var (
	// ErrClosed is returned by operations on a closed endpoint.
	ErrClosed = errors.New("comm: endpoint closed")
	// ErrTimeout is returned when a receive's deadline expires, which in
	// an unreplicated network means a peer died or the protocol hung.
	// Transports return it wrapped in a *TimeoutError carrying the tag,
	// the expected senders and the elapsed wait, so a hung soak test is
	// diagnosable from the error string alone; match it with
	// errors.Is(err, ErrTimeout).
	ErrTimeout = errors.New("comm: receive timed out")
	// ErrStreamClosed is returned by receives on a stream whose
	// namespace has been closed (Mailbox.CloseStream). The endpoint as a
	// whole stays live — only the one tenant's traffic is dead.
	ErrStreamClosed = errors.New("comm: stream closed")
)

// TimeoutError is the structured form of ErrTimeout: it records which
// receive expired so callers (and humans reading soak-test logs) can
// tell "peer slow" from "peer dead" and see exactly which protocol step
// stalled. errors.Is(err, ErrTimeout) matches it.
type TimeoutError struct {
	// Tag is the matched-receive signature that never arrived.
	Tag Tag
	// From lists the sender ranks the receive was waiting on (one for
	// Recv, several for a RecvAny replica race).
	From []int
	// Elapsed is how long the receiver actually waited.
	Elapsed time.Duration
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("comm: receive %s from %v timed out after %v", e.Tag, e.From, e.Elapsed.Round(time.Millisecond))
}

// Is makes errors.Is(err, ErrTimeout) match a *TimeoutError.
func (e *TimeoutError) Is(target error) bool { return target == ErrTimeout }

// Endpoint is one machine's connection to the cluster. Send is
// asynchronous (it never waits for the receiver) and safe for concurrent
// use; Recv blocks until a message with the exact (from, tag) signature
// arrives. Sending to a dead machine is a silent no-op: the paper's
// fault-tolerance design requires that survivors keep streaming to
// replica groups without tracking liveness.
type Endpoint interface {
	// Rank is this machine's index in [0, Size).
	Rank() int
	// Size is the cluster size m.
	Size() int
	// Send transmits p to machine `to` under the given tag. Ownership of
	// p transfers to the transport; the caller must not mutate it after
	// sending.
	Send(to int, tag Tag, p Payload) error
	// Recv blocks for the message sent by `from` with tag `tag`.
	Recv(from int, tag Tag) (Payload, error)
	// RecvAny blocks until any one of the listed senders delivers a
	// message with the tag, returning the winner's rank. Late duplicate
	// arrivals with the same tag from the losing senders are discarded
	// by the transport (the §V-B packet race cancellation).
	RecvAny(froms []int, tag Tag) (int, Payload, error)
	// RecvGroup blocks until a message with the tag arrives from any
	// sender in any of the groups, returning the winning sender's rank.
	// A win cancels only the winner's own group — late copies from its
	// co-members carried the same logical message (the §V-B replica
	// race) and are discarded — while every other group remains fully
	// deliverable. With singleton groups this is a pure any-source,
	// arrival-order receive: the reduction hot path issues all of a
	// layer's sends and then combines pieces as they land, instead of
	// blocking head-of-line on a fixed member order. Implementations
	// must not retain or mutate the groups slices.
	RecvGroup(groups [][]int, tag Tag) (int, Payload, error)
	// Close releases the endpoint; blocked receives return ErrClosed.
	Close() error
}
