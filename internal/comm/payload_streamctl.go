package comm

import (
	"encoding/binary"
	"fmt"
)

// wireStreamCtl is the discriminator of the tenant-stream control
// payload. It extends the 1-12 range assigned in payload.go /
// payload_config.go / payload_control.go.
const wireStreamCtl = 13

// StreamCtl operation codes. The daemon control protocol is a simple
// sequenced broadcast: the coordinator (rank 0) assigns a monotonically
// increasing Seq to every command and broadcasts it to all ranks; each
// rank executes commands in Seq order (they are collective operations)
// and answers with OpStreamAck carrying the same Seq and its local
// result digest.
const (
	// OpStreamCreate opens tenant stream Stream and runs its
	// configuration pass over the (Seed, N, NNZ, Width)-derived
	// workload.
	OpStreamCreate uint8 = iota + 1
	// OpStreamReduce runs Rounds warm reduction passes on stream Stream.
	OpStreamReduce
	// OpStreamClose closes stream Stream and purges its mailbox
	// namespace.
	OpStreamClose
	// OpStreamShutdown stops the daemon loop on every rank.
	OpStreamShutdown
	// OpStreamAck is a rank's reply to any of the above: Seq names the
	// command, Digest carries the rank's result digest (0 when the
	// command has no data result), and N carries an error indicator
	// (0 = ok, 1 = the rank failed the command).
	OpStreamAck
)

// StreamCtl is the tenant-stream control-plane message of the
// kylix-node daemon: create/reduce/close/shutdown commands broadcast by
// the coordinator and the per-rank acknowledgements, all over the
// existing KindControl tag space so no side channel is needed.
type StreamCtl struct {
	// Op is one of the OpStream constants.
	Op uint8
	// Seq is the coordinator-assigned command sequence number (acks echo
	// it back).
	Seq uint32
	// Stream is the tenant stream id the command addresses.
	Stream StreamID
	// Seed seeds the stream's deterministic workload.
	Seed int64
	// N is the feature-space size for create, and doubles as the error
	// indicator on acks (0 = ok).
	N int64
	// NNZ is the per-rank nonzero count of the workload.
	NNZ uint32
	// Rounds is the number of warm reduction passes for OpStreamReduce.
	Rounds uint32
	// Width is the per-feature value width for create.
	Width uint32
	// Digest carries a rank's float64-bits result digest on acks.
	Digest uint64
	// Quant is the stream's value quantization mode for create
	// (a sparse.Quantization value; 0 = off).
	Quant uint8
}

// Clone implements Payload.
func (p *StreamCtl) Clone() Payload {
	q := *p
	return &q
}

// WireSize implements Payload.
func (p *StreamCtl) WireSize() int {
	return 1 + 1 + 4 + 2 + 8 + 8 + 4 + 4 + 4 + 8 + 1 // disc, op, seq, stream, seed, n, nnz, rounds, width, digest, quant
}

// AppendTo implements Payload.
func (p *StreamCtl) AppendTo(buf []byte) []byte {
	buf = append(buf, wireStreamCtl, p.Op)
	buf = binary.LittleEndian.AppendUint32(buf, p.Seq)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(p.Stream))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Seed))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(p.N))
	buf = binary.LittleEndian.AppendUint32(buf, p.NNZ)
	buf = binary.LittleEndian.AppendUint32(buf, p.Rounds)
	buf = binary.LittleEndian.AppendUint32(buf, p.Width)
	buf = binary.LittleEndian.AppendUint64(buf, p.Digest)
	return append(buf, p.Quant)
}

// decodeStreamCtlPayload parses the bytes after the wireStreamCtl
// discriminator.
func decodeStreamCtlPayload(buf []byte) (Payload, error) {
	const body = 1 + 4 + 2 + 8 + 8 + 4 + 4 + 4 + 8 + 1
	if len(buf) < body {
		return nil, fmt.Errorf("comm: truncated streamctl payload")
	}
	p := &StreamCtl{Op: buf[0]}
	buf = buf[1:]
	p.Seq = binary.LittleEndian.Uint32(buf)
	p.Stream = StreamID(binary.LittleEndian.Uint16(buf[4:]))
	p.Seed = int64(binary.LittleEndian.Uint64(buf[6:]))
	p.N = int64(binary.LittleEndian.Uint64(buf[14:]))
	p.NNZ = binary.LittleEndian.Uint32(buf[22:])
	p.Rounds = binary.LittleEndian.Uint32(buf[26:])
	p.Width = binary.LittleEndian.Uint32(buf[30:])
	p.Digest = binary.LittleEndian.Uint64(buf[34:])
	p.Quant = buf[42]
	return p, nil
}
