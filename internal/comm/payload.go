package comm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"kylix/internal/sparse"
)

// Payload is a typed message body. In-memory transports pass Payloads by
// reference (zero copy); the TCP transport encodes them with the
// self-describing wire format below. WireSize is also what the traffic
// recorder charges, so both transports account identical byte volumes.
type Payload interface {
	// WireSize is the encoded size in bytes, excluding the frame header.
	WireSize() int
	// AppendTo appends the wire encoding to buf and returns it.
	AppendTo(buf []byte) []byte
	// Clone returns a deep copy sharing no memory with the receiver.
	// Layers that fan one payload out to several in-process receivers
	// with independent lifetimes (the replica layer) clone first, so a
	// sender reusing its buffers cannot corrupt a slow receiver's copy.
	Clone() Payload
}

// RawSizer is implemented by payloads whose wire encoding compresses
// its content: index-set payloads (compressed key codec) and quantized
// value blocks (fp16/int8 value codec). RawWireSize reports what the
// same payload would cost in the uncompressed format — 8 bytes per key,
// 4 bytes per float32 value — so traffic accounting can expose
// raw-vs-encoded compression ratios per layer.
type RawSizer interface {
	RawWireSize() int
}

// RawWireSize returns p's size in the uncompressed wire format: the
// RawSizer value for compressed payloads, WireSize for everything else
// (raw value payloads are not compressed, so the two coincide).
func RawWireSize(p Payload) int {
	if rs, ok := p.(RawSizer); ok {
		return rs.RawWireSize()
	}
	return p.WireSize()
}

// Payload type discriminators on the wire. 1–4 are the original
// fixed-width formats; 6, 7 and the compressed 8–11 live in
// payload_config.go, 12–13 are control planes, and the quantized value
// block 14 lives in payload_qvals.go. Decoders accept every
// discriminator ever assigned; encoders emit the compressed forms for
// index-set payloads and the quantized form for value blocks when
// quantization is on.
const (
	wireKeys     = 1
	wireFloats   = 2
	wireKeysVals = 3
	wireBytes    = 4
)

// wireMemo caches a payload's encoded form so that WireSize (charged by
// the traffic recorder on every transport) and AppendTo (run by the TCP
// write loop) encode at most once per payload, even when a payload is
// fanned out to many receivers. Payloads flow through fault-injecting
// transports that re-Send retained pointers from a drain goroutine, so
// the memo must be safe for concurrent first use: sync.Once guards the
// encode.
//
// size is an optional fast path preset by decoders (single-threaded,
// before the payload is shared): it answers WireSize without
// re-encoding a payload that just arrived off the wire.
type wireMemo struct {
	size int
	once sync.Once
	buf  []byte
}

// bytes returns the memoized encoding, running enc on first use.
func (m *wireMemo) bytes(enc func() []byte) []byte {
	m.once.Do(func() { m.buf = enc() })
	return m.buf
}

// wireSize returns the encoded size. Every encoding starts with a
// discriminator byte, so size 0 always means "not yet known".
func (m *wireMemo) wireSize(enc func() []byte) int {
	if n := m.size; n > 0 {
		return n
	}
	return len(m.bytes(enc))
}

// Keys carries a sorted index set (configuration pass). It encodes with
// the compressed index codec (sparse.AppendCompressed); the keys must
// therefore be MakeKey-derived, which every Set built by sparse.NewSet
// is.
type Keys struct {
	Keys sparse.Set

	memo wireMemo
}

// Floats carries a value block (reduce and gather passes).
type Floats struct {
	Vals []float32
}

// KeysVals carries an index set together with its values (the combined
// configure+reduce message of §III, and the bottom turnaround).
type KeysVals struct {
	Keys sparse.Set
	Vals []float32
}

// Bytes carries opaque application data.
type Bytes struct {
	Data []byte
}

// Clone implements Payload.
func (p *Keys) Clone() Payload { return &Keys{Keys: p.Keys.Clone()} }

// Clone implements Payload.
func (p *Floats) Clone() Payload {
	return &Floats{Vals: append([]float32(nil), p.Vals...)}
}

// Clone implements Payload.
func (p *KeysVals) Clone() Payload {
	return &KeysVals{Keys: p.Keys.Clone(), Vals: append([]float32(nil), p.Vals...)}
}

// Clone implements Payload.
func (p *Bytes) Clone() Payload {
	return &Bytes{Data: append([]byte(nil), p.Data...)}
}

func (p *Keys) encode() []byte {
	return sparse.AppendCompressed([]byte{wireKeysC}, p.Keys)
}

// WireSize implements Payload.
func (p *Keys) WireSize() int { return p.memo.wireSize(p.encode) }

// AppendTo implements Payload.
func (p *Keys) AppendTo(buf []byte) []byte {
	return append(buf, p.memo.bytes(p.encode)...)
}

// RawWireSize implements RawSizer.
func (p *Keys) RawWireSize() int { return 1 + 4 + 8*len(p.Keys) }

// WireSize implements Payload.
func (p *Floats) WireSize() int { return 1 + 4 + 4*len(p.Vals) }

// AppendTo implements Payload.
func (p *Floats) AppendTo(buf []byte) []byte {
	buf = append(buf, wireFloats)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Vals)))
	for _, v := range p.Vals {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	return buf
}

// WireSize implements Payload.
func (p *KeysVals) WireSize() int { return 1 + 4 + 4 + 8*len(p.Keys) + 4*len(p.Vals) }

// AppendTo implements Payload.
func (p *KeysVals) AppendTo(buf []byte) []byte {
	buf = append(buf, wireKeysVals)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Keys)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Vals)))
	for _, k := range p.Keys {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
	}
	for _, v := range p.Vals {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	return buf
}

// WireSize implements Payload.
func (p *Bytes) WireSize() int { return 1 + 4 + len(p.Data) }

// AppendTo implements Payload.
func (p *Bytes) AppendTo(buf []byte) []byte {
	buf = append(buf, wireBytes)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Data)))
	return append(buf, p.Data...)
}

// DecodePayload parses a wire-encoded payload produced by AppendTo.
func DecodePayload(buf []byte) (Payload, error) {
	if len(buf) < 1 {
		return nil, fmt.Errorf("comm: empty payload")
	}
	kind, buf := buf[0], buf[1:]
	readU32 := func() (uint32, error) {
		if len(buf) < 4 {
			return 0, fmt.Errorf("comm: truncated payload")
		}
		v := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		return v, nil
	}
	switch kind {
	case wireKeys:
		n, err := readU32()
		if err != nil {
			return nil, err
		}
		if len(buf) < int(n)*8 {
			return nil, fmt.Errorf("comm: truncated keys payload")
		}
		keys := make(sparse.Set, n)
		for i := range keys {
			keys[i] = sparse.Key(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		return &Keys{Keys: keys}, nil
	case wireFloats:
		n, err := readU32()
		if err != nil {
			return nil, err
		}
		if len(buf) < int(n)*4 {
			return nil, fmt.Errorf("comm: truncated floats payload")
		}
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		return &Floats{Vals: vals}, nil
	case wireKeysVals:
		nk, err := readU32()
		if err != nil {
			return nil, err
		}
		nv, err := readU32()
		if err != nil {
			return nil, err
		}
		if len(buf) < int(nk)*8+int(nv)*4 {
			return nil, fmt.Errorf("comm: truncated keysvals payload")
		}
		keys := make(sparse.Set, nk)
		for i := range keys {
			keys[i] = sparse.Key(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		buf = buf[nk*8:]
		vals := make([]float32, nv)
		for i := range vals {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		return &KeysVals{Keys: keys, Vals: vals}, nil
	case wireBytes:
		n, err := readU32()
		if err != nil {
			return nil, err
		}
		if len(buf) < int(n) {
			return nil, fmt.Errorf("comm: truncated bytes payload")
		}
		data := make([]byte, n)
		copy(data, buf)
		return &Bytes{Data: data}, nil
	case wireControl:
		return decodeControlPayload(buf)
	case wireStreamCtl:
		return decodeStreamCtlPayload(buf)
	case wireQVals:
		return decodeQValsPayload(buf)
	default:
		return decodeConfigPayload(kind, buf)
	}
}
