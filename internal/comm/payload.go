package comm

import (
	"encoding/binary"
	"fmt"
	"math"

	"kylix/internal/sparse"
)

// Payload is a typed message body. In-memory transports pass Payloads by
// reference (zero copy); the TCP transport encodes them with the
// self-describing wire format below. WireSize is also what the traffic
// recorder charges, so both transports account identical byte volumes.
type Payload interface {
	// WireSize is the encoded size in bytes, excluding the frame header.
	WireSize() int
	// AppendTo appends the wire encoding to buf and returns it.
	AppendTo(buf []byte) []byte
	// Clone returns a deep copy sharing no memory with the receiver.
	// Layers that fan one payload out to several in-process receivers
	// with independent lifetimes (the replica layer) clone first, so a
	// sender reusing its buffers cannot corrupt a slow receiver's copy.
	Clone() Payload
}

// Payload type discriminators on the wire (6 and 7 live in
// payload_config.go).
const (
	wireKeys     = 1
	wireFloats   = 2
	wireKeysVals = 3
	wireBytes    = 4
)

// Keys carries a sorted index set (configuration pass).
type Keys struct {
	Keys sparse.Set
}

// Floats carries a value block (reduce and gather passes).
type Floats struct {
	Vals []float32
}

// KeysVals carries an index set together with its values (the combined
// configure+reduce message of §III, and the bottom turnaround).
type KeysVals struct {
	Keys sparse.Set
	Vals []float32
}

// Bytes carries opaque application data.
type Bytes struct {
	Data []byte
}

// Clone implements Payload.
func (p *Keys) Clone() Payload { return &Keys{Keys: p.Keys.Clone()} }

// Clone implements Payload.
func (p *Floats) Clone() Payload {
	return &Floats{Vals: append([]float32(nil), p.Vals...)}
}

// Clone implements Payload.
func (p *KeysVals) Clone() Payload {
	return &KeysVals{Keys: p.Keys.Clone(), Vals: append([]float32(nil), p.Vals...)}
}

// Clone implements Payload.
func (p *Bytes) Clone() Payload {
	return &Bytes{Data: append([]byte(nil), p.Data...)}
}

// WireSize implements Payload.
func (p *Keys) WireSize() int { return 1 + 4 + 8*len(p.Keys) }

// AppendTo implements Payload.
func (p *Keys) AppendTo(buf []byte) []byte {
	buf = append(buf, wireKeys)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Keys)))
	for _, k := range p.Keys {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
	}
	return buf
}

// WireSize implements Payload.
func (p *Floats) WireSize() int { return 1 + 4 + 4*len(p.Vals) }

// AppendTo implements Payload.
func (p *Floats) AppendTo(buf []byte) []byte {
	buf = append(buf, wireFloats)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Vals)))
	for _, v := range p.Vals {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	return buf
}

// WireSize implements Payload.
func (p *KeysVals) WireSize() int { return 1 + 4 + 4 + 8*len(p.Keys) + 4*len(p.Vals) }

// AppendTo implements Payload.
func (p *KeysVals) AppendTo(buf []byte) []byte {
	buf = append(buf, wireKeysVals)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Keys)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Vals)))
	for _, k := range p.Keys {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
	}
	for _, v := range p.Vals {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	return buf
}

// WireSize implements Payload.
func (p *Bytes) WireSize() int { return 1 + 4 + len(p.Data) }

// AppendTo implements Payload.
func (p *Bytes) AppendTo(buf []byte) []byte {
	buf = append(buf, wireBytes)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Data)))
	return append(buf, p.Data...)
}

// DecodePayload parses a wire-encoded payload produced by AppendTo.
func DecodePayload(buf []byte) (Payload, error) {
	if len(buf) < 1 {
		return nil, fmt.Errorf("comm: empty payload")
	}
	kind, buf := buf[0], buf[1:]
	readU32 := func() (uint32, error) {
		if len(buf) < 4 {
			return 0, fmt.Errorf("comm: truncated payload")
		}
		v := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		return v, nil
	}
	switch kind {
	case wireKeys:
		n, err := readU32()
		if err != nil {
			return nil, err
		}
		if len(buf) < int(n)*8 {
			return nil, fmt.Errorf("comm: truncated keys payload")
		}
		keys := make(sparse.Set, n)
		for i := range keys {
			keys[i] = sparse.Key(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		return &Keys{Keys: keys}, nil
	case wireFloats:
		n, err := readU32()
		if err != nil {
			return nil, err
		}
		if len(buf) < int(n)*4 {
			return nil, fmt.Errorf("comm: truncated floats payload")
		}
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		return &Floats{Vals: vals}, nil
	case wireKeysVals:
		nk, err := readU32()
		if err != nil {
			return nil, err
		}
		nv, err := readU32()
		if err != nil {
			return nil, err
		}
		if len(buf) < int(nk)*8+int(nv)*4 {
			return nil, fmt.Errorf("comm: truncated keysvals payload")
		}
		keys := make(sparse.Set, nk)
		for i := range keys {
			keys[i] = sparse.Key(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		buf = buf[nk*8:]
		vals := make([]float32, nv)
		for i := range vals {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		return &KeysVals{Keys: keys, Vals: vals}, nil
	case wireBytes:
		n, err := readU32()
		if err != nil {
			return nil, err
		}
		if len(buf) < int(n) {
			return nil, fmt.Errorf("comm: truncated bytes payload")
		}
		data := make([]byte, n)
		copy(data, buf)
		return &Bytes{Data: data}, nil
	default:
		return decodeConfigPayload(kind, buf)
	}
}
