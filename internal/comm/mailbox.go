package comm

import (
	"sync"
	"time"
)

// mailKey matches an incoming message to a waiting receive.
type mailKey struct {
	from int
	tag  Tag
}

// Mailbox is the matched-receive buffer shared by all transports: an
// unbounded per-(sender, tag) queue with blocking consumers. Sends into
// a Mailbox never block, which realizes the paper's requirement that
// nodes communicate opportunistically and never stall on slow peers.
type Mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queues  map[mailKey][]Payload
	closed  bool
	timeout time.Duration
	// discard marks (from, tag) pairs whose future deliveries should be
	// dropped: the losers of a replica race (§V-B cancellation).
	discard map[mailKey]struct{}
}

// NewMailbox creates a Mailbox whose blocking receives fail with
// ErrTimeout after the given duration (0 means wait forever).
func NewMailbox(timeout time.Duration) *Mailbox {
	m := &Mailbox{
		queues:  make(map[mailKey][]Payload),
		discard: make(map[mailKey]struct{}),
		timeout: timeout,
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Deliver enqueues a message. It is called by transport receive paths
// and never blocks. Messages for cancelled (from, tag) slots are dropped.
func (m *Mailbox) Deliver(from int, tag Tag, p Payload) {
	k := mailKey{from, tag}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if _, dead := m.discard[k]; dead {
		m.mu.Unlock()
		return
	}
	m.queues[k] = append(m.queues[k], p)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Recv blocks until a message from (from, tag) is available.
func (m *Mailbox) Recv(from int, tag Tag) (Payload, error) {
	_, p, err := m.RecvAny([]int{from}, tag)
	return p, err
}

// RecvAny blocks until a message with the tag arrives from any of the
// listed senders; the first available one wins. The losing senders'
// slots for this tag are marked for discard so late duplicates do not
// accumulate. Returns the winning sender.
func (m *Mailbox) RecvAny(froms []int, tag Tag) (int, Payload, error) {
	var deadline, start time.Time
	var stop chan struct{}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.closed {
			return 0, nil, ErrClosed
		}
		if from, p, ok := m.takeLocked(froms, tag); ok {
			return from, p, nil
		}
		if m.timeout > 0 {
			if deadline.IsZero() {
				start = time.Now()
				deadline = start.Add(m.timeout)
				// A waiter exists now: wake sleepers periodically so the
				// deadline is observed even with no traffic. Started
				// lazily so the common non-blocking receive pays nothing.
				stop = make(chan struct{})
				defer close(stop)
				go func() {
					t := time.NewTicker(m.timeout / 4)
					defer t.Stop()
					for {
						select {
						case <-stop:
							return
						case <-t.C:
							m.cond.Broadcast()
						}
					}
				}()
			} else if time.Now().After(deadline) {
				return 0, nil, &TimeoutError{
					Tag:     tag,
					From:    append([]int(nil), froms...),
					Elapsed: time.Since(start),
				}
			}
		}
		m.cond.Wait()
	}
}

// takeLocked scans the senders for a ready message; on a hit it dequeues
// it and cancels the losing senders' slots. Caller holds m.mu.
func (m *Mailbox) takeLocked(froms []int, tag Tag) (int, Payload, bool) {
	for _, from := range froms {
		k := mailKey{from, tag}
		q := m.queues[k]
		if len(q) == 0 {
			continue
		}
		p := q[0]
		if len(q) == 1 {
			delete(m.queues, k)
		} else {
			m.queues[k] = q[1:]
		}
		for _, other := range froms {
			if other != from {
				ko := mailKey{other, tag}
				m.discard[ko] = struct{}{}
				delete(m.queues, ko)
			}
		}
		return from, p, true
	}
	return 0, nil, false
}

// Close wakes and fails all blocked receivers and drops queued messages.
func (m *Mailbox) Close() {
	m.mu.Lock()
	m.closed = true
	m.queues = nil
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Pending reports the number of queued, undelivered messages (for tests
// and leak diagnostics).
func (m *Mailbox) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, q := range m.queues {
		n += len(q)
	}
	return n
}

// ResetDiscards clears race-cancellation state. Callers reusing tags
// across independent rounds (e.g. a new allreduce with the same seq)
// must reset between rounds; the protocol instead never reuses tags, so
// this is primarily for tests.
func (m *Mailbox) ResetDiscards() {
	m.mu.Lock()
	m.discard = make(map[mailKey]struct{})
	m.mu.Unlock()
}
