package comm

import (
	"sync"
	"time"
)

// mailKey matches an incoming message to a waiting receive.
type mailKey struct {
	from int
	tag  Tag
}

// maxFreeQueues bounds the recycled queue-slice pool. Steady-state
// protocol traffic keeps at most a handful of (sender, tag) queues live
// at once; the bound only matters after a pathological burst.
const maxFreeQueues = 128

// Mailbox is the matched-receive buffer shared by all transports: an
// unbounded per-(sender, tag) queue with blocking consumers. Sends into
// a Mailbox never block, which realizes the paper's requirement that
// nodes communicate opportunistically and never stall on slow peers.
//
// The steady-state receive path is allocation-free: emptied queue
// slices are recycled through a small free list, and the timeout
// machinery is one lazily started watchdog goroutine per Mailbox (not
// per blocked receive), so a warm reduction round allocates nothing
// here.
type Mailbox struct {
	//kylix:lock mailbox
	mu     sync.Mutex //kylix:obsfree — observers fire after delivery state is settled and released
	cond   *sync.Cond
	queues map[mailKey][]Payload
	free   [][]Payload // recycled backing slices for emptied queues
	// byTag indexes the senders that have at least one pending message
	// under each tag, so any-source receives find an available message
	// in O(1) instead of probing every sender's queue key (quadratic in
	// the group degree) or walking the whole pending map.
	byTag    map[Tag][]int
	freeTags [][]int // recycled backing slices for emptied byTag lists
	closed   bool
	timeout  time.Duration
	// discard marks (from, tag) pairs whose future deliveries should be
	// dropped: the losers of a replica race (§V-B cancellation).
	discard map[mailKey]struct{}
	// deadStreams marks closed stream namespaces. Deliveries into a
	// dead stream are dropped (late TCP resend-ring replays and
	// faultnet-delayed frames must not re-leak index entries), and
	// blocked receives on it fail with ErrStreamClosed. Lazily
	// allocated: single-tenant mailboxes never pay for the map.
	deadStreams map[StreamID]struct{}
	// watch is set once the watchdog goroutine (periodic broadcasts so
	// deadlines are observed with no traffic) has been started.
	watch bool
	done  chan struct{} // closed by Close; stops the watchdog
	// obs, when non-nil, is notified of every completed receive. Set
	// before the mailbox is shared between goroutines.
	obs RecvObserver
}

// SetRecvObserver installs the receive observer. Must be called before
// the mailbox is used concurrently (transports install it at
// construction time).
func (m *Mailbox) SetRecvObserver(o RecvObserver) { m.obs = o }

// NewMailbox creates a Mailbox whose blocking receives fail with
// ErrTimeout after the given duration (0 means wait forever).
func NewMailbox(timeout time.Duration) *Mailbox {
	m := &Mailbox{
		queues:  make(map[mailKey][]Payload),
		byTag:   make(map[Tag][]int),
		discard: make(map[mailKey]struct{}),
		timeout: timeout,
		done:    make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Deliver enqueues a message. It is called by transport receive paths
// and never blocks. Messages for cancelled (from, tag) slots are dropped.
//
//kylix:hotpath
func (m *Mailbox) Deliver(from int, tag Tag, p Payload) {
	k := mailKey{from, tag}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if _, dead := m.discard[k]; dead {
		m.mu.Unlock()
		return
	}
	if m.streamDeadLocked(tag) {
		m.mu.Unlock()
		return
	}
	q, ok := m.queues[k]
	if !ok && len(m.free) > 0 {
		q = m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
	}
	if len(q) == 0 {
		m.indexTagLocked(k) // queue transitions empty -> pending
	}
	//kylix:allow hotpathalloc:append -- q is a recycled queue from the free list; growth is amortized zero
	m.queues[k] = append(q, p)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// streamDeadLocked reports whether tag's stream namespace has been
// closed. The len check keeps the single-tenant common case to one
// branch with no map probe. Caller holds m.mu.
func (m *Mailbox) streamDeadLocked(tag Tag) bool {
	if len(m.deadStreams) == 0 {
		return false
	}
	_, dead := m.deadStreams[tag.Stream()]
	return dead
}

// indexTagLocked records that k.from now has pending messages under
// k.tag. Caller holds m.mu.
func (m *Mailbox) indexTagLocked(k mailKey) {
	o, ok := m.byTag[k.tag]
	if !ok && len(m.freeTags) > 0 {
		o = m.freeTags[len(m.freeTags)-1]
		m.freeTags = m.freeTags[:len(m.freeTags)-1]
	}
	//kylix:allow hotpathalloc:append -- o is a recycled sender list from freeTags; growth is amortized zero
	m.byTag[k.tag] = append(o, k.from)
}

// unindexTagLocked removes k.from from k.tag's pending-sender list
// (the sender's queue just emptied). Order is not preserved — receives
// stage and fold canonically, so which pending message they see first
// does not matter. Caller holds m.mu.
func (m *Mailbox) unindexTagLocked(k mailKey) {
	o := m.byTag[k.tag]
	for i, f := range o {
		if f == k.from {
			o[i] = o[len(o)-1]
			o = o[:len(o)-1]
			break
		}
	}
	if len(o) == 0 {
		delete(m.byTag, k.tag)
		if o != nil && len(m.freeTags) < maxFreeQueues {
			//kylix:allow hotpathalloc:append -- freeTags is capped at maxFreeQueues; steady state never grows
			m.freeTags = append(m.freeTags, o[:0])
		}
	} else {
		m.byTag[k.tag] = o
	}
}

// popLocked dequeues the head of (from, tag), recycling the backing
// slice when the queue empties. Caller holds m.mu.
func (m *Mailbox) popLocked(k mailKey) (Payload, bool) {
	q := m.queues[k]
	if len(q) == 0 {
		return nil, false
	}
	p := q[0]
	q[0] = nil // release the payload reference held by the slice
	if len(q) == 1 {
		delete(m.queues, k)
		if len(m.free) < maxFreeQueues {
			//kylix:allow hotpathalloc:append -- free is capped at maxFreeQueues; steady state never grows
			m.free = append(m.free, q[:0])
		}
		m.unindexTagLocked(k)
	} else {
		m.queues[k] = q[1:]
	}
	return p, true
}

// cancelLocked marks every listed sender except the winner for discard
// under the tag and drops their queued messages. Caller holds m.mu.
func (m *Mailbox) cancelLocked(froms []int, winner int, tag Tag) {
	for _, other := range froms {
		if other != winner {
			ko := mailKey{other, tag}
			m.discard[ko] = struct{}{}
			if _, pending := m.queues[ko]; pending {
				delete(m.queues, ko)
				m.unindexTagLocked(ko)
			}
		}
	}
}

// waitState tracks one blocked receive's deadline without allocating.
type waitState struct {
	deadline, start time.Time
}

// elapsed is how long the receive has been blocked (zero when the
// message was already queued and no wait happened).
func (ws *waitState) elapsed() time.Duration {
	if ws.start.IsZero() {
		return 0
	}
	return time.Since(ws.start)
}

// waitLocked arms the timeout machinery and parks the caller on the
// condition variable; it returns false once the deadline has expired.
// Caller holds m.mu.
func (m *Mailbox) waitLocked(ws *waitState) bool {
	if ws.start.IsZero() {
		ws.start = time.Now()
		if m.timeout > 0 {
			ws.deadline = ws.start.Add(m.timeout)
			m.startWatchdogLocked()
		}
	} else if m.timeout > 0 && time.Now().After(ws.deadline) {
		return false
	}
	m.cond.Wait()
	return true
}

// observeRecv reports a finished receive to the observer, outside the
// mailbox lock. No-op without an observer (one nil check).
func (m *Mailbox) observeRecv(from int, tag Tag, p Payload, ws *waitState, err error) {
	if m.obs == nil {
		return
	}
	bytes := 0
	if p != nil {
		bytes = p.WireSize()
	}
	m.obs.ObserveRecv(from, tag, bytes, ws.elapsed(), err)
}

// startWatchdogLocked launches the per-Mailbox watchdog that broadcasts
// periodically so sleeping receivers observe their deadlines even with
// no traffic. Started lazily on the first blocking wait — a mailbox
// whose receives always find messages ready pays nothing — and exactly
// once, so the hot path never spawns goroutines. Caller holds m.mu.
//
//kylix:coldpath
//kylix:owned
func (m *Mailbox) startWatchdogLocked() {
	if m.watch {
		return
	}
	m.watch = true
	interval := m.timeout / 4
	done := m.done
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				m.cond.Broadcast()
			}
		}
	}()
}

// Recv blocks until a message from (from, tag) is available.
//
//kylix:hotpath
func (m *Mailbox) Recv(from int, tag Tag) (Payload, error) {
	var ws waitState
	m.mu.Lock()
	for {
		if m.closed {
			m.mu.Unlock()
			m.observeRecv(from, tag, nil, &ws, ErrClosed)
			return nil, ErrClosed
		}
		if p, ok := m.popLocked(mailKey{from, tag}); ok {
			m.mu.Unlock()
			m.observeRecv(from, tag, p, &ws, nil)
			return p, nil
		}
		if m.streamDeadLocked(tag) {
			m.mu.Unlock()
			m.observeRecv(from, tag, nil, &ws, ErrStreamClosed)
			return nil, ErrStreamClosed
		}
		if !m.waitLocked(&ws) {
			m.mu.Unlock()
			err := &TimeoutError{
				Tag:     tag,
				From:    []int{from},
				Elapsed: ws.elapsed(),
			}
			m.observeRecv(from, tag, nil, &ws, err)
			return nil, err
		}
	}
}

// RecvAny blocks until a message with the tag arrives from any of the
// listed senders; the first available one wins. The losing senders'
// slots for this tag are marked for discard so late duplicates do not
// accumulate. Returns the winning sender.
//
//kylix:hotpath
func (m *Mailbox) RecvAny(froms []int, tag Tag) (int, Payload, error) {
	var ws waitState
	m.mu.Lock()
	for {
		if m.closed {
			m.mu.Unlock()
			m.observeRecv(-1, tag, nil, &ws, ErrClosed)
			return 0, nil, ErrClosed
		}
		for _, from := range froms {
			if p, ok := m.popLocked(mailKey{from, tag}); ok {
				m.cancelLocked(froms, from, tag)
				m.mu.Unlock()
				m.observeRecv(from, tag, p, &ws, nil)
				return from, p, nil
			}
		}
		if m.streamDeadLocked(tag) {
			m.mu.Unlock()
			m.observeRecv(-1, tag, nil, &ws, ErrStreamClosed)
			return 0, nil, ErrStreamClosed
		}
		if !m.waitLocked(&ws) {
			m.mu.Unlock()
			err := &TimeoutError{
				Tag:     tag,
				From:    append([]int(nil), froms...),
				Elapsed: ws.elapsed(),
			}
			m.observeRecv(-1, tag, nil, &ws, err)
			return 0, nil, err
		}
	}
}

// popGroupLocked dequeues one available message from any listed sender,
// reporting the winner's group index. It walks the tag's pending-sender
// index — what has actually arrived — so the cost per receive is the
// membership check of one sender, not a queue probe per possible
// sender (which would be quadratic in the group degree over a layer).
// Caller holds m.mu.
func (m *Mailbox) popGroupLocked(groups [][]int, tag Tag) (gi, from int, p Payload, ok bool) {
	for _, from := range m.byTag[tag] {
		for gi, g := range groups {
			for _, f := range g {
				if f != from {
					continue
				}
				if p, ok := m.popLocked(mailKey{from, tag}); ok {
					return gi, from, p, true
				}
				return 0, 0, nil, false // index out of sync; cannot happen
			}
		}
	}
	return 0, 0, nil, false
}

// RecvGroup blocks until a message with the tag arrives from any sender
// in any of the groups, returning the winner. The win cancels only the
// winner's own group (its co-members carried replica copies of the same
// logical message); other groups stay fully deliverable. Singleton
// groups therefore make RecvGroup a pure arrival-order, any-source
// receive with no cancellation — the reduction hot path's primitive —
// and it allocates nothing outside the error paths.
//
//kylix:hotpath
func (m *Mailbox) RecvGroup(groups [][]int, tag Tag) (int, Payload, error) {
	var ws waitState
	m.mu.Lock()
	for {
		if m.closed {
			m.mu.Unlock()
			m.observeRecv(-1, tag, nil, &ws, ErrClosed)
			return 0, nil, ErrClosed
		}
		if gi, from, p, ok := m.popGroupLocked(groups, tag); ok {
			if len(groups[gi]) > 1 {
				m.cancelLocked(groups[gi], from, tag)
			}
			m.mu.Unlock()
			m.observeRecv(from, tag, p, &ws, nil)
			if m.obs != nil {
				m.obs.ObserveRecvGroup(tag, ws.elapsed())
			}
			return from, p, nil
		}
		if m.streamDeadLocked(tag) {
			m.mu.Unlock()
			m.observeRecv(-1, tag, nil, &ws, ErrStreamClosed)
			return 0, nil, ErrStreamClosed
		}
		if !m.waitLocked(&ws) {
			m.mu.Unlock()
			froms := make([]int, 0, len(groups))
			for _, g := range groups {
				froms = append(froms, g...)
			}
			err := &TimeoutError{
				Tag:     tag,
				From:    froms,
				Elapsed: ws.elapsed(),
			}
			m.observeRecv(-1, tag, nil, &ws, err)
			return 0, nil, err
		}
	}
}

// Close wakes and fails all blocked receivers and drops queued messages.
func (m *Mailbox) Close() {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.done)
	}
	m.queues = nil
	m.mu.Unlock()
	m.cond.Broadcast()
}

// CloseStream tears down one stream's namespace: queued messages whose
// tag belongs to the stream are dropped, their pending-sender index
// entries purged (the index-leak fix — tags indexed but never drained
// used to leave stale byTag entries forever), discard marks released,
// and the stream marked dead so late deliveries (TCP resend-ring
// replays, faultnet-delayed frames) are dropped instead of re-leaking.
// Blocked receives on the stream wake and fail with ErrStreamClosed.
// Closing DefaultStream is a no-op: stream 0 is the single-tenant
// namespace and shares its lifetime with the mailbox itself.
//
//kylix:coldpath
func (m *Mailbox) CloseStream(id StreamID) {
	if id == DefaultStream {
		return
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if m.deadStreams == nil {
		m.deadStreams = make(map[StreamID]struct{})
	}
	m.deadStreams[id] = struct{}{}
	for k := range m.queues {
		if k.tag.Stream() == id {
			delete(m.queues, k)
			m.unindexTagLocked(k)
		}
	}
	// Sweep byTag directly too: the queue walk above removes entries
	// backed by live queues, but an index entry whose queue vanished
	// through a bug would otherwise survive the close. The invariant
	// len(q)>0 ⇒ indexed makes this second loop a no-op in a healthy
	// mailbox; it is the belt to the braces.
	for tag := range m.byTag {
		if tag.Stream() == id {
			delete(m.byTag, tag)
		}
	}
	for k := range m.discard {
		if k.tag.Stream() == id {
			delete(m.discard, k)
		}
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// StreamDead reports whether the stream's namespace has been closed.
func (m *Mailbox) StreamDead(id StreamID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, dead := m.deadStreams[id]
	return dead
}

// Pending reports the number of queued, undelivered messages (for tests
// and leak diagnostics).
func (m *Mailbox) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, q := range m.queues {
		n += len(q)
	}
	return n
}

// StreamPending reports the number of queued messages belonging to one
// stream (for tests and leak diagnostics).
func (m *Mailbox) StreamPending(id StreamID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for k, q := range m.queues {
		if k.tag.Stream() == id {
			n += len(q)
		}
	}
	return n
}

// IndexedTags reports the number of tags with live pending-sender index
// entries — the leak-regression observable: after closing a stream with
// undelivered messages, its contribution here must be zero.
func (m *Mailbox) IndexedTags() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byTag)
}

// ResetDiscards clears race-cancellation state. Callers reusing tags
// across independent rounds (e.g. a new allreduce with the same seq)
// must reset between rounds; the protocol instead never reuses tags, so
// this is primarily for tests.
func (m *Mailbox) ResetDiscards() {
	m.mu.Lock()
	m.discard = make(map[mailKey]struct{})
	m.mu.Unlock()
}
