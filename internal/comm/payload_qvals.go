package comm

import (
	"encoding/binary"
	"fmt"

	"kylix/internal/sparse"
)

// wireQVals is the discriminator of the quantized value payload. It
// extends the 1-13 range assigned in payload.go / payload_config.go /
// payload_control.go / payload_streamctl.go.
const wireQVals = 14

// maxQuantVals bounds the decoded element count of one quantized block,
// mirroring the index codec's maxCompressedKeys guard: a hostile 6-byte
// header must not demand gigabytes of decode buffer.
const maxQuantVals = 1 << 26

// QVals carries a lossily encoded value block (reduce and gather passes
// under WithQuantization): the sparse.Quantization mode, the element
// count, and the mode's packed bytes — 2 per value for fp16, a 4-byte
// scale plus 1 per value for int8. The encoding is produced by the
// sparse quantization kernels on the sender; receivers dequantize on
// arrival. Data is already wire-format, so encode/decode are a header
// plus a copy, and re-encoding a decoded payload is trivially
// byte-identical (the canonical-encoding property the transports'
// memoization relies on).
//
// Like the Floats headers in the reduction arena, QVals values are
// reused round over round: Data's contents must stay untouched until
// the two-generation scratch quiescence bound allows the buffer's
// reuse (see core's scratch documentation).
type QVals struct {
	// Mode is the sparse.Quantization the block was encoded with
	// (QuantFP16 or QuantINT8; QuantOff blocks ship as Floats).
	Mode sparse.Quantization
	// N is the number of float32 values the block decodes to.
	N int
	// Data is the packed encoding, exactly
	// sparse.QuantizedSize(Mode, N) bytes.
	Data []byte
}

// Clone implements Payload.
func (p *QVals) Clone() Payload {
	return &QVals{Mode: p.Mode, N: p.N, Data: append([]byte(nil), p.Data...)}
}

// WireSize implements Payload. The encoding is
// disc, mode, uvarint(n), data — cheap enough to size directly, no memo.
func (p *QVals) WireSize() int {
	return 2 + uvarintLen(uint64(p.N)) + len(p.Data)
}

// AppendTo implements Payload.
func (p *QVals) AppendTo(buf []byte) []byte {
	buf = append(buf, wireQVals, byte(p.Mode))
	buf = binary.AppendUvarint(buf, uint64(p.N))
	return append(buf, p.Data...)
}

// RawWireSize implements RawSizer: what the same block costs as an
// uncompressed Floats payload, so traffic accounting exposes the value
// codec's compression ratio alongside the index codec's.
func (p *QVals) RawWireSize() int { return 1 + 4 + 4*p.N }

// decodeQValsPayload parses the bytes after the wireQVals
// discriminator. The mode must be a defined lossy mode, the count is
// capped, and the data length must match the mode's exact size — a
// hostile or truncated stream errors rather than yielding a block that
// would re-encode differently.
func decodeQValsPayload(buf []byte) (Payload, error) {
	if len(buf) < 1 {
		return nil, fmt.Errorf("comm: truncated qvals payload")
	}
	mode := sparse.Quantization(buf[0])
	if mode != sparse.QuantFP16 && mode != sparse.QuantINT8 {
		return nil, fmt.Errorf("comm: qvals payload with mode %d", buf[0])
	}
	n, sz := binary.Uvarint(buf[1:])
	if sz <= 0 {
		return nil, fmt.Errorf("comm: qvals payload: bad count varint")
	}
	if n > maxQuantVals {
		return nil, fmt.Errorf("comm: qvals payload claims %d values (limit %d)", n, maxQuantVals)
	}
	buf = buf[1+sz:]
	want := sparse.QuantizedSize(mode, int(n))
	if len(buf) < want {
		return nil, fmt.Errorf("comm: truncated qvals payload (%d data bytes, want %d)", len(buf), want)
	}
	data := make([]byte, want)
	copy(data, buf)
	return &QVals{Mode: mode, N: int(n), Data: data}, nil
}
