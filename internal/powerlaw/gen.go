package powerlaw

import (
	"math"
	"math/rand"

	"kylix/internal/sparse"
)

// Generator produces synthetic per-node sparse workloads whose
// rank-frequency statistics follow the paper's model: the count of
// feature r in a node's partition is Poisson(λ0 r^-α).
type Generator struct {
	// N is the feature-space size.
	N int64
	// Alpha is the power-law exponent.
	Alpha float64
	// Lambda0 is the per-node Poisson scaling factor. Use SolveLambda to
	// derive it from a target partition density.
	Lambda0 float64
}

// NewGeneratorForDensity builds a Generator whose per-node partitions
// have the given expected density (fraction of the N features present).
func NewGeneratorForDensity(n int64, alpha, density float64) (*Generator, error) {
	lambda0, err := SolveLambda(n, alpha, density)
	if err != nil {
		return nil, err
	}
	return &Generator{N: n, Alpha: alpha, Lambda0: lambda0}, nil
}

// NodeSet draws one node's feature set: feature r (1-based rank) is
// present with probability 1-exp(-λ0 r^-α). Rank r is identified with
// feature index r-1, so low indices are the high-frequency head. The
// returned set is in key order.
//
// The head (presence probability above pExact) is sampled
// feature-by-feature; the long tail uses geometric skip sampling at a
// locally-frozen rate, which is accurate because the power-law rate
// changes slowly at large r. Complexity is O(head + nonzeros) rather
// than O(N).
func (g *Generator) NodeSet(rng *rand.Rand) sparse.Set {
	const pExact = 0.05
	present := make([]int32, 0, int(float64(g.N)*Density(g.N, g.Alpha, g.Lambda0))+16)

	// Exact head: flip a coin per rank while p is large.
	r := int64(1)
	for ; r <= g.N; r++ {
		p := -math.Expm1(-g.Lambda0 * math.Pow(float64(r), -g.Alpha))
		if p < pExact {
			break
		}
		if rng.Float64() < p {
			present = append(present, int32(r-1))
		}
	}
	// Tail: between hits, skip Geometric(p) ranks with p frozen per
	// block. Blocks grow geometrically by 12.5%, so the true power-law
	// rate varies by at most ~alpha/8 within a block and the rate frozen
	// at the geometric midpoint tracks the block mean closely.
	for r <= g.N {
		blockLen := r / 8
		if blockLen < 64 {
			blockLen = 64
		}
		blockEnd := r + blockLen
		if blockEnd > g.N {
			blockEnd = g.N
		}
		geoMid := math.Sqrt(float64(r) * float64(blockEnd))
		p := -math.Expm1(-g.Lambda0 * math.Pow(geoMid, -g.Alpha))
		if p <= 1e-15 {
			r = blockEnd + 1
			continue
		}
		for r <= blockEnd {
			u := rng.Float64()
			if u == 0 {
				u = 0x1p-60 // avoid log(0); astronomically rare
			}
			jump := math.Floor(math.Log(u) / math.Log(1-p))
			if jump > float64(blockEnd-r+1) {
				jump = float64(blockEnd-r) + 1 // clamp before int conversion
			}
			r += int64(jump)
			if r > blockEnd {
				// The skip crossed the block boundary; resume from the
				// boundary with a refreshed rate. Skips are memoryless,
				// so restarting at blockEnd+1 is distribution-correct.
				r = blockEnd + 1
				break
			}
			present = append(present, int32(r-1))
			r++
		}
	}
	set, _, err := sparse.NewSet(present)
	if err != nil {
		panic("powerlaw: generator produced invalid index: " + err.Error())
	}
	return set
}

// NodeVec draws a node's feature set together with random values in
// [0,1) for each present feature.
func (g *Generator) NodeVec(rng *rand.Rand, width int) sparse.Vec {
	set := g.NodeSet(rng)
	v := sparse.NewVec(set, width)
	for i := range v.Data {
		v.Data[i] = rng.Float32()
	}
	return v
}

// ZipfRank samples a rank in [1, n] from the continuous power-law
// approximation of a Zipf(alpha) distribution by inverse-CDF. It is O(1)
// per sample and supports any alpha > 0 including alpha <= 1 (which
// math/rand's Zipf does not).
func ZipfRank(rng *rand.Rand, n int64, alpha float64) int64 {
	u := rng.Float64()
	var x float64
	if math.Abs(alpha-1) < 1e-9 {
		// CDF ∝ ln x on [1, n+1)
		x = math.Pow(float64(n)+1, u)
	} else {
		b := math.Pow(float64(n)+1, 1-alpha)
		x = math.Pow(u*(b-1)+1, 1/(1-alpha))
	}
	r := int64(x)
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r
}
