package powerlaw

import (
	"math"
	"math/rand"
	"testing"
)

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, rate := range []float64{0.1, 1, 4} {
		sum := 0
		const trials = 20000
		for i := 0; i < trials; i++ {
			sum += poisson(rng, rate)
		}
		mean := float64(sum) / trials
		if math.Abs(mean-rate) > 0.05*rate+0.02 {
			t.Errorf("poisson(%g) mean %g", rate, mean)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("non-positive rates should give 0")
	}
}

func TestOccurrencesMatchDensity(t *testing.T) {
	n := int64(1 << 14)
	gen, err := NewGeneratorForDensity(n, 1.0, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	occ := gen.Occurrences(rng)
	d := distinctDensity(occ, n)
	if math.Abs(d-0.15) > 0.03 {
		t.Fatalf("occurrence sample density %g, want ~0.15", d)
	}
	// Head features occur with multiplicity; tail mostly once.
	counts := map[int32]int{}
	for _, o := range occ {
		if o < 0 || int64(o) >= n {
			t.Fatalf("occurrence %d out of range", o)
		}
		counts[o]++
	}
	if counts[0] < 2 {
		t.Errorf("head feature multiplicity %d, expected repeated hits", counts[0])
	}
}

func TestFitRecoversAlpha(t *testing.T) {
	n := int64(1 << 14)
	for _, trueAlpha := range []float64{0.6, 1.0, 1.6} {
		lambda0, err := SolveLambda(n, trueAlpha, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		gen := &Generator{N: n, Alpha: trueAlpha, Lambda0: lambda0}
		rng := rand.New(rand.NewSource(7))
		occ := gen.Occurrences(rng)
		gotAlpha, gotLambda, err := Fit(rng, occ, n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gotAlpha-trueAlpha) > 0.25 {
			t.Errorf("true alpha %g: fitted %g (lambda %g)", trueAlpha, gotAlpha, gotLambda)
		}
		// The fitted model reproduces the sample's density.
		if d := Density(n, gotAlpha, gotLambda); math.Abs(d-distinctDensity(occ, n)) > 0.01 {
			t.Errorf("fitted model density %g vs sample %g", d, distinctDensity(occ, n))
		}
	}
}

func TestFitRejectsDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, _, err := Fit(rng, []int32{1, 2, 3}, 100); err == nil {
		t.Error("accepted tiny sample")
	}
	// Fully dense sample: density 1 is degenerate.
	occ := make([]int32, 64)
	for i := range occ {
		occ[i] = int32(i % 4)
	}
	if _, _, err := Fit(rng, occ, 4); err == nil {
		t.Error("accepted density-1 sample")
	}
}

func TestDesignFromSamplePipeline(t *testing.T) {
	// Generate a Twitter-profile partition sample at reduced n, run the
	// measure-fit-design pipeline, and check the designed network has
	// the expected heterogeneous, decreasing shape with product m.
	n := int64(1 << 14)
	lambda0, err := SolveLambda(n, 0.8, 0.21)
	if err != nil {
		t.Fatal(err)
	}
	gen := &Generator{N: n, Alpha: 0.8, Lambda0: lambda0}
	rng := rand.New(rand.NewSource(3))
	occ := gen.Occurrences(rng)

	minPacket := 0.21 * float64(n) * 4 / 10 // admits ~degree-10 top layer
	degrees, alpha, _, err := DesignFromSample(rng, occ, n, 64, 4, minPacket)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alpha-0.8) > 0.3 {
		t.Errorf("fitted alpha %g far from 0.8", alpha)
	}
	prod := 1
	for _, d := range degrees {
		prod *= d
	}
	if prod != 64 {
		t.Fatalf("degrees %v do not multiply to 64", degrees)
	}
	if len(degrees) < 2 || degrees[0] < degrees[len(degrees)-1] {
		t.Fatalf("expected heterogeneous decreasing degrees, got %v", degrees)
	}
	if degrees[0] != 8 {
		t.Errorf("top degree %d, expected 8 under the scaled floor (got %v)", degrees[0], degrees)
	}
}
