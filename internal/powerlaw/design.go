package powerlaw

import (
	"fmt"
	"sort"
)

// DesignInput parameterizes the Section IV network-design workflow.
type DesignInput struct {
	// N is the total feature count (vector length).
	N int64
	// Alpha is the power-law exponent of the data.
	Alpha float64
	// Density0 is the measured nonzero density of the initial per-node
	// partition (nonzeros / N).
	Density0 float64
	// Machines is the cluster size m; the designed degrees multiply to it.
	Machines int
	// ElemBytes is the wire size of one vector element (4 for float32
	// values or int32 indices).
	ElemBytes int
	// MinPacket is the smallest efficient message size in bytes (the
	// ~5 MB floor of Figure 2 on the paper's 10 Gb/s EC2 cluster).
	MinPacket float64
	// MaxDegree optionally caps any single layer's degree (0 = no cap).
	MaxDegree int
}

// Design runs the Section IV workflow: walk down the network, and at each
// layer pick the largest feasible degree such that the per-message packet
// stays at or above MinPacket, then recompute the next layer's density
// via Proposition 4.1. Degrees are constrained to divisors of the
// remaining machine count so that the product is exactly m. When even
// degree 2 would drop below the packet floor, the smallest prime factor
// of the remainder is used (the network must still reach m; latency then
// argues for as few further layers as possible, which the shrinking data
// guarantees).
//
// The returned degrees are non-increasing for power-law data, since data
// per node shrinks monotonically down the layers.
func Design(in DesignInput) ([]int, error) {
	if in.Machines < 1 {
		return nil, fmt.Errorf("powerlaw: need at least 1 machine, got %d", in.Machines)
	}
	if in.Machines == 1 {
		return []int{1}, nil
	}
	if in.ElemBytes <= 0 || in.MinPacket <= 0 {
		return nil, fmt.Errorf("powerlaw: ElemBytes and MinPacket must be positive")
	}
	lambda0, err := SolveLambda(in.N, in.Alpha, in.Density0)
	if err != nil {
		return nil, err
	}

	var degrees []int
	remaining := in.Machines
	k := int64(1) // partitions aggregated so far
	for remaining > 1 {
		density := Density(in.N, in.Alpha, float64(k)*lambda0)
		elems := density * float64(in.N) / float64(k)
		bytes := elems * float64(in.ElemBytes)
		dmax := int(bytes / in.MinPacket)
		if in.MaxDegree > 0 && dmax > in.MaxDegree {
			dmax = in.MaxDegree
		}
		d := largestDivisorAtMost(remaining, dmax)
		if d < 2 {
			// Packets already below the floor: minimize further layers'
			// damage by taking the smallest prime factor.
			d = smallestPrimeFactor(remaining)
		}
		degrees = append(degrees, d)
		remaining /= d
		k *= int64(d)
		if len(degrees) > 64 {
			return nil, fmt.Errorf("powerlaw: design did not converge for m=%d", in.Machines)
		}
	}
	return degrees, nil
}

// DesignWithLambda is Design for callers that already know λ0 (e.g. the
// generator) instead of a measured density.
func DesignWithLambda(in DesignInput, lambda0 float64) ([]int, error) {
	d0 := Density(in.N, in.Alpha, lambda0)
	in.Density0 = d0
	return Design(in)
}

// largestDivisorAtMost returns the largest divisor of n that is <= cap
// and >= 2, or 0 if none exists.
func largestDivisorAtMost(n, cap int) int {
	if cap >= n {
		return n
	}
	best := 0
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			if d <= cap && d > best {
				best = d
			}
			if q := n / d; q <= cap && q > best {
				best = q
			}
		}
	}
	return best
}

// smallestPrimeFactor returns the smallest prime factor of n >= 2.
func smallestPrimeFactor(n int) int {
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return d
		}
	}
	return n
}

// Factorizations enumerates all ordered factorizations of m into factors
// >= 2 (used by tests and by exhaustive design search).
func Factorizations(m int) [][]int {
	if m == 1 {
		return [][]int{{}}
	}
	var out [][]int
	divs := divisors(m)
	for _, d := range divs {
		if d < 2 {
			continue
		}
		for _, rest := range Factorizations(m / d) {
			f := append([]int{d}, rest...)
			out = append(out, f)
		}
	}
	return out
}

func divisors(m int) []int {
	var out []int
	for d := 1; d*d <= m; d++ {
		if m%d == 0 {
			out = append(out, d)
			if q := m / d; q != d {
				out = append(out, q)
			}
		}
	}
	sort.Ints(out)
	return out
}
