package powerlaw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPredictShape(t *testing.T) {
	n := int64(1 << 20)
	lambda0, err := SolveLambda(n, 1.0, 0.21)
	if err != nil {
		t.Fatal(err)
	}
	stats := Predict(n, 1.0, lambda0, []int{8, 4, 2})
	if len(stats) != 4 {
		t.Fatalf("want 4 node layers, got %d", len(stats))
	}
	if stats[0].Aggregated != 1 || stats[3].Aggregated != 64 {
		t.Fatalf("aggregation counts wrong: %+v", stats)
	}
	if math.Abs(stats[0].Density-0.21) > 1e-6 {
		t.Errorf("layer 0 density = %g, want 0.21", stats[0].Density)
	}
	// Density grows (more collisions), data per node shrinks: the Kylix
	// profile.
	for i := 1; i < len(stats); i++ {
		if stats[i].Density < stats[i-1].Density {
			t.Errorf("density not monotone at layer %d", i)
		}
		if stats[i].ElemsPerNode > stats[i-1].ElemsPerNode {
			t.Errorf("per-node data grew at layer %d: %g > %g",
				i, stats[i].ElemsPerNode, stats[i-1].ElemsPerNode)
		}
	}
}

func TestPredictTrafficKylixShape(t *testing.T) {
	// The Figure 5 claim: total communication volume decreases layer by
	// layer, and the sum over all layers is a small constant times the
	// top layer (near-optimality).
	n := int64(1 << 20)
	for _, tc := range []struct {
		density float64
		degrees []int
	}{
		{0.21, []int{8, 4, 2}},
		{0.035, []int{16, 4}},
	} {
		lambda0, err := SolveLambda(n, 1.0, tc.density)
		if err != nil {
			t.Fatal(err)
		}
		layers, err := PredictTraffic(n, 1.0, lambda0, tc.degrees)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for i, l := range layers {
			total += l.TotalElems
			if i > 0 && l.TotalElems > layers[i-1].TotalElems {
				t.Errorf("density %g: volume grew at layer %d", tc.density, l.Layer)
			}
		}
		if ratio := total / layers[0].TotalElems; ratio > float64(len(layers)) {
			t.Errorf("density %g: total/top ratio %g exceeds layer count", tc.density, ratio)
		}
	}
}

func TestPredictTrafficRejectsBadDegree(t *testing.T) {
	if _, err := PredictTraffic(100, 1, 1, []int{4, 0}); err == nil {
		t.Fatal("want error for zero degree")
	}
}

func TestDesignTwitterMatchesPaper(t *testing.T) {
	// Paper §VII-A: Twitter followers graph, 64 nodes, partition density
	// 0.21, n = 60M vertices, 4-byte elements, 5 MB packet floor
	// => optimal degrees 8 x 4 x 2 (with the rank-frequency exponent
	// alpha = 0.8, in the 0.5-2 band the paper cites for real data).
	degrees, err := Design(DesignInput{
		N:         60_000_000,
		Alpha:     0.8,
		Density0:  0.21,
		Machines:  64,
		ElemBytes: 4,
		MinPacket: 5 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{8, 4, 2}
	if len(degrees) != len(want) {
		t.Fatalf("Design = %v, want %v", degrees, want)
	}
	for i := range want {
		if degrees[i] != want[i] {
			t.Fatalf("Design = %v, want %v", degrees, want)
		}
	}
}

func TestDesignYahooShape(t *testing.T) {
	// Yahoo web graph: n = 1.4B, density 0.035. The paper reports 16x4;
	// the literal workflow with 4-byte elements admits degree 32 at the
	// top (196MB/5MB = 39). We assert the structural properties the
	// paper's design exhibits: exactly two layers, steeply decreasing,
	// product 64. With MaxDegree=16 (a practical fan-out cap), the
	// paper's exact 16x4 comes out.
	degrees, err := Design(DesignInput{
		N:         1_400_000_000,
		Alpha:     1.0,
		Density0:  0.035,
		Machines:  64,
		ElemBytes: 4,
		MinPacket: 5 << 20,
		MaxDegree: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(degrees) != 2 || degrees[0] != 16 || degrees[1] != 4 {
		t.Fatalf("Design = %v, want [16 4]", degrees)
	}
}

func TestDesignInvariants(t *testing.T) {
	for _, m := range []int{2, 4, 6, 12, 32, 64, 128} {
		for _, density := range []float64{0.01, 0.2, 0.8} {
			degrees, err := Design(DesignInput{
				N: 1 << 22, Alpha: 1.0, Density0: density,
				Machines: m, ElemBytes: 4, MinPacket: 64 << 10,
			})
			if err != nil {
				t.Fatalf("m=%d density=%g: %v", m, density, err)
			}
			prod := 1
			for _, d := range degrees {
				if d < 2 {
					t.Fatalf("m=%d: degree %d < 2", m, d)
				}
				prod *= d
			}
			// Degrees decrease down the layers whenever the packet floor
			// is not binding (the paper's optimality property); when the
			// floor forces prime-factor fallbacks the order can invert,
			// so monotonicity is asserted only for the dense case.
			if density >= 0.2 {
				for i := 1; i < len(degrees); i++ {
					if degrees[i] > degrees[i-1] {
						t.Errorf("m=%d density=%g: degrees %v not non-increasing", m, density, degrees)
					}
				}
			}
			if prod != m {
				t.Fatalf("m=%d: degrees %v multiply to %d", m, degrees, prod)
			}
		}
	}
}

func TestDesignSingleMachine(t *testing.T) {
	degrees, err := Design(DesignInput{N: 100, Alpha: 1, Density0: 0.5, Machines: 1, ElemBytes: 4, MinPacket: 1})
	if err != nil || len(degrees) != 1 || degrees[0] != 1 {
		t.Fatalf("Design(m=1) = %v, %v", degrees, err)
	}
}

func TestDesignRejectsBadInput(t *testing.T) {
	if _, err := Design(DesignInput{N: 100, Alpha: 1, Density0: 0.5, Machines: 0, ElemBytes: 4, MinPacket: 1}); err == nil {
		t.Error("accepted m=0")
	}
	if _, err := Design(DesignInput{N: 100, Alpha: 1, Density0: 0.5, Machines: 4, ElemBytes: 0, MinPacket: 1}); err == nil {
		t.Error("accepted ElemBytes=0")
	}
	if _, err := Design(DesignInput{N: 100, Alpha: 1, Density0: 2, Machines: 4, ElemBytes: 4, MinPacket: 1}); err == nil {
		t.Error("accepted density=2")
	}
}

func TestDesignWithLambda(t *testing.T) {
	lambda0, _ := SolveLambda(1<<20, 1, 0.21)
	d1, err := DesignWithLambda(DesignInput{N: 1 << 20, Alpha: 1, Machines: 16, ElemBytes: 4, MinPacket: 4 << 10}, lambda0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Design(DesignInput{N: 1 << 20, Alpha: 1, Density0: 0.21, Machines: 16, ElemBytes: 4, MinPacket: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != len(d2) {
		t.Fatalf("lambda and density paths disagree: %v vs %v", d1, d2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("lambda and density paths disagree: %v vs %v", d1, d2)
		}
	}
}

func TestLargestDivisorAtMost(t *testing.T) {
	cases := []struct{ n, cap, want int }{
		{64, 10, 8}, {64, 39, 32}, {64, 64, 64}, {64, 100, 64},
		{64, 1, 0}, {12, 5, 4}, {7, 6, 0}, {7, 7, 7}, {36, 9, 9},
	}
	for _, c := range cases {
		if got := largestDivisorAtMost(c.n, c.cap); got != c.want {
			t.Errorf("largestDivisorAtMost(%d,%d) = %d, want %d", c.n, c.cap, got, c.want)
		}
	}
}

func TestSmallestPrimeFactor(t *testing.T) {
	cases := []struct{ n, want int }{{2, 2}, {9, 3}, {35, 5}, {64, 2}, {97, 97}}
	for _, c := range cases {
		if got := smallestPrimeFactor(c.n); got != c.want {
			t.Errorf("smallestPrimeFactor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestFactorizations(t *testing.T) {
	fs := Factorizations(8)
	// 8 = 8, 2*4, 4*2, 2*2*2 -> 4 ordered factorizations.
	if len(fs) != 4 {
		t.Fatalf("Factorizations(8) has %d entries: %v", len(fs), fs)
	}
	for _, f := range fs {
		prod := 1
		for _, d := range f {
			prod *= d
		}
		if prod != 8 {
			t.Errorf("factorization %v does not multiply to 8", f)
		}
	}
}

// TestDesignPropertyQuick drives the design workflow with randomized
// problem parameters: the output must always multiply to the machine
// count with every degree >= 2 (or be the trivial [1]).
func TestDesignPropertyQuick(t *testing.T) {
	f := func(mSeed, dSeed, pSeed uint8) bool {
		m := 2 + int(mSeed)%127
		density := 0.01 + float64(dSeed%90)/100
		minPacket := float64(int64(64) << (pSeed % 10))
		degrees, err := Design(DesignInput{
			N: 1 << 14, Alpha: 0.8, Density0: density,
			Machines: m, ElemBytes: 4, MinPacket: minPacket,
		})
		if err != nil {
			return false
		}
		prod := 1
		for _, d := range degrees {
			if d < 2 {
				return false
			}
			prod *= d
		}
		return prod == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
