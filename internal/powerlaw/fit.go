package powerlaw

import (
	"fmt"
	"math"
	"math/rand"
)

// Fit estimates power-law parameters (alpha, lambda0) for a dataset from
// a sample of raw feature occurrences (with multiplicity — e.g. all edge
// endpoints of one machine's partition). This implements the last
// paragraph of the paper's §IV: when the data's exponent is unknown,
// "draw p samples from the sparse set for various p and measure the
// density", building an empirical density-vs-scale curve; here that
// curve is matched against the f(λ) family so Proposition 4.1 and the
// design workflow apply unchanged.
//
// n is the feature-space size. The fit grids alpha, solves lambda for
// each alpha from the full sample's density, and scores candidates on
// the subsample densities at fractions of the data.
func Fit(rng *rand.Rand, occurrences []int32, n int64) (alpha, lambda0 float64, err error) {
	if len(occurrences) < 16 {
		return 0, 0, fmt.Errorf("powerlaw: need at least 16 occurrences to fit, got %d", len(occurrences))
	}
	fullDensity := distinctDensity(occurrences, n)
	if fullDensity <= 0 || fullDensity >= 1 {
		return 0, 0, fmt.Errorf("powerlaw: degenerate sample density %g", fullDensity)
	}

	// Empirical anchor points: density after subsampling to fractions of
	// the occurrences (averaged over a few shuffles).
	fractions := []float64{0.5, 0.25, 0.125}
	empirical := make([]float64, len(fractions))
	const shuffles = 4
	work := append([]int32(nil), occurrences...)
	for s := 0; s < shuffles; s++ {
		rng.Shuffle(len(work), func(i, j int) { work[i], work[j] = work[j], work[i] })
		for fi, f := range fractions {
			p := int(float64(len(work)) * f)
			if p < 1 {
				p = 1
			}
			empirical[fi] += distinctDensity(work[:p], n)
		}
	}
	for fi := range empirical {
		empirical[fi] /= shuffles
	}

	// Grid over alpha: for each candidate, lambda comes from the full
	// density; the subsample of fraction f of a Poisson(λ r^-α) process
	// is Poisson(fλ r^-α), so predicted subsample density is f(f·λ).
	// Two-stage grid: coarse sweep, then refine around the winner. Each
	// candidate costs a SolveLambda bisection, so the grid is kept small.
	best := math.Inf(1)
	coarse := func(lo, hi, step float64) {
		for a := lo; a <= hi+1e-9; a += step {
			l, err := SolveLambda(n, a, fullDensity)
			if err != nil {
				continue
			}
			score := 0.0
			for fi, f := range fractions {
				pred := Density(n, a, f*l)
				diff := pred - empirical[fi]
				score += diff * diff
			}
			if score < best {
				best = score
				alpha, lambda0 = a, l
			}
		}
	}
	coarse(0.3, 2.5, 0.2)
	if !math.IsInf(best, 1) {
		center := alpha
		coarse(math.Max(0.3, center-0.2), center+0.2, 0.05)
	}
	if math.IsInf(best, 1) {
		return 0, 0, fmt.Errorf("powerlaw: fit failed for density %g", fullDensity)
	}
	return alpha, lambda0, nil
}

// distinctDensity is the fraction of the n features present at least
// once in the occurrence list.
func distinctDensity(occurrences []int32, n int64) float64 {
	seen := make(map[int32]struct{}, len(occurrences))
	for _, o := range occurrences {
		seen[o] = struct{}{}
	}
	return float64(len(seen)) / float64(n)
}

// DesignFromSample runs the full measure-then-design pipeline of §IV:
// fit (alpha, lambda0) from one partition's raw occurrences, then choose
// optimal degrees. It returns the degrees together with the fitted
// parameters for reporting.
func DesignFromSample(rng *rand.Rand, occurrences []int32, n int64, machines, elemBytes int, minPacket float64) (degrees []int, alpha, lambda0 float64, err error) {
	alpha, lambda0, err = Fit(rng, occurrences, n)
	if err != nil {
		return nil, 0, 0, err
	}
	degrees, err = DesignWithLambda(DesignInput{
		N: n, Alpha: alpha, Machines: machines,
		ElemBytes: elemBytes, MinPacket: minPacket,
	}, lambda0)
	if err != nil {
		return nil, 0, 0, err
	}
	return degrees, alpha, lambda0, nil
}

// Occurrences draws a raw occurrence sample from a Generator: the
// multiset of feature hits of one node partition (useful for tests and
// for demonstrating the fit pipeline on synthetic data).
func (g *Generator) Occurrences(rng *rand.Rand) []int32 {
	var out []int32
	// Head: exact Poisson draws while the rate is non-negligible.
	for r := int64(1); r <= g.N; r++ {
		rate := g.Lambda0 * math.Pow(float64(r), -g.Alpha)
		if rate < 1e-4 && r > 4096 {
			// Tail: presence sampling is sufficient (multiplicity ~1).
			set := (&Generator{N: g.N, Alpha: g.Alpha, Lambda0: g.Lambda0}).tailFrom(rng, r)
			out = append(out, set...)
			break
		}
		for c := poisson(rng, rate); c > 0; c-- {
			out = append(out, int32(r-1))
		}
	}
	return out
}

// tailFrom samples tail presences from rank r0 upward (indices r-1).
func (g *Generator) tailFrom(rng *rand.Rand, r0 int64) []int32 {
	var present []int32
	r := r0
	for r <= g.N {
		blockLen := r / 8
		if blockLen < 64 {
			blockLen = 64
		}
		blockEnd := r + blockLen
		if blockEnd > g.N {
			blockEnd = g.N
		}
		geoMid := math.Sqrt(float64(r) * float64(blockEnd))
		p := -math.Expm1(-g.Lambda0 * math.Pow(geoMid, -g.Alpha))
		if p <= 1e-15 {
			r = blockEnd + 1
			continue
		}
		for r <= blockEnd {
			u := rng.Float64()
			if u == 0 {
				u = 0x1p-60
			}
			jump := math.Floor(math.Log(u) / math.Log(1-p))
			if jump > float64(blockEnd-r+1) {
				jump = float64(blockEnd-r) + 1
			}
			r += int64(jump)
			if r > blockEnd {
				r = blockEnd + 1
				break
			}
			present = append(present, int32(r-1))
			r++
		}
	}
	return present
}

// poisson draws Poisson(rate) by inversion (rates here are small).
func poisson(rng *rand.Rand, rate float64) int {
	if rate <= 0 {
		return 0
	}
	l := math.Exp(-rate)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1<<20 {
			return k // unreachable for sane rates; guards pathological input
		}
	}
}
