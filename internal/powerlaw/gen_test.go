package powerlaw

import (
	"math"
	"math/rand"
	"testing"

	"kylix/internal/sparse"
)

func TestGeneratorDensityCalibration(t *testing.T) {
	n := int64(1 << 16)
	for _, target := range []float64{0.035, 0.21, 0.5} {
		gen, err := NewGeneratorForDensity(n, 1.0, target)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		total := 0
		const trials = 20
		for i := 0; i < trials; i++ {
			set := gen.NodeSet(rng)
			if !set.IsSorted() {
				t.Fatal("generated set not sorted")
			}
			total += len(set)
		}
		got := float64(total) / float64(trials) / float64(n)
		if math.Abs(got-target) > 0.04*target+0.01 {
			t.Errorf("target density %g: measured %g", target, got)
		}
	}
}

func TestGeneratorHeadHeavier(t *testing.T) {
	// Power law: the head (low indices) must be present far more often
	// than the tail.
	n := int64(1 << 16)
	gen, err := NewGeneratorForDensity(n, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	headHits, tailHits := 0, 0
	for i := 0; i < 30; i++ {
		set := gen.NodeSet(rng)
		for _, idx := range set.Indices() {
			if int64(idx) < n/100 {
				headHits++
			} else if int64(idx) >= n-n/100 {
				tailHits++
			}
		}
	}
	if headHits <= 4*tailHits {
		t.Errorf("head hits %d not dominating tail hits %d", headHits, tailHits)
	}
}

func TestGeneratorIndicesInRange(t *testing.T) {
	gen := &Generator{N: 1000, Alpha: 0.8, Lambda0: 5}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		for _, idx := range gen.NodeSet(rng).Indices() {
			if idx < 0 || int64(idx) >= gen.N {
				t.Fatalf("index %d out of [0,%d)", idx, gen.N)
			}
		}
	}
}

func TestGeneratorSkipSamplingMatchesExact(t *testing.T) {
	// Compare the skip-sampled tail against an exact per-rank Bernoulli
	// reference distributionally: expected nonzero count must agree.
	n := int64(1 << 14)
	alpha, lambda := 1.0, 2.0
	gen := &Generator{N: n, Alpha: alpha, Lambda0: lambda}
	want := Density(n, alpha, lambda) * float64(n)
	rng := rand.New(rand.NewSource(4))
	total := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		total += len(gen.NodeSet(rng))
	}
	got := float64(total) / trials
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("expected ~%g nonzeros, measured %g", want, got)
	}
}

func TestNodeVec(t *testing.T) {
	gen := &Generator{N: 4096, Alpha: 1, Lambda0: 3}
	rng := rand.New(rand.NewSource(5))
	v := gen.NodeVec(rng, 2)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(v.Keys) == 0 {
		t.Fatal("empty generated vec")
	}
}

func TestZipfRankBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, alpha := range []float64{0.5, 1.0, 1.5, 2.0} {
		for i := 0; i < 2000; i++ {
			r := ZipfRank(rng, 1000, alpha)
			if r < 1 || r > 1000 {
				t.Fatalf("alpha %g: rank %d out of [1,1000]", alpha, r)
			}
		}
	}
}

func TestZipfRankSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := int64(10000)
	for _, alpha := range []float64{0.7, 1.0, 1.4} {
		top, bottom := 0, 0
		for i := 0; i < 20000; i++ {
			r := ZipfRank(rng, n, alpha)
			if r <= n/100 {
				top++
			}
			if r > n-n/100 {
				bottom++
			}
		}
		if top <= 3*bottom {
			t.Errorf("alpha %g: top-1%% hits %d vs bottom-1%% hits %d; not power-law skewed", alpha, top, bottom)
		}
	}
}

func TestZipfRankAlphaOrdering(t *testing.T) {
	// Larger alpha concentrates more mass at low ranks.
	rng := rand.New(rand.NewSource(8))
	mean := func(alpha float64) float64 {
		s := 0.0
		for i := 0; i < 20000; i++ {
			s += float64(ZipfRank(rng, 100000, alpha))
		}
		return s / 20000
	}
	m05, m20 := mean(0.5), mean(2.0)
	if m20 >= m05 {
		t.Errorf("mean rank should fall with alpha: alpha=0.5 -> %g, alpha=2.0 -> %g", m05, m20)
	}
}

// The generated per-node sets, unioned across all m nodes, should have
// density predicted by Prop 4.1 at the bottom layer (K = m).
func TestGeneratorMatchesProp41(t *testing.T) {
	n := int64(1 << 14)
	m := 16
	gen, err := NewGeneratorForDensity(n, 1.0, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	sets := make([]sparse.Set, m)
	for i := range sets {
		sets[i] = gen.NodeSet(rng)
	}
	union := sparse.TreeUnion(sets)
	want := Density(n, 1.0, float64(m)*gen.Lambda0)
	got := float64(len(union)) / float64(n)
	if math.Abs(got-want) > 0.05*want+0.01 {
		t.Errorf("union density %g, Prop 4.1 predicts %g", got, want)
	}
}
