// Package powerlaw models the power-law feature statistics that drive
// Kylix's network design (paper Section IV). It provides the density
// function f(λ) of Equation 7, its inverse, the per-layer density and
// message-size predictions of Proposition 4.1, the optimal-degree design
// workflow, and synthetic workload generators whose rank-frequency
// profile follows f_r ~ Poisson(λ r^-α).
package powerlaw

import (
	"fmt"
	"math"
)

// exactLimit is the feature count below which Density sums every rank
// exactly. Above it, the head is summed exactly and the tail integrated.
const exactLimit = 1 << 16

// headTerms is the number of exact head terms used in hybrid mode. The
// integrand changes fastest at small r, so an exact head plus a smooth
// log-spaced Simpson tail gives ~1e-6 relative accuracy.
const headTerms = 4096

// Density evaluates f(λ): the expected fraction of the n features that
// are present (occur at least once) in a vector whose rank-r feature
// count is Poisson(λ r^-α):
//
//	f(λ) = (1/n) Σ_{r=1..n} (1 - exp(-λ r^-α))
//
// This is Equation 7 of the paper. λ must be >= 0 and n >= 1.
func Density(n int64, alpha, lambda float64) float64 {
	if n <= 0 {
		panic("powerlaw: Density needs n >= 1")
	}
	if lambda <= 0 {
		return 0
	}
	if n <= exactLimit {
		return densityExact(1, n, alpha, lambda) / float64(n)
	}
	head := densityExact(1, headTerms, alpha, lambda)
	tail := densityIntegral(headTerms, float64(n), alpha, lambda)
	return (head + tail) / float64(n)
}

// densityExact sums (1-exp(-λ r^-α)) for r in [lo, hi].
func densityExact(lo, hi int64, alpha, lambda float64) float64 {
	sum := 0.0
	for r := lo; r <= hi; r++ {
		sum += -math.Expm1(-lambda * math.Pow(float64(r), -alpha))
	}
	return sum
}

// densityIntegral approximates Σ_{r=lo+1..hi} (1-exp(-λ r^-α)) by the
// midpoint-corrected integral over [lo+0.5, hi+0.5] using composite
// Simpson on log-spaced panels.
func densityIntegral(lo int64, hi, alpha, lambda float64) float64 {
	a, b := float64(lo)+0.5, hi+0.5
	if b <= a {
		return 0
	}
	g := func(x float64) float64 { return -math.Expm1(-lambda * math.Pow(x, -alpha)) }
	// Log-spaced panels: the integrand decays like a power of x, so
	// equal ratios give equal difficulty.
	const panels = 256
	ratio := math.Pow(b/a, 1.0/panels)
	total := 0.0
	x0 := a
	for p := 0; p < panels; p++ {
		x1 := x0 * ratio
		if p == panels-1 {
			x1 = b
		}
		mid := (x0 + x1) / 2
		total += (x1 - x0) / 6 * (g(x0) + 4*g(mid) + g(x1))
		x0 = x1
	}
	return total
}

// SolveLambda inverts the density function: it returns λ such that
// Density(n, alpha, λ) == density. This is the calibration step of the
// Section IV workflow ("the scaling factor λ0 is implicitly determined by
// the density of the initial partition at each node which is
// measurable"). density must be in (0, 1).
func SolveLambda(n int64, alpha, density float64) (float64, error) {
	if density <= 0 || density >= 1 {
		return 0, fmt.Errorf("powerlaw: density %g out of (0,1)", density)
	}
	lo, hi := 1e-12, 1.0
	for Density(n, alpha, hi) < density {
		hi *= 4
		if hi > 1e18 {
			return 0, fmt.Errorf("powerlaw: density %g unreachable (alpha=%g n=%d)", density, alpha, n)
		}
	}
	// Bisection: f is monotone increasing in λ.
	for iter := 0; iter < 200 && hi/lo > 1+1e-12; iter++ {
		mid := math.Sqrt(lo * hi) // geometric: λ spans many decades
		if Density(n, alpha, mid) < density {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi), nil
}
