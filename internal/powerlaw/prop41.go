package powerlaw

import "fmt"

// LayerStat is the Proposition 4.1 prediction for one node layer of a
// nested butterfly over power-law data.
type LayerStat struct {
	// Layer is the node-layer number, 0 (top, initial partition) to l
	// (bottom, fully reduced).
	Layer int
	// Aggregated is the number of original per-node partitions whose sum
	// a node at this layer holds (the K of Proposition 4.1; 1 at the top,
	// m at the bottom).
	Aggregated int64
	// Density is the expected fraction of nonzero features within the
	// node's hash range: f(K·λ0).
	Density float64
	// RangeLen is the length of the node's index range, n / K.
	RangeLen float64
	// ElemsPerNode is the expected nonzero count per node:
	// Density * RangeLen (the P_i of Equation 5, in elements).
	ElemsPerNode float64
}

// Predict evaluates Proposition 4.1 for every node layer of a butterfly
// with the given degrees. n is the total feature count, alpha the
// power-law exponent and lambda0 the Poisson scaling factor of the
// initial per-node partition.
func Predict(n int64, alpha, lambda0 float64, degrees []int) []LayerStat {
	stats := make([]LayerStat, 0, len(degrees)+1)
	k := int64(1)
	for i := 0; i <= len(degrees); i++ {
		d := Density(n, alpha, float64(k)*lambda0)
		rangeLen := float64(n) / float64(k)
		stats = append(stats, LayerStat{
			Layer:        i,
			Aggregated:   k,
			Density:      d,
			RangeLen:     rangeLen,
			ElemsPerNode: d * rangeLen,
		})
		if i < len(degrees) {
			k *= int64(degrees[i])
		}
	}
	return stats
}

// CommLayer is the predicted traffic of one communication layer.
type CommLayer struct {
	// Layer is the communication-layer number, 1..l.
	Layer int
	// Degree is the butterfly degree d_i of this layer.
	Degree int
	// MsgElems is the expected per-message element count: a node at
	// layer i-1 splits its data d_i ways.
	MsgElems float64
	// TotalElems is the network-wide element volume of the downward pass
	// at this layer (m nodes each sending their whole layer-(i-1)
	// holdings, counting local "self" packets as the paper's Figure 5
	// does).
	TotalElems float64
}

// PredictTraffic derives per-communication-layer message sizes and total
// volumes from Proposition 4.1. m must equal the product of degrees.
func PredictTraffic(n int64, alpha, lambda0 float64, degrees []int) ([]CommLayer, error) {
	m := 1
	for _, d := range degrees {
		if d < 1 {
			return nil, fmt.Errorf("powerlaw: invalid degree %d", d)
		}
		m *= d
	}
	stats := Predict(n, alpha, lambda0, degrees)
	layers := make([]CommLayer, len(degrees))
	for i, d := range degrees {
		per := stats[i].ElemsPerNode
		layers[i] = CommLayer{
			Layer:      i + 1,
			Degree:     d,
			MsgElems:   per / float64(d),
			TotalElems: float64(m) * per,
		}
	}
	return layers, nil
}
