package powerlaw

import (
	"math"
	"testing"
)

// bruteDensity is the O(n) literal evaluation of Equation 7.
func bruteDensity(n int64, alpha, lambda float64) float64 {
	sum := 0.0
	for r := int64(1); r <= n; r++ {
		sum += 1 - math.Exp(-lambda*math.Pow(float64(r), -alpha))
	}
	return sum / float64(n)
}

func TestDensityMatchesBruteForce(t *testing.T) {
	for _, n := range []int64{1, 10, 1000, 60000} {
		for _, alpha := range []float64{0.5, 1.0, 2.0} {
			for _, lambda := range []float64{0.01, 1, 100, 1e5} {
				got := Density(n, alpha, lambda)
				want := bruteDensity(n, alpha, lambda)
				if math.Abs(got-want) > 1e-9+1e-6*want {
					t.Errorf("Density(%d,%g,%g) = %g, brute = %g", n, alpha, lambda, got, want)
				}
			}
		}
	}
}

func TestDensityHybridAccuracy(t *testing.T) {
	// Above exactLimit the hybrid integral path engages; compare with
	// brute force at a size just over the limit.
	n := int64(exactLimit + 50000)
	for _, alpha := range []float64{0.7, 1.3} {
		for _, lambda := range []float64{0.5, 50} {
			got := Density(n, alpha, lambda)
			want := bruteDensity(n, alpha, lambda)
			if math.Abs(got-want) > 1e-4*want+1e-9 {
				t.Errorf("hybrid Density(%d,%g,%g) = %g, brute = %g (rel err %g)",
					n, alpha, lambda, got, want, math.Abs(got-want)/want)
			}
		}
	}
}

func TestDensityMonotoneInLambda(t *testing.T) {
	prev := 0.0
	for _, lambda := range []float64{0.001, 0.01, 0.1, 1, 10, 100, 1000} {
		d := Density(1e6, 1.0, lambda)
		if d < prev {
			t.Fatalf("density decreased: f(%g) = %g < %g", lambda, d, prev)
		}
		if d < 0 || d > 1 {
			t.Fatalf("density %g out of [0,1]", d)
		}
		prev = d
	}
}

func TestDensityEdgeCases(t *testing.T) {
	if d := Density(100, 1.0, 0); d != 0 {
		t.Errorf("Density(λ=0) = %g, want 0", d)
	}
	// Huge λ saturates: every feature present.
	if d := Density(1000, 0.5, 1e12); d < 0.999 {
		t.Errorf("Density(λ=1e12) = %g, want ~1", d)
	}
}

func TestDensityPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for n=0")
		}
	}()
	Density(0, 1, 1)
}

func TestSolveLambdaRoundTrip(t *testing.T) {
	for _, n := range []int64{1000, 1 << 16} {
		for _, alpha := range []float64{0.5, 1.0, 2.0} {
			for _, target := range []float64{0.035, 0.21, 0.5, 0.9} {
				lambda, err := SolveLambda(n, alpha, target)
				if err != nil {
					t.Fatalf("SolveLambda(%d,%g,%g): %v", n, alpha, target, err)
				}
				got := Density(n, alpha, lambda)
				if math.Abs(got-target) > 1e-6 {
					t.Errorf("round trip n=%d alpha=%g: density(λ=%g) = %g, want %g",
						n, alpha, lambda, got, target)
				}
			}
		}
	}
}

func TestSolveLambdaRejectsBadDensity(t *testing.T) {
	for _, d := range []float64{0, 1, -0.5, 2} {
		if _, err := SolveLambda(1000, 1, d); err == nil {
			t.Errorf("SolveLambda accepted density %g", d)
		}
	}
}

// Figure 4's qualitative claim: the density curve has only a modest
// dependence on alpha once λ is normalized by λ_0.9 (where f(λ_0.9)=0.9).
func TestFigure4AlphaInsensitivity(t *testing.T) {
	n := int64(1 << 15)
	norm := map[float64]float64{}
	for _, alpha := range []float64{0.5, 1.0, 2.0} {
		l9, err := SolveLambda(n, alpha, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		norm[alpha] = l9
	}
	// At the same normalized λ/λ_0.9, densities across alphas should be
	// within a modest band of each other.
	for _, frac := range []float64{0.01, 0.1, 0.5, 1.0} {
		var lo, hi float64 = 2, -1
		for alpha, l9 := range norm {
			d := Density(n, alpha, frac*l9)
			_ = alpha
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		if hi-lo > 0.35 {
			t.Errorf("normalized λ fraction %g: density spread %g too wide (lo=%g hi=%g)",
				frac, hi-lo, lo, hi)
		}
	}
}
