// Package leakcheck fails tests that leave goroutines behind. It is
// the runtime complement of the static goleak analyzer: the analyzer
// proves every owned `go` statement has a join path, and leakcheck
// verifies at test teardown that the joins actually fired.
//
// Usage:
//
//	func TestSomething(t *testing.T) {
//		defer leakcheck.Check(t)()
//		// ... exercise code that spawns goroutines ...
//	}
//
// or, for a whole suite, call leakcheck.Check from a helper that every
// test defers. Check snapshots the live goroutines at call time and
// returns a function that, when invoked, waits (with retries, up to
// the grace period) for the goroutine set to shrink back to the
// snapshot. Goroutines present before the test are never blamed on it,
// so package-level singletons and the testing framework's own workers
// are tolerated automatically.
package leakcheck

import (
	"runtime"
	"sort"
	"strings"
	"time"
)

// grace is how long the checker polls for stragglers before declaring
// a leak. Teardown joins are asynchronous (Close returns after
// signalling, loops notice a tick later), so an immediate snapshot
// would flake; two seconds covers every bounded join in the tree
// (tcpnet's flush grace, membership's heartbeat wakeup) with margin.
const grace = 2 * time.Second

// TB is the subset of testing.TB leakcheck needs, split out so the
// package's own tests can capture failures instead of failing.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// Check snapshots the current goroutines and returns the verification
// function to run at test end (defer leakcheck.Check(t)()).
func Check(t TB) func() {
	t.Helper()
	before := map[string]bool{}
	for id := range stacks() {
		before[id] = true
	}
	return func() {
		t.Helper()
		deadline := time.Now().Add(grace)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		for _, g := range leaked {
			t.Errorf("leaked goroutine:\n%s", g)
		}
	}
}

// leakedSince returns the stacks of goroutines live now that were not
// in the before snapshot and are not infrastructure the test cannot
// control.
func leakedSince(before map[string]bool) []string {
	var leaked []string
	for id, g := range stacks() {
		if !before[id] && !ignorable(g.stack) {
			leaked = append(leaked, g.stack)
		}
	}
	sort.Strings(leaked)
	return leaked
}

// goroutine is one parsed entry of a full runtime stack dump.
type goroutine struct {
	id    string
	stack string
}

// stacks dumps every goroutine and indexes them by id. Identity is the
// goroutine id, not the stack text: a pre-existing goroutine that
// moved between poll points (e.g. from running to chan receive) must
// still count as pre-existing.
func stacks() map[string]goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	out := map[string]goroutine{}
	for _, chunk := range strings.Split(string(buf), "\n\n") {
		header, _, _ := strings.Cut(chunk, "\n")
		// Headers look like "goroutine 42 [chan receive]:".
		fields := strings.Fields(header)
		if len(fields) < 2 || fields[0] != "goroutine" {
			continue
		}
		out[fields[1]] = goroutine{id: fields[1], stack: chunk}
	}
	return out
}

// ignorable reports goroutines no test owns: the runtime's own
// workers, the testing framework, and this checker's caller.
func ignorable(stack string) bool {
	for _, frame := range []string{
		"testing.(*T).Run",
		"testing.RunTests",
		"testing.Main",
		"testing.tRunner",
		"runtime.goexit0",
		"created by runtime",
		"runtime/pprof",
		"signal.signal_recv",
		"go.itab",
	} {
		if strings.Contains(stack, frame) {
			return true
		}
	}
	return false
}
