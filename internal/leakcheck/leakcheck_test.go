package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// recorder captures Errorf calls so the tests can assert on failures
// without failing themselves.
type recorder struct {
	errs []string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.errs = append(r.errs, format)
	_ = args
}

func TestCleanTestPasses(t *testing.T) {
	rec := &recorder{}
	check := Check(rec)
	// Spawn and fully join a goroutine: no leak.
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	check()
	if len(rec.errs) != 0 {
		t.Fatalf("clean run reported leaks: %v", rec.errs)
	}
}

func TestStragglerWithinGraceIsTolerated(t *testing.T) {
	rec := &recorder{}
	check := Check(rec)
	// The goroutine outlives the test body but exits well inside the
	// grace window — the retry loop must absorb it.
	go func() { time.Sleep(200 * time.Millisecond) }()
	check()
	if len(rec.errs) != 0 {
		t.Fatalf("straggler inside grace reported as leak: %v", rec.errs)
	}
}

func TestLeakIsReported(t *testing.T) {
	rec := &recorder{}
	check := Check(rec)
	quit := make(chan struct{})
	defer close(quit)
	go func() { <-quit }() // parked past any grace: a real leak
	check()
	if len(rec.errs) == 0 {
		t.Fatal("parked goroutine not reported")
	}
	for _, e := range rec.errs {
		if !strings.Contains(e, "leaked goroutine") {
			t.Fatalf("unexpected error text %q", e)
		}
	}
}

func TestPreexistingGoroutinesAreNotBlamed(t *testing.T) {
	quit := make(chan struct{})
	defer close(quit)
	go func() { <-quit }() // alive before the snapshot
	rec := &recorder{}
	check := Check(rec)
	check()
	if len(rec.errs) != 0 {
		t.Fatalf("pre-existing goroutine blamed on the test: %v", rec.errs)
	}
}
