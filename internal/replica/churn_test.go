package replica

import (
	"math/rand"
	"testing"
	"time"

	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/memnet"
	"kylix/internal/sparse"
	"kylix/internal/topo"
)

// TestChurnSoak runs many allreduce rounds on a replicated cluster while
// machines die at random between rounds — killing only machines whose
// replica partner is still alive, the regime the §V analysis promises to
// survive. Every round's results must stay exactly correct.
func TestChurnSoak(t *testing.T) {
	const (
		logical = 8
		s       = 2
		phys    = logical * s
		rounds  = 6
	)
	bf := topo.MustNew([]int{4, 2})
	rng := rand.New(rand.NewSource(2024))

	// Static workload: logical rank q contributes q+1 to feature 0 and
	// to a private feature.
	wantShared := float32(0)
	for q := 0; q < logical; q++ {
		wantShared += float32(q + 1)
	}

	net := memnet.New(phys, memnet.WithRecvTimeout(10*time.Second))
	defer net.Close()
	dead := map[int]bool{}

	// Per-physical-machine persistent protocol state across rounds: the
	// round counters must advance in lockstep, so machines are created
	// once and reused.
	machines := make([]*core.Machine, phys)
	for p := 0; p < phys; p++ {
		ep, err := Wrap(net.Endpoint(p), s)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.NewMachine(ep, bf, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		machines[p] = m
	}

	for round := 0; round < rounds; round++ {
		// Kill one random machine whose partner is alive (except round 0).
		if round > 0 {
			for attempts := 0; attempts < 50; attempts++ {
				victim := rng.Intn(phys)
				partner := (victim + logical) % phys
				if !dead[victim] && !dead[partner] {
					dead[victim] = true
					net.Kill(victim)
					break
				}
			}
		}
		results := make([][]float32, phys)
		var ranks []int
		for p := 0; p < phys; p++ {
			if !dead[p] {
				ranks = append(ranks, p)
			}
		}
		err := memnet.Run(net, func(pep comm.Endpoint) error {
			p := pep.Rank()
			m := machines[p]
			q := p % logical
			in := sparse.MustNewSet([]int32{0})
			out := sparse.MustNewSet([]int32{0, int32(1000 + q)})
			cfg, err := m.Configure(in, out)
			if err != nil {
				return err
			}
			vals := make([]float32, 2)
			pos, _ := out.Position(sparse.MakeKey(0))
			vals[pos] = float32(q + 1)
			res, err := cfg.Reduce(vals)
			if err != nil {
				return err
			}
			results[p] = res
			return nil
		}, ranks...)
		if err != nil {
			t.Fatalf("round %d (dead=%d): %v", round, len(dead), err)
		}
		for p, res := range results {
			if res == nil {
				continue
			}
			if res[0] != wantShared {
				t.Fatalf("round %d phys %d: shared sum %f, want %f", round, p, res[0], wantShared)
			}
		}
	}
	if len(dead) < rounds-1 {
		t.Fatalf("churn only killed %d machines", len(dead))
	}
}
