package replica

import (
	"math"
	"math/rand"
	"testing"

	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/memnet"
	"kylix/internal/sparse"
	"kylix/internal/topo"
)

func TestWrapValidation(t *testing.T) {
	n := memnet.New(6)
	defer n.Close()
	if _, err := Wrap(n.Endpoint(0), 0); err == nil {
		t.Error("accepted s=0")
	}
	if _, err := Wrap(n.Endpoint(0), 4); err == nil {
		t.Error("accepted non-divisible factor")
	}
	ep, err := Wrap(n.Endpoint(0), 1)
	if err != nil || ep != n.Endpoint(0).(comm.Endpoint) && ep.Size() != 6 {
		t.Error("s=1 should be a pass-through")
	}
	ep2, err := Wrap(n.Endpoint(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if ep2.Size() != 3 || ep2.Rank() != 1 {
		t.Fatalf("logical size=%d rank=%d", ep2.Size(), ep2.Rank())
	}
}

func TestHelpers(t *testing.T) {
	if LogicalRank(5, 6, 2) != 2 || LogicalRank(2, 6, 2) != 2 {
		t.Error("LogicalRank wrong")
	}
	r := Replicas(1, 6, 2)
	if len(r) != 2 || r[0] != 1 || r[1] != 4 {
		t.Errorf("Replicas = %v", r)
	}
	if b := BirthdayBound(64); math.Abs(b-10.03) > 0.1 {
		t.Errorf("BirthdayBound(64) = %g", b)
	}
}

func TestReplicatedSendReachesAllReplicas(t *testing.T) {
	n := memnet.New(4)
	defer n.Close()
	ep0, _ := Wrap(n.Endpoint(0), 2)
	tag := comm.MakeTag(comm.KindApp, 0, 0)
	if err := ep0.Send(1, tag, &comm.Bytes{Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	// Both physical replicas of logical 1 (machines 1 and 3) got a copy.
	for _, phys := range []int{1, 3} {
		if _, err := n.Endpoint(phys).Recv(0, tag); err != nil {
			t.Fatalf("replica %d missed the message: %v", phys, err)
		}
	}
}

func TestSendRejectsBadLogicalRank(t *testing.T) {
	n := memnet.New(4)
	defer n.Close()
	ep, _ := Wrap(n.Endpoint(0), 2)
	if err := ep.Send(2, comm.MakeTag(comm.KindApp, 0, 0), &comm.Bytes{}); err == nil {
		t.Fatal("accepted out-of-range logical rank")
	}
}

func TestRecvRacesReplicas(t *testing.T) {
	n := memnet.New(4)
	defer n.Close()
	tag := comm.MakeTag(comm.KindApp, 0, 1)
	// Only the twin (machine 3) of logical sender 1 delivers.
	if err := n.Endpoint(3).Send(0, tag, &comm.Bytes{Data: []byte("twin")}); err != nil {
		t.Fatal(err)
	}
	ep0, _ := Wrap(n.Endpoint(0), 2)
	p, err := ep0.Recv(1, tag)
	if err != nil {
		t.Fatal(err)
	}
	if string(p.(*comm.Bytes).Data) != "twin" {
		t.Fatal("wrong payload")
	}
}

func TestRecvAnyMapsWinnerToLogical(t *testing.T) {
	n := memnet.New(4)
	defer n.Close()
	tag := comm.MakeTag(comm.KindApp, 0, 2)
	if err := n.Endpoint(2).Send(1, tag, &comm.Bytes{}); err != nil { // phys 2 = logical 0's twin
		t.Fatal(err)
	}
	ep, _ := Wrap(n.Endpoint(1), 2)
	from, _, err := ep.RecvAny([]int{0, 1}, tag)
	if err != nil {
		t.Fatal(err)
	}
	if from != 0 {
		t.Fatalf("winner reported as logical %d, want 0", from)
	}
}

// replicatedAllreduce runs the full Kylix protocol on a replicated
// cluster with the given dead physical machines and returns per-logical
// results (from whichever replica survived).
func replicatedAllreduce(t *testing.T, degrees []int, s int, dead []int) ([][]float32, [][]float32) {
	t.Helper()
	bf := topo.MustNew(degrees)
	logical := bf.M()
	phys := logical * s
	rng := rand.New(rand.NewSource(77))

	ins := make([]sparse.Set, logical)
	outs := make([]sparse.Set, logical)
	vals := make([][]float32, logical)
	for q := 0; q < logical; q++ {
		inIdx := make([]int32, 40)
		outIdx := make([]int32, 40)
		for i := range inIdx {
			inIdx[i] = int32(rng.Intn(200))
			outIdx[i] = int32(rng.Intn(200))
		}
		outIdx = append(outIdx, inIdx...)
		ins[q] = sparse.MustNewSet(inIdx)
		outs[q] = sparse.MustNewSet(outIdx)
		vals[q] = make([]float32, len(outs[q]))
		for i := range vals[q] {
			vals[q][i] = float32(rng.Intn(50))
		}
	}

	// Brute-force reference.
	totals := map[sparse.Key]float32{}
	for q := 0; q < logical; q++ {
		for i, k := range outs[q] {
			totals[k] += vals[q][i]
		}
	}
	want := make([][]float32, logical)
	for q := 0; q < logical; q++ {
		want[q] = make([]float32, len(ins[q]))
		for i, k := range ins[q] {
			want[q][i] = totals[k]
		}
	}

	n := memnet.New(phys)
	defer n.Close()
	for _, d := range dead {
		n.Kill(d)
	}
	results := make([][]float32, phys)
	err := memnet.Run(n, func(pep comm.Endpoint) error {
		ep, err := Wrap(pep, s)
		if err != nil {
			return err
		}
		q := ep.Rank()
		m, err := core.NewMachine(ep, bf, core.Options{})
		if err != nil {
			return err
		}
		cfg, err := m.Configure(ins[q], outs[q])
		if err != nil {
			return err
		}
		res, err := cfg.Reduce(vals[q])
		if err != nil {
			return err
		}
		results[pep.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Collapse physical results to logical: any surviving replica's
	// output counts.
	out := make([][]float32, logical)
	for p := 0; p < phys; p++ {
		if results[p] != nil {
			out[p%logical] = results[p]
		}
	}
	return out, want
}

func checkAllClose(t *testing.T, got, want [][]float32) {
	t.Helper()
	for q := range want {
		if got[q] == nil {
			t.Fatalf("logical rank %d produced no result", q)
		}
		for i := range want[q] {
			if math.Abs(float64(got[q][i]-want[q][i])) > 1e-3 {
				t.Fatalf("logical %d slot %d: got %f want %f", q, i, got[q][i], want[q][i])
			}
		}
	}
}

func TestReplicatedAllreduceNoFailures(t *testing.T) {
	got, want := replicatedAllreduce(t, []int{4, 2}, 2, nil)
	checkAllClose(t, got, want)
}

func TestReplicatedAllreduceSurvivesFailures(t *testing.T) {
	// Table I's scenario: an 8x4-style replicated network with 1, 2 and
	// 3 dead machines still completes with identical results.
	for _, dead := range [][]int{{3}, {3, 9}, {3, 9, 12}} {
		got, want := replicatedAllreduce(t, []int{4, 2}, 2, dead)
		checkAllClose(t, got, want)
	}
}

func TestReplicationFactor3(t *testing.T) {
	// With s=3, two dead replicas of the same logical rank are fine.
	got, want := replicatedAllreduce(t, []int{4}, 3, []int{1, 5}) // logical 1's replicas are 1,5,9
	checkAllClose(t, got, want)
}

func TestWholeGroupDeadFails(t *testing.T) {
	// Killing every replica of one logical rank must break the protocol
	// (timeout), not hang forever or silently succeed.
	bf := topo.MustNew([]int{4})
	phys := 8
	n := memnet.New(phys, memnet.WithRecvTimeout(300*1000*1000)) // 300ms
	defer n.Close()
	n.Kill(2)
	n.Kill(6) // both replicas of logical 2
	err := memnet.Run(n, func(pep comm.Endpoint) error {
		ep, err := Wrap(pep, 2)
		if err != nil {
			return err
		}
		m, err := core.NewMachine(ep, bf, core.Options{})
		if err != nil {
			return err
		}
		set := sparse.MustNewSet([]int32{1, 2, 3})
		cfg, err := m.Configure(set, set)
		if err != nil {
			return err
		}
		_, err = cfg.Reduce([]float32{1, 1, 1})
		return err
	})
	if err == nil {
		t.Fatal("protocol succeeded with an entire replica group dead")
	}
}
