package replica

import (
	"errors"
	"testing"
	"time"

	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/memnet"
	"kylix/internal/sparse"
	"kylix/internal/topo"
)

// TestKillMidScatterPartnerFinishes is the mid-round counterpart of the
// between-rounds churn soak: a replica is crash-stopped while every
// machine is inside the collective — after configuration, with its
// partner about to scatter — and the survivors' round must still
// complete with exactly correct results. This exercises memnet.Kill's
// mid-round guarantees: the victim's blocked receives unblock with
// ErrClosed instead of hanging, its in-flight sends vanish, and
// memnet.Run treats the dead rank's error as injected, not fatal.
func TestKillMidScatterPartnerFinishes(t *testing.T) {
	const (
		logical = 8
		s       = 2
		phys    = logical * s
		victim  = 12 // partner is 4; group {4, 12} keeps one survivor
	)
	bf := topo.MustNew([]int{4, 2})
	wantShared := float32(0)
	for q := 0; q < logical; q++ {
		wantShared += float32(q + 1)
	}

	net := memnet.New(phys, memnet.WithRecvTimeout(10*time.Second))
	defer net.Close()
	machines := make([]*core.Machine, phys)
	for p := 0; p < phys; p++ {
		ep, err := Wrap(net.Endpoint(p), s)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.NewMachine(ep, bf, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		machines[p] = m
	}

	// configured fires once the victim finished Configure; the killer
	// lands the crash-stop right as the scatter-reduce begins.
	configured := make(chan struct{})
	killed := make(chan struct{})
	go func() {
		<-configured
		net.Kill(victim)
		close(killed)
	}()

	runRound := func(ranks []int, midRound bool) [][]float32 {
		t.Helper()
		results := make([][]float32, phys)
		err := memnet.Run(net, func(pep comm.Endpoint) error {
			p := pep.Rank()
			m := machines[p]
			q := p % logical
			in := sparse.MustNewSet([]int32{0})
			out := sparse.MustNewSet([]int32{0, int32(1000 + q)})
			cfg, err := m.Configure(in, out)
			if err != nil {
				if p == victim {
					return nil // crash-stop landed during configuration
				}
				return err
			}
			if midRound && p == victim {
				close(configured)
				<-killed // enter Reduce only after the crash-stop landed
			}
			vals := make([]float32, 2)
			pos, _ := out.Position(sparse.MakeKey(0))
			vals[pos] = float32(q + 1)
			res, err := cfg.Reduce(vals)
			if err != nil {
				if p == victim {
					if !errors.Is(err, comm.ErrClosed) && !errors.Is(err, comm.ErrTimeout) {
						t.Errorf("victim failed with %v, want ErrClosed/ErrTimeout", err)
					}
					return nil
				}
				return err
			}
			results[p] = res
			return nil
		}, ranks...)
		if err != nil {
			t.Fatalf("round failed: %v", err)
		}
		return results
	}

	check := func(results [][]float32, wantLive int) {
		t.Helper()
		live := 0
		for p, res := range results {
			if res == nil {
				continue
			}
			live++
			if res[0] != wantShared {
				t.Fatalf("phys %d: shared sum %f, want %f", p, res[0], wantShared)
			}
		}
		if live < wantLive {
			t.Fatalf("only %d machines finished, want >= %d", live, wantLive)
		}
	}

	all := make([]int, phys)
	for p := range all {
		all[p] = p
	}
	res := runRound(all, true)
	check(res, phys-1)
	if res[victim] != nil {
		t.Fatal("victim produced a result after its mid-scatter crash")
	}
	if !net.Dead(victim) {
		t.Fatal("victim not marked dead")
	}

	// The cluster must stay fully functional for later rounds without
	// the victim.
	var survivors []int
	for p := 0; p < phys; p++ {
		if p != victim {
			survivors = append(survivors, p)
		}
	}
	check(runRound(survivors, false), phys-1)
}
