// Package replica implements Kylix's fault tolerance (paper §V): the
// data and every protocol message are replicated by a factor s, and
// receivers race the replica copies, taking the first to arrive and
// cancelling the rest. A cluster of m physical machines presents m/s
// logical machines; machine i plays logical rank i mod m/s, and the
// logical messages to rank q are physically sent to q, q+m/s, ...,
// q+(s-1)m/s. The protocol completes as long as at least one replica in
// every group survives; by the birthday paradox a factor-2 network
// survives about sqrt(pi*m/2) random failures in expectation.
package replica

import (
	"fmt"
	"math"

	"kylix/internal/comm"
)

// Wrap presents a physical endpoint as a logical endpoint of a cluster
// replicated s ways. The physical cluster size must be divisible by s.
// Wrapping with s=1 returns the endpoint unchanged.
func Wrap(ep comm.Endpoint, s int) (comm.Endpoint, error) {
	if s < 1 {
		return nil, fmt.Errorf("replica: replication factor %d must be >= 1", s)
	}
	if s == 1 {
		return ep, nil
	}
	if ep.Size()%s != 0 {
		return nil, fmt.Errorf("replica: cluster size %d not divisible by replication factor %d", ep.Size(), s)
	}
	return &endpoint{phys: ep, s: s, logical: ep.Size() / s}, nil
}

// LogicalRank maps a physical rank to the logical rank it plays in an
// s-replicated cluster of physical size m.
//
//kylix:deterministic
func LogicalRank(physRank, m, s int) int { return physRank % (m / s) }

// Replicas lists the physical machines playing logical rank q in an
// s-replicated cluster of physical size m, primary first.
//
//kylix:deterministic
func Replicas(q, m, s int) []int {
	logical := m / s
	out := make([]int, s)
	for j := 0; j < s; j++ {
		out[j] = q + j*logical
	}
	return out
}

// BirthdayBound estimates the expected number of uniformly random
// machine failures a factor-2 replicated m-machine network absorbs
// before some replica group is entirely dead — the sqrt(m)-ish bound the
// paper cites from the birthday paradox. (~sqrt(pi*m/2) for s=2.)
//
//kylix:deterministic
func BirthdayBound(m int) float64 { return math.Sqrt(math.Pi * float64(m) / 2) }

type endpoint struct {
	phys    comm.Endpoint
	s       int
	logical int
}

func (e *endpoint) Rank() int { return e.phys.Rank() % e.logical }
func (e *endpoint) Size() int { return e.logical }

// Send duplicates the message to every replica of the logical target.
// Transports drop the copies aimed at dead machines; live replicas race.
// The payload is deep-copied first: in-process transports deliver by
// reference, and the s receivers consume their copies at independent
// paces — a straggling replica may still be reading long after the
// sender's scratch arena has recycled the original buffers, so the
// replica layer must give the fan-out a lifetime of its own.
func (e *endpoint) Send(to int, tag comm.Tag, p comm.Payload) error {
	if to < 0 || to >= e.logical {
		return fmt.Errorf("replica: logical rank %d out of [0,%d)", to, e.logical)
	}
	p = p.Clone()
	for j := 0; j < e.s; j++ {
		if err := e.phys.Send(to+j*e.logical, tag, p); err != nil {
			return err
		}
	}
	return nil
}

// Recv races the replica copies of the logical sender: the first
// physical arrival wins and the transport cancels the rest (§V-B).
func (e *endpoint) Recv(from int, tag comm.Tag) (comm.Payload, error) {
	_, p, err := e.phys.RecvAny(Replicas(from, e.phys.Size(), e.s), tag)
	return p, err
}

// RecvAny races across all replicas of all listed logical senders and
// reports the logical winner.
func (e *endpoint) RecvAny(froms []int, tag comm.Tag) (int, comm.Payload, error) {
	phys := make([]int, 0, len(froms)*e.s)
	for _, q := range froms {
		phys = append(phys, Replicas(q, e.phys.Size(), e.s)...)
	}
	winner, p, err := e.phys.RecvAny(phys, tag)
	if err != nil {
		return 0, nil, err
	}
	return winner % e.logical, p, nil
}

// RecvGroup expands every logical sender into its physical replica set:
// each logical group becomes the union of its members' replicas, so a
// win cancels exactly the redundant physical copies of the same logical
// message while other groups stay deliverable. The winning physical
// rank maps back to the logical sender it plays.
func (e *endpoint) RecvGroup(groups [][]int, tag comm.Tag) (int, comm.Payload, error) {
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	phys := make([][]int, len(groups))
	backing := make([]int, 0, e.s*total)
	for i, g := range groups {
		start := len(backing)
		for _, q := range g {
			for j := 0; j < e.s; j++ {
				backing = append(backing, q+j*e.logical)
			}
		}
		phys[i] = backing[start:len(backing):len(backing)]
	}
	winner, p, err := e.phys.RecvGroup(phys, tag)
	if err != nil {
		return 0, nil, err
	}
	return winner % e.logical, p, nil
}

func (e *endpoint) Close() error { return e.phys.Close() }
