package replica

import (
	"testing"
	"time"

	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/faultnet"
	"kylix/internal/memnet"
	"kylix/internal/sparse"
	"kylix/internal/tcpnet"
	"kylix/internal/topo"
)

// TestFullReplicationSingleLogical exercises the s=m corner: every
// physical machine plays logical rank 0, so the whole cluster is one
// replica group and the "allreduce" degenerates to racing m copies of a
// self-message.
func TestFullReplicationSingleLogical(t *testing.T) {
	const m = 4
	if got := LogicalRank(3, m, m); got != 0 {
		t.Fatalf("LogicalRank(3,%d,%d) = %d, want 0", m, m, got)
	}
	reps := Replicas(0, m, m)
	if len(reps) != m {
		t.Fatalf("Replicas = %v, want all %d ranks", reps, m)
	}
	for j, r := range reps {
		if r != j {
			t.Fatalf("Replicas = %v, want [0..%d)", reps, m)
		}
	}

	bf := topo.MustNew(topo.Direct(1))
	net := memnet.New(m, memnet.WithRecvTimeout(5*time.Second))
	defer net.Close()
	// Kill all but one machine: a single survivor in the single group
	// must still complete.
	net.Kill(1)
	net.Kill(3)
	results := make([][]float32, m)
	err := memnet.Run(net, func(pep comm.Endpoint) error {
		p := pep.Rank()
		ep, err := Wrap(pep, m)
		if err != nil {
			return err
		}
		mach, err := core.NewMachine(ep, bf, core.Options{})
		if err != nil {
			return err
		}
		in := sparse.MustNewSet([]int32{7})
		out := sparse.MustNewSet([]int32{7})
		cfg, err := mach.Configure(in, out)
		if err != nil {
			return err
		}
		// Every replica of logical rank 0 contributes the same value —
		// replicas carry identical data by construction (§V).
		res, err := cfg.Reduce([]float32{5})
		if err != nil {
			return err
		}
		results[p] = res
		return nil
	}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{0, 2} {
		if results[p] == nil || results[p][0] != 5 {
			t.Fatalf("phys %d result = %v, want [5]", p, results[p])
		}
	}
}

// TestAllPrimariesDeadSurvivors runs an allreduce where every primary
// replica is dead from the start: only the non-primary halves survive,
// so every race must be won by a secondary and the winner-to-logical
// mapping is exercised off the primary diagonal everywhere.
func TestAllPrimariesDeadSurvivors(t *testing.T) {
	const (
		logical = 4
		s       = 2
		phys    = logical * s
	)
	bf := topo.MustNew([]int{2, 2})
	net := memnet.New(phys, memnet.WithRecvTimeout(5*time.Second))
	defer net.Close()
	for p := 0; p < logical; p++ {
		net.Kill(p) // all primaries
	}
	var survivors []int
	for p := logical; p < phys; p++ {
		survivors = append(survivors, p)
	}
	wantShared := float32(0)
	for q := 0; q < logical; q++ {
		wantShared += float32(q + 1)
	}
	results := make([][]float32, phys)
	err := memnet.Run(net, func(pep comm.Endpoint) error {
		p := pep.Rank()
		ep, err := Wrap(pep, s)
		if err != nil {
			return err
		}
		mach, err := core.NewMachine(ep, bf, core.Options{})
		if err != nil {
			return err
		}
		q := LogicalRank(p, phys, s)
		in := sparse.MustNewSet([]int32{0})
		out := sparse.MustNewSet([]int32{0, int32(100 + q)})
		cfg, err := mach.Configure(in, out)
		if err != nil {
			return err
		}
		vals := make([]float32, 2)
		pos, _ := out.Position(sparse.MakeKey(0))
		vals[pos] = float32(q + 1)
		res, err := cfg.Reduce(vals)
		if err != nil {
			return err
		}
		results[p] = res
		return nil
	}, survivors...)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range survivors {
		if results[p] == nil || results[p][0] != wantShared {
			t.Fatalf("phys %d result = %v, want shared %f", p, results[p], wantShared)
		}
	}
}

// TestTCPChurnSoak mirrors the memnet churn soak over real loopback TCP
// sockets: machines die between rounds through the fault fabric (the
// only transport-agnostic kill path), reconnect backoff is capped low so
// writers spin fast, and every surviving machine's results must stay
// exactly correct every round.
func TestTCPChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP soak skipped in -short")
	}
	const (
		logical = 4
		s       = 2
		phys    = logical * s
		rounds  = 4
	)
	bf := topo.MustNew([]int{2, 2})
	nodes, err := tcpnet.LocalCluster(phys, tcpnet.Options{
		RecvTimeout:         10 * time.Second,
		MaxReconnectBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tcpnet.CloseAll(nodes)
	fab, err := faultnet.New(faultnet.Plan{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	fab.InitSize(phys)
	defer fab.Close()

	machines := make([]*core.Machine, phys)
	for p := 0; p < phys; p++ {
		mach, err := core.NewMachine(mustWrap(t, fab.Wrap(nodes[p]), s), bf, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		machines[p] = mach
	}
	wantShared := float32(0)
	for q := 0; q < logical; q++ {
		wantShared += float32(q + 1)
	}
	// Kill one machine per round, never both halves of a group: the
	// victims 1, 6, 3 leave partners 5, 2, 7 covering their groups.
	victims := []int{-1, 1, 6, 3}
	dead := map[int]bool{}
	for round := 0; round < rounds; round++ {
		if victims[round] >= 0 {
			fab.Kill(victims[round])
			dead[victims[round]] = true
		}
		results := make([][]float32, phys)
		errc := make(chan error, phys)
		started := 0
		for p := 0; p < phys; p++ {
			if dead[p] {
				continue
			}
			started++
			go func(p int) {
				mach := machines[p]
				q := LogicalRank(p, phys, s)
				in := sparse.MustNewSet([]int32{0})
				out := sparse.MustNewSet([]int32{0, int32(100 + q)})
				cfg, err := mach.Configure(in, out)
				if err != nil {
					errc <- err
					return
				}
				vals := make([]float32, 2)
				pos, _ := out.Position(sparse.MakeKey(0))
				vals[pos] = float32(q + 1)
				res, err := cfg.Reduce(vals)
				if err != nil {
					errc <- err
					return
				}
				results[p] = res
				errc <- nil
			}(p)
		}
		for i := 0; i < started; i++ {
			if err := <-errc; err != nil {
				t.Fatalf("round %d (dead=%v): %v", round, dead, err)
			}
		}
		for p, res := range results {
			if res == nil {
				continue
			}
			if res[0] != wantShared {
				t.Fatalf("round %d phys %d: shared sum %f, want %f", round, p, res[0], wantShared)
			}
		}
	}
}

func mustWrap(t *testing.T, ep comm.Endpoint, s int) comm.Endpoint {
	t.Helper()
	wrapped, err := Wrap(ep, s)
	if err != nil {
		t.Fatal(err)
	}
	return wrapped
}
