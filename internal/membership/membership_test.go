package membership

import (
	"errors"
	"testing"
	"time"

	"kylix/internal/comm"
	"kylix/internal/memnet"
)

func rec(epoch uint64, leader int, members ...int) Record {
	return Record{Epoch: epoch, Leader: leader, Members: members, Degrees: DeriveDegrees(len(members))}
}

func TestDigestDeterministicAndSensitive(t *testing.T) {
	a := rec(3, 0, 0, 1, 2, 3)
	if a.Digest() != a.Digest() {
		t.Fatal("digest not deterministic")
	}
	if a.Digest() != a.Clone().Digest() {
		t.Fatal("clone digest differs")
	}
	variants := []Record{
		rec(4, 0, 0, 1, 2, 3),
		rec(3, 1, 0, 1, 2, 3),
		rec(3, 0, 0, 1, 2, 4),
		rec(3, 0, 0, 1, 2),
	}
	for i, v := range variants {
		if v.Digest() == a.Digest() {
			t.Fatalf("variant %d collides with base digest", i)
		}
	}
	b := a.Clone()
	b.Degrees = []int{2, 2}
	if b.Digest() == a.Digest() {
		t.Fatal("degree change not reflected in digest")
	}
}

func TestSupersedes(t *testing.T) {
	base := rec(2, 1, 0, 1)
	if !rec(3, 5, 0, 1).Supersedes(base) {
		t.Fatal("higher epoch must supersede")
	}
	if rec(1, 0, 0, 1).Supersedes(base) {
		t.Fatal("lower epoch must not supersede")
	}
	if !rec(2, 0, 0, 1).Supersedes(base) {
		t.Fatal("equal epoch, lower leader must supersede")
	}
	if rec(2, 2, 0, 1).Supersedes(base) {
		t.Fatal("equal epoch, higher leader must not supersede")
	}
	if base.Supersedes(base) {
		t.Fatal("record must not supersede itself")
	}
}

func TestChangeApply(t *testing.T) {
	cur := rec(1, 0, 0, 1, 2, 3)

	next, err := (Change{Add: []int{5, 4}, Remove: []int{1, 3}}).Apply(cur, 2, 2)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if next.Epoch != 2 || next.Leader != 2 {
		t.Fatalf("epoch/leader = %d/%d, want 2/2", next.Epoch, next.Leader)
	}
	want := []int{0, 2, 4, 5}
	if len(next.Members) != len(want) {
		t.Fatalf("members = %v, want %v", next.Members, want)
	}
	for i := range want {
		if next.Members[i] != want[i] {
			t.Fatalf("members = %v, want %v (sorted)", next.Members, want)
		}
	}

	// Same size: degrees must be carried over untouched.
	cur2 := cur.Clone()
	cur2.Degrees = []int{4} // deliberately not what DeriveDegrees picks
	swap, err := (Change{Add: []int{9}, Remove: []int{0}}).Apply(cur2, 1, 1)
	if err != nil {
		t.Fatalf("replace apply: %v", err)
	}
	if len(swap.Degrees) != 1 || swap.Degrees[0] != 4 {
		t.Fatalf("replace perturbed degrees: %v", swap.Degrees)
	}

	for name, bad := range map[string]Change{
		"remove non-member": {Remove: []int{7}},
		"add existing":      {Add: []int{0}},
		"add twice":         {Add: []int{8, 8}},
		"empty result":      {Remove: []int{0, 1, 2, 3}},
	} {
		if _, err := bad.Apply(cur, 1, 0); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	if _, err := (Change{Remove: []int{0}}).Apply(cur, 2, 0); err == nil {
		t.Fatal("3 survivors with s=2 must be rejected")
	}
}

func TestLeaderOf(t *testing.T) {
	members := []int{2, 5, 9}
	if got := LeaderOf(members, nil); got != 2 {
		t.Fatalf("leader = %d, want 2", got)
	}
	sus := func(r int) bool { return r == 2 }
	if got := LeaderOf(members, sus); got != 5 {
		t.Fatalf("leader with 2 suspected = %d, want 5", got)
	}
	all := func(int) bool { return true }
	if got := LeaderOf(members, all); got != 2 {
		t.Fatalf("all-suspected fallback = %d, want 2", got)
	}
	if got := LeaderOf(nil, nil); got != -1 {
		t.Fatalf("empty member leader = %d, want -1", got)
	}
}

func TestDeriveDegreesDeterministic(t *testing.T) {
	for _, m := range []int{1, 2, 4, 8, 9, 16, 17} {
		d1 := DeriveDegrees(m)
		d2 := DeriveDegrees(m)
		if len(d1) != len(d2) {
			t.Fatalf("m=%d: nondeterministic lengths %v vs %v", m, d1, d2)
		}
		prod := 1
		for i, v := range d1 {
			if v != d2[i] {
				t.Fatalf("m=%d: nondeterministic %v vs %v", m, d1, d2)
			}
			prod *= v
		}
		if m >= 1 && prod != m && !(m == 1 && prod == 1) {
			t.Fatalf("m=%d: degrees %v multiply to %d", m, d1, prod)
		}
	}
}

func TestViewRemap(t *testing.T) {
	net := memnet.New(6, memnet.WithRecvTimeout(time.Second))
	defer net.Close()
	members := []int{1, 3, 4}

	if _, err := NewView(net.Endpoint(0), members); err == nil {
		t.Fatal("non-member view must be rejected")
	}
	if _, err := NewView(net.Endpoint(1), []int{1, 9}); err == nil {
		t.Fatal("out-of-range member must be rejected")
	}
	if _, err := NewView(net.Endpoint(1), []int{1, 1}); err == nil {
		t.Fatal("duplicate member must be rejected")
	}

	v3, err := NewView(net.Endpoint(3), members)
	if err != nil {
		t.Fatalf("view: %v", err)
	}
	if v3.Rank() != 1 || v3.Size() != 3 {
		t.Fatalf("rank/size = %d/%d, want 1/3", v3.Rank(), v3.Size())
	}
	v1, err := NewView(net.Endpoint(1), members)
	if err != nil {
		t.Fatalf("view: %v", err)
	}

	tag := comm.MakeTag(comm.KindApp, 0, 7)
	// Dense 1 (phys 3) sends to dense 0 (phys 1).
	if err := v3.Send(0, tag, &comm.Bytes{Data: []byte{42}}); err != nil {
		t.Fatalf("send: %v", err)
	}
	p, err := v1.Recv(1, tag)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if p.(*comm.Bytes).Data[0] != 42 {
		t.Fatalf("payload = %v", p)
	}

	// RecvAny remaps the winner back to dense space.
	if err := v3.Send(0, tag, &comm.Bytes{Data: []byte{43}}); err != nil {
		t.Fatalf("send: %v", err)
	}
	from, _, err := v1.RecvAny([]int{1, 2}, tag)
	if err != nil {
		t.Fatalf("recvany: %v", err)
	}
	if from != 1 {
		t.Fatalf("recvany winner = %d, want dense 1", from)
	}

	// Out-of-range dense ranks are endpoint errors, not transport sends.
	if err := v3.Send(3, tag, &comm.Bytes{}); err == nil {
		t.Fatal("dense rank 3 must be out of range")
	}
}

// startAgents spins up one agent per physical rank over a fresh memnet.
func startAgents(t *testing.T, size int, members []int, opts Options) (*memnet.Network, []*Agent, *Service) {
	t.Helper()
	net := memnet.New(size, memnet.WithRecvTimeout(200*time.Millisecond))
	initial := Record{Epoch: 1, Leader: members[0], Members: members, Degrees: DeriveDegrees(len(members) / max(1, opts.Replication))}
	agents := make([]*Agent, size)
	for r := 0; r < size; r++ {
		agents[r] = NewAgent(r, net.Endpoint(r), initial, opts)
	}
	svc := NewService(agents, func(r int) bool { return !net.Dead(r) })
	t.Cleanup(func() {
		svc.Stop()
		net.Close()
	})
	return net, agents, svc
}

func fastOpts() Options {
	return Options{
		Heartbeat:    2 * time.Millisecond,
		SuspectAfter: 40 * time.Millisecond,
		DrainTimeout: 100 * time.Millisecond,
		Seed:         1,
	}
}

func TestAgentJoinLeaveConverges(t *testing.T) {
	_, _, svc := startAgents(t, 6, []int{0, 1, 2, 3}, fastOpts())

	got, err := svc.Propose(Change{Add: []int{4, 5}}, 5*time.Second)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if got.Epoch != 2 || len(got.Members) != 6 {
		t.Fatalf("post-join record = %+v", got)
	}
	conv, err := svc.WaitConverged(5 * time.Second)
	if err != nil {
		t.Fatalf("converge after join: %v", err)
	}
	if conv.Digest() != got.Digest() {
		t.Fatalf("converged on %+v, want %+v", conv, got)
	}

	got, err = svc.Propose(Change{Remove: []int{1, 4}}, 5*time.Second)
	if err != nil {
		t.Fatalf("leave: %v", err)
	}
	if got.Epoch != 3 || len(got.Members) != 4 || got.HasMember(1) || got.HasMember(4) {
		t.Fatalf("post-leave record = %+v", got)
	}
	if _, err := svc.WaitConverged(5 * time.Second); err != nil {
		t.Fatalf("converge after leave: %v", err)
	}
}

func TestAgentLeaderFailover(t *testing.T) {
	net, agents, svc := startAgents(t, 5, []int{0, 1, 2, 3}, fastOpts())

	// Kill the epoch-1 coordinator. The survivors must elect rank 1 and
	// still be able to drive a change through.
	net.Kill(0)
	agents[0].Stop()

	got, err := svc.Propose(Change{Remove: []int{0}, Add: []int{4}}, 10*time.Second)
	if err != nil {
		t.Fatalf("replace through failover: %v", err)
	}
	if got.HasMember(0) || !got.HasMember(4) {
		t.Fatalf("record = %+v", got)
	}
	if got.Leader != 1 {
		t.Fatalf("committing leader = %d, want 1", got.Leader)
	}
	if _, err := svc.WaitConverged(10 * time.Second); err != nil {
		t.Fatalf("converge after failover: %v", err)
	}
}

func TestAgentAutoEvict(t *testing.T) {
	opts := fastOpts()
	opts.AutoEvict = true
	net, agents, svc := startAgents(t, 4, []int{0, 1, 2, 3}, opts)

	net.Kill(3)
	agents[3].Stop()

	deadline := time.Now().Add(10 * time.Second)
	for {
		r := svc.Snapshot()
		if !r.HasMember(3) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rank 3 never auto-evicted; record %+v", r)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := svc.WaitConverged(10 * time.Second); err != nil {
		t.Fatalf("converge after auto-evict: %v", err)
	}
}

func TestSubmitRouting(t *testing.T) {
	_, agents, _ := startAgents(t, 4, []int{0, 1, 2}, fastOpts())

	// Non-leader member: routing hint.
	_, err := agents[1].Submit(Change{Add: []int{3}})
	var nle *NotLeaderError
	if !errors.As(err, &nle) || nle.Leader != 0 {
		t.Fatalf("submit to follower: %v", err)
	}
	// Spare: not a member.
	if _, err := agents[3].Submit(Change{Add: []int{3}}); !errors.Is(err, ErrNotMember) {
		t.Fatalf("submit to spare: %v", err)
	}
	// Leader accepts; immediately resubmitting races the in-flight
	// transition (ErrBusy) or arrives after it committed (already a
	// member). Both are correct.
	if _, err := agents[0].Submit(Change{Add: []int{3}}); err != nil {
		t.Fatalf("submit to leader: %v", err)
	}
	if _, err := agents[0].Submit(Change{Add: []int{3}}); err == nil {
		t.Fatal("duplicate add must not be accepted twice")
	}
	// Stopped agent.
	agents[2].Stop()
	if _, err := agents[2].Submit(Change{Add: []int{3}}); !errors.Is(err, ErrStopped) {
		t.Fatalf("submit to stopped: %v", err)
	}
}
