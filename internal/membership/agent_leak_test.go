package membership

import (
	"testing"
	"time"

	"kylix/internal/leakcheck"
	"kylix/internal/memnet"
)

// TestAgentStopReleasesGoroutines is the heartbeat-lifetime regression
// test: after Stop, an agent's tick and receive loops (and the reused
// heartbeat timer they own) must wind down instead of lingering. Runs
// a live two-agent gossip mesh first so the loops are genuinely busy
// when Stop lands.
func TestAgentStopReleasesGoroutines(t *testing.T) {
	defer leakcheck.Check(t)()
	net := memnet.New(2, memnet.WithRecvTimeout(50*time.Millisecond))
	defer net.Close()

	initial := rec(1, 0, 0, 1)
	opts := Options{Heartbeat: 5 * time.Millisecond, Seed: 1}
	a0 := NewAgent(0, net.Endpoint(0), initial, opts)
	a1 := NewAgent(1, net.Endpoint(1), initial, opts)

	// Let a few heartbeats flow so both loops have woken at least once.
	time.Sleep(25 * time.Millisecond)

	a0.Stop()
	a1.Stop()
	if !a0.Stopped() || !a1.Stopped() {
		t.Fatal("agents not stopped")
	}
	// leakcheck's deferred verification now polls until tickLoop and
	// recvLoop exit — if the heartbeat timer pinned either loop past
	// the grace period, the test fails with its stack.
}
