// Package membership is the elastic control plane: an epoch-numbered,
// leader-coordinated view of which physical ranks currently make up the
// cluster, maintained live over the same comm transports the data plane
// uses. It turns the paper's frozen Configure-time member set into a
// runtime quantity — nodes join, leave and are replaced while replica
// racing (§V) keeps the data plane serving through the transition.
//
// The protocol is gossip-convergent rather than RPC-reliable, because
// the transports underneath may be wrapped in a fault fabric that
// drops, duplicates, delays and reorders control traffic like any
// other: every agent periodically broadcasts its full committed state
// (plus any pending proposal and endorsement) in a single idempotent
// message type, so lost messages cost latency, never correctness.
// Epochs are totally ordered by (Epoch, Leader) — higher epoch wins,
// ties resolve toward the lower-ranked committing leader — and agents
// adopt any record that supersedes their own, so all survivors converge
// to the newest committed record along any gossip path.
//
// Epoch transitions follow the paper-faithful cutover discipline:
// drain (bounded quiesce of in-flight collective rounds), re-derive
// butterfly degrees for the new logical size via internal/powerlaw,
// rewire (the next Cluster.Run configures machines over the new member
// view and replication groups), and cut over atomically — the new
// epoch's Config.Digest() is the all-survivors-agree oracle.
package membership

import (
	"fmt"
	"hash/fnv"
	"sort"

	"kylix/internal/powerlaw"
	"kylix/internal/topo"
)

// Record is one committed (or proposed) epoch: the member set, the
// butterfly degrees its topology uses, and the identity of the leader
// that committed it. Records are immutable once built; agents exchange
// and compare them by Digest.
type Record struct {
	// Epoch is the record's position in the epoch sequence (the initial
	// membership is epoch 1; 0 means "no record").
	Epoch uint64
	// Leader is the rank that committed (or proposes) the record.
	Leader int
	// Members lists the member physical ranks, sorted ascending.
	Members []int
	// Degrees is the butterfly degree vector spanning
	// len(Members)/replication logical machines.
	Degrees []int
}

// Clone returns a deep copy.
func (r Record) Clone() Record {
	r.Members = append([]int(nil), r.Members...)
	r.Degrees = append([]int(nil), r.Degrees...)
	return r
}

// Digest returns a 64-bit FNV-1a fingerprint of the record. Two agents
// whose records share a digest agree on the epoch bit-for-bit; the
// digest is also how proposal acknowledgements name the proposal they
// endorse.
//
//kylix:deterministic
func (r Record) Digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	word(r.Epoch)
	word(uint64(int64(r.Leader)))
	word(uint64(len(r.Members)))
	for _, m := range r.Members {
		word(uint64(int64(m)))
	}
	word(uint64(len(r.Degrees)))
	for _, d := range r.Degrees {
		word(uint64(int64(d)))
	}
	return h.Sum64()
}

// Supersedes reports whether r is strictly newer than o in the total
// order agents adopt by: higher epoch first, lower committing leader on
// ties (the quorum rule makes equal-epoch conflicts unreachable in a
// connected majority; the leader tiebreak closes the partitioned
// corner deterministically).
//
//kylix:deterministic
func (r Record) Supersedes(o Record) bool {
	if r.Epoch != o.Epoch {
		return r.Epoch > o.Epoch
	}
	if r.Leader != o.Leader {
		return r.Leader < o.Leader
	}
	return false
}

// HasMember reports whether rank is in the member set.
//
//kylix:deterministic
func (r Record) HasMember(rank int) bool {
	for _, m := range r.Members {
		if m == rank {
			return true
		}
	}
	return false
}

// Change is one requested membership delta: ranks to add and ranks to
// remove, applied together as a single epoch transition (a replacement
// is one Change with both sides filled).
type Change struct {
	Add    []int
	Remove []int
}

// Apply computes the successor record for a change proposed by
// `proposer` on a cluster replicated s ways: it validates the delta
// (adds must be new, removes must be present, the surviving count must
// stay positive and divisible by s), sorts the new member set, and
// re-derives degrees when the logical size changed — keeping the
// current degree vector when it did not, so a Replace never perturbs
// the topology.
//
//kylix:deterministic
func (ch Change) Apply(cur Record, s, proposer int) (Record, error) {
	if s < 1 {
		return Record{}, fmt.Errorf("membership: replication %d must be >= 1", s)
	}
	next := map[int]bool{}
	for _, m := range cur.Members {
		next[m] = true
	}
	for _, r := range ch.Remove {
		if !next[r] {
			return Record{}, fmt.Errorf("membership: rank %d is not a member", r)
		}
		delete(next, r)
	}
	for _, a := range ch.Add {
		if cur.HasMember(a) {
			return Record{}, fmt.Errorf("membership: rank %d is already a member", a)
		}
		if next[a] {
			return Record{}, fmt.Errorf("membership: rank %d added twice", a)
		}
		next[a] = true
	}
	if len(next) == 0 {
		return Record{}, fmt.Errorf("membership: change leaves no members")
	}
	if len(next)%s != 0 {
		return Record{}, fmt.Errorf("membership: %d survivors not divisible by replication %d", len(next), s)
	}
	members := make([]int, 0, len(next))
	for m := range next {
		members = append(members, m)
	}
	sort.Ints(members)
	degrees := append([]int(nil), cur.Degrees...)
	if len(members) != len(cur.Members) {
		degrees = DeriveDegrees(len(members) / s)
	}
	return Record{
		Epoch:   cur.Epoch + 1,
		Leader:  proposer,
		Members: members,
		Degrees: degrees,
	}, nil
}

// LeaderOf returns the coordinator for a member set under a suspicion
// predicate: the lowest-ranked member not currently suspected (every
// agent treats itself as unsuspected). If all members are suspected the
// lowest member is returned — some coordinator beats none.
//
//kylix:deterministic
func LeaderOf(members []int, suspected func(rank int) bool) int {
	if len(members) == 0 {
		return -1
	}
	for _, m := range members {
		if suspected == nil || !suspected(m) {
			return m
		}
	}
	return members[0]
}

// DeriveDegrees runs the §IV design workflow with the canonical
// elastic-profile parameters to pick butterfly degrees for a new
// logical size. The profile is fixed so every agent — and a freshly
// built cluster of the same final membership — derives the identical
// vector from the size alone; workloads with better knowledge of their
// data shape can override per-epoch degrees at the Cluster level. Falls
// back to the direct (single-layer) topology if the designer balks.
//
//kylix:deterministic
func DeriveDegrees(logical int) []int {
	if logical <= 1 {
		return []int{1}
	}
	d, err := powerlaw.Design(powerlaw.DesignInput{
		N:         1 << 20,
		Alpha:     1.3,
		Density0:  0.05,
		Machines:  logical,
		ElemBytes: 4,
		MinPacket: 32 * 1024,
	})
	if err != nil {
		return topo.Direct(logical)
	}
	return d
}
