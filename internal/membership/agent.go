package membership

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"kylix/internal/comm"
	"kylix/internal/obs"
)

// ctlTag is the single control-plane tag. All control traffic shares
// it: the receiver consumes messages in arrival order via singleton
// RecvGroup groups (a pure any-source receive with no cancellation), so
// drops, duplicates and reorder injected by a fault fabric are
// absorbed by the protocol's idempotence instead of wedging a matched
// sequence.
var ctlTag = comm.MakeTag(comm.KindControl, 0, 0)

// opState is the only control operation: "here is my full state". The
// same message doubles as heartbeat, committed-epoch anti-entropy,
// proposal carrier and acknowledgement.
const opState = 1

// Phase is an agent's position in the epoch state machine:
// Stable -> Draining -> Rewiring -> Stable.
type Phase int32

const (
	// PhaseStable: serving the committed epoch.
	PhaseStable Phase = iota
	// PhaseDraining: a newer epoch is committed; in-flight collective
	// rounds are being quiesced (bounded by Options.DrainTimeout).
	PhaseDraining
	// PhaseRewiring: the drain finished and the agent is cutting its
	// committed record over to the new epoch (the data plane rewires
	// lazily at the next Run over the new member view).
	PhaseRewiring
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseStable:
		return "stable"
	case PhaseDraining:
		return "draining"
	case PhaseRewiring:
		return "rewiring"
	default:
		return fmt.Sprintf("phase(%d)", int32(p))
	}
}

// Errors returned by Agent.Submit. ErrBusy and ErrNotMember (and
// *NotLeaderError) are retryable routing failures; anything else is a
// validation verdict on the change itself.
var (
	// ErrStopped: the agent is dead (its endpoint closed or Stop ran).
	ErrStopped = errors.New("membership: agent stopped")
	// ErrBusy: a proposal or adoption is already in flight; resubmit
	// after it settles.
	ErrBusy = errors.New("membership: epoch transition in flight")
	// ErrNotMember: the agent is a spare (or already evicted) and
	// cannot coordinate.
	ErrNotMember = errors.New("membership: agent is not a member")
)

// NotLeaderError reports a Submit sent to a non-coordinator, with the
// submitter's best guess of who the coordinator is.
type NotLeaderError struct {
	// Leader is the rank this agent currently believes coordinates.
	Leader int
}

// Error implements error.
func (e *NotLeaderError) Error() string {
	return fmt.Sprintf("membership: not the leader (try rank %d)", e.Leader)
}

// Options tune an Agent.
type Options struct {
	// Heartbeat is the gossip period (jittered per tick; default 10ms).
	Heartbeat time.Duration
	// SuspectAfter is how long a member may stay silent before it is
	// suspected dead (default 20x Heartbeat). It must comfortably
	// exceed Heartbeat times the fault plan's drop rate horizon: with
	// drop probability p, the chance of a false suspicion per window is
	// p^(SuspectAfter/Heartbeat).
	SuspectAfter time.Duration
	// DrainTimeout bounds the pre-cutover quiesce (default 2s). A
	// drain that times out proceeds anyway: in-flight old-epoch rounds
	// keep completing via replica racing while the new epoch serves.
	DrainTimeout time.Duration
	// ProposalTTL is how long a coordinator keeps an unacknowledged
	// proposal before dropping it so the operator can resubmit
	// (default 5x SuspectAfter — comfortably above worst-case gossip
	// latency, or stalled proposals thrash instead of committing).
	ProposalTTL time.Duration
	// AutoEvict lets the coordinator propose removal of suspected
	// members on its own, batched so the survivor count stays divisible
	// by Replication (until divisibility allows, dead members stay in
	// the record and replica racing masks them).
	AutoEvict bool
	// Replication is the §V replication factor s the member count must
	// stay divisible by (default 1).
	Replication int
	// Seed drives the gossip jitter (timing only — protocol decisions
	// never depend on it).
	Seed int64
	// Drain is the bounded-quiesce hook run before each cutover
	// (typically Cluster's active-run gate). Nil means cut over
	// immediately.
	Drain func(timeout time.Duration) bool
	// Metrics receives the control plane's numbers (nil = discard).
	Metrics *obs.MembershipMetrics
}

func (o *Options) defaults() {
	if o.Heartbeat == 0 {
		o.Heartbeat = 10 * time.Millisecond
	}
	if o.SuspectAfter == 0 {
		o.SuspectAfter = 20 * o.Heartbeat
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 2 * time.Second
	}
	if o.ProposalTTL == 0 {
		o.ProposalTTL = 5 * o.SuspectAfter
	}
	if o.Replication == 0 {
		o.Replication = 1
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewMembershipMetrics(nil)
	}
}

// Agent is one rank's membership state machine: it gossips its
// committed record, detects failures by heartbeat silence, elects the
// lowest unsuspected member as coordinator, and carries quorum-
// acknowledged epoch proposals to commit. Spare (non-member) agents
// run the same loops passively — they heartbeat nobody but adopt
// committed records that reach them, which is how a joiner learns the
// epoch that includes it.
type Agent struct {
	rank int
	ep   comm.Endpoint
	opts Options
	met  *obs.MembershipMetrics

	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu       sync.Mutex //kylix:lock membership-agent
	stopped  bool
	rec      Record // committed epoch
	phase    Phase
	prop     *Record // this agent's pending proposal (coordinator only)
	propAt   time.Time
	acks     map[int]bool // member acks for prop (incl. self)
	promise  *Record      // the proposal this agent has endorsed
	pending  *Record      // newest superseding record awaiting adoption
	adopting bool
	// Per-physical-rank liveness bookkeeping, sized to the transport.
	lastHeard []time.Time
	lastClock []int64
	lastFix   []time.Time // last anti-entropy correction sent per peer
	suspect   []bool
}

type outMsg struct {
	to int
	c  *comm.Control
}

// NewAgent starts the agent's gossip and receive loops over ep. The
// initial record is the cluster's epoch-1 membership; every agent
// (member or spare) must be given the same one.
//
//kylix:owned
func NewAgent(rank int, ep comm.Endpoint, initial Record, opts Options) *Agent {
	opts.defaults()
	size := ep.Size()
	a := &Agent{
		rank: rank, ep: ep, opts: opts, met: opts.Metrics,
		done:      make(chan struct{}),
		rec:       initial.Clone(),
		lastHeard: make([]time.Time, size),
		lastClock: make([]int64, size),
		lastFix:   make([]time.Time, size),
		suspect:   make([]bool, size),
	}
	now := time.Now()
	for i := range a.lastHeard {
		a.lastHeard[i] = now
	}
	a.met.EpochCurrent.SetMax(int64(a.rec.Epoch))
	a.wg.Add(2)
	go a.tickLoop()
	go a.recvLoop()
	return a
}

// Rank returns the agent's physical rank.
func (a *Agent) Rank() int { return a.rank }

// Record returns a copy of the committed epoch record.
func (a *Agent) Record() Record {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rec.Clone()
}

// Phase returns the agent's state-machine phase.
func (a *Agent) Phase() Phase {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.phase
}

// Settled reports whether the agent is Stable with no adoption queued —
// the per-agent half of the convergence predicate.
func (a *Agent) Settled() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.phase == PhaseStable && a.pending == nil && !a.adopting
}

// Stopped reports whether the agent is dead.
func (a *Agent) Stopped() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stopped
}

// Stop shuts the agent down. Best-effort: the receive loop is poked
// with a self-send; if the transport is already dead the loop unblocks
// through ErrClosed (or its receive timeout) instead.
func (a *Agent) Stop() {
	if !a.markStopped() {
		return
	}
	if err := a.ep.Send(a.rank, ctlTag, &comm.Control{Op: opState}); err != nil {
		_ = err // endpoint already dead; recvLoop unblocks via ErrClosed
	}
}

// markStopped flips the stopped flag once; reports whether this call
// did the flipping.
func (a *Agent) markStopped() bool {
	first := false
	a.stopOnce.Do(func() {
		a.mu.Lock()
		a.stopped = true
		a.mu.Unlock()
		close(a.done)
		first = true
	})
	return first
}

// Submit asks this agent, as coordinator, to propose a membership
// change. On success the returned record is the proposed next epoch;
// commit happens asynchronously once a quorum of current members
// acknowledges. Routing failures (ErrBusy, ErrNotMember, ErrStopped,
// *NotLeaderError) are retryable; other errors reject the change
// itself.
func (a *Agent) Submit(ch Change) (Record, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stopped {
		return Record{}, ErrStopped
	}
	if !a.rec.HasMember(a.rank) {
		return Record{}, ErrNotMember
	}
	if leader := LeaderOf(a.rec.Members, a.suspectedLocked); leader != a.rank {
		return Record{}, &NotLeaderError{Leader: leader}
	}
	if a.prop != nil || a.pending != nil || a.adopting || a.phase != PhaseStable {
		return Record{}, ErrBusy
	}
	next, err := ch.Apply(a.rec, a.opts.Replication, a.rank)
	if err != nil {
		return Record{}, err
	}
	for _, m := range next.Members {
		if m < 0 || m >= a.ep.Size() {
			return Record{}, fmt.Errorf("membership: rank %d outside provisioned cluster [0,%d)", m, a.ep.Size())
		}
	}
	a.prop = &next
	a.propAt = time.Now()
	a.acks = map[int]bool{a.rank: true}
	a.maybeCommitLocked() // a single-member quorum commits immediately
	return next.Clone(), nil
}

func (a *Agent) suspectedLocked(rank int) bool {
	return rank != a.rank && rank >= 0 && rank < len(a.suspect) && a.suspect[rank]
}

// quorum is a majority of the epoch being transitioned away from.
func quorum(members int) int { return members/2 + 1 }

// maybeCommitLocked commits the pending proposal once a quorum of
// current members has endorsed it: the coordinator adopts the new
// record (drain first), and everyone else learns it as ordinary
// committed-state gossip.
func (a *Agent) maybeCommitLocked() {
	if a.prop == nil {
		return
	}
	n := 0
	for _, m := range a.rec.Members {
		if a.acks[m] {
			n++
		}
	}
	if n < quorum(len(a.rec.Members)) {
		return
	}
	p := a.prop
	a.prop, a.acks = nil, nil
	a.scheduleAdoptLocked(p)
}

// scheduleAdoptLocked queues a superseding record for adoption and
// makes sure the adoption goroutine is running. Adoption happens off
// the gossip loops so the bounded drain never silences heartbeats.
//
//kylix:owned
func (a *Agent) scheduleAdoptLocked(r *Record) {
	if a.pending == nil || r.Supersedes(*a.pending) {
		c := r.Clone()
		a.pending = &c
	}
	if !a.adopting {
		a.adopting = true
		a.wg.Add(1)
		go a.adoptLoop()
	}
}

// adoptLoop drains and cuts over to the newest pending record,
// repeating if more arrive mid-drain: Draining -> Rewiring -> Stable.
func (a *Agent) adoptLoop() {
	defer a.wg.Done()
	for {
		a.mu.Lock()
		target := a.pending
		a.pending = nil
		if target == nil || !target.Supersedes(a.rec) || a.stopped {
			a.adopting = false
			a.mu.Unlock()
			return
		}
		a.phase = PhaseDraining
		drain := a.opts.Drain
		timeout := a.opts.DrainTimeout
		a.mu.Unlock()

		start := time.Now()
		if drain != nil {
			drain(timeout)
		}
		drained := time.Since(start)

		now := time.Now()
		a.mu.Lock()
		a.phase = PhaseRewiring
		a.rec = *target
		if a.promise != nil && a.promise.Epoch <= a.rec.Epoch {
			a.promise = nil
		}
		if a.prop != nil && a.prop.Epoch <= a.rec.Epoch {
			a.prop, a.acks = nil, nil
		}
		// A fresh epoch starts with a clean liveness slate: everyone
		// was silent during the drain, and a newly joined member has
		// never been heard from at all.
		for _, m := range a.rec.Members {
			if m >= 0 && m < len(a.lastHeard) {
				a.lastHeard[m] = now
				a.suspect[m] = false
			}
		}
		a.phase = PhaseStable
		a.mu.Unlock()

		a.met.EpochTransitions.Inc()
		a.met.EpochCurrent.SetMax(int64(target.Epoch))
		a.met.DrainNs.Observe(drained.Nanoseconds())
	}
}

// newestLocked is the most advanced record this agent knows of —
// committed, or queued for adoption.
func (a *Agent) newestLocked() Record {
	if a.pending != nil && a.pending.Supersedes(a.rec) {
		return *a.pending
	}
	return a.rec
}

// tickLoop paces gossip with jittered heartbeats.
func (a *Agent) tickLoop() {
	defer a.wg.Done()
	rng := rand.New(rand.NewSource(a.opts.Seed + int64(a.rank)*1099511628211 + 1))
	// One reusable timer for every heartbeat. A per-tick time.After
	// would leave a dangling timer running up to 1.5 heartbeats past
	// Stop — an elastic cluster cycling agents accretes thousands of
	// them — so the timer's lifetime is bounded by the loop's.
	var t *time.Timer
	defer func() {
		if t != nil {
			t.Stop()
		}
	}()
	for {
		d := a.opts.Heartbeat/2 + time.Duration(rng.Int63n(int64(a.opts.Heartbeat)))
		if t == nil {
			t = time.NewTimer(d)
		} else {
			// Safe to Reset directly: the previous tick consumed t.C.
			t.Reset(d)
		}
		select {
		case <-a.done:
			return
		case <-t.C:
		}
		a.tick(time.Now())
	}
}

// tick refreshes suspicion, advances coordinator duties (auto-evict,
// proposal TTL, commit check) and gossips state: the coordinator to
// every member plus proposed joiners, members to their believed
// coordinator, spares to nobody.
func (a *Agent) tick(now time.Time) {
	a.mu.Lock()
	if a.stopped || !a.rec.HasMember(a.rank) {
		a.mu.Unlock()
		return
	}
	for _, m := range a.rec.Members {
		if m == a.rank || m < 0 || m >= len(a.suspect) {
			continue
		}
		stale := now.Sub(a.lastHeard[m]) > a.opts.SuspectAfter
		if stale && !a.suspect[m] {
			a.met.Suspected.Inc()
		}
		a.suspect[m] = stale
	}
	leader := LeaderOf(a.rec.Members, a.suspectedLocked)
	var targets []int
	if leader == a.rank {
		if a.prop != nil && now.Sub(a.propAt) > a.opts.ProposalTTL {
			a.prop, a.acks = nil, nil // stalled; let the operator resubmit
		}
		if a.opts.AutoEvict && a.prop == nil && a.pending == nil && !a.adopting {
			var dead []int
			for _, m := range a.rec.Members {
				if a.suspectedLocked(m) {
					dead = append(dead, m)
				}
			}
			if len(dead) > 0 {
				if next, err := (Change{Remove: dead}).Apply(a.rec, a.opts.Replication, a.rank); err == nil {
					a.prop = &next
					a.propAt = now
					a.acks = map[int]bool{a.rank: true}
					a.maybeCommitLocked()
				}
				// Divisibility not restorable yet (e.g. one dead rank in
				// an s=2 group): the dead member stays in the record and
				// replica racing masks it until eviction can batch up.
			}
		}
		for _, m := range a.rec.Members {
			if m != a.rank {
				targets = append(targets, m)
			}
		}
		if a.prop != nil {
			for _, m := range a.prop.Members {
				if m != a.rank && !a.rec.HasMember(m) {
					targets = append(targets, m)
				}
			}
		}
	} else {
		targets = []int{leader}
	}
	msgs := a.buildLocked(targets, now)
	a.mu.Unlock()
	a.sendAll(msgs)
}

// buildLocked assembles per-target state messages (each with its own
// clock echo).
func (a *Agent) buildLocked(targets []int, now time.Time) []outMsg {
	base := comm.Control{
		Op:      opState,
		Epoch:   a.rec.Epoch,
		Leader:  int32(a.rec.Leader),
		Members: toInt32(a.rec.Members),
		Degrees: toInt32(a.rec.Degrees),
		Clock:   now.UnixNano(),
	}
	if a.prop != nil {
		base.PropEpoch = a.prop.Epoch
		base.PropLeader = int32(a.prop.Leader)
		base.PropMembers = toInt32(a.prop.Members)
		base.PropDegrees = toInt32(a.prop.Degrees)
	}
	if a.promise != nil && a.promise.Epoch == a.rec.Epoch+1 {
		base.Ack = a.promise.Digest()
	}
	msgs := make([]outMsg, 0, len(targets))
	for _, to := range targets {
		if to < 0 || to >= a.ep.Size() || to == a.rank {
			continue
		}
		c := base
		c.Echo = a.lastClock[to]
		msgs = append(msgs, outMsg{to: to, c: &c})
	}
	return msgs
}

// sendAll delivers built messages outside the lock. ErrClosed means
// this rank is dead (killed or transport torn down) — the agent stops.
func (a *Agent) sendAll(msgs []outMsg) {
	for _, m := range msgs {
		if err := a.ep.Send(m.to, ctlTag, m.c); err != nil {
			if errors.Is(err, comm.ErrClosed) {
				a.markStopped()
			}
			return
		}
	}
}

// recvLoop consumes control messages in arrival order.
func (a *Agent) recvLoop() {
	defer a.wg.Done()
	groups := make([][]int, a.ep.Size())
	for i := range groups {
		groups[i] = []int{i}
	}
	for {
		select {
		case <-a.done:
			return
		default:
		}
		from, p, err := a.ep.RecvGroup(groups, ctlTag)
		if err != nil {
			if errors.Is(err, comm.ErrTimeout) {
				continue
			}
			a.markStopped() // ErrClosed: killed or transport shut down
			return
		}
		c, ok := p.(*comm.Control)
		if !ok {
			continue
		}
		a.handle(from, c, time.Now())
	}
}

// handle processes one incoming control message: liveness bookkeeping,
// RTT from the clock echo, adoption of superseding committed records,
// stale-epoch rejection with rate-limited anti-entropy, promise
// handling for proposals, and ack accounting for this agent's own
// proposal.
func (a *Agent) handle(from int, c *comm.Control, now time.Time) {
	if from == a.rank {
		return // self-poke from Stop
	}
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return
	}
	if from >= 0 && from < len(a.lastHeard) {
		a.lastHeard[from] = now
		a.lastClock[from] = c.Clock
		a.suspect[from] = false
	}
	if c.Echo != 0 {
		if rtt := now.UnixNano() - c.Echo; rtt >= 0 {
			a.met.HeartbeatRTT.Observe(rtt)
		}
	}
	var replies []outMsg
	msgRec := Record{
		Epoch:   c.Epoch,
		Leader:  int(c.Leader),
		Members: toInts(c.Members),
		Degrees: toInts(c.Degrees),
	}
	cur := a.newestLocked()
	switch {
	case msgRec.Supersedes(cur):
		a.scheduleAdoptLocked(&msgRec)
	case cur.Supersedes(msgRec):
		// Stale epoch: reject, and answer (rate-limited) with our own
		// state so a lagging peer catches up fast.
		a.met.StaleEpochRejected.Inc()
		if from >= 0 && from < len(a.lastFix) && now.Sub(a.lastFix[from]) > a.opts.Heartbeat {
			a.lastFix[from] = now
			replies = append(replies, a.buildLocked([]int{from}, now)...)
		}
	}
	if c.PropEpoch != 0 && c.PropEpoch == a.rec.Epoch+1 && a.rec.HasMember(a.rank) {
		p := Record{
			Epoch:   c.PropEpoch,
			Leader:  int(c.PropLeader),
			Members: toInts(c.PropMembers),
			Degrees: toInts(c.PropDegrees),
		}
		if a.acceptPromiseLocked(&p) {
			a.promise = &p
			// Immediate endorsement straight to the proposer (the next
			// periodic gossip may be aimed at a different believed
			// leader).
			replies = append(replies, a.buildLocked([]int{p.Leader}, now)...)
		}
	}
	if a.prop != nil && c.Ack != 0 && c.Ack == a.prop.Digest() && a.rec.HasMember(from) {
		a.acks[from] = true
		a.maybeCommitLocked()
	}
	a.mu.Unlock()
	a.sendAll(replies)
}

// acceptPromiseLocked decides whether to endorse proposal p given any
// standing promise: re-offers of the same proposal are idempotent, a
// promise to a proposer now suspected dead is released, and duels
// between live proposers resolve toward the lower rank (which is also
// how leadership itself resolves).
func (a *Agent) acceptPromiseLocked(p *Record) bool {
	if a.promise == nil {
		return true
	}
	if a.promise.Epoch != p.Epoch {
		return p.Epoch == a.rec.Epoch+1
	}
	if a.promise.Digest() == p.Digest() {
		return true
	}
	if a.suspectedLocked(a.promise.Leader) {
		return true
	}
	return p.Leader < a.promise.Leader
}

func toInt32(vs []int) []int32 {
	out := make([]int32, len(vs))
	for i, v := range vs {
		out[i] = int32(v)
	}
	return out
}

func toInts(vs []int32) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = int(v)
	}
	return out
}
