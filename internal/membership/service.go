package membership

import (
	"errors"
	"fmt"
	"time"
)

// pollEvery is the Service's convergence-poll granularity.
const pollEvery = 2 * time.Millisecond

// Service is the operator-side facade over a cluster's agents: it
// routes membership changes to whichever agent currently coordinates,
// retries across leader failover (the coordinator dying mid-transition
// included), and answers "has everyone converged" for cutover checks.
// It holds one agent per provisioned physical rank; which of them are
// usable at any instant is delegated to the alive predicate (in
// production, transport/fault-fabric liveness).
type Service struct {
	agents []*Agent
	alive  func(rank int) bool
}

// NewService wraps the per-rank agents. alive reports external
// liveness for a physical rank (nil = always alive); a stopped agent is
// unusable regardless.
func NewService(agents []*Agent, alive func(rank int) bool) *Service {
	return &Service{agents: agents, alive: alive}
}

// Agent returns the agent for a physical rank (nil if out of range).
func (s *Service) Agent(rank int) *Agent {
	if rank < 0 || rank >= len(s.agents) {
		return nil
	}
	return s.agents[rank]
}

// Stop shuts down every agent.
func (s *Service) Stop() {
	for _, a := range s.agents {
		if a != nil {
			a.Stop()
		}
	}
}

func (s *Service) usable(rank int) bool {
	a := s.Agent(rank)
	if a == nil || a.Stopped() {
		return false
	}
	return s.alive == nil || s.alive(rank)
}

// Snapshot returns the most advanced committed record any usable agent
// holds (falling back to unusable agents' records if none are usable,
// so a fully wedged cluster still reports its last known epoch).
func (s *Service) Snapshot() Record {
	var best Record
	found := false
	for rank, a := range s.agents {
		if a == nil || !s.usable(rank) {
			continue
		}
		if r := a.Record(); !found || r.Supersedes(best) {
			best, found = r, true
		}
	}
	if !found {
		for _, a := range s.agents {
			if a == nil {
				continue
			}
			if r := a.Record(); r.Supersedes(best) {
				best = r
			}
		}
	}
	return best
}

// convergedOn reports whether every usable member agent of rec has
// committed exactly rec and settled back to Stable.
func (s *Service) convergedOn(rec Record) bool {
	want := rec.Digest()
	live := 0
	for _, m := range rec.Members {
		if !s.usable(m) {
			continue
		}
		live++
		a := s.Agent(m)
		if a.Record().Digest() != want || !a.Settled() {
			return false
		}
	}
	return live > 0
}

// WaitConverged blocks until all usable members of the newest epoch
// agree on it bit-for-bit (by Record digest) and have settled, or the
// timeout passes. Returns the converged record.
func (s *Service) WaitConverged(timeout time.Duration) (Record, error) {
	deadline := time.Now().Add(timeout)
	for {
		rec := s.Snapshot()
		if rec.Epoch != 0 && s.convergedOn(rec) {
			return rec, nil
		}
		if time.Now().After(deadline) {
			return rec, fmt.Errorf("membership: convergence timed out at epoch %d", rec.Epoch)
		}
		time.Sleep(pollEvery)
	}
}

// reflected reports whether rec shows the change applied: every added
// rank present, every removed rank gone.
func reflected(ch Change, rec Record) bool {
	for _, a := range ch.Add {
		if !rec.HasMember(a) {
			return false
		}
	}
	for _, r := range ch.Remove {
		if rec.HasMember(r) {
			return false
		}
	}
	return true
}

// Propose drives a membership change to commitment, retrying across
// leader handoff, busy transitions, and coordinator death (when the
// submitting leader is killed mid-transition the change is resubmitted
// to its successor). Validation failures — an invalid delta — abort
// immediately. On success the committed record reflecting the change is
// returned; call WaitConverged to wait for every survivor to settle on
// it.
func (s *Service) Propose(ch Change, timeout time.Duration) (Record, error) {
	deadline := time.Now().Add(timeout)
	var lastErr error
	hint := -1
	submitted := false
	for {
		rec := s.Snapshot()
		// The reflected shortcut only applies once a submission was
		// accepted: before that, a vacuously-satisfied change (removing a
		// rank that was never a member) must still reach Apply and fail
		// validation rather than silently "succeed".
		if submitted && rec.Epoch != 0 && reflected(ch, rec) {
			return rec, nil // committed (possibly by a prior attempt)
		}
		if time.Now().After(deadline) {
			if lastErr == nil {
				lastErr = errors.New("no usable coordinator")
			}
			return rec, fmt.Errorf("membership: propose timed out at epoch %d: %w", rec.Epoch, lastErr)
		}
		leader := hint
		hint = -1
		if leader < 0 || !s.usable(leader) {
			leader = LeaderOf(rec.Members, func(r int) bool { return !s.usable(r) })
		}
		a := s.Agent(leader)
		if a == nil {
			lastErr = fmt.Errorf("no agent for coordinator %d", leader)
			time.Sleep(pollEvery)
			continue
		}
		target, err := a.Submit(ch)
		var nle *NotLeaderError
		switch {
		case err == nil:
			submitted = true
			// Accepted: poll for the commit to surface; if the epoch
			// moves past our target without the change (a competing
			// transition won), loop and resubmit.
			for time.Now().Before(deadline) {
				cur := s.Snapshot()
				if reflected(ch, cur) {
					return cur, nil
				}
				if cur.Epoch >= target.Epoch {
					break // superseded without our change: resubmit
				}
				if a.Stopped() || !s.usable(leader) {
					break // coordinator died mid-transition: resubmit
				}
				time.Sleep(pollEvery)
			}
			lastErr = fmt.Errorf("proposal for epoch %d did not commit", target.Epoch)
		case errors.As(err, &nle):
			hint = nle.Leader
			lastErr = err
			time.Sleep(pollEvery)
		case errors.Is(err, ErrBusy), errors.Is(err, ErrStopped), errors.Is(err, ErrNotMember):
			lastErr = err
			time.Sleep(pollEvery)
		default:
			return rec, err // the change itself is invalid
		}
	}
}
