package membership

import (
	"fmt"

	"kylix/internal/comm"
)

// View presents the member subset of a physical transport as a dense
// [0, len(members)) cluster: rank i of the view is the i-th member in
// sorted physical-rank order. The data plane runs each epoch over a
// View, so the core protocol and the replica layer see exactly the
// cluster shape a freshly built deployment of the surviving machines
// would have — which is what makes post-churn results bit-identical to
// a fresh Configure and lets Config.Digest() act as the cutover oracle.
//
// Tags pass through untranslated: the underlying mailbox/tag space is
// shared across epochs, and round-base accounting above the view keeps
// successive epochs' tags disjoint.
type View struct {
	ep      comm.Endpoint
	rank    int   // dense rank of this machine
	members []int // dense -> physical
	dense   []int // physical -> dense (-1 for non-members)
}

// NewView wraps ep as the dense member view. The endpoint's physical
// rank must be a member.
func NewView(ep comm.Endpoint, members []int) (*View, error) {
	v := &View{ep: ep, members: append([]int(nil), members...)}
	v.dense = make([]int, ep.Size())
	for i := range v.dense {
		v.dense[i] = -1
	}
	for d, p := range v.members {
		if p < 0 || p >= ep.Size() {
			return nil, fmt.Errorf("membership: member %d outside physical cluster [0,%d)", p, ep.Size())
		}
		if v.dense[p] != -1 {
			return nil, fmt.Errorf("membership: member %d listed twice", p)
		}
		v.dense[p] = d
	}
	v.rank = v.dense[ep.Rank()]
	if v.rank < 0 {
		return nil, fmt.Errorf("membership: rank %d is not a member of the view", ep.Rank())
	}
	return v, nil
}

// Rank implements comm.Endpoint (the dense member rank).
func (v *View) Rank() int { return v.rank }

// Size implements comm.Endpoint (the member count).
func (v *View) Size() int { return len(v.members) }

func (v *View) phys(dense int) (int, error) {
	if dense < 0 || dense >= len(v.members) {
		return 0, fmt.Errorf("membership: dense rank %d outside view [0,%d)", dense, len(v.members))
	}
	return v.members[dense], nil
}

// Send implements comm.Endpoint.
func (v *View) Send(to int, tag comm.Tag, p comm.Payload) error {
	pt, err := v.phys(to)
	if err != nil {
		return err
	}
	return v.ep.Send(pt, tag, p)
}

// Recv implements comm.Endpoint.
func (v *View) Recv(from int, tag comm.Tag) (comm.Payload, error) {
	pf, err := v.phys(from)
	if err != nil {
		return nil, err
	}
	return v.ep.Recv(pf, tag)
}

// RecvAny implements comm.Endpoint.
func (v *View) RecvAny(froms []int, tag comm.Tag) (int, comm.Payload, error) {
	phys := make([]int, len(froms))
	for i, f := range froms {
		pf, err := v.phys(f)
		if err != nil {
			return 0, nil, err
		}
		phys[i] = pf
	}
	winner, p, err := v.ep.RecvAny(phys, tag)
	if err != nil {
		return 0, nil, err
	}
	return v.dense[winner], p, nil
}

// RecvGroup implements comm.Endpoint.
func (v *View) RecvGroup(groups [][]int, tag comm.Tag) (int, comm.Payload, error) {
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	phys := make([][]int, len(groups))
	backing := make([]int, 0, total)
	for i, g := range groups {
		start := len(backing)
		for _, f := range g {
			pf, err := v.phys(f)
			if err != nil {
				return 0, nil, err
			}
			backing = append(backing, pf)
		}
		phys[i] = backing[start:len(backing):len(backing)]
	}
	winner, p, err := v.ep.RecvGroup(phys, tag)
	if err != nil {
		return 0, nil, err
	}
	return v.dense[winner], p, nil
}

// Close implements comm.Endpoint.
func (v *View) Close() error { return v.ep.Close() }
