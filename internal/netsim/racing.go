package netsim

import (
	"math"
	"math/rand"
)

// RacingModel quantifies §V-B's packet-racing claim: on networks with
// high latency variance, replication lets every receive take the
// *fastest* replica's copy, turning the tail of the latency distribution
// from an adversary into an ally. A phase that must hear from d peers
// completes at the maximum over d draws; with s-way replication each
// draw is the minimum of s independent copies.
type RacingModel struct {
	// BaseLatency is the median per-message latency.
	BaseLatency float64
	// Sigma is the log-normal spread of latencies (0 = deterministic;
	// ~0.5 is a loaded multi-tenant cloud; EC2 studies report heavy
	// tails).
	Sigma float64
}

// PhaseLatency estimates, by Monte Carlo, the expected completion
// latency of a phase that waits for d peer messages, each replicated s
// ways, under log-normal message latencies. rng keeps it deterministic
// for tests and tables.
func (rm RacingModel) PhaseLatency(rng *rand.Rand, d, s, trials int) float64 {
	if d < 1 || s < 1 || trials < 1 {
		return 0
	}
	total := 0.0
	for t := 0; t < trials; t++ {
		worst := 0.0
		for peer := 0; peer < d; peer++ {
			best := rm.draw(rng)
			for replica := 1; replica < s; replica++ {
				if v := rm.draw(rng); v < best {
					best = v
				}
			}
			if best > worst {
				worst = best
			}
		}
		total += worst
	}
	return total / float64(trials)
}

// draw samples one log-normal latency with median BaseLatency.
func (rm RacingModel) draw(rng *rand.Rand) float64 {
	if rm.Sigma == 0 {
		return rm.BaseLatency
	}
	return rm.BaseLatency * math.Exp(rm.Sigma*rng.NormFloat64())
}
