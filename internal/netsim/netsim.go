// Package netsim models the commodity-cluster network of the paper's
// evaluation (64 cc2.8xlarge EC2 nodes, 10 Gb/s Ethernet) so that the
// traffic traces recorded from real protocol runs can be converted into
// modelled cluster seconds. The model is a LogGP-style decomposition:
// each message costs a fixed per-message overhead o (TCP stack,
// switching, thread hand-off) plus wire time bytes/BW, plus a per-round
// latency. The overhead term is what creates the minimum-efficient-
// packet-size effect of Figure 2: measured goodput for packets of size s
// is s/(o + s/BW) = BW*s/(s + o*BW), a saturating curve with
// half-throughput point s0 = o*BW.
//
// Absolute constants are calibrated, not measured (we have no EC2
// testbed); all figure reproductions therefore claim shape fidelity —
// who wins, by what rough factor, where curves bend — not seconds.
package netsim

import "math"

// Model holds the cluster cost parameters.
type Model struct {
	// BandwidthBps is per-NIC bandwidth in bytes/second.
	BandwidthBps float64
	// MsgOverheadSec is the fixed per-message cost (setup/teardown,
	// kernel crossings, switch latency contribution). It divides across
	// sender threads up to Cores, and its product with BandwidthBps is
	// the half-throughput packet size of the Figure 2 curve.
	MsgOverheadSec float64
	// LatencySec is the per-communication-round propagation latency.
	LatencySec float64
	// CopyBps is the single-thread memory-copy throughput of the socket
	// stack ("standard TCP/IP socket software has many memory-to-memory
	// copy operations, whose overhead is significant at 10Gb/s" — §VII).
	// Copies parallelize across threads, which is what makes the
	// Figure 7 thread sweep matter.
	CopyBps float64
	// IncastCoef models TCP incast/contention: a node receiving from f
	// concurrent senders sees its effective wire time stretched by
	// (1 + IncastCoef*(f-1)). This is the second mechanism (after the
	// packet floor) that punishes the direct all-to-all's 63-way fan-in.
	IncastCoef float64
	// Cores bounds useful send/receive threading per node (the Figure 7
	// flattening point; cc2.8xlarge has 16 hardware threads).
	Cores int
	// OpsPerSec models local compute (merge + SpMV) throughput in
	// element-operations/second for the compute part of Figure 9.
	OpsPerSec float64
	// DiskBps and SerializeBps drive the Hadoop-proxy MapReduce model:
	// every shuffle record crosses the serializer and the disk.
	DiskBps      float64
	SerializeBps float64
}

// EC2 returns the model calibrated to the paper's cluster: 10 Gb/s
// NICs, ~5 MB minimum efficient packets (goodput 80% of peak there,
// ~24% at the 0.4 MB packets direct allreduce produces on the Twitter
// workload, matching the paper's "about 30% of full bandwidth"), 16
// hardware threads, and an achieved-bandwidth ceiling of roughly 3 Gb/s
// per node once per-message overheads are paid — all §VII observations.
func EC2() Model {
	return Model{
		BandwidthBps:   1.25e9,  // 10 Gb/s
		MsgOverheadSec: 0.75e-3, // s0 = 0.94 MB: 0.4 MB packets -> 30%, 5 MB -> 84%
		LatencySec:     3e-4,
		CopyBps:        4e8, // single-thread socket-stack copies (~3 Gb/s achieved)
		IncastCoef:     0.04,
		Cores:          16,
		OpsPerSec:      2e8, // random-access SpMV element ops (memory-latency-bound)
		DiskBps:        1e8, // HDFS-era spinning disk
		SerializeBps:   5e7, // reflection-heavy Java serialization
	}
}

// HalfPacket is the packet size at which goodput reaches half of peak
// bandwidth (s0 = o * BW).
func (m Model) HalfPacket() float64 { return m.MsgOverheadSec * m.BandwidthBps }

// Goodput returns the effective bytes/second achieved when streaming
// packets of the given size: BW * s / (s + s0).
func (m Model) Goodput(packetBytes float64) float64 {
	if packetBytes <= 0 {
		return 0
	}
	return m.BandwidthBps * packetBytes / (packetBytes + m.HalfPacket())
}

// GoodputFraction is Goodput normalized by peak bandwidth.
func (m Model) GoodputFraction(packetBytes float64) float64 {
	return m.Goodput(packetBytes) / m.BandwidthBps
}

// MinEfficientPacket returns the packet size achieving the given
// fraction of peak bandwidth (the design workflow's "smallest efficient
// packet"; the paper's 5 MB corresponds to ~0.8 on this calibration).
func (m Model) MinEfficientPacket(fraction float64) float64 {
	if fraction <= 0 || fraction >= 1 {
		return math.NaN()
	}
	return fraction / (1 - fraction) * m.HalfPacket()
}

// effectiveThreads clamps a thread count to [1, Cores]: hardware
// threads bound useful concurrency (Figure 7 flattens at 16).
func (m Model) effectiveThreads(threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	if threads > m.Cores {
		threads = m.Cores
	}
	return float64(threads)
}

// NodePhaseTime models the time one node needs to exchange nodeMsgs
// messages totalling nodeBytes (wire traffic only, self-sends excluded)
// using the given thread count. Four components:
//
//   - per-message overhead and memory copies, both of which parallelize
//     across threads up to Cores (the Figure 7 effect);
//   - wire time at the packet-size-dependent goodput of Figure 2 — many
//     small messages move bytes far below peak bandwidth;
//   - incast stretching proportional to the concurrent fan-in;
//   - one propagation latency per round.
func (m Model) NodePhaseTime(nodeMsgs int64, nodeBytes int64, threads int) float64 {
	if nodeMsgs <= 0 {
		return 0
	}
	t := m.effectiveThreads(threads)
	overhead := float64(nodeMsgs) * m.MsgOverheadSec / t
	copies := 0.0
	if m.CopyBps > 0 {
		copies = float64(nodeBytes) / m.CopyBps / t
	}
	msgSize := float64(nodeBytes) / float64(nodeMsgs)
	wire := 0.0
	if nodeBytes > 0 {
		wire = float64(nodeBytes) / m.Goodput(msgSize)
		wire *= 1 + m.IncastCoef*float64(nodeMsgs-1)
	}
	return overhead + copies + wire + m.LatencySec
}

// ComputeTime models local element-wise compute (merging, SpMV) on n
// elements.
func (m Model) ComputeTime(elements int64) float64 {
	return float64(elements) / m.OpsPerSec
}

// DiskTime models sequential disk transfer of n bytes.
func (m Model) DiskTime(bytes int64) float64 { return float64(bytes) / m.DiskBps }

// SerializeTime models (de)serialization of n bytes.
func (m Model) SerializeTime(bytes int64) float64 { return float64(bytes) / m.SerializeBps }

// SweepPoint is one row of the Figure 2 packet-size sweep.
type SweepPoint struct {
	PacketBytes float64
	// GoodputBps is the modelled effective throughput.
	GoodputBps float64
	// Fraction is GoodputBps / peak.
	Fraction float64
}

// PacketSweep evaluates the throughput-vs-packet-size curve of Figure 2
// at the given sizes.
func (m Model) PacketSweep(sizes []float64) []SweepPoint {
	out := make([]SweepPoint, len(sizes))
	for i, s := range sizes {
		out[i] = SweepPoint{PacketBytes: s, GoodputBps: m.Goodput(s), Fraction: m.GoodputFraction(s)}
	}
	return out
}
