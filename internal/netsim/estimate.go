package netsim

import (
	"fmt"
	"strings"

	"kylix/internal/comm"
	"kylix/internal/trace"
)

// LayerTime is the modelled duration of one (kind, layer) phase.
type LayerTime struct {
	Kind  comm.Kind
	Layer int
	// Seconds is the modelled per-layer completion time (layers are
	// near-barriers in the protocol, so phase time is the busiest node's
	// time).
	Seconds float64
	// WireBytes is the non-self traffic of the layer across the network,
	// in the raw-equivalent (uncompressed) format the model charges.
	WireBytes int64
	// MsgBytes is the average wire message size, the quantity the
	// packet-floor design rule constrains.
	MsgBytes float64
}

// Report aggregates modelled times per protocol phase, mirroring the
// config-time / reduce-time split of Figure 6 and Table I.
type Report struct {
	// ConfigSec is the downward configuration pass (KindConfig plus any
	// fused KindConfigReduce traffic).
	ConfigSec float64
	// ReduceSec is the reduction: scatter-reduce plus allgather.
	ReduceSec float64
	// Layers holds the per-layer breakdown.
	Layers []LayerTime
}

// TotalSec is the whole allreduce round.
func (r Report) TotalSec() float64 { return r.ConfigSec + r.ReduceSec }

// String renders the report for logs.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "config %.4fs reduce %.4fs total %.4fs\n", r.ConfigSec, r.ReduceSec, r.TotalSec())
	for _, lt := range r.Layers {
		fmt.Fprintf(&b, "  %-14s L%d  %.4fs  wire=%d  msg=%.0fB\n", lt.Kind, lt.Layer, lt.Seconds, lt.WireBytes, lt.MsgBytes)
	}
	return b.String()
}

// Estimate converts a recorded traffic trace into modelled cluster time
// under the model with the given per-node thread count. Per layer, the
// modelled time is the average live node's wire traffic pushed through
// the NodePhaseTime cost (hash partitioning balances nodes, so mean and
// max coincide up to noise; self-sends move no wire bytes and are
// excluded).
//
// The model charges the raw-equivalent volume (8 bytes per index key),
// not the compressed wire bytes: the figures this estimator feeds
// reproduce the paper's evaluation, and the paper's implementation
// ships uncompressed keys. Charging compressed bytes would silently
// shift every paper-anchored comparison (e.g. the binary butterfly's
// extra-layer penalty in Figure 6 mostly evaporates, because the dense
// lower layers compress best). The codec's real saving is reported
// separately, as the RawBytes/Bytes ratio in TrafficReport and the
// kylix-bench compression table.
func Estimate(col *trace.Collector, m Model, threads int) Report {
	nodes := int64(col.Machines())
	if nodes == 0 {
		return Report{}
	}
	var rep Report
	for _, lt := range col.Layers() {
		wireMsgs := lt.Msgs - lt.SelfMsgs
		wireBytes := lt.RawBytes - lt.SelfRawBytes
		perNodeMsgs := (wireMsgs + nodes - 1) / nodes
		perNodeBytes := wireBytes / nodes
		sec := m.NodePhaseTime(perNodeMsgs, perNodeBytes, threads)
		var msgBytes float64
		if wireMsgs > 0 {
			msgBytes = float64(wireBytes) / float64(wireMsgs)
		}
		rep.Layers = append(rep.Layers, LayerTime{
			Kind: lt.Kind, Layer: lt.Layer, Seconds: sec,
			WireBytes: wireBytes, MsgBytes: msgBytes,
		})
		switch lt.Kind {
		case comm.KindConfig, comm.KindConfigReduce:
			rep.ConfigSec += sec
		case comm.KindReduce, comm.KindGather:
			rep.ReduceSec += sec
		}
	}
	return rep
}
