package netsim

import (
	"math"
	"math/rand"
	"testing"

	"kylix/internal/comm"
	"kylix/internal/trace"
)

func TestGoodputCurveShape(t *testing.T) {
	m := EC2()
	if m.Goodput(0) != 0 || m.Goodput(-5) != 0 {
		t.Error("non-positive packets should have zero goodput")
	}
	// Monotone increasing, asymptoting to peak.
	prev := 0.0
	for _, s := range []float64{1 << 10, 1 << 16, 1 << 20, 5 << 20, 64 << 20} {
		g := m.Goodput(s)
		if g <= prev {
			t.Fatalf("goodput not increasing at %g", s)
		}
		if g >= m.BandwidthBps {
			t.Fatalf("goodput exceeds peak at %g", s)
		}
		prev = g
	}
}

func TestCalibrationMatchesPaperAnchors(t *testing.T) {
	m := EC2()
	// ~5 MB packets mask the overhead (paper: minimum efficient size).
	if f := m.GoodputFraction(5 << 20); f < 0.75 {
		t.Errorf("5MB packets reach only %.0f%% of peak", 100*f)
	}
	// 0.4 MB packets fall to roughly 30% of bandwidth (paper Fig 2/6).
	if f := m.GoodputFraction(0.4 * float64(1<<20)); f < 0.15 || f > 0.45 {
		t.Errorf("0.4MB packets reach %.0f%%, want ~24-30%%", 100*f)
	}
	// Half-throughput point is o*BW.
	if hp := m.HalfPacket(); math.Abs(m.GoodputFraction(hp)-0.5) > 1e-9 {
		t.Error("half-packet point is not half throughput")
	}
}

func TestMinEfficientPacketInvertsGoodput(t *testing.T) {
	m := EC2()
	for _, frac := range []float64{0.3, 0.5, 0.8, 0.95} {
		s := m.MinEfficientPacket(frac)
		if math.Abs(m.GoodputFraction(s)-frac) > 1e-9 {
			t.Errorf("MinEfficientPacket(%g) = %g does not invert", frac, s)
		}
	}
	if !math.IsNaN(m.MinEfficientPacket(0)) || !math.IsNaN(m.MinEfficientPacket(1)) {
		t.Error("degenerate fractions should return NaN")
	}
}

func TestNodePhaseTimeThreadScaling(t *testing.T) {
	m := EC2()
	const msgs, bytes = 64, 64 << 20
	t1 := m.NodePhaseTime(msgs, bytes, 1)
	t4 := m.NodePhaseTime(msgs, bytes, 4)
	t16 := m.NodePhaseTime(msgs, bytes, 16)
	t32 := m.NodePhaseTime(msgs, bytes, 32)
	if !(t1 > t4 && t4 > t16) {
		t.Fatalf("threading should help: %g %g %g", t1, t4, t16)
	}
	// Beyond the core count the benefit is gone (Figure 7 flattening).
	if t32 != t16 {
		t.Fatalf("t32=%g t16=%g; gains should stop at Cores", t32, t16)
	}
	// Wire time is a floor no threading removes.
	if t16 < float64(bytes)/m.BandwidthBps {
		t.Fatal("phase time fell below wire time")
	}
	if m.NodePhaseTime(0, 0, 4) != 0 {
		t.Fatal("empty phase should cost nothing")
	}
}

func TestComputeDiskSerializeLinear(t *testing.T) {
	m := EC2()
	if m.ComputeTime(2e9) <= m.ComputeTime(1e9) {
		t.Error("compute not monotone")
	}
	if m.DiskTime(1e8) <= 0 || m.SerializeTime(5e7) <= 0 {
		t.Error("disk/serialize times must be positive")
	}
	if math.Abs(m.DiskTime(int64(m.DiskBps))-1) > 1e-9 {
		t.Error("DiskTime(m.DiskBps bytes) should be 1s")
	}
}

func TestPacketSweep(t *testing.T) {
	m := EC2()
	sizes := []float64{64 << 10, 1 << 20, 5 << 20}
	pts := m.PacketSweep(sizes)
	if len(pts) != 3 {
		t.Fatal("wrong sweep length")
	}
	for i, p := range pts {
		if p.PacketBytes != sizes[i] || p.Fraction != m.GoodputFraction(sizes[i]) {
			t.Fatal("sweep point inconsistent")
		}
	}
}

func TestEstimateSeparatesPhases(t *testing.T) {
	col := trace.NewCollector(4)
	// Config traffic at layer 1, reduce at layers 1-2, gather at 1.
	for from := 0; from < 4; from++ {
		col.Record(from, (from+1)%4, comm.MakeTag(comm.KindConfig, 1, 0), 1<<20)
		col.Record(from, from, comm.MakeTag(comm.KindConfig, 1, 0), 1<<20) // self: free
		col.Record(from, (from+1)%4, comm.MakeTag(comm.KindReduce, 1, 0), 1<<20)
		col.Record(from, (from+2)%4, comm.MakeTag(comm.KindReduce, 2, 0), 1<<19)
		col.Record(from, (from+1)%4, comm.MakeTag(comm.KindGather, 1, 0), 1<<19)
	}
	rep := Estimate(col, EC2(), 16)
	if rep.ConfigSec <= 0 || rep.ReduceSec <= 0 {
		t.Fatalf("phases missing: %+v", rep)
	}
	if len(rep.Layers) != 4 {
		t.Fatalf("want 4 layer rows, got %d", len(rep.Layers))
	}
	if rep.TotalSec() != rep.ConfigSec+rep.ReduceSec {
		t.Fatal("total inconsistent")
	}
	// Self traffic must not be charged: config row should show exactly
	// the non-self bytes.
	for _, lt := range rep.Layers {
		if lt.Kind == comm.KindConfig && lt.WireBytes != 4<<20 {
			t.Fatalf("config wire bytes = %d, want %d", lt.WireBytes, 4<<20)
		}
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestEstimateSmallPacketsCostMore(t *testing.T) {
	// Same byte volume in many small messages must take longer than in
	// few large ones: the effect that kills direct allreduce at scale.
	mkCol := func(msgs int, msgSize int) *trace.Collector {
		col := trace.NewCollector(2)
		for i := 0; i < msgs; i++ {
			col.Record(0, 1, comm.MakeTag(comm.KindReduce, 1, uint32(i)), msgSize)
		}
		return col
	}
	m := EC2()
	small := Estimate(mkCol(64, 1<<18), m, 1)
	large := Estimate(mkCol(4, 1<<22), m, 1)
	if small.ReduceSec <= large.ReduceSec {
		t.Fatalf("small packets %.4fs should cost more than large %.4fs",
			small.ReduceSec, large.ReduceSec)
	}
}

func TestEstimateFusedConfigReduceCountsAsConfig(t *testing.T) {
	col := trace.NewCollector(2)
	col.Record(0, 1, comm.MakeTag(comm.KindConfigReduce, 1, 0), 1<<20)
	rep := Estimate(col, EC2(), 4)
	if rep.ConfigSec <= 0 || rep.ReduceSec != 0 {
		t.Fatalf("fused traffic misclassified: %+v", rep)
	}
}

func TestEstimateEmptyCollector(t *testing.T) {
	rep := Estimate(trace.NewCollector(0), EC2(), 4)
	if rep.TotalSec() != 0 || len(rep.Layers) != 0 {
		t.Fatal("empty trace should produce empty report")
	}
}

func TestRacingModelProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rm := RacingModel{BaseLatency: 2, Sigma: 0}
	// Deterministic latencies: phase latency is exactly the base.
	if v := rm.PhaseLatency(rng, 8, 1, 100); v != 2 {
		t.Fatalf("deterministic phase latency %f", v)
	}
	if rm.PhaseLatency(rng, 0, 1, 10) != 0 || rm.PhaseLatency(rng, 1, 0, 10) != 0 {
		t.Fatal("degenerate inputs should return 0")
	}
	// More peers -> longer expected max; more replicas -> shorter.
	rm.Sigma = 0.8
	d4 := rm.PhaseLatency(rng, 4, 1, 20000)
	d16 := rm.PhaseLatency(rng, 16, 1, 20000)
	if d16 <= d4 {
		t.Fatalf("max over more peers should grow: %f vs %f", d4, d16)
	}
	s1 := rm.PhaseLatency(rng, 8, 1, 20000)
	s2 := rm.PhaseLatency(rng, 8, 2, 20000)
	s3 := rm.PhaseLatency(rng, 8, 3, 20000)
	if !(s3 < s2 && s2 < s1) {
		t.Fatalf("racing should shorten phases: %f %f %f", s1, s2, s3)
	}
}
