package analysis_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"kylix/internal/analysis"
)

// The fixture tests mirror x/tools' analysistest: each package under
// testdata/src carries `// want "substring"` comments on the lines
// where a diagnostic must appear, and every diagnostic must be claimed
// by exactly one want. Fixtures are real module packages (excluded
// from ./... wildcards by the testdata convention) loaded through the
// same go list pipeline as production runs.

func TestHotPathAllocFixture(t *testing.T) {
	runFixture(t, analysis.HotPathAlloc, "hotpathtest")
}

func TestLockObsFixture(t *testing.T) {
	runFixture(t, analysis.LockObs, "lockobstest")
}

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, analysis.Determinism, "determtest", "determfunc")
}

func TestCommCheckFixture(t *testing.T) {
	runFixture(t, analysis.CommCheck, "commtest")
}

func TestGoLeakFixture(t *testing.T) {
	runFixture(t, analysis.GoLeak, "goleaktest")
}

func TestLockOrderFixture(t *testing.T) {
	runFixture(t, analysis.LockOrder, "lockordertest")
}

func TestAtomicMixFixture(t *testing.T) {
	runFixture(t, analysis.AtomicMix, "atomicmixtest")
}

// TestRepoIsClean is the integration gate: the full suite over the
// whole module must produce zero findings. Reintroducing an
// observer-under-mutex call or an allocating hotpath construct fails
// this test (and `make check`, which runs the same suite via go vet).
func TestRepoIsClean(t *testing.T) {
	ld, err := analysis.Load(repoRoot(t), "./...")
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	diags, err := ld.Run(analysis.All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

func TestByName(t *testing.T) {
	got, err := analysis.ByName("lockobs,commcheck")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "lockobs" || got[1].Name != "commcheck" {
		t.Fatalf("ByName selected %v", got)
	}
	if _, err := analysis.ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	substr  string
	matched bool
}

var (
	wantRE  = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quoteRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

// runFixture loads the named testdata packages, runs one analyzer, and
// reconciles its diagnostics against the fixtures' want comments.
func runFixture(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	patterns := make([]string, len(fixtures))
	for i, f := range fixtures {
		patterns[i] = "./internal/analysis/testdata/src/" + f
	}
	ld, err := analysis.Load(repoRoot(t), patterns...)
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	diags, err := ld.Run([]*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	wants := collectWants(t, ld)
	if len(wants) == 0 {
		t.Fatalf("fixture %v has no want comments", fixtures)
	}
	for _, d := range diags {
		if d.Check != a.Name {
			t.Errorf("diagnostic from wrong analyzer %q: %s", d.Check, d)
			continue
		}
		if w := claim(wants, d.Pos.Filename, d.Pos.Line, d.Message); w == nil {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: missing diagnostic containing %q", filepath.Base(w.file), w.line, w.substr)
		}
	}
}

// claim finds the first unmatched want on the diagnostic's line whose
// substring occurs in the message, and marks it matched.
func claim(wants []*want, file string, line int, message string) *want {
	for _, w := range wants {
		if w.matched || w.file != file || w.line != line {
			continue
		}
		if strings.Contains(message, w.substr) {
			w.matched = true
			return w
		}
	}
	return nil
}

// collectWants scans the loaded fixture sources for want comments.
func collectWants(t *testing.T, ld *analysis.Loader) []*want {
	t.Helper()
	var wants []*want
	for _, lp := range ld.Pkgs {
		if !lp.Target {
			continue
		}
		for _, f := range lp.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := ld.Fset.Position(c.Pos())
					quoted := quoteRE.FindAllString(m[1], -1)
					if len(quoted) == 0 {
						t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					}
					for _, q := range quoted {
						s, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, substr: s})
					}
				}
			}
		}
	}
	return wants
}

// repoRoot resolves the module root so tests work from any package dir.
func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}

// Example output shape, kept close to go vet's own format.
func ExampleDiagnostic_String() {
	d := analysis.Diagnostic{Check: "lockobs", Message: "observer under mutex"}
	d.Pos.Filename = "mailbox.go"
	d.Pos.Line = 42
	d.Pos.Column = 3
	fmt.Println(d)
	// Output: mailbox.go:42:3: [lockobs] observer under mutex
}
