package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix enforces atomic-access discipline on struct fields: a field
// whose address is ever passed to a sync/atomic function
// (atomic.AddInt64(&s.n, 1), atomic.LoadUint32(&s.flag), ...) may not
// be read or written plainly anywhere else in the package. Mixing the
// two access modes is a data race the race detector only catches when a
// test happens to interleave them; statically, a single plain `s.n++`
// next to an atomic increment silently loses updates on real hardware.
//
// The repo's own counters use the typed sync/atomic wrappers
// (atomic.Int64 and friends), which make plain access inexpressible —
// this analyzer keeps that discipline in place by catching any
// hand-rolled atomic that slips back in and then leaks a plain access.
//
// Composite-literal initialization (S{n: 0}) is exempt: construction
// happens before the value is shared. Test files are skipped. Suppress
// a deliberate mixed access (e.g. a read under a mutex that also orders
// the writers) with //kylix:allow atomicmix:<field>.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed via sync/atomic must never be read or written plainly",
	Run:  runAtomicMix,
}

func runAtomicMix(p *Pass) error {
	// Pass 1: collect every struct field whose address flows into a
	// sync/atomic call, remembering the operand nodes so pass 2 does
	// not flag the atomic accesses themselves.
	atomicFields := map[*types.Var]token.Pos{}
	atomicOperands := map[*ast.SelectorExpr]bool{}
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(p, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldVarOf(p, sel); fv != nil {
					if _, seen := atomicFields[fv]; !seen {
						atomicFields[fv] = sel.Pos()
					}
					atomicOperands[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: flag every other (plain) access to those fields.
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicOperands[sel] {
				return true
			}
			fv := fieldVarOf(p, sel)
			if fv == nil {
				return true
			}
			firstAtomic, ok := atomicFields[fv]
			if !ok {
				return true
			}
			owner := ownerTypeName(p, sel.X)
			p.Reportf(sel.Pos(), fv.Name(),
				"field %s.%s is accessed with sync/atomic (e.g. %s) but read/written plainly here; every access must go through sync/atomic (or migrate the field to a typed atomic.* wrapper)",
				owner, fv.Name(), shortPos(p.Fset, firstAtomic))
			return true
		})
	}
	return nil
}

// isSyncAtomicCall matches atomic.XxxT(...) package-level calls from
// sync/atomic (typed wrapper methods like atomic.Int64.Add are safe by
// construction and deliberately excluded).
func isSyncAtomicCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "sync/atomic"
}

// fieldVarOf resolves a selector to the struct field it names, nil for
// anything else (methods, package members, locals).
func fieldVarOf(p *Pass, sel *ast.SelectorExpr) *types.Var {
	fv, _ := p.Info.Uses[sel.Sel].(*types.Var)
	if fv == nil || !fv.IsField() {
		return nil
	}
	return fv
}
