package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder detects potential deadlocks between the project's named
// mutexes. A struct field annotated //kylix:lock <class> joins a global
// lock-class graph; whenever class B is acquired while class A is held
// — directly, or through a statically resolved project-local call chain
// — the analyzer records the edge A -> B. Any cycle in the resulting
// acquisition-order graph is a potential deadlock and is reported at
// every locally contributed edge that completes one.
//
// The per-function analysis is lexical with branch-local held tracking
// (the same model as lockobs); cross-function reasoning flows through
// the vetx facts: each function exports the transitive set of lock
// classes it may acquire, each package exports its lock field names and
// its locally observed edges, and downstream packages fold imported
// edges into their own graph. Interface calls are invisible (no static
// callee), so the graph under-approximates — it never false-positives
// on dynamic dispatch. Self-edges (class A acquired while A is held)
// are reported too: the project's mutexes are not reentrant and no code
// hands over instances of one class.
//
// Test files are skipped. Suppress a deliberate edge with
// //kylix:allow lockorder:<acquired-class>.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "acquisition order over //kylix:lock classes must stay acyclic",
	Run:  runLockOrder,
}

// orderEdge is a locally observed edge, pre-serialization.
type orderEdge struct {
	from, to string
	pos      token.Pos
}

func runLockOrder(p *Pass) error {
	ann := p.Ann()
	// Export this package's lock-class vocabulary so dependents can
	// classify locks on imported types.
	if len(ann.LockFields) > 0 {
		if p.Facts.LockNames == nil {
			p.Facts.LockNames = map[string]string{}
		}
		for k, v := range ann.LockFields {
			p.Facts.LockNames[k] = v
		}
	}

	// Pass 1: per-function direct acquires and local call lists, then a
	// fixpoint for the transitive acquire sets (exported as facts).
	decls := map[string]*ast.FuncDecl{}
	acq := map[string]map[string]bool{}
	localCalls := map[string][]string{}
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			id := DeclID(p.Info, d)
			decls[id] = d
			direct := map[string]bool{}
			ast.Inspect(d.Body, func(n ast.Node) bool {
				switch n.(type) {
				case *ast.FuncLit, *ast.GoStmt:
					// Closures acquire on their own schedule, and a
					// spawned goroutine runs on its own stack — neither
					// extends this function's acquire set.
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if method, class, ok := lockClassOf(p, call); ok {
					if method == "Lock" || method == "RLock" {
						direct[class] = true
					}
					return true
				}
				for _, class := range calleeAcquires(p, call, nil) {
					direct[class] = true
				}
				return true
			})
			acq[id] = direct
			ast.Inspect(d.Body, func(n ast.Node) bool {
				switch n.(type) {
				case *ast.FuncLit, *ast.GoStmt:
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := calleeFunc(p, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == p.Pkg.Path() {
					localCalls[id] = append(localCalls[id], FuncID(fn))
				}
				return true
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for id, callees := range localCalls {
			for _, callee := range callees {
				for class := range acq[callee] {
					if !acq[id][class] {
						acq[id][class] = true
						changed = true
					}
				}
			}
		}
	}
	if p.Facts.Funcs == nil {
		p.Facts.Funcs = map[string]FuncFacts{}
	}
	for id, classes := range acq {
		if len(classes) == 0 {
			continue
		}
		ff := p.Facts.Funcs[id]
		ff.LockAcquires = sortedKeys(classes)
		p.Facts.Funcs[id] = ff
	}

	// Pass 2: walk bodies with branch-local held tracking, recording
	// the edges this package's code contributes.
	w := &orderWalker{p: p, acq: acq, dedup: map[string]bool{}}
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			w.walk(d.Body.List, map[string]bool{})
			// Closure bodies are separate scopes with their own stacks;
			// walk each with a fresh held set.
			ast.Inspect(d.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					w.walk(lit.Body.List, map[string]bool{})
				}
				return true
			})
		}
	}
	p.Facts.LockEdges = append(p.Facts.LockEdges, exportEdges(p, w.edges)...)

	// Pass 3: fold in the edges of every (transitively) imported
	// project package and report each local edge that closes a cycle.
	all := append([]orderEdge{}, w.edges...)
	for _, e := range importedLockEdges(p) {
		all = append(all, orderEdge{from: e.From, to: e.To})
	}
	adj := map[string]map[string]bool{}
	for _, e := range all {
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}
	reported := map[string]bool{}
	for _, e := range w.edges {
		var path []string // e.to ... e.from, closing the cycle
		if e.from == e.to {
			path = []string{e.to}
		} else {
			path = lockPath(adj, e.to, e.from)
		}
		if path == nil {
			continue
		}
		key := e.from + "\x00" + e.to
		if reported[key] {
			continue
		}
		reported[key] = true
		cycle := append([]string{e.from}, path...)
		p.Reportf(e.pos, e.to,
			"acquiring lock class %q while %q is held forms a lock-order cycle: %s — a potential deadlock",
			e.to, e.from, joinArrow(cycle))
	}
	return nil
}

// orderWalker tracks the held lock classes through one function body,
// branch-locally, collecting acquisition-order edges.
type orderWalker struct {
	p     *Pass
	acq   map[string]map[string]bool
	edges []orderEdge
	dedup map[string]bool
}

func (w *orderWalker) walk(stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				w.handleCall(call, held, false)
				continue
			}
			w.scanStmt(stmt, held)
		case *ast.DeferStmt:
			w.handleCall(s.Call, held, true)
		case *ast.GoStmt:
			// The spawned goroutine acquires on its own stack, not
			// under the spawner's held set.
		case *ast.BlockStmt:
			w.walk(s.List, forkClasses(held))
		case *ast.IfStmt:
			if s.Init != nil {
				w.scanStmt(s.Init, held)
			}
			w.scanExpr(s.Cond, held)
			w.walk(s.Body.List, forkClasses(held))
			switch els := s.Else.(type) {
			case *ast.BlockStmt:
				w.walk(els.List, forkClasses(held))
			case *ast.IfStmt:
				w.walk([]ast.Stmt{els}, forkClasses(held))
			}
		case *ast.ForStmt:
			w.walk(s.Body.List, forkClasses(held))
		case *ast.RangeStmt:
			w.scanExpr(s.X, held)
			w.walk(s.Body.List, forkClasses(held))
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.walk(cc.Body, forkClasses(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.walk(cc.Body, forkClasses(held))
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					w.walk(cc.Body, forkClasses(held))
				}
			}
		default:
			w.scanStmt(stmt, held)
		}
	}
}

// handleCall interprets a statement-position (or deferred) call: lock
// operations on classed mutexes update the held set, everything else is
// scanned for acquiring callees.
func (w *orderWalker) handleCall(call *ast.CallExpr, held map[string]bool, deferred bool) {
	if method, class, ok := lockClassOf(w.p, call); ok {
		switch method {
		case "Lock", "RLock":
			if !deferred {
				for from := range held {
					w.addEdge(from, class, call.Pos())
				}
				held[class] = true
			}
		case "Unlock", "RUnlock":
			// A deferred Unlock keeps the section open to function end.
			if !deferred {
				delete(held, class)
			}
		}
		return
	}
	w.scanExpr(call, held)
}

// scanStmt records edges for every acquiring call nested in a
// non-compound statement.
func (w *orderWalker) scanStmt(stmt ast.Stmt, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			w.edgesFor(call, held)
		}
		return true
	})
}

func (w *orderWalker) scanExpr(expr ast.Expr, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			w.edgesFor(call, held)
		}
		return true
	})
}

// edgesFor adds held-set edges for a single resolved call's transitive
// acquires.
func (w *orderWalker) edgesFor(call *ast.CallExpr, held map[string]bool) {
	if method, class, ok := lockClassOf(w.p, call); ok {
		// A nested Lock expression (unusual, but e.g. inside a bound
		// method value) still orders after what is held.
		if method == "Lock" || method == "RLock" {
			for from := range held {
				w.addEdge(from, class, call.Pos())
			}
		}
		return
	}
	for _, class := range calleeAcquires(w.p, call, w.acq) {
		for from := range held {
			w.addEdge(from, class, call.Pos())
		}
	}
}

func (w *orderWalker) addEdge(from, to string, pos token.Pos) {
	key := from + "\x00" + to + "\x00" + shortPos(w.p.Fset, pos)
	if w.dedup[key] {
		return
	}
	w.dedup[key] = true
	w.edges = append(w.edges, orderEdge{from: from, to: to, pos: pos})
}

// lockClassOf matches recv.field.Lock()-shaped calls on fields carrying
// a //kylix:lock class — declared in this package or, for imported
// types, published through the owning package's LockNames facts.
func lockClassOf(p *Pass, call *ast.CallExpr) (method, class string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	inner, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fieldVar, _ := p.Info.Uses[inner.Sel].(*types.Var)
	if fieldVar == nil || !fieldVar.IsField() {
		return "", "", false
	}
	t := p.Info.TypeOf(inner.X)
	if t == nil {
		return "", "", false
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	key := named.Obj().Name() + "." + fieldVar.Name()
	ownerPath := named.Obj().Pkg().Path()
	switch {
	case ownerPath == p.Pkg.Path():
		class = p.Ann().LockFields[key]
	case p.Local(ownerPath):
		if facts := p.ImportFacts(ownerPath); facts != nil {
			class = facts.LockNames[key]
		}
	}
	if class == "" {
		return "", "", false
	}
	return sel.Sel.Name, class, true
}

// calleeAcquires resolves the transitive lock classes a statically
// resolved project-local callee may take: same-package through the
// fixpoint sets (acq, when available), cross-package through facts.
func calleeAcquires(p *Pass, call *ast.CallExpr, acq map[string]map[string]bool) []string {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	path, id := fn.Pkg().Path(), FuncID(fn)
	if path == p.Pkg.Path() {
		if acq == nil {
			return nil // pass 1 resolves local callees via the fixpoint instead
		}
		return sortedKeys(acq[id])
	}
	if !p.Local(path) {
		return nil
	}
	if facts := p.ImportFacts(path); facts != nil {
		return facts.Funcs[id].LockAcquires
	}
	return nil
}

// importedLockEdges unions the edges of every transitively imported
// project package.
func importedLockEdges(p *Pass) []LockEdge {
	var out []LockEdge
	seen := map[string]bool{}
	var visit func(pkg *types.Package)
	visit = func(pkg *types.Package) {
		for _, imp := range pkg.Imports() {
			path := imp.Path()
			if seen[path] || !p.Local(path) {
				continue
			}
			seen[path] = true
			if facts := p.ImportFacts(path); facts != nil {
				out = append(out, facts.LockEdges...)
			}
			visit(imp)
		}
	}
	visit(p.Pkg)
	return out
}

// lockPath finds a path from -> to in the class graph (BFS), inclusive
// of both endpoints, or nil when unreachable. Neighbor expansion is
// sorted so the reported path is deterministic.
func lockPath(adj map[string]map[string]bool, from, to string) []string {
	parent := map[string]string{}
	visited := map[string]bool{from: true}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == to {
			path := []string{cur}
			for cur != from {
				cur = parent[cur]
				path = append([]string{cur}, path...)
			}
			return path
		}
		for _, next := range sortedKeys(adj[cur]) {
			if !visited[next] {
				visited[next] = true
				parent[next] = cur
				queue = append(queue, next)
			}
		}
	}
	return nil
}

func exportEdges(p *Pass, edges []orderEdge) []LockEdge {
	out := make([]LockEdge, 0, len(edges))
	for _, e := range edges {
		out = append(out, LockEdge{From: e.from, To: e.to, Pos: shortPos(p.Fset, e.pos)})
	}
	return out
}

// forkClasses copies the held-class set for branch-local tracking.
func forkClasses(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func joinArrow(classes []string) string {
	s := ""
	for i, c := range classes {
		if i > 0 {
			s += " -> "
		}
		s += c
	}
	return s
}
