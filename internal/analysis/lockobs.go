package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockObs enforces the observability-outside-the-lock contract from the
// runtime observability layer: a comm.RecvObserver, obs.Tracer,
// Observatory or metrics-registry method must never be called while a
// mutex annotated //kylix:obsfree is held. Holding the mailbox (or
// trace-collector shard) mutex across an observer callback reintroduces
// the PR 3 contention bug: every sender serializes behind whatever the
// observer does, and an observer that blocks deadlocks the transport.
//
// The analysis is lexical, per function, with branch-local state: after
// `mu.Lock()` the mutex is held; `mu.Unlock()` inside a branch releases
// it for that branch only (the unlock-then-observe-then-return shape
// the mailbox uses everywhere); `defer mu.Unlock()` keeps the section
// open to the end of the function. Only mutexes matched by field name
// against an //kylix:obsfree annotation participate — obs-internal
// mutexes (e.g. the tracer ring's own lock) are free to guard their own
// state.
var LockObs = &Analyzer{
	Name: "lockobs",
	Doc:  "observability hooks must not be called while an //kylix:obsfree mutex is held",
	Run:  runLockObs,
}

// obsPkgPath is the observability package whose methods are banned
// inside obsfree critical sections.
const obsPkgPath = "kylix/internal/obs"

// recvObserverMethods are the comm.RecvObserver interface methods,
// banned by name regardless of the concrete receiver (transports hold
// the observer as an interface).
var recvObserverMethods = map[string]bool{
	"ObserveRecv":      true,
	"ObserveRecvGroup": true,
}

func runLockObs(p *Pass) error {
	obsfree := p.Ann().ObsfreeFields
	if len(obsfree) == 0 {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			held := map[string]ast.Expr{} // mutex expr string -> Lock call site
			walkLockStmts(p, d.Body.List, held, obsfree)
		}
	}
	return nil
}

// walkLockStmts processes statements in source order. Compound
// statements fork the held set: an Unlock inside an if body releases
// the mutex for that body alone, so the sibling branch — still lexically
// under the lock — keeps being checked.
func walkLockStmts(p *Pass, stmts []ast.Stmt, held map[string]ast.Expr, obsfree map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				handleLockCall(p, call, held, obsfree, false)
			}
		case *ast.DeferStmt:
			handleLockCall(p, s.Call, held, obsfree, true)
		case *ast.BlockStmt:
			walkLockStmts(p, s.List, forkHeld(held), obsfree)
		case *ast.IfStmt:
			if s.Init != nil {
				checkStmtCalls(p, s.Init, held, obsfree)
			}
			checkExprCalls(p, s.Cond, held, obsfree)
			walkLockStmts(p, s.Body.List, forkHeld(held), obsfree)
			switch els := s.Else.(type) {
			case *ast.BlockStmt:
				walkLockStmts(p, els.List, forkHeld(held), obsfree)
			case *ast.IfStmt:
				walkLockStmts(p, []ast.Stmt{els}, forkHeld(held), obsfree)
			}
		case *ast.ForStmt:
			walkLockStmts(p, s.Body.List, forkHeld(held), obsfree)
		case *ast.RangeStmt:
			checkExprCalls(p, s.X, held, obsfree)
			walkLockStmts(p, s.Body.List, forkHeld(held), obsfree)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkLockStmts(p, cc.Body, forkHeld(held), obsfree)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkLockStmts(p, cc.Body, forkHeld(held), obsfree)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkLockStmts(p, cc.Body, forkHeld(held), obsfree)
				}
			}
		default:
			checkStmtCalls(p, stmt, held, obsfree)
		}
	}
}

// handleLockCall interprets one call statement: a Lock/Unlock on an
// obsfree mutex updates the held set; anything else is checked for
// observability calls (including nested call arguments).
func handleLockCall(p *Pass, call *ast.CallExpr, held map[string]ast.Expr, obsfree map[string]bool, deferred bool) {
	if name, mutexKey, ok := mutexOp(p, call, obsfree); ok {
		switch name {
		case "Lock", "RLock":
			if !deferred {
				held[mutexKey] = call.Fun
			}
		case "Unlock", "RUnlock":
			// A deferred Unlock pairs with the Lock above it: the
			// section stays lexically open to the end of the function.
			if !deferred {
				delete(held, mutexKey)
			}
		}
		return
	}
	checkExprCalls(p, call, held, obsfree)
}

// mutexOp matches a call of the form recv.field.Lock() where field is
// annotated //kylix:obsfree, returning the method name and a key
// identifying the mutex expression.
func mutexOp(p *Pass, call *ast.CallExpr, obsfree map[string]bool) (method, key string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	// The receiver must be a selector ending in an annotated field:
	// m.mu.Lock(), sh.mu.Lock(), c.shards[i].mu.Lock().
	inner, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fieldVar, _ := p.Info.Uses[inner.Sel].(*types.Var)
	if fieldVar == nil || !fieldVar.IsField() {
		return "", "", false
	}
	owner := ownerTypeName(p, inner.X)
	if owner == "" || !obsfree[owner+"."+fieldVar.Name()] {
		return "", "", false
	}
	return sel.Sel.Name, exprString(inner), true
}

// ownerTypeName names the struct type of the expression the mutex field
// is selected from (pointers stripped).
func ownerTypeName(p *Pass, expr ast.Expr) string {
	t := p.Info.TypeOf(expr)
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// checkStmtCalls scans one non-compound statement for observability
// calls made while a mutex is held.
func checkStmtCalls(p *Pass, stmt ast.Stmt, held map[string]ast.Expr, obsfree map[string]bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			reportObsCall(p, call, held)
		}
		return true
	})
}

// checkExprCalls scans an expression subtree for observability calls.
func checkExprCalls(p *Pass, expr ast.Expr, held map[string]ast.Expr, obsfree map[string]bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			reportObsCall(p, call, held)
		}
		return true
	})
}

// reportObsCall flags call if it targets an observability hook while
// any obsfree mutex is held.
func reportObsCall(p *Pass, call *ast.CallExpr, held map[string]ast.Expr) {
	if len(held) == 0 {
		return
	}
	name, why := obsCallee(p, call)
	if name == "" {
		return
	}
	var mutexes []string
	for k := range held {
		mutexes = append(mutexes, k)
	}
	sort.Strings(mutexes)
	p.Reportf(call.Pos(), "",
		"%s called while %s is held (%s); release the mutex before notifying observers",
		name, strings.Join(mutexes, ", "), why)
}

// obsCallee classifies the call's target: a RecvObserver method (by
// interface method set), any method on a kylix/internal/obs type, or a
// method named like the observer hooks.
func obsCallee(p *Pass, call *ast.CallExpr) (name, why string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, _ := p.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", ""
	}
	if recvObserverMethods[fn.Name()] {
		return fn.Name(), "comm.RecvObserver hook"
	}
	recvType := sig.Recv().Type()
	if ptr, ok := recvType.(*types.Pointer); ok {
		recvType = ptr.Elem()
	}
	if named, ok := recvType.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == obsPkgPath {
			return obj.Name() + "." + fn.Name(), "kylix/internal/obs method"
		}
	}
	// Observer-shaped helpers (observeRecv, ObserveDelivery, ...): the
	// analysis is lexical, so a local wrapper that forwards to the real
	// hook would otherwise smuggle the call under the lock.
	if strings.HasPrefix(fn.Name(), "Observe") || strings.HasPrefix(fn.Name(), "observe") {
		return fn.Name(), "observer-shaped method"
	}
	return "", ""
}

// forkHeld copies the held set for branch-local tracking.
func forkHeld(held map[string]ast.Expr) map[string]ast.Expr {
	out := make(map[string]ast.Expr, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// exprString renders a small expression (mutex path) for messages.
func exprString(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.UnaryExpr:
		return exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return "mutex"
}
