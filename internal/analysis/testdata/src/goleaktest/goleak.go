// Package goleaktest exercises the goleak analyzer: every spawn shape
// it must flag inside //kylix:owned scopes, and every join/cancel
// pattern (and escape hatch) it must accept.
package goleaktest

import (
	"context"
	"fmt"
	"sync"
)

type server struct {
	wg    sync.WaitGroup
	quit  chan struct{}
	entry []func()
}

// startJoined spawns accountable goroutines only: WaitGroup.Done in a
// literal, a quit-channel select, and a ctx cancellation receive.
//
//kylix:owned
func (s *server) startJoined(ctx context.Context) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		work()
	}()
	go func() {
		for {
			select {
			case <-s.quit:
				return
			default:
				work()
			}
		}
	}()
	go func() {
		<-ctx.Done()
		work()
	}()
}

// startLeaky spawns a bare infinite loop: nothing ever joins or cancels
// it.
//
//kylix:owned
func (s *server) startLeaky() {
	go func() { // want "no join or cancel path"
		for {
			work()
		}
	}()
}

// startNamed resolves same-package spawn targets: loop carries a
// quit-select, spin does not.
//
//kylix:owned
func (s *server) startNamed() {
	go s.loop()
	go s.spin() // want "no join or cancel path"
}

func (s *server) loop() {
	for {
		select {
		case <-s.quit:
			return
		default:
			work()
		}
	}
}

func (s *server) spin() {
	for {
		work()
	}
}

// resultJoin is the errc-worker shape: the spawn's only statement sends
// into a channel the owner later drains.
//
//kylix:owned
func resultJoin(peers []func() error) error {
	errc := make(chan error, len(peers))
	for _, body := range peers {
		body := body
		go func() { errc <- body() }()
	}
	for range peers {
		if err := <-errc; err != nil {
			return err
		}
	}
	return nil
}

// dispatch spawns prebuilt worker funcvals; the WaitGroup.Add before
// the go statement is the pool-entry accounting goleak accepts.
//
//kylix:owned
func (s *server) dispatch() {
	s.wg.Add(len(s.entry))
	for i := range s.entry {
		go s.entry[i]()
	}
}

// dispatchUnaccounted spawns the same funcvals with no Add in sight.
//
//kylix:owned
func (s *server) dispatchUnaccounted() {
	for i := range s.entry {
		go s.entry[i]() // want "dynamic function value"
	}
}

// fireAndForget documents a deliberate leak through the escape hatch.
//
//kylix:owned
func fireAndForget() {
	go work() //kylix:allow goleak -- one-shot best-effort notification; process exit reaps it
}

// external spawns a function from outside the project, which goleak
// cannot see into.
//
//kylix:owned
func external() {
	go fmt.Println("bye") // want "from outside the project"
}

// unowned is not annotated; its spawns are exempt by design (annotate
// the owners to opt in).
func unowned() {
	go func() {
		for {
			work()
		}
	}()
}

func work() {}
