// Package hotpathdep is a project-local dependency of the hotpathtest
// fixture. Its allocation facts must travel across the package boundary
// so the analyzer can flag hot callers in hotpathtest at their call
// sites.
package hotpathdep

// Scale allocates scratch; a //kylix:hotpath caller must be flagged.
func Scale(dst []float64) {
	tmp := make([]float64, len(dst))
	copy(tmp, dst)
	for i := range dst {
		dst[i] = tmp[i] * 2
	}
}

// Halve is allocation-free; hot callers are fine.
func Halve(dst []float64) {
	for i := range dst {
		dst[i] /= 2
	}
}
