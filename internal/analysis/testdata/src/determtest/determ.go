// Package determtest exercises the determinism analyzer with the
// package-level contract: the marker below extends
// //kylix:deterministic to every function in the package.
//
//kylix:deterministic
package determtest

import (
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in deterministic code"
}

// Jitter reads the process-global generator.
func Jitter() float64 {
	return rand.Float64() // want "global math/rand.Float64"
}

// Seeded derives values from an explicit seed — the fault-fabric shape.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // accepted: explicit construction
	return r.Float64()                  // accepted: method on *rand.Rand
}

// Keys leaks map iteration order into its result.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "map iteration order escapes into out"
	}
	return out
}

// SortedKeys launders the order with a sort — the HashUnion shape.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // accepted: sorted before leaving the function
	}
	sort.Strings(out)
	return out
}

// Elapsed does pure duration arithmetic, which is deterministic.
func Elapsed(d time.Duration) time.Duration {
	return 2 * d // accepted: no clock read
}
