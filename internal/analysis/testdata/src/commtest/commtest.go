// Package commtest exercises the commcheck analyzer: discarded
// comm.Endpoint errors and untyped integer literal tags must be
// flagged; handled errors, deliberate discards, named constants and
// comm.MakeTag must pass.
package commtest

import (
	"kylix/internal/comm"
)

// tagProbe is the sanctioned way to name a fixed tag.
const tagProbe comm.Tag = 1<<60 | 7

func Dropped(ep comm.Endpoint, tag comm.Tag, p comm.Payload) {
	ep.Send(1, tag, p) // want "Send error discarded"
	defer ep.Close()   // want "Close error discarded"
}

func DroppedInGoroutine(ep comm.Endpoint, tag comm.Tag) {
	go ep.Close() // want "Close error discarded"
}

func Handled(ep comm.Endpoint, tag comm.Tag, p comm.Payload) error {
	if err := ep.Send(1, tag, p); err != nil { // accepted: error consumed
		return err
	}
	_, err := ep.Recv(0, tag) // accepted: error consumed
	if err != nil {
		return err
	}
	_ = ep.Close() // accepted: visible, deliberate discard
	return nil
}

func LiteralTag(ep comm.Endpoint, p comm.Payload) error {
	return ep.Send(1, 7, p) // want "untyped integer literal passed as comm.Tag"
}

func ConvertedTag() comm.Tag {
	return comm.Tag(7) // want "untyped integer literal converted to comm.Tag"
}

func NamedTags(ep comm.Endpoint, p comm.Payload) error {
	if err := ep.Send(1, tagProbe, p); err != nil { // accepted: named constant
		return err
	}
	return ep.Send(1, comm.MakeTag(comm.KindReduce, 3, 9), p) // accepted: MakeTag packing
}

func LiteralStreamID() comm.Tag {
	return comm.MakeStreamTag(9, comm.KindReduce, 3, 9) // want "untyped integer literal passed as comm.StreamID"
}

func ConvertedStreamID() comm.StreamID {
	return comm.StreamID(9) // want "untyped integer literal converted to comm.StreamID"
}

func NamedStreamIDs(id comm.StreamID) comm.Tag {
	_ = comm.MakeStreamTag(comm.DefaultStream, comm.KindConfig, 0, 1) // accepted: named constant
	return comm.MakeStreamTag(id, comm.KindReduce, 3, 9)             // accepted: registry-allocated id
}
