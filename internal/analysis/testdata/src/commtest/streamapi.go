// Stream-API error discipline: the root module's Stream.Run,
// Stream.Configure, Stream.Close and Cluster.Close return errors that
// carry the pass result and sticky failure state, so discarding one at
// statement position is flagged exactly like an Endpoint error.
package commtest

import (
	"kylix"
)

func DroppedStreamErrors(st *kylix.Stream, fn func(*kylix.Node) error) {
	st.Run(fn)       // want "Run error discarded"
	st.Configure(fn) // want "Configure error discarded"
	defer st.Close() // want "Close error discarded"
}

func DroppedClusterClose(c *kylix.Cluster) {
	defer c.Close() // want "Close error discarded"
}

func HandledStreamErrors(st *kylix.Stream, c *kylix.Cluster, fn func(*kylix.Node) error) error {
	if err := st.Run(fn); err != nil {
		return err
	}
	_ = st.Close() // deliberate discard passes
	defer func() { _ = c.Close() }()
	return nil
}

// AllowedDiscard documents a deliberate fire-and-forget teardown.
func AllowedDiscard(c *kylix.Cluster) {
	defer c.Close() //kylix:allow commcheck:discard -- demo teardown; errors land in the next pass anyway
}
