// Package lockorderdep is a project-local dependency of the
// lockordertest fixture. Its lock-class vocabulary (B.Mu -> beta) and
// the acquire fact of AcquireBeta must travel across the package
// boundary through the analyzer's facts, so downstream acquisition
// edges involving beta can be classified at all.
package lockorderdep

import "sync"

// B owns the beta lock class.
type B struct {
	Mu sync.Mutex //kylix:lock beta
	n  int
}

// AcquireBeta bumps the counter under beta; its exported LockAcquires
// fact is [beta].
func AcquireBeta(b *B) {
	b.Mu.Lock()
	b.n++
	b.Mu.Unlock()
}
