// Package lockordertest exercises the lockorder analyzer: cycles it
// must flag (direct, cross-package through lockorderdep's facts,
// same-package interprocedural, and reentrant self-edges), consistent
// orders it must accept, and the //kylix:allow escape hatch.
package lockordertest

import (
	"sync"

	dep "kylix/internal/analysis/testdata/src/lockorderdep"
)

// A owns the alpha lock class.
type A struct {
	mu sync.Mutex //kylix:lock alpha
	n  int
}

// C owns the gamma lock class.
type C struct {
	mu sync.Mutex //kylix:lock gamma
}

// F owns the zeta lock class.
type F struct {
	mu sync.Mutex //kylix:lock zeta
}

// AlphaThenBeta acquires beta — through the imported helper, so the
// edge exists only because lockorderdep's facts say AcquireBeta takes
// beta — while alpha is held. Together with BetaThenAlpha this closes
// an alpha/beta cycle, so both edges are flagged.
func AlphaThenBeta(a *A, b *dep.B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	dep.AcquireBeta(b) // want "lock-order cycle"
}

// BetaThenAlpha nests them the other way around. Classifying b.Mu
// needs lockorderdep's exported lock names.
func BetaThenAlpha(a *A, b *dep.B) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	a.mu.Lock() // want "lock-order cycle"
	a.n++
	a.mu.Unlock()
}

// Consistent nests gamma under alpha — an edge, but with no reverse
// path it is a legal total order.
func Consistent(a *A, c *C) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}

// Reenter acquires alpha while alpha is held. The analyzer cannot
// prove a and a2 are distinct instances, and the class's mutexes are
// not reentrant: a self-edge is always suspect.
func Reenter(a, a2 *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a2.mu.Lock() // want "lock-order cycle"
	a2.mu.Unlock()
}

// lockZeta is the local helper ZetaUnderGamma acquires through; the
// fixpoint gives it LockAcquires = [zeta].
func lockZeta(f *F) {
	f.mu.Lock()
	f.mu.Unlock()
}

// ZetaUnderGamma takes zeta through a same-package call while gamma is
// held; GammaUnderZeta closes the gamma/zeta cycle directly.
func ZetaUnderGamma(c *C, f *F) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lockZeta(f) // want "lock-order cycle"
}

// GammaUnderZeta is the reverse nesting.
func GammaUnderZeta(c *C, f *F) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c.mu.Lock() // want "lock-order cycle"
	c.mu.Unlock()
}

// D and E close a cycle on purpose: hand-over-hand in a fixed global
// sweep order that the analyzer cannot see. Both edges carry the
// escape hatch.
type D struct {
	mu sync.Mutex //kylix:lock delta
}

// E pairs with D for the suppressed cycle.
type E struct {
	mu sync.Mutex //kylix:lock epsilon
}

// DThenE is one half of the deliberately suppressed cycle.
func DThenE(d *D, e *E) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e.mu.Lock() //kylix:allow lockorder:epsilon -- sweep order is serialized externally
	e.mu.Unlock()
}

// EThenD is the other half.
func EThenD(d *D, e *E) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d.mu.Lock() //kylix:allow lockorder:delta -- sweep order is serialized externally
	d.mu.Unlock()
}
