// Package atomicmixtest exercises the atomicmix analyzer: plain reads
// and writes of fields that are elsewhere accessed through sync/atomic
// must be flagged, typed atomic wrappers and composite-literal
// construction are accepted, and //kylix:allow suppresses a deliberate
// mix.
package atomicmixtest

import (
	"sync"
	"sync/atomic"
)

// counterBox hand-rolls its atomics, so every access to n and hits
// must go through sync/atomic.
type counterBox struct {
	mu   sync.Mutex
	n    int64
	hits int64
	name string
}

// IncAtomic is the discipline-setting access: after this, n and hits
// are atomic fields.
func (b *counterBox) IncAtomic() {
	atomic.AddInt64(&b.n, 1)
	atomic.AddInt64(&b.hits, 1)
}

// ReadAtomic is fine: loads go through sync/atomic too.
func (b *counterBox) ReadAtomic() int64 {
	return atomic.LoadInt64(&b.n)
}

// ReadPlain races with IncAtomic.
func (b *counterBox) ReadPlain() int64 {
	return b.n // want "read/written plainly"
}

// BumpPlain loses updates against the atomic increment.
func (b *counterBox) BumpPlain() {
	b.n++ // want "read/written plainly"
}

// StorePlain is a plain write to an atomic field.
func (b *counterBox) StorePlain(v int64) {
	b.n = v // want "read/written plainly"
}

// Label touches only the never-atomic name field; untracked fields stay
// free.
func (b *counterBox) Label() string {
	return b.name
}

// newCounterBox constructs by keyed composite literal — initialization
// before the value is shared is exempt.
func newCounterBox() *counterBox {
	return &counterBox{n: 0, hits: 0, name: "fresh"}
}

// Snapshot documents a deliberate mixed read through the escape hatch.
func (b *counterBox) Snapshot() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hits //kylix:allow atomicmix:hits -- quiescent snapshot; all writers are parked during it
}

// typedBox uses the typed wrappers: plain access is inexpressible, so
// nothing here can trip the analyzer.
type typedBox struct {
	n atomic.Int64
}

// Inc is the typed-wrapper increment.
func (b *typedBox) Inc() { b.n.Add(1) }

// Read is the typed-wrapper load.
func (b *typedBox) Read() int64 { return b.n.Load() }
