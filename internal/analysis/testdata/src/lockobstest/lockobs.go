// Package lockobstest exercises the lockobs analyzer: observability
// hooks called while an //kylix:obsfree mutex is held must be flagged,
// while the mailbox's unlock-then-notify shape and un-annotated mutexes
// stay legal.
package lockobstest

import (
	"sync"
	"time"

	"kylix/internal/obs"
)

// observer mirrors comm.RecvObserver's method set; lockobs matches the
// hook methods by name regardless of the declaring package.
type observer interface {
	ObserveRecv(from int, bytes int, wait time.Duration, err error)
}

// box mirrors the mailbox shape: a delivery mutex that must never be
// held across observer callbacks, plus the hooks themselves.
type box struct {
	mu sync.Mutex //kylix:obsfree
	tr *obs.Tracer
	o  observer
	n  int
}

// plain has an ordinary mutex: its critical sections are unconstrained.
type plain struct {
	mu sync.Mutex
	tr *obs.Tracer
}

func (b *box) underLock() {
	b.mu.Lock()
	b.n++
	b.tr.CountRound() // want "CountRound called while b.mu is held"
	b.mu.Unlock()
}

func (b *box) observerUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock() // the section stays open to the end of the function
	b.n++
	b.o.ObserveRecv(1, 64, 0, nil) // want "ObserveRecv called while b.mu is held"
}

func (b *box) afterUnlock() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	b.tr.CountRound()              // accepted: lock released first
	b.o.ObserveRecv(1, 64, 0, nil) // accepted
}

// branchRelease is the shape the mailbox uses everywhere: release
// inside the branch, then notify, then return. The sibling path keeps
// the lock and must still be checked.
func (b *box) branchRelease(fast bool) {
	b.mu.Lock()
	if fast {
		b.n++
		b.mu.Unlock()
		b.tr.CountRound() // accepted: this branch unlocked before notifying
		return
	}
	b.tr.CountArenaFlip() // want "CountArenaFlip called while b.mu is held"
	b.mu.Unlock()
}

// observeDelivery is an observer-shaped local helper: the lexical
// analysis cannot see through it, so calling it under the lock is
// flagged by name.
func (b *box) observeDelivery() {
	b.o.ObserveRecv(1, 64, 0, nil)
}

func (b *box) viaHelper() {
	b.mu.Lock()
	b.observeDelivery() // want "observeDelivery called while b.mu is held"
	b.mu.Unlock()
	b.observeDelivery() // accepted: lock released
}

func (p *plain) unannotated() {
	p.mu.Lock()
	p.tr.CountRound() // accepted: p.mu is not //kylix:obsfree
	p.mu.Unlock()
}
