// Package determfunc exercises function-granularity
// //kylix:deterministic markers in a package that does not carry the
// package-level contract.
package determfunc

import "time"

// Decide is individually bound to the replay contract.
//
//kylix:deterministic
func Decide(seed int64) int64 {
	return seed ^ time.Now().UnixNano() // want "time.Now in deterministic code"
}

// Wall is unannotated and free to read the clock.
func Wall() int64 {
	return time.Now().UnixNano() // accepted: no contract here
}
