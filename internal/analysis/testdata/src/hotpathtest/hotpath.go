// Package hotpathtest exercises the hotpathalloc analyzer: every
// construct it must flag inside //kylix:hotpath code, and every escape
// hatch it must honor (cold error blocks, //kylix:coldpath callees,
// defer-direct closures, //kylix:allow suppressions).
package hotpathtest

import (
	"fmt"
	"strconv"

	"kylix/internal/analysis/testdata/src/hotpathdep"
)

var (
	sink  func() int
	boxed interface{}
	flips int
)

// Reduce is a hot root whose allocations live in callees: one local
// hop (combine -> grow) and one cross-package hop (hotpathdep.Scale).
//
//kylix:hotpath
func Reduce(dst, src []float64) error {
	if len(dst) != len(src) {
		// Accepted: an if body ending in `return ..., err` is the cold
		// error path; fmt.Errorf is legal here.
		return fmt.Errorf("length mismatch: %d vs %d", len(dst), len(src))
	}
	defer func() {
		// Accepted: a closure invoked directly by defer is open-coded.
		flips++
	}()
	for i := range src {
		dst[i] += src[i]
	}
	combine(dst, src)
	prepare()
	hotpathdep.Scale(dst) // want "reaches make"
	hotpathdep.Halve(dst) // accepted: allocation-free cross-package callee
	return nil
}

// combine is clean itself but calls grow, two hops from the root.
func combine(dst, src []float64) {
	for i := range src {
		dst[i] *= src[i]
	}
	grow(dst)
}

// grow allocates; the walk must surface both sites against Reduce.
func grow(dst []float64) {
	dst = append(dst, 1)       // want "append"
	_ = strconv.Itoa(len(dst)) // want "call to strconv.Itoa"
}

// prepare is a documented cold route: the walk must not descend.
//
//kylix:coldpath
func prepare() {
	_ = make([]float64, 8) // accepted: coldpath functions are exempt
}

// Track allocates directly in the hot root.
//
//kylix:hotpath
func Track(events map[string]int, key string) {
	events[key]++
	sink = func() int { return events[key] } // want "closure capturing outer variables"
	go drain()                               // want "goroutine launch"
}

func drain() {
	flips++
}

// Describe builds composite literals in hot code.
//
//kylix:hotpath
func Describe() {
	labels := []string{"a", "b"} // want "slice literal"
	_ = labels
	index := map[string]int{} // want "map literal"
	_ = index
}

type record struct{ n int }

// Escape returns a heap-escaping composite literal.
//
//kylix:hotpath
func Escape() *record {
	return &record{n: 1} // want "heap-escaping"
}

// Join concatenates strings on the hot path.
//
//kylix:hotpath
func Join(a, b string) string {
	return a + b // want "string concatenation"
}

// Box stores a value kind into an interface.
//
//kylix:hotpath
func Box(v int) {
	boxed = v // want "interface boxing of int assignment"
}

// Recycle demonstrates the sanctioned suppression for free-list appends.
//
//kylix:hotpath
func Recycle(free [][]float64, buf []float64) [][]float64 {
	//kylix:allow hotpathalloc:append -- free-list append is amortized zero
	return append(free, buf)
}

// Setup is unannotated and unreachable from any hot root: its
// allocations are nobody's business.
func Setup() []float64 {
	return make([]float64, 1024)
}
