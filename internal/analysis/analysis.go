// Package analysis is kylix's build-time invariant checker: a small,
// dependency-free analogue of golang.org/x/tools/go/analysis hosting the
// seven project-specific analyzers that turn the repo's load-bearing
// contracts into machine-checked lint:
//
//   - hotpathalloc: functions annotated //kylix:hotpath (and their
//     project-local callees) must not contain allocating constructs —
//     the static complement of the scripts/bench.sh --gate 0 allocs/op
//     check on the warm reduction path.
//   - lockobs: observability hooks (comm.RecvObserver, obs.Tracer,
//     metrics) must never be called while a mutex annotated
//     //kylix:obsfree is held — the observer-outside-the-mailbox-mutex
//     contract.
//   - determinism: packages or functions annotated //kylix:deterministic
//     must not read clocks, use the global math/rand generator, or let
//     map iteration order escape into a slice without a sort — the
//     bit-exact replay contract behind the fault fabric and
//     reorder_test.go.
//   - commcheck: comm.Endpoint Send/Recv/RecvAny/RecvGroup/Close and the
//     root stream API's Run/Configure/Close error results must be
//     consumed, and tag arguments must be built from named constants or
//     comm.MakeTag, never untyped integer literals.
//   - goleak: every go statement inside a function annotated
//     //kylix:owned must have a statically visible join or cancel path
//     (WaitGroup.Done, quit/ctx select, result-channel join, or a
//     worker-pool Add before the spawn).
//   - lockorder: mutex fields annotated //kylix:lock <class> form a
//     global lock-acquisition graph (edges flow across packages through
//     gob facts); any cycle is reported as a potential deadlock.
//   - atomicmix: a struct field whose address is passed to a sync/atomic
//     function anywhere in the package may never be read or written
//     plainly elsewhere.
//
// The suite runs through cmd/kylix-vet, either standalone
// (kylix-vet ./...) or as a `go vet -vettool` backend. It is built on
// the standard library alone: packages are loaded from `go list
// -export -deps -json` metadata and typechecked with go/types against
// compiler export data, so the checker works in hermetic build
// environments with no module downloads.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant checker.
type Analyzer struct {
	// Name is the check's identifier, used in diagnostics and in
	// //kylix:allow suppression comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects one package and reports diagnostics through the Pass.
	Run func(*Pass) error
}

// A Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Check names the analyzer that produced it.
	Check string
	// Detail is the fine-grained finding kind (e.g. "append",
	// "map-order"), matchable by //kylix:allow check:detail.
	Detail string
	// Message is the human-readable explanation.
	Message string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Check, d.Message)
}

// A Pass carries one analyzer's view of one typechecked package.
type Pass struct {
	// Analyzer is the running check.
	Analyzer *Analyzer
	// Fset maps token positions to file locations.
	Fset *token.FileSet
	// Files are the package's parsed sources, comments included.
	Files []*ast.File
	// Pkg is the typechecked package.
	Pkg *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info
	// ModulePath is the main module path ("kylix"); packages under it
	// are project-local and participate in cross-package fact lookups.
	ModulePath string
	// Facts receives this package's exported per-function summaries
	// (populated by hotpathalloc; nil Funcs until then).
	Facts *PackageFacts
	// ImportFacts returns the facts recorded for an already-analyzed
	// project-local package, or nil when unavailable.
	ImportFacts func(path string) *PackageFacts

	// ann is the package's parsed annotation set, shared by analyzers.
	ann *Annotations
	// report receives surviving (unsuppressed) diagnostics.
	report func(Diagnostic)
}

// Reportf files a diagnostic unless the target line (or the line above
// it) carries a matching //kylix:allow suppression.
func (p *Pass) Reportf(pos token.Pos, detail, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Ann().Allowed(p.Analyzer.Name, detail, position) {
		return
	}
	p.report(Diagnostic{
		Pos:     position,
		Check:   p.Analyzer.Name,
		Detail:  detail,
		Message: fmt.Sprintf(format, args...),
	})
}

// Ann returns the package's annotation set, parsing it on first use.
func (p *Pass) Ann() *Annotations {
	if p.ann == nil {
		p.ann = ParseAnnotations(p.Fset, p.Files)
	}
	return p.ann
}

// IsTestFile reports whether pos lies in a _test.go file. The hotpath,
// determinism and commcheck analyzers skip test files: those contracts
// bind shipped code, and tests legitimately read clocks, ignore
// teardown errors and build throwaway tags.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Local reports whether path belongs to the analyzed module.
func (p *Pass) Local(path string) bool {
	return path == p.ModulePath || strings.HasPrefix(path, p.ModulePath+"/")
}

// Annotations is the parsed set of //kylix: markers in one package.
type Annotations struct {
	// PkgDeterministic is set when any file's package doc carries
	// //kylix:deterministic, extending the contract to every function.
	PkgDeterministic bool
	// FuncMarks maps a *ast.FuncDecl to its markers
	// ("hotpath", "coldpath", "deterministic", "owned").
	FuncMarks map[*ast.FuncDecl]map[string]bool
	// ObsfreeFields holds "TypeName.fieldName" for struct fields
	// annotated //kylix:obsfree (mutexes whose critical sections must
	// not call observability hooks).
	ObsfreeFields map[string]bool
	// LockFields maps "TypeName.fieldName" to the lock class declared by
	// a //kylix:lock <class> field annotation. Lock classes are global:
	// lockorder builds its acquisition-order graph over them.
	LockFields map[string]string
	// allows maps "file:line" to the set of allow keys in force there.
	allows map[string]map[string]bool
}

// marker extracts the directive from a "//kylix:..." comment line,
// returning the empty string for ordinary comments.
func marker(c *ast.Comment) string {
	text := strings.TrimSpace(c.Text)
	if !strings.HasPrefix(text, "//kylix:") {
		return ""
	}
	return strings.TrimSpace(strings.TrimPrefix(text, "//kylix:"))
}

// markerName is the directive's first token: "//kylix:obsfree — why"
// names the directive "obsfree", keeping inline justifications legal on
// every marker form.
func markerName(c *ast.Comment) string {
	fields := strings.Fields(marker(c))
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}

// ParseAnnotations scans the files for //kylix: directives.
func ParseAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	ann := &Annotations{
		FuncMarks:     map[*ast.FuncDecl]map[string]bool{},
		ObsfreeFields: map[string]bool{},
		LockFields:    map[string]string{},
		allows:        map[string]map[string]bool{},
	}
	addAllow := func(c *ast.Comment, directive string) {
		keys := strings.Fields(strings.TrimPrefix(directive, "allow"))
		pos := fset.Position(c.Pos())
		lineKey := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		set := ann.allows[lineKey]
		if set == nil {
			set = map[string]bool{}
			ann.allows[lineKey] = set
		}
		for _, k := range keys {
			if k == "--" { // rest is prose justification
				break
			}
			set[k] = true
		}
	}
	for _, f := range files {
		if f.Doc != nil {
			for _, c := range f.Doc.List {
				if markerName(c) == "deterministic" {
					ann.PkgDeterministic = true
				}
			}
		}
		// Every comment in the file can carry an allow suppression.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if m := marker(c); strings.HasPrefix(m, "allow ") || m == "allow" {
					addAllow(c, m)
				}
			}
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Doc == nil {
					continue
				}
				for _, c := range d.Doc.List {
					switch markerName(c) {
					case "hotpath", "coldpath", "deterministic", "owned":
						set := ann.FuncMarks[d]
						if set == nil {
							set = map[string]bool{}
							ann.FuncMarks[d] = set
						}
						set[markerName(c)] = true
					}
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						if fieldHasObsfree(field) {
							for _, name := range field.Names {
								ann.ObsfreeFields[ts.Name.Name+"."+name.Name] = true
							}
						}
						if class := fieldLockClass(field); class != "" {
							for _, name := range field.Names {
								ann.LockFields[ts.Name.Name+"."+name.Name] = class
							}
						}
					}
				}
			}
		}
	}
	return ann
}

// fieldHasObsfree reports whether a struct field's doc or trailing
// comment carries //kylix:obsfree.
func fieldHasObsfree(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if markerName(c) == "obsfree" {
				return true
			}
		}
	}
	return false
}

// fieldLockClass extracts the class name from a //kylix:lock <class>
// field annotation, or "" when the field carries none.
func fieldLockClass(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if markerName(c) != "lock" {
				continue
			}
			fields := strings.Fields(marker(c))
			if len(fields) >= 2 {
				return fields[1]
			}
		}
	}
	return ""
}

// Allowed reports whether a diagnostic of the given check and detail at
// the position is suppressed by a //kylix:allow comment on the same
// line or the line directly above.
func (a *Annotations) Allowed(check, detail string, pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		set := a.allows[fmt.Sprintf("%s:%d", pos.Filename, line)]
		if set == nil {
			continue
		}
		if set[check] || (detail != "" && set[check+":"+detail]) {
			return true
		}
	}
	return false
}

// FuncMarked reports whether the declaration carries the marker, or —
// for "deterministic" — whether the whole package does.
func (a *Annotations) FuncMarked(d *ast.FuncDecl, mark string) bool {
	if mark == "deterministic" && a.PkgDeterministic {
		return true
	}
	return a.FuncMarks[d][mark]
}

// PackageFacts is the serializable per-package summary exchanged
// between analysis units (go vet's vetx files, or in-memory in
// standalone mode). hotpathalloc uses it to walk call graphs across
// package boundaries.
type PackageFacts struct {
	// Funcs maps a function's package-local ID (FuncID) to its summary.
	Funcs map[string]FuncFacts
	// LockNames maps "TypeName.fieldName" to the //kylix:lock class
	// declared in this package, so downstream packages can classify
	// locks on imported types.
	LockNames map[string]string
	// LockEdges lists the lock-order edges contributed by this package's
	// own bodies (imported edges are re-derived from the import graph,
	// not re-exported).
	LockEdges []LockEdge
}

// LockEdge records one observed acquisition order: To was acquired
// while From was held.
type LockEdge struct {
	// From and To are //kylix:lock class names.
	From, To string
	// Pos is the "file:line:col" acquisition site of To (basename only,
	// stable across machines).
	Pos string
}

// FuncFacts summarizes one function for cross-package reasoning.
type FuncFacts struct {
	// Hotpath and Coldpath mirror the function's annotations. Coldpath
	// cuts the hotpath call-graph walk: the function is a documented
	// one-time/cold route (e.g. arena construction) whose allocations
	// are deliberate.
	Hotpath  bool
	Coldpath bool
	// Allocs lists the allocating constructs found in the body, hot
	// regions only (error-return blocks and suppressed lines excluded).
	Allocs []AllocSite
	// Calls lists statically resolved project-local callees as
	// "pkgpath\x00funcID", hot regions only.
	Calls []string
	// Joins reports that the body carries a goroutine join/cancel
	// signal (WaitGroup.Done, a select over a quit channel, or a
	// <-ctx.Done() receive), so goleak can accept `go pkg.Fn()` spawns
	// of this function from other packages.
	Joins bool
	// LockAcquires lists the //kylix:lock classes this function may
	// acquire, directly or through project-local callees (transitive).
	LockAcquires []string
}

// AllocSite is one allocating construct inside a function.
type AllocSite struct {
	// Pos is the "file:line:col" location (basename only, for stable
	// cross-package messages).
	Pos string
	// What describes the construct ("fmt call", "map literal", ...).
	What string
}

// FuncID returns the package-local identifier facts are keyed by:
// "Name" for package functions, "Recv.Name" for methods (pointer
// receivers stripped).
func FuncID(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// DeclID returns FuncID for a syntax declaration.
func DeclID(info *types.Info, d *ast.FuncDecl) string {
	if fn, ok := info.Defs[d.Name].(*types.Func); ok && fn != nil {
		return FuncID(fn)
	}
	return d.Name.Name
}

// All returns the analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{HotPathAlloc, LockObs, Determinism, CommCheck, GoLeak, LockOrder, AtomicMix}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			known := make([]string, 0, len(byName))
			for k := range byName {
				known = append(known, k)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
