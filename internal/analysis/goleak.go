package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak enforces goroutine ownership in functions annotated
// //kylix:owned: every `go` statement in such a scope must have a
// statically visible join or cancel path, so a long-running node never
// accretes orphan goroutines. Accepted evidence, checked lexically in
// the spawned body (func literal, or the resolved declaration of a
// named project function — cross-package through the Joins fact):
//
//   - a (*sync.WaitGroup).Done call, direct or deferred — the classic
//     Add/go/Done/Wait accounting;
//   - a select with a receive case that returns (quit channel,
//     ctx.Done()), or a bare <-ctx.Done() receive — cancellation;
//   - a body whose final statement sends on a channel declared in the
//     owner, which the owner also receives from — the result-channel
//     join (`errc <- body(ep)` ... `<-errc`);
//   - for spawns of dynamic function values (stored worker funcvals), a
//     WaitGroup.Add lexically before the `go` in the owner — the pool
//     entry pattern, where the Done lives behind the funcval.
//
// Anything else is a potential leak. Suppress a deliberate
// fire-and-forget with //kylix:allow goleak:<detail> and a
// justification. Test files are skipped; `go` statements outside
// //kylix:owned functions are not checked (annotate the owners).
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "go statements in //kylix:owned scopes must have a join or cancel path",
	Run:  runGoLeak,
}

func runGoLeak(p *Pass) error {
	// Pass 1: record the Joins fact for every declared function, so
	// downstream packages can vet `go pkg.Fn()` spawns, and build the
	// local decl index used to resolve same-package spawns.
	decls := map[string]*ast.FuncDecl{}
	if p.Facts.Funcs == nil {
		p.Facts.Funcs = map[string]FuncFacts{}
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			id := DeclID(p.Info, d)
			decls[id] = d
			if !p.IsTestFile(d.Pos()) && bodyJoins(p, d.Body) {
				ff := p.Facts.Funcs[id]
				ff.Joins = true
				p.Facts.Funcs[id] = ff
			}
		}
	}

	// Pass 2: check every go statement inside an owned scope.
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil || !p.Ann().FuncMarked(d, "owned") {
				continue
			}
			ast.Inspect(d.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(p, d, g, decls)
				return true
			})
		}
	}
	return nil
}

// checkGoStmt vets one spawn inside owner d for a join/cancel path.
func checkGoStmt(p *Pass, d *ast.FuncDecl, g *ast.GoStmt, decls map[string]*ast.FuncDecl) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if bodyJoins(p, fun.Body) || resultChannelJoin(p, d, g, fun) {
			return
		}
		p.Reportf(g.Pos(), "literal",
			"goroutine in //kylix:owned scope %s has no join or cancel path (want WaitGroup.Done, a quit/ctx select, or a result-channel send the owner receives)",
			d.Name.Name)
		return
	default:
		fn := calleeFunc(p, g.Call)
		if fn == nil || fn.Pkg() == nil {
			// Dynamic funcval (stored worker entry): accept when the
			// owner does WaitGroup.Add accounting before the spawn.
			if addBeforeSpawn(p, d, g) {
				return
			}
			p.Reportf(g.Pos(), "dynamic",
				"goroutine in //kylix:owned scope %s spawns a dynamic function value with no WaitGroup.Add accounting before the go statement",
				d.Name.Name)
			return
		}
		path, id := fn.Pkg().Path(), FuncID(fn)
		switch {
		case path == p.Pkg.Path():
			if callee, ok := decls[id]; ok && callee.Body != nil && bodyJoins(p, callee.Body) {
				return
			}
		case p.Local(path):
			if facts := p.ImportFacts(path); facts != nil && facts.Funcs[id].Joins {
				return
			}
		default:
			p.Reportf(g.Pos(), "extern",
				"goroutine in //kylix:owned scope %s runs %s.%s from outside the project; wrap it in a joined func literal or justify with //kylix:allow goleak:extern",
				d.Name.Name, shortPkg(path), id)
			return
		}
		p.Reportf(g.Pos(), "call",
			"goroutine in //kylix:owned scope %s runs %s.%s, which has no join or cancel path (want WaitGroup.Done, a quit/ctx select)",
			d.Name.Name, shortPkg(path), id)
	}
}

// bodyJoins reports whether a goroutine body carries a join/cancel
// signal: a WaitGroup.Done call, a select with a receive case that
// returns, or a bare <-ctx.Done()-style receive. Nested `go` bodies are
// excluded — their signals belong to the goroutines they spawn.
func bodyJoins(p *Pass, body *ast.BlockStmt) bool {
	joins := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joins {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if isWaitGroupCall(p, n, "Done") {
				joins = true
				return false
			}
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok || !isReceiveComm(cc.Comm) {
					continue
				}
				for _, s := range cc.Body {
					if containsReturn(s) {
						joins = true
						return false
					}
				}
			}
		case *ast.UnaryExpr:
			// A bare blocking receive from a Done()-shaped call:
			// <-ctx.Done(), <-quitFn().
			if n.Op == token.ARROW {
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
						joins = true
						return false
					}
				}
			}
		}
		return true
	})
	return joins
}

// isReceiveComm reports whether a select comm clause is a receive
// (either `<-ch` or `v := <-ch`).
func isReceiveComm(comm ast.Stmt) bool {
	switch s := comm.(type) {
	case *ast.ExprStmt:
		u, ok := s.X.(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return false
		}
		u, ok := s.Rhs[0].(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	}
	return false
}

// containsReturn reports whether the statement subtree contains a
// return (goroutine loops exit their for through it).
func containsReturn(stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.FuncLit:
			return false
		}
		return !found
	})
	return found
}

// isWaitGroupCall matches wg.<method>() where wg is a sync.WaitGroup
// (value, pointer, or struct field).
func isWaitGroupCall(p *Pass, call *ast.CallExpr, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	t := p.Info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// resultChannelJoin accepts the `errc <- f()` worker shape: the
// literal's final statement sends on a channel declared in the owner,
// and the owner receives from that same channel outside the spawn.
func resultChannelJoin(p *Pass, d *ast.FuncDecl, g *ast.GoStmt, lit *ast.FuncLit) bool {
	if len(lit.Body.List) == 0 {
		return false
	}
	send, ok := lit.Body.List[len(lit.Body.List)-1].(*ast.SendStmt)
	if !ok {
		return false
	}
	ch, ok := ast.Unparen(send.Chan).(*ast.Ident)
	if !ok {
		return false
	}
	chObj := p.Info.Uses[ch]
	if chObj == nil {
		return false
	}
	received := false
	ast.Inspect(d.Body, func(n ast.Node) bool {
		if received || n == g {
			return false
		}
		u, ok := n.(*ast.UnaryExpr)
		if !ok || u.Op != token.ARROW {
			return true
		}
		if id, ok := ast.Unparen(u.X).(*ast.Ident); ok && p.Info.Uses[id] == chObj {
			received = true
		}
		return true
	})
	return received
}

// addBeforeSpawn reports whether the owner calls WaitGroup.Add
// lexically before the go statement — the pool-entry pattern, where the
// matching Done lives inside a prebuilt worker funcval the analyzer
// cannot resolve.
func addBeforeSpawn(p *Pass, d *ast.FuncDecl, g *ast.GoStmt) bool {
	added := false
	ast.Inspect(d.Body, func(n ast.Node) bool {
		if added || n == nil || n.Pos() >= g.Pos() {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupCall(p, call, "Add") {
			added = true
			return false
		}
		return true
	})
	return added
}
