package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// LoadedPackage is one typechecked project package ready for analysis.
type LoadedPackage struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	// Target marks packages matched by the load patterns (as opposed to
	// project-local dependencies pulled in for facts).
	Target bool
}

// Loader typechecks module packages from source against compiler export
// data for everything else, using only `go list` and the standard
// library — no module downloads, no x/tools.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	// Pkgs holds the loaded project packages in dependency order
	// (dependencies before dependents).
	Pkgs []*LoadedPackage

	dir       string
	exports   map[string]string         // import path -> export data file
	imported  map[string]*types.Package // cache, both source- and export-loaded
	sourcePkg map[string]*LoadedPackage // project packages by path
	// base is the shared export-data importer. It must be a single
	// instance for the whole load: the gc importer resolves transitive
	// imports through its own internal cache, and two instances would
	// produce distinct *types.Package values for the same stdlib path,
	// breaking type identity between source- and export-loaded code.
	base types.Importer
}

// Load lists patterns in dir (the module root or below), typechecks
// every project-local package in the dependency closure, and returns a
// loader exposing them in dependency order. Patterns are passed to
// `go list` verbatim, so "./..." and explicit testdata fixture
// directories both work.
func Load(dir string, patterns ...string) (*Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,Standard,DepOnly,ImportMap,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	ld := &Loader{
		Fset:      token.NewFileSet(),
		dir:       dir,
		exports:   map[string]string{},
		imported:  map[string]*types.Package{},
		sourcePkg: map[string]*LoadedPackage{},
	}
	// go list -deps emits packages in dependency order; preserve it.
	var order []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			ld.exports[p.ImportPath] = p.Export
		}
		q := p
		order = append(order, &q)
	}
	for _, p := range order {
		if p.Module == nil || p.Standard {
			continue
		}
		if ld.ModulePath == "" {
			ld.ModulePath = p.Module.Path
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", p.ImportPath)
		}
		lp, err := ld.check(p)
		if err != nil {
			return nil, err
		}
		lp.Target = !p.DepOnly
		ld.Pkgs = append(ld.Pkgs, lp)
	}
	if len(ld.Pkgs) == 0 {
		return nil, fmt.Errorf("go list %s: no project packages matched", strings.Join(patterns, " "))
	}
	return ld, nil
}

// check parses and typechecks one project package from source.
func (ld *Loader) check(p *listPackage) (*LoadedPackage, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(ld.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: ld.importerFor(p.ImportMap)}
	pkg, err := conf.Check(p.ImportPath, ld.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
	}
	lp := &LoadedPackage{PkgPath: p.ImportPath, Dir: p.Dir, Files: files, Pkg: pkg, Info: info}
	ld.sourcePkg[p.ImportPath] = lp
	ld.imported[p.ImportPath] = pkg
	return lp, nil
}

// importerFor builds an importer that prefers source-typechecked
// project packages (so type identity holds across the whole load) and
// falls back to the shared compiler-export-data importer for the
// standard library.
func (ld *Loader) importerFor(importMap map[string]string) types.Importer {
	if ld.base == nil {
		ld.base = importer.ForCompiler(ld.Fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := ld.exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		})
	}
	return importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		if pkg, ok := ld.imported[path]; ok {
			return pkg, nil
		}
		pkg, err := ld.base.Import(path)
		if err != nil {
			return nil, err
		}
		ld.imported[path] = pkg
		return pkg, nil
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// newInfo allocates the full types.Info record set the analyzers use.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// Run executes the analyzers over every loaded project package in
// dependency order, threading facts between packages, and returns the
// diagnostics of target packages sorted by position.
func (ld *Loader) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	factsByPath := map[string]*PackageFacts{}
	var diags []Diagnostic
	for _, lp := range ld.Pkgs {
		facts := &PackageFacts{}
		report := func(d Diagnostic) {
			if lp.Target {
				diags = append(diags, d)
			}
		}
		var ann *Annotations
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:    a,
				Fset:        ld.Fset,
				Files:       lp.Files,
				Pkg:         lp.Pkg,
				Info:        lp.Info,
				ModulePath:  ld.ModulePath,
				Facts:       facts,
				ImportFacts: func(path string) *PackageFacts { return factsByPath[path] },
				ann:         ann,
				report:      report,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, lp.PkgPath, err)
			}
			ann = pass.ann // share the parsed annotations across analyzers
		}
		factsByPath[lp.PkgPath] = facts
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
