package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the bit-exact replay contract: packages (or
// individual functions) annotated //kylix:deterministic must produce
// identical results for identical inputs on every run, because the
// fault fabric's replayable schedules and the reorder property tests
// assert exact equality across delivery permutations. Three sources of
// hidden nondeterminism are banned:
//
//   - wall/monotonic clock reads (time.Now, time.Since, time.Until);
//   - the global math/rand generator (rand.Intn, rand.Float64, ...),
//     whose stream is shared process-wide and seed-dependent on Go
//     version; explicitly seeded generators (rand.New(rand.NewSource(s))
//     and *rand.Rand methods) remain legal — that is exactly how the
//     fault fabric derives per-message decisions;
//   - map iteration whose element order escapes into a slice (a range
//     over a map appending to a slice) without an intervening sort in
//     the same function: Go randomizes map order per run, so the
//     resulting slice differs between replays. Sorting afterwards —
//     the HashUnion shape — launders the order and is accepted.
//
// Test files are skipped. Suppress a deliberate site with
// //kylix:allow determinism[:detail].
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "deterministic-annotated code must not read clocks, use global rand, or leak map order",
	Run:  runDeterminism,
}

// clockFuncs are the banned time-package functions. Duration arithmetic
// and formatting stay legal; only reading "now" is nondeterministic.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededRandFuncs are the math/rand package-level functions that
// construct explicit generators rather than reading the global stream.
var seededRandFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

func runDeterminism(p *Pass) error {
	ann := p.Ann()
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil || p.IsTestFile(d.Pos()) {
				continue
			}
			if !ann.FuncMarked(d, "deterministic") {
				continue
			}
			checkDeterministicFunc(p, d)
		}
	}
	return nil
}

func checkDeterministicFunc(p *Pass, d *ast.FuncDecl) {
	ast.Inspect(d.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNondeterministicCall(p, n)
		case *ast.RangeStmt:
			checkMapOrderEscape(p, d, n)
		}
		return true
	})
}

// checkNondeterministicCall flags clock reads and global math/rand use.
func checkNondeterministicCall(p *Pass, call *ast.CallExpr) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch fn.Pkg().Path() {
	case "time":
		if !isMethod && clockFuncs[fn.Name()] {
			p.Reportf(call.Pos(), "clock",
				"time.%s in deterministic code: clock reads differ between replays; take timestamps outside the deterministic core", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Methods on *rand.Rand are explicitly seeded and legal; only
		// the package-level convenience functions hit the global
		// generator.
		if !isMethod && !seededRandFuncs[fn.Name()] {
			p.Reportf(call.Pos(), "globalrand",
				"global %s.%s in deterministic code: use a seeded rand.New(rand.NewSource(...)) generator instead", fn.Pkg().Path(), fn.Name())
		}
	}
}

// checkMapOrderEscape flags `for k := range m { s = append(s, ...) }`
// over a map when no later statement in the function sorts s.
func checkMapOrderEscape(p *Pass, d *ast.FuncDecl, rng *ast.RangeStmt) {
	if _, ok := p.Info.TypeOf(rng.X).Underlying().(*types.Map); !ok {
		return
	}
	// Find slices appended to inside the loop body.
	appended := map[types.Object]ast.Expr{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				continue
			}
			if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
				continue
			}
			if i >= len(asg.Lhs) {
				continue
			}
			if obj := exprObject(p, asg.Lhs[i]); obj != nil {
				appended[obj] = asg.Lhs[i]
			}
		}
		return true
	})
	if len(appended) == 0 {
		return
	}
	// A later sort of the same slice anywhere in the function launders
	// the order (lexically after the loop).
	sorted := map[types.Object]bool{}
	ast.Inspect(d.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(p, call) {
			return true
		}
		for _, arg := range call.Args {
			if obj := exprObject(p, arg); obj != nil {
				sorted[obj] = true
			}
		}
		return true
	})
	for obj, lhs := range appended {
		if sorted[obj] {
			continue
		}
		p.Reportf(lhs.Pos(), "maporder",
			"map iteration order escapes into %s without a sort: the slice differs between runs; sort it (or iterate sorted keys) before it leaves the function", obj.Name())
	}
}

// isSortCall recognizes order-laundering calls: anything in the sort or
// slices packages whose name mentions Sort, or a project helper whose
// name contains Sort.
func isSortCall(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
		return true
	}
	return strings.Contains(fn.Name(), "Sort")
}

// exprObject resolves an expression to the variable it names (for
// identifying the same slice across statements).
func exprObject(p *Pass, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := p.Info.Uses[e]; obj != nil {
			return obj
		}
		return p.Info.Defs[e]
	case *ast.SelectorExpr:
		return p.Info.Uses[e.Sel]
	}
	return nil
}
