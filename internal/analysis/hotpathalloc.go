package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// HotPathAlloc enforces the warm-reduction allocation contract: a
// function annotated //kylix:hotpath — and every project-local function
// it statically calls, across package boundaries via facts — must not
// contain allocating constructs. It is the build-time complement of the
// scripts/bench.sh --gate 0 allocs/op check: the gate proves the
// benchmarked path clean, this analyzer proves every annotated path
// clean on every build, before a benchmark ever runs.
//
// Flagged constructs: calls into fmt/log/strconv/sort (and errors.New /
// errors.Join); slice and map composite literals; heap-escaping
// &T{...} literals; make/new/append; closures that capture outer
// variables (except literals invoked directly by defer, which the
// compiler open-codes without allocation); goroutine launches; string
// concatenation and string<->[]byte conversions; and interface boxing
// of value-kind arguments, assignments and returns.
//
// Two escape hatches keep the check honest instead of noisy:
// error-return blocks are exempt (a block ending in `return ..., err`
// or panic is the cold path — the benchmark's 0 allocs/op only binds
// the error-free warm round), and //kylix:allow hotpathalloc[:detail]
// suppresses a deliberate site (e.g. the mailbox's recycled-slice
// appends, which are amortized-zero by the free-list design).
// Functions annotated //kylix:coldpath are documented cold routes
// (arena construction, lazy watchdog start): the call-graph walk does
// not descend into them.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "hotpath-annotated functions and their project-local callees must be allocation-free",
	Run:  runHotPathAlloc,
}

// stdlibDeny lists standard-library packages whose calls allocate by
// nature and are banned outright on hot paths.
var stdlibDeny = map[string]bool{
	"fmt":     true,
	"log":     true,
	"strconv": true,
	"sort":    true,
}

// localAlloc is one allocating construct with full position info
// (current package only; exported facts carry the string form).
type localAlloc struct {
	pos    token.Pos
	what   string
	detail string
}

// localCall is one statically resolved project-local call edge.
type localCall struct {
	pos token.Pos
	pkg string
	id  string
}

// funcBody is the per-function summary computed for every declaration
// in the package.
type funcBody struct {
	id     string
	hot    bool
	cold   bool
	allocs []localAlloc
	calls  []localCall
}

func runHotPathAlloc(p *Pass) error {
	ann := p.Ann()
	bodies := map[string]*funcBody{}
	var hotRoots []*funcBody

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil || p.IsTestFile(d.Pos()) {
				continue
			}
			fb := &funcBody{
				id:   DeclID(p.Info, d),
				hot:  ann.FuncMarked(d, "hotpath"),
				cold: ann.FuncMarked(d, "coldpath"),
			}
			if !fb.cold {
				collectBody(p, d, fb)
			}
			bodies[fb.id] = fb
			if fb.hot {
				hotRoots = append(hotRoots, fb)
			}
		}
	}

	// Export facts so dependent packages can walk through us.
	if p.Facts != nil {
		funcs := map[string]FuncFacts{}
		for id, fb := range bodies {
			ff := FuncFacts{Hotpath: fb.hot, Coldpath: fb.cold}
			for _, a := range fb.allocs {
				ff.Allocs = append(ff.Allocs, AllocSite{Pos: shortPos(p.Fset, a.pos), What: a.what})
			}
			for _, c := range fb.calls {
				ff.Calls = append(ff.Calls, c.pkg+"\x00"+c.id)
			}
			funcs[id] = ff
		}
		if p.Facts.Funcs == nil {
			p.Facts.Funcs = map[string]FuncFacts{}
		}
		for id, ff := range funcs {
			p.Facts.Funcs[id] = ff
		}
	}

	for _, root := range hotRoots {
		walkHotPath(p, root, bodies)
	}
	return nil
}

// walkHotPath reports every allocating construct reachable from the
// root through statically resolved project-local calls. Findings in
// other packages are anchored at the current package's outgoing call
// site (the only position the diagnostic can name under per-package
// analysis) with the remote site in the message.
func walkHotPath(p *Pass, root *funcBody, bodies map[string]*funcBody) {
	type node struct {
		pkg, id string
		// via is the call position in the current package whose edge
		// left it (zero while still local).
		via     token.Pos
		viaName string
	}
	seen := map[string]bool{}
	queue := []node{{pkg: p.Pkg.Path(), id: root.id}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		key := n.pkg + "\x00" + n.id
		if seen[key] {
			continue
		}
		seen[key] = true

		if n.pkg == p.Pkg.Path() {
			fb, ok := bodies[n.id]
			if !ok || fb.cold {
				continue
			}
			for _, a := range fb.allocs {
				if n.id == root.id {
					p.Reportf(a.pos, a.detail, "%s in //kylix:hotpath function %s", a.what, root.id)
				} else {
					p.Reportf(a.pos, a.detail, "%s in %s, reached from //kylix:hotpath function %s", a.what, n.id, root.id)
				}
			}
			for _, c := range fb.calls {
				next := node{pkg: c.pkg, id: c.id, via: n.via, viaName: n.viaName}
				if c.pkg != p.Pkg.Path() && next.via == token.NoPos {
					next.via = c.pos
					next.viaName = c.pkg + "." + c.id
				}
				queue = append(queue, next)
			}
			continue
		}

		facts := p.ImportFacts(n.pkg)
		if facts == nil || facts.Funcs == nil {
			continue // no facts for this package (not yet analyzed)
		}
		ff, ok := facts.Funcs[n.id]
		if !ok || ff.Coldpath {
			continue
		}
		for _, a := range ff.Allocs {
			p.Reportf(n.via, "transitive",
				"call into %s reaches %s in %s.%s (%s) from //kylix:hotpath function %s",
				n.viaName, a.What, shortPkg(n.pkg), n.id, a.Pos, root.id)
		}
		for _, c := range ff.Calls {
			pkg, id, ok := strings.Cut(c, "\x00")
			if !ok {
				continue
			}
			queue = append(queue, node{pkg: pkg, id: id, via: n.via, viaName: n.viaName})
		}
	}
}

// collectBody fills fb with the function's allocating constructs and
// project-local call edges, skipping cold (error-return) regions and
// //kylix:allow-suppressed lines.
func collectBody(p *Pass, d *ast.FuncDecl, fb *funcBody) {
	cold := coldRegions(p, d)
	ann := p.Ann()
	returnsIface := resultInterfaces(p, d)

	addAlloc := func(pos token.Pos, detail, what string) {
		if ann.Allowed("hotpathalloc", detail, p.Fset.Position(pos)) {
			return
		}
		fb.allocs = append(fb.allocs, localAlloc{pos: pos, what: what, detail: detail})
	}

	// deferLits marks closures invoked directly by defer: open-coded by
	// the compiler, no allocation.
	deferLits := map[*ast.FuncLit]bool{}
	ast.Inspect(d.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
				deferLits[lit] = true
			}
		}
		return true
	})

	ast.Inspect(d.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if cold[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			addAlloc(n.Pos(), "go", "goroutine launch")
		case *ast.CompositeLit:
			switch p.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				addAlloc(n.Pos(), "literal", "slice literal")
			case *types.Map:
				addAlloc(n.Pos(), "literal", "map literal")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					addAlloc(n.Pos(), "escape", "heap-escaping &composite literal")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(p.Info.TypeOf(n)) {
				addAlloc(n.Pos(), "concat", "string concatenation")
			}
		case *ast.FuncLit:
			if !deferLits[n] && capturesOuter(p, n) {
				addAlloc(n.Pos(), "closure", "closure capturing outer variables")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					// A blank target has no type (and no storage): skip it
					// rather than mistake the nil for an interface.
					lt := p.Info.TypeOf(lhs)
					if lt == nil || isBlank(lhs) {
						continue
					}
					checkBoxing(p, addAlloc, lt, n.Rhs[i], "assignment")
				}
			}
		case *ast.ReturnStmt:
			if len(returnsIface) == len(n.Results) {
				for i, res := range n.Results {
					if returnsIface[i] {
						checkBoxing(p, addAlloc, nil, res, "return")
					}
				}
			}
		case *ast.CallExpr:
			collectCall(p, n, fb, addAlloc)
		}
		return true
	})
}

// collectCall classifies one call: conversion, builtin, denylisted
// stdlib, project-local edge, or opaque — and checks its arguments for
// interface boxing.
func collectCall(p *Pass, call *ast.CallExpr, fb *funcBody, addAlloc func(token.Pos, string, string)) {
	// Type conversions.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		to := tv.Type
		if len(call.Args) == 1 {
			from := p.Info.TypeOf(call.Args[0])
			switch {
			case isInterface(to) && boxes(from):
				addAlloc(call.Pos(), "boxing", fmt.Sprintf("interface boxing of %s value", from))
			case isString(to) && isByteOrRuneSlice(from):
				addAlloc(call.Pos(), "convert", "[]byte/[]rune to string conversion")
			case isByteOrRuneSlice(to) && isString(from):
				addAlloc(call.Pos(), "convert", "string to []byte/[]rune conversion")
			}
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				addAlloc(call.Pos(), "append", "append (may grow its backing array)")
			case "make":
				addAlloc(call.Pos(), "make", "make")
			case "new":
				addAlloc(call.Pos(), "new", "new")
			}
			return
		}
	}

	// Argument boxing against the callee signature.
	if sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature); ok && sig != nil {
		checkArgBoxing(p, call, sig, addAlloc)
	}

	fn := calleeFunc(p, call)
	if fn == nil {
		return
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return
	}
	switch {
	case stdlibDeny[pkg.Path()]:
		addAlloc(call.Pos(), "stdlib", fmt.Sprintf("call to %s.%s", pkg.Path(), fn.Name()))
	case pkg.Path() == "errors" && (fn.Name() == "New" || fn.Name() == "Join"):
		addAlloc(call.Pos(), "stdlib", fmt.Sprintf("call to errors.%s", fn.Name()))
	case p.Local(pkg.Path()):
		fb.calls = append(fb.calls, localCall{pos: call.Pos(), pkg: pkg.Path(), id: FuncID(fn)})
	}
}

// calleeFunc resolves a call to its static *types.Func target, or nil
// for dynamic calls (interface methods, func values).
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			// Method call: skip dynamic dispatch through interfaces.
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			obj = sel.Obj()
		} else {
			obj = p.Info.Uses[fun.Sel] // package-qualified function
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// checkArgBoxing flags value-kind arguments passed to interface-typed
// parameters.
func checkArgBoxing(p *Pass, call *ast.CallExpr, sig *types.Signature, addAlloc func(token.Pos, string, string)) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			last := params.At(params.Len() - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !isInterface(pt) {
			continue
		}
		checkBoxing(p, addAlloc, pt, arg, "argument")
	}
}

// checkBoxing flags expr when its concrete value-kind type would be
// boxed into an interface target. target may be nil when the caller
// already knows the destination is an interface.
func checkBoxing(p *Pass, addAlloc func(token.Pos, string, string), target types.Type, expr ast.Expr, where string) {
	if target != nil && !isInterface(target) {
		return
	}
	tv, ok := p.Info.Types[expr]
	if !ok || tv.IsNil() {
		return
	}
	if !boxes(tv.Type) {
		return
	}
	addAlloc(expr.Pos(), "boxing", fmt.Sprintf("interface boxing of %s %s", tv.Type, where))
}

// boxes reports whether converting a value of type t to an interface
// allocates: value kinds (basic, struct, array) and multi-word slice
// headers do; pointer-shaped types (pointers, chans, maps, funcs) and
// interfaces do not.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.UntypedNil && u.Kind() != types.Invalid
	case *types.Struct, *types.Array, *types.Slice:
		return true
	}
	return false
}

func isInterface(t types.Type) bool {
	return t != nil && types.IsInterface(t)
}

func isBlank(expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	return ok && id.Name == "_"
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// resultInterfaces describes which of the function's results are
// interface-typed (for return-statement boxing checks).
func resultInterfaces(p *Pass, d *ast.FuncDecl) []bool {
	sig, ok := p.Info.Defs[d.Name].Type().(*types.Signature)
	if !ok {
		return nil
	}
	res := sig.Results()
	out := make([]bool, res.Len())
	for i := range out {
		out[i] = isInterface(res.At(i).Type())
	}
	return out
}

// coldRegions returns the blocks exempt from allocation checking: an
// if/else body or switch/select case whose final statement returns a
// non-nil error (the function's last result must be error-typed) or
// panics. These are the paths the 0 allocs/op gate never executes.
func coldRegions(p *Pass, d *ast.FuncDecl) map[ast.Node]bool {
	cold := map[ast.Node]bool{}
	sig, _ := p.Info.Defs[d.Name].Type().(*types.Signature)
	returnsError := false
	if sig != nil && sig.Results().Len() > 0 {
		last := sig.Results().At(sig.Results().Len() - 1).Type()
		returnsError = isErrorType(last)
	}
	isColdList := func(list []ast.Stmt) bool {
		if len(list) == 0 {
			return false
		}
		switch last := list[len(list)-1].(type) {
		case *ast.ReturnStmt:
			if !returnsError || len(last.Results) == 0 {
				return false
			}
			final := last.Results[len(last.Results)-1]
			if tv, ok := p.Info.Types[final]; ok && tv.IsNil() {
				return false
			}
			return true
		case *ast.ExprStmt:
			if call, ok := last.X.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
						return true
					}
				}
			}
		}
		return false
	}
	ast.Inspect(d.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if isColdList(n.Body.List) {
				cold[n.Body] = true
			}
			if els, ok := n.Else.(*ast.BlockStmt); ok && isColdList(els.List) {
				cold[els] = true
			}
		case *ast.CaseClause:
			if isColdList(n.Body) {
				cold[n] = true
			}
		case *ast.CommClause:
			if isColdList(n.Body) {
				cold[n] = true
			}
		}
		return true
	})
	return cold
}

func isErrorType(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type()
	if types.Identical(t, errType) {
		return true
	}
	return types.IsInterface(t) && types.Implements(t, errType.Underlying().(*types.Interface))
}

// capturesOuter reports whether the closure references variables
// declared outside its own body (package-level state excluded — that
// needs no capture).
func capturesOuter(p *Pass, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}

// shortPos renders a position as "basename:line:col" for stable
// cross-package fact messages.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", filepath.Base(p.Filename), p.Line, p.Column)
}

// shortPkg trims the module prefix for readable messages.
func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
