package analysis

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// UnitConfig mirrors the JSON configuration cmd/go writes for a vet
// tool invocation (`go vet -vettool=...` runs the tool once per
// package with a *.cfg argument). The field set matches cmd/go's
// internal vetConfig — the same contract x/tools' unitchecker consumes.
type UnitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit executes the analyzers for one `go vet` unit: it typechecks
// the unit's sources against the compiler export data cmd/go supplies,
// reads upstream facts from PackageVetx, writes this unit's facts to
// VetxOutput, and returns diagnostics (empty when VetxOnly). Non-module
// units (the standard library closure go vet also visits) are skipped
// cheaply — their facts are empty and nothing in them is annotated.
func RunUnit(cfgFile string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg UnitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}

	facts := &PackageFacts{}
	// Always write the facts file, even empty: cmd/go only forwards
	// vetx files that exist, and downstream units expect one per dep.
	defer func() {
		if cfg.VetxOutput != "" {
			writeFacts(cfg.VetxOutput, facts)
		}
	}()

	if cfg.ModulePath == "" || !isUnder(cfg.ImportPath, cfg.ModulePath) {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{Importer: mappedImporter{imp, cfg.ImportMap}}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := newInfo()
	pkgPath := cleanUnitPath(cfg.ImportPath)
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}

	importFacts := loadUpstreamFacts(cfg)
	var diags []Diagnostic
	var ann *Annotations
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			Info:       info,
			ModulePath: cfg.ModulePath,
			Facts:      facts,
			ImportFacts: func(path string) *PackageFacts {
				return importFacts[cleanUnitPath(path)]
			},
			ann:    ann,
			report: func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, cfg.ImportPath, err)
		}
		ann = pass.ann
	}
	if cfg.VetxOnly {
		return nil, nil
	}
	return diags, nil
}

// mappedImporter applies the unit's ImportMap (source import path ->
// canonical compiled path) before the export-data lookup.
type mappedImporter struct {
	base      types.Importer
	importMap map[string]string
}

func (m mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.base.Import(path)
}

// loadUpstreamFacts reads the gob fact files of every dependency cmd/go
// forwarded, keyed by cleaned import path.
func loadUpstreamFacts(cfg UnitConfig) map[string]*PackageFacts {
	out := map[string]*PackageFacts{}
	for path, file := range cfg.PackageVetx {
		pf := readFacts(file)
		if pf != nil {
			out[cleanUnitPath(path)] = pf
		}
	}
	return out
}

// cleanUnitPath strips the test-variant suffix cmd/go appends
// ("kylix/internal/comm [kylix/internal/comm.test]" -> the plain path),
// so fact lookups and package-identity checks see stable paths.
func cleanUnitPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// isUnder reports whether path is the module path or below it.
func isUnder(path, module string) bool {
	path = cleanUnitPath(path)
	// External test packages are named <pkg>_test; they live in the
	// module too.
	return path == module || strings.HasPrefix(path, module+"/")
}

// writeFacts serializes the package facts; failures are deliberately
// non-fatal (the next build simply recomputes).
func writeFacts(file string, facts *PackageFacts) {
	f, err := os.Create(file)
	if err != nil {
		return
	}
	defer f.Close()
	_ = gob.NewEncoder(f).Encode(facts)
}

// readFacts deserializes one dependency's facts, nil on any error.
func readFacts(file string) *PackageFacts {
	f, err := os.Open(file)
	if err != nil {
		return nil
	}
	defer f.Close()
	var facts PackageFacts
	if err := gob.NewDecoder(f).Decode(&facts); err != nil {
		return nil
	}
	return &facts
}
