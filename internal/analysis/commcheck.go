package analysis

import (
	"go/ast"
	"go/types"
)

// CommCheck enforces transport-API hygiene on comm.Endpoint users:
//
//   - The error results of Send, Recv, RecvAny, RecvGroup and Close
//     must be consumed. Since the fault-tolerance work, these errors
//     carry real protocol state — sticky stream failures surface on
//     Close, timeouts arrive as structured *comm.TimeoutError — and a
//     dropped one silently turns a dead peer into a wrong answer.
//     Assigning to _ is accepted as a visible, deliberate discard.
//   - Tag arguments must be named constants, comm.MakeTag results or
//     variables — never bare integer literals. An untyped literal tag
//     bypasses the kind/layer/sequence packing and collides with
//     protocol traffic in ways that only fail under load.
//   - Stream ids (comm.StreamID arguments, e.g. MakeStreamTag's first
//     parameter) must likewise never be bare integer literals: real
//     ids are allocated by the stream registry and never reused, so a
//     hard-coded id either collides with a live tenant or silently
//     addresses a dead namespace. comm.DefaultStream is the named way
//     to mean "the cluster's own tag space".
//   - The root stream API gets the same error discipline as Endpoint:
//     Stream.Run, Stream.Configure, Stream.Close and Cluster.Close
//     return errors that carry pass results and sticky stream state,
//     and a dropped one turns a failed collective into a silent no-op.
//
// Test files are skipped (teardown paths discard errors by design, and
// fixed stream ids are how isolation tests pin their scenarios).
// Suppress with //kylix:allow commcheck[:detail].
var CommCheck = &Analyzer{
	Name: "commcheck",
	Doc:  "comm.Endpoint errors must be consumed and tags must be named constants",
	Run:  runCommCheck,
}

// endpointMethods are the comm.Endpoint methods whose error results are
// load-bearing.
var endpointMethods = map[string]bool{
	"Send": true, "Recv": true, "RecvAny": true, "RecvGroup": true, "Close": true,
}

const commPkgPath = "kylix/internal/comm"

// streamAPIMethods are the root-module methods whose error results are
// load-bearing like Endpoint's: a Stream pass result or a Close that
// surfaces sticky failures.
var streamAPIMethods = map[string]map[string]bool{
	"Stream":  {"Run": true, "Configure": true, "Close": true},
	"Cluster": {"Close": true},
}

func runCommCheck(p *Pass) error {
	endpoint := lookupEndpoint(p)
	tagType := lookupCommType(p, "Tag")
	streamType := lookupCommType(p, "StreamID")
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscardedEndpointError(p, call, endpoint)
					checkDiscardedStreamError(p, call)
				}
			case *ast.DeferStmt:
				checkDiscardedEndpointError(p, n.Call, endpoint)
				checkDiscardedStreamError(p, n.Call)
			case *ast.GoStmt:
				checkDiscardedEndpointError(p, n.Call, endpoint)
				checkDiscardedStreamError(p, n.Call)
			case *ast.CallExpr:
				checkTagLiterals(p, n, tagType, streamType)
			}
			return true
		})
	}
	return nil
}

// lookupEndpoint finds the comm.Endpoint interface type, whether the
// analyzed package imports comm or is comm itself.
func lookupEndpoint(p *Pass) *types.Interface {
	var scope *types.Scope
	if p.Pkg.Path() == commPkgPath {
		scope = p.Pkg.Scope()
	} else {
		for _, imp := range p.Pkg.Imports() {
			if imp.Path() == commPkgPath {
				scope = imp.Scope()
				break
			}
		}
	}
	if scope == nil {
		return nil
	}
	obj := scope.Lookup("Endpoint")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// lookupCommType finds a named type in the comm package, whether the
// analyzed package imports comm or is comm itself.
func lookupCommType(p *Pass, name string) types.Type {
	var scope *types.Scope
	if p.Pkg.Path() == commPkgPath {
		scope = p.Pkg.Scope()
	} else {
		for _, imp := range p.Pkg.Imports() {
			if imp.Path() == commPkgPath {
				scope = imp.Scope()
				break
			}
		}
	}
	if scope == nil {
		return nil
	}
	obj := scope.Lookup(name)
	if obj == nil {
		return nil
	}
	return obj.Type()
}

// checkDiscardedEndpointError flags a statement-position call to an
// Endpoint method whose error result vanishes.
func checkDiscardedEndpointError(p *Pass, call *ast.CallExpr, endpoint *types.Interface) {
	if endpoint == nil {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !endpointMethods[sel.Sel.Name] {
		return
	}
	fn, _ := p.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return
	}
	// The receiver must satisfy comm.Endpoint (interface or concrete
	// transport implementation).
	recv := p.Info.TypeOf(sel.X)
	if recv == nil || !implementsEndpoint(recv, endpoint) {
		return
	}
	// And the method must actually return an error (Mailbox.Close, for
	// example, returns nothing and is fine to call bare).
	if !lastResultIsError(sig) {
		return
	}
	p.Reportf(call.Pos(), "discard",
		"%s.%s error discarded: transport errors carry protocol state (sticky stream failures, timeouts); handle it or assign to _ deliberately",
		exprString(sel.X), sel.Sel.Name)
}

// checkDiscardedStreamError flags a statement-position call to a root
// stream-API method (Stream.Run/Configure/Close, Cluster.Close) whose
// error result vanishes.
func checkDiscardedStreamError(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, _ := p.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || !lastResultIsError(sig) {
		return
	}
	recv := sig.Recv().Type()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != p.ModulePath || !streamAPIMethods[obj.Name()][fn.Name()] {
		return
	}
	p.Reportf(call.Pos(), "discard",
		"%s.%s error discarded: stream errors carry the pass result and sticky failure state; handle it or assign to _ deliberately",
		exprString(sel.X), sel.Sel.Name)
}

func implementsEndpoint(t types.Type, endpoint *types.Interface) bool {
	if types.Implements(t, endpoint) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), endpoint)
	}
	return false
}

func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	return res.Len() > 0 && isErrorType(res.At(res.Len()-1).Type())
}

// checkTagLiterals flags integer literals flowing into comm.Tag or
// comm.StreamID parameters, and explicit comm.Tag(<literal>) /
// comm.StreamID(<literal>) conversions.
func checkTagLiterals(p *Pass, call *ast.CallExpr, tagType, streamType types.Type) {
	if tagType == nil {
		return
	}
	// Explicit conversions Tag(7) / StreamID(7).
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 || !isIntLiteral(call.Args[0]) {
			return
		}
		if types.Identical(tv.Type, tagType) {
			p.Reportf(call.Args[0].Pos(), "taglit",
				"untyped integer literal converted to comm.Tag: use comm.MakeTag or a named constant so kind/layer/sequence packing holds")
		}
		if streamType != nil && types.Identical(tv.Type, streamType) {
			p.Reportf(call.Args[0].Pos(), "streamlit",
				"untyped integer literal converted to comm.StreamID: stream ids are allocated by the registry (comm.DefaultStream names the cluster's own space)")
		}
		return
	}
	sig, _ := p.Info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue
			}
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !isIntLiteral(arg) {
			continue
		}
		if types.Identical(pt, tagType) {
			p.Reportf(arg.Pos(), "taglit",
				"untyped integer literal passed as comm.Tag: use comm.MakeTag or a named constant so kind/layer/sequence packing holds")
		}
		if streamType != nil && types.Identical(pt, streamType) {
			p.Reportf(arg.Pos(), "streamlit",
				"untyped integer literal passed as comm.StreamID: stream ids are allocated by the registry (comm.DefaultStream names the cluster's own space)")
		}
	}
}

// isIntLiteral matches bare integer literals (possibly parenthesized or
// negated) — but not named constants, which document intent.
func isIntLiteral(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.BasicLit:
		return true
	case *ast.UnaryExpr:
		return isIntLiteral(e.X)
	}
	return false
}
