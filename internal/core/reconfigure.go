package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"kylix/internal/comm"
	"kylix/internal/obs"
	"kylix/internal/sparse"
)

// deltaUnchanged is the shared both-directions-unchanged marker. It is
// immutable (its lazily memoized encoding is a sync.Once), so every
// rank sends the same two-byte payload without allocating.
var deltaUnchanged = &comm.Delta{InSame: true, OutSame: true}

// Reconfigure rebinds the Config to new top-level index sets, reusing
// every piece of routing state the change does not touch. It is the
// incremental counterpart of Machine.Configure for workloads whose sets
// evolve slowly (a few vertices enter or leave between rounds): each
// layer ships a two-byte unchanged marker instead of a re-encoded piece
// for every neighbour whose piece is identical to the previous pass,
// and a layer whose received pieces are all unchanged keeps its unions
// and position maps without re-merging anything. When nothing changed
// at all, the reduction scratch arena survives too, so the next Reduce
// is as warm as before the call.
//
// Reconfigure is collective and SPMD like Configure: every live machine
// must call it in the same round order (possibly with unchanged sets).
// The first Reconfigure on a Config ships full pieces everywhere —
// Configure does not retain received pieces — and later calls send
// markers against the state it stored.
//
// On error the Config is poisoned: some layers may hold new state and
// others old, so it must be discarded (along with the collective round,
// which has diverged anyway).
func (c *Config) Reconfigure(inSet, outSet sparse.Set) (err error) {
	m := c.mach
	if c.poisoned {
		return &PoisonedError{Rank: m.Rank()}
	}
	// A set equal to the currently configured one is sorted by
	// construction; the warm unchanged-sets path gets away with two O(1)
	// aliasing checks instead of full validation scans. Failing here is
	// safe — nothing has been exchanged or overwritten yet, so the
	// Config stays usable; only errors past this point poison it.
	if !(inSet.Equal(c.inSet) || inSet.IsSorted()) || !(outSet.Equal(c.outSet) || outSet.IsSorted()) {
		return fmt.Errorf("core: Reconfigure requires sorted, deduplicated Sets")
	}
	defer func() {
		if err != nil {
			c.poisoned = true
		}
	}()
	round := m.nextRound()
	m.ensureCfgScratch()
	tr := m.opts.Tracer
	outer := tr.Begin(comm.KindConfig, 0)
	defer func() { outer.Err = err; tr.End(&outer) }()

	ready := c.reconfigReady
	allFast := true
	prevIn, prevOut := c.inSet, c.outSet
	inCur, outCur := inSet, outSet
	c.inSet, c.outSet = inSet, outSet
	for layer := 1; layer <= m.bf.Layers(); layer++ {
		ls := &c.layers[layer-1]
		// Snapshot the previous layer state: ls is overwritten below, but
		// the comparisons and marker substitutions need the old slices.
		old := *ls
		sp := tr.Begin(comm.KindConfig, layer)
		fast, err := c.reconfigureLayer(ls, &old, layer, round, ready, prevIn, prevOut, inCur, outCur, &sp)
		sp.Err = err
		tr.End(&sp)
		if err != nil {
			return fmt.Errorf("core: rank %d reconfigure layer %d: %w", m.Rank(), layer, err)
		}
		if !fast {
			allFast = false
		}
		prevIn, prevOut = old.inUnion, old.outUnion
		inCur, outCur = ls.inUnion, ls.outUnion
	}
	// The bottom turnaround depends only on the bottom unions: rebuild it
	// unless the last layer kept them. (When it kept them, inCur/outCur
	// alias the old unions, so the map is still exact.)
	last := &c.layers[len(c.layers)-1]
	if !ready || !last.inUnion.Equal(prevIn) || !last.outUnion.Equal(prevOut) {
		if err := c.finishBottom(inCur, outCur); err != nil {
			return err
		}
	}
	if !allFast {
		// Buffer sizes may have changed somewhere; rebuild the reduction
		// arena lazily on the next Reduce.
		c.scratch = nil
	}
	c.reconfigReady = true
	return nil
}

// reconfigureLayer runs one layer of the incremental pass. old is the
// layer's previous state (already snapshotted by the caller); ls is
// overwritten in place. It reports fast=true when the layer reused both
// its send split and its receive-side unions/maps unchanged.
func (c *Config) reconfigureLayer(ls, old *layerState, layer int, round uint32, ready bool, prevIn, prevOut, inCur, outCur sparse.Set, sp *obs.Span) (fast bool, err error) {
	m := c.mach
	cs := m.cfg
	d := m.bf.Degree(layer)
	parent := m.bf.RangeAt(m.Rank(), layer-1)
	sp.Peers = d
	tr := m.opts.Tracer
	obsOn := tr.Enabled()
	tag := m.tag(comm.KindConfig, layer, round)

	// Whole-set fast path: when this layer's input sets are the previous
	// ones (O(1) when they alias, which is what an unchanged upper layer
	// hands down), every piece is trivially identical — skip the split
	// and per-piece comparisons and send markers straight away.
	sendSame := ready && inCur.Equal(prevIn) && outCur.Equal(prevOut)
	var newInOffs, newOutOffs []int32
	if sendSame {
		for _, member := range old.group {
			if obsOn {
				enc := deltaUnchanged.WireSize()
				sp.BytesOut += int64(enc)
				tr.CountConfigBytes(int64(deltaUnchanged.RawWireSize()), int64(enc))
			}
			if err := m.ep.Send(member, tag, deltaUnchanged); err != nil {
				return false, err
			}
		}
	} else {
		// Candidate split of the new sets, staged in machine scratch; it
		// is only retained (copied) if the send split actually changed.
		newInOffs = sparse.SplitOffsetsInto(cs.offs[:d+1:d+1], inCur, parent, d)
		newOutOffs = sparse.SplitOffsetsInto(cs.offs[d+1:2*(d+1)], outCur, parent, d)

		// Send one Delta per member: unchanged directions become markers.
		sendSame = true
		var hdrs []comm.Delta
		for t, member := range old.group {
			newIn := sparse.Piece(inCur, newInOffs, t)
			newOut := sparse.Piece(outCur, newOutOffs, t)
			var p *comm.Delta
			if ready {
				inSame := newIn.Equal(sparse.Piece(prevIn, old.inOffsets, t))
				outSame := newOut.Equal(sparse.Piece(prevOut, old.outOffsets, t))
				if inSame && outSame {
					p = deltaUnchanged
				} else {
					sendSame = false
					if hdrs == nil {
						hdrs = make([]comm.Delta, d)
					}
					p = &hdrs[t]
					p.InSame, p.OutSame = inSame, outSame
					if !inSame {
						p.In = newIn
					}
					if !outSame {
						p.Out = newOut
					}
				}
			} else {
				sendSame = false
				if hdrs == nil {
					hdrs = make([]comm.Delta, d)
				}
				p = &hdrs[t]
				p.In, p.Out = newIn, newOut
			}
			if obsOn {
				enc := p.WireSize()
				sp.BytesOut += int64(enc)
				tr.CountConfigBytes(int64(p.RawWireSize()), int64(enc))
			}
			if err := m.ep.Send(member, tag, p); err != nil {
				return false, err
			}
		}
	}

	// Receive one Delta per member; markers substitute the stored
	// previous piece.
	inP, outP, seen := cs.inP[:d], cs.outP[:d], cs.seen[:d]
	for t := range seen {
		seen[t] = false
	}
	recvSame := true
	myRange := parent.Sub(d, m.bf.Digit(m.Rank(), layer))
	for received := 0; received < d; {
		from, p, err := m.ep.RecvGroup(cs.groups[layer-1], tag)
		if err != nil {
			return false, fmt.Errorf("recv: %w", err)
		}
		t := memberIndex(old.group, from)
		if t < 0 {
			return false, fmt.Errorf("piece from %d outside group", from)
		}
		if seen[t] {
			continue // duplicate delivery
		}
		q, ok := p.(*comm.Delta)
		if !ok {
			return false, fmt.Errorf("unexpected payload %T from %d", p, from)
		}
		if (q.InSame || q.OutSame) && (!ready || old.recvIn == nil) {
			return false, fmt.Errorf("unchanged marker from %d but no stored piece", from)
		}
		if q.InSame {
			inP[t] = old.recvIn[t]
		} else {
			recvSame = false
			inP[t] = q.In
		}
		if q.OutSame {
			outP[t] = old.recvOut[t]
		} else {
			recvSame = false
			outP[t] = q.Out
			if err := sparse.CheckInRange(outP[t], myRange); err != nil {
				return false, fmt.Errorf("piece from %d: %w", from, err)
			}
		}
		if obsOn {
			sp.BytesIn += int64(p.WireSize())
		}
		seen[t] = true
		received++
	}

	// Send side: keep the old split when nothing we ship changed,
	// otherwise retain a copy of the staged offsets.
	if sendSame {
		ls.group, ls.inOffsets, ls.outOffsets = old.group, old.inOffsets, old.outOffsets
	} else {
		offs := make([]int32, 2*(d+1))
		copy(offs[:d+1], newInOffs)
		copy(offs[d+1:], newOutOffs)
		ls.group = old.group
		ls.inOffsets = offs[:d+1 : d+1]
		ls.outOffsets = offs[d+1:]
	}

	// Receive side: unions and maps depend only on the received pieces,
	// so all-markers means they are exactly the old ones.
	layerFast := ready && recvSame
	if layerFast {
		ls.inUnion, ls.outUnion = old.inUnion, old.outUnion
		ls.inMaps, ls.outMaps = old.inMaps, old.outMaps
		ls.recvIn, ls.recvOut = old.recvIn, old.recvOut
	} else {
		c.mach.buildUnions(ls, inP, outP)
		// Retain the received pieces for the next incremental pass. Sets
		// are immutable, so holding the references (zero-copy transports
		// hand us slices of the sender's unions) is safe.
		if old.recvIn == nil {
			ls.recvIn = make([]sparse.Set, d)
			ls.recvOut = make([]sparse.Set, d)
		} else {
			ls.recvIn, ls.recvOut = old.recvIn, old.recvOut
		}
		copy(ls.recvIn, inP)
		copy(ls.recvOut, outP)
	}
	tr.CountReconfigureLayer(layerFast)
	for t := range inP {
		inP[t], outP[t] = nil, nil
	}
	return layerFast && sendSame, nil
}

// Digest returns a 64-bit FNV-1a fingerprint of every piece of routing
// state the Config holds: top sets, per-layer groups, split offsets,
// unions, position maps, and the bottom turnaround. Two Configs with
// equal digests route identically, so a Reconfigure pass can be checked
// bit-for-bit against a fresh Configure of the same sets — the chaos
// suite uses this to prove fault-injected reconfiguration converges to
// exactly the fault-free state.
func (c *Config) Digest() uint64 {
	h := fnv.New64a()
	var b [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	set := func(s sparse.Set) {
		u64(uint64(len(s)))
		for _, k := range s {
			u64(uint64(k))
		}
	}
	i32s := func(m []int32) {
		u64(uint64(len(m)))
		for _, v := range m {
			u64(uint64(uint32(v)))
		}
	}
	set(c.inSet)
	set(c.outSet)
	for i := range c.layers {
		ls := &c.layers[i]
		u64(uint64(len(ls.group)))
		for _, r := range ls.group {
			u64(uint64(r))
		}
		i32s(ls.inOffsets)
		i32s(ls.outOffsets)
		set(ls.inUnion)
		set(ls.outUnion)
		for _, m := range ls.inMaps {
			i32s(m)
		}
		for _, m := range ls.outMaps {
			i32s(m)
		}
	}
	i32s(c.bottomMap)
	u64(uint64(c.missing))
	return h.Sum64()
}
