package core

import (
	"kylix/internal/comm"
	"kylix/internal/sparse"
)

// genBufs is one generation of a Config's reusable reduction buffers.
// Every slice a warm Reduce writes — layer accumulators, send payload
// headers, gather extraction buffers, the turnaround vector and the
// per-layer assembly buffers — is carved here once, so steady-state
// rounds allocate nothing.
type genBufs struct {
	// acc[i] is layer i+1's scatter-reduce accumulator
	// (len = |outUnion| * width).
	acc [][]float32
	// scatter[i][t] is the reusable send header for the scatter piece to
	// layer i+1's member t; its Vals is re-pointed at a segment of the
	// current value vector each round.
	scatter [][]comm.Floats
	// gather[i][t] is the send header for the allgather piece to layer
	// i+1's member t; its Vals is a fixed buffer (len = |inMaps[t]| *
	// width) refilled by GatherInto each round.
	gather [][]comm.Floats
	// inVals is the bottom turnaround vector (len = |bottomIn| * width).
	inVals []float32
	// next[i] is the allgather assembly buffer below layer i+1
	// (len = |inSet| * width for i == 0, |layers[i-1].inUnion| * width
	// otherwise). next[0] is the vector handed back to the caller.
	next [][]float32
	// qscatter/qgather mirror scatter/gather when Options.Quant is a
	// lossy mode: reusable QVals send headers whose Data (sized exactly
	// by sparse.QuantizedSize) is refilled by the quantize kernels each
	// round. Like gather value buffers, the Data bytes may still be
	// draining through a transport when the round ends, so they live in
	// the two-generation arena and are only rewritten once quiescent.
	// Nil when quantization is off.
	qscatter [][]comm.QVals
	qgather  [][]comm.QVals
}

// scratch is a Config's two-generation reduction arena plus the
// generation-independent receive state. Rounds alternate generations:
// round N reuses the buffers of round N-2, which are quiescent by then —
// any rank entering round N has completed round N-1, which required a
// message from every group member at every layer, which those members
// only send after finishing round N-2 and therefore after consuming
// every round-N-2 payload addressed to them. (Send-side transports
// either finish reading a payload before the receiver can complete the
// round it belongs to, or deep-copy it up front, so the same bound
// covers them.)
//
// Generations are built lazily: a fused ConfigureReduce performs one
// allgather and then often hands the Config to a caller that never
// Reduces again, so eagerly sizing both generations doubled the
// configuration pass's footprint for nothing (the BenchmarkConfigureReduce16
// regression tracked in EXPERIMENTS.md). The first flip into a
// generation pays its build; a Config that settles into steady-state
// reduction touches both exactly once.
type scratch struct {
	gen   int
	bufs  [2]genBufs
	ready [2]bool
	// stage holds arrival-order receipts until they can be folded in
	// canonical member order; sized to the widest layer group. Non-nil
	// entries double as duplicate-delivery guards. Shared from the
	// machine-level cfgScratch (one goroutine per machine, and each
	// Reduce clears it before use).
	stage []*comm.Floats
	// groups[i][t] is the singleton group {layers[i].group[t]} — the
	// RecvGroup argument that makes receives pure arrival-order with no
	// cancellation. Shared from the machine-level cfgScratch: the layer
	// groups are fixed by the topology, not by the Config.
	groups [][][]int
	// quant is the quantization working state (dequantize landing
	// buffers and error-feedback residuals); nil when Options.Quant is
	// off. It lives on the scratch for lifetime convenience, but the
	// residuals are not scratch in the reuse sense: they carry state
	// from round to round and must never be cleared between rounds.
	quant *quantState
}

// quantState is a Config's quantization working state.
type quantState struct {
	// recv[i][t] is the dequantize landing buffer for the scatter piece
	// received from layer i+1's member t (len = |outMaps[t]| * width).
	// Received QVals decode into it and the existing staged-fold
	// machinery consumes it within the same layer on the same
	// goroutine, so one instance (not one per generation) suffices.
	recv [][]comm.Floats
	// resScatter[i][t] is the error-feedback residual of the scatter
	// piece sent to layer i+1's member t (len = the piece's value
	// count); resGather[i][t] likewise for the allgather piece
	// (len = |inMaps[t]| * width). Each round's quantization error is
	// left here and added to the next round's values before encoding.
	// Nil (kernels run without feedback) when Options.QuantNoFeedback.
	resScatter [][][]float32
	resGather  [][][]float32
}

// flip advances to the next generation — building it on first use — and
// returns its buffers.
func (c *Config) flip(s *scratch) *genBufs {
	s.gen ^= 1
	if !s.ready[s.gen] {
		c.buildGen(s, s.gen)
	}
	return &s.bufs[s.gen]
}

// ensureScratch builds the Config's receive state on first use; the
// per-generation value buffers follow lazily at each generation's first
// flip. Sizes are fully determined by the configuration, so every warm
// Reduce is allocation-free.
//
//kylix:coldpath
func (c *Config) ensureScratch() *scratch {
	if c.scratch != nil {
		return c.scratch
	}
	cs := c.mach.ensureCfgScratch()
	c.scratch = &scratch{stage: cs.stage, groups: cs.groups}
	if c.mach.opts.Quant != sparse.QuantOff {
		c.scratch.quant = c.buildQuantState()
	}
	return c.scratch
}

// buildQuantState sizes the dequantize landing buffers and, unless
// feedback is disabled, the per-piece error-feedback residuals
// (zero-initialised: the first round has no prior error to fold in).
//
//kylix:coldpath
func (c *Config) buildQuantState() *quantState {
	w := c.mach.opts.Width
	ef := !c.mach.opts.QuantNoFeedback
	qs := &quantState{recv: make([][]comm.Floats, len(c.layers))}
	if ef {
		qs.resScatter = make([][][]float32, len(c.layers))
		qs.resGather = make([][][]float32, len(c.layers))
	}
	for i := range c.layers {
		ls := &c.layers[i]
		qs.recv[i] = make([]comm.Floats, len(ls.group))
		if ef {
			qs.resScatter[i] = make([][]float32, len(ls.group))
			qs.resGather[i] = make([][]float32, len(ls.group))
		}
		for t := range ls.group {
			qs.recv[i][t].Vals = make([]float32, len(ls.outMaps[t])*w)
			if ef {
				qs.resScatter[i][t] = make([]float32, int(ls.outOffsets[t+1]-ls.outOffsets[t])*w)
				qs.resGather[i][t] = make([]float32, len(ls.inMaps[t])*w)
			}
		}
	}
	return qs
}

// buildGen sizes one generation of the reduction arena.
//
//kylix:coldpath
func (c *Config) buildGen(s *scratch, gen int) {
	w := c.mach.opts.Width
	quant := c.mach.opts.Quant
	g := &s.bufs[gen]
	g.acc = make([][]float32, len(c.layers))
	g.scatter = make([][]comm.Floats, len(c.layers))
	g.gather = make([][]comm.Floats, len(c.layers))
	g.next = make([][]float32, len(c.layers))
	g.inVals = make([]float32, len(c.bottomIn())*w)
	if quant != sparse.QuantOff {
		g.qscatter = make([][]comm.QVals, len(c.layers))
		g.qgather = make([][]comm.QVals, len(c.layers))
	}
	for i := range c.layers {
		ls := &c.layers[i]
		g.acc[i] = make([]float32, len(ls.outUnion)*w)
		g.scatter[i] = make([]comm.Floats, len(ls.group))
		g.gather[i] = make([]comm.Floats, len(ls.group))
		if quant != sparse.QuantOff {
			g.qscatter[i] = make([]comm.QVals, len(ls.group))
			g.qgather[i] = make([]comm.QVals, len(ls.group))
		}
		for t := range ls.group {
			g.gather[i][t].Vals = make([]float32, len(ls.inMaps[t])*w)
			if quant != sparse.QuantOff {
				ns := int(ls.outOffsets[t+1]-ls.outOffsets[t]) * w
				g.qscatter[i][t] = comm.QVals{Mode: quant, N: ns,
					Data: make([]byte, sparse.QuantizedSize(quant, ns))}
				ng := len(ls.inMaps[t]) * w
				g.qgather[i][t] = comm.QVals{Mode: quant, N: ng,
					Data: make([]byte, sparse.QuantizedSize(quant, ng))}
			}
		}
		below := c.inSet
		if i > 0 {
			below = c.layers[i-1].inUnion
		}
		g.next[i] = make([]float32, len(below)*w)
	}
	s.ready[gen] = true
}

// cfgScratch is the machine-level scratch of the configuration pass:
// everything transient that configureLayer used to allocate per call
// but whose shape depends only on the topology (receive groups, piece
// staging, union arenas). One instance serves every Configure /
// ConfigureReduce / Reconfigure on the Machine — machines are
// single-goroutine by contract, and nothing here survives a pass except
// as reusable capacity.
type cfgScratch struct {
	// groupOf[layer-1] is this machine's layer group (topology-fixed;
	// retained read-only by every Config's layerStates).
	groupOf [][]int
	// groups[layer-1][t] is the singleton receive group {groupOf[t]}.
	groups [][][]int
	// stage is the reduction's arrival-order staging (see scratch.stage).
	stage []*comm.Floats
	// inP/outP/valP/seen stage one layer's received configuration
	// pieces, indexed by group slot; sized to the widest layer.
	inP, outP []sparse.Set
	valP      [][]float32
	seen      []bool
	// uni is the tree-union arena; unions are cloned out of it into the
	// retained layerState, so only the final deduplicated keys are paid
	// for per configuration.
	uni sparse.UnionScratch
	// offs stages candidate split offsets during Reconfigure's
	// compare-before-commit step (2*(maxDeg+1) entries).
	offs []int32
}

// ensureCfgScratch builds the machine's configuration scratch on first
// use.
//
//kylix:coldpath
func (m *Machine) ensureCfgScratch() *cfgScratch {
	if m.cfg != nil {
		return m.cfg
	}
	L := m.bf.Layers()
	cs := &cfgScratch{groupOf: make([][]int, L), groups: make([][][]int, L)}
	maxDeg := 0
	for layer := 1; layer <= L; layer++ {
		group := m.bf.Group(m.Rank(), layer)
		d := len(group)
		if d > maxDeg {
			maxDeg = d
		}
		cs.groupOf[layer-1] = group
		cs.groups[layer-1] = make([][]int, d)
		for t := range group {
			cs.groups[layer-1][t] = group[t : t+1 : t+1]
		}
	}
	cs.stage = make([]*comm.Floats, maxDeg)
	cs.inP = make([]sparse.Set, maxDeg)
	cs.outP = make([]sparse.Set, maxDeg)
	cs.valP = make([][]float32, maxDeg)
	cs.seen = make([]bool, maxDeg)
	cs.offs = make([]int32, 2*(maxDeg+1))
	m.cfg = cs
	return cs
}

// memberIndex locates a rank in a layer group (groups are small — the
// topology degree — so a linear scan beats any index structure).
func memberIndex(group []int, rank int) int {
	for t, m := range group {
		if m == rank {
			return t
		}
	}
	return -1
}
