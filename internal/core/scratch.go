package core

import (
	"kylix/internal/comm"
)

// genBufs is one generation of a Config's reusable reduction buffers.
// Every slice a warm Reduce writes — layer accumulators, send payload
// headers, gather extraction buffers, the turnaround vector and the
// per-layer assembly buffers — is carved here once, so steady-state
// rounds allocate nothing.
type genBufs struct {
	// acc[i] is layer i+1's scatter-reduce accumulator
	// (len = |outUnion| * width).
	acc [][]float32
	// scatter[i][t] is the reusable send header for the scatter piece to
	// layer i+1's member t; its Vals is re-pointed at a segment of the
	// current value vector each round.
	scatter [][]comm.Floats
	// gather[i][t] is the send header for the allgather piece to layer
	// i+1's member t; its Vals is a fixed buffer (len = |inMaps[t]| *
	// width) refilled by GatherInto each round.
	gather [][]comm.Floats
	// inVals is the bottom turnaround vector (len = |bottomIn| * width).
	inVals []float32
	// next[i] is the allgather assembly buffer below layer i+1
	// (len = |inSet| * width for i == 0, |layers[i-1].inUnion| * width
	// otherwise). next[0] is the vector handed back to the caller.
	next [][]float32
}

// scratch is a Config's two-generation reduction arena plus the
// generation-independent receive state. Rounds alternate generations:
// round N reuses the buffers of round N-2, which are quiescent by then —
// any rank entering round N has completed round N-1, which required a
// message from every group member at every layer, which those members
// only send after finishing round N-2 and therefore after consuming
// every round-N-2 payload addressed to them. (Send-side transports
// either finish reading a payload before the receiver can complete the
// round it belongs to, or deep-copy it up front, so the same bound
// covers them.)
type scratch struct {
	gen  int
	bufs [2]genBufs
	// stage holds arrival-order receipts until they can be folded in
	// canonical member order; sized to the widest layer group. Non-nil
	// entries double as duplicate-delivery guards.
	stage []*comm.Floats
	// groups[i][t] is the singleton group {layers[i].group[t]} — the
	// RecvGroup argument that makes receives pure arrival-order with no
	// cancellation.
	groups [][][]int
}

// flip advances to the next generation and returns its buffers.
func (s *scratch) flip() *genBufs {
	s.gen ^= 1
	return &s.bufs[s.gen]
}

// ensureScratch builds the Config's arena on first use. Sizes are fully
// determined by the configuration, so this runs once per Config; every
// later Reduce is allocation-free.
//
//kylix:coldpath
func (c *Config) ensureScratch() *scratch {
	if c.scratch != nil {
		return c.scratch
	}
	w := c.mach.opts.Width
	s := &scratch{groups: make([][][]int, len(c.layers))}
	maxDeg := 0
	for i := range c.layers {
		ls := &c.layers[i]
		d := len(ls.group)
		if d > maxDeg {
			maxDeg = d
		}
		singles := make([]int, d)
		copy(singles, ls.group)
		s.groups[i] = make([][]int, d)
		for t := range singles {
			s.groups[i][t] = singles[t : t+1 : t+1]
		}
	}
	s.stage = make([]*comm.Floats, maxDeg)
	for gen := range s.bufs {
		g := &s.bufs[gen]
		g.acc = make([][]float32, len(c.layers))
		g.scatter = make([][]comm.Floats, len(c.layers))
		g.gather = make([][]comm.Floats, len(c.layers))
		g.next = make([][]float32, len(c.layers))
		g.inVals = make([]float32, len(c.bottomIn())*w)
		for i := range c.layers {
			ls := &c.layers[i]
			g.acc[i] = make([]float32, len(ls.outUnion)*w)
			g.scatter[i] = make([]comm.Floats, len(ls.group))
			g.gather[i] = make([]comm.Floats, len(ls.group))
			for t := range ls.group {
				g.gather[i][t].Vals = make([]float32, len(ls.inMaps[t])*w)
			}
			below := c.inSet
			if i > 0 {
				below = c.layers[i-1].inUnion
			}
			g.next[i] = make([]float32, len(below)*w)
		}
	}
	c.scratch = s
	return s
}

// memberIndex locates a rank in a layer group (groups are small — the
// topology degree — so a linear scan beats any index structure).
func memberIndex(group []int, rank int) int {
	for t, m := range group {
		if m == rank {
			return t
		}
	}
	return -1
}
