package core

import (
	"fmt"

	"kylix/internal/comm"
	"kylix/internal/obs"
	"kylix/internal/sparse"
)

// Configure runs the downward configuration pass (§III-A) for the given
// top-level index sets, which must be sorted key Sets (use
// sparse.NewSet to build them from raw indices). Every live machine must
// call Configure collectively with its own sets.
//
// At each layer the machine partitions its current in/out sets into
// equal hash sub-ranges, ships piece t to the group member owning
// sub-range t (its own piece included, through the transport, so traffic
// accounting matches the paper's Figure 5 convention), merges the pieces
// it receives into per-layer unions, and keeps the position maps that
// let reduction run in constant time per element.
//
// The pass allocates only what the returned Config retains: transient
// state (receive staging, union work arenas, split offsets) lives in a
// machine-level scratch reused across configurations, and per-layer
// retained slices are carved from single blocks.
func (m *Machine) Configure(inSet, outSet sparse.Set) (cfgOut *Config, err error) {
	if !inSet.IsSorted() || !outSet.IsSorted() {
		return nil, fmt.Errorf("core: Configure requires sorted, deduplicated Sets")
	}
	round := m.nextRound()
	cfg := &Config{mach: m, inSet: inSet, outSet: outSet,
		layers: make([]layerState, m.bf.Layers())}
	tr := m.opts.Tracer
	outer := tr.Begin(comm.KindConfig, 0)
	defer func() { outer.Err = err; tr.End(&outer) }()

	inCur, outCur := inSet, outSet
	for layer := 1; layer <= m.bf.Layers(); layer++ {
		ls := &cfg.layers[layer-1]
		sp := tr.Begin(comm.KindConfig, layer)
		err := m.configureLayer(ls, layer, round, inCur, outCur, nil, nil, nil, &sp)
		sp.Err = err
		tr.End(&sp)
		if err != nil {
			return nil, fmt.Errorf("core: rank %d config layer %d: %w", m.Rank(), layer, err)
		}
		inCur, outCur = ls.inUnion, ls.outUnion
	}
	if err := cfg.finishBottom(inCur, outCur); err != nil {
		return nil, err
	}
	return cfg, nil
}

// configureLayer executes one layer of the downward pass, filling the
// caller's layerState. When vals is non-nil the pass is fused with
// reduction: out pieces carry their values, and the returned accumulator
// (via *accOut) holds the combined layer result (the §III combined
// configure+reduce). The caller's span sp accumulates the layer's wire
// bytes and group size.
//
// Byte accounting is gated on the tracer being live: sizing a
// configuration payload runs the index codec, which is worth paying for
// observability but not for a span that will be discarded.
func (m *Machine) configureLayer(ls *layerState, layer int, round uint32, inCur, outCur sparse.Set, vals []float32, accOut *[]float32, tagKindOverride *comm.Kind, sp *obs.Span) error {
	cs := m.ensureCfgScratch()
	d := m.bf.Degree(layer)
	group := cs.groupOf[layer-1]
	parent := m.bf.RangeAt(m.Rank(), layer-1)
	sp.Peers = d

	// Both offset slices come from one retained block.
	offs := make([]int32, 2*(d+1))
	ls.group = group
	ls.inOffsets = sparse.SplitOffsetsInto(offs[:d+1:d+1], inCur, parent, d)
	ls.outOffsets = sparse.SplitOffsetsInto(offs[d+1:], outCur, parent, d)

	kind := comm.KindConfig
	if tagKindOverride != nil {
		kind = *tagKindOverride
	}
	tag := m.tag(kind, layer, round)
	w := m.opts.Width
	tr := m.opts.Tracer
	obsOn := tr.Enabled()

	// Send piece t to the member owning sub-range t. The payload headers
	// cannot come from machine scratch — transports may retain the
	// pointers past this call (fault-injecting fabrics re-Send them) —
	// but one block covers the whole group.
	if vals == nil {
		hdrs := make([]comm.InOut, d)
		for t, member := range group {
			p := &hdrs[t]
			p.In = sparse.Piece(inCur, ls.inOffsets, t)
			p.Out = sparse.Piece(outCur, ls.outOffsets, t)
			if obsOn {
				enc := p.WireSize()
				sp.BytesOut += int64(enc)
				tr.CountConfigBytes(int64(p.RawWireSize()), int64(enc))
			}
			if err := m.ep.Send(member, tag, p); err != nil {
				return err
			}
		}
	} else {
		hdrs := make([]comm.Combined, d)
		for t, member := range group {
			p := &hdrs[t]
			p.In = sparse.Piece(inCur, ls.inOffsets, t)
			p.Out = sparse.Piece(outCur, ls.outOffsets, t)
			p.Vals = vals[int(ls.outOffsets[t])*w : int(ls.outOffsets[t+1])*w]
			if obsOn {
				enc := p.WireSize()
				sp.BytesOut += int64(enc)
				tr.CountConfigBytes(int64(p.RawWireSize()), int64(enc))
			}
			if err := m.ep.Send(member, tag, p); err != nil {
				return err
			}
		}
	}

	// Receive one piece per member, in arrival order, staged in the
	// machine scratch.
	inP, outP, valP, seen := cs.inP[:d], cs.outP[:d], cs.valP[:d], cs.seen[:d]
	for t := range seen {
		seen[t] = false
	}
	myRange := parent.Sub(d, m.bf.Digit(m.Rank(), layer))
	for received := 0; received < d; {
		from, p, err := m.ep.RecvGroup(cs.groups[layer-1], tag)
		if err != nil {
			return fmt.Errorf("recv: %w", err)
		}
		t := memberIndex(group, from)
		if t < 0 {
			return fmt.Errorf("piece from %d outside group", from)
		}
		if seen[t] {
			continue // duplicate delivery
		}
		switch q := p.(type) {
		case *comm.InOut:
			inP[t], outP[t] = q.In, q.Out
		case *comm.Combined:
			inP[t], outP[t], valP[t] = q.In, q.Out, q.Vals
		default:
			return fmt.Errorf("unexpected payload %T from %d", p, from)
		}
		if err := sparse.CheckInRange(outP[t], myRange); err != nil {
			return fmt.Errorf("piece from %d: %w", from, err)
		}
		if obsOn {
			sp.BytesIn += int64(p.WireSize())
		}
		seen[t] = true
		received++
	}
	m.buildUnions(ls, inP, outP)

	if vals != nil {
		// The fused accumulator is freshly allocated, not arena-carved:
		// it becomes the next layer's vals, whose segments outlive this
		// call inside retained Combined payloads.
		acc := make([]float32, len(ls.outUnion)*w)
		if id := m.opts.Reducer.Identity(); id != 0 {
			m.pool.Fill(acc, id)
		}
		for t := range group {
			m.opts.Tracer.CountCombineShards(m.pool.CombineInto(m.opts.Reducer, acc, ls.outMaps[t], valP[t], w))
		}
		*accOut = acc
	}
	// Drop staged references so the scratch does not pin received
	// payload memory past the pass.
	for t := range inP {
		inP[t], outP[t], valP[t] = nil, nil, nil
	}
	return nil
}

// buildUnions computes a layer's in/out unions and position maps from
// the received pieces. The unions are merged in the machine's reusable
// arena and cloned out; the 2d position maps are carved from a single
// data block, so the whole step costs four retained allocations.
func (m *Machine) buildUnions(ls *layerState, inPieces, outPieces []sparse.Set) {
	d := len(inPieces)
	total := 0
	for t := 0; t < d; t++ {
		total += len(inPieces[t]) + len(outPieces[t])
	}
	data := make([]int32, total)
	hdr := make([][]int32, 2*d)
	ls.inMaps = hdr[:d:d]
	ls.outMaps = hdr[d:]
	off := 0
	for t, p := range inPieces {
		ls.inMaps[t] = data[off : off+len(p) : off+len(p)]
		off += len(p)
	}
	for t, p := range outPieces {
		ls.outMaps[t] = data[off : off+len(p) : off+len(p)]
		off += len(p)
	}
	uni := &m.cfg.uni
	ls.inUnion = uni.UnionMaps(inPieces, ls.inMaps).Clone()
	ls.outUnion = uni.UnionMaps(outPieces, ls.outMaps).Clone()
}

// finishBottom builds the turnaround map from the bottom in-union into
// the bottom out-union and enforces Strict coverage.
func (cfg *Config) finishBottom(inBottom, outBottom sparse.Set) error {
	var missing int
	cfg.bottomMap, missing = sparse.PartialPositionMap(inBottom, outBottom)
	cfg.missing = missing
	if cfg.mach.opts.Strict && missing > 0 {
		return fmt.Errorf("core: rank %d: %d requested in-indices have no contributor (strict mode)",
			cfg.mach.Rank(), missing)
	}
	return nil
}

// bottomIn returns the machine's bottom-layer in-union (the top set when
// the topology has zero effective layers, which cannot happen since
// topologies always have >= 1 layer).
func (cfg *Config) bottomIn() sparse.Set {
	return cfg.layers[len(cfg.layers)-1].inUnion
}
