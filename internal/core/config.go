package core

import (
	"fmt"

	"kylix/internal/comm"
	"kylix/internal/obs"
	"kylix/internal/sparse"
)

// Configure runs the downward configuration pass (§III-A) for the given
// top-level index sets, which must be sorted key Sets (use
// sparse.NewSet to build them from raw indices). Every live machine must
// call Configure collectively with its own sets.
//
// At each layer the machine partitions its current in/out sets into
// equal hash sub-ranges, ships piece t to the group member owning
// sub-range t (its own piece included, through the transport, so traffic
// accounting matches the paper's Figure 5 convention), merges the pieces
// it receives into per-layer unions, and keeps the position maps that
// let reduction run in constant time per element.
func (m *Machine) Configure(inSet, outSet sparse.Set) (cfgOut *Config, err error) {
	if !inSet.IsSorted() || !outSet.IsSorted() {
		return nil, fmt.Errorf("core: Configure requires sorted, deduplicated Sets")
	}
	round := m.nextRound()
	cfg := &Config{mach: m, inSet: inSet, outSet: outSet}
	tr := m.opts.Tracer
	outer := tr.Begin(comm.KindConfig, 0)
	defer func() { outer.Err = err; tr.End(&outer) }()

	inCur, outCur := inSet, outSet
	for layer := 1; layer <= m.bf.Layers(); layer++ {
		sp := tr.Begin(comm.KindConfig, layer)
		ls, err := m.configureLayer(layer, round, inCur, outCur, nil, nil, nil, &sp)
		sp.Err = err
		tr.End(&sp)
		if err != nil {
			return nil, fmt.Errorf("core: rank %d config layer %d: %w", m.Rank(), layer, err)
		}
		cfg.layers = append(cfg.layers, *ls)
		inCur, outCur = ls.inUnion, ls.outUnion
	}
	if err := cfg.finishBottom(inCur, outCur); err != nil {
		return nil, err
	}
	return cfg, nil
}

// configureLayer executes one layer of the downward pass. When vals is
// non-nil the pass is fused with reduction: out pieces carry their
// values, and the returned accumulator (via *accOut) holds the combined
// layer result (the §III combined configure+reduce). The caller's span
// sp accumulates the layer's wire bytes and group size.
func (m *Machine) configureLayer(layer int, round uint32, inCur, outCur sparse.Set, vals []float32, accOut *[]float32, tagKindOverride *comm.Kind, sp *obs.Span) (*layerState, error) {
	d := m.bf.Degree(layer)
	group := m.bf.Group(m.Rank(), layer)
	parent := m.bf.RangeAt(m.Rank(), layer-1)
	sp.Peers = len(group)

	ls := &layerState{
		group:      group,
		inOffsets:  sparse.SplitOffsets(inCur, parent, d),
		outOffsets: sparse.SplitOffsets(outCur, parent, d),
	}

	kind := comm.KindConfig
	if tagKindOverride != nil {
		kind = *tagKindOverride
	}
	tag := comm.MakeTag(kind, layer, round)
	w := m.opts.Width

	// Send piece t to the member owning sub-range t.
	for t, member := range group {
		inPiece := sparse.Piece(inCur, ls.inOffsets, t)
		outPiece := sparse.Piece(outCur, ls.outOffsets, t)
		var p comm.Payload
		if vals == nil {
			p = &comm.InOut{In: inPiece, Out: outPiece}
		} else {
			p = &comm.Combined{
				In:   inPiece,
				Out:  outPiece,
				Vals: vals[int(ls.outOffsets[t])*w : int(ls.outOffsets[t+1])*w],
			}
		}
		sp.BytesOut += int64(p.WireSize())
		if err := m.ep.Send(member, tag, p); err != nil {
			return nil, err
		}
	}

	// Receive one piece per member, in arrival order (this is the cold
	// path, so the singleton groups are built per call).
	inPieces := make([]sparse.Set, d)
	outPieces := make([]sparse.Set, d)
	valPieces := make([][]float32, d)
	myRange := parent.Sub(d, m.bf.Digit(m.Rank(), layer))
	singles := make([][]int, d)
	backing := make([]int, d)
	copy(backing, group)
	for t := range singles {
		singles[t] = backing[t : t+1 : t+1]
	}
	seen := make([]bool, d)
	for received := 0; received < d; {
		from, p, err := m.ep.RecvGroup(singles, tag)
		if err != nil {
			return nil, fmt.Errorf("recv: %w", err)
		}
		t := memberIndex(group, from)
		if t < 0 {
			return nil, fmt.Errorf("piece from %d outside group", from)
		}
		if seen[t] {
			continue // duplicate delivery
		}
		sp.BytesIn += int64(p.WireSize())
		switch q := p.(type) {
		case *comm.InOut:
			inPieces[t], outPieces[t] = q.In, q.Out
		case *comm.Combined:
			inPieces[t], outPieces[t], valPieces[t] = q.In, q.Out, q.Vals
		default:
			return nil, fmt.Errorf("unexpected payload %T from %d", p, from)
		}
		if err := sparse.CheckInRange(outPieces[t], myRange); err != nil {
			return nil, fmt.Errorf("piece from %d: %w", from, err)
		}
		seen[t] = true
		received++
	}
	ls.inUnion, ls.inMaps = sparse.UnionWithMaps(inPieces)
	ls.outUnion, ls.outMaps = sparse.UnionWithMaps(outPieces)

	if vals != nil {
		acc := make([]float32, len(ls.outUnion)*w)
		if id := m.opts.Reducer.Identity(); id != 0 {
			sparse.Fill(acc, id)
		}
		for t := range group {
			sparse.CombineInto(m.opts.Reducer, acc, ls.outMaps[t], valPieces[t], w)
		}
		*accOut = acc
	}
	return ls, nil
}

// finishBottom builds the turnaround map from the bottom in-union into
// the bottom out-union and enforces Strict coverage.
func (cfg *Config) finishBottom(inBottom, outBottom sparse.Set) error {
	var missing int
	cfg.bottomMap, missing = sparse.PartialPositionMap(inBottom, outBottom)
	cfg.missing = missing
	if cfg.mach.opts.Strict && missing > 0 {
		return fmt.Errorf("core: rank %d: %d requested in-indices have no contributor (strict mode)",
			cfg.mach.Rank(), missing)
	}
	return nil
}

// bottomIn returns the machine's bottom-layer in-union (the top set when
// the topology has zero effective layers, which cannot happen since
// topologies always have >= 1 layer).
func (cfg *Config) bottomIn() sparse.Set {
	return cfg.layers[len(cfg.layers)-1].inUnion
}
