package core

import (
	"math"
	"math/rand"
	"testing"

	"kylix/internal/comm"
	"kylix/internal/memnet"
	"kylix/internal/sparse"
	"kylix/internal/topo"
)

// maxRelErr returns max_i |got[i]-ref[i]| / max_i |ref[i]| — the
// relative-to-scale error metric the quantization bounds are stated in
// (per-value relative error is meaningless for int8, whose step is set
// by the block maximum).
func maxRelErr(got, ref []float32) float64 {
	maxAbs, maxErr := 0.0, 0.0
	for i := range ref {
		if a := math.Abs(float64(ref[i])); a > maxAbs {
			maxAbs = a
		}
		if e := math.Abs(float64(got[i] - ref[i])); e > maxErr {
			maxErr = e
		}
	}
	if maxAbs == 0 {
		return maxErr
	}
	return maxErr / maxAbs
}

// TestQuantizedReduceBoundedError checks both lossy modes against the
// brute-force reference across topologies: the quantized allreduce must
// agree with the exact result to within the mode's precision at every
// rank. The bounds are deliberately loose multiples of one
// quantization step — the error compounds over one quantize hop per
// layer per direction — but tight enough to catch a mis-scaled or
// misrouted block immediately.
func TestQuantizedReduceBoundedError(t *testing.T) {
	cases := []struct {
		quant sparse.Quantization
		bound float64
	}{
		{sparse.QuantFP16, 2e-2},
		{sparse.QuantINT8, 1.5e-1},
	}
	rng := rand.New(rand.NewSource(404))
	for _, tc := range cases {
		for _, degrees := range [][]int{{4}, {2, 2}, {4, 2, 2}} {
			ws := randWorkloads(rng, topo.MustNew(degrees).M(), 300, 40, 1, true)
			ref := refReduce(ws, sparse.Sum, 1)
			got := runAllreduce(t, degrees, ws, Options{Quant: tc.quant})
			for r := range got {
				if err := maxRelErr(got[r], ref[r]); err > tc.bound {
					t.Errorf("%v degrees %v rank %d: max relative error %.4g > %.4g",
						tc.quant, degrees, r, err, tc.bound)
				}
			}
		}
	}
}

// TestQuantizedReduceDeterministic runs the same quantized multi-round
// workload twice — through the fused ConfigureReduce and three warm
// Reduce rounds — and requires bit-identical per-rank, per-round value
// digests. Lossy encodings are still pure functions of their inputs,
// and error feedback evolves identically when the round sequence does.
func TestQuantizedReduceDeterministic(t *testing.T) {
	const rounds = 3
	degrees := []int{4, 2}
	for _, quant := range []sparse.Quantization{sparse.QuantFP16, sparse.QuantINT8} {
		run := func() [][]uint64 {
			rng := rand.New(rand.NewSource(505))
			bf := topo.MustNew(degrees)
			ws := randWorkloads(rng, bf.M(), 400, 50, 2, true)
			n := memnet.New(bf.M())
			defer n.Close()
			digests := make([][]uint64, bf.M())
			err := memnet.Run(n, func(ep comm.Endpoint) error {
				m, err := NewMachine(ep, bf, Options{Quant: quant, Width: 2})
				if err != nil {
					return err
				}
				w := ws[ep.Rank()]
				cfg, res, err := m.ConfigureReduce(w.in, w.out, w.vals)
				if err != nil {
					return err
				}
				ds := []uint64{sparse.ValuesDigest(res)}
				for r := 0; r < rounds; r++ {
					res, err := cfg.Reduce(w.vals)
					if err != nil {
						return err
					}
					ds = append(ds, sparse.ValuesDigest(res))
				}
				digests[ep.Rank()] = ds
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			return digests
		}
		first, second := run(), run()
		for r := range first {
			for i := range first[r] {
				if first[r][i] != second[r][i] {
					t.Fatalf("%v rank %d round %d: digest %x != rerun digest %x",
						quant, r, i, first[r][i], second[r][i])
				}
			}
		}
	}
}

// TestErrorFeedbackBeatsNaiveTruncation is the protocol-level
// error-feedback property test. Width-2 features pair a large anchor
// (which pins every int8 block scale near large/127) with a small
// component far below half a quantization step. Naive truncation
// (QuantNoFeedback) rounds the small component to zero on every round
// forever; with feedback the residual accumulates until it ships, so
// the summed-over-rounds result tracks the exact total with drift
// bounded by a few quantization steps, independent of the round count.
func TestErrorFeedbackBeatsNaiveTruncation(t *testing.T) {
	const (
		rounds = 200
		large  = 100.0
		small  = 0.02
	)
	degrees := []int{4}
	keys := sparse.MustNewSet([]int32{3, 17, 29, 41, 57})
	exactSmall := small * float64(topo.MustNew(degrees).M()) // per-round reduced value

	run := func(noFeedback bool) float64 {
		bf := topo.MustNew(degrees)
		n := memnet.New(bf.M())
		defer n.Close()
		var sum0 float64 // accumulated small component of key 0 at rank 0
		err := memnet.Run(n, func(ep comm.Endpoint) error {
			m, err := NewMachine(ep, bf, Options{
				Quant: sparse.QuantINT8, QuantNoFeedback: noFeedback, Width: 2,
			})
			if err != nil {
				return err
			}
			cfg, err := m.Configure(keys, keys)
			if err != nil {
				return err
			}
			vals := make([]float32, len(keys)*2)
			for i := range keys {
				vals[2*i] = large
				vals[2*i+1] = small
			}
			for r := 0; r < rounds; r++ {
				res, err := cfg.Reduce(vals)
				if err != nil {
					return err
				}
				if ep.Rank() == 0 {
					sum0 += float64(res[1])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum0
	}

	naive := run(true)
	ef := run(false)
	exact := exactSmall * rounds
	if math.Abs(naive) > 1e-6 {
		t.Errorf("naive truncation shipped %.4g of the small component; expected it all lost", naive)
	}
	if drift := math.Abs(ef - exact); drift > exact/2 {
		t.Errorf("error feedback accumulated %.4g over %d rounds, want within %.4g of %.4g",
			ef, rounds, exact/2, exact)
	}
}

// TestQuantizedReconfigure checks that a Reconfigure that changes piece
// sizes under a lossy mode rebuilds the quantization state (landing
// buffers, residuals) at the new sizes and keeps producing
// bounded-error results.
func TestQuantizedReconfigure(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	degrees := []int{2, 2}
	bf := topo.MustNew(degrees)
	first := randWorkloads(rng, bf.M(), 250, 30, 1, true)
	second := randWorkloads(rng, bf.M(), 250, 45, 1, true)
	refA := refReduce(first, sparse.Sum, 1)
	refB := refReduce(second, sparse.Sum, 1)

	n := memnet.New(bf.M())
	defer n.Close()
	err := memnet.Run(n, func(ep comm.Endpoint) error {
		m, err := NewMachine(ep, bf, Options{Quant: sparse.QuantFP16})
		if err != nil {
			return err
		}
		r := ep.Rank()
		cfg, err := m.Configure(first[r].in, first[r].out)
		if err != nil {
			return err
		}
		res, err := cfg.Reduce(first[r].vals)
		if err != nil {
			return err
		}
		if e := maxRelErr(res, refA[r]); e > 2e-2 {
			t.Errorf("rank %d pre-reconfigure: max relative error %.4g", r, e)
		}
		if err := cfg.Reconfigure(second[r].in, second[r].out); err != nil {
			return err
		}
		res, err = cfg.Reduce(second[r].vals)
		if err != nil {
			return err
		}
		if e := maxRelErr(res, refB[r]); e > 2e-2 {
			t.Errorf("rank %d post-reconfigure: max relative error %.4g", r, e)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
