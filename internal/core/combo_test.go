package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"kylix/internal/comm"
	"kylix/internal/memnet"
	"kylix/internal/powerlaw"
	"kylix/internal/replica"
	"kylix/internal/sparse"
	"kylix/internal/topo"
)

// TestConfigureReduceWidth3 covers the fused pass with multi-column
// features.
func TestConfigureReduceWidth3(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	bf := topo.MustNew([]int{2, 2})
	ws := randWorkloads(rng, bf.M(), 200, 25, 3, true)
	want := refReduce(ws, sparse.Sum, 3)
	net := memnet.New(bf.M())
	defer net.Close()
	got := make([][]float32, bf.M())
	err := memnet.Run(net, func(ep comm.Endpoint) error {
		m, err := NewMachine(ep, bf, Options{Width: 3})
		if err != nil {
			return err
		}
		_, res, err := m.ConfigureReduce(ws[ep.Rank()].in, ws[ep.Rank()].out, ws[ep.Rank()].vals)
		got[ep.Rank()] = res
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := range ws {
		if !almostEqual(got[r], want[r], 1e-4) {
			t.Fatalf("rank %d width-3 fused mismatch", r)
		}
	}
}

// TestConfigureReduceUnderReplication covers the fused pass through the
// replica layer with a failure present.
func TestConfigureReduceUnderReplication(t *testing.T) {
	const logical, s = 4, 2
	bf := topo.MustNew([]int{2, 2})
	rng := rand.New(rand.NewSource(67))
	ws := randWorkloads(rng, logical, 200, 25, 1, true)
	want := refReduce(ws, sparse.Sum, 1)
	net := memnet.New(logical*s, memnet.WithRecvTimeout(5*time.Second))
	defer net.Close()
	net.Kill(6) // logical 2's secondary
	got := make([][]float32, logical*s)
	err := memnet.Run(net, func(pep comm.Endpoint) error {
		ep, err := replica.Wrap(pep, s)
		if err != nil {
			return err
		}
		m, err := NewMachine(ep, bf, Options{})
		if err != nil {
			return err
		}
		q := ep.Rank()
		_, res, err := m.ConfigureReduce(ws[q].in, ws[q].out, ws[q].vals)
		got[pep.Rank()] = res
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := range got {
		if got[p] == nil {
			continue
		}
		if !almostEqual(got[p], want[p%logical], 1e-4) {
			t.Fatalf("phys %d fused+replicated mismatch", p)
		}
	}
}

// TestTreeAllreduceMinReducer covers the tree baseline with a
// non-default reducer and identity fill for uncovered in-indices.
func TestTreeAllreduceMinReducer(t *testing.T) {
	net := memnet.New(3)
	defer net.Close()
	bf := topo.MustNew([]int{3})
	results := make([][]float32, 3)
	err := memnet.Run(net, func(ep comm.Endpoint) error {
		m, err := NewMachine(ep, bf, Options{Reducer: sparse.Min})
		if err != nil {
			return err
		}
		in := sparse.MustNewSet([]int32{1, 999}) // 999 has no contributor
		out := sparse.MustNewSet([]int32{1})
		res, _, err := m.TreeAllreduce(in, out, []float32{float32(10 - ep.Rank())})
		results[ep.Rank()] = res
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	in := sparse.MustNewSet([]int32{1, 999})
	p1, _ := in.Position(sparse.MakeKey(1))
	p999, _ := in.Position(sparse.MakeKey(999))
	for r, res := range results {
		if res[p1] != 8 { // min(10, 9, 8)
			t.Fatalf("rank %d min = %f", r, res[p1])
		}
		if !math.IsInf(float64(res[p999]), 1) {
			t.Fatalf("rank %d uncovered index = %f, want +Inf identity", r, res[p999])
		}
	}
}

// TestLargeScaleValidation runs the paper's 64-machine Twitter-profile
// configuration at a larger feature space and validates both protocol
// correctness (spot-checked against brute force) and the Figure 5
// monotone-shrink property on the measured layer unions. Skipped with
// -short.
func TestLargeScaleValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("large workload")
	}
	const n = 1 << 17
	bf := topo.MustNew([]int{8, 4, 2})
	gen, err := powerlaw.NewGeneratorForDensity(n, 0.8, 0.21)
	if err != nil {
		t.Fatal(err)
	}
	sets := make([]sparse.Set, bf.M())
	vals := make([][]float32, bf.M())
	for r := range sets {
		rng := rand.New(rand.NewSource(int64(r) * 31))
		sets[r] = gen.NodeSet(rng)
		vals[r] = make([]float32, len(sets[r]))
		for i := range vals[r] {
			vals[r][i] = 1
		}
	}
	net := memnet.New(bf.M(), memnet.WithRecvTimeout(120*time.Second))
	defer net.Close()
	results := make([][]float32, bf.M())
	unionSizes := make([][]int, bf.M())
	err = memnet.Run(net, func(ep comm.Endpoint) error {
		m, err := NewMachine(ep, bf, Options{})
		if err != nil {
			return err
		}
		cfg, err := m.Configure(sets[ep.Rank()], sets[ep.Rank()])
		if err != nil {
			return err
		}
		_, outs := cfg.LayerUnionSizes()
		unionSizes[ep.Rank()] = outs
		res, err := cfg.Reduce(vals[ep.Rank()])
		results[ep.Rank()] = res
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Spot check: values must equal the multiplicity of the key across
	// machines (every contribution was 1.0).
	counts := map[sparse.Key]float32{}
	for _, s := range sets {
		for _, k := range s {
			counts[k]++
		}
	}
	for _, r := range []int{0, 17, 63} {
		for i, k := range sets[r] {
			if results[r][i] != counts[k] {
				t.Fatalf("rank %d key %d: got %f want %f", r, k.Index(), results[r][i], counts[k])
			}
		}
	}
	// Figure 5 property on real state: total union elements shrink layer
	// by layer (layer data = union size x range already divided).
	totals := make([]int, bf.Layers())
	for _, outs := range unionSizes {
		for l, v := range outs {
			totals[l] += v
		}
	}
	// Per-node data at layer l is union size; network-wide volume at the
	// next communication layer is that total. It must shrink.
	for l := 1; l < len(totals); l++ {
		if totals[l] > totals[l-1] {
			t.Fatalf("layer unions grew: %v", totals)
		}
	}
}
