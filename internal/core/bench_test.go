package core

import (
	"math/rand"
	"testing"

	"kylix/internal/comm"
	"kylix/internal/memnet"
	"kylix/internal/topo"
)

// benchProtocol measures one protocol phase over an in-process cluster.
func benchProtocol(b *testing.B, degrees []int, nnz int, fused bool) {
	bf := topo.MustNew(degrees)
	rng := rand.New(rand.NewSource(1))
	ws := randWorkloads(rng, bf.M(), nnz*4, nnz, 1, true)
	net := memnet.New(bf.M())
	defer net.Close()
	b.ResetTimer()
	err := memnet.Run(net, func(ep comm.Endpoint) error {
		m, err := NewMachine(ep, bf, Options{})
		if err != nil {
			return err
		}
		q := ep.Rank()
		if fused {
			for i := 0; i < b.N; i++ {
				if _, _, err := m.ConfigureReduce(ws[q].in, ws[q].out, ws[q].vals); err != nil {
					return err
				}
			}
			return nil
		}
		cfg, err := m.Configure(ws[q].in, ws[q].out)
		if err != nil {
			return err
		}
		for i := 0; i < b.N; i++ {
			if _, err := cfg.Reduce(ws[q].vals); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReduce8x4x2 measures a cached-config reduce round on the
// paper's 64-machine optimal topology.
func BenchmarkReduce8x4x2(b *testing.B) { benchProtocol(b, []int{8, 4, 2}, 512, false) }

// BenchmarkReduceDirect64 is the direct all-to-all counterpart.
func BenchmarkReduceDirect64(b *testing.B) { benchProtocol(b, []int{64}, 512, false) }

// BenchmarkConfigureReduce16 measures the fused pass with fresh sets.
func BenchmarkConfigureReduce16(b *testing.B) { benchProtocol(b, []int{4, 4}, 512, true) }

// BenchmarkConfigureReduce8x4x2 is the fused pass on the 64-machine
// topology: the full-price baseline that BenchmarkReconfigureWarm's
// <=10% acceptance bound is measured against.
func BenchmarkConfigureReduce8x4x2(b *testing.B) { benchProtocol(b, []int{8, 4, 2}, 512, true) }

// BenchmarkConfigure8x4x2 measures the configuration pass alone
// (index-set routing and union building).
func BenchmarkConfigure8x4x2(b *testing.B) {
	bf := topo.MustNew([]int{8, 4, 2})
	rng := rand.New(rand.NewSource(2))
	ws := randWorkloads(rng, bf.M(), 2048, 512, 1, true)
	net := memnet.New(bf.M())
	defer net.Close()
	b.ResetTimer()
	err := memnet.Run(net, func(ep comm.Endpoint) error {
		m, err := NewMachine(ep, bf, Options{})
		if err != nil {
			return err
		}
		for i := 0; i < b.N; i++ {
			if _, err := m.Configure(ws[ep.Rank()].in, ws[ep.Rank()].out); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReconfigureWarm measures an incremental Reconfigure whose
// sets did not change: every layer ships two-byte markers and reuses
// its unions, so the pass should cost a small fraction of a full
// ConfigureReduce (the acceptance bound is <=10% of its ns/op) and
// allocate nothing on the marker path.
func BenchmarkReconfigureWarm(b *testing.B) {
	bf := topo.MustNew([]int{8, 4, 2})
	rng := rand.New(rand.NewSource(2))
	ws := randWorkloads(rng, bf.M(), 2048, 512, 1, true)
	net := memnet.New(bf.M())
	defer net.Close()
	b.ResetTimer()
	err := memnet.Run(net, func(ep comm.Endpoint) error {
		m, err := NewMachine(ep, bf, Options{})
		if err != nil {
			return err
		}
		q := ep.Rank()
		cfg, err := m.Configure(ws[q].in, ws[q].out)
		if err != nil {
			return err
		}
		// Populate the stored pieces so the measured loop is all-warm.
		if err := cfg.Reconfigure(ws[q].in, ws[q].out); err != nil {
			return err
		}
		for i := 0; i < b.N; i++ {
			if err := cfg.Reconfigure(ws[q].in, ws[q].out); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTreeAllreduce64 measures the §II-A1 baseline; its per-op cost
// and the intermediate blow-up are why the paper dismisses trees.
func BenchmarkTreeAllreduce64(b *testing.B) {
	bf := topo.MustNew([]int{64})
	rng := rand.New(rand.NewSource(3))
	ws := randWorkloads(rng, bf.M(), 2048, 512, 1, true)
	net := memnet.New(bf.M())
	defer net.Close()
	b.ResetTimer()
	err := memnet.Run(net, func(ep comm.Endpoint) error {
		m, err := NewMachine(ep, bf, Options{})
		if err != nil {
			return err
		}
		for i := 0; i < b.N; i++ {
			if _, _, err := m.TreeAllreduce(ws[ep.Rank()].in, ws[ep.Rank()].out, ws[ep.Rank()].vals); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
