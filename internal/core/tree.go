package core

import (
	"fmt"

	"kylix/internal/comm"
	"kylix/internal/sparse"
)

// TreeAllreduce is the tree-topology baseline of §II-A1: values flow up
// a binary tree rooted at rank 0, the root holds the full reduction, and
// the result is broadcast back down. It exists to demonstrate the
// paper's point that tree reduction is impractical for sparse data —
// intermediate unions grow toward fully dense at the root — and to serve
// as a correctness oracle. It performs configuration and reduction in
// one shot and returns the values for inSet in key order.
//
// The second return value is the size (in keys) of the largest
// intermediate union this machine held, which the ablation benchmarks
// report to show the root blow-up.
func (m *Machine) TreeAllreduce(inSet, outSet sparse.Set, outVals []float32) ([]float32, int, error) {
	if !inSet.IsSorted() || !outSet.IsSorted() {
		return nil, 0, fmt.Errorf("core: TreeAllreduce requires sorted Sets")
	}
	w := m.opts.Width
	if len(outVals) != len(outSet)*w {
		return nil, 0, fmt.Errorf("core: rank %d: TreeAllreduce got %d values, want %d",
			m.Rank(), len(outVals), len(outSet)*w)
	}
	round := m.nextRound()
	rank, size := m.Rank(), m.ep.Size()
	level := treeLevel(rank)

	// Upward accumulate: merge children's aggregates into mine.
	keys := outSet
	vals := outVals
	maxUnion := len(keys)
	for _, child := range []int{2*rank + 1, 2*rank + 2} {
		if child >= size {
			continue
		}
		p, err := m.ep.Recv(child, m.tag(comm.KindReduce, treeLevel(child), round))
		if err != nil {
			return nil, 0, fmt.Errorf("core: tree recv from child %d: %w", child, err)
		}
		kv, ok := p.(*comm.KeysVals)
		if !ok {
			return nil, 0, fmt.Errorf("core: tree: unexpected payload %T", p)
		}
		union, maps := sparse.UnionWithMaps([]sparse.Set{keys, kv.Keys})
		acc := make([]float32, len(union)*w)
		if id := m.opts.Reducer.Identity(); id != 0 {
			sparse.Fill(acc, id)
		}
		sparse.CombineInto(m.opts.Reducer, acc, maps[0], vals, w)
		sparse.CombineInto(m.opts.Reducer, acc, maps[1], kv.Vals, w)
		keys, vals = union, acc
		if len(keys) > maxUnion {
			maxUnion = len(keys)
		}
	}
	if rank != 0 {
		parent := (rank - 1) / 2
		if err := m.ep.Send(parent, m.tag(comm.KindReduce, level, round), &comm.KeysVals{Keys: keys, Vals: vals}); err != nil {
			return nil, 0, err
		}
		// Downward broadcast: receive the full result from the parent.
		p, err := m.ep.Recv(parent, m.tag(comm.KindGather, level, round))
		if err != nil {
			return nil, 0, fmt.Errorf("core: tree recv broadcast: %w", err)
		}
		kv, ok := p.(*comm.KeysVals)
		if !ok {
			return nil, 0, fmt.Errorf("core: tree: unexpected broadcast payload %T", p)
		}
		keys, vals = kv.Keys, kv.Vals
		if len(keys) > maxUnion {
			maxUnion = len(keys)
		}
	}
	// Forward the full result to the children.
	for _, child := range []int{2*rank + 1, 2*rank + 2} {
		if child >= size {
			continue
		}
		if err := m.ep.Send(child, m.tag(comm.KindGather, treeLevel(child), round), &comm.KeysVals{Keys: keys, Vals: vals}); err != nil {
			return nil, 0, err
		}
	}

	// Extract the requested in-values from the dense result.
	bm, missing := sparse.PartialPositionMap(inSet, keys)
	if m.opts.Strict && missing > 0 {
		return nil, 0, fmt.Errorf("core: rank %d: %d in-indices missing from tree reduction", rank, missing)
	}
	inVals := make([]float32, len(inSet)*w)
	sparse.GatherInto(inVals, bm, vals, w, m.opts.Reducer.Identity())
	return inVals, maxUnion, nil
}

// treeLevel returns the depth of a rank in the binary heap layout
// (root = 0). Tags use it as their layer field so traces aggregate tree
// traffic by level; depths beyond 255 are unreachable for any practical
// cluster (2^255 machines).
func treeLevel(rank int) int {
	level := 0
	for rank > 0 {
		rank = (rank - 1) / 2
		level++
	}
	return level
}
