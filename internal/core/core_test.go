package core

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"kylix/internal/comm"
	"kylix/internal/memnet"
	"kylix/internal/sparse"
	"kylix/internal/topo"
)

// workload is one machine's allreduce input.
type workload struct {
	in   sparse.Set
	out  sparse.Set
	vals []float32
}

// randWorkloads draws m random workloads over a feature space,
// guaranteeing union(in) ⊆ union(out) by making machine r output its own
// in-set features too when withCover is set.
func randWorkloads(rng *rand.Rand, m, space, avg, width int, withCover bool) []workload {
	ws := make([]workload, m)
	for r := range ws {
		nIn := 1 + rng.Intn(2*avg)
		nOut := 1 + rng.Intn(2*avg)
		inIdx := make([]int32, nIn)
		for i := range inIdx {
			inIdx[i] = int32(rng.Intn(space))
		}
		outIdx := make([]int32, 0, nOut+nIn)
		for i := 0; i < nOut; i++ {
			outIdx = append(outIdx, int32(rng.Intn(space)))
		}
		if withCover {
			outIdx = append(outIdx, inIdx...)
		}
		in := sparse.MustNewSet(inIdx)
		out := sparse.MustNewSet(outIdx)
		vals := make([]float32, len(out)*width)
		for i := range vals {
			vals[i] = float32(rng.Intn(100)) / 4
		}
		ws[r] = workload{in: in, out: out, vals: vals}
	}
	return ws
}

// refReduce computes the expected gathered values for each machine by
// brute force.
func refReduce(ws []workload, red sparse.Reducer, width int) [][]float32 {
	type slot struct {
		vals []float32
		seen bool
	}
	total := map[sparse.Key]*slot{}
	for _, w := range ws {
		for i, k := range w.out {
			s := total[k]
			if s == nil {
				s = &slot{vals: make([]float32, width)}
				sparse.Fill(s.vals, red.Identity())
				total[k] = s
			}
			red.Combine(s.vals, w.vals[i*width:(i+1)*width])
			s.seen = true
		}
	}
	out := make([][]float32, len(ws))
	for r, w := range ws {
		res := make([]float32, len(w.in)*width)
		for i, k := range w.in {
			if s := total[k]; s != nil {
				copy(res[i*width:(i+1)*width], s.vals)
			}
		}
		out[r] = res
	}
	return out
}

func almostEqual(a, b []float32, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > tol*(1+math.Abs(float64(b[i]))) {
			return false
		}
	}
	return true
}

// runAllreduce executes configure+reduce on every machine and returns
// the gathered values per rank.
func runAllreduce(t *testing.T, degrees []int, ws []workload, opts Options) [][]float32 {
	t.Helper()
	bf := topo.MustNew(degrees)
	n := memnet.New(bf.M())
	defer n.Close()
	results := make([][]float32, bf.M())
	err := memnet.Run(n, func(ep comm.Endpoint) error {
		m, err := NewMachine(ep, bf, opts)
		if err != nil {
			return err
		}
		cfg, err := m.Configure(ws[ep.Rank()].in, ws[ep.Rank()].out)
		if err != nil {
			return err
		}
		res, err := cfg.Reduce(ws[ep.Rank()].vals)
		if err != nil {
			return err
		}
		results[ep.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestAllreduceMatchesReferenceAcrossTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, degrees := range [][]int{{1}, {2}, {4}, {2, 2}, {4, 2}, {2, 2, 2}, {3, 2}, {8}, {2, 3}} {
		bf := topo.MustNew(degrees)
		ws := randWorkloads(rng, bf.M(), 500, 60, 1, true)
		want := refReduce(ws, sparse.Sum, 1)
		got := runAllreduce(t, degrees, ws, Options{})
		for r := range ws {
			if !almostEqual(got[r], want[r], 1e-4) {
				t.Fatalf("topology %v rank %d mismatch\n got %v\nwant %v", degrees, r, got[r], want[r])
			}
		}
	}
}

func TestAllreduceWidth3(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ws := randWorkloads(rng, 8, 200, 30, 3, true)
	want := refReduce(ws, sparse.Sum, 3)
	got := runAllreduce(t, []int{4, 2}, ws, Options{Width: 3})
	for r := range ws {
		if !almostEqual(got[r], want[r], 1e-4) {
			t.Fatalf("rank %d width-3 mismatch", r)
		}
	}
}

func TestAllreduceMaxReducer(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ws := randWorkloads(rng, 8, 300, 40, 1, true)
	want := refReduce(ws, sparse.Max, 1)
	got := runAllreduce(t, []int{2, 2, 2}, ws, Options{Reducer: sparse.Max})
	for r := range ws {
		if !almostEqual(got[r], want[r], 0) {
			t.Fatalf("rank %d max mismatch", r)
		}
	}
}

func TestAllreduceOrReducer(t *testing.T) {
	// Bit masks reduce exactly under OR regardless of message order.
	rng := rand.New(rand.NewSource(17))
	m := 4
	ws := make([]workload, m)
	for r := range ws {
		out := sparse.MustNewSet([]int32{1, 2, 3, 4, 5})
		vals := make([]float32, len(out))
		for i := range vals {
			vals[i] = math.Float32frombits(1 << uint(rng.Intn(20)))
		}
		ws[r] = workload{in: out.Clone(), out: out, vals: vals}
	}
	want := refReduce(ws, sparse.Or, 1)
	got := runAllreduce(t, []int{2, 2}, ws, Options{Reducer: sparse.Or})
	for r := range ws {
		for i := range got[r] {
			if math.Float32bits(got[r][i]) != math.Float32bits(want[r][i]) {
				t.Fatalf("rank %d OR mismatch at %d", r, i)
			}
		}
	}
}

func TestRepeatedReduceReusesConfig(t *testing.T) {
	// Configure once, reduce many times with fresh values: the PageRank
	// pattern.
	rng := rand.New(rand.NewSource(23))
	bf := topo.MustNew([]int{2, 2})
	ws := randWorkloads(rng, bf.M(), 200, 30, 1, true)
	n := memnet.New(bf.M())
	defer n.Close()
	const iters = 4
	results := make([][][]float32, bf.M())
	err := memnet.Run(n, func(ep comm.Endpoint) error {
		m, err := NewMachine(ep, bf, Options{})
		if err != nil {
			return err
		}
		cfg, err := m.Configure(ws[ep.Rank()].in, ws[ep.Rank()].out)
		if err != nil {
			return err
		}
		for it := 0; it < iters; it++ {
			vals := make([]float32, len(ws[ep.Rank()].vals))
			for i, v := range ws[ep.Rank()].vals {
				vals[i] = v * float32(it+1)
			}
			res, err := cfg.Reduce(vals)
			if err != nil {
				return err
			}
			// Reduce results are arena-owned (valid until the second-
			// following round); copy to retain across iterations.
			results[ep.Rank()] = append(results[ep.Rank()], append([]float32(nil), res...))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	base := refReduce(ws, sparse.Sum, 1)
	for r := range ws {
		for it := 0; it < iters; it++ {
			want := make([]float32, len(base[r]))
			for i, v := range base[r] {
				want[i] = v * float32(it+1)
			}
			if !almostEqual(results[r][it], want, 1e-4) {
				t.Fatalf("rank %d iter %d mismatch", r, it)
			}
		}
	}
}

func TestConfigureReduceMatchesSeparate(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, degrees := range [][]int{{4}, {2, 2}, {4, 2}} {
		bf := topo.MustNew(degrees)
		ws := randWorkloads(rng, bf.M(), 300, 40, 1, true)
		want := refReduce(ws, sparse.Sum, 1)
		n := memnet.New(bf.M())
		results := make([][]float32, bf.M())
		err := memnet.Run(n, func(ep comm.Endpoint) error {
			m, err := NewMachine(ep, bf, Options{})
			if err != nil {
				return err
			}
			_, res, err := m.ConfigureReduce(ws[ep.Rank()].in, ws[ep.Rank()].out, ws[ep.Rank()].vals)
			if err != nil {
				return err
			}
			results[ep.Rank()] = res
			return nil
		})
		n.Close()
		if err != nil {
			t.Fatal(err)
		}
		for r := range ws {
			if !almostEqual(results[r], want[r], 1e-4) {
				t.Fatalf("topology %v rank %d combined mismatch", degrees, r)
			}
		}
	}
}

func TestConfigureReduceConfigReusable(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	bf := topo.MustNew([]int{2, 2})
	ws := randWorkloads(rng, bf.M(), 200, 30, 1, true)
	want := refReduce(ws, sparse.Sum, 1)
	n := memnet.New(bf.M())
	defer n.Close()
	err := memnet.Run(n, func(ep comm.Endpoint) error {
		m, err := NewMachine(ep, bf, Options{})
		if err != nil {
			return err
		}
		cfg, res1, err := m.ConfigureReduce(ws[ep.Rank()].in, ws[ep.Rank()].out, ws[ep.Rank()].vals)
		if err != nil {
			return err
		}
		res2, err := cfg.Reduce(ws[ep.Rank()].vals)
		if err != nil {
			return err
		}
		if !almostEqual(res1, want[ep.Rank()], 1e-4) || !almostEqual(res2, want[ep.Rank()], 1e-4) {
			t.Errorf("rank %d: combined config not reusable", ep.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTreeAllreduceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, m := range []int{1, 2, 5, 8} {
		ws := randWorkloads(rng, m, 300, 40, 1, true)
		want := refReduce(ws, sparse.Sum, 1)
		n := memnet.New(m)
		results := make([][]float32, m)
		blowup := make([]int, m)
		bf := topo.MustNew([]int{m})
		err := memnet.Run(n, func(ep comm.Endpoint) error {
			mach, err := NewMachine(ep, bf, Options{})
			if err != nil {
				return err
			}
			res, maxUnion, err := mach.TreeAllreduce(ws[ep.Rank()].in, ws[ep.Rank()].out, ws[ep.Rank()].vals)
			if err != nil {
				return err
			}
			results[ep.Rank()] = res
			blowup[ep.Rank()] = maxUnion
			return nil
		})
		n.Close()
		if err != nil {
			t.Fatal(err)
		}
		for r := range ws {
			if !almostEqual(results[r], want[r], 1e-4) {
				t.Fatalf("m=%d rank %d tree mismatch", m, r)
			}
		}
		// The root's union is the global union: the §II-A1 blow-up.
		if m > 1 {
			all := make([]sparse.Set, m)
			for r := range ws {
				all[r] = ws[r].out
			}
			globalUnion := len(sparse.TreeUnion(all))
			if blowup[0] != globalUnion {
				t.Fatalf("root union %d, want global %d", blowup[0], globalUnion)
			}
		}
	}
}

func TestStrictModeReportsMissing(t *testing.T) {
	// Machine 0 asks for an index nobody outputs.
	bf := topo.MustNew([]int{2})
	n := memnet.New(2)
	defer n.Close()
	var mu sync.Mutex
	var sawErr bool
	_ = memnet.Run(n, func(ep comm.Endpoint) error {
		m, _ := NewMachine(ep, bf, Options{Strict: true})
		in := sparse.MustNewSet([]int32{1, 999})
		out := sparse.MustNewSet([]int32{1, 2})
		_, err := m.Configure(in, out)
		if err != nil && strings.Contains(err.Error(), "no contributor") {
			mu.Lock()
			sawErr = true
			mu.Unlock()
		}
		return nil
	})
	if !sawErr {
		t.Fatal("strict mode did not flag the missing index")
	}
}

func TestLenientModeZeroFills(t *testing.T) {
	bf := topo.MustNew([]int{2})
	n := memnet.New(2)
	defer n.Close()
	results := make([][]float32, 2)
	missing := make([]int, 2)
	err := memnet.Run(n, func(ep comm.Endpoint) error {
		m, _ := NewMachine(ep, bf, Options{})
		in := sparse.MustNewSet([]int32{1, 999})
		out := sparse.MustNewSet([]int32{1})
		cfg, err := m.Configure(in, out)
		if err != nil {
			return err
		}
		missing[ep.Rank()] = cfg.Missing()
		res, err := cfg.Reduce([]float32{3})
		if err != nil {
			return err
		}
		results[ep.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, res := range results {
		in := sparse.MustNewSet([]int32{1, 999})
		p1, _ := in.Position(sparse.MakeKey(1))
		p999, _ := in.Position(sparse.MakeKey(999))
		if res[p1] != 6 { // both machines contributed 3
			t.Fatalf("rank %d: value for index 1 = %f, want 6", r, res[p1])
		}
		if res[p999] != 0 {
			t.Fatalf("rank %d: missing index gathered %f, want 0", r, res[p999])
		}
	}
	if missing[0]+missing[1] != 1 {
		t.Fatalf("total missing = %d, want 1 (one bottom range owns key 999)", missing[0]+missing[1])
	}
}

func TestNewMachineValidation(t *testing.T) {
	n := memnet.New(2)
	defer n.Close()
	bf := topo.MustNew([]int{4})
	if _, err := NewMachine(n.Endpoint(0), bf, Options{}); err == nil {
		t.Fatal("accepted mismatched topology size")
	}
	bf2 := topo.MustNew([]int{2})
	if _, err := NewMachine(n.Endpoint(0), bf2, Options{Width: -1}); err == nil {
		t.Fatal("accepted negative width")
	}
}

func TestReduceValidatesValueLength(t *testing.T) {
	bf := topo.MustNew([]int{2})
	// Rank 1's collective Reduce will starve once rank 0's call fails
	// validation; a short receive timeout turns that into a fast error.
	n := memnet.New(2, memnet.WithRecvTimeout(200*time.Millisecond))
	defer n.Close()
	errs := make([]error, 2)
	_ = memnet.Run(n, func(ep comm.Endpoint) error {
		m, _ := NewMachine(ep, bf, Options{})
		set := sparse.MustNewSet([]int32{1, 2})
		cfg, err := m.Configure(set, set)
		if err != nil {
			return err
		}
		if ep.Rank() == 0 {
			_, errs[0] = cfg.Reduce([]float32{1}) // wrong length
			// Recover the round with a correct call so rank 1 completes.
			return nil
		}
		_, errs[1] = cfg.Reduce([]float32{1, 2})
		return nil
	})
	if errs[0] == nil {
		t.Fatal("short value slice accepted")
	}
}

func TestConfigureRejectsUnsortedInput(t *testing.T) {
	n := memnet.New(1)
	defer n.Close()
	bf := topo.MustNew([]int{1})
	m, _ := NewMachine(n.Endpoint(0), bf, Options{})
	bad := sparse.Set{sparse.MakeKey(5), sparse.MakeKey(5)} // duplicate
	if _, err := m.Configure(bad, bad); err == nil {
		t.Fatal("accepted duplicate keys")
	}
	if _, _, err := m.ConfigureReduce(bad, bad, []float32{1, 1}); err == nil {
		t.Fatal("ConfigureReduce accepted duplicate keys")
	}
}

func TestConfigSetsAccessors(t *testing.T) {
	n := memnet.New(1)
	defer n.Close()
	bf := topo.MustNew([]int{1})
	m, _ := NewMachine(n.Endpoint(0), bf, Options{})
	in := sparse.MustNewSet([]int32{3, 1})
	out := sparse.MustNewSet([]int32{1, 3, 5})
	cfg, err := m.Configure(in, out)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.InSet().Equal(in) || !cfg.OutSet().Equal(out) {
		t.Fatal("accessors broken")
	}
	if cfg.Missing() != 0 {
		t.Fatal("unexpected missing")
	}
	if m.Rank() != 0 || m.Topology() != bf {
		t.Fatal("machine accessors broken")
	}
}

func TestEmptySetsAllowed(t *testing.T) {
	// A machine with nothing to contribute and nothing to ask for must
	// still participate in the collective without deadlock.
	bf := topo.MustNew([]int{2, 2})
	n := memnet.New(4)
	defer n.Close()
	err := memnet.Run(n, func(ep comm.Endpoint) error {
		m, _ := NewMachine(ep, bf, Options{})
		var in, out sparse.Set
		var vals []float32
		if ep.Rank() != 0 {
			in = sparse.MustNewSet([]int32{7})
			out = sparse.MustNewSet([]int32{7})
			vals = []float32{1}
		}
		cfg, err := m.Configure(in, out)
		if err != nil {
			return err
		}
		res, err := cfg.Reduce(vals)
		if err != nil {
			return err
		}
		if ep.Rank() != 0 && res[0] != 3 {
			t.Errorf("rank %d got %f, want 3", ep.Rank(), res[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
