package core

import (
	"errors"
	"math/rand"
	"testing"

	"kylix/internal/comm"
	"kylix/internal/memnet"
	"kylix/internal/sparse"
	"kylix/internal/topo"
)

// perturb returns a new workload generation where roughly half the
// machines gain a few indices (in and out both, keeping each machine's
// out ⊇ in so global coverage is preserved) and the rest keep their
// sets unchanged — the slowly-evolving-sets regime Reconfigure targets.
func perturb(rng *rand.Rand, ws []workload, space, width int) []workload {
	next := make([]workload, len(ws))
	for r, w := range ws {
		if rng.Intn(2) == 0 {
			next[r] = w
			continue
		}
		extra := make([]int32, 1+rng.Intn(4))
		for i := range extra {
			extra[i] = int32(rng.Intn(space))
		}
		inIdx := append(w.in.Indices(), extra...)
		outIdx := append(w.out.Indices(), extra...)
		in := sparse.MustNewSet(inIdx)
		out := sparse.MustNewSet(outIdx)
		vals := make([]float32, len(out)*width)
		for i := range vals {
			vals[i] = float32(rng.Intn(100)) / 4
		}
		next[r] = workload{in: in, out: out, vals: vals}
	}
	return next
}

// freshDigests configures a brand-new cluster with ws and returns every
// rank's Config digest: the ground truth an incremental Reconfigure
// must converge to bit-for-bit.
func freshDigests(t *testing.T, degrees []int, ws []workload) []uint64 {
	t.Helper()
	bf := topo.MustNew(degrees)
	n := memnet.New(bf.M())
	defer n.Close()
	digests := make([]uint64, bf.M())
	err := memnet.Run(n, func(ep comm.Endpoint) error {
		m, err := NewMachine(ep, bf, Options{})
		if err != nil {
			return err
		}
		cfg, err := m.Configure(ws[ep.Rank()].in, ws[ep.Rank()].out)
		if err != nil {
			return err
		}
		digests[ep.Rank()] = cfg.Digest()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return digests
}

func TestReconfigureMatchesFreshConfigure(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, degrees := range [][]int{{4, 2}, {2, 2, 2}, {8}} {
		bf := topo.MustNew(degrees)
		// Three generations: the starting sets, a small perturbation, and
		// an unrelated redraw (worst case for the incremental pass).
		gens := [][]workload{randWorkloads(rng, bf.M(), 400, 50, 1, true)}
		gens = append(gens, perturb(rng, gens[0], 400, 1))
		gens = append(gens, randWorkloads(rng, bf.M(), 400, 50, 1, true))
		want := make([][]uint64, len(gens))
		for gi, ws := range gens {
			want[gi] = freshDigests(t, degrees, ws)
		}
		wantRes := make([][][]float32, len(gens))
		for gi, ws := range gens {
			wantRes[gi] = refReduce(ws, sparse.Sum, 1)
		}

		n := memnet.New(bf.M())
		err := memnet.Run(n, func(ep comm.Endpoint) error {
			r := ep.Rank()
			m, err := NewMachine(ep, bf, Options{})
			if err != nil {
				return err
			}
			cfg, err := m.Configure(gens[0][r].in, gens[0][r].out)
			if err != nil {
				return err
			}
			// First Reconfigure ships full pieces (no stored state yet) and
			// must leave the routing state exactly where Configure put it.
			for gi, ws := range gens {
				if err := cfg.Reconfigure(ws[r].in, ws[r].out); err != nil {
					return err
				}
				if got := cfg.Digest(); got != want[gi][r] {
					t.Errorf("degrees %v rank %d gen %d: digest %#x, fresh configure %#x",
						degrees, r, gi, got, want[gi][r])
				}
				res, err := cfg.Reduce(ws[r].vals)
				if err != nil {
					return err
				}
				if !almostEqual(res, wantRes[gi][r], 1e-4) {
					t.Errorf("degrees %v rank %d gen %d: reduce mismatch after Reconfigure", degrees, r, gi)
				}
			}
			return nil
		})
		n.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestReconfigureWarmUnchangedKeepsScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	bf := topo.MustNew([]int{4, 2})
	ws := randWorkloads(rng, bf.M(), 300, 40, 1, true)
	wantRes := refReduce(ws, sparse.Sum, 1)
	n := memnet.New(bf.M())
	defer n.Close()
	err := memnet.Run(n, func(ep comm.Endpoint) error {
		r := ep.Rank()
		m, err := NewMachine(ep, bf, Options{})
		if err != nil {
			return err
		}
		cfg, err := m.Configure(ws[r].in, ws[r].out)
		if err != nil {
			return err
		}
		if _, err := cfg.Reduce(ws[r].vals); err != nil {
			return err
		}
		// First pass over unchanged sets: populates the stored pieces, so
		// it rebuilds every layer and must invalidate the arena.
		if err := cfg.Reconfigure(ws[r].in, ws[r].out); err != nil {
			return err
		}
		if cfg.scratch != nil {
			t.Errorf("rank %d: first Reconfigure kept the reduction arena", r)
		}
		if _, err := cfg.Reduce(ws[r].vals); err != nil {
			return err
		}
		before := cfg.Digest()
		// Warm pass: everything unchanged, so the arena must survive and
		// the state must not move.
		if err := cfg.Reconfigure(ws[r].in, ws[r].out); err != nil {
			return err
		}
		if cfg.scratch == nil {
			t.Errorf("rank %d: warm unchanged Reconfigure dropped the reduction arena", r)
		}
		if got := cfg.Digest(); got != before {
			t.Errorf("rank %d: warm unchanged Reconfigure moved the digest", r)
		}
		res, err := cfg.Reduce(ws[r].vals)
		if err != nil {
			return err
		}
		if !almostEqual(res, wantRes[r], 1e-4) {
			t.Errorf("rank %d: reduce mismatch after warm Reconfigure", r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReconfigureErrorPoisons drives a genuine mid-collective failure —
// a Strict coverage violation surfacing in the bottom turnaround, after
// layer state has already been rewritten — and asserts the Config
// refuses all further use, while a pre-exchange validation failure (see
// TestReconfigureRejectsUnsortedSets) leaves it usable.
func TestReconfigureErrorPoisons(t *testing.T) {
	bf := topo.MustNew([]int{1})
	n := memnet.New(1)
	defer n.Close()
	err := memnet.Run(n, func(ep comm.Endpoint) error {
		m, err := NewMachine(ep, bf, Options{Strict: true})
		if err != nil {
			return err
		}
		s := sparse.MustNewSet([]int32{1, 2, 3})
		cfg, err := m.Configure(s, s)
		if err != nil {
			return err
		}
		uncovered := sparse.MustNewSet([]int32{1, 2, 3, 4})
		if err := cfg.Reconfigure(uncovered, s); err == nil {
			t.Fatal("strict Reconfigure accepted an uncovered in-set")
		}
		if !cfg.Poisoned() {
			t.Error("Poisoned() false after a mid-collective Reconfigure failure")
		}
		if err := cfg.Reconfigure(s, s); !errors.Is(err, ErrPoisoned) {
			t.Errorf("Reconfigure on a poisoned Config: got %v, want ErrPoisoned", err)
		}
		_, err = cfg.Reduce(make([]float32, len(s)))
		if !errors.Is(err, ErrPoisoned) {
			t.Errorf("Reduce on a poisoned Config: got %v, want ErrPoisoned", err)
		}
		var pe *PoisonedError
		if !errors.As(err, &pe) || pe.Rank != 0 {
			t.Errorf("poisoned error not structured: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReconfigureRejectsUnsortedSets(t *testing.T) {
	bf := topo.MustNew([]int{1})
	n := memnet.New(1)
	defer n.Close()
	err := memnet.Run(n, func(ep comm.Endpoint) error {
		m, err := NewMachine(ep, bf, Options{})
		if err != nil {
			return err
		}
		s := sparse.MustNewSet([]int32{1, 2, 3})
		cfg, err := m.Configure(s, s)
		if err != nil {
			return err
		}
		bad := sparse.Set{s[2], s[0], s[1]}
		if err := cfg.Reconfigure(bad, s); err == nil {
			t.Error("Reconfigure accepted an unsorted in-set")
		}
		if err := cfg.Reconfigure(s, s); err != nil {
			t.Errorf("single-rank Reconfigure: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
