package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kylix/internal/comm"
	"kylix/internal/memnet"
	"kylix/internal/sparse"
	"kylix/internal/topo"
)

// TestAllreduceProperty drives the full protocol with randomized
// topologies, index sets and values via testing/quick: for any
// configuration, every machine's gathered values must match the
// brute-force reduction.
func TestAllreduceProperty(t *testing.T) {
	type input struct {
		TopoSeed uint8
		SetSeed  uint16
	}
	topoChoices := [][]int{{1}, {2}, {3}, {4}, {2, 2}, {3, 2}, {2, 3}, {4, 2}, {2, 2, 2}, {5}}
	f := func(in input) bool {
		degrees := topoChoices[int(in.TopoSeed)%len(topoChoices)]
		bf := topo.MustNew(degrees)
		rng := rand.New(rand.NewSource(int64(in.SetSeed)))
		ws := randWorkloads(rng, bf.M(), 300, 40, 1, true)
		want := refReduce(ws, sparse.Sum, 1)
		got := make([][]float32, bf.M())
		net := memnet.New(bf.M())
		defer net.Close()
		err := memnet.Run(net, func(ep comm.Endpoint) error {
			m, err := NewMachine(ep, bf, Options{})
			if err != nil {
				return err
			}
			cfg, err := m.Configure(ws[ep.Rank()].in, ws[ep.Rank()].out)
			if err != nil {
				return err
			}
			res, err := cfg.Reduce(ws[ep.Rank()].vals)
			got[ep.Rank()] = res
			return err
		})
		if err != nil {
			return false
		}
		for r := range ws {
			if !almostEqual(got[r], want[r], 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestNestedRangeInvariant checks the structural invariant the protocol
// relies on: after the configuration pass, every layer's unions lie
// entirely within the machine's refined hash range, and the bottom
// out-unions across machines are disjoint and cover exactly the global
// out union.
func TestNestedRangeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, degrees := range [][]int{{4}, {2, 2, 2}, {4, 2}} {
		bf := topo.MustNew(degrees)
		ws := randWorkloads(rng, bf.M(), 400, 50, 1, true)
		cfgs := make([]*Config, bf.M())
		net := memnet.New(bf.M())
		err := memnet.Run(net, func(ep comm.Endpoint) error {
			m, err := NewMachine(ep, bf, Options{})
			if err != nil {
				return err
			}
			cfg, err := m.Configure(ws[ep.Rank()].in, ws[ep.Rank()].out)
			cfgs[ep.Rank()] = cfg
			return err
		})
		net.Close()
		if err != nil {
			t.Fatal(err)
		}
		var bottomUnions []sparse.Set
		for r, cfg := range cfgs {
			for layer := 1; layer <= bf.Layers(); layer++ {
				ls := cfg.layers[layer-1]
				rge := bf.RangeAt(r, layer)
				if err := sparse.CheckInRange(ls.inUnion, rge); err != nil {
					t.Fatalf("degrees %v rank %d layer %d in-union: %v", degrees, r, layer, err)
				}
				if err := sparse.CheckInRange(ls.outUnion, rge); err != nil {
					t.Fatalf("degrees %v rank %d layer %d out-union: %v", degrees, r, layer, err)
				}
			}
			bottomUnions = append(bottomUnions, cfg.layers[len(cfg.layers)-1].outUnion)
		}
		// Disjoint cover of the global union.
		total := 0
		for _, u := range bottomUnions {
			total += len(u)
		}
		var allOut []sparse.Set
		for _, w := range ws {
			allOut = append(allOut, w.out)
		}
		globalUnion := sparse.TreeUnion(allOut)
		if total != len(globalUnion) {
			t.Fatalf("degrees %v: bottom unions total %d keys, global union has %d",
				degrees, total, len(globalUnion))
		}
		merged := sparse.TreeUnion(bottomUnions)
		if !merged.Equal(globalUnion) {
			t.Fatalf("degrees %v: bottom unions do not cover the global union", degrees)
		}
	}
}

// TestLayerUnionsShrinkRelativeToRange checks the Kylix density claim on
// real protocol state: the per-node data (union size / range coverage)
// never grows faster than the range shrinks would force for power-law
// collided data — concretely, union sizes are non-increasing layer to
// layer for the dense test workload.
func TestLayerUnionSizesAccessor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bf := topo.MustNew([]int{4, 2})
	ws := randWorkloads(rng, bf.M(), 500, 200, 1, true)
	net := memnet.New(bf.M())
	defer net.Close()
	err := memnet.Run(net, func(ep comm.Endpoint) error {
		m, err := NewMachine(ep, bf, Options{})
		if err != nil {
			return err
		}
		cfg, err := m.Configure(ws[ep.Rank()].in, ws[ep.Rank()].out)
		if err != nil {
			return err
		}
		ins, outs := cfg.LayerUnionSizes()
		if len(ins) != 2 || len(outs) != 2 {
			t.Errorf("accessor returned %d/%d layers", len(ins), len(outs))
		}
		if cfg.BottomOutSize() != outs[len(outs)-1] {
			t.Error("BottomOutSize inconsistent with LayerUnionSizes")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReducerAlgebraOverProtocol verifies max/min/or reducers satisfy
// idempotence through the network: reducing the same values twice gives
// the same result (no double counting for idempotent ops).
func TestReducerAlgebraOverProtocol(t *testing.T) {
	for _, red := range []sparse.Reducer{sparse.Max, sparse.Min, sparse.Or} {
		rng := rand.New(rand.NewSource(5))
		bf := topo.MustNew([]int{2, 2})
		ws := randWorkloads(rng, bf.M(), 200, 30, 1, true)
		if red.Name() == "or" {
			// Bit masks need valid patterns.
			for r := range ws {
				for i := range ws[r].vals {
					ws[r].vals[i] = math.Float32frombits(1 << uint(rng.Intn(24)))
				}
			}
		}
		net := memnet.New(bf.M())
		first := make([][]float32, bf.M())
		second := make([][]float32, bf.M())
		err := memnet.Run(net, func(ep comm.Endpoint) error {
			m, err := NewMachine(ep, bf, Options{Reducer: red})
			if err != nil {
				return err
			}
			cfg, err := m.Configure(ws[ep.Rank()].in, ws[ep.Rank()].out)
			if err != nil {
				return err
			}
			a, err := cfg.Reduce(ws[ep.Rank()].vals)
			if err != nil {
				return err
			}
			b, err := cfg.Reduce(ws[ep.Rank()].vals)
			if err != nil {
				return err
			}
			first[ep.Rank()], second[ep.Rank()] = a, b
			return nil
		})
		net.Close()
		if err != nil {
			t.Fatal(err)
		}
		for r := range first {
			for i := range first[r] {
				if math.Float32bits(first[r][i]) != math.Float32bits(second[r][i]) {
					t.Fatalf("reducer %s not stable across rounds", red.Name())
				}
			}
		}
	}
}
