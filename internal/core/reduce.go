package core

import (
	"fmt"

	"kylix/internal/comm"
	"kylix/internal/obs"
	"kylix/internal/sparse"
)

// Reduce runs one reduction over an existing configuration (§III-B):
// a downward scatter-reduce followed by an upward allgather through the
// same nested groups. outVals must hold Width values per key of
// OutSet(), in key order; the result holds Width values per key of
// InSet(), in key order. All live machines must call Reduce collectively
// and in the same round order.
//
// The hot path is pipelined and allocation-free: within each layer all
// pieces are sent before any receive is posted, incoming pieces are
// taken in arrival order (so a slow member never blocks combining the
// fast ones), and every buffer comes from the Config's two-generation
// scratch arena. Arrival order does not change results — pieces are
// staged per sender and folded in canonical member order, so the float
// combine sequence is bit-identical to a fully in-order run.
//
// When Options.Tracer is set, the pass records a whole-pass span
// (layer 0) nesting one span per communication layer, each carrying the
// layer's wire bytes in/out and group size; the zero-alloc property is
// preserved (spans are stack values recorded into preallocated rings).
//
// The returned slice is owned by the arena: it stays valid until the
// second-following Reduce/ConfigureReduce on this Config overwrites it.
// Callers that retain results longer must copy them out.
//
//kylix:hotpath
func (c *Config) Reduce(outVals []float32) (res []float32, err error) {
	m := c.mach
	if c.poisoned {
		return nil, &PoisonedError{Rank: m.Rank()}
	}
	w := m.opts.Width
	if len(outVals) != len(c.outSet)*w {
		return nil, fmt.Errorf("core: rank %d: Reduce got %d values, want %d (|out|=%d x width %d)",
			m.Rank(), len(outVals), len(c.outSet)*w, len(c.outSet), w)
	}
	round := m.nextRound()
	s := c.ensureScratch()
	g := c.flip(s)
	// The pool's workers live for this pass only: the first fold or
	// gather big enough to shard spawns them, and the pass joins them on
	// every exit path, so Machines never accumulate goroutines.
	defer m.pool.End()
	tr := m.opts.Tracer
	tr.CountRound()
	tr.CountArenaFlip()
	outer := tr.Begin(comm.KindReduce, 0)
	defer func() { outer.Err = err; tr.End(&outer) }()

	// Downward scatter-reduce.
	cur := outVals
	for i := range c.layers {
		acc, err := c.scatterLayer(i, round, cur, s, g, tr)
		if err != nil {
			return nil, err
		}
		cur = acc
	}

	return c.gatherUp(cur, round, s, g)
}

// scatterLayer runs one layer of the downward scatter-reduce: issue
// every send before posting any receive (all pieces in flight while we
// turn around to combine), then take pieces as they arrive but fold in
// canonical member order — each receipt is staged in its sender's slot
// and a fold cursor advances over the contiguous staged prefix, so
// compute overlaps with stragglers' network time while the float
// combine sequence stays exactly the in-order one.
//
//kylix:hotpath
func (c *Config) scatterLayer(i int, round uint32, cur []float32, s *scratch, g *genBufs, tr *obs.Tracer) (acc []float32, err error) {
	m := c.mach
	w := m.opts.Width
	ls := &c.layers[i]
	layer := i + 1
	sp := tr.Begin(comm.KindReduce, layer)
	sp.Peers = len(ls.group)
	defer func() { sp.Err = err; tr.End(&sp) }()
	tag := m.tag(comm.KindReduce, layer, round)

	quant := m.opts.Quant
	if quant != sparse.QuantOff {
		// Quantized plane: encode each piece (folding in the piece's
		// error-feedback residual) into its reusable QVals header and ship
		// that instead of raw floats.
		qsends := g.qscatter[i]
		for t, member := range ls.group {
			q := &qsends[t]
			seg := cur[int(ls.outOffsets[t])*w : int(ls.outOffsets[t+1])*w]
			var res []float32
			if s.quant.resScatter != nil {
				res = s.quant.resScatter[i][t]
			}
			sparse.Quantize(quant, q.Data, seg, res)
			sp.BytesOut += int64(q.WireSize())
			tr.CountValueBytes(int64(q.RawWireSize()), int64(q.WireSize()))
			if err := m.ep.Send(member, tag, q); err != nil {
				return nil, err
			}
		}
	} else {
		sends := g.scatter[i]
		for t, member := range ls.group {
			f := &sends[t]
			f.Vals = cur[int(ls.outOffsets[t])*w : int(ls.outOffsets[t+1])*w]
			n := int64(f.WireSize())
			sp.BytesOut += n
			tr.CountValueBytes(n, n)
			if err := m.ep.Send(member, tag, f); err != nil {
				return nil, err
			}
		}
	}

	acc = g.acc[i]
	tr.CountCombineShards(m.pool.Fill(acc, m.opts.Reducer.Identity()))

	stage := s.stage[:len(ls.group)]
	for t := range stage {
		stage[t] = nil
	}
	folded := 0
	for received := 0; received < len(ls.group); {
		from, p, err := m.ep.RecvGroup(s.groups[i], tag)
		if err != nil {
			return nil, fmt.Errorf("core: rank %d reduce layer %d recv: %w", m.Rank(), layer, err)
		}
		t := memberIndex(ls.group, from)
		if t < 0 {
			return nil, fmt.Errorf("core: rank %d reduce layer %d: piece from %d outside group", m.Rank(), layer, from)
		}
		if stage[t] != nil {
			continue // duplicate delivery (chaotic transport)
		}
		if quant != sparse.QuantOff {
			q, ok := p.(*comm.QVals)
			if !ok || q.Mode != quant {
				return nil, fmt.Errorf("core: rank %d reduce layer %d: unexpected payload %T (quantization %v)", m.Rank(), layer, p, quant)
			}
			if q.N != len(ls.outMaps[t])*w {
				return nil, fmt.Errorf("core: rank %d reduce layer %d: piece from %d has %d values, want %d",
					m.Rank(), layer, from, q.N, len(ls.outMaps[t])*w)
			}
			// Dequantize into the piece's landing buffer; the staged fold
			// below consumes it before this layer returns, so one landing
			// buffer per (layer, member) serves every generation.
			land := &s.quant.recv[i][t]
			sparse.Dequantize(quant, land.Vals, q.Data)
			sp.BytesIn += int64(q.WireSize())
			stage[t] = land
		} else {
			f, ok := p.(*comm.Floats)
			if !ok {
				return nil, fmt.Errorf("core: rank %d reduce layer %d: unexpected payload %T", m.Rank(), layer, p)
			}
			if len(f.Vals) != len(ls.outMaps[t])*w {
				return nil, fmt.Errorf("core: rank %d reduce layer %d: piece from %d has %d values, want %d",
					m.Rank(), layer, from, len(f.Vals), len(ls.outMaps[t])*w)
			}
			sp.BytesIn += int64(f.WireSize())
			stage[t] = f
		}
		received++
		for folded < len(ls.group) && stage[folded] != nil {
			// Each staged piece is folded by the sharded kernel: its map is
			// injective into the union, so shards touch disjoint rows and
			// the per-row fold order — piece by piece, in member order —
			// is exactly the serial one.
			tr.CountCombineShards(m.pool.CombineInto(m.opts.Reducer, acc, ls.outMaps[folded], stage[folded].Vals, w))
			folded++
		}
	}
	return acc, nil
}

// gatherUp runs the upward allgather from fully reduced bottom values.
// cur must align with the bottom out-union. Buffers come from the given
// arena generation; the returned slice is g.next[0].
//
//kylix:hotpath
func (c *Config) gatherUp(cur []float32, round uint32, s *scratch, g *genBufs) (res []float32, err error) {
	m := c.mach
	tr := m.opts.Tracer
	outer := tr.Begin(comm.KindGather, 0)
	defer func() { outer.Err = err; tr.End(&outer) }()

	// Bottom turnaround: look the in-union's values up in the reduced
	// out-union (v_in^l := v_out^l restricted to the requested indices).
	// Indices nobody contributed gather the reducer's identity (0 for
	// sum, +Inf for min, ...), so downstream folds remain neutral.
	inVals := g.inVals
	tr.CountCombineShards(m.pool.GatherInto(inVals, c.bottomMap, cur, m.opts.Width, m.opts.Reducer.Identity()))

	// Upward allgather, layer l..1.
	for i := len(c.layers) - 1; i >= 0; i-- {
		next, err := c.gatherLayer(i, round, inVals, s, g, tr)
		if err != nil {
			return nil, err
		}
		inVals = next
	}
	return inVals, nil
}

// quantGathered marks a gather slot as received when the segment was
// dequantized straight into place and there is no Floats payload to
// store (the stage slots only need any non-nil value for duplicate
// detection).
var quantGathered = &comm.Floats{}

// gatherLayer runs one layer of the upward allgather: extract and
// return to each member the values for the in-piece it sent down during
// configuration (the g maps), all sends issued before any receive, then
// copy received segments into place in arrival order — segments are
// disjoint, so there is no ordering constraint at all.
//
//kylix:hotpath
func (c *Config) gatherLayer(i int, round uint32, inVals []float32, s *scratch, g *genBufs, tr *obs.Tracer) (next []float32, err error) {
	m := c.mach
	w := m.opts.Width
	ls := &c.layers[i]
	layer := i + 1
	sp := tr.Begin(comm.KindGather, layer)
	sp.Peers = len(ls.group)
	defer func() { sp.Err = err; tr.End(&sp) }()
	tag := m.tag(comm.KindGather, layer, round)

	sends := g.gather[i]
	quant := m.opts.Quant
	if quant != sparse.QuantOff {
		// Quantized plane: gather into the piece's float staging buffer,
		// then encode (with error feedback) into its QVals header.
		qsends := g.qgather[i]
		for t, member := range ls.group {
			f := &sends[t]
			tr.CountCombineShards(m.pool.GatherInto(f.Vals, ls.inMaps[t], inVals, w, 0))
			q := &qsends[t]
			var res []float32
			if s.quant.resGather != nil {
				res = s.quant.resGather[i][t]
			}
			sparse.Quantize(quant, q.Data, f.Vals, res)
			sp.BytesOut += int64(q.WireSize())
			tr.CountValueBytes(int64(q.RawWireSize()), int64(q.WireSize()))
			if err := m.ep.Send(member, tag, q); err != nil {
				return nil, err
			}
		}
	} else {
		for t, member := range ls.group {
			f := &sends[t]
			tr.CountCombineShards(m.pool.GatherInto(f.Vals, ls.inMaps[t], inVals, w, 0))
			n := int64(f.WireSize())
			sp.BytesOut += n
			tr.CountValueBytes(n, n)
			if err := m.ep.Send(member, tag, f); err != nil {
				return nil, err
			}
		}
	}

	next = g.next[i]
	seen := s.stage[:len(ls.group)]
	for t := range seen {
		seen[t] = nil
	}
	for received := 0; received < len(ls.group); {
		from, p, err := m.ep.RecvGroup(s.groups[i], tag)
		if err != nil {
			return nil, fmt.Errorf("core: rank %d gather layer %d recv: %w", m.Rank(), layer, err)
		}
		t := memberIndex(ls.group, from)
		if t < 0 {
			return nil, fmt.Errorf("core: rank %d gather layer %d: piece from %d outside group", m.Rank(), layer, from)
		}
		if seen[t] != nil {
			continue // duplicate delivery
		}
		seg := next[int(ls.inOffsets[t])*w : int(ls.inOffsets[t+1])*w]
		if quant != sparse.QuantOff {
			q, ok := p.(*comm.QVals)
			if !ok || q.Mode != quant {
				return nil, fmt.Errorf("core: rank %d gather layer %d: unexpected payload %T (quantization %v)", m.Rank(), layer, p, quant)
			}
			if q.N != len(seg) {
				return nil, fmt.Errorf("core: rank %d gather layer %d: segment from %d has %d values, want %d",
					m.Rank(), layer, from, q.N, len(seg))
			}
			sp.BytesIn += int64(q.WireSize())
			// Gather segments are disjoint, so dequantize straight into
			// place; mark the slot with the sentinel for duplicate
			// detection.
			sparse.Dequantize(quant, seg, q.Data)
			seen[t] = quantGathered
		} else {
			f, ok := p.(*comm.Floats)
			if !ok {
				return nil, fmt.Errorf("core: rank %d gather layer %d: unexpected payload %T", m.Rank(), layer, p)
			}
			if len(f.Vals) != len(seg) {
				return nil, fmt.Errorf("core: rank %d gather layer %d: segment from %d has %d values, want %d",
					m.Rank(), layer, from, len(f.Vals), len(seg))
			}
			sp.BytesIn += int64(f.WireSize())
			copy(seg, f.Vals)
			seen[t] = f
		}
		received++
	}
	return next, nil
}

// ConfigureReduce fuses configuration and reduction in a single downward
// pass plus the upward allgather, halving message count for workloads
// whose in/out sets change on every call (minibatch SGD, Gibbs sampling;
// §III: "it is more efficient to do configuration and reduction
// concurrently with combined network messages"). It returns the
// resulting Config — reusable by later plain Reduce calls — together
// with the reduced in-values (arena-owned, like Reduce results).
func (m *Machine) ConfigureReduce(inSet, outSet sparse.Set, outVals []float32) (cfgOut *Config, res []float32, err error) {
	if !inSet.IsSorted() || !outSet.IsSorted() {
		return nil, nil, fmt.Errorf("core: ConfigureReduce requires sorted, deduplicated Sets")
	}
	w := m.opts.Width
	if len(outVals) != len(outSet)*w {
		return nil, nil, fmt.Errorf("core: rank %d: ConfigureReduce got %d values, want %d",
			m.Rank(), len(outVals), len(outSet)*w)
	}
	round := m.nextRound()
	cfg := &Config{mach: m, inSet: inSet, outSet: outSet,
		layers: make([]layerState, m.bf.Layers())}
	defer m.pool.End() // join any pass-scoped combine workers
	tr := m.opts.Tracer
	tr.CountRound()
	outer := tr.Begin(comm.KindConfigReduce, 0)
	defer func() { outer.Err = err; tr.End(&outer) }()

	kind := comm.KindConfigReduce
	inCur, outCur := inSet, outSet
	cur := outVals
	for layer := 1; layer <= m.bf.Layers(); layer++ {
		ls := &cfg.layers[layer-1]
		var acc []float32
		sp := tr.Begin(comm.KindConfigReduce, layer)
		err := m.configureLayer(ls, layer, round, inCur, outCur, cur, &acc, &kind, &sp)
		sp.Err = err
		tr.End(&sp)
		if err != nil {
			return nil, nil, fmt.Errorf("core: rank %d config+reduce layer %d: %w", m.Rank(), layer, err)
		}
		inCur, outCur = ls.inUnion, ls.outUnion
		cur = acc
	}
	if err := cfg.finishBottom(inCur, outCur); err != nil {
		return nil, nil, err
	}
	s := cfg.ensureScratch()
	g := cfg.flip(s)
	tr.CountArenaFlip()
	inVals, err := cfg.gatherUp(cur, round, s, g)
	if err != nil {
		return nil, nil, err
	}
	return cfg, inVals, nil
}
