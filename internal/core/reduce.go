package core

import (
	"fmt"

	"kylix/internal/comm"
	"kylix/internal/sparse"
)

// Reduce runs one reduction over an existing configuration (§III-B):
// a downward scatter-reduce followed by an upward allgather through the
// same nested groups. outVals must hold Width values per key of
// OutSet(), in key order; the result holds Width values per key of
// InSet(), in key order. All live machines must call Reduce collectively
// and in the same round order.
func (c *Config) Reduce(outVals []float32) ([]float32, error) {
	m := c.mach
	w := m.opts.Width
	if len(outVals) != len(c.outSet)*w {
		return nil, fmt.Errorf("core: rank %d: Reduce got %d values, want %d (|out|=%d x width %d)",
			m.Rank(), len(outVals), len(c.outSet)*w, len(c.outSet), w)
	}
	round := m.nextRound()

	// Downward scatter-reduce.
	cur := outVals
	for i, ls := range c.layers {
		layer := i + 1
		tag := comm.MakeTag(comm.KindReduce, layer, round)
		for t, member := range ls.group {
			seg := cur[int(ls.outOffsets[t])*w : int(ls.outOffsets[t+1])*w]
			if err := m.ep.Send(member, tag, &comm.Floats{Vals: seg}); err != nil {
				return nil, err
			}
		}
		acc := make([]float32, len(ls.outUnion)*w)
		if id := m.opts.Reducer.Identity(); id != 0 {
			sparse.Fill(acc, id)
		}
		for t, member := range ls.group {
			p, err := m.ep.Recv(member, tag)
			if err != nil {
				return nil, fmt.Errorf("core: rank %d reduce layer %d recv from %d: %w", m.Rank(), layer, member, err)
			}
			f, ok := p.(*comm.Floats)
			if !ok {
				return nil, fmt.Errorf("core: rank %d reduce layer %d: unexpected payload %T", m.Rank(), layer, p)
			}
			if len(f.Vals) != len(ls.outMaps[t])*w {
				return nil, fmt.Errorf("core: rank %d reduce layer %d: piece from %d has %d values, want %d",
					m.Rank(), layer, member, len(f.Vals), len(ls.outMaps[t])*w)
			}
			sparse.CombineInto(m.opts.Reducer, acc, ls.outMaps[t], f.Vals, w)
		}
		cur = acc
	}

	return c.gatherUp(cur, round)
}

// gatherUp runs the upward allgather from fully reduced bottom values.
// cur must align with the bottom out-union.
func (c *Config) gatherUp(cur []float32, round uint32) ([]float32, error) {
	m := c.mach
	w := m.opts.Width

	// Bottom turnaround: look the in-union's values up in the reduced
	// out-union (v_in^l := v_out^l restricted to the requested indices).
	// Indices nobody contributed gather the reducer's identity (0 for
	// sum, +Inf for min, ...), so downstream folds remain neutral.
	inVals := make([]float32, len(c.bottomIn())*w)
	sparse.GatherInto(inVals, c.bottomMap, cur, w, m.opts.Reducer.Identity())

	// Upward allgather, layer l..1.
	for i := len(c.layers) - 1; i >= 0; i-- {
		ls := c.layers[i]
		layer := i + 1
		tag := comm.MakeTag(comm.KindGather, layer, round)
		// Extract and return to each member the values for the in-piece
		// it sent down during configuration (the g maps).
		for t, member := range ls.group {
			out := make([]float32, len(ls.inMaps[t])*w)
			sparse.GatherInto(out, ls.inMaps[t], inVals, w, 0)
			if err := m.ep.Send(member, tag, &comm.Floats{Vals: out}); err != nil {
				return nil, err
			}
		}
		// Receive the values for each piece of my layer-(i-1) in-set and
		// concatenate them by sub-range segment.
		var below sparse.Set
		if i == 0 {
			below = c.inSet
		} else {
			below = c.layers[i-1].inUnion
		}
		next := make([]float32, len(below)*w)
		for t, member := range ls.group {
			p, err := m.ep.Recv(member, tag)
			if err != nil {
				return nil, fmt.Errorf("core: rank %d gather layer %d recv from %d: %w", m.Rank(), layer, member, err)
			}
			f, ok := p.(*comm.Floats)
			if !ok {
				return nil, fmt.Errorf("core: rank %d gather layer %d: unexpected payload %T", m.Rank(), layer, p)
			}
			seg := next[int(ls.inOffsets[t])*w : int(ls.inOffsets[t+1])*w]
			if len(f.Vals) != len(seg) {
				return nil, fmt.Errorf("core: rank %d gather layer %d: segment from %d has %d values, want %d",
					m.Rank(), layer, member, len(f.Vals), len(seg))
			}
			copy(seg, f.Vals)
		}
		inVals = next
	}
	return inVals, nil
}

// ConfigureReduce fuses configuration and reduction in a single downward
// pass plus the upward allgather, halving message count for workloads
// whose in/out sets change on every call (minibatch SGD, Gibbs sampling;
// §III: "it is more efficient to do configuration and reduction
// concurrently with combined network messages"). It returns the
// resulting Config — reusable by later plain Reduce calls — together
// with the reduced in-values.
func (m *Machine) ConfigureReduce(inSet, outSet sparse.Set, outVals []float32) (*Config, []float32, error) {
	if !inSet.IsSorted() || !outSet.IsSorted() {
		return nil, nil, fmt.Errorf("core: ConfigureReduce requires sorted, deduplicated Sets")
	}
	w := m.opts.Width
	if len(outVals) != len(outSet)*w {
		return nil, nil, fmt.Errorf("core: rank %d: ConfigureReduce got %d values, want %d",
			m.Rank(), len(outVals), len(outSet)*w)
	}
	round := m.nextRound()
	cfg := &Config{mach: m, inSet: inSet, outSet: outSet}

	kind := comm.KindConfigReduce
	inCur, outCur := inSet, outSet
	cur := outVals
	for layer := 1; layer <= m.bf.Layers(); layer++ {
		var acc []float32
		ls, err := m.configureLayer(layer, round, inCur, outCur, cur, &acc, &kind)
		if err != nil {
			return nil, nil, fmt.Errorf("core: rank %d config+reduce layer %d: %w", m.Rank(), layer, err)
		}
		cfg.layers = append(cfg.layers, *ls)
		inCur, outCur = ls.inUnion, ls.outUnion
		cur = acc
	}
	if err := cfg.finishBottom(inCur, outCur); err != nil {
		return nil, nil, err
	}
	inVals, err := cfg.gatherUp(cur, round)
	if err != nil {
		return nil, nil, err
	}
	return cfg, inVals, nil
}
