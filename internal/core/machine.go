// Package core implements the Kylix sparse allreduce protocol: the
// downward configuration pass that routes index sets through the nested
// heterogeneous-degree butterfly and builds the f/g position maps
// (paper §III-A), the reduction's downward scatter-reduce and upward
// allgather (§III-B), and the fused configure+reduce for minibatch
// workloads. The direct all-to-all and binary-butterfly baselines of the
// evaluation are the same engine run on degree vectors [m] and [2,...,2].
//
//kylix:deterministic
package core

import (
	"errors"
	"fmt"

	"kylix/internal/comm"
	"kylix/internal/obs"
	"kylix/internal/par"
	"kylix/internal/sparse"
	"kylix/internal/topo"
)

// Options tune a Machine.
type Options struct {
	// Width is the number of float32 values carried per feature
	// (default 1).
	Width int
	// Reducer combines colliding feature values (default sparse.Sum).
	Reducer sparse.Reducer
	// Strict makes Configure fail if some requested in-index has no
	// contributor anywhere in the network; otherwise such features
	// gather the reducer's identity. The paper requires
	// union(in) ⊆ union(out); Strict verifies the part of that condition
	// visible at this node's bottom range, which collectively covers the
	// whole space.
	Strict bool
	// Channel namespaces this Machine's message tags. Several Machines
	// (e.g. a main OR-reduce network and a tiny convergence-counter
	// network) can share one endpoint as long as their channels differ.
	Channel uint8
	// Stream namespaces this Machine's tags by tenant: every tag the
	// machine mints carries the stream id, so concurrent reductions
	// multiplex over one shared endpoint without cross-delivery. The
	// zero value is comm.DefaultStream — classic single-tenant
	// operation. Unlike Channel (which subdivides the seq space),
	// Stream is a dedicated tag field, so streams get the full
	// channel × round space each.
	Stream comm.StreamID
	// RoundBase offsets this Machine's tag sequence. Tags must never be
	// reused on an endpoint: a caller that creates successive Machines
	// over the same endpoint (e.g. kylix.Cluster.Run called repeatedly)
	// must start each new Machine past the rounds its predecessor
	// consumed, or stale replica-race cancellations from earlier rounds
	// would swallow the reused tags.
	RoundBase uint32
	// Tracer records per-pass and per-layer spans for this machine. Nil
	// (the default) disables tracing at the cost of a nil check per
	// span — the warm Reduce stays 0 allocs/op either way.
	Tracer *obs.Tracer
	// Quant selects the wire encoding of reduce/gather value blocks:
	// sparse.QuantOff (the default) ships raw float32s, sparse.QuantFP16
	// and sparse.QuantINT8 quantize every value piece on send and
	// dequantize on arrival, shrinking value traffic 2x / ~4x. Lossy
	// modes keep an error-feedback residual per (layer, piece,
	// direction) that folds each round's quantization error into the
	// next round's encoding, so systematic error does not accumulate
	// across rounds (the SparCML-style compensation). Results remain
	// deterministic: every rank's output is a pure function of the seed
	// and call sequence, bit-identical across reruns and transports.
	// The downward pass of a fused ConfigureReduce still ships raw
	// values (its Combined payloads interleave keys and values and run
	// once per configuration, not per round); the upward allgather is
	// quantized in both paths.
	Quant sparse.Quantization
	// QuantNoFeedback disables the error-feedback residuals, making
	// each round's quantization independent (naive truncation). This
	// exists for ablation and testing only — with feedback off, values
	// smaller than half a quantization step are silently lost every
	// round instead of accumulating until they ship.
	QuantNoFeedback bool
	// CombineWorkers sizes the machine's combine/gather worker pool:
	// large folds and gathers are sharded by disjoint index ranges
	// across this many goroutines (the paper's Fig 7 intra-node
	// threading). 0 selects min(GOMAXPROCS, 4); 1 (or any negative
	// value) runs every kernel on the machine goroutine. Results are
	// bit-identical for every setting — sharding partitions rows, never
	// the per-row fold order.
	CombineWorkers int
}

func (o Options) withDefaults() Options {
	if o.Width == 0 {
		o.Width = 1
	}
	if o.Reducer == nil {
		o.Reducer = sparse.Sum
	}
	return o
}

// Machine is one cluster member's handle on the allreduce protocol. It
// is not safe for concurrent use by multiple goroutines (one goroutine
// per machine is the intended model); distinct Machines are independent.
type Machine struct {
	ep    comm.Endpoint
	bf    *topo.Butterfly
	opts  Options
	round uint32 // tag sequence; advances identically on every machine
	// cfg is the machine-level configuration-pass scratch (receive
	// groups, piece staging, union arenas), built lazily and shared by
	// every Config this machine produces.
	cfg *cfgScratch
	// pool shards the combine/gather kernels across CombineWorkers
	// goroutines; its workers live only within a pass (spawned at the
	// first kernel large enough to shard, joined at pass end), so
	// Machines never leak goroutines despite having no Close.
	pool *par.Pool
}

// NewMachine binds an endpoint to a butterfly topology. The topology's
// machine count must equal the endpoint's cluster size.
func NewMachine(ep comm.Endpoint, bf *topo.Butterfly, opts Options) (*Machine, error) {
	if bf.M() != ep.Size() {
		return nil, fmt.Errorf("core: topology spans %d machines but cluster has %d", bf.M(), ep.Size())
	}
	if opts.Width < 0 {
		return nil, fmt.Errorf("core: negative width %d", opts.Width)
	}
	if !opts.Quant.Valid() {
		return nil, fmt.Errorf("core: unknown quantization mode %d", opts.Quant)
	}
	opts = opts.withDefaults()
	workers := opts.CombineWorkers
	if workers < 0 {
		workers = 1
	}
	return &Machine{ep: ep, bf: bf, opts: opts, pool: par.NewPool(workers)}, nil
}

// CombineWorkers reports the machine's resolved worker-pool size.
func (m *Machine) CombineWorkers() int { return m.pool.Workers() }

// Rank returns the machine's rank.
func (m *Machine) Rank() int { return m.ep.Rank() }

// Topology returns the butterfly this machine runs on.
func (m *Machine) Topology() *topo.Butterfly { return m.bf }

// nextRound consumes one tag sequence number. All machines execute the
// same SPMD call sequence, so their counters stay aligned without any
// coordination traffic.
func (m *Machine) nextRound() uint32 {
	r := m.opts.RoundBase + m.round
	m.round++
	if r >= 1<<24 {
		panic("core: tag sequence space exhausted (16M collective rounds)")
	}
	return uint32(m.opts.Channel)<<24 | r
}

// RoundsUsed reports how many tag rounds this Machine has consumed,
// for callers that chain Machines over one endpoint via RoundBase.
func (m *Machine) RoundsUsed() uint32 { return m.round }

// tag mints a protocol tag in this machine's stream namespace. Every
// tag the protocol passes to the endpoint goes through here, so a
// Machine's traffic is wholly contained in its stream.
//
//kylix:hotpath
func (m *Machine) tag(kind comm.Kind, layer int, seq uint32) comm.Tag {
	return comm.MakeStreamTag(m.opts.Stream, kind, layer, seq)
}

// layerState holds one communication layer's routing state on one
// machine, built by the configuration pass and reused by every
// subsequent reduction.
type layerState struct {
	// group is the ordered layer group; group[t] owns hash sub-range t.
	group []int
	// inOffsets/outOffsets split this machine's layer-(i-1) sets into
	// the pieces sent to each group member (d+1 entries each).
	inOffsets, outOffsets []int32
	// inUnion/outUnion are the merged index sets this machine holds
	// after the layer (in^i_k and out^i_k).
	inUnion, outUnion sparse.Set
	// inMaps[t]/outMaps[t] map positions of the piece received from
	// group[t] into the unions: outMaps are the f maps applied during
	// scatter-reduce, inMaps the g maps applied during allgather.
	inMaps, outMaps [][]int32
	// recvIn[t]/recvOut[t] are private copies of the pieces received from
	// group[t], retained so an incremental Reconfigure can substitute the
	// stored piece when a neighbour sends a same-as-before marker. They
	// are populated by the first Reconfigure over the Config (Configure
	// leaves them nil; see Config.reconfigReady).
	recvIn, recvOut []sparse.Set
}

// Config is the reusable result of a configuration pass: for fixed in
// and out sets (e.g. PageRank's vertex sets) it is built once and then
// drives any number of Reduce calls, which is the paper's
// configure-once/reduce-many usage.
type Config struct {
	mach *Machine
	// inSet/outSet are the machine's top-level sets in key order.
	inSet, outSet sparse.Set
	layers        []layerState
	// bottomMap maps positions of the bottom in-union into the bottom
	// out-union (-1 where no contributor exists network-wide).
	bottomMap []int32
	// missing counts in-indices with no contributor in this machine's
	// bottom range.
	missing int
	// scratch is the reusable two-generation reduction arena, built
	// lazily on the first Reduce so Configure-only uses pay nothing.
	scratch *scratch
	// reconfigReady records that a Reconfigure pass has populated every
	// layer's recvIn/recvOut. The first Reconfigure on a Config ships
	// full pieces unconditionally (Configure does not retain received
	// pieces), stores them, and sets this flag; later passes may then
	// send and accept same-as-before markers.
	reconfigReady bool
	// poisoned is set when a Reconfigure fails mid-collective: some
	// layers hold new routing state and others old, so every later use
	// of the Config must error rather than silently misroute.
	poisoned bool
}

// ErrPoisoned is the sentinel for a Config whose routing state diverged
// mid-Reconfigure. Match with errors.Is(err, ErrPoisoned); the concrete
// error is a *PoisonedError carrying the rank. A poisoned Config can
// never be repaired in place — recovery is a fresh Configure (or, under
// elastic membership, a fresh epoch).
var ErrPoisoned = errors.New("core: Config poisoned by a failed Reconfigure; rebuild with Configure")

// PoisonedError is the structured form of ErrPoisoned: it records which
// rank refused the operation so SPMD callers can tell a local poison
// from a peer's.
type PoisonedError struct {
	// Rank is the machine whose Config is poisoned.
	Rank int
}

// Error implements error.
func (e *PoisonedError) Error() string {
	return fmt.Sprintf("core: rank %d: Config poisoned by a failed Reconfigure; rebuild with Configure", e.Rank)
}

// Is makes errors.Is(err, ErrPoisoned) match a *PoisonedError.
func (e *PoisonedError) Is(target error) bool { return target == ErrPoisoned }

// Poisoned reports whether a failed Reconfigure has made the Config
// unusable. Callers seeing true must rebuild via Configure; the elastic
// membership layer uses it to route recovery into a fresh epoch instead
// of retrying a doomed Reduction.
func (c *Config) Poisoned() bool { return c.poisoned }

// InSet returns the configured in-set in key order. The values returned
// by Reduce align with it.
func (c *Config) InSet() sparse.Set { return c.inSet }

// OutSet returns the configured out-set in key order. The values passed
// to Reduce must align with it.
func (c *Config) OutSet() sparse.Set { return c.outSet }

// Missing reports how many of the bottom-range in-indices had no
// contributor (always 0 when Options.Strict configuration succeeded).
func (c *Config) Missing() int { return c.missing }

// BottomOutSize returns the number of fully reduced features this
// machine holds at the bottom layer. Summed across machines it is the
// "total volume of fully reduced values" plotted as the last layer of
// the paper's Figure 5.
func (c *Config) BottomOutSize() int {
	return len(c.layers[len(c.layers)-1].outUnion)
}

// LayerUnionSizes returns the per-layer (in, out) union sizes on this
// machine, for traffic analysis and the layer-volume experiments.
func (c *Config) LayerUnionSizes() (in, out []int) {
	for _, ls := range c.layers {
		in = append(in, len(ls.inUnion))
		out = append(out, len(ls.outUnion))
	}
	return in, out
}
