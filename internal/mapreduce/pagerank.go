package mapreduce

import (
	"fmt"

	"kylix/internal/graph"
	"kylix/internal/netsim"
)

// PageRank runs the Pegasus-style PageRank on the MapReduce engine: one
// job per iteration whose mappers join the edge splits against the
// current rank vector (side-loaded, charged to input I/O) and emit
// (dst, w * rank[src]) contributions, and whose reducers sum and apply
// the damping update. It returns the final ranks, the accumulated I/O
// stats and the modelled per-iteration seconds.
func PageRank(e *Engine, n int32, parts [][]graph.Edge, iters int, damping float32, model netsim.Model) ([]float32, Stats, float64, error) {
	deg := make([]int32, n)
	for _, part := range parts {
		for _, edge := range part {
			deg[edge.Src]++
		}
	}
	// Edge splits as records: key = src, val = dst encoded via a second
	// pass; MapReduce records are (key, float32), so edges are carried
	// as one record per edge keyed by split position with the mapper
	// closing over the actual edge list — the byte metering still
	// charges one record read per edge.
	ranks := make([]float32, n)
	for i := range ranks {
		ranks[i] = 1 / float32(n)
	}
	// Flatten the partitions so a record's key is a global edge index;
	// splits keep the per-machine boundaries for I/O accounting.
	var flat []graph.Edge
	splits := make([][]Record, len(parts))
	for p, part := range parts {
		splits[p] = make([]Record, len(part))
		for i := range part {
			splits[p][i] = Record{Key: int32(len(flat) + i)}
		}
		flat = append(flat, part...)
	}
	var total Stats
	var perIter float64
	for it := 0; it < iters; it++ {
		sideBytes := int64(n) * recordWire // each mapper loads the rank vector
		curRanks := ranks
		out, stats, err := e.Run(splits, sideBytes,
			func(in Record, emit func(Record)) {
				edge := flat[in.Key]
				if d := deg[edge.Src]; d > 0 {
					emit(Record{Key: edge.Dst, Val: curRanks[edge.Src] / float32(d)})
				}
			},
			func(key int32, vals []float32, emit func(Record)) {
				var sum float32
				for _, v := range vals {
					sum += v
				}
				emit(Record{Key: key, Val: (1-damping)/float32(n) + damping*sum})
			})
		if err != nil {
			return nil, Stats{}, 0, err
		}
		next := make([]float32, n)
		base := (1 - damping) / float32(n)
		for i := range next {
			next[i] = base
		}
		for _, r := range out {
			if r.Key < 0 || r.Key >= n {
				return nil, Stats{}, 0, fmt.Errorf("mapreduce: reducer emitted vertex %d out of range", r.Key)
			}
			next[r.Key] = r.Val
		}
		ranks = next
		total.Add(stats)
		perIter += ModelTime(stats, model, e.Machines)
	}
	if iters > 0 {
		perIter /= float64(iters)
	}
	return ranks, total, perIter, nil
}
