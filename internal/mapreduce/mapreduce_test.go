package mapreduce

import (
	"math"
	"math/rand"
	"testing"

	"kylix/internal/apps/pagerank"
	"kylix/internal/graph"
	"kylix/internal/netsim"
)

func TestWordCountStyleJob(t *testing.T) {
	e := &Engine{Machines: 4}
	splits := [][]Record{
		{{Key: 1, Val: 1}, {Key: 2, Val: 1}},
		{{Key: 1, Val: 1}, {Key: 3, Val: 1}},
	}
	out, stats, err := e.Run(splits, 0,
		func(in Record, emit func(Record)) { emit(in) },
		func(key int32, vals []float32, emit func(Record)) {
			var sum float32
			for _, v := range vals {
				sum += v
			}
			emit(Record{Key: key, Val: sum})
		})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int32]float32{1: 2, 2: 1, 3: 1}
	if len(out) != 3 {
		t.Fatalf("out = %v", out)
	}
	for _, r := range out {
		if want[r.Key] != r.Val {
			t.Fatalf("key %d = %f, want %f", r.Key, r.Val, want[r.Key])
		}
	}
	// Output must be key-sorted.
	for i := 1; i < len(out); i++ {
		if out[i].Key < out[i-1].Key {
			t.Fatal("output not sorted")
		}
	}
	if stats.Records != 4 || stats.InputBytes != 4*recordWire {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.MapOutBytes != 4*recordWire || stats.ShuffleBytes != stats.MapOutBytes {
		t.Fatalf("intermediate accounting wrong: %+v", stats)
	}
	if stats.OutputBytes != 3*recordWire {
		t.Fatalf("output accounting wrong: %+v", stats)
	}
}

func TestEngineValidation(t *testing.T) {
	e := &Engine{}
	if _, _, err := e.Run(nil, 0, nil, nil); err == nil {
		t.Fatal("accepted zero machines")
	}
}

func TestSideBytesChargedPerSplit(t *testing.T) {
	e := &Engine{Machines: 2}
	splits := [][]Record{{}, {}, {}}
	_, stats, err := e.Run(splits, 100,
		func(in Record, emit func(Record)) {},
		func(key int32, vals []float32, emit func(Record)) {})
	if err != nil {
		t.Fatal(err)
	}
	if stats.InputBytes != 300 {
		t.Fatalf("side input charged %d, want 300", stats.InputBytes)
	}
}

func TestPartitionOfStable(t *testing.T) {
	for key := int32(0); key < 1000; key++ {
		p := partitionOf(key, 7)
		if p < 0 || p >= 7 {
			t.Fatalf("partition %d out of range", p)
		}
		if p != partitionOf(key, 7) {
			t.Fatal("partition not deterministic")
		}
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{InputBytes: 1, MapOutBytes: 2, ShuffleBytes: 3, OutputBytes: 4, Records: 5}
	b := a
	a.Add(b)
	if a.InputBytes != 2 || a.Records != 10 {
		t.Fatalf("Add broken: %+v", a)
	}
}

func TestMapReducePageRankMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := int32(200)
	edges := graph.GenPowerLaw(rng, int64(n), 1500, 1, 1)
	parts := graph.PartitionEdges(rng, edges, 4)

	e := &Engine{Machines: 4}
	got, stats, perIter, err := PageRank(e, n, parts, 5, pagerank.Damping, netsim.EC2())
	if err != nil {
		t.Fatal(err)
	}
	want := pagerank.Sequential(n, edges, 5)
	for v := int32(0); v < n; v++ {
		if math.Abs(float64(got[v]-want[v])) > 1e-5+1e-4*math.Abs(float64(want[v])) {
			t.Fatalf("vertex %d: MR %g vs sequential %g", v, got[v], want[v])
		}
	}
	if stats.Records == 0 || perIter <= JobOverheadSec {
		t.Fatalf("stats %+v perIter %f look wrong", stats, perIter)
	}
}

func TestModelTimeDominatedByOverheadForTinyJobs(t *testing.T) {
	sec := ModelTime(Stats{InputBytes: 100, MapOutBytes: 100, ShuffleBytes: 100, OutputBytes: 100}, netsim.EC2(), 64)
	if sec < JobOverheadSec || sec > JobOverheadSec+1 {
		t.Fatalf("tiny job modelled at %f", sec)
	}
}

func TestModelTimeScalesWithVolume(t *testing.T) {
	m := netsim.EC2()
	small := ModelTime(Stats{MapOutBytes: 1 << 20, ShuffleBytes: 1 << 20}, m, 4)
	big := ModelTime(Stats{MapOutBytes: 1 << 30, ShuffleBytes: 1 << 30}, m, 4)
	if big <= small {
		t.Fatal("model not monotone in volume")
	}
	if ModelTime(Stats{}, m, 0) < JobOverheadSec {
		t.Fatal("zero-machine guard broken")
	}
}
