// Package mapreduce is a miniature MapReduce engine standing in for the
// Hadoop/Pegasus comparator of the paper's Figure 8. It executes map,
// sort-based shuffle and reduce faithfully in memory while metering the
// byte volumes a Hadoop deployment would push through serialization,
// disk and network; internal/netsim converts those volumes into modelled
// seconds. The orders-of-magnitude gap the paper reports (~500x) comes
// from exactly the costs metered here: per-iteration materialization of
// all intermediate data, sort-based grouping, and job startup overhead.
package mapreduce

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"kylix/internal/netsim"
)

// Record is one key/value pair. Keys are vertex/feature ids; values are
// float32 like the rest of the system.
type Record struct {
	Key int32
	Val float32
}

// recordWire is the serialized size of a Record (4-byte key + 4-byte
// value), the unit all byte metering uses.
const recordWire = 8

// MapFn consumes one input record and emits zero or more intermediate
// records.
type MapFn func(in Record, emit func(Record))

// ReduceFn consumes one key's gathered values and emits output records.
type ReduceFn func(key int32, vals []float32, emit func(Record))

// Stats meters the I/O volumes of one job.
type Stats struct {
	// InputBytes is the map-side read volume (input splits plus any
	// side-loaded files).
	InputBytes int64
	// MapOutBytes is the serialized intermediate volume: written to
	// local disk at map side, read back for shuffle.
	MapOutBytes int64
	// ShuffleBytes crosses the network from mappers to reducers.
	ShuffleBytes int64
	// OutputBytes is written to the DFS by reducers.
	OutputBytes int64
	// Records counts intermediate records (one sort comparison unit).
	Records int64
}

// Add accumulates another job's stats (for multi-iteration workloads).
func (s *Stats) Add(o Stats) {
	s.InputBytes += o.InputBytes
	s.MapOutBytes += o.MapOutBytes
	s.ShuffleBytes += o.ShuffleBytes
	s.OutputBytes += o.OutputBytes
	s.Records += o.Records
}

// Engine runs jobs over a simulated cluster of Machines workers.
type Engine struct {
	// Machines is the worker count the modelled times divide over.
	Machines int
	// Reducers is the reduce-task count (defaults to Machines).
	Reducers int
}

// Run executes one MapReduce job over the input splits and returns the
// reducer outputs (sorted by key) and the metered stats. SideBytes
// charges map-side auxiliary input (e.g. the rank vector each PageRank
// mapper loads) to the input volume.
func (e *Engine) Run(splits [][]Record, sideBytes int64, mapFn MapFn, reduceFn ReduceFn) ([]Record, Stats, error) {
	if e.Machines < 1 {
		return nil, Stats{}, fmt.Errorf("mapreduce: engine needs >= 1 machine")
	}
	reducers := e.Reducers
	if reducers == 0 {
		reducers = e.Machines
	}
	var stats Stats
	stats.InputBytes = sideBytes * int64(len(splits))

	// Map phase: emit into per-reducer partitions, metering the
	// serialized spill exactly as a map-side sort-and-spill would.
	parts := make([][]Record, reducers)
	var spill []byte
	for _, split := range splits {
		stats.InputBytes += int64(len(split)) * recordWire
		for _, in := range split {
			mapFn(in, func(r Record) {
				p := partitionOf(r.Key, reducers)
				parts[p] = append(parts[p], r)
				spill = appendRecord(spill[:0], r)
				stats.MapOutBytes += int64(len(spill))
				stats.Records++
			})
		}
	}
	stats.ShuffleBytes = stats.MapOutBytes

	// Reduce phase: sort each partition by key (the merge sort Hadoop
	// performs), group, reduce, and meter the DFS write.
	var out []Record
	for _, part := range parts {
		sort.Slice(part, func(a, b int) bool { return part[a].Key < part[b].Key })
		i := 0
		for i < len(part) {
			j := i
			vals := make([]float32, 0, 4)
			for j < len(part) && part[j].Key == part[i].Key {
				vals = append(vals, part[j].Val)
				j++
			}
			reduceFn(part[i].Key, vals, func(r Record) {
				out = append(out, r)
				stats.OutputBytes += recordWire
			})
			i = j
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out, stats, nil
}

// partitionOf hashes a key to a reducer.
func partitionOf(key int32, reducers int) int {
	h := uint32(key) * 0x9E3779B1
	return int(h % uint32(reducers))
}

func appendRecord(buf []byte, r Record) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Key))
	return binary.LittleEndian.AppendUint32(buf, math.Float32bits(r.Val))
}

// JobOverheadSec is the fixed per-job cost of a Hadoop-era deployment:
// JVM spin-up, task scheduling, heartbeat latencies. Pegasus pays it on
// every PageRank iteration (one or more jobs per iteration).
const JobOverheadSec = 20.0

// ModelTime converts a job's metered volumes into modelled seconds on an
// m-machine Hadoop cluster under the netsim cost model:
//
//   - every intermediate byte is serialized twice (write+read) at Java
//     reflection speed,
//   - map output is spilled to disk and read back, reducer output is
//     written with 3x DFS replication,
//   - shuffle crosses the network in reducer-count-squared streams whose
//     packets are tiny (the direct all-to-all failure mode),
//   - plus the fixed job overhead.
func ModelTime(stats Stats, model netsim.Model, machines int) float64 {
	if machines < 1 {
		machines = 1
	}
	m := float64(machines)
	diskBytes := float64(stats.InputBytes) + 2*float64(stats.MapOutBytes) + 3*float64(stats.OutputBytes)
	serBytes := 2*float64(stats.MapOutBytes) + float64(stats.OutputBytes) + float64(stats.InputBytes)
	disk := diskBytes / m / model.DiskBps
	ser := serBytes / m / model.SerializeBps
	var net float64
	if stats.ShuffleBytes > 0 {
		streams := m * m
		pkt := float64(stats.ShuffleBytes) / streams
		net = float64(stats.ShuffleBytes) / m / model.Goodput(pkt)
	}
	return JobOverheadSec + disk + ser + net
}
