// Package stream is the multi-tenant control layer over a shared Kylix
// fabric: admission control (how many streams may exist), slot
// scheduling (how many collective passes may run at once, granted
// fairly round-robin across tenants), and stream-id allocation. It is
// pure coordination — no transport knowledge — so the root package's
// Stream handle and the kylix-node daemon share one implementation.
package stream

import (
	"errors"
	"fmt"
	"sync"

	"kylix/internal/comm"
)

// Errors returned by admission and scheduling.
var (
	// ErrTooManyStreams is returned by Registry.Open at the admission
	// bound.
	ErrTooManyStreams = errors.New("stream: too many open streams")
	// ErrIDsExhausted is returned when the 16-bit stream-id space has
	// been fully consumed. IDs are never reused (a reused id could
	// collide with late frames of its previous owner still in transit),
	// so a very long-lived daemon can run out; restart to reset.
	ErrIDsExhausted = errors.New("stream: stream-id space exhausted")
)

// Registry allocates stream ids and enforces the admission bound.
// IDs are monotonically increasing from 1 and never reused:
// comm.DefaultStream (0) stays reserved for single-tenant traffic, and
// a recycled id could match late in-flight frames (resend-ring
// replays, faultnet delays) of its previous owner.
type Registry struct {
	mu     sync.Mutex //kylix:lock stream-registry
	next   uint32     // next candidate id; uint32 so exhaustion is detectable
	active map[comm.StreamID]struct{}
	max    int
}

// NewRegistry creates a Registry admitting at most max concurrently
// open streams (max <= 0 means unbounded).
func NewRegistry(max int) *Registry {
	return &Registry{next: 1, active: make(map[comm.StreamID]struct{}), max: max}
}

// Open admits a new stream, returning its id.
func (r *Registry) Open() (comm.StreamID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.max > 0 && len(r.active) >= r.max {
		return 0, fmt.Errorf("%w (limit %d)", ErrTooManyStreams, r.max)
	}
	if r.next > 0xFFFF {
		return 0, ErrIDsExhausted
	}
	id := comm.StreamID(r.next)
	r.next++
	r.active[id] = struct{}{}
	return id, nil
}

// Close releases an admitted stream's slot. Closing an unknown or
// already-closed id is a no-op (Close is idempotent end to end).
func (r *Registry) Close(id comm.StreamID) {
	r.mu.Lock()
	delete(r.active, id)
	r.mu.Unlock()
}

// Active reports the number of currently open streams.
func (r *Registry) Active() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.active)
}

// Scheduler grants collective-pass slots fairly across streams. The
// fabric has a global budget of slots (concurrent passes it will carry);
// when demand exceeds it, waiters queue per stream and grants rotate
// round-robin across the streams that have waiters, so one greedy
// tenant submitting many passes cannot starve the others: each rotation
// serves one pass per waiting stream.
type Scheduler struct {
	mu   sync.Mutex //kylix:lock stream-scheduler
	free int
	// order is the round-robin rotation: streams that currently have
	// waiters, in grant order. A granted stream with more waiters moves
	// to the back.
	order   []comm.StreamID
	waiters map[comm.StreamID][]chan error
	closed  map[comm.StreamID]bool
}

// NewScheduler creates a Scheduler with the given global slot budget
// (slots <= 0 selects 1: fully serialized passes).
func NewScheduler(slots int) *Scheduler {
	if slots <= 0 {
		slots = 1
	}
	return &Scheduler{
		free:    slots,
		waiters: make(map[comm.StreamID][]chan error),
		closed:  make(map[comm.StreamID]bool),
	}
}

// grantLocked hands free slots to waiting streams in rotation order.
// Caller holds s.mu.
func (s *Scheduler) grantLocked() {
	for s.free > 0 && len(s.order) > 0 {
		id := s.order[0]
		s.order = s.order[1:]
		q := s.waiters[id]
		ch := q[0]
		if len(q) == 1 {
			delete(s.waiters, id)
		} else {
			s.waiters[id] = q[1:]
			s.order = append(s.order, id) // back of the rotation
		}
		s.free--
		ch <- nil
	}
}

// Acquire blocks until the stream is granted a pass slot. It returns
// comm.ErrStreamClosed if the stream is closed before (or while) the
// slot is granted. Fairness: a stream already waiting is served before
// a newly arriving acquire, and grants rotate across streams.
func (s *Scheduler) Acquire(id comm.StreamID) error {
	s.mu.Lock()
	if s.closed[id] {
		s.mu.Unlock()
		return comm.ErrStreamClosed
	}
	if s.free > 0 && len(s.order) == 0 {
		s.free--
		s.mu.Unlock()
		return nil
	}
	ch := make(chan error, 1)
	if _, waiting := s.waiters[id]; !waiting {
		s.order = append(s.order, id)
	}
	s.waiters[id] = append(s.waiters[id], ch)
	s.mu.Unlock()
	return <-ch
}

// Release returns a pass slot to the budget, granting it to the next
// waiting stream in rotation.
func (s *Scheduler) Release() {
	s.mu.Lock()
	s.free++
	s.grantLocked()
	s.mu.Unlock()
}

// CloseStream fails the stream's queued waiters with
// comm.ErrStreamClosed and refuses its future acquires. Slots the
// stream already holds are unaffected — the holder releases them when
// its in-flight pass drains.
func (s *Scheduler) CloseStream(id comm.StreamID) {
	s.mu.Lock()
	s.closed[id] = true
	for _, ch := range s.waiters[id] {
		ch <- comm.ErrStreamClosed
	}
	delete(s.waiters, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.grantLocked()
	s.mu.Unlock()
}

// Waiting reports the number of queued acquires across all streams
// (tests and metrics).
func (s *Scheduler) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, q := range s.waiters {
		n += len(q)
	}
	return n
}
