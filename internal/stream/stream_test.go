package stream

import (
	"errors"
	"sync"
	"testing"
	"time"

	"kylix/internal/comm"
)

func TestRegistryAdmission(t *testing.T) {
	r := NewRegistry(2)
	a, err := r.Open()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Open()
	if err != nil {
		t.Fatal(err)
	}
	if a == b || a == comm.DefaultStream || b == comm.DefaultStream {
		t.Fatalf("bad ids %d %d", a, b)
	}
	if _, err := r.Open(); !errors.Is(err, ErrTooManyStreams) {
		t.Fatalf("err = %v, want ErrTooManyStreams", err)
	}
	r.Close(a)
	c, err := r.Open()
	if err != nil {
		t.Fatal(err)
	}
	// IDs are never reused: a recycled id could match late in-flight
	// frames of its previous owner.
	if c == a || c == b {
		t.Fatalf("id %d reused", c)
	}
	// Close is idempotent and tolerant of unknown ids.
	r.Close(a)
	r.Close(9999)
	if r.Active() != 2 {
		t.Fatalf("active = %d, want 2", r.Active())
	}
}

func TestRegistryExhaustion(t *testing.T) {
	r := NewRegistry(0) // unbounded admission, bounded id space
	r.next = 0xFFFF
	if id, err := r.Open(); err != nil || id != 0xFFFF {
		t.Fatalf("last id: %d, %v", id, err)
	}
	if _, err := r.Open(); !errors.Is(err, ErrIDsExhausted) {
		t.Fatalf("err = %v, want ErrIDsExhausted", err)
	}
}

func TestSchedulerSerializesOnOneSlot(t *testing.T) {
	s := NewScheduler(1)
	if err := s.Acquire(1); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- s.Acquire(2) }()
	select {
	case <-got:
		t.Fatal("second acquire did not block on a full budget")
	case <-time.After(20 * time.Millisecond):
	}
	s.Release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("release did not grant the waiter")
	}
	s.Release()
}

// TestSchedulerRoundRobinFairness pins the anti-starvation property: a
// greedy stream queueing many passes cannot monopolize the slot — the
// grant rotation serves each waiting stream once per cycle.
func TestSchedulerRoundRobinFairness(t *testing.T) {
	s := NewScheduler(1)
	if err := s.Acquire(99); err != nil { // hold the only slot
		t.Fatal(err)
	}
	var mu sync.Mutex
	var grants []comm.StreamID
	var wg sync.WaitGroup
	enqueue := func(id comm.StreamID) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Acquire(id); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			grants = append(grants, id)
			mu.Unlock()
			s.Release()
		}()
	}
	// Greedy stream 1 queues 4 passes, then streams 2 and 3 queue one
	// each. Enqueue in a known order (wait for the queue depth) so the
	// rotation is deterministic.
	for i := 0; i < 4; i++ {
		enqueue(1)
		waitFor(t, s, i+1)
	}
	enqueue(2)
	waitFor(t, s, 5)
	enqueue(3)
	waitFor(t, s, 6)
	s.Release() // open the floodgates
	wg.Wait()
	// Rotation from queue state {1:[4 waiters], 2:[1], 3:[1]}, order
	// [1,2,3]: grants must interleave, not run 1,1,1,1 first. Streams 2
	// and 3 must both be served within the first four grants.
	pos := map[comm.StreamID]int{}
	for i, id := range grants {
		if _, seen := pos[id]; !seen {
			pos[id] = i
		}
	}
	if pos[2] >= 4 || pos[3] >= 4 {
		t.Fatalf("greedy stream starved the others: grant order %v", grants)
	}
}

func waitFor(t *testing.T, s *Scheduler, depth int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.Waiting() < depth {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached depth %d (at %d)", depth, s.Waiting())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSchedulerCloseStreamFailsWaiters(t *testing.T) {
	s := NewScheduler(1)
	if err := s.Acquire(1); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- s.Acquire(2) }()
	waitFor(t, s, 1)
	s.CloseStream(2)
	select {
	case err := <-got:
		if !errors.Is(err, comm.ErrStreamClosed) {
			t.Fatalf("err = %v, want ErrStreamClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("CloseStream did not fail the waiter")
	}
	if err := s.Acquire(2); !errors.Is(err, comm.ErrStreamClosed) {
		t.Fatalf("acquire after close = %v, want ErrStreamClosed", err)
	}
	// The closed stream's failure must not leak its queue slot: stream 3
	// can still be granted.
	s.Release()
	if err := s.Acquire(3); err != nil {
		t.Fatal(err)
	}
	s.Release()
}

// TestSchedulerConcurrentStress hammers acquire/release/close from many
// goroutines — the -race lane's meat for this package.
func TestSchedulerConcurrentStress(t *testing.T) {
	s := NewScheduler(4)
	var wg sync.WaitGroup
	for id := comm.StreamID(1); id <= 8; id++ {
		wg.Add(1)
		go func(id comm.StreamID) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := s.Acquire(id); err != nil {
					if errors.Is(err, comm.ErrStreamClosed) {
						return
					}
					t.Error(err)
					return
				}
				s.Release()
			}
		}(id)
	}
	// Close one stream mid-hammer.
	time.Sleep(time.Millisecond)
	s.CloseStream(8)
	wg.Wait()
	if s.Waiting() != 0 {
		t.Fatalf("%d waiters leaked", s.Waiting())
	}
}
