package topo

import (
	"strings"
	"testing"

	"kylix/internal/sparse"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("accepted empty degrees")
	}
	if _, err := New([]int{4, 0}); err == nil {
		t.Error("accepted zero degree")
	}
	if _, err := New([]int{1 << 16, 1 << 16}); err == nil {
		t.Error("accepted overflowing machine count")
	}
	b, err := New([]int{8, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if b.M() != 64 || b.Layers() != 3 {
		t.Fatalf("M=%d Layers=%d", b.M(), b.Layers())
	}
	if b.Degree(1) != 8 || b.Degree(3) != 2 {
		t.Fatal("Degree() wrong")
	}
	if b.String() != "8x4x2" {
		t.Fatalf("String() = %q", b.String())
	}
}

func TestDegreesIsCopy(t *testing.T) {
	b := MustNew([]int{4, 2})
	d := b.Degrees()
	d[0] = 99
	if b.Degree(1) != 4 {
		t.Fatal("Degrees() aliases internal state")
	}
}

func TestDirectAndBinary(t *testing.T) {
	if d := Direct(16); len(d) != 1 || d[0] != 16 {
		t.Fatalf("Direct(16) = %v", d)
	}
	bin, err := Binary(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin) != 4 {
		t.Fatalf("Binary(16) = %v", bin)
	}
	if _, err := Binary(12); err == nil {
		t.Error("Binary accepted non-power-of-two")
	}
	one, err := Binary(1)
	if err != nil || len(one) != 1 || one[0] != 1 {
		t.Errorf("Binary(1) = %v, %v", one, err)
	}
}

func TestDigitsReconstructRank(t *testing.T) {
	b := MustNew([]int{3, 4, 2})
	for rank := 0; rank < b.M(); rank++ {
		r := 0
		for layer := 1; layer <= b.Layers(); layer++ {
			r = r*b.Degree(layer) + b.Digit(rank, layer)
		}
		if r != rank {
			t.Fatalf("digits of %d reconstruct %d", rank, r)
		}
	}
}

func TestGroupStructure(t *testing.T) {
	b := MustNew([]int{4, 3, 2})
	for rank := 0; rank < b.M(); rank++ {
		for layer := 1; layer <= b.Layers(); layer++ {
			g := b.Group(rank, layer)
			if len(g) != b.Degree(layer) {
				t.Fatalf("group size %d", len(g))
			}
			// t-th member has digit t and rank is a member.
			found := false
			for tt, member := range g {
				if b.Digit(member, layer) != tt {
					t.Fatalf("member %d of group(%d,%d) has digit %d, want %d",
						member, rank, layer, b.Digit(member, layer), tt)
				}
				if member == rank {
					found = true
				}
				// All other digits match rank's.
				for other := 1; other <= b.Layers(); other++ {
					if other != layer && b.Digit(member, other) != b.Digit(rank, other) {
						t.Fatalf("group member %d differs from %d at layer %d", member, rank, other)
					}
				}
			}
			if !found {
				t.Fatalf("rank %d not in its own group", rank)
			}
		}
	}
}

func TestGroupSymmetry(t *testing.T) {
	b := MustNew([]int{2, 3, 4})
	for rank := 0; rank < b.M(); rank++ {
		for layer := 1; layer <= b.Layers(); layer++ {
			for _, member := range b.Group(rank, layer) {
				mg := b.Group(member, layer)
				ok := false
				for _, x := range mg {
					if x == rank {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("group relation not symmetric at (%d,%d)", rank, layer)
				}
			}
		}
	}
}

func TestGroupsPartitionLayer(t *testing.T) {
	// At each layer the groups partition the machine set.
	b := MustNew([]int{4, 4})
	for layer := 1; layer <= 2; layer++ {
		seen := make(map[int]int)
		for rank := 0; rank < b.M(); rank++ {
			for _, member := range b.Group(rank, layer) {
				_ = member
			}
			// Count rank once via its canonical group leader.
			leader := b.Group(rank, layer)[0]
			seen[leader]++
		}
		for leader, count := range seen {
			if count != b.Degree(layer) {
				t.Fatalf("layer %d group of %d has %d members counted", layer, leader, count)
			}
		}
		if len(seen) != b.M()/b.Degree(layer) {
			t.Fatalf("layer %d has %d groups", layer, len(seen))
		}
	}
}

func TestRangesNestAndShare(t *testing.T) {
	b := MustNew([]int{3, 2, 2})
	for rank := 0; rank < b.M(); rank++ {
		prev := sparse.FullRange()
		for layer := 1; layer <= b.Layers(); layer++ {
			r := b.RangeAt(rank, layer)
			if r.Lo < prev.Lo || r.Hi > prev.Hi {
				t.Fatalf("range at layer %d not nested in layer %d", layer, layer-1)
			}
			// All group members share the parent range.
			for _, member := range b.Group(rank, layer) {
				if b.RangeAt(member, layer-1) != prev {
					t.Fatalf("group member %d does not share layer-%d range with %d", member, layer-1, rank)
				}
			}
			// Member t owns sub-range t of the parent.
			g := b.Group(rank, layer)
			for tt, member := range g {
				if b.RangeAt(member, layer) != prev.Sub(b.Degree(layer), tt) {
					t.Fatalf("member %d does not own sub-range %d", member, tt)
				}
			}
			prev = r
		}
	}
}

func TestBottomRangesPartitionSpace(t *testing.T) {
	b := MustNew([]int{2, 2, 2})
	full := sparse.FullRange()
	covered := full.Lo
	// Bottom ranges, ordered by rank in digit order, tile the space.
	type rr struct {
		lo, hi sparse.Key
	}
	ranges := make([]rr, b.M())
	for rank := 0; rank < b.M(); rank++ {
		r := b.RangeAt(rank, b.Layers())
		ranges[rank] = rr{r.Lo, r.Hi}
	}
	// Sort by lo and verify tiling.
	for i := 0; i < len(ranges); i++ {
		for j := i + 1; j < len(ranges); j++ {
			if ranges[j].lo < ranges[i].lo {
				ranges[i], ranges[j] = ranges[j], ranges[i]
			}
		}
	}
	for _, r := range ranges {
		if r.lo != covered {
			t.Fatalf("gap or overlap at %x", uint64(covered))
		}
		covered = r.hi
	}
	if covered != full.Hi {
		t.Fatal("bottom ranges do not cover the space")
	}
}

func TestDirectTopologyGroupIsEveryone(t *testing.T) {
	b := MustNew(Direct(8))
	g := b.Group(3, 1)
	if len(g) != 8 {
		t.Fatalf("direct group size %d", len(g))
	}
	for i, member := range g {
		if member != i {
			t.Fatalf("direct group = %v", g)
		}
	}
}

func TestSingleMachineTopology(t *testing.T) {
	b := MustNew([]int{1})
	if b.M() != 1 || b.Digit(0, 1) != 0 || len(b.Group(0, 1)) != 1 {
		t.Fatal("degenerate single-machine topology broken")
	}
	if b.RangeAt(0, 1) != sparse.FullRange() {
		t.Fatal("single machine should own the full range")
	}
}

func TestDescribe(t *testing.T) {
	b := MustNew([]int{3, 2})
	s := b.Describe()
	for _, want := range []string{"3x2 over 6 machines", "layer 1: degree 3", "layer 2: degree 2", "group [0 2 4]", "1/6 of the key space"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Describe missing %q:\n%s", want, s)
		}
	}
	// Wide networks summarize without group listings.
	wide := MustNew([]int{128})
	if s := wide.Describe(); strings.Contains(s, "group [") {
		t.Fatal("wide network should not list groups")
	}
}
