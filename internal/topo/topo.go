// Package topo provides the mixed-radix topology arithmetic of the
// nested heterogeneous-degree butterfly. Machines 0..m-1 are laid out on
// a hyper-rectangle of shape d_1 x d_2 x ... x d_l (m = prod d_i); at
// communication layer i a machine exchanges with the d_i machines that
// share all its coordinates except the i-th (its layer group). Layer
// groups at layer i all share the same refined hash range, which is what
// makes the network *nested*: the upward allgather retraces the downward
// scatter-reduce through the same groups.
//
//kylix:deterministic
package topo

import (
	"fmt"

	"kylix/internal/sparse"
)

// Butterfly is an immutable nested butterfly over m = prod(Degrees)
// machines. Layer numbering is 1-based to match the paper; node layers
// run 0 (top) to Layers() (bottom).
type Butterfly struct {
	degrees []int
	strides []int // strides[i] = prod of degrees[i+1:], so digit i varies in blocks of strides[i]
	m       int
}

// New validates the degree vector and builds the topology. Every degree
// must be >= 1; a degree-1 layer is legal but pointless (it is produced
// only by the m=1 design).
func New(degrees []int) (*Butterfly, error) {
	if len(degrees) == 0 {
		return nil, fmt.Errorf("topo: empty degree vector")
	}
	m := 1
	for i, d := range degrees {
		if d < 1 {
			return nil, fmt.Errorf("topo: degree %d at layer %d must be >= 1", d, i+1)
		}
		if m > (1<<30)/d {
			return nil, fmt.Errorf("topo: machine count overflow")
		}
		m *= d
	}
	b := &Butterfly{degrees: append([]int(nil), degrees...), m: m}
	b.strides = make([]int, len(degrees))
	s := 1
	for i := len(degrees) - 1; i >= 0; i-- {
		b.strides[i] = s
		s *= degrees[i]
	}
	return b, nil
}

// MustNew is New for known-good degree vectors; it panics on error.
func MustNew(degrees []int) *Butterfly {
	b, err := New(degrees)
	if err != nil {
		panic(err)
	}
	return b
}

// Direct returns the degree vector of the 1-layer direct all-to-all
// network over m machines (the PowerGraph-style pattern of §II-A2).
func Direct(m int) []int { return []int{m} }

// Binary returns the degree vector of the log2(m)-layer binary butterfly.
// m must be a power of two.
func Binary(m int) ([]int, error) {
	if m < 1 || m&(m-1) != 0 {
		return nil, fmt.Errorf("topo: binary butterfly needs a power-of-two machine count, got %d", m)
	}
	if m == 1 {
		return []int{1}, nil
	}
	var degrees []int
	for v := m; v > 1; v >>= 1 {
		degrees = append(degrees, 2)
	}
	return degrees, nil
}

// M returns the machine count.
func (b *Butterfly) M() int { return b.m }

// Layers returns the number of communication layers l.
func (b *Butterfly) Layers() int { return len(b.degrees) }

// Degree returns d_i for the 1-based communication layer i.
func (b *Butterfly) Degree(layer int) int { return b.degrees[layer-1] }

// Degrees returns a copy of the degree vector.
func (b *Butterfly) Degrees() []int { return append([]int(nil), b.degrees...) }

// Digit returns the layer-i coordinate of a machine (0-based, in
// [0, d_i)). It determines which hash sub-range the machine owns after
// layer i's scatter.
func (b *Butterfly) Digit(rank, layer int) int {
	return rank / b.strides[layer-1] % b.degrees[layer-1]
}

// Group returns the ordered layer-i group of a machine: the d_i machines
// (including rank itself) sharing every coordinate except the i-th. The
// t-th entry is the member whose layer-i digit is t, i.e. the member
// that owns sub-range t after this layer.
func (b *Butterfly) Group(rank, layer int) []int {
	d := b.degrees[layer-1]
	s := b.strides[layer-1]
	base := rank - b.Digit(rank, layer)*s
	out := make([]int, d)
	for t := 0; t < d; t++ {
		out[t] = base + t*s
	}
	return out
}

// RangeAt returns the hash range a machine owns after communication
// layers 1..layer have run (layer 0 = the full space). Ranges nest:
// RangeAt(r, i) is sub-range Digit(r, i) of RangeAt(r, i-1), and all
// members of a layer-i group share RangeAt(., i-1).
func (b *Butterfly) RangeAt(rank, layer int) sparse.Range {
	r := sparse.FullRange()
	for i := 1; i <= layer; i++ {
		r = r.Sub(b.degrees[i-1], b.Digit(rank, i))
	}
	return r
}

// String implements fmt.Stringer, e.g. "8x4x2".
func (b *Butterfly) String() string {
	s := ""
	for i, d := range b.degrees {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprintf("%d", d)
	}
	return s
}

// Describe renders the nested structure for small networks — the view
// the paper's Figure 3 illustrates: every communication layer with its
// groups and each machine's refined hash-range ownership (as the
// fraction of the space it covers). Intended for documentation and the
// design CLI; networks wider than 64 machines are summarized per layer
// without group listings.
func (b *Butterfly) Describe() string {
	var sb []byte
	add := func(format string, args ...interface{}) {
		sb = append(sb, fmt.Sprintf(format, args...)...)
	}
	add("nested butterfly %s over %d machines, %d layers\n", b, b.m, b.Layers())
	for layer := 1; layer <= b.Layers(); layer++ {
		d := b.Degree(layer)
		add("layer %d: degree %d, %d groups, each machine owns 1/%d of the key space after it\n",
			layer, d, b.m/d, groupProduct(b, layer))
		if b.m > 64 {
			continue
		}
		seen := make(map[int]bool, b.m)
		for rank := 0; rank < b.m; rank++ {
			leader := b.Group(rank, layer)[0]
			if seen[leader] {
				continue
			}
			seen[leader] = true
			add("  group %v\n", b.Group(rank, layer))
		}
	}
	return string(sb)
}

// groupProduct is the number of partitions refined through layer l.
func groupProduct(b *Butterfly, layer int) int {
	p := 1
	for i := 1; i <= layer; i++ {
		p *= b.Degree(i)
	}
	return p
}
