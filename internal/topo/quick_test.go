package topo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kylix/internal/sparse"
)

// TestTopologyPropertiesQuick drives the mixed-radix invariants with
// randomized degree vectors: digits reconstruct ranks, groups partition
// each layer, group members share parent ranges, and bottom ranges tile
// the key space.
func TestTopologyPropertiesQuick(t *testing.T) {
	type input struct {
		Seed uint16
	}
	f := func(in input) bool {
		rng := rand.New(rand.NewSource(int64(in.Seed)))
		layers := 1 + rng.Intn(4)
		degrees := make([]int, layers)
		for i := range degrees {
			degrees[i] = 1 + rng.Intn(5)
		}
		b, err := New(degrees)
		if err != nil {
			return false
		}
		for rank := 0; rank < b.M(); rank++ {
			// Digits reconstruct the rank.
			r := 0
			for layer := 1; layer <= b.Layers(); layer++ {
				r = r*b.Degree(layer) + b.Digit(rank, layer)
			}
			if r != rank {
				return false
			}
			// Group membership is reflexive and position-consistent.
			for layer := 1; layer <= b.Layers(); layer++ {
				g := b.Group(rank, layer)
				if g[b.Digit(rank, layer)] != rank {
					return false
				}
				parent := b.RangeAt(rank, layer-1)
				for tt, member := range g {
					if b.RangeAt(member, layer-1) != parent {
						return false
					}
					if b.RangeAt(member, layer) != parent.Sub(b.Degree(layer), tt) {
						return false
					}
				}
			}
		}
		// Bottom ranges tile the space: sum of spans equals the full
		// span and no two overlap (checked via sorted lows).
		lows := make([]sparse.Key, 0, b.M())
		var span uint64
		for rank := 0; rank < b.M(); rank++ {
			rg := b.RangeAt(rank, b.Layers())
			lows = append(lows, rg.Lo)
			span += uint64(rg.Hi - rg.Lo)
		}
		full := sparse.FullRange()
		if span != uint64(full.Hi-full.Lo) {
			return false
		}
		seen := map[sparse.Key]bool{}
		for _, lo := range lows {
			if seen[lo] {
				return false
			}
			seen[lo] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
