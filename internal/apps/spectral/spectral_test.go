package spectral

import (
	"math"
	"math/rand"
	"testing"

	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/graph"
	"kylix/internal/memnet"
	"kylix/internal/topo"
)

func runDistributed(t *testing.T, m int, n int32, edges []graph.Edge, weights []float32, maxIters int, tol float64) []*Result {
	t.Helper()
	bf := topo.MustNew([]int{m})
	rng := rand.New(rand.NewSource(2))
	// Partition edges, carrying weights along.
	type we struct {
		e graph.Edge
		w float32
	}
	parts := make([][]we, m)
	for i, e := range edges {
		p := rng.Intn(m)
		w := float32(1)
		if weights != nil {
			w = weights[i]
		}
		parts[p] = append(parts[p], we{e, w})
	}
	shards := make([]*graph.Shard, m)
	for p := range parts {
		es := make([]graph.Edge, len(parts[p]))
		ws := make([]float32, len(parts[p]))
		for i, x := range parts[p] {
			es[i], ws[i] = x.e, x.w
		}
		s, err := graph.BuildShard(es, ws)
		if err != nil {
			t.Fatal(err)
		}
		shards[p] = s
	}
	net := memnet.New(m)
	defer net.Close()
	results := make([]*Result, m)
	err := memnet.Run(net, func(ep comm.Endpoint) error {
		mach, err := core.NewMachine(ep, bf, core.Options{})
		if err != nil {
			return err
		}
		scalar, err := core.NewMachine(ep, bf, core.Options{Channel: 1})
		if err != nil {
			return err
		}
		res, err := RunNode(mach, scalar, shards[ep.Rank()], maxIters, tol)
		if err != nil {
			return err
		}
		results[ep.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestPowerIterationKnownEigenvalue(t *testing.T) {
	// A 3-cycle plus self-loops (A = P + I) is aperiodic with a real
	// spectral gap: the Perron eigenvalue is 2 (eigenvector all-ones),
	// the other eigenvalues 1+w for complex cube roots w have magnitude
	// 1, so power iteration converges cleanly.
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
		{Src: 0, Dst: 0}, {Src: 1, Dst: 1}, {Src: 2, Dst: 2},
	}
	results := runDistributed(t, 2, 3, edges, nil, 200, 1e-9)
	for r, res := range results {
		if math.Abs(res.Eigenvalue-2) > 1e-3 {
			t.Fatalf("machine %d eigenvalue %f, want 2", r, res.Eigenvalue)
		}
	}
}

func TestPowerIterationMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := int32(80)
	edges := graph.GenPowerLaw(rng, int64(n), 600, 0.8, 0.8)
	weights := make([]float32, len(edges))
	for i := range weights {
		weights[i] = rng.Float32()
	}
	wantLambda, wantVec, _ := Sequential(n, edges, weights, 150, 1e-10)
	results := runDistributed(t, 4, n, edges, weights, 150, 1e-10)
	for r, res := range results {
		if math.Abs(res.Eigenvalue-wantLambda) > 1e-2*(1+math.Abs(wantLambda)) {
			t.Fatalf("machine %d eigenvalue %f, sequential %f", r, res.Eigenvalue, wantLambda)
		}
		// Eigenvector entries agree (up to float noise) at tracked
		// vertices.
		for i, k := range res.Vertices {
			diff := math.Abs(float64(res.Vector[i] - wantVec[k.Index()]))
			if diff > 5e-2 {
				t.Fatalf("machine %d vertex %d component %f vs %f", r, k.Index(), res.Vector[i], wantVec[k.Index()])
			}
		}
	}
}

func TestMachinesAgreeOnEigenvalue(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	edges := graph.GenPowerLaw(rng, 60, 300, 1, 1)
	results := runDistributed(t, 3, 60, edges, nil, 80, 1e-8)
	for r := 1; r < len(results); r++ {
		if results[r].Eigenvalue != results[0].Eigenvalue {
			t.Fatalf("machines disagree: %f vs %f", results[r].Eigenvalue, results[0].Eigenvalue)
		}
		if results[r].Iters != results[0].Iters {
			t.Fatal("machines disagree on iteration count")
		}
	}
}

func TestRunNodeValidates(t *testing.T) {
	net := memnet.New(1)
	defer net.Close()
	bf := topo.MustNew([]int{1})
	m, _ := core.NewMachine(net.Endpoint(0), bf, core.Options{})
	scalar, _ := core.NewMachine(net.Endpoint(0), bf, core.Options{Channel: 1})
	shard, _ := graph.BuildShard([]graph.Edge{{Src: 0, Dst: 1}}, nil)
	if _, err := RunNode(m, scalar, shard, 0, 1e-6); err == nil {
		t.Fatal("accepted maxIters 0")
	}
}

func TestInitValueDeterministicPositive(t *testing.T) {
	for v := int32(0); v < 1000; v++ {
		x := initValue(v)
		if x <= 0 || x > 1 {
			t.Fatalf("initValue(%d) = %f out of (0,1]", v, x)
		}
		if x != initValue(v) {
			t.Fatal("not deterministic")
		}
	}
}

func TestSequentialStarGraph(t *testing.T) {
	// Undirected star with k leaves plus self-loops everywhere:
	// A = A_star + I has eigenvalues 1 ± sqrt(k) and 1, so the dominant
	// one is 1 + sqrt(k) = 4 for k = 9, with a genuine gap (the plain
	// star is bipartite and would make power iteration oscillate).
	k := 9
	edges := []graph.Edge{{Src: 0, Dst: 0}}
	for leaf := int32(1); leaf <= int32(k); leaf++ {
		edges = append(edges,
			graph.Edge{Src: 0, Dst: leaf},
			graph.Edge{Src: leaf, Dst: 0},
			graph.Edge{Src: leaf, Dst: leaf})
	}
	lambda, _, _ := Sequential(int32(k+1), edges, nil, 500, 1e-12)
	if math.Abs(lambda-4) > 1e-3 {
		t.Fatalf("star eigenvalue %f, want 4", lambda)
	}
}
