// Package spectral estimates the dominant eigenvalue/eigenvector of a
// distributed sparse matrix by power iteration — the "eigenvalues can be
// computed from such matrix-vector products" workload of §I-A2, and the
// computational core of spectral clustering, which the paper lists among
// the sparse-allreduce applications. Each iteration is one distributed
// SpMV through the sum-allreduce plus two scalar allreduces (norm and
// Rayleigh quotient) on a separate tag channel.
package spectral

import (
	"fmt"
	"math"

	"kylix/internal/core"
	"kylix/internal/graph"
	"kylix/internal/sparse"
)

// Result is one machine's power-iteration outcome.
type Result struct {
	// Eigenvalue is the converged Rayleigh-quotient estimate of the
	// dominant eigenvalue (identical on all machines).
	Eigenvalue float64
	// Vector holds the machine's view of the (unit-norm) dominant
	// eigenvector restricted to Vertices.
	Vector []float32
	// Vertices lists the vertices this machine tracks.
	Vertices sparse.Set
	// Iters is the number of iterations executed.
	Iters int
	// Converged reports whether successive eigenvalue estimates got
	// within the tolerance.
	Converged bool
}

// RunNode runs power iteration collectively. The main machine uses the
// default sum reducer; scalar is a second sum machine on a distinct
// channel used for the global norm and Rayleigh-quotient reductions.
func RunNode(m *core.Machine, scalar *core.Machine, shard *graph.Shard, maxIters int, tol float64) (*Result, error) {
	if maxIters < 1 {
		return nil, fmt.Errorf("spectral: maxIters %d must be >= 1", maxIters)
	}
	tracked := sparse.TreeUnion([]sparse.Set{shard.In, shard.Out})
	srcSlot, err := sparse.PositionMap(shard.In, tracked)
	if err != nil {
		return nil, fmt.Errorf("spectral: %w", err)
	}
	cfg, err := m.Configure(tracked, shard.Out)
	if err != nil {
		return nil, fmt.Errorf("spectral: configure: %w", err)
	}
	// Scalar network: index 0 carries squared norms, index 1 the
	// Rayleigh numerator.
	scalarSet := sparse.MustNewSet([]int32{0, 1})
	scalarCfg, err := scalar.Configure(scalarSet, scalarSet)
	if err != nil {
		return nil, fmt.Errorf("spectral: scalar configure: %w", err)
	}

	// Global inner products must count every vertex exactly once, but a
	// vertex can be tracked by several machines. Each machine therefore
	// weights its per-vertex contributions by 1/(number of machines
	// tracking the vertex), obtained from one extra sum-allreduce of
	// ones at setup. Any vertex with a nonzero iterate has an edge and
	// so is tracked somewhere, making the weighted sums complete.
	share, err := shareWeights(m, tracked)
	if err != nil {
		return nil, err
	}

	// x starts as a deterministic pseudo-random unit-ish vector so all
	// machines agree on shared vertices.
	x := make([]float32, len(tracked))
	for i, k := range tracked {
		x[i] = initValue(k.Index())
	}
	if err := normalize(scalarCfg, scalarSet, share, x); err != nil {
		return nil, err
	}

	out := make([]float32, len(shard.Out))
	res := &Result{Vertices: tracked}
	prev := math.Inf(1)
	for it := 1; it <= maxIters; it++ {
		// y = A x restricted to local edges, then global sum.
		for i := range out {
			out[i] = 0
		}
		for e := 0; e < shard.NNZ(); e++ {
			out[shard.DstPos[e]] += shard.W[e] * x[srcSlot[shard.SrcPos[e]]]
		}
		y, err := cfg.Reduce(out)
		if err != nil {
			return nil, fmt.Errorf("spectral: iter %d: %w", it, err)
		}
		// Rayleigh numerator x·y and norm |y|, share-weighted so each
		// vertex counts once globally.
		var dot, norm2 float64
		for i := range y {
			w := float64(share[i])
			dot += w * float64(x[i]) * float64(y[i])
			norm2 += w * float64(y[i]) * float64(y[i])
		}
		totals, err := scalarCfg.Reduce([]float32{float32(norm2), float32(dot)})
		if err != nil {
			return nil, fmt.Errorf("spectral: scalar iter %d: %w", it, err)
		}
		scalarVals := alignScalars(scalarSet, totals)
		gNorm := math.Sqrt(float64(scalarVals[0]))
		lambda := float64(scalarVals[1])
		res.Iters = it
		if gNorm == 0 {
			return nil, fmt.Errorf("spectral: iterate collapsed to zero (matrix nilpotent?)")
		}
		for i := range x {
			x[i] = y[i] / float32(gNorm)
		}
		res.Eigenvalue = lambda
		if math.Abs(lambda-prev) <= tol*(1+math.Abs(lambda)) {
			res.Converged = true
			break
		}
		prev = lambda
	}
	res.Vector = x
	return res, nil
}

// shareWeights runs one sum-allreduce of ones over the tracked set and
// returns 1/count per tracked vertex: the weight that makes per-machine
// partial inner products sum to exactly one contribution per vertex.
func shareWeights(m *core.Machine, tracked sparse.Set) ([]float32, error) {
	cfg, err := m.Configure(tracked, tracked)
	if err != nil {
		return nil, fmt.Errorf("spectral: share configure: %w", err)
	}
	ones := make([]float32, len(tracked))
	for i := range ones {
		ones[i] = 1
	}
	counts, err := cfg.Reduce(ones)
	if err != nil {
		return nil, fmt.Errorf("spectral: share reduce: %w", err)
	}
	share := make([]float32, len(counts))
	for i, c := range counts {
		if c <= 0 {
			return nil, fmt.Errorf("spectral: tracked vertex %d has share count %f", tracked[i].Index(), c)
		}
		share[i] = 1 / c
	}
	return share, nil
}

// normalize scales x to unit norm globally.
func normalize(scalarCfg *core.Config, scalarSet sparse.Set, share, x []float32) error {
	var norm2 float64
	for i := range x {
		norm2 += float64(share[i]) * float64(x[i]) * float64(x[i])
	}
	totals, err := scalarCfg.Reduce([]float32{float32(norm2), 0})
	if err != nil {
		return fmt.Errorf("spectral: normalize: %w", err)
	}
	g := math.Sqrt(float64(alignScalars(scalarSet, totals)[0]))
	if g == 0 {
		return fmt.Errorf("spectral: zero initial vector")
	}
	for i := range x {
		x[i] /= float32(g)
	}
	return nil
}

// alignScalars maps key-ordered scalar results back to index order
// (indices 0 and 1).
func alignScalars(set sparse.Set, vals []float32) [2]float32 {
	var out [2]float32
	for i, k := range set {
		out[k.Index()] = vals[i]
	}
	return out
}

// initValue is a deterministic pseudo-random starting component in
// (0, 1], identical on every machine for a given vertex. Positive
// entries guarantee a nonzero overlap with the Perron vector of a
// non-negative matrix.
func initValue(v int32) float32 {
	h := uint64(uint32(v))*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	h ^= h >> 33
	return float32(h%1000+1) / 1000
}

// Sequential is the single-machine reference power iteration.
func Sequential(n int32, edges []graph.Edge, weights []float32, maxIters int, tol float64) (float64, []float32, int) {
	a := graph.NewCSR(n, edges, weights)
	x := make([]float32, n)
	for v := int32(0); v < n; v++ {
		x[v] = initValue(v)
	}
	var norm2 float64
	for _, v := range x {
		norm2 += float64(v) * float64(v)
	}
	g := float32(math.Sqrt(norm2))
	for i := range x {
		x[i] /= g
	}
	y := make([]float32, n)
	prev := math.Inf(1)
	lambda := 0.0
	for it := 1; it <= maxIters; it++ {
		a.Multiply(x, y)
		var dot, n2 float64
		for i := range y {
			dot += float64(x[i]) * float64(y[i])
			n2 += float64(y[i]) * float64(y[i])
		}
		lambda = dot
		gn := math.Sqrt(n2)
		if gn == 0 {
			return 0, x, it
		}
		for i := range x {
			x[i] = y[i] / float32(gn)
		}
		if math.Abs(lambda-prev) <= tol*(1+math.Abs(lambda)) {
			return lambda, x, it
		}
		prev = lambda
	}
	return lambda, x, maxIters
}
