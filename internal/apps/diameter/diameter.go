// Package diameter estimates graph diameter HADI-style (the paper cites
// it as a sparse-allreduce application in §I-A2): every vertex carries
// Flajolet-Martin bitstring sketches of its h-hop in-neighbourhood, one
// OR-allreduce per hop grows the sketches, and the effective diameter is
// the hop count at which sketches stop changing. The bitwise-OR reducer
// exercises Kylix's pluggable-reduction path.
package diameter

import (
	"fmt"
	"math"

	"kylix/internal/core"
	"kylix/internal/graph"
	"kylix/internal/sparse"
)

// InitSketch returns vertex v's initial FM sketch word for sketch j:
// a single bit at geometrically distributed position, derived
// deterministically from (v, j, seed) so every machine materializes the
// same sketch without coordination.
func InitSketch(v int32, j int, seed int64) uint32 {
	h := uint64(uint32(v))*0x9E3779B97F4A7C15 ^ uint64(j+1)*0xBF58476D1CE4E5B9 ^ uint64(seed)
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	// Position of lowest set bit of a uniform word is Geometric(1/2).
	if h == 0 {
		return 1 << 31
	}
	bit := 0
	for h&1 == 0 && bit < 31 {
		h >>= 1
		bit++
	}
	return 1 << uint(bit)
}

// Result reports one machine's diameter estimation outcome.
type Result struct {
	// Diameter is the first hop count at which no sketch changed
	// anywhere in the graph (an effective-diameter estimate; maxIters+1
	// means it did not converge within the budget).
	Diameter int
	// Changes is the global per-hop changed-sketch count, obtained via a
	// one-feature sum-allreduce piggybacked on the same machines.
	// Vertices held by several machines are counted once per holder,
	// which does not affect the zero-test the stopping rule uses.
	Changes []int
	// Vertices lists the vertices this machine tracks (the union of its
	// shard's sources and destinations — destinations included so that
	// pure sinks, whose sketches can still grow, are watched by the
	// convergence test).
	Vertices sparse.Set
	// Sketches holds the final sketch words (width per vertex), aligned
	// with Vertices, for neighbourhood-size estimation.
	Sketches []float32
}

// RunNode estimates the diameter collectively. width is the number of
// 32-bit sketch words per vertex (more words, tighter estimates).
func RunNode(m *core.Machine, convergence *core.Machine, shard *graph.Shard, maxIters, width int, seed int64) (*Result, error) {
	if width < 1 {
		return nil, fmt.Errorf("diameter: width %d must be >= 1", width)
	}
	// Track every locally incident vertex: sources feed the product,
	// and destinations must be watched so a growing sink still counts
	// as a change.
	tracked := sparse.TreeUnion([]sparse.Set{shard.In, shard.Out})
	srcSlot, err := sparse.PositionMap(shard.In, tracked)
	if err != nil {
		return nil, fmt.Errorf("diameter: %w", err)
	}
	cfg, err := m.Configure(tracked, shard.Out)
	if err != nil {
		return nil, fmt.Errorf("diameter: configure: %w", err)
	}
	// The convergence machine runs a parallel 1-feature sum-allreduce
	// network for the global changed-count.
	convSet := sparse.MustNewSet([]int32{0})
	convCfg, err := convergence.Configure(convSet, convSet)
	if err != nil {
		return nil, fmt.Errorf("diameter: convergence configure: %w", err)
	}

	// Current sketches for the tracked vertices.
	cur := make([]float32, len(tracked)*width)
	for i, k := range tracked {
		for j := 0; j < width; j++ {
			cur[i*width+j] = math.Float32frombits(InitSketch(k.Index(), j, seed))
		}
	}
	out := make([]float32, len(shard.Out)*width)
	res := &Result{Diameter: maxIters + 1, Vertices: tracked}
	for h := 1; h <= maxIters; h++ {
		// Local OR of in-neighbour sketches per destination.
		for i := range out {
			out[i] = 0
		}
		for e := 0; e < shard.NNZ(); e++ {
			src, dst := int(srcSlot[shard.SrcPos[e]]), shard.DstPos[e]
			for j := 0; j < width; j++ {
				d := int(dst)*width + j
				out[d] = orBits(out[d], cur[src*width+j])
			}
		}
		gathered, err := cfg.Reduce(out)
		if err != nil {
			return nil, fmt.Errorf("diameter: hop %d: %w", h, err)
		}
		// New sketch = old | gathered; count local changes on In slots.
		changed := 0
		for i := range cur {
			next := orBits(cur[i], gathered[i])
			if math.Float32bits(next) != math.Float32bits(cur[i]) {
				changed++
			}
			cur[i] = next
		}
		// Global convergence: sum the changed counts.
		total, err := convCfg.Reduce([]float32{float32(changed)})
		if err != nil {
			return nil, fmt.Errorf("diameter: convergence hop %d: %w", h, err)
		}
		res.Changes = append(res.Changes, int(total[0]))
		if total[0] == 0 {
			res.Diameter = h - 1
			break
		}
	}
	res.Sketches = cur
	return res, nil
}

// orBits ORs two float32-encoded bit masks.
func orBits(a, b float32) float32 {
	return math.Float32frombits(math.Float32bits(a) | math.Float32bits(b))
}

// EstimateNeighbourhood converts a vertex's sketch words into a
// Flajolet-Martin estimate of its reachable-set size.
func EstimateNeighbourhood(sketch []float32) float64 {
	if len(sketch) == 0 {
		return 0
	}
	sum := 0.0
	for _, w := range sketch {
		bits := math.Float32bits(w)
		b := 0
		for b < 32 && bits&(1<<uint(b)) != 0 {
			b++
		}
		sum += float64(b)
	}
	return math.Pow(2, sum/float64(len(sketch))) / 0.77351
}

// SequentialSketchDiameter runs the identical sketch propagation on a
// single machine: the exact oracle for the distributed algorithm (same
// InitSketch seeds, same OR dynamics, same stopping rule). Because
// Flajolet-Martin bits can collide, its result may fall short of the
// true diameter by a hop or two; RunNode must match it exactly.
func SequentialSketchDiameter(n int32, edges []graph.Edge, maxIters, width int, seed int64) int {
	cur := make([]uint32, int(n)*width)
	for v := int32(0); v < n; v++ {
		for j := 0; j < width; j++ {
			cur[int(v)*width+j] = InitSketch(v, j, seed)
		}
	}
	for h := 1; h <= maxIters; h++ {
		next := append([]uint32(nil), cur...)
		for _, e := range edges {
			for j := 0; j < width; j++ {
				next[int(e.Dst)*width+j] |= cur[int(e.Src)*width+j]
			}
		}
		changed := false
		for i := range cur {
			if next[i] != cur[i] {
				changed = true
				break
			}
		}
		cur = next
		if !changed {
			return h - 1
		}
	}
	return maxIters + 1
}

// SequentialDiameter computes the exact "no change" hop count by dense
// reachability propagation — the reference the distributed estimate is
// tested against on small graphs. It returns the number of hops until
// reachability sets stop growing.
func SequentialDiameter(n int32, edges []graph.Edge, maxIters int) int {
	reach := make([]map[int32]bool, n)
	for v := range reach {
		reach[v] = map[int32]bool{int32(v): true}
	}
	for h := 1; h <= maxIters; h++ {
		changed := false
		next := make([]map[int32]bool, n)
		for v := range next {
			next[v] = make(map[int32]bool, len(reach[v]))
			for u := range reach[v] {
				next[v][u] = true
			}
		}
		for _, e := range edges {
			for u := range reach[e.Src] {
				if !next[e.Dst][u] {
					next[e.Dst][u] = true
					changed = true
				}
			}
		}
		reach = next
		if !changed {
			return h - 1
		}
	}
	return maxIters + 1
}
