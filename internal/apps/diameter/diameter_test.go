package diameter

import (
	"math"
	"math/rand"
	"testing"

	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/graph"
	"kylix/internal/memnet"
	"kylix/internal/sparse"
	"kylix/internal/topo"
)

func runDistributed(t *testing.T, m int, n int64, edges []graph.Edge, maxIters, width int) []*Result {
	t.Helper()
	bf := topo.MustNew([]int{m})
	rng := rand.New(rand.NewSource(3))
	parts := graph.PartitionEdges(rng, edges, m)
	shards := make([]*graph.Shard, m)
	for i := range parts {
		s, err := graph.BuildShard(parts[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = s
	}
	net := memnet.New(m)
	defer net.Close()
	results := make([]*Result, m)
	err := memnet.Run(net, func(ep comm.Endpoint) error {
		mach, err := core.NewMachine(ep, bf, core.Options{Reducer: sparse.Or, Width: width})
		if err != nil {
			return err
		}
		conv, err := core.NewMachine(ep, bf, core.Options{Channel: 1})
		if err != nil {
			return err
		}
		res, err := RunNode(mach, conv, shards[ep.Rank()], maxIters, width, 42)
		if err != nil {
			return err
		}
		results[ep.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestInitSketchDeterministicAndGeometric(t *testing.T) {
	if InitSketch(5, 0, 1) != InitSketch(5, 0, 1) {
		t.Fatal("not deterministic")
	}
	if InitSketch(5, 0, 1) == InitSketch(5, 1, 1) && InitSketch(6, 0, 1) == InitSketch(5, 0, 1) {
		t.Fatal("sketches not varying")
	}
	// Bit position distribution: bit 0 should appear for roughly half
	// the vertices.
	bit0 := 0
	const trials = 4000
	for v := int32(0); v < trials; v++ {
		if InitSketch(v, 0, 7)&1 == 1 {
			bit0++
		}
	}
	if bit0 < trials/2-200 || bit0 > trials/2+200 {
		t.Fatalf("bit-0 frequency %d of %d, want ~half", bit0, trials)
	}
	// Exactly one bit set always.
	for v := int32(0); v < 100; v++ {
		s := InitSketch(v, 3, 9)
		if s == 0 || s&(s-1) != 0 {
			t.Fatalf("sketch %b is not a single bit", s)
		}
	}
}

func TestDiameterPathGraph(t *testing.T) {
	// A directed path 0->1->2->3->4 stabilizes after 4 hops exactly;
	// the distributed run must match the single-machine sketch oracle
	// bit for bit, and the FM estimate must land within 2 of the truth.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4}}
	exact := SequentialDiameter(5, edges, 10)
	if exact != 4 {
		t.Fatalf("sequential reference says %d, want 4", exact)
	}
	oracle := SequentialSketchDiameter(5, edges, 10, 4, 42)
	results := runDistributed(t, 2, 5, edges, 10, 4)
	for r, res := range results {
		if res.Diameter != oracle {
			t.Fatalf("machine %d estimated diameter %d, sketch oracle %d (changes %v)", r, res.Diameter, oracle, res.Changes)
		}
		if res.Diameter > exact || res.Diameter < exact-2 {
			t.Fatalf("machine %d estimate %d too far from exact %d", r, res.Diameter, exact)
		}
	}
}

func TestDiameterMatchesSketchOracleOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 3; trial++ {
		n := int64(60)
		edges := graph.GenPowerLaw(rng, n, 150, 0.8, 0.8)
		oracle := SequentialSketchDiameter(int32(n), edges, 30, 4, 42)
		exact := SequentialDiameter(int32(n), edges, 30)
		results := runDistributed(t, 4, n, edges, 30, 4)
		for r, res := range results {
			if res.Diameter != oracle {
				t.Fatalf("trial %d machine %d: estimated %d, sketch oracle %d", trial, r, res.Diameter, oracle)
			}
		}
		// The FM approximation never overshoots the exact hop count and
		// stays close below it.
		if oracle > exact || oracle < exact-2 {
			t.Fatalf("trial %d: sketch oracle %d vs exact %d", trial, oracle, exact)
		}
	}
}

func TestDiameterConvergenceCountsAgree(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 2, Dst: 3}}
	results := runDistributed(t, 2, 4, edges, 10, 2)
	// All machines see identical global change counts.
	for r := 1; r < len(results); r++ {
		if len(results[r].Changes) != len(results[0].Changes) {
			t.Fatal("machines disagree on rounds")
		}
		for i := range results[0].Changes {
			if results[r].Changes[i] != results[0].Changes[i] {
				t.Fatal("machines disagree on change counts")
			}
		}
	}
	// Last round has zero changes by construction.
	last := results[0].Changes[len(results[0].Changes)-1]
	if last != 0 {
		t.Fatalf("did not converge: %v", results[0].Changes)
	}
}

func TestRunNodeValidatesWidth(t *testing.T) {
	net := memnet.New(1)
	defer net.Close()
	bf := topo.MustNew([]int{1})
	m, _ := core.NewMachine(net.Endpoint(0), bf, core.Options{Reducer: sparse.Or})
	conv, _ := core.NewMachine(net.Endpoint(0), bf, core.Options{Channel: 1})
	shard, _ := graph.BuildShard([]graph.Edge{{Src: 0, Dst: 1}}, nil)
	if _, err := RunNode(m, conv, shard, 5, 0, 1); err == nil {
		t.Fatal("accepted width 0")
	}
}

func TestEstimateNeighbourhood(t *testing.T) {
	if EstimateNeighbourhood(nil) != 0 {
		t.Fatal("empty sketch should estimate 0")
	}
	// All-low-bits-set sketches estimate large neighbourhoods.
	big := []float32{math.Float32frombits(0xFF), math.Float32frombits(0xFF)}
	small := []float32{math.Float32frombits(0x1), math.Float32frombits(0x1)}
	if EstimateNeighbourhood(big) <= EstimateNeighbourhood(small) {
		t.Fatal("estimate not monotone in sketch density")
	}
}

func TestSequentialDiameterDisconnected(t *testing.T) {
	// Two isolated vertices: nothing propagates, diameter 0... after the
	// first no-change round.
	if d := SequentialDiameter(2, nil, 5); d != 0 {
		t.Fatalf("diameter of empty graph = %d, want 0", d)
	}
}
