// Package lda trains a latent Dirichlet allocation topic model with a
// distributed collapsed Gibbs sampler — the §I-A1 MCMC workload ("Gibbs
// samplers involve updates to a model on every sample. To improve
// performance, the sample updates are batched in very similar fashion to
// subgradient updates"). Documents are sharded across machines; each
// sweep a machine resamples its tokens' topic assignments against the
// global word-topic count matrix and exchanges the *sparse delta* of
// counts — only the words present in its shard — through a fused
// configure+reduce with Width = K values (one per topic) per word.
//
// This is the approximate distributed Gibbs scheme of Newman et al.
// (AD-LDA) built on Kylix's primitive: within a sweep machines sample
// against a slightly stale global matrix; the allreduce at the end of
// the sweep reconciles all deltas exactly.
package lda

import (
	"fmt"
	"math"
	"math/rand"

	"kylix/internal/core"
	"kylix/internal/sparse"
)

// Corpus is one machine's document shard: Docs[d] lists the word ids of
// document d (tokens, duplicates allowed).
type Corpus struct {
	Vocab int32
	Docs  [][]int32
}

// GenCorpus synthesizes a corpus with topic structure: `topics` latent
// topics, each concentrated on its own slice of the vocabulary, and
// documents drawn from 1-2 topics. Machines seed their own rng streams.
func GenCorpus(rng *rand.Rand, vocab int32, topics, docs, tokensPerDoc int) *Corpus {
	c := &Corpus{Vocab: vocab}
	wordsPerTopic := vocab / int32(topics)
	for d := 0; d < docs; d++ {
		primary := rng.Intn(topics)
		secondary := rng.Intn(topics)
		doc := make([]int32, tokensPerDoc)
		for t := range doc {
			topic := primary
			if rng.Intn(4) == 0 {
				topic = secondary
			}
			doc[t] = int32(topic)*wordsPerTopic + rng.Int31n(wordsPerTopic)
		}
		c.Docs = append(c.Docs, doc)
	}
	return c
}

// Params tune the sampler.
type Params struct {
	Topics int
	Alpha  float64 // document-topic smoothing
	Beta   float64 // topic-word smoothing
	Sweeps int
}

// Result is one machine's outcome.
type Result struct {
	// Assignments mirrors the corpus: the final topic of every token.
	Assignments [][]int
	// LogLikelihood traces the per-sweep token log-likelihood of the
	// local shard (should rise as topics sharpen).
	LogLikelihood []float64
	// TopicTotals is the final global per-topic token count (identical
	// across machines).
	TopicTotals []float64
}

// RunNode trains collectively. The machine must be constructed with
// Width = Params.Topics; the totals machine carries the global
// per-topic totals on a separate channel (width K as well).
func RunNode(m *core.Machine, totalsNet *core.Machine, corpus *Corpus, p Params, rng *rand.Rand) (*Result, error) {
	if p.Topics < 2 || p.Sweeps < 1 {
		return nil, fmt.Errorf("lda: need >= 2 topics and >= 1 sweep, got %+v", p)
	}
	k := p.Topics

	// Local state: token assignments, document-topic counts, local
	// word-topic counts for the words in this shard.
	words := vocabOf(corpus)
	wordPos := map[int32]int{}
	for i, kk := range words {
		wordPos[kk.Index()] = i
	}
	assign := make([][]int, len(corpus.Docs))
	docTopic := make([][]int32, len(corpus.Docs))
	localWT := make([]float32, len(words)*k) // this machine's contributions
	for d, doc := range corpus.Docs {
		assign[d] = make([]int, len(doc))
		docTopic[d] = make([]int32, k)
		for t, w := range doc {
			z := rng.Intn(k)
			assign[d][t] = z
			docTopic[d][z]++
			localWT[wordPos[w]*k+z]++
		}
	}

	totalsSet := sparse.MustNewSet([]int32{0})
	totalsCfg, err := totalsNet.Configure(totalsSet, totalsSet)
	if err != nil {
		return nil, fmt.Errorf("lda: totals configure: %w", err)
	}

	res := &Result{Assignments: assign}
	globalWT := make([]float32, len(localWT))
	globalTotals := make([]float64, k)
	for sweep := 0; sweep < p.Sweeps; sweep++ {
		// Synchronize: global word-topic counts for my words, and global
		// per-topic totals. The word sets are fixed per machine, but the
		// fused call keeps this a single network pass per sweep.
		_, gathered, err := m.ConfigureReduce(words, words, localWT)
		if err != nil {
			return nil, fmt.Errorf("lda: sweep %d sync: %w", sweep, err)
		}
		copy(globalWT, gathered)
		myTotals := make([]float32, k)
		for i := 0; i < len(localWT); i += k {
			for z := 0; z < k; z++ {
				myTotals[z] += localWT[i+z]
			}
		}
		totals, err := totalsCfg.Reduce(myTotals)
		if err != nil {
			return nil, fmt.Errorf("lda: sweep %d totals: %w", sweep, err)
		}
		for z := 0; z < k; z++ {
			globalTotals[z] = float64(totals[z])
		}

		// Gibbs sweep against the (stale-within-sweep) global counts.
		ll := 0.0
		vBeta := float64(corpus.Vocab) * p.Beta
		probs := make([]float64, k)
		for d, doc := range corpus.Docs {
			for t, w := range doc {
				wp := wordPos[w]
				old := assign[d][t]
				// Remove the token from its own counts (local and the
				// cached global view).
				docTopic[d][old]--
				localWT[wp*k+old]--
				globalWT[wp*k+old]--
				globalTotals[old]--

				sum := 0.0
				for z := 0; z < k; z++ {
					pz := (float64(docTopic[d][z]) + p.Alpha) *
						(float64(globalWT[wp*k+z]) + p.Beta) /
						(globalTotals[z] + vBeta)
					probs[z] = pz
					sum += pz
				}
				u := rng.Float64() * sum
				z := 0
				for z < k-1 && u > probs[z] {
					u -= probs[z]
					z++
				}
				assign[d][t] = z
				docTopic[d][z]++
				localWT[wp*k+z]++
				globalWT[wp*k+z]++
				globalTotals[z]++
				ll += logOf(probs[z] / sum)
			}
		}
		res.LogLikelihood = append(res.LogLikelihood, ll)
	}
	// Final exact reconciliation for reporting. Global per-topic totals
	// must sum every machine's local counts (a machine's own vocabulary
	// misses words it never saw), so they come from the totals network,
	// whose inputs are disjoint per machine.
	if _, _, err := m.ConfigureReduce(words, words, localWT); err != nil {
		return nil, fmt.Errorf("lda: final sync: %w", err)
	}
	myTotals := make([]float32, k)
	for i := 0; i < len(localWT); i += k {
		for z := 0; z < k; z++ {
			myTotals[z] += localWT[i+z]
		}
	}
	finalTotals, err := totalsCfg.Reduce(myTotals)
	if err != nil {
		return nil, fmt.Errorf("lda: final totals: %w", err)
	}
	res.TopicTotals = make([]float64, k)
	for z := 0; z < k; z++ {
		res.TopicTotals[z] = float64(finalTotals[z])
	}
	return res, nil
}

// vocabOf returns the sorted key set of distinct words in the shard.
func vocabOf(c *Corpus) sparse.Set {
	var all []int32
	for _, doc := range c.Docs {
		all = append(all, doc...)
	}
	set, _, err := sparse.NewSet(all)
	if err != nil {
		panic("lda: invalid word id: " + err.Error())
	}
	return set
}

// logOf is a guarded log for likelihood accumulation.
func logOf(p float64) float64 {
	if p < 1e-12 {
		p = 1e-12
	}
	return math.Log(p)
}

// TopicCoherence scores how concentrated each topic's mass is on a
// contiguous vocabulary block (matching GenCorpus's construction): the
// fraction of each topic's weight falling in its best block. Values near
// 1 mean the sampler recovered the planted structure.
func TopicCoherence(wordTopic []float32, words sparse.Set, k int, vocab int32, topics int) []float64 {
	wordsPerTopic := vocab / int32(topics)
	blockMass := make([][]float64, k)
	totals := make([]float64, k)
	for z := 0; z < k; z++ {
		blockMass[z] = make([]float64, topics)
	}
	for i, key := range words {
		block := int(key.Index() / wordsPerTopic)
		if block >= topics {
			block = topics - 1
		}
		for z := 0; z < k; z++ {
			v := float64(wordTopic[i*k+z])
			blockMass[z][block] += v
			totals[z] += v
		}
	}
	out := make([]float64, k)
	for z := 0; z < k; z++ {
		best := 0.0
		for _, v := range blockMass[z] {
			if v > best {
				best = v
			}
		}
		if totals[z] > 0 {
			out[z] = best / totals[z]
		}
	}
	return out
}
