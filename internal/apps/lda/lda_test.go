package lda

import (
	"math"
	"math/rand"
	"testing"

	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/memnet"
	"kylix/internal/sparse"
	"kylix/internal/topo"
)

func TestGenCorpusShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := GenCorpus(rng, 100, 4, 10, 20)
	if len(c.Docs) != 10 {
		t.Fatalf("docs = %d", len(c.Docs))
	}
	for _, doc := range c.Docs {
		if len(doc) != 20 {
			t.Fatal("doc length wrong")
		}
		for _, w := range doc {
			if w < 0 || w >= c.Vocab {
				t.Fatalf("word %d out of vocab", w)
			}
		}
	}
}

func runLDA(t *testing.T, machines int, p Params, seed int64) ([]*Result, []*Corpus) {
	t.Helper()
	corpora := make([]*Corpus, machines)
	for r := range corpora {
		corpora[r] = GenCorpus(rand.New(rand.NewSource(seed+int64(r))), 200, p.Topics, 30, 40)
	}
	bf := topo.MustNew([]int{machines})
	net := memnet.New(machines)
	defer net.Close()
	results := make([]*Result, machines)
	err := memnet.Run(net, func(ep comm.Endpoint) error {
		m, err := core.NewMachine(ep, bf, core.Options{Width: p.Topics})
		if err != nil {
			return err
		}
		totals, err := core.NewMachine(ep, bf, core.Options{Width: p.Topics, Channel: 1})
		if err != nil {
			return err
		}
		res, err := RunNode(m, totals, corpora[ep.Rank()], p, rand.New(rand.NewSource(int64(ep.Rank())+99)))
		if err != nil {
			return err
		}
		results[ep.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results, corpora
}

func TestLDALikelihoodImproves(t *testing.T) {
	p := Params{Topics: 4, Alpha: 0.5, Beta: 0.1, Sweeps: 12}
	results, _ := runLDA(t, 4, p, 7)
	for r, res := range results {
		first, last := res.LogLikelihood[0], res.LogLikelihood[len(res.LogLikelihood)-1]
		if last <= first {
			t.Fatalf("machine %d log-likelihood did not improve: %f -> %f", r, first, last)
		}
	}
}

func TestLDATopicTotalsConsistent(t *testing.T) {
	p := Params{Topics: 4, Alpha: 0.5, Beta: 0.1, Sweeps: 4}
	results, corpora := runLDA(t, 3, p, 13)
	// Every machine reports the same global totals.
	for r := 1; r < len(results); r++ {
		for z := 0; z < p.Topics; z++ {
			if math.Abs(results[r].TopicTotals[z]-results[0].TopicTotals[z]) > 0.5 {
				t.Fatalf("machines disagree on topic totals: %v vs %v",
					results[r].TopicTotals, results[0].TopicTotals)
			}
		}
	}
	// Totals sum to the global token count.
	tokens := 0
	for _, c := range corpora {
		for _, doc := range c.Docs {
			tokens += len(doc)
		}
	}
	sum := 0.0
	for _, v := range results[0].TopicTotals {
		sum += v
	}
	if math.Abs(sum-float64(tokens)) > 1 {
		t.Fatalf("topic totals sum %f, want %d tokens", sum, tokens)
	}
}

func TestLDARecoversPlantedTopics(t *testing.T) {
	// With block-structured vocabulary, a converged sampler's topics
	// concentrate on single blocks. Measure on one machine's local
	// counts after training.
	p := Params{Topics: 4, Alpha: 0.1, Beta: 0.05, Sweeps: 30}
	machines := 2
	corpora := make([]*Corpus, machines)
	for r := range corpora {
		corpora[r] = GenCorpus(rand.New(rand.NewSource(21+int64(r))), 200, p.Topics, 60, 50)
	}
	bf := topo.MustNew([]int{machines})
	net := memnet.New(machines)
	defer net.Close()
	coherences := make([][]float64, machines)
	err := memnet.Run(net, func(ep comm.Endpoint) error {
		m, err := core.NewMachine(ep, bf, core.Options{Width: p.Topics})
		if err != nil {
			return err
		}
		totals, err := core.NewMachine(ep, bf, core.Options{Width: p.Topics, Channel: 1})
		if err != nil {
			return err
		}
		res, err := RunNode(m, totals, corpora[ep.Rank()], p, rand.New(rand.NewSource(int64(ep.Rank())+5)))
		if err != nil {
			return err
		}
		// Rebuild local word-topic counts from final assignments.
		words := vocabOf(corpora[ep.Rank()])
		pos := map[int32]int{}
		for i, k := range words {
			pos[k.Index()] = i
		}
		wt := make([]float32, len(words)*p.Topics)
		for d, doc := range corpora[ep.Rank()].Docs {
			for t2, w := range doc {
				wt[pos[w]*p.Topics+res.Assignments[d][t2]]++
			}
		}
		coherences[ep.Rank()] = TopicCoherence(wt, words, p.Topics, 200, p.Topics)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Average coherence well above the uniform baseline (1/topics=0.25).
	for r, coh := range coherences {
		avg := 0.0
		for _, c := range coh {
			avg += c
		}
		avg /= float64(len(coh))
		if avg < 0.5 {
			t.Fatalf("machine %d topic coherence %.2f too low (%v)", r, avg, coh)
		}
	}
}

func TestRunNodeValidates(t *testing.T) {
	net := memnet.New(1)
	defer net.Close()
	bf := topo.MustNew([]int{1})
	m, _ := core.NewMachine(net.Endpoint(0), bf, core.Options{Width: 2})
	totals, _ := core.NewMachine(net.Endpoint(0), bf, core.Options{Width: 2, Channel: 1})
	c := GenCorpus(rand.New(rand.NewSource(1)), 50, 2, 4, 8)
	if _, err := RunNode(m, totals, c, Params{Topics: 1, Sweeps: 3}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("accepted 1 topic")
	}
	if _, err := RunNode(m, totals, c, Params{Topics: 2, Sweeps: 0}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("accepted 0 sweeps")
	}
}

func TestVocabOf(t *testing.T) {
	c := &Corpus{Vocab: 10, Docs: [][]int32{{1, 2, 2}, {2, 5}}}
	words := vocabOf(c)
	if len(words) != 3 {
		t.Fatalf("vocab size %d, want 3", len(words))
	}
	_ = sparse.Set(words)
}
