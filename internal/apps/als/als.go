// Package als trains a matrix-factorization recommender with
// alternating least squares over Kylix — the §I-A1 "factor models whose
// loss function has the form l = f(X_i, v)" case. Ratings are sharded by
// row (user) across machines; user factors stay local, item factors are
// shared state synchronized per half-iteration by a width-K sparse
// allreduce over exactly the items each machine touches.
//
// The item update is the classic distributed normal-equation trick: for
// item j, the solve needs A_j = sum over ratings (u_i u_i^T) + lambda I
// and b_j = sum over ratings (r u_i), both sums over *all* machines'
// ratings of j. Each machine pushes its partial (A_j, b_j) — packed as
// K*(K+1) floats per item — through a sum-allreduce and solves locally,
// so every machine derives identical item factors without a coordinator.
package als

import (
	"fmt"
	"math"
	"math/rand"

	"kylix/internal/core"
	"kylix/internal/sparse"
)

// Rating is one (user, item, value) observation. Users are machine-local
// row indices; items are global.
type Rating struct {
	User  int32
	Item  int32
	Value float32
}

// Params tune the factorization.
type Params struct {
	// Rank is the factor dimension K.
	Rank int
	// Lambda is the ridge regularizer.
	Lambda float64
	// Iters is the number of full (user+item) alternations.
	Iters int
}

// PackWidth returns the allreduce width needed for rank K: the packed
// upper triangle of A (K*(K+1)/2) plus b (K).
func PackWidth(k int) int { return k*(k+1)/2 + k }

// Result is one machine's outcome.
type Result struct {
	// UserFactors[u] is the local user u's factor vector.
	UserFactors [][]float64
	// ItemFactors maps the machine's touched items to their (globally
	// identical) factor vectors.
	ItemFactors map[int32][]float64
	// RMSE traces the local training error after each iteration.
	RMSE []float64
}

// RunNode trains collectively. The machine must be constructed with
// Width = PackWidth(p.Rank). users is the local user count; ratings use
// local user indices in [0, users).
func RunNode(m *core.Machine, users int, ratings []Rating, p Params, rng *rand.Rand) (*Result, error) {
	if p.Rank < 1 || p.Iters < 1 {
		return nil, fmt.Errorf("als: bad params %+v", p)
	}
	k := p.Rank
	width := PackWidth(k)

	// Items this machine touches, and per-item rating lists.
	var itemIdx []int32
	byItem := map[int32][]Rating{}
	byUser := make([][]Rating, users)
	for _, r := range ratings {
		if r.User < 0 || int(r.User) >= users {
			return nil, fmt.Errorf("als: user %d out of [0,%d)", r.User, users)
		}
		if len(byItem[r.Item]) == 0 {
			itemIdx = append(itemIdx, r.Item)
		}
		byItem[r.Item] = append(byItem[r.Item], r)
		byUser[r.User] = append(byUser[r.User], r)
	}
	items, _, err := sparse.NewSet(itemIdx)
	if err != nil {
		return nil, err
	}
	itemPos := map[int32]int{}
	for i, key := range items {
		itemPos[key.Index()] = i
	}

	// Deterministic item-factor init (identical across machines); random
	// local user init.
	itemF := make([][]float64, len(items))
	for i, key := range items {
		itemF[i] = initFactor(key.Index(), k)
	}
	userF := make([][]float64, users)
	for u := range userF {
		userF[u] = make([]float64, k)
		for c := range userF[u] {
			userF[u][c] = rng.Float64() - 0.5
		}
	}

	cfg, err := m.Configure(items, items)
	if err != nil {
		return nil, fmt.Errorf("als: configure: %w", err)
	}

	res := &Result{}
	packed := make([]float32, len(items)*width)
	for it := 0; it < p.Iters; it++ {
		// User step: ridge-solve each local user against current items.
		for u := range userF {
			if len(byUser[u]) == 0 {
				continue
			}
			a := newSym(k, p.Lambda)
			b := make([]float64, k)
			for _, r := range byUser[u] {
				f := itemF[itemPos[r.Item]]
				accumulate(a, b, f, float64(r.Value), k)
			}
			userF[u] = solve(a, b, k)
		}

		// Item step: pack partial normal equations, sum-allreduce, solve.
		for i := range packed {
			packed[i] = 0
		}
		for i, key := range items {
			a := newSym(k, 0) // lambda added once after summation
			b := make([]float64, k)
			for _, r := range byItem[key.Index()] {
				accumulate(a, b, userF[r.User], float64(r.Value), k)
			}
			pack(packed[i*width:(i+1)*width], a, b, k)
		}
		summed, err := cfg.Reduce(packed)
		if err != nil {
			return nil, fmt.Errorf("als: iter %d: %w", it, err)
		}
		for i := range items {
			a, b := unpack(summed[i*width:(i+1)*width], k)
			for c := 0; c < k; c++ {
				a[c*k+c] += p.Lambda
			}
			itemF[i] = solve(a, b, k)
		}

		// Local RMSE.
		se := 0.0
		for _, r := range ratings {
			se += sq(float64(r.Value) - dot(userF[r.User], itemF[itemPos[r.Item]]))
		}
		res.RMSE = append(res.RMSE, math.Sqrt(se/float64(len(ratings))))
	}
	res.UserFactors = userF
	res.ItemFactors = make(map[int32][]float64, len(items))
	for i, key := range items {
		res.ItemFactors[key.Index()] = itemF[i]
	}
	return res, nil
}

// newSym allocates a KxK matrix with diag preloaded.
func newSym(k int, diag float64) []float64 {
	a := make([]float64, k*k)
	for c := 0; c < k; c++ {
		a[c*k+c] = diag
	}
	return a
}

// accumulate adds f f^T to a and value*f to b.
func accumulate(a, b, f []float64, value float64, k int) {
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			a[r*k+c] += f[r] * f[c]
		}
		b[r] += value * f[r]
	}
}

// pack flattens the upper triangle of a and b into float32s.
func pack(dst []float32, a, b []float64, k int) {
	p := 0
	for r := 0; r < k; r++ {
		for c := r; c < k; c++ {
			dst[p] = float32(a[r*k+c])
			p++
		}
	}
	for r := 0; r < k; r++ {
		dst[p] = float32(b[r])
		p++
	}
}

// unpack rebuilds the symmetric a and b.
func unpack(src []float32, k int) (a, b []float64) {
	a = make([]float64, k*k)
	b = make([]float64, k)
	p := 0
	for r := 0; r < k; r++ {
		for c := r; c < k; c++ {
			a[r*k+c] = float64(src[p])
			a[c*k+r] = float64(src[p])
			p++
		}
	}
	for r := 0; r < k; r++ {
		b[r] = float64(src[p])
		p++
	}
	return a, b
}

// solve returns x with A x = b via Gaussian elimination with partial
// pivoting (K is small — single digits — so this is plenty).
func solve(a, b []float64, k int) []float64 {
	m := make([]float64, k*(k+1))
	for r := 0; r < k; r++ {
		copy(m[r*(k+1):r*(k+1)+k], a[r*k:(r+1)*k])
		m[r*(k+1)+k] = b[r]
	}
	w := k + 1
	for col := 0; col < k; col++ {
		piv := col
		for r := col + 1; r < k; r++ {
			if math.Abs(m[r*w+col]) > math.Abs(m[piv*w+col]) {
				piv = r
			}
		}
		if piv != col {
			for c := 0; c <= k; c++ {
				m[col*w+c], m[piv*w+c] = m[piv*w+c], m[col*w+c]
			}
		}
		d := m[col*w+col]
		if math.Abs(d) < 1e-12 {
			continue // singular direction; leave zero
		}
		for r := 0; r < k; r++ {
			if r == col {
				continue
			}
			f := m[r*w+col] / d
			for c := col; c <= k; c++ {
				m[r*w+c] -= f * m[col*w+c]
			}
		}
	}
	x := make([]float64, k)
	for r := 0; r < k; r++ {
		if d := m[r*w+r]; math.Abs(d) >= 1e-12 {
			x[r] = m[r*w+k] / d
		}
	}
	return x
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func sq(x float64) float64 { return x * x }

// initFactor derives item j's deterministic starting factor.
func initFactor(item int32, k int) []float64 {
	f := make([]float64, k)
	h := uint64(uint32(item))*0x9E3779B97F4A7C15 + 1
	for c := range f {
		h ^= h >> 33
		h *= 0xFF51AFD7ED558CCD
		h ^= h >> 33
		f[c] = float64(h%2000)/1000 - 1
	}
	return f
}

// GenRatings synthesizes a low-rank ratings shard: ground-truth rank-K
// user/item factors generate values with noise, users local, items drawn
// Zipf-ishly from a global item space.
func GenRatings(rng *rand.Rand, users int, nItems int32, perUser, trueRank int, seed int64) []Rating {
	var out []Rating
	for u := 0; u < users; u++ {
		uf := make([]float64, trueRank)
		for c := range uf {
			uf[c] = rng.Float64()*2 - 1
		}
		seen := map[int32]bool{}
		for len(seen) < perUser {
			item := int32(math.Exp(rng.Float64()*math.Log(float64(nItems)))) - 1
			if item >= nItems {
				item = nItems - 1
			}
			if seen[item] {
				continue
			}
			seen[item] = true
			truth := initFactorSeeded(item, trueRank, seed)
			v := dot(uf, truth) + rng.NormFloat64()*0.05
			out = append(out, Rating{User: int32(u), Item: item, Value: float32(v)})
		}
	}
	return out
}

// initFactorSeeded is the ground-truth item factor for synthesis.
func initFactorSeeded(item int32, k int, seed int64) []float64 {
	f := make([]float64, k)
	h := uint64(uint32(item))*0xD6E8FEB86659FD93 ^ uint64(seed)
	for c := range f {
		h ^= h >> 32
		h *= 0xD6E8FEB86659FD93
		h ^= h >> 32
		f[c] = float64(h%2000)/1000 - 1
	}
	return f
}
