package als

import (
	"math"
	"math/rand"
	"testing"

	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/memnet"
	"kylix/internal/topo"
)

func TestSolveLinearSystems(t *testing.T) {
	// 2x2: [[2,0],[0,4]] x = [2,8] -> x = [1,2].
	x := solve([]float64{2, 0, 0, 4}, []float64{2, 8}, 2)
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Fatalf("solve = %v", x)
	}
	// Needs pivoting: [[0,1],[1,0]] x = [3,5] -> x = [5,3].
	x = solve([]float64{0, 1, 1, 0}, []float64{3, 5}, 2)
	if math.Abs(x[0]-5) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("pivoted solve = %v", x)
	}
	// Singular: zero matrix -> zero solution, no panic.
	x = solve(make([]float64, 4), []float64{1, 1}, 2)
	if x[0] != 0 || x[1] != 0 {
		t.Fatalf("singular solve = %v", x)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	k := 3
	a := []float64{1, 2, 3, 2, 5, 6, 3, 6, 9} // symmetric
	b := []float64{7, 8, 9}
	buf := make([]float32, PackWidth(k))
	pack(buf, a, b, k)
	a2, b2 := unpack(buf, k)
	for i := range a {
		if math.Abs(a[i]-a2[i]) > 1e-6 {
			t.Fatalf("a mismatch at %d: %v vs %v", i, a, a2)
		}
	}
	for i := range b {
		if math.Abs(b[i]-b2[i]) > 1e-6 {
			t.Fatalf("b mismatch: %v vs %v", b, b2)
		}
	}
}

func TestGenRatingsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rs := GenRatings(rng, 10, 50, 5, 3, 7)
	if len(rs) != 50 {
		t.Fatalf("ratings = %d", len(rs))
	}
	for _, r := range rs {
		if r.User < 0 || r.User >= 10 || r.Item < 0 || r.Item >= 50 {
			t.Fatalf("rating out of range: %+v", r)
		}
	}
}

func runALS(t *testing.T, machines int, p Params) []*Result {
	t.Helper()
	bf := topo.MustNew([]int{machines})
	shards := make([][]Rating, machines)
	const usersPerMachine = 30
	for r := range shards {
		shards[r] = GenRatings(rand.New(rand.NewSource(int64(50+r))), usersPerMachine, 120, 12, p.Rank, 99)
	}
	net := memnet.New(machines)
	defer net.Close()
	results := make([]*Result, machines)
	err := memnet.Run(net, func(ep comm.Endpoint) error {
		m, err := core.NewMachine(ep, bf, core.Options{Width: PackWidth(p.Rank)})
		if err != nil {
			return err
		}
		res, err := RunNode(m, usersPerMachine, shards[ep.Rank()], p, rand.New(rand.NewSource(int64(ep.Rank()))))
		if err != nil {
			return err
		}
		results[ep.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestALSFitsLowRankData(t *testing.T) {
	p := Params{Rank: 3, Lambda: 0.05, Iters: 10}
	results := runALS(t, 4, p)
	for r, res := range results {
		first, last := res.RMSE[0], res.RMSE[len(res.RMSE)-1]
		if last >= first {
			t.Fatalf("machine %d RMSE did not drop: %f -> %f", r, first, last)
		}
		if last > 0.2 {
			t.Fatalf("machine %d final RMSE %f too high (data is rank-%d + 0.05 noise)", r, last, p.Rank)
		}
	}
}

func TestItemFactorsAgreeAcrossMachines(t *testing.T) {
	p := Params{Rank: 2, Lambda: 0.1, Iters: 4}
	results := runALS(t, 3, p)
	// Any item shared by two machines must have identical factors.
	shared := 0
	for item, f0 := range results[0].ItemFactors {
		for r := 1; r < len(results); r++ {
			if fr, ok := results[r].ItemFactors[item]; ok {
				shared++
				for c := range f0 {
					if math.Abs(f0[c]-fr[c]) > 1e-4 {
						t.Fatalf("item %d factor differs: %v vs %v", item, f0, fr)
					}
				}
			}
		}
	}
	if shared == 0 {
		t.Fatal("no shared items between machines; test vacuous")
	}
}

func TestRunNodeValidates(t *testing.T) {
	net := memnet.New(1)
	defer net.Close()
	bf := topo.MustNew([]int{1})
	m, _ := core.NewMachine(net.Endpoint(0), bf, core.Options{Width: PackWidth(2)})
	if _, err := RunNode(m, 2, []Rating{{User: 0, Item: 1, Value: 1}}, Params{Rank: 0, Iters: 1}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("accepted rank 0")
	}
	if _, err := RunNode(m, 1, []Rating{{User: 5, Item: 1, Value: 1}}, Params{Rank: 2, Iters: 1}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("accepted out-of-range user")
	}
}

func TestPackWidth(t *testing.T) {
	if PackWidth(1) != 2 || PackWidth(3) != 9 || PackWidth(4) != 14 {
		t.Fatalf("PackWidth wrong: %d %d %d", PackWidth(1), PackWidth(3), PackWidth(4))
	}
}
