// Package sgd trains an L2-regularized logistic-regression model with
// distributed minibatch stochastic gradient descent — the §I-A1
// workload: each machine streams its own minibatches, and because a
// subgradient update touches exactly the features present in the batch,
// every round is a *sparse* model exchange.
//
// The model is sharded the way the paper prescribes ("every model
// feature should have a home machine which always sends and receives
// that feature"): machine h owns the authoritative value of the features
// whose key hashes into its bottom range. Each round runs two fused
// configure+reduce operations:
//
//  1. fetch: in = my batch's features, out = my homed features carrying
//     their current values (sum over exactly one contributor = the
//     value);
//  2. update: out = my batch's features carrying gradient contributions,
//     in = my homed features; the gathered sums update the home copies.
//
// In/out sets change every round, which is exactly the case the combined
// configure+reduce message flow exists for.
package sgd

import (
	"fmt"
	"math"
	"math/rand"

	"kylix/internal/core"
	"kylix/internal/powerlaw"
	"kylix/internal/sparse"
)

// Example is one training sample with sparse features.
type Example struct {
	Feats []int32
	Vals  []float32
	Label float32 // 0 or 1
}

// Dataset is one machine's local shard of examples.
type Dataset struct {
	N        int64 // global feature count
	Examples []Example
}

// GenDataset synthesizes a power-law sparse classification problem: a
// ground-truth weight vector over n features, examples whose active
// features follow a Zipf(alpha) head-heavy distribution, labels from the
// true logit plus noise. Each of m machines should call this with its
// own rng stream but the same truthSeed so labels are consistent.
func GenDataset(rng *rand.Rand, n int64, examples, featsPerExample int, alpha float64, truthSeed int64) *Dataset {
	ds := &Dataset{N: n}
	for e := 0; e < examples; e++ {
		seen := make(map[int32]bool, featsPerExample)
		ex := Example{}
		for len(ex.Feats) < featsPerExample {
			f := int32(powerlaw.ZipfRank(rng, n, alpha) - 1)
			if seen[f] {
				continue
			}
			seen[f] = true
			ex.Feats = append(ex.Feats, f)
			ex.Vals = append(ex.Vals, rng.Float32()*2-1)
		}
		logit := float64(0)
		for i, f := range ex.Feats {
			logit += truthWeight(f, truthSeed) * float64(ex.Vals[i])
		}
		p := 1 / (1 + math.Exp(-logit))
		if rng.Float64() < p {
			ex.Label = 1
		}
		ds.Examples = append(ds.Examples, ex)
	}
	return ds
}

// truthWeight derives the ground-truth weight of a feature from a seed.
func truthWeight(f int32, seed int64) float64 {
	h := uint64(uint32(f))*0xD6E8FEB86659FD93 ^ uint64(seed)
	h ^= h >> 32
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 32
	return (float64(h%2000)/1000 - 1) * 2 // in [-2, 2)
}

// Params tune the trainer.
type Params struct {
	Rounds    int
	BatchSize int
	LearnRate float32
	L2        float32
}

// Result is one machine's training outcome.
type Result struct {
	// Losses is the mean per-round training loss over this machine's
	// batches (before the round's update).
	Losses []float64
	// Model maps this machine's homed features to their final values.
	Model map[int32]float32
}

// RunNode trains collectively. home lists the features this machine is
// the home for (disjoint across machines, jointly covering all features
// that ever occur); homeVals are their initial values (nil = zeros).
func RunNode(m *core.Machine, ds *Dataset, home sparse.Set, p Params, rng *rand.Rand) (*Result, error) {
	if p.Rounds <= 0 || p.BatchSize <= 0 {
		return nil, fmt.Errorf("sgd: bad params %+v", p)
	}
	homeVals := make([]float32, len(home))
	res := &Result{}
	for round := 0; round < p.Rounds; round++ {
		batch := sampleBatch(ds, p.BatchSize, rng)
		batchSet, batchPos := batchFeatures(batch)

		// Phase 1 — fetch current weights of the batch's features: homes
		// push their values, everyone pulls what their batch needs.
		_, fetched, err := m.ConfigureReduce(batchSet, home, homeVals)
		if err != nil {
			return nil, fmt.Errorf("sgd: round %d fetch: %w", round, err)
		}

		// Local subgradient over the batch at the fetched weights.
		grad := make([]float32, len(batchSet))
		loss := 0.0
		for bi, ex := range batch {
			logit := float64(0)
			for i := range ex.Feats {
				logit += float64(fetched[batchPos[bi][i]] * ex.Vals[i])
			}
			pred := 1 / (1 + math.Exp(-logit))
			loss += logLoss(pred, ex.Label)
			g := float32(pred) - ex.Label
			for i := range ex.Feats {
				grad[batchPos[bi][i]] += g * ex.Vals[i] / float32(len(batch))
			}
		}
		res.Losses = append(res.Losses, loss/float64(len(batch)))

		// Phase 2 — push gradients; homes gather the global sums and
		// apply the update to their authoritative copies.
		_, gathered, err := m.ConfigureReduce(home, batchSet, grad)
		if err != nil {
			return nil, fmt.Errorf("sgd: round %d update: %w", round, err)
		}
		scale := p.LearnRate / float32(m.Topology().M())
		for i := range homeVals {
			homeVals[i] -= scale*gathered[i] + p.LearnRate*p.L2*homeVals[i]
		}
	}
	res.Model = make(map[int32]float32, len(home))
	for i, k := range home {
		res.Model[k.Index()] = homeVals[i]
	}
	return res, nil
}

// sampleBatch draws a minibatch with replacement.
func sampleBatch(ds *Dataset, size int, rng *rand.Rand) []Example {
	batch := make([]Example, size)
	for i := range batch {
		batch[i] = ds.Examples[rng.Intn(len(ds.Examples))]
	}
	return batch
}

// batchFeatures collects the distinct features of a batch and, per
// example, the position of each of its features in the batch set.
func batchFeatures(batch []Example) (sparse.Set, [][]int32) {
	var all []int32
	for _, ex := range batch {
		all = append(all, ex.Feats...)
	}
	set, perm, err := sparse.NewSet(all)
	if err != nil {
		panic("sgd: invalid feature index: " + err.Error())
	}
	pos := make([][]int32, len(batch))
	off := 0
	for bi, ex := range batch {
		pos[bi] = perm[off : off+len(ex.Feats)]
		off += len(ex.Feats)
	}
	return set, pos
}

func logLoss(pred float64, label float32) float64 {
	const eps = 1e-7
	if pred < eps {
		pred = eps
	}
	if pred > 1-eps {
		pred = 1 - eps
	}
	if label > 0.5 {
		return -math.Log(pred)
	}
	return -math.Log(1 - pred)
}

// HomeSets splits the feature universe of a dataset across m machines by
// key hash range, matching the bottom-layer ownership of a direct
// (1-layer) network so every feature has exactly one home. It returns
// machine `rank`'s share of the features observed in any of the given
// per-machine datasets' universes [0, n).
func HomeSets(n int64, m, rank int) sparse.Set {
	full := sparse.FullRange()
	var mine []int32
	for f := int64(0); f < n; f++ {
		k := sparse.MakeKey(int32(f))
		if full.Sub(m, rank).Contains(k) {
			mine = append(mine, int32(f))
		}
	}
	return sparse.MustNewSet(mine)
}

// SequentialTrain is the single-machine reference: plain minibatch SGD
// over the union of all machines' datasets, used to sanity-check that
// distributed training reaches a comparable loss.
func SequentialTrain(dss []*Dataset, p Params, rng *rand.Rand) []float64 {
	var all []Example
	for _, ds := range dss {
		all = append(all, ds.Examples...)
	}
	model := map[int32]float32{}
	var losses []float64
	for round := 0; round < p.Rounds; round++ {
		loss := 0.0
		grad := map[int32]float32{}
		for b := 0; b < p.BatchSize; b++ {
			ex := all[rng.Intn(len(all))]
			logit := float64(0)
			for i, f := range ex.Feats {
				logit += float64(model[f] * ex.Vals[i])
			}
			pred := 1 / (1 + math.Exp(-logit))
			loss += logLoss(pred, ex.Label)
			g := float32(pred) - ex.Label
			for i, f := range ex.Feats {
				grad[f] += g * ex.Vals[i] / float32(p.BatchSize)
			}
		}
		losses = append(losses, loss/float64(p.BatchSize))
		for f, g := range grad {
			model[f] -= p.LearnRate*g + p.LearnRate*p.L2*model[f]
		}
	}
	return losses
}
