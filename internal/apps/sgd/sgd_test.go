package sgd

import (
	"math/rand"
	"testing"

	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/memnet"
	"kylix/internal/sparse"
	"kylix/internal/topo"
)

func TestGenDatasetShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := GenDataset(rng, 1000, 50, 8, 1.0, 7)
	if len(ds.Examples) != 50 {
		t.Fatalf("examples = %d", len(ds.Examples))
	}
	ones := 0
	for _, ex := range ds.Examples {
		if len(ex.Feats) != 8 || len(ex.Vals) != 8 {
			t.Fatal("example shape wrong")
		}
		seen := map[int32]bool{}
		for _, f := range ex.Feats {
			if f < 0 || int64(f) >= ds.N {
				t.Fatalf("feature %d out of range", f)
			}
			if seen[f] {
				t.Fatal("duplicate feature within example")
			}
			seen[f] = true
		}
		if ex.Label == 1 {
			ones++
		}
	}
	if ones == 0 || ones == 50 {
		t.Fatalf("degenerate labels: %d of 50 positive", ones)
	}
}

func TestHomeSetsPartitionFeatures(t *testing.T) {
	n := int64(500)
	m := 4
	seen := map[int32]int{}
	for rank := 0; rank < m; rank++ {
		set := HomeSets(n, m, rank)
		for _, k := range set {
			seen[k.Index()]++
		}
	}
	if len(seen) != int(n) {
		t.Fatalf("homes cover %d of %d features", len(seen), n)
	}
	for f, count := range seen {
		if count != 1 {
			t.Fatalf("feature %d has %d homes", f, count)
		}
	}
}

func TestBatchFeatures(t *testing.T) {
	batch := []Example{
		{Feats: []int32{5, 2}, Vals: []float32{1, 1}},
		{Feats: []int32{2, 9}, Vals: []float32{1, 1}},
	}
	set, pos := batchFeatures(batch)
	if len(set) != 3 {
		t.Fatalf("batch set size %d", len(set))
	}
	for bi, ex := range batch {
		for i, f := range ex.Feats {
			if set[pos[bi][i]].Index() != f {
				t.Fatalf("position map wrong for example %d feature %d", bi, i)
			}
		}
	}
}

func TestTruthWeightDeterministicBounded(t *testing.T) {
	for f := int32(0); f < 200; f++ {
		w := truthWeight(f, 3)
		if w != truthWeight(f, 3) {
			t.Fatal("not deterministic")
		}
		if w < -2 || w >= 2 {
			t.Fatalf("weight %f out of [-2,2)", w)
		}
	}
}

func TestDistributedTrainingLossDecreases(t *testing.T) {
	const m = 4
	n := int64(300)
	bf := topo.MustNew([]int{2, 2})
	dss := make([]*Dataset, m)
	for r := 0; r < m; r++ {
		dss[r] = GenDataset(rand.New(rand.NewSource(int64(100+r))), n, 120, 6, 1.0, 55)
	}
	p := Params{Rounds: 80, BatchSize: 32, LearnRate: 1.0, L2: 1e-4}
	net := memnet.New(m)
	defer net.Close()
	results := make([]*Result, m)
	err := memnet.Run(net, func(ep comm.Endpoint) error {
		mach, err := core.NewMachine(ep, bf, core.Options{})
		if err != nil {
			return err
		}
		home := HomeSets(n, m, ep.Rank())
		res, err := RunNode(mach, dss[ep.Rank()], home, p, rand.New(rand.NewSource(int64(ep.Rank()))))
		if err != nil {
			return err
		}
		results[ep.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Training loss at the end should be clearly below the start (the
	// model learns), on every machine.
	for r, res := range results {
		head := avg(res.Losses[:10])
		tail := avg(res.Losses[len(res.Losses)-10:])
		if tail >= head*0.9 {
			t.Fatalf("machine %d loss did not decrease: head %f tail %f (%v)", r, head, tail, res.Losses)
		}
	}
	// The sequential trainer on the pooled data reaches a comparable
	// ballpark (sanity, not exact equivalence: different batch orders).
	seq := SequentialTrain(dss, Params{Rounds: 80, BatchSize: 128, LearnRate: 1.0, L2: 1e-4}, rand.New(rand.NewSource(9)))
	if avg(seq[len(seq)-5:]) >= avg(seq[:5]) {
		t.Fatal("sequential reference failed to learn")
	}
}

func TestHomeModelsDisjointAndComplete(t *testing.T) {
	// After training, exactly the homed features appear in each model.
	const m = 2
	n := int64(50)
	bf := topo.MustNew([]int{2})
	net := memnet.New(m)
	defer net.Close()
	results := make([]*Result, m)
	dss := []*Dataset{
		GenDataset(rand.New(rand.NewSource(1)), n, 40, 4, 1.0, 3),
		GenDataset(rand.New(rand.NewSource(2)), n, 40, 4, 1.0, 3),
	}
	err := memnet.Run(net, func(ep comm.Endpoint) error {
		mach, err := core.NewMachine(ep, bf, core.Options{})
		if err != nil {
			return err
		}
		home := HomeSets(n, m, ep.Rank())
		res, err := RunNode(mach, dss[ep.Rank()], home, Params{Rounds: 3, BatchSize: 8, LearnRate: 0.1}, rand.New(rand.NewSource(int64(ep.Rank()))))
		if err != nil {
			return err
		}
		results[ep.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, res := range results {
		total += len(res.Model)
	}
	if total != int(n) {
		t.Fatalf("models cover %d features, want %d", total, n)
	}
}

func TestRunNodeValidatesParams(t *testing.T) {
	net := memnet.New(1)
	defer net.Close()
	bf := topo.MustNew([]int{1})
	m, _ := core.NewMachine(net.Endpoint(0), bf, core.Options{})
	ds := GenDataset(rand.New(rand.NewSource(1)), 10, 5, 2, 1, 1)
	if _, err := RunNode(m, ds, sparse.MustNewSet([]int32{0}), Params{Rounds: 0, BatchSize: 4}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("accepted zero rounds")
	}
}

func avg(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
