// Package components finds weakly/strongly-directed connected components
// by distributed label propagation — the "connected components ... can be
// computed from such matrix-vector products" application of §I-A2. Each
// vertex carries the minimum vertex id it has heard of; one MIN-allreduce
// per round propagates labels along edges, and a piggybacked one-feature
// SUM-allreduce detects global convergence.
package components

import (
	"fmt"
	"math"

	"kylix/internal/core"
	"kylix/internal/graph"
	"kylix/internal/sparse"
)

// Result is one machine's outcome.
type Result struct {
	// Labels holds the final component label (minimum reachable vertex
	// id) for each In vertex of the shard, aligned with shard.In.
	Labels []int32
	// Rounds is the number of propagation rounds executed.
	Rounds int
	// Converged reports whether propagation reached a fixed point.
	Converged bool
}

// RunNode propagates labels collectively. The main machine must be built
// with sparse.Min and the convergence machine with the default sum
// reducer on a distinct channel. Labels propagate along edge direction;
// run on a symmetrized edge list for weakly connected components.
func RunNode(m *core.Machine, convergence *core.Machine, shard *graph.Shard, maxRounds int) (*Result, error) {
	cfg, err := m.Configure(shard.In, shard.Out)
	if err != nil {
		return nil, fmt.Errorf("components: configure: %w", err)
	}
	convSet := sparse.MustNewSet([]int32{0})
	convCfg, err := convergence.Configure(convSet, convSet)
	if err != nil {
		return nil, fmt.Errorf("components: convergence configure: %w", err)
	}

	labels := make([]float32, len(shard.In))
	for i, k := range shard.In {
		labels[i] = float32(k.Index())
	}
	out := make([]float32, len(shard.Out))
	res := &Result{}
	for round := 1; round <= maxRounds; round++ {
		// Each destination hears the minimum label among its local
		// in-neighbours.
		inf := float32(math.Inf(1))
		for i := range out {
			out[i] = inf
		}
		for e := 0; e < shard.NNZ(); e++ {
			if l := labels[shard.SrcPos[e]]; l < out[shard.DstPos[e]] {
				out[shard.DstPos[e]] = l
			}
		}
		gathered, err := cfg.Reduce(out)
		if err != nil {
			return nil, fmt.Errorf("components: round %d: %w", round, err)
		}
		changed := 0
		for i := range labels {
			if gathered[i] < labels[i] {
				labels[i] = gathered[i]
				changed++
			}
		}
		total, err := convCfg.Reduce([]float32{float32(changed)})
		if err != nil {
			return nil, fmt.Errorf("components: convergence round %d: %w", round, err)
		}
		res.Rounds = round
		if total[0] == 0 {
			res.Converged = true
			break
		}
	}
	res.Labels = make([]int32, len(labels))
	for i, l := range labels {
		res.Labels[i] = int32(l)
	}
	return res, nil
}

// Sequential computes component labels by iterating label propagation to
// a fixed point on one machine (labels propagate along edge direction,
// matching RunNode).
func Sequential(n int32, edges []graph.Edge) []int32 {
	labels := make([]int32, n)
	for v := range labels {
		labels[v] = int32(v)
	}
	for {
		changed := false
		for _, e := range edges {
			if labels[e.Src] < labels[e.Dst] {
				labels[e.Dst] = labels[e.Src]
				changed = true
			}
		}
		if !changed {
			return labels
		}
	}
}

// Symmetrize doubles an edge list with reversed copies so label
// propagation computes weakly connected components.
func Symmetrize(edges []graph.Edge) []graph.Edge {
	out := make([]graph.Edge, 0, 2*len(edges))
	for _, e := range edges {
		out = append(out, e, graph.Edge{Src: e.Dst, Dst: e.Src})
	}
	return out
}
