package components

import (
	"math/rand"
	"testing"

	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/graph"
	"kylix/internal/memnet"
	"kylix/internal/sparse"
	"kylix/internal/topo"
)

func runDistributed(t *testing.T, m int, edges []graph.Edge, maxRounds int) ([]*Result, []*graph.Shard) {
	t.Helper()
	bf := topo.MustNew([]int{m})
	rng := rand.New(rand.NewSource(5))
	parts := graph.PartitionEdges(rng, edges, m)
	shards := make([]*graph.Shard, m)
	for i := range parts {
		s, err := graph.BuildShard(parts[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = s
	}
	net := memnet.New(m)
	defer net.Close()
	results := make([]*Result, m)
	err := memnet.Run(net, func(ep comm.Endpoint) error {
		mach, err := core.NewMachine(ep, bf, core.Options{Reducer: sparse.Min})
		if err != nil {
			return err
		}
		conv, err := core.NewMachine(ep, bf, core.Options{Channel: 1})
		if err != nil {
			return err
		}
		res, err := RunNode(mach, conv, shards[ep.Rank()], maxRounds)
		if err != nil {
			return err
		}
		results[ep.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results, shards
}

func TestComponentsTwoIslands(t *testing.T) {
	// {0,1,2} and {3,4} as undirected components.
	edges := Symmetrize([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 4}})
	results, shards := runDistributed(t, 2, edges, 20)
	want := Sequential(5, edges)
	for r, res := range results {
		if !res.Converged {
			t.Fatalf("machine %d did not converge", r)
		}
		for i, k := range shards[r].In {
			if res.Labels[i] != want[k.Index()] {
				t.Fatalf("machine %d vertex %d: label %d, want %d", r, k.Index(), res.Labels[i], want[k.Index()])
			}
		}
	}
}

func TestComponentsMatchSequentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := int64(120)
	edges := Symmetrize(graph.GenPowerLaw(rng, n, 150, 1, 1))
	want := Sequential(int32(n), edges)
	results, shards := runDistributed(t, 4, edges, 60)
	for r, res := range results {
		if !res.Converged {
			t.Fatalf("machine %d did not converge", r)
		}
		for i, k := range shards[r].In {
			if res.Labels[i] != want[k.Index()] {
				t.Fatalf("machine %d vertex %d: label %d, want %d", r, k.Index(), res.Labels[i], want[k.Index()])
			}
		}
	}
}

func TestSequentialLabels(t *testing.T) {
	edges := Symmetrize([]graph.Edge{{Src: 1, Dst: 2}, {Src: 2, Dst: 4}})
	labels := Sequential(5, edges)
	if labels[1] != 1 || labels[2] != 1 || labels[4] != 1 {
		t.Fatalf("component of {1,2,4} mislabeled: %v", labels)
	}
	if labels[0] != 0 || labels[3] != 3 {
		t.Fatalf("singletons mislabeled: %v", labels)
	}
}

func TestSymmetrize(t *testing.T) {
	edges := Symmetrize([]graph.Edge{{Src: 1, Dst: 2}})
	if len(edges) != 2 || edges[1] != (graph.Edge{Src: 2, Dst: 1}) {
		t.Fatalf("Symmetrize = %v", edges)
	}
}

func TestDirectedPropagationFollowsEdges(t *testing.T) {
	// Without symmetrization, labels flow only along edge direction:
	// 0 -> 1 gives vertex 1 label 0, but a back-edge is required for 0
	// to ever change (it cannot, being the minimum).
	labels := Sequential(2, []graph.Edge{{Src: 0, Dst: 1}})
	if labels[0] != 0 || labels[1] != 0 {
		t.Fatalf("labels = %v", labels)
	}
	labels = Sequential(2, []graph.Edge{{Src: 1, Dst: 0}})
	if labels[0] != 0 || labels[1] != 1 {
		t.Fatalf("labels = %v", labels)
	}
}
