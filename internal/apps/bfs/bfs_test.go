package bfs

import (
	"math/rand"
	"testing"

	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/graph"
	"kylix/internal/memnet"
	"kylix/internal/sparse"
	"kylix/internal/topo"
)

func runDistributed(t *testing.T, m int, edges []graph.Edge, source int32, maxRounds int) []*Result {
	t.Helper()
	bf := topo.MustNew([]int{m})
	rng := rand.New(rand.NewSource(4))
	parts := graph.PartitionEdges(rng, edges, m)
	shards := make([]*graph.Shard, m)
	for i := range parts {
		s, err := graph.BuildShard(parts[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = s
	}
	net := memnet.New(m)
	defer net.Close()
	results := make([]*Result, m)
	err := memnet.Run(net, func(ep comm.Endpoint) error {
		mach, err := core.NewMachine(ep, bf, core.Options{Reducer: sparse.Min})
		if err != nil {
			return err
		}
		conv, err := core.NewMachine(ep, bf, core.Options{Channel: 1})
		if err != nil {
			return err
		}
		res, err := RunNode(mach, conv, shards[ep.Rank()], source, maxRounds)
		if err != nil {
			return err
		}
		results[ep.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func checkAgainstSequential(t *testing.T, n int32, edges []graph.Edge, source int32, results []*Result) {
	t.Helper()
	want := Sequential(n, edges, source)
	for r, res := range results {
		if !res.Converged {
			t.Fatalf("machine %d did not converge", r)
		}
		for i, k := range res.Vertices {
			if res.Dist[i] != want[k.Index()] {
				t.Fatalf("machine %d vertex %d: dist %d, want %d", r, k.Index(), res.Dist[i], want[k.Index()])
			}
		}
	}
}

func TestBFSPath(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
	results := runDistributed(t, 2, edges, 0, 10)
	checkAgainstSequential(t, 4, edges, 0, results)
}

func TestBFSUnreachable(t *testing.T) {
	// Vertex 3 only has an edge *into* the component; from source 0 the
	// back part is unreachable.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 3, Dst: 0}}
	results := runDistributed(t, 2, edges, 0, 10)
	checkAgainstSequential(t, 4, edges, 0, results)
	// Explicitly: vertex 3 must be Unreached wherever tracked.
	for _, res := range results {
		for i, k := range res.Vertices {
			if k.Index() == 3 && res.Dist[i] != Unreached {
				t.Fatalf("vertex 3 got distance %d", res.Dist[i])
			}
		}
	}
}

func TestBFSRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 3; trial++ {
		n := int64(150)
		edges := graph.GenPowerLaw(rng, n, 500, 0.8, 0.8)
		source := int32(rng.Int63n(n))
		results := runDistributed(t, 4, edges, source, 60)
		checkAgainstSequential(t, int32(n), edges, source, results)
	}
}

func TestBFSValidatesParams(t *testing.T) {
	net := memnet.New(1)
	defer net.Close()
	bf := topo.MustNew([]int{1})
	m, _ := core.NewMachine(net.Endpoint(0), bf, core.Options{Reducer: sparse.Min})
	conv, _ := core.NewMachine(net.Endpoint(0), bf, core.Options{Channel: 1})
	shard, _ := graph.BuildShard([]graph.Edge{{Src: 0, Dst: 1}}, nil)
	if _, err := RunNode(m, conv, shard, 0, 0); err == nil {
		t.Fatal("accepted maxRounds 0")
	}
}

func TestSequentialBFS(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}}
	d := Sequential(4, edges, 0)
	if d[0] != 0 || d[1] != 1 || d[2] != 1 || d[3] != Unreached {
		t.Fatalf("dist = %v", d)
	}
}
