// Package bfs computes single-source shortest hop distances (directed
// breadth-first search) with distributed sparse matrix-vector products —
// one of the §I-A2 graph workloads ("connected components, breadth-first
// search, and eigenvalues can be computed from such matrix-vector
// products"). Each round relaxes distances along edges through a
// MIN-allreduce; a piggybacked one-feature SUM-allreduce detects
// frontier exhaustion.
package bfs

import (
	"fmt"
	"math"

	"kylix/internal/core"
	"kylix/internal/graph"
	"kylix/internal/sparse"
)

// Unreached marks vertices the source cannot reach.
const Unreached = int32(-1)

// Result is one machine's BFS outcome.
type Result struct {
	// Dist holds hop distances for the machine's tracked vertices
	// (aligned with Vertices); Unreached where the source has no path.
	Dist []int32
	// Vertices lists the vertices this machine tracks (its shard's
	// sources and destinations).
	Vertices sparse.Set
	// Rounds is the number of relaxation rounds executed.
	Rounds int
	// Converged reports whether the frontier emptied within the budget.
	Converged bool
}

// RunNode runs BFS from the given source collectively. The main machine
// must use sparse.Min; the convergence machine uses the default sum
// reducer on a distinct channel.
func RunNode(m *core.Machine, convergence *core.Machine, shard *graph.Shard, source int32, maxRounds int) (*Result, error) {
	if maxRounds < 1 {
		return nil, fmt.Errorf("bfs: maxRounds %d must be >= 1", maxRounds)
	}
	tracked := sparse.TreeUnion([]sparse.Set{shard.In, shard.Out})
	srcSlot, err := sparse.PositionMap(shard.In, tracked)
	if err != nil {
		return nil, fmt.Errorf("bfs: %w", err)
	}
	cfg, err := m.Configure(tracked, shard.Out)
	if err != nil {
		return nil, fmt.Errorf("bfs: configure: %w", err)
	}
	convSet := sparse.MustNewSet([]int32{0})
	convCfg, err := convergence.Configure(convSet, convSet)
	if err != nil {
		return nil, fmt.Errorf("bfs: convergence configure: %w", err)
	}

	inf := float32(math.Inf(1))
	dist := make([]float32, len(tracked))
	for i, k := range tracked {
		if k.Index() == source {
			dist[i] = 0
		} else {
			dist[i] = inf
		}
	}
	out := make([]float32, len(shard.Out))
	res := &Result{Vertices: tracked}
	for round := 1; round <= maxRounds; round++ {
		// Candidate distance for each destination: min over local
		// in-edges of dist[src] + 1.
		for i := range out {
			out[i] = inf
		}
		for e := 0; e < shard.NNZ(); e++ {
			if d := dist[srcSlot[shard.SrcPos[e]]]; d+1 < out[shard.DstPos[e]] {
				out[shard.DstPos[e]] = d + 1
			}
		}
		gathered, err := cfg.Reduce(out)
		if err != nil {
			return nil, fmt.Errorf("bfs: round %d: %w", round, err)
		}
		changed := 0
		for i := range dist {
			if gathered[i] < dist[i] {
				dist[i] = gathered[i]
				changed++
			}
		}
		total, err := convCfg.Reduce([]float32{float32(changed)})
		if err != nil {
			return nil, fmt.Errorf("bfs: convergence round %d: %w", round, err)
		}
		res.Rounds = round
		if total[0] == 0 {
			res.Converged = true
			break
		}
	}
	res.Dist = make([]int32, len(dist))
	for i, d := range dist {
		if math.IsInf(float64(d), 1) {
			res.Dist[i] = Unreached
		} else {
			res.Dist[i] = int32(d)
		}
	}
	return res, nil
}

// Sequential is the single-machine reference BFS (directed).
func Sequential(n int32, edges []graph.Edge, source int32) []int32 {
	adj := make([][]int32, n)
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[source] = 0
	frontier := []int32{source}
	for level := int32(1); len(frontier) > 0; level++ {
		var next []int32
		for _, v := range frontier {
			for _, u := range adj[v] {
				if dist[u] == Unreached {
					dist[u] = level
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return dist
}
