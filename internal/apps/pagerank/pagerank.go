// Package pagerank implements the paper's flagship benchmark workload
// (§I-A2, §VII-D): PageRank by repeated distributed sparse matrix-vector
// products. Edges are randomly partitioned into per-machine shards; each
// iteration every machine multiplies its shard against its in-vertex
// values and a sparse sum-allreduce routes the reduced products back —
// configuration runs once, reduction once per iteration.
package pagerank

import (
	"fmt"
	"math"

	"kylix/internal/core"
	"kylix/internal/graph"
)

// Damping is the standard PageRank damping factor.
const Damping = 0.85

// Result reports one machine's outcome.
type Result struct {
	// InVals are the final PageRank values for the shard's In vertices,
	// aligned with shard.In.
	InVals []float32
	// Deltas is the per-iteration L1 change over this machine's In
	// vertices (a convergence trace).
	Deltas []float64
	// Iters is the number of reduce rounds executed.
	Iters int
}

// RunNode executes PageRank on one machine. All live machines must call
// it collectively with their own shards. n is the global vertex count;
// iters the iteration count.
//
// The iteration is v' = (1-d)/n + d * X v with X column-normalized by
// global out-degree (weights baked into the shard), matching the
// affine-update form of the paper's Equation in §I-A2.
func RunNode(m *core.Machine, shard *graph.Shard, n int64, iters int) (*Result, error) {
	if n <= 0 || iters < 0 {
		return nil, fmt.Errorf("pagerank: bad parameters n=%d iters=%d", n, iters)
	}
	cfg, err := m.Configure(shard.In, shard.Out)
	if err != nil {
		return nil, fmt.Errorf("pagerank: configure: %w", err)
	}

	x := make([]float32, len(shard.In))
	for i := range x {
		x[i] = 1 / float32(n)
	}
	y := make([]float32, len(shard.Out))
	res := &Result{}
	for it := 0; it < iters; it++ {
		if err := shard.Multiply(x, y); err != nil {
			return nil, err
		}
		gathered, err := cfg.Reduce(y)
		if err != nil {
			return nil, fmt.Errorf("pagerank: iteration %d: %w", it, err)
		}
		var delta float64
		base := (1 - Damping) / float32(n)
		for i := range x {
			next := base + Damping*gathered[i]
			delta += math.Abs(float64(next - x[i]))
			x[i] = next
		}
		res.Deltas = append(res.Deltas, delta)
		res.Iters++
	}
	res.InVals = x
	return res, nil
}

// Sequential is the single-machine reference implementation used by
// tests and the speedup baseline. It returns the PageRank vector after
// the given iterations.
func Sequential(n int32, edges []graph.Edge, iters int) []float32 {
	deg := graph.OutDegrees(int64(n), edges)
	w := graph.PageRankWeights(edges, deg)
	a := graph.NewCSR(n, edges, w)
	x := make([]float32, n)
	for i := range x {
		x[i] = 1 / float32(n)
	}
	y := make([]float32, n)
	for it := 0; it < iters; it++ {
		a.Multiply(x, y)
		base := (1 - Damping) / float32(n)
		for i := range x {
			x[i] = base + Damping*y[i]
		}
	}
	return x
}

// BuildShards partitions an edge list and builds PageRank-weighted
// shards for m machines (weights use global out-degrees, so they are
// identical to the sequential reference's).
func BuildShards(n int64, edges []graph.Edge, parts [][]graph.Edge) ([]*graph.Shard, error) {
	deg := graph.OutDegrees(n, edges)
	shards := make([]*graph.Shard, len(parts))
	for i, part := range parts {
		s, err := graph.BuildShard(part, graph.PageRankWeights(part, deg))
		if err != nil {
			return nil, err
		}
		shards[i] = s
	}
	return shards, nil
}
