package pagerank

import (
	"math"
	"math/rand"
	"testing"

	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/graph"
	"kylix/internal/memnet"
	"kylix/internal/topo"
)

func distributedRun(t *testing.T, degrees []int, n int64, edges []graph.Edge, iters int) []*Result {
	t.Helper()
	bf := topo.MustNew(degrees)
	rng := rand.New(rand.NewSource(9))
	parts := graph.PartitionEdges(rng, edges, bf.M())
	shards, err := BuildShards(n, edges, parts)
	if err != nil {
		t.Fatal(err)
	}
	net := memnet.New(bf.M())
	defer net.Close()
	results := make([]*Result, bf.M())
	err = memnet.Run(net, func(ep comm.Endpoint) error {
		m, err := core.NewMachine(ep, bf, core.Options{})
		if err != nil {
			return err
		}
		res, err := RunNode(m, shards[ep.Rank()], n, iters)
		if err != nil {
			return err
		}
		results[ep.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stash shards for the caller through the results (by closure use).
	for r, res := range results {
		res.InVals = append([]float32(nil), res.InVals...)
		_ = r
	}
	checkAgainstSequential(t, n, edges, iters, shards, results)
	return results
}

func checkAgainstSequential(t *testing.T, n int64, edges []graph.Edge, iters int, shards []*graph.Shard, results []*Result) {
	t.Helper()
	want := Sequential(int32(n), edges, iters)
	for r, res := range results {
		for i, k := range shards[r].In {
			got := res.InVals[i]
			exp := want[k.Index()]
			if math.Abs(float64(got-exp)) > 1e-4+1e-3*math.Abs(float64(exp)) {
				t.Fatalf("machine %d vertex %d: got %g want %g", r, k.Index(), got, exp)
			}
		}
	}
}

func TestPageRankMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := int64(400)
	edges := graph.GenPowerLaw(rng, n, 3000, 0.9, 0.9)
	for _, degrees := range [][]int{{4}, {2, 2}, {4, 2}} {
		distributedRun(t, degrees, n, edges, 6)
	}
}

func TestPageRankSumsToOneIsh(t *testing.T) {
	// PageRank over a graph where every vertex has out-edges conserves
	// probability mass.
	rng := rand.New(rand.NewSource(37))
	n := int32(100)
	var edges []graph.Edge
	for v := int32(0); v < n; v++ {
		for j := 0; j < 3; j++ {
			edges = append(edges, graph.Edge{Src: v, Dst: rng.Int31n(n)})
		}
	}
	ranks := Sequential(n, edges, 30)
	sum := 0.0
	for _, r := range ranks {
		sum += float64(r)
	}
	if math.Abs(sum-1) > 0.01 {
		t.Fatalf("mass = %f, want ~1", sum)
	}
}

func TestPageRankConvergenceDeltasShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := int64(300)
	edges := graph.GenPowerLaw(rng, n, 2500, 1, 1)
	results := distributedRun(t, []int{4}, n, edges, 8)
	for _, res := range results {
		if res.Iters != 8 || len(res.Deltas) != 8 {
			t.Fatal("iteration bookkeeping wrong")
		}
		if res.Deltas[7] >= res.Deltas[0] {
			t.Fatalf("deltas not shrinking: %v", res.Deltas)
		}
	}
}

func TestRunNodeValidatesParams(t *testing.T) {
	net := memnet.New(1)
	defer net.Close()
	bf := topo.MustNew([]int{1})
	m, _ := core.NewMachine(net.Endpoint(0), bf, core.Options{})
	shard, _ := graph.BuildShard([]graph.Edge{{Src: 0, Dst: 1}}, nil)
	if _, err := RunNode(m, shard, 0, 3); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := RunNode(m, shard, 10, -1); err == nil {
		t.Fatal("accepted negative iters")
	}
}

func TestSequentialDanglingVertices(t *testing.T) {
	// Vertices with no out-edges simply leak mass; ranks stay finite and
	// the iteration is well-defined.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}
	ranks := Sequential(4, edges, 10)
	for v, r := range ranks {
		if math.IsNaN(float64(r)) || r < 0 {
			t.Fatalf("vertex %d rank %f", v, r)
		}
	}
	// Vertex 3 receives nothing: teleport mass only.
	if math.Abs(float64(ranks[3])-(1-Damping)/4) > 1e-6 {
		t.Fatalf("isolated vertex rank %g", ranks[3])
	}
}

func TestBuildShardsWeightsGlobal(t *testing.T) {
	// Edge weights must use *global* out-degrees even when the edges of
	// one source are split across partitions.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}}
	parts := [][]graph.Edge{{edges[0]}, {edges[1]}}
	shards, err := BuildShards(3, edges, parts)
	if err != nil {
		t.Fatal(err)
	}
	if shards[0].W[0] != 0.5 || shards[1].W[0] != 0.5 {
		t.Fatalf("weights %v %v, want 0.5 each", shards[0].W, shards[1].W)
	}
}
