package tcpnet

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"net"
	"testing"
	"time"

	"kylix/internal/comm"
	"kylix/internal/obs"
)

// sinkConn is a net.Conn that records writes; reads report EOF.
type sinkConn struct{ buf bytes.Buffer }

func (c *sinkConn) Write(p []byte) (int, error)      { return c.buf.Write(p) }
func (c *sinkConn) Read(p []byte) (int, error)       { return 0, io.EOF }
func (c *sinkConn) Close() error                     { return nil }
func (c *sinkConn) LocalAddr() net.Addr              { return nil }
func (c *sinkConn) RemoteAddr() net.Addr             { return nil }
func (c *sinkConn) SetDeadline(time.Time) error      { return nil }
func (c *sinkConn) SetReadDeadline(time.Time) error  { return nil }
func (c *sinkConn) SetWriteDeadline(time.Time) error { return nil }

func TestBatcherGatherWritesFrames(t *testing.T) {
	m := obs.NewTransportMetrics(nil)
	b := newBatcher(4096, 1<<20, m)
	frames := []stamped{
		{seq: 1, tag: comm.MakeTag(comm.KindApp, 0, 0), data: []byte("alpha")},
		{seq: 2, tag: comm.MakeTag(comm.KindApp, 0, 1), data: []byte("b")},
		{seq: 3, tag: comm.MakeTag(comm.KindApp, 1, 2), data: []byte("gamma-long-payload")},
	}
	for _, s := range frames {
		b.stage(s)
	}
	sink := &sinkConn{}
	if !b.flush(sink) {
		t.Fatal("flush failed on healthy conn")
	}
	if b.nf != 0 || b.bytes != 0 {
		t.Fatal("flush did not reset the batch")
	}
	// The wire bytes must parse back as the exact frame sequence.
	r := bytes.NewReader(sink.buf.Bytes())
	for i, want := range frames {
		var hdr [hdrSize]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			t.Fatalf("frame %d header: %v", i, err)
		}
		size := binary.LittleEndian.Uint32(hdr[:4])
		tag := comm.Tag(binary.LittleEndian.Uint64(hdr[4:12]))
		crc := binary.LittleEndian.Uint32(hdr[12:16])
		seq := binary.LittleEndian.Uint64(hdr[16:24])
		if int(size) != len(want.data) || tag != want.tag || seq != want.seq {
			t.Fatalf("frame %d header mismatch: size=%d tag=%v seq=%d", i, size, tag, seq)
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(r, data); err != nil {
			t.Fatalf("frame %d payload: %v", i, err)
		}
		if !bytes.Equal(data, want.data) || crc != crc32.Checksum(data, castagnoli) {
			t.Fatalf("frame %d payload corrupted", i)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("%d trailing bytes after last frame", r.Len())
	}
	if got := m.WritevCalls.Value(); got != 1 {
		t.Fatalf("WritevCalls = %d, want 1", got)
	}
	if got := m.FramesSent.Value(); got != 3 {
		t.Fatalf("FramesSent = %d, want 3", got)
	}
	if got := m.FramesBatched.Value(); got != 3 {
		t.Fatalf("FramesBatched = %d, want 3", got)
	}

	// A single-frame batch counts the syscall and the frame but is not
	// "batched"; an empty flush counts nothing.
	b.stage(stamped{seq: 4, tag: frames[0].tag, data: []byte("solo")})
	if !b.flush(sink) || !b.flush(sink) {
		t.Fatal("flush failed")
	}
	if got := m.FramesBatched.Value(); got != 3 {
		t.Fatalf("solo frame counted as batched: FramesBatched = %d", got)
	}
	if got, want := m.WritevCalls.Value(), int64(2); got != want {
		t.Fatalf("WritevCalls = %d, want %d (empty flush must not count)", got, want)
	}
}

func TestBatcherCapacityClamps(t *testing.T) {
	m := obs.NewTransportMetrics(nil)
	// Frame cap clamps to the resend ring so an eviction can never
	// recycle a buffer still staged in the open batch.
	b := newBatcher(2, 1<<20, m)
	if b.maxF != 2 {
		t.Fatalf("maxF = %d, want ring capacity 2", b.maxF)
	}
	b.stage(stamped{seq: 1, data: []byte("x")})
	if b.full() {
		t.Fatal("full after 1 of 2 frames")
	}
	b.stage(stamped{seq: 2, data: []byte("y")})
	if !b.full() {
		t.Fatal("not full at ring capacity")
	}

	// Byte cap: MaxBatchBytes 1 closes the batch at the first frame.
	b2 := newBatcher(4096, 1, m)
	b2.stage(stamped{seq: 1, data: []byte("payload")})
	if !b2.full() {
		t.Fatal("not full past MaxBatchBytes")
	}

	// Degenerate ring still yields a working single-frame batcher.
	if b3 := newBatcher(0, 1<<20, m); b3.maxF != 1 {
		t.Fatalf("maxF = %d, want 1 for empty ring", b3.maxF)
	}
}

func TestWireCoalescingCountsBatches(t *testing.T) {
	m := obs.NewTransportMetrics(nil)
	nodes := testCluster(t, 2, Options{Metrics: m})
	// Establish the stream so later bursts hit the live batching path
	// (frames queued before the first dial are replayed from the ring,
	// outside the batch counters).
	warm := comm.MakeTag(comm.KindApp, 0, 0)
	if err := nodes[0].Send(1, warm, &comm.Bytes{Data: []byte("warm")}); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[1].Recv(0, warm); err != nil {
		t.Fatal(err)
	}
	// A burst outruns the writer's writev syscalls, so some drain pass
	// must pick up >1 queued frame. Retry bursts to make the assertion
	// robust to scheduling, though one burst nearly always suffices.
	round := uint32(1)
	for attempt := 0; attempt < 50 && m.FramesBatched.Value() == 0; attempt++ {
		const burst = 200
		for i := 0; i < burst; i++ {
			tag := comm.MakeTag(comm.KindApp, 0, round)
			round++
			if err := nodes[0].Send(1, tag, &comm.Floats{Vals: []float32{float32(i)}}); err != nil {
				t.Fatal(err)
			}
		}
		for i := uint32(round - burst); i < round; i++ {
			if _, err := nodes[1].Recv(0, comm.MakeTag(comm.KindApp, 0, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	sent, writev, batched := m.FramesSent.Value(), m.WritevCalls.Value(), m.FramesBatched.Value()
	if batched == 0 {
		t.Fatalf("no multi-frame batch in 50 bursts (sent=%d writev=%d)", sent, writev)
	}
	if writev >= sent {
		t.Fatalf("WritevCalls %d >= FramesSent %d: coalescing saved no syscalls", writev, sent)
	}
	if batched > sent {
		t.Fatalf("FramesBatched %d > FramesSent %d", batched, sent)
	}
}

func TestMaxBatchBytesOneDisablesCoalescing(t *testing.T) {
	m := obs.NewTransportMetrics(nil)
	nodes := testCluster(t, 2, Options{Metrics: m, MaxBatchBytes: 1})
	const count = 100
	for i := 0; i < count; i++ {
		tag := comm.MakeTag(comm.KindApp, 0, uint32(i))
		if err := nodes[0].Send(1, tag, &comm.Floats{Vals: []float32{float32(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		p, err := nodes[1].Recv(0, comm.MakeTag(comm.KindApp, 0, uint32(i)))
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if p.(*comm.Floats).Vals[0] != float32(i) {
			t.Fatalf("msg %d corrupted", i)
		}
	}
	if got := m.FramesBatched.Value(); got != 0 {
		t.Fatalf("FramesBatched = %d with MaxBatchBytes 1, want 0", got)
	}
	if sent, writev := m.FramesSent.Value(), m.WritevCalls.Value(); sent != writev {
		t.Fatalf("FramesSent %d != WritevCalls %d: unbatched frames must go 1:1", sent, writev)
	}
}

func TestNagleOptionStillDelivers(t *testing.T) {
	nodes := testCluster(t, 2, Options{EnableNagle: true})
	tag := comm.MakeTag(comm.KindApp, 0, 3)
	if err := nodes[0].Send(1, tag, &comm.Bytes{Data: []byte("nagle on")}); err != nil {
		t.Fatal(err)
	}
	p, err := nodes[1].Recv(0, tag)
	if err != nil || string(p.(*comm.Bytes).Data) != "nagle on" {
		t.Fatalf("delivery with Nagle enabled broken: %v %v", p, err)
	}
}

// BenchmarkFrameBatching measures the live frames-per-writev ratio over
// real loopback TCP: bursts of small layer-piece-sized frames, the Fig 2
// small-packet regime the batching writer exists for.
func BenchmarkFrameBatching(b *testing.B) {
	m := obs.NewTransportMetrics(nil)
	nodes, err := LocalCluster(2, Options{Metrics: m})
	if err != nil {
		b.Fatal(err)
	}
	defer CloseAll(nodes)
	vals := make([]float32, 64) // a 256-byte piece: deep-layer sized
	warm := comm.MakeTag(comm.KindApp, 0, 0)
	if err := nodes[0].Send(1, warm, &comm.Floats{Vals: vals}); err != nil {
		b.Fatal(err)
	}
	if _, err := nodes[1].Recv(0, warm); err != nil {
		b.Fatal(err)
	}
	round := uint32(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		const burst = 64
		for j := 0; j < burst; j++ {
			tag := comm.MakeTag(comm.KindApp, 0, round)
			round++
			if err := nodes[0].Send(1, tag, &comm.Floats{Vals: vals}); err != nil {
				b.Fatal(err)
			}
		}
		for j := uint32(round - burst); j < round; j++ {
			if _, err := nodes[1].Recv(0, comm.MakeTag(comm.KindApp, 0, j)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	writev := m.WritevCalls.Value()
	if writev == 0 {
		writev = 1
	}
	b.ReportMetric(float64(m.FramesSent.Value())/float64(writev), "frames/writev")
}
