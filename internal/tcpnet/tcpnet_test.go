package tcpnet

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"net"
	"testing"
	"time"

	"kylix/internal/comm"
	"kylix/internal/core"
	"kylix/internal/sparse"
	"kylix/internal/topo"
	"kylix/internal/trace"
)

func testCluster(t *testing.T, m int, opts Options) []*Node {
	t.Helper()
	nodes, err := LocalCluster(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { CloseAll(nodes) })
	return nodes
}

func TestPointToPointOverTCP(t *testing.T) {
	nodes := testCluster(t, 2, Options{})
	tag := comm.MakeTag(comm.KindApp, 0, 0)
	if err := nodes[0].Send(1, tag, &comm.Bytes{Data: []byte("over tcp")}); err != nil {
		t.Fatal(err)
	}
	p, err := nodes[1].Recv(0, tag)
	if err != nil {
		t.Fatal(err)
	}
	if string(p.(*comm.Bytes).Data) != "over tcp" {
		t.Fatal("payload corrupted")
	}
}

func TestSelfSendLoopback(t *testing.T) {
	nodes := testCluster(t, 1, Options{})
	tag := comm.MakeTag(comm.KindApp, 0, 1)
	if err := nodes[0].Send(0, tag, &comm.Floats{Vals: []float32{42}}); err != nil {
		t.Fatal(err)
	}
	p, err := nodes[0].Recv(0, tag)
	if err != nil || p.(*comm.Floats).Vals[0] != 42 {
		t.Fatalf("loopback broken: %v %v", p, err)
	}
}

func TestAllPayloadTypesSurviveWire(t *testing.T) {
	nodes := testCluster(t, 2, Options{})
	keys := sparse.MustNewSet([]int32{3, 1, 4, 159})
	payloads := []comm.Payload{
		&comm.Keys{Keys: keys},
		&comm.Floats{Vals: []float32{2.5, -1}},
		&comm.KeysVals{Keys: keys, Vals: []float32{1, 2, 3, 4}},
		&comm.Bytes{Data: []byte{0, 255, 7}},
		&comm.InOut{In: keys, Out: sparse.MustNewSet([]int32{9})},
		&comm.Combined{In: keys, Out: keys, Vals: []float32{8, 8, 8, 8}},
	}
	for i, p := range payloads {
		tag := comm.MakeTag(comm.KindApp, 1, uint32(i))
		if err := nodes[0].Send(1, tag, p); err != nil {
			t.Fatal(err)
		}
		q, err := nodes[1].Recv(0, tag)
		if err != nil {
			t.Fatalf("payload %d: %v", i, err)
		}
		if q.WireSize() != p.WireSize() {
			t.Fatalf("payload %d changed size over the wire", i)
		}
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	nodes := testCluster(t, 2, Options{})
	tag := comm.MakeTag(comm.KindApp, 0, 7)
	if err := nodes[0].Send(1, tag, &comm.Bytes{Data: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Send(0, tag, &comm.Bytes{Data: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	if p, err := nodes[1].Recv(0, tag); err != nil || string(p.(*comm.Bytes).Data) != "a" {
		t.Fatal("0->1 lost")
	}
	if p, err := nodes[0].Recv(1, tag); err != nil || string(p.(*comm.Bytes).Data) != "b" {
		t.Fatal("1->0 lost")
	}
}

func TestManyMessagesOrdered(t *testing.T) {
	nodes := testCluster(t, 2, Options{})
	const count = 500
	for i := 0; i < count; i++ {
		if err := nodes[0].Send(1, comm.MakeTag(comm.KindApp, 0, uint32(i)), &comm.Floats{Vals: []float32{float32(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		p, err := nodes[1].Recv(0, comm.MakeTag(comm.KindApp, 0, uint32(i)))
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if p.(*comm.Floats).Vals[0] != float32(i) {
			t.Fatalf("msg %d corrupted", i)
		}
	}
}

func TestRecvTimeout(t *testing.T) {
	nodes := testCluster(t, 2, Options{RecvTimeout: 100 * time.Millisecond})
	_, err := nodes[0].Recv(1, comm.MakeTag(comm.KindApp, 0, 0))
	if !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestSendValidatesRank(t *testing.T) {
	nodes := testCluster(t, 2, Options{})
	if err := nodes[0].Send(9, comm.MakeTag(comm.KindApp, 0, 0), &comm.Bytes{}); err == nil {
		t.Fatal("accepted bad rank")
	}
}

func TestCloseIsIdempotentAndFast(t *testing.T) {
	nodes, err := LocalCluster(3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Create some cross traffic so conns exist.
	tag := comm.MakeTag(comm.KindApp, 0, 0)
	for i := 0; i < 3; i++ {
		_ = nodes[i].Send((i+1)%3, tag, &comm.Bytes{Data: []byte("x")})
	}
	time.Sleep(50 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		CloseAll(nodes)
		_ = nodes[0].Close() // second close is a no-op
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked")
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	nodes, err := LocalCluster(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	CloseAll(nodes)
	if err := nodes[0].Send(1, comm.MakeTag(comm.KindApp, 0, 0), &comm.Bytes{}); !errors.Is(err, comm.ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
}

func TestDialUnreachablePeerDropsQuietly(t *testing.T) {
	// A node whose peer address is unreachable must not error on Send
	// (the replication layer handles dead peers); traffic is dropped.
	addrs := []string{"127.0.0.1:0", "127.0.0.1:1"} // port 1: nothing listens
	n, err := Listen(0, addrs, Options{DialTimeout: 200 * time.Millisecond, RecvTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Send(1, comm.MakeTag(comm.KindApp, 0, 0), &comm.Bytes{Data: []byte("void")}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let the dial fail and park
}

func TestRecorderCountsTCPTraffic(t *testing.T) {
	col := trace.NewCollector(2)
	nodes := testCluster(t, 2, Options{Recorder: col})
	p := &comm.Floats{Vals: make([]float32, 100)}
	tag := comm.MakeTag(comm.KindReduce, 1, 0)
	if err := nodes[0].Send(1, tag, p); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[1].Recv(0, tag); err != nil {
		t.Fatal(err)
	}
	layers := col.KindLayers(comm.KindReduce)
	if len(layers) != 1 || layers[0].Bytes != int64(p.WireSize()) {
		t.Fatalf("recorder saw %+v", layers)
	}
}

// The full Kylix protocol must run unmodified over real TCP sockets and
// agree with a brute-force reference.
func TestKylixAllreduceOverTCP(t *testing.T) {
	bf := topo.MustNew([]int{2, 2})
	nodes := testCluster(t, 4, Options{})
	rng := rand.New(rand.NewSource(55))

	ins := make([]sparse.Set, 4)
	outs := make([]sparse.Set, 4)
	vals := make([][]float32, 4)
	for r := 0; r < 4; r++ {
		idx := make([]int32, 50)
		for i := range idx {
			idx[i] = int32(rng.Intn(300))
		}
		ins[r] = sparse.MustNewSet(idx[:25])
		outs[r] = sparse.MustNewSet(append(append([]int32{}, idx...), idx[:25]...))
		vals[r] = make([]float32, len(outs[r]))
		for i := range vals[r] {
			vals[r][i] = float32(rng.Intn(20))
		}
	}
	totals := map[sparse.Key]float32{}
	for r := 0; r < 4; r++ {
		for i, k := range outs[r] {
			totals[k] += vals[r][i]
		}
	}

	errc := make(chan error, 4)
	results := make([][]float32, 4)
	for r := 0; r < 4; r++ {
		go func(r int) {
			m, err := core.NewMachine(nodes[r], bf, core.Options{})
			if err != nil {
				errc <- err
				return
			}
			cfg, err := m.Configure(ins[r], outs[r])
			if err != nil {
				errc <- err
				return
			}
			res, err := cfg.Reduce(vals[r])
			results[r] = res
			errc <- err
		}(r)
	}
	for r := 0; r < 4; r++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 4; r++ {
		for i, k := range ins[r] {
			want := totals[k]
			if diff := results[r][i] - want; diff > 1e-3 || diff < -1e-3 {
				t.Fatalf("rank %d key %d: got %f want %f", r, k.Index(), results[r][i], want)
			}
		}
	}
}

// TestEarlyFinisherFlushesQueuedFrames is the regression test for the
// shutdown bug where a rank that completed a collective and closed its
// node immediately could strand its final frames in the writer queues:
// the receiver-side ranks would then time out waiting for gather
// messages. Close must flush queued frames before tearing down.
func TestEarlyFinisherFlushesQueuedFrames(t *testing.T) {
	nodes, err := LocalCluster(2, Options{RecvTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Queue a burst of frames and close immediately, before the writer
	// goroutine has had a chance to drain.
	const count = 200
	payload := &comm.Floats{Vals: make([]float32, 256)}
	for i := 0; i < count; i++ {
		if err := nodes[0].Send(1, comm.MakeTag(comm.KindGather, 1, uint32(i)), payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < count; i++ {
		if _, err := nodes[1].Recv(0, comm.MakeTag(comm.KindGather, 1, uint32(i))); err != nil {
			t.Fatalf("frame %d lost after early close: %v", i, err)
		}
	}
	_ = nodes[1].Close()
}

// TestCorruptFrameDropsStream verifies the CRC path: a frame whose
// payload was corrupted on the wire must be discarded (stream dropped),
// never delivered as plausible-but-wrong data.
func TestCorruptFrameDropsStream(t *testing.T) {
	// Stand up a raw listener playing rank 1 so the test can inject a
	// corrupted frame by hand.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addrs := []string{"127.0.0.1:0", ln.Addr().String()}
	n, err := Listen(0, addrs, Options{RecvTimeout: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// Dial rank 0 pretending to be rank 1 and send one good and one
	// corrupted frame.
	conn, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hs [8]byte
	binary.LittleEndian.PutUint32(hs[:4], magic)
	binary.LittleEndian.PutUint32(hs[4:8], 1)
	if _, err := conn.Write(hs[:]); err != nil {
		t.Fatal(err)
	}
	good := comm.Payload(&comm.Floats{Vals: []float32{1, 2, 3}})
	goodTag := comm.MakeTag(comm.KindApp, 0, 1)
	var hdr [hdrSize]byte
	var seq uint64
	send := func(tag comm.Tag, data []byte, corrupt bool) {
		seq++
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(data)))
		binary.LittleEndian.PutUint64(hdr[4:12], uint64(tag))
		sum := crc32.Checksum(data, castagnoli)
		if corrupt {
			sum ^= 0xDEADBEEF
		}
		binary.LittleEndian.PutUint32(hdr[12:16], sum)
		binary.LittleEndian.PutUint64(hdr[16:24], seq)
		if _, err := conn.Write(hdr[:]); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	send(goodTag, good.AppendTo(nil), false)
	if p, err := n.Recv(1, goodTag); err != nil || p.(*comm.Floats).Vals[1] != 2 {
		t.Fatalf("good frame not delivered: %v %v", p, err)
	}
	badTag := comm.MakeTag(comm.KindApp, 0, 2)
	send(badTag, good.AppendTo(nil), true)
	if _, err := n.Recv(1, badTag); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("corrupted frame outcome: %v, want timeout (dropped)", err)
	}
}
