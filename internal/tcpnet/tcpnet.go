// Package tcpnet is the TCP sockets transport: the Go analogue of the
// paper's pure-Java-sockets networking layer (§VI-C). Every ordered pair
// of machines gets its own connection, dialed lazily with retry so
// processes can start in any order; sends are enqueued to a per-peer
// writer goroutine (asynchronous, opportunistic — §VI-B) and a reader
// goroutine per inbound connection demultiplexes frames into the same
// matched-receive mailbox the in-memory transport uses. It works both
// in-process (loopback, for tests and benchmarks) and across real
// processes (cmd/kylix-node).
package tcpnet

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"kylix/internal/comm"
)

const (
	// magic guards against cross-protocol connections.
	magic = 0x4b594c58 // "KYLX"
	// maxFrame bounds a frame to 1 GiB to fail fast on corruption.
	maxFrame = 1 << 30
)

// Options configure a Node.
type Options struct {
	// RecvTimeout bounds blocking receives (0 = forever; default 30s).
	RecvTimeout time.Duration
	// DialTimeout bounds how long to keep retrying a peer dial
	// (default 10s).
	DialTimeout time.Duration
	// Recorder observes sends for traffic accounting.
	Recorder comm.Recorder
}

func (o Options) withDefaults() Options {
	if o.RecvTimeout == 0 {
		o.RecvTimeout = 30 * time.Second
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.Recorder == nil {
		o.Recorder = comm.NopRecorder{}
	}
	return o
}

// Node is one machine of a TCP cluster. It implements comm.Endpoint.
type Node struct {
	rank  int
	addrs []string
	opts  Options
	box   *comm.Mailbox
	ln    net.Listener

	mu      sync.Mutex
	peers   map[int]*peer
	inbound []net.Conn
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup
	writers sync.WaitGroup
}

type peer struct {
	queue chan frame
	conn  net.Conn // set once dialed; closed by Node.Close to unblock writes
	err   error
}

type frame struct {
	tag  comm.Tag
	data []byte
}

// Listen creates the node for `rank` and starts accepting on
// addrs[rank]. The address may use port 0; Addr() reports the bound
// address for the caller to distribute.
func Listen(rank int, addrs []string, opts Options) (*Node, error) {
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("tcpnet: rank %d out of [0,%d)", rank, len(addrs))
	}
	opts = opts.withDefaults()
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("tcpnet: rank %d listen: %w", rank, err)
	}
	n := &Node{
		rank:  rank,
		addrs: append([]string(nil), addrs...),
		opts:  opts,
		box:   comm.NewMailbox(opts.RecvTimeout),
		ln:    ln,
		peers: make(map[int]*peer),
		done:  make(chan struct{}),
	}
	n.addrs[rank] = ln.Addr().String()
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's bound listen address.
func (n *Node) Addr() string { return n.addrs[n.rank] }

// Rank implements comm.Endpoint.
func (n *Node) Rank() int { return n.rank }

// Size implements comm.Endpoint.
func (n *Node) Size() int { return len(n.addrs) }

// Send implements comm.Endpoint: it encodes the payload and enqueues it
// on the peer's writer, never blocking on the network.
func (n *Node) Send(to int, tag comm.Tag, p comm.Payload) error {
	if to < 0 || to >= len(n.addrs) {
		return fmt.Errorf("tcpnet: send to rank %d out of [0,%d)", to, len(n.addrs))
	}
	n.opts.Recorder.Record(n.rank, to, tag, p.WireSize())
	if to == n.rank {
		// Loopback without the kernel round-trip, mirroring the paper's
		// treatment of a node's own packets.
		n.box.Deliver(n.rank, tag, p)
		return nil
	}
	pr, err := n.peerFor(to)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, p.WireSize())
	select {
	case pr.queue <- frame{tag: tag, data: p.AppendTo(buf)}:
		return nil
	default:
		// The queue is sized far beyond any protocol burst; hitting the
		// limit means the peer stopped draining for a long time.
		return fmt.Errorf("tcpnet: rank %d -> %d writer queue overflow", n.rank, to)
	}
}

// Recv implements comm.Endpoint.
func (n *Node) Recv(from int, tag comm.Tag) (comm.Payload, error) {
	return n.box.Recv(from, tag)
}

// RecvAny implements comm.Endpoint.
func (n *Node) RecvAny(froms []int, tag comm.Tag) (int, comm.Payload, error) {
	return n.box.RecvAny(froms, tag)
}

// Close shuts the node down in two phases: first it signals writers to
// flush their queued frames (a rank finishing a collective early must
// not strand its final messages) and grants them a short grace period,
// then it force-closes every connection so parked reader/writer
// goroutines unblock — without the force-close, two nodes closing in
// sequence deadlock waiting on each other's streams.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.done)
	_ = n.ln.Close()
	n.mu.Unlock()

	flushed := make(chan struct{})
	go func() {
		n.writers.Wait()
		close(flushed)
	}()
	select {
	case <-flushed:
	case <-time.After(2 * time.Second):
	}

	n.mu.Lock()
	for _, pr := range n.peers {
		if pr.conn != nil {
			_ = pr.conn.Close()
		}
	}
	for _, c := range n.inbound {
		_ = c.Close()
	}
	n.mu.Unlock()

	n.box.Close()
	n.wg.Wait()
	return nil
}

// peerFor returns (starting if necessary) the writer for a peer.
func (n *Node) peerFor(to int) (*peer, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, comm.ErrClosed
	}
	if pr, ok := n.peers[to]; ok {
		return pr, nil
	}
	pr := &peer{queue: make(chan frame, 65536)}
	n.peers[to] = pr
	n.wg.Add(1)
	n.writers.Add(1)
	go n.writeLoop(to, pr)
	return pr, nil
}

// writeLoop dials the peer (with retry, so process start order does not
// matter) and streams frames.
func (n *Node) writeLoop(to int, pr *peer) {
	defer n.wg.Done()
	defer n.writers.Done()
	conn, err := n.dial(to)
	if err != nil {
		// The peer is unreachable (dead machine). Park until shutdown,
		// silently dropping traffic; the replication layer is
		// responsible for masking dead peers.
		pr.err = err
		<-n.done
		return
	}
	defer conn.Close()
	n.mu.Lock()
	if !n.closed {
		// Register for force-close; when Close already ran, this conn is
		// ours alone to flush and close, and the done branch below fires
		// immediately.
		pr.conn = conn
	}
	n.mu.Unlock()
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(n.rank))
	if _, err := conn.Write(hdr[:8]); err != nil {
		pr.err = err
		<-n.done
		return
	}
	for {
		select {
		case <-n.done:
			// Graceful shutdown: flush frames already queued (a rank
			// that finishes a collective early must not strand its last
			// messages), then stop. The deadline bounds the flush if the
			// peer has stopped reading.
			_ = conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
			for {
				select {
				case f := <-pr.queue:
					if !writeFrame(conn, &hdr, f) {
						return
					}
				default:
					return
				}
			}
		case f := <-pr.queue:
			if !writeFrame(conn, &hdr, f) {
				pr.err = errWrite
				<-n.done
				return
			}
		}
	}
}

// errWrite marks a failed stream; subsequent frames to the peer drop.
var errWrite = fmt.Errorf("tcpnet: stream write failed")

// writeFrame sends one length-prefixed frame with a CRC32-C payload
// checksum; false on stream failure. The checksum guards against the
// payload corruption the paper flags as a risk of large message counts
// (§II-A2): a corrupted frame is detected and the stream dropped rather
// than silently reducing wrong values.
func writeFrame(conn net.Conn, hdr *[16]byte, f frame) bool {
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(f.data)))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(f.tag))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(f.data, castagnoli))
	if _, err := conn.Write(hdr[:16]); err != nil {
		return false
	}
	_, err := conn.Write(f.data)
	return err == nil
}

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// dial connects to a peer, retrying with backoff until DialTimeout.
func (n *Node) dial(to int) (net.Conn, error) {
	deadline := time.Now().Add(n.opts.DialTimeout)
	backoff := 5 * time.Millisecond
	for {
		conn, err := net.DialTimeout("tcp", n.addrs[to], time.Until(deadline))
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				_ = tc.SetNoDelay(true)
			}
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("tcpnet: rank %d dial %d (%s): %w", n.rank, to, n.addrs[to], err)
		}
		time.Sleep(backoff)
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}

// acceptLoop admits inbound connections and spawns a reader per peer.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.inbound = append(n.inbound, conn)
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop validates the handshake and demuxes frames into the mailbox.
func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	var hdr [16]byte
	if _, err := io.ReadFull(conn, hdr[:8]); err != nil {
		return
	}
	if binary.LittleEndian.Uint32(hdr[:4]) != magic {
		return
	}
	from := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if from < 0 || from >= len(n.addrs) {
		return
	}
	for {
		if _, err := io.ReadFull(conn, hdr[:16]); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(hdr[:4])
		if size > maxFrame {
			return
		}
		tag := comm.Tag(binary.LittleEndian.Uint64(hdr[4:12]))
		sum := binary.LittleEndian.Uint32(hdr[12:16])
		data := make([]byte, size)
		if _, err := io.ReadFull(conn, data); err != nil {
			return
		}
		if crc32.Checksum(data, castagnoli) != sum {
			// Corrupted frame: drop the stream; the replication layer
			// (or the receive timeout) surfaces the loss.
			return
		}
		p, err := comm.DecodePayload(data)
		if err != nil {
			return
		}
		n.box.Deliver(from, tag, p)
	}
}

// LocalCluster spins up m nodes on loopback ephemeral ports within this
// process and returns them fully wired. It is the harness used by tests,
// benchmarks and the quickstart example; cross-process deployments use
// Listen directly with a shared host file.
func LocalCluster(m int, opts Options) ([]*Node, error) {
	// Bind every listener first so the address table is complete before
	// anyone dials.
	nodes := make([]*Node, m)
	addrs := make([]string, m)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	for i := 0; i < m; i++ {
		node, err := Listen(i, addrs, opts)
		if err != nil {
			for _, prev := range nodes[:i] {
				_ = prev.Close()
			}
			return nil, err
		}
		nodes[i] = node
		// Propagate the bound address to the remaining nodes' tables.
		addrs[i] = node.Addr()
		for j := 0; j < i; j++ {
			nodes[j].addrs[i] = node.Addr()
		}
	}
	return nodes, nil
}

// CloseAll closes every node of a local cluster.
func CloseAll(nodes []*Node) {
	for _, n := range nodes {
		if n != nil {
			_ = n.Close()
		}
	}
}
