// Package tcpnet is the TCP sockets transport: the Go analogue of the
// paper's pure-Java-sockets networking layer (§VI-C). Every ordered pair
// of machines gets its own connection, dialed lazily with retry so
// processes can start in any order; sends are enqueued to a per-peer
// writer goroutine (asynchronous, opportunistic — §VI-B) and a reader
// goroutine per inbound connection demultiplexes frames into the same
// matched-receive mailbox the in-memory transport uses. It works both
// in-process (loopback, for tests and benchmarks) and across real
// processes (cmd/kylix-node).
//
// The transport survives mid-stream connection loss: every frame
// carries a monotonic per-peer sequence number and the writer keeps a
// bounded resend ring. When a stream breaks (write error, corrupted
// frame dropped by the receiver, transient network fault) the writer
// reconnects with exponential backoff plus jitter and replays the ring;
// the receiver deduplicates by sequence number, so redelivery is
// idempotent and a fault injected mid-round loses nothing. Only when
// the reconnect budget is exhausted is the peer declared dead: the
// error is recorded and surfaced on Close (and on Send with FailFast),
// while frames keep draining silently — the §V replication layer, not
// the transport, is responsible for masking dead machines.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"kylix/internal/comm"
	"kylix/internal/obs"
)

const (
	// magic guards against cross-protocol connections.
	magic = 0x4b594c58 // "KYLX"
	// maxFrame bounds a frame to 1 GiB to fail fast on corruption.
	maxFrame = 1 << 30
	// hdrSize is the per-frame header: size(4) tag(8) crc(4) seq(8).
	hdrSize = 24
)

// Options configure a Node.
type Options struct {
	// RecvTimeout bounds blocking receives (0 = forever; default 30s).
	RecvTimeout time.Duration
	// DialTimeout bounds how long to keep retrying a peer's first dial
	// (default 10s).
	DialTimeout time.Duration
	// ReconnectTimeout bounds how long a broken peer stream retries
	// reconnecting (with exponential backoff + jitter) before the peer
	// is declared dead (default 15s).
	ReconnectTimeout time.Duration
	// MaxReconnectBackoff caps the exponential backoff between redial
	// attempts (default 400ms). A lower ceiling makes a churn-heavy
	// cluster re-establish streams faster at the cost of more dial
	// traffic against peers that are gone for good; the attempt count
	// per outage is surfaced via Metrics.ReconnectRetries either way.
	MaxReconnectBackoff time.Duration
	// ResendBuffer is how many recent frames each peer stream retains
	// for replay after a reconnect (default 4096). Frames older than
	// the ring that were lost in flight are unrecoverable — the ring
	// bounds memory, and is sized far beyond the in-flight window a
	// broken socket can lose.
	ResendBuffer int
	// MaxBatchBytes bounds the payload bytes of one coalesced write
	// batch (default 1 MiB): the writer drains its queue and gathers
	// the pending frames into a single writev, closing the batch at the
	// first frame that reaches the cap. The small sparse pieces of a
	// deep butterfly layer thus share syscalls and packets — the Fig 2
	// packet-size floor enforced at the sender. The cap is a byte budget,
	// so it needs no retuning when value quantization (core.Options.Quant)
	// shrinks each frame 2-4x: smaller frames simply pack more per batch,
	// until maxBatchFrames (not bytes) closes it. 1 effectively disables
	// coalescing (every frame still leaves in one writev instead of two
	// sequential writes).
	MaxBatchBytes int
	// EnableNagle leaves the kernel's Nagle algorithm on instead of
	// setting TCP_NODELAY. The default (Nagle off) is deliberate: flush
	// policy belongs to the batching writer, which already coalesces
	// everything queued in a protocol burst, and the burst's last small
	// packet must not wait on a delayed ACK.
	EnableNagle bool
	// FailFast makes Send return a peer's recorded stream error instead
	// of silently dropping. Leave it off under replication (§V requires
	// survivors to keep streaming to dead peers without erroring); turn
	// it on for unreplicated deployments that want prompt failure.
	FailFast bool
	// Recorder observes sends for traffic accounting.
	Recorder comm.Recorder
	// RecvObserver, when set, builds the per-rank receive observer that
	// is installed on the node's mailbox (the observability layer's
	// receive hook). May return nil for "no observation".
	RecvObserver func(rank int) comm.RecvObserver
	// Metrics receives the transport-level counters (reconnects, resend
	// ring occupancy, dedup hits). Nil gets live but unregistered
	// metrics, so the stream machinery increments unconditionally.
	Metrics *obs.TransportMetrics
}

func (o Options) withDefaults() Options {
	if o.RecvTimeout == 0 {
		o.RecvTimeout = 30 * time.Second
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.ReconnectTimeout == 0 {
		o.ReconnectTimeout = 15 * time.Second
	}
	if o.MaxReconnectBackoff == 0 {
		o.MaxReconnectBackoff = 400 * time.Millisecond
	}
	if o.ResendBuffer == 0 {
		o.ResendBuffer = 4096
	}
	if o.MaxBatchBytes == 0 {
		o.MaxBatchBytes = 1 << 20
	}
	if o.Recorder == nil {
		o.Recorder = comm.NopRecorder{}
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewTransportMetrics(nil)
	}
	return o
}

// Node is one machine of a TCP cluster. It implements comm.Endpoint.
type Node struct {
	rank  int
	addrs []string
	opts  Options
	box   *comm.Mailbox
	ln    net.Listener

	// record is false when the recorder is a NopRecorder, letting Send
	// skip WireSize (loopback sends never serialize otherwise); rawRec
	// is set when the recorder also accounts uncompressed sizes.
	record bool
	rawRec comm.RawRecorder

	mu      sync.Mutex
	peers   map[int]*peer
	inbound []net.Conn
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup
	writers sync.WaitGroup

	// recvSeq tracks the highest frame sequence delivered per sender so
	// replayed frames after a sender's reconnect are dropped exactly
	// once each. Guarded by recvMu (held across Deliver so competing
	// old/new connections from one sender cannot interleave).
	recvMu  sync.Mutex
	recvSeq []uint64
}

type peer struct {
	queue chan frame
	conn  net.Conn // set once dialed; closed by Node.Close to unblock writes

	mu  sync.Mutex
	err error // sticky: set when the stream is terminally lost
}

// fail records the first terminal stream error; later Sends (FailFast)
// and Close surface it.
func (p *peer) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

func (p *peer) lastErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// frame is one queued send, not yet encoded. Encoding happens on the
// peer's writer goroutine, not the sender's: the protocol goroutine
// returns from Send immediately and every peer stream encodes its own
// traffic in parallel, while the writer recycles encode buffers evicted
// from the resend ring (steady-state sends stop allocating once the
// ring has turned over).
type frame struct {
	tag comm.Tag
	p   comm.Payload
}

// stamped is an encoded frame with its stream sequence number, as kept
// in the resend ring.
type stamped struct {
	seq  uint64
	tag  comm.Tag
	data []byte
}

// ring is the bounded per-peer resend buffer: the most recent frames in
// send order, replayed after a reconnect.
type ring struct {
	buf   []stamped
	start int
	n     int
}

func newRing(capacity int) *ring { return &ring{buf: make([]stamped, capacity)} }

// push appends a frame, returning the encode buffer of the frame it
// evicted (nil while the ring is filling). An evicted frame can never
// be replayed again, so its buffer is free for reuse.
func (r *ring) push(s stamped) []byte {
	if r.n == len(r.buf) {
		evicted := r.buf[r.start].data
		r.buf[r.start] = s
		r.start = (r.start + 1) % len(r.buf)
		return evicted
	}
	r.buf[(r.start+r.n)%len(r.buf)] = s
	r.n++
	return nil
}

// each visits buffered frames oldest-first; stops on false.
func (r *ring) each(fn func(stamped) bool) bool {
	for i := 0; i < r.n; i++ {
		if !fn(r.buf[(r.start+i)%len(r.buf)]) {
			return false
		}
	}
	return true
}

// maxBatchFrames caps a coalesced batch's frame count. Two iovecs per
// frame (header, payload) keeps the largest batch at 512 iovecs, well
// under the kernel's IOV_MAX of 1024; the batcher additionally clamps
// to the resend ring's capacity, because a frame evicted from the ring
// recycles its encode buffer and an eviction must therefore never land
// on a frame still staged in the current batch (possible only if one
// batch outgrew the whole ring). With quantized value payloads (2-4x
// smaller frames) this count cap, not MaxBatchBytes, is what usually
// closes a batch — still one writev per burst, just a fuller one.
const maxBatchFrames = 256

// batcher coalesces encoded frames into gather-write batches: one
// writev per drained queue burst instead of two write syscalls per
// frame. iov and the header arena are sized once — the arena must
// never grow mid-batch, since staged iovecs point into it.
type batcher struct {
	iov      net.Buffers
	hdrs     []byte
	nf       int
	bytes    int
	maxF     int
	maxBytes int
	metrics  *obs.TransportMetrics
}

func newBatcher(ringCap, maxBytes int, m *obs.TransportMetrics) *batcher {
	maxF := maxBatchFrames
	if ringCap < maxF {
		maxF = ringCap
	}
	if maxF < 1 {
		maxF = 1
	}
	return &batcher{
		iov:      make(net.Buffers, 2*maxF),
		hdrs:     make([]byte, maxF*hdrSize),
		maxF:     maxF,
		maxBytes: maxBytes,
		metrics:  m,
	}
}

// stage appends one encoded frame to the open batch: its header is
// written into the arena slot and both slices join the iovec list.
//
//kylix:hotpath
func (b *batcher) stage(s stamped) {
	h := b.hdrs[b.nf*hdrSize : (b.nf+1)*hdrSize]
	putHeader(h, s)
	b.iov[2*b.nf] = h
	b.iov[2*b.nf+1] = s.data
	b.nf++
	b.bytes += len(s.data)
}

// full reports whether the batch must flush before staging more.
//
//kylix:hotpath
func (b *batcher) full() bool { return b.nf >= b.maxF || b.bytes >= b.maxBytes }

// flush gather-writes the staged frames in one writev and resets the
// batch; false on stream failure (the frames stay in the resend ring
// for the reconnect replay).
//
//kylix:hotpath
func (b *batcher) flush(conn net.Conn) bool {
	if b.nf == 0 {
		return true
	}
	// WriteTo consumes its receiver (advancing the slice as the kernel
	// accepts iovecs), so hand it a copy of the header; the backing
	// array stays ours to refill.
	bufs := b.iov[:2*b.nf]
	b.metrics.WritevCalls.Inc()
	b.metrics.FramesSent.Add(int64(b.nf))
	if b.nf > 1 {
		b.metrics.FramesBatched.Add(int64(b.nf))
	}
	b.nf, b.bytes = 0, 0
	_, err := bufs.WriteTo(conn)
	return err == nil
}

// Listen creates the node for `rank` and starts accepting on
// addrs[rank]. The address may use port 0; Addr() reports the bound
// address for the caller to distribute.
//
//kylix:owned
func Listen(rank int, addrs []string, opts Options) (*Node, error) {
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("tcpnet: rank %d out of [0,%d)", rank, len(addrs))
	}
	opts = opts.withDefaults()
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("tcpnet: rank %d listen: %w", rank, err)
	}
	n := &Node{
		rank:    rank,
		addrs:   append([]string(nil), addrs...),
		opts:    opts,
		box:     comm.NewMailbox(opts.RecvTimeout),
		ln:      ln,
		peers:   make(map[int]*peer),
		done:    make(chan struct{}),
		recvSeq: make([]uint64, len(addrs)),
	}
	n.addrs[rank] = ln.Addr().String()
	if _, nop := opts.Recorder.(comm.NopRecorder); !nop {
		n.record = true
		n.rawRec, _ = opts.Recorder.(comm.RawRecorder)
	}
	if opts.RecvObserver != nil {
		if ro := opts.RecvObserver(rank); ro != nil {
			n.box.SetRecvObserver(ro)
		}
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's bound listen address.
func (n *Node) Addr() string { return n.addrs[n.rank] }

// Rank implements comm.Endpoint.
func (n *Node) Rank() int { return n.rank }

// Size implements comm.Endpoint.
func (n *Node) Size() int { return len(n.addrs) }

// Send implements comm.Endpoint: it encodes the payload and enqueues it
// on the peer's writer, never blocking on the network. With FailFast, a
// peer whose stream was terminally lost returns its recorded error;
// otherwise dead-peer traffic drops silently (replication masks it) and
// the error surfaces on Close.
func (n *Node) Send(to int, tag comm.Tag, p comm.Payload) error {
	if to < 0 || to >= len(n.addrs) {
		return fmt.Errorf("tcpnet: send to rank %d out of [0,%d)", to, len(n.addrs))
	}
	if n.record {
		if n.rawRec != nil {
			n.rawRec.RecordRaw(n.rank, to, tag, p.WireSize(), comm.RawWireSize(p))
		} else {
			n.opts.Recorder.Record(n.rank, to, tag, p.WireSize())
		}
	}
	if to == n.rank {
		// Loopback without the kernel round-trip, mirroring the paper's
		// treatment of a node's own packets.
		n.box.Deliver(n.rank, tag, p)
		return nil
	}
	pr, err := n.peerFor(to)
	if err != nil {
		return err
	}
	if n.opts.FailFast {
		if perr := pr.lastErr(); perr != nil {
			return perr
		}
	}
	select {
	case pr.queue <- frame{tag: tag, p: p}:
		return nil
	default:
		// The queue is sized far beyond any protocol burst; hitting the
		// limit means the peer stopped draining for a long time.
		return fmt.Errorf("tcpnet: rank %d -> %d writer queue overflow", n.rank, to)
	}
}

// Recv implements comm.Endpoint.
func (n *Node) Recv(from int, tag comm.Tag) (comm.Payload, error) {
	return n.box.Recv(from, tag)
}

// RecvAny implements comm.Endpoint.
func (n *Node) RecvAny(froms []int, tag comm.Tag) (int, comm.Payload, error) {
	return n.box.RecvAny(froms, tag)
}

// RecvGroup implements comm.Endpoint.
func (n *Node) RecvGroup(groups [][]int, tag comm.Tag) (int, comm.Payload, error) {
	return n.box.RecvGroup(groups, tag)
}

// CloseStream tears down one stream's namespace on this node: queued
// messages dropped, pending-sender index purged, blocked receives
// failed with ErrStreamClosed. The resend ring is deliberately left
// alone — it is seq-keyed per peer, and a reconnect replay may carry
// frames of a closed stream; the mailbox's dead-stream mark drops
// those on delivery, which keeps replay simple and loss-free for every
// surviving stream.
func (n *Node) CloseStream(id comm.StreamID) { n.box.CloseStream(id) }

// StreamPending reports one stream's queued, undelivered messages on
// this node (tests and leak diagnostics).
func (n *Node) StreamPending(id comm.StreamID) int { return n.box.StreamPending(id) }

// IndexedTags reports the node's live pending-sender index entries
// (tests and leak diagnostics).
func (n *Node) IndexedTags() int { return n.box.IndexedTags() }

// Close shuts the node down in two phases: first it signals writers to
// flush their queued frames (a rank finishing a collective early must
// not strand its final messages) and grants them a short grace period,
// then it force-closes every connection so parked reader/writer
// goroutines unblock — without the force-close, two nodes closing in
// sequence deadlock waiting on each other's streams. It returns the
// join of the peers' terminal stream errors (nil when every stream
// stayed healthy), so a silently-degraded run is visible at teardown.
//
//kylix:owned
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.done)
	_ = n.ln.Close()
	n.mu.Unlock()

	// Buffered so the send never blocks: if the grace period expires
	// first, the waiter still parks its result and exits as soon as the
	// force-closed writers drain (n.wg.Wait below subsumes them).
	flushed := make(chan struct{}, 1)
	go func() {
		n.writers.Wait()
		flushed <- struct{}{}
	}()
	select {
	case <-flushed:
	case <-time.After(2 * time.Second):
	}

	n.mu.Lock()
	var errs []error
	for _, pr := range n.peers {
		if pr.conn != nil {
			_ = pr.conn.Close()
		}
		if err := pr.lastErr(); err != nil {
			errs = append(errs, err)
		}
	}
	for _, c := range n.inbound {
		_ = c.Close()
	}
	n.mu.Unlock()

	n.box.Close()
	n.wg.Wait()
	return errors.Join(errs...)
}

// peerFor returns (starting if necessary) the writer for a peer.
//
//kylix:owned
func (n *Node) peerFor(to int) (*peer, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, comm.ErrClosed
	}
	if pr, ok := n.peers[to]; ok {
		return pr, nil
	}
	pr := &peer{queue: make(chan frame, 65536)}
	n.peers[to] = pr
	n.wg.Add(1)
	n.writers.Add(1)
	go n.writeLoop(to, pr)
	return pr, nil
}

// writeLoop owns one peer stream: it stamps frames with monotonic
// sequence numbers, keeps the resend ring, and transparently redials
// (backoff + jitter) and replays the ring whenever the stream breaks.
func (n *Node) writeLoop(to int, pr *peer) {
	defer n.wg.Done()
	defer n.writers.Done()
	var (
		hdr    [hdrSize]byte
		seq    uint64
		buffer = newRing(n.opts.ResendBuffer)
		conn   net.Conn
		dialed bool     // first connection established at least once
		spare  [][]byte // encode buffers reclaimed from ring evictions
		batch  = newBatcher(n.opts.ResendBuffer, n.opts.MaxBatchBytes, n.opts.Metrics)
	)
	// encode stamps and wire-encodes a queued frame, reusing a reclaimed
	// buffer when one is available and banking the ring's eviction.
	encode := func(f frame) stamped {
		seq++
		var buf []byte
		if len(spare) > 0 {
			buf = spare[len(spare)-1][:0]
			spare = spare[:len(spare)-1]
		}
		s := stamped{seq: seq, tag: f.tag, data: f.p.AppendTo(buf)}
		if evicted := buffer.push(s); evicted != nil && len(spare) < 64 {
			spare = append(spare, evicted)
		}
		n.opts.Metrics.ResendRingHigh.SetMax(int64(buffer.n))
		return s
	}
	// Jitter source for reconnect backoff. Timing only — protocol
	// decisions never depend on it.
	rng := newJitterRNG()

	disconnect := func() {
		if conn == nil {
			return
		}
		_ = conn.Close()
		n.mu.Lock()
		if pr.conn == conn {
			pr.conn = nil
		}
		n.mu.Unlock()
		conn = nil
	}
	defer disconnect()

	// connect dials the peer until the budget expires, handshakes, and
	// replays the resend ring (receiver-side dedup makes the replay
	// idempotent). False means budget exhausted or shutting down.
	connect := func(budget time.Duration) bool {
		disconnect()
		deadline := time.Now().Add(budget)
		backoff := 5 * time.Millisecond
		attempts := int64(0)
		for {
			select {
			case <-n.done:
				return false
			default:
			}
			// Check the budget before dialing: time.Until(deadline) at or
			// past the deadline would hand DialTimeout a zero/negative
			// timeout, which means "no timeout" — a spurious unbounded dial
			// instead of a clean budget-exhausted return.
			remain := time.Until(deadline)
			if remain <= 0 {
				n.opts.Metrics.ReconnectRetries.Observe(attempts)
				return false
			}
			n.opts.Metrics.ReconnectAttempts.Inc()
			attempts++
			c, err := net.DialTimeout("tcp", n.addrs[to], remain)
			if err == nil {
				if tc, ok := c.(*net.TCPConn); ok {
					_ = tc.SetNoDelay(!n.opts.EnableNagle)
				}
				binary.LittleEndian.PutUint32(hdr[:4], magic)
				binary.LittleEndian.PutUint32(hdr[4:8], uint32(n.rank))
				if _, werr := c.Write(hdr[:8]); werr == nil &&
					buffer.each(func(s stamped) bool { return writeFrame(c, &hdr, s) }) {
					n.mu.Lock()
					if !n.closed {
						pr.conn = c
					}
					n.mu.Unlock()
					conn = c
					dialed = true
					n.opts.Metrics.Reconnects.Inc()
					n.opts.Metrics.ReconnectRetries.Observe(attempts)
					return true
				}
				_ = c.Close()
			}
			if time.Now().After(deadline) {
				n.opts.Metrics.ReconnectRetries.Observe(attempts)
				return false
			}
			// Exponential backoff with jitter so a rebooting peer is not
			// hammered in lockstep by every survivor, capped so a long
			// outage keeps probing at a steady rate.
			sleep := backoff/2 + time.Duration(rng.Int63n(int64(backoff)))
			select {
			case <-n.done:
				return false
			case <-time.After(sleep):
			}
			if backoff < n.opts.MaxReconnectBackoff {
				backoff *= 2
				if backoff > n.opts.MaxReconnectBackoff {
					backoff = n.opts.MaxReconnectBackoff
				}
			}
		}
	}

	// shutdownFlush drains frames still queued at Close time (a rank
	// that finishes a collective early must not strand its last
	// messages). If the stream was never established — Close can win the
	// race against the lazy first dial — it makes one best-effort dial
	// and replays the ring first. The write deadline bounds the flush if
	// the peer has stopped reading; no reconnects during shutdown.
	shutdownFlush := func() {
		if conn == nil {
			c, err := net.DialTimeout("tcp", n.addrs[to], time.Second)
			if err != nil {
				return
			}
			if tc, ok := c.(*net.TCPConn); ok {
				_ = tc.SetNoDelay(!n.opts.EnableNagle)
			}
			_ = c.SetWriteDeadline(time.Now().Add(2 * time.Second))
			binary.LittleEndian.PutUint32(hdr[:4], magic)
			binary.LittleEndian.PutUint32(hdr[4:8], uint32(n.rank))
			conn = c // the deferred disconnect closes it
			if _, werr := c.Write(hdr[:8]); werr != nil {
				return
			}
			if !buffer.each(func(s stamped) bool { return writeFrame(c, &hdr, s) }) {
				return
			}
		}
		_ = conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		for {
			select {
			case f := <-pr.queue:
				if !writeFrame(conn, &hdr, encode(f)) {
					return
				}
			default:
				return
			}
		}
	}

	for {
		select {
		case <-n.done:
			shutdownFlush()
			return
		case f := <-pr.queue:
			// Coalesce: stage the frame in hand, then drain whatever the
			// protocol burst already queued behind it — a scatter or
			// gather layer enqueues all its pieces before the first
			// receive can complete, so the natural flush point (the
			// queue running dry) is the layer boundary. Each stage
			// encodes into the resend ring first, so a mid-batch stream
			// failure loses nothing: the reconnect replays everything.
			batch.stage(encode(f))
		drain:
			for !batch.full() {
				select {
				case f2 := <-pr.queue:
					batch.stage(encode(f2))
				default:
					break drain
				}
			}
			if conn != nil && batch.flush(conn) {
				continue
			}
			batch.nf, batch.bytes = 0, 0 // staged frames live on in the ring
			// Stream broken (or not yet dialed): rebuild it. connect
			// replays the ring, which includes this batch's frames.
			budget := n.opts.ReconnectTimeout
			if !dialed {
				budget = n.opts.DialTimeout
			}
			if !connect(budget) {
				select {
				case <-n.done:
					shutdownFlush() // clean shutdown, not a peer failure
					return
				default:
				}
				// The peer is unreachable (dead machine). Record the
				// loss and park until shutdown, silently dropping
				// traffic; the replication layer is responsible for
				// masking dead peers.
				n.opts.Metrics.StreamsLost.Inc()
				pr.fail(fmt.Errorf("tcpnet: rank %d -> %d stream lost (%s): reconnect budget %v exhausted",
					n.rank, to, n.addrs[to], budget))
				<-n.done
				return
			}
		}
	}
}

// newJitterRNG builds the backoff jitter source for one writer
// incarnation, seeded from the process-global entropy-seeded generator.
// A fixed (rank, peer) seed would make every restart of the process
// replay the identical "jitter" sequence, so the survivors of a peer
// reboot retry in lockstep run after run — exactly the thundering herd
// jitter exists to break. Protocol decisions never depend on this.
func newJitterRNG() *rand.Rand {
	return rand.New(rand.NewSource(rand.Int63()))
}

// putHeader encodes a frame header — size, tag, CRC32-C payload
// checksum, stream sequence number — into a hdrSize-byte slot. The
// checksum guards against the payload corruption the paper flags as a
// risk of large message counts (§II-A2): a corrupted frame is detected
// and the stream dropped — which triggers the sender's
// reconnect-and-replay instead of silent loss.
//
//kylix:hotpath
func putHeader(h []byte, s stamped) {
	binary.LittleEndian.PutUint32(h[:4], uint32(len(s.data)))
	binary.LittleEndian.PutUint64(h[4:12], uint64(s.tag))
	binary.LittleEndian.PutUint32(h[12:16], crc32.Checksum(s.data, castagnoli))
	binary.LittleEndian.PutUint64(h[16:24], s.seq)
}

// writeFrame sends one frame with two sequential writes. It remains
// the cold-path sender (ring replay after a reconnect, shutdown
// drain); live traffic goes through the batcher's gather writes.
func writeFrame(conn net.Conn, hdr *[hdrSize]byte, s stamped) bool {
	putHeader(hdr[:], s)
	if _, err := conn.Write(hdr[:]); err != nil {
		return false
	}
	_, err := conn.Write(s.data)
	return err == nil
}

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// acceptLoop admits inbound connections and spawns a reader per peer.
//
//kylix:owned
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.inbound = append(n.inbound, conn)
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop validates the handshake and demuxes frames into the mailbox,
// dropping frames already delivered on a previous connection from the
// same sender (sequence-number dedup makes reconnect replays
// idempotent). Sequence 0 marks an unsequenced frame (never deduped),
// kept for protocol-version tolerance in hand-rolled test senders.
func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	var hdr [hdrSize]byte
	if _, err := io.ReadFull(conn, hdr[:8]); err != nil {
		return
	}
	if binary.LittleEndian.Uint32(hdr[:4]) != magic {
		return
	}
	from := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if from < 0 || from >= len(n.addrs) {
		return
	}
	// buf is reused across frames (grow-only): DecodePayload copies all
	// referenced bytes into the typed payload, so the raw frame can be
	// overwritten by the next read.
	var buf []byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(hdr[:4])
		if size > maxFrame {
			return
		}
		tag := comm.Tag(binary.LittleEndian.Uint64(hdr[4:12]))
		sum := binary.LittleEndian.Uint32(hdr[12:16])
		seq := binary.LittleEndian.Uint64(hdr[16:24])
		if uint32(cap(buf)) < size {
			buf = make([]byte, size)
		}
		data := buf[:size]
		if _, err := io.ReadFull(conn, data); err != nil {
			return
		}
		if crc32.Checksum(data, castagnoli) != sum {
			// Corrupted frame: drop the stream. Closing the connection
			// surfaces a write error at the sender, whose reconnect
			// replays the resend ring — the frame is redelivered intact
			// instead of silently lost.
			return
		}
		p, err := comm.DecodePayload(data)
		if err != nil {
			return
		}
		n.recvMu.Lock()
		if seq != 0 && seq <= n.recvSeq[from] {
			n.recvMu.Unlock()
			n.opts.Metrics.DedupHits.Inc()
			continue // duplicate redelivery from a replayed ring
		}
		if seq != 0 {
			n.recvSeq[from] = seq
		}
		n.box.Deliver(from, tag, p)
		n.recvMu.Unlock()
	}
}

// LocalCluster spins up m nodes on loopback ephemeral ports within this
// process and returns them fully wired. It is the harness used by tests,
// benchmarks and the quickstart example; cross-process deployments use
// Listen directly with a shared host file.
func LocalCluster(m int, opts Options) ([]*Node, error) {
	// Bind every listener first so the address table is complete before
	// anyone dials.
	nodes := make([]*Node, m)
	addrs := make([]string, m)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	for i := 0; i < m; i++ {
		node, err := Listen(i, addrs, opts)
		if err != nil {
			for _, prev := range nodes[:i] {
				_ = prev.Close()
			}
			return nil, err
		}
		nodes[i] = node
		// Propagate the bound address to the remaining nodes' tables.
		addrs[i] = node.Addr()
		for j := 0; j < i; j++ {
			nodes[j].addrs[i] = node.Addr()
		}
	}
	return nodes, nil
}

// CloseAll closes every node of a local cluster and returns the join
// of their terminal stream errors, so a silently-degraded run is
// visible at teardown.
func CloseAll(nodes []*Node) error {
	var errs []error
	for _, n := range nodes {
		if n != nil {
			if err := n.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}
