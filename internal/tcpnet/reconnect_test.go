package tcpnet

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"kylix/internal/comm"
	"kylix/internal/obs"
)

// flakyProxy sits between a sender and a real node's listener,
// forwarding bytes until told to sever every live connection — the
// mid-stream fault the reconnect/replay machinery must absorb.
type flakyProxy struct {
	ln      net.Listener
	backend string

	mu    sync.Mutex
	conns []net.Conn
	down  bool
}

func newFlakyProxy(t *testing.T, backend string) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{ln: ln, backend: backend}
	go p.acceptLoop()
	t.Cleanup(p.close)
	return p
}

func (p *flakyProxy) addr() string { return p.ln.Addr().String() }

func (p *flakyProxy) acceptLoop() {
	for {
		in, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.down {
			p.mu.Unlock()
			_ = in.Close()
			continue
		}
		out, err := net.Dial("tcp", p.backend)
		if err != nil {
			p.mu.Unlock()
			_ = in.Close()
			continue
		}
		p.conns = append(p.conns, in, out)
		p.mu.Unlock()
		go func() { _, _ = io.Copy(out, in); _ = out.Close() }()
		go func() { _, _ = io.Copy(in, out); _ = in.Close() }()
	}
}

// breakNow severs every live connection. New connections keep working.
func (p *flakyProxy) breakNow() {
	p.mu.Lock()
	for _, c := range p.conns {
		_ = c.Close()
	}
	p.conns = nil
	p.mu.Unlock()
}

func (p *flakyProxy) close() {
	p.mu.Lock()
	p.down = true
	p.mu.Unlock()
	_ = p.ln.Close()
	p.breakNow()
}

// TestReconnectRedeliversAcrossBreaks is the transport-hardening
// centrepiece: a stream severed twice mid-burst must lose nothing and
// duplicate nothing — the writer reconnects and replays its ring, the
// receiver dedups by sequence number.
func TestReconnectRedeliversAcrossBreaks(t *testing.T) {
	recv, err := Listen(1, []string{"127.0.0.1:0", "127.0.0.1:0"}, Options{RecvTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	proxy := newFlakyProxy(t, recv.Addr())
	send, err := Listen(0, []string{"127.0.0.1:0", proxy.addr()}, Options{
		RecvTimeout:      10 * time.Second,
		ReconnectTimeout: 8 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	const total = 150
	for i := 0; i < total; i++ {
		tag := comm.MakeTag(comm.KindApp, 0, uint32(i))
		if err := send.Send(1, tag, &comm.Floats{Vals: []float32{float32(i)}}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if i == total/3 || i == 2*total/3 {
			// Let some frames reach the wire, then cut it mid-burst.
			time.Sleep(10 * time.Millisecond)
			proxy.breakNow()
			time.Sleep(20 * time.Millisecond) // let the RST land so the next write fails
		}
	}

	for i := 0; i < total; i++ {
		tag := comm.MakeTag(comm.KindApp, 0, uint32(i))
		p, err := recv.Recv(0, tag)
		if err != nil {
			t.Fatalf("frame %d never redelivered: %v", i, err)
		}
		if got := p.(*comm.Floats).Vals[0]; got != float32(i) {
			t.Fatalf("frame %d: payload %v", i, got)
		}
	}
	// Replay duplicates must have been deduped before the mailbox, and
	// any straggler replay is <= the max delivered seq, so nothing else
	// may show up.
	time.Sleep(50 * time.Millisecond)
	if n := recv.box.Pending(); n != 0 {
		t.Fatalf("%d duplicate frames reached the mailbox", n)
	}
}

// TestReceiverDedupBySequence drives the receiver directly with a
// hand-rolled stream: replayed sequence numbers are dropped, seq 0
// (unsequenced) frames always pass.
func TestReceiverDedupBySequence(t *testing.T) {
	recv, err := Listen(1, []string{"127.0.0.1:0", "127.0.0.1:0"}, Options{RecvTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	conn, err := net.Dial("tcp", recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var hs [8]byte
	binary.LittleEndian.PutUint32(hs[:4], magic)
	binary.LittleEndian.PutUint32(hs[4:8], 0)
	if _, err := conn.Write(hs[:]); err != nil {
		t.Fatal(err)
	}
	writeSeq := func(seq uint64, tagSeq uint32, val float32) {
		t.Helper()
		data := (&comm.Floats{Vals: []float32{val}}).AppendTo(nil)
		var hdr [hdrSize]byte
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(data)))
		binary.LittleEndian.PutUint64(hdr[4:12], uint64(comm.MakeTag(comm.KindApp, 0, tagSeq)))
		binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(data, castagnoli))
		binary.LittleEndian.PutUint64(hdr[16:24], seq)
		if _, err := conn.Write(hdr[:]); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(data); err != nil {
			t.Fatal(err)
		}
	}

	writeSeq(1, 0, 10) // delivered
	writeSeq(1, 0, 11) // replay of seq 1: dropped
	writeSeq(2, 1, 12) // delivered
	writeSeq(2, 1, 13) // replay of seq 2: dropped
	writeSeq(0, 2, 14) // unsequenced: delivered
	writeSeq(0, 2, 15) // unsequenced: delivered again

	if p, err := recv.Recv(0, comm.MakeTag(comm.KindApp, 0, 0)); err != nil || p.(*comm.Floats).Vals[0] != 10 {
		t.Fatalf("seq 1 first copy: %v %v", p, err)
	}
	if p, err := recv.Recv(0, comm.MakeTag(comm.KindApp, 0, 1)); err != nil || p.(*comm.Floats).Vals[0] != 12 {
		t.Fatalf("seq 2 first copy: %v %v", p, err)
	}
	if p, err := recv.Recv(0, comm.MakeTag(comm.KindApp, 0, 2)); err != nil || p.(*comm.Floats).Vals[0] != 14 {
		t.Fatalf("unsequenced 1st: %v %v", p, err)
	}
	if p, err := recv.Recv(0, comm.MakeTag(comm.KindApp, 0, 2)); err != nil || p.(*comm.Floats).Vals[0] != 15 {
		t.Fatalf("unsequenced 2nd: %v %v", p, err)
	}
	time.Sleep(30 * time.Millisecond)
	if n := recv.box.Pending(); n != 0 {
		t.Fatalf("%d deduped frames leaked into the mailbox", n)
	}
}

// deadAddr returns a loopback address that refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// TestPeerErrorSurfacesOnClose: a terminally lost stream no longer
// disappears into peer.err — Close reports it.
func TestPeerErrorSurfacesOnClose(t *testing.T) {
	n, err := Listen(0, []string{"127.0.0.1:0", deadAddr(t)}, Options{
		DialTimeout:      200 * time.Millisecond,
		ReconnectTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Send(1, comm.MakeTag(comm.KindApp, 0, 0), &comm.Bytes{Data: []byte("x")}); err != nil {
		t.Fatalf("async send should not fail inline: %v", err)
	}
	time.Sleep(time.Second) // let the dial budget expire and the error stick
	cerr := n.Close()
	if cerr == nil {
		t.Fatal("Close swallowed the dead-peer stream error")
	}
	if !strings.Contains(cerr.Error(), "stream lost") {
		t.Fatalf("Close error lacks stream context: %v", cerr)
	}
}

// TestFailFastSurfacesPeerErrorOnSend: with FailFast, Send itself
// reports the sticky stream error once the reconnect budget is gone.
func TestFailFastSurfacesPeerErrorOnSend(t *testing.T) {
	n, err := Listen(0, []string{"127.0.0.1:0", deadAddr(t)}, Options{
		DialTimeout:      150 * time.Millisecond,
		ReconnectTimeout: 150 * time.Millisecond,
		FailFast:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	tag := comm.MakeTag(comm.KindApp, 0, 0)
	if err := n.Send(1, tag, &comm.Bytes{Data: []byte("x")}); err != nil {
		t.Fatalf("first send should enqueue cleanly: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := n.Send(1, tag, &comm.Bytes{Data: []byte("y")})
		if err != nil {
			if !strings.Contains(err.Error(), "stream lost") {
				t.Fatalf("FailFast send error lacks stream context: %v", err)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("FailFast send never surfaced the dead-peer error")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHealthyClusterCloseReportsNoError: the sticky-error path must not
// produce false positives on a clean run.
func TestHealthyClusterCloseReportsNoError(t *testing.T) {
	nodes, err := LocalCluster(2, Options{RecvTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tag := comm.MakeTag(comm.KindApp, 0, 7)
	if err := nodes[0].Send(1, tag, &comm.Bytes{Data: []byte("ok")}); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[1].Recv(0, tag); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if err := n.Close(); err != nil {
			t.Fatalf("healthy close returned %v", err)
		}
	}
}

// TestReconnectBackoffCapAndRetryMetric pins the bounded-backoff
// contract: against a peer that is gone for good, the dial loop keeps
// probing at the capped rate until the budget expires, and the attempt
// count of the outage lands in the ReconnectRetries histogram — an
// endless-reconnect loop is visible and bounded, not silent and
// unbounded.
func TestReconnectBackoffCapAndRetryMetric(t *testing.T) {
	reg := obs.NewRegistry()
	tm := obs.NewTransportMetrics(reg)
	addrs := []string{"127.0.0.1:0", "127.0.0.1:1"} // port 1: nothing listens
	n, err := Listen(0, addrs, Options{
		DialTimeout:         500 * time.Millisecond,
		MaxReconnectBackoff: 10 * time.Millisecond,
		RecvTimeout:         time.Second,
		Metrics:             tm,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Send(1, comm.MakeTag(comm.KindApp, 0, 0), &comm.Bytes{Data: []byte("void")}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tm.StreamsLost.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream never declared lost")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := tm.ReconnectRetries.Count(); got < 1 {
		t.Fatalf("ReconnectRetries recorded %d outages, want >= 1", got)
	}
	// With the backoff capped at 10ms over a 500ms budget, the loop must
	// have kept probing — an uncapped doubling schedule would sleep most
	// of the budget away in two or three waits.
	if got := tm.ReconnectRetries.Max(); got < 10 {
		t.Fatalf("outage cost %d dial attempts, want >= 10 (backoff cap not applied?)", got)
	}
}
