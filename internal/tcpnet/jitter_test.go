package tcpnet

import (
	"testing"
	"time"
)

// sleepSequence replays the writeLoop's backoff formula against one
// jitter source: the exact schedule a reconnecting writer would sleep.
func sleepSequence(draws int) []time.Duration {
	rng := newJitterRNG()
	backoff := 5 * time.Millisecond
	out := make([]time.Duration, 0, draws)
	for i := 0; i < draws; i++ {
		out = append(out, backoff/2+time.Duration(rng.Int63n(int64(backoff))))
		if backoff < 400*time.Millisecond {
			backoff *= 2
		}
	}
	return out
}

// TestJitterDiffersAcrossWriterIncarnations is the regression test for
// the deterministic-jitter bug: the backoff RNG used to be seeded from
// (rank, to), so every incarnation of the same writer — across stream
// breaks and across whole runs — slept the identical "jitter" sequence,
// and the survivors of a peer reboot re-dialed it in the very lockstep
// jitter exists to break. Entropy seeding makes two incarnations
// astronomically unlikely to agree.
func TestJitterDiffersAcrossWriterIncarnations(t *testing.T) {
	const draws = 16
	a := sleepSequence(draws)
	b := sleepSequence(draws)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("two writer incarnations produced the identical sleep sequence %v", a)
	}
}

// TestJitterSleepBounds pins the backoff envelope: every sleep stays in
// [backoff/2, 3*backoff/2) and the exponential base caps at 400ms, so a
// dead peer is retried promptly at first and never hammered later.
func TestJitterSleepBounds(t *testing.T) {
	seq := sleepSequence(12)
	backoff := 5 * time.Millisecond
	for i, sleep := range seq {
		lo, hi := backoff/2, backoff/2+backoff
		if sleep < lo || sleep >= hi {
			t.Fatalf("draw %d: sleep %v outside [%v, %v)", i, sleep, lo, hi)
		}
		if backoff < 400*time.Millisecond {
			backoff *= 2
		}
	}
	// 5ms doubling under a <400ms guard tops out at 640ms: retries never
	// space out further than ~1s worst case.
	if backoff != 640*time.Millisecond {
		t.Fatalf("backoff cap = %v, want 640ms", backoff)
	}
}
