// Package trace accumulates per-phase, per-layer traffic statistics from
// transport sends. The collected volumes regenerate Figure 5 (the
// "Kylix" per-layer communication profile) directly and feed the netsim
// cost model that converts traffic into modelled cluster time for
// Figures 6-9 and Table I.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"kylix/internal/comm"
)

// LayerTraffic aggregates every message of one (kind, layer) cell.
type LayerTraffic struct {
	// Kind is the protocol phase (config, reduce, gather, ...).
	Kind comm.Kind
	// Layer is the communication layer the messages belong to.
	Layer int
	// Msgs and Bytes are network-wide totals, self-sends included (the
	// paper's Figure 5 counts "packets to its own").
	Msgs  int64
	Bytes int64
	// RawBytes is what the same messages would have cost in the
	// uncompressed wire format (8 bytes per index key, 4 bytes per
	// float32 value). The ratio RawBytes/Bytes is the codec's
	// compression factor at that layer: the index codec's for
	// configuration phases, the value codec's for value-only phases
	// (which equal Bytes only when quantization is off).
	RawBytes int64
	// SelfMsgs/SelfBytes count the self-send subset, so callers can also
	// report pure wire traffic; SelfRawBytes is their uncompressed
	// equivalent, so raw wire traffic is RawBytes - SelfRawBytes.
	SelfMsgs     int64
	SelfBytes    int64
	SelfRawBytes int64
	// MaxNodeBytes/MaxNodeMsgs are the largest per-sender totals; phase
	// completion time is governed by the busiest node.
	MaxNodeBytes int64
	MaxNodeMsgs  int64
	// MaxNodeRecvBytes/MaxNodeRecvMsgs are the largest per-receiver
	// totals. Fan-in is what drives netsim's incast penalty, so the
	// busiest receiver — not just the busiest sender — bounds a layer.
	MaxNodeRecvBytes int64
	MaxNodeRecvMsgs  int64
}

type cellKey struct {
	kind  comm.Kind
	layer int
}

// senderCell is one sender's traffic within one (kind, layer) cell:
// its own totals plus per-receiver attribution.
type senderCell struct {
	msgs, bytes         int64
	rawBytes            int64
	selfMsgs, selfBytes int64
	selfRawBytes        int64
	recvMsgs, recvBytes []int64 // indexed by receiver rank
}

// shard owns one sender's cells. Each sender locks only its own shard,
// so the pipelined hot path — every machine's transport recording
// concurrently — never serializes senders against each other. The
// padding keeps neighbouring shards off one cache line.
type shard struct {
	//kylix:lock trace-shard
	mu    sync.Mutex //kylix:obsfree — a shard section must stay a few loads/stores; observers would serialize senders
	cells map[cellKey]*senderCell
	_     [40]byte
}

// Collector implements comm.Recorder. It is safe for concurrent use;
// recording is sharded per sender, so concurrent senders do not contend.
type Collector struct {
	m       int
	shards  []shard
	invalid atomic.Int64
}

// NewCollector creates a Collector for an m-machine cluster.
func NewCollector(m int) *Collector {
	c := &Collector{m: m, shards: make([]shard, m)}
	for i := range c.shards {
		c.shards[i].cells = make(map[cellKey]*senderCell)
	}
	return c
}

// Record implements comm.Recorder. Samples with an out-of-range sender
// or receiver are rejected entirely — counted by InvalidRecords rather
// than folded into network totals with missing attribution, which
// would silently skew MaxNode* (a bogus rank is a caller bug, not
// traffic).
func (c *Collector) Record(from, to int, tag comm.Tag, bytes int) {
	c.RecordRaw(from, to, tag, bytes, bytes)
}

// RecordRaw implements comm.RawRecorder: like Record, with the
// payload's uncompressed size accounted alongside its wire size.
func (c *Collector) RecordRaw(from, to int, tag comm.Tag, bytes, rawBytes int) {
	if from < 0 || from >= c.m || to < 0 || to >= c.m {
		c.invalid.Add(1)
		return
	}
	k := cellKey{tag.Kind(), tag.Layer()}
	sh := &c.shards[from]
	sh.mu.Lock()
	cl := sh.cells[k]
	if cl == nil {
		cl = &senderCell{recvMsgs: make([]int64, c.m), recvBytes: make([]int64, c.m)}
		sh.cells[k] = cl
	}
	cl.msgs++
	cl.bytes += int64(bytes)
	cl.rawBytes += int64(rawBytes)
	if from == to {
		cl.selfMsgs++
		cl.selfBytes += int64(bytes)
		cl.selfRawBytes += int64(rawBytes)
	}
	cl.recvMsgs[to]++
	cl.recvBytes[to] += int64(bytes)
	sh.mu.Unlock()
}

// InvalidRecords reports how many samples were rejected for an
// out-of-range sender or receiver rank.
func (c *Collector) InvalidRecords() int64 { return c.invalid.Load() }

// Layers returns the aggregated traffic, sorted by kind then layer.
func (c *Collector) Layers() []LayerTraffic {
	type agg struct {
		lt        LayerTraffic
		recvMsgs  []int64
		recvBytes []int64
	}
	cells := make(map[cellKey]*agg)
	for s := range c.shards {
		sh := &c.shards[s]
		sh.mu.Lock()
		for k, cl := range sh.cells {
			a := cells[k]
			if a == nil {
				a = &agg{
					lt:        LayerTraffic{Kind: k.kind, Layer: k.layer},
					recvMsgs:  make([]int64, c.m),
					recvBytes: make([]int64, c.m),
				}
				cells[k] = a
			}
			a.lt.Msgs += cl.msgs
			a.lt.Bytes += cl.bytes
			a.lt.RawBytes += cl.rawBytes
			a.lt.SelfMsgs += cl.selfMsgs
			a.lt.SelfBytes += cl.selfBytes
			a.lt.SelfRawBytes += cl.selfRawBytes
			// The shard index is the sender, so a shard's cell totals are
			// exactly that sender's contribution.
			if cl.bytes > a.lt.MaxNodeBytes {
				a.lt.MaxNodeBytes = cl.bytes
			}
			if cl.msgs > a.lt.MaxNodeMsgs {
				a.lt.MaxNodeMsgs = cl.msgs
			}
			for i := 0; i < c.m; i++ {
				a.recvMsgs[i] += cl.recvMsgs[i]
				a.recvBytes[i] += cl.recvBytes[i]
			}
		}
		sh.mu.Unlock()
	}
	out := make([]LayerTraffic, 0, len(cells))
	for _, a := range cells {
		for i := 0; i < c.m; i++ {
			if a.recvBytes[i] > a.lt.MaxNodeRecvBytes {
				a.lt.MaxNodeRecvBytes = a.recvBytes[i]
			}
			if a.recvMsgs[i] > a.lt.MaxNodeRecvMsgs {
				a.lt.MaxNodeRecvMsgs = a.recvMsgs[i]
			}
		}
		out = append(out, a.lt)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Kind != out[b].Kind {
			return out[a].Kind < out[b].Kind
		}
		return out[a].Layer < out[b].Layer
	})
	return out
}

// KindLayers returns only the cells of one kind, sorted by layer.
func (c *Collector) KindLayers(kind comm.Kind) []LayerTraffic {
	all := c.Layers()
	out := all[:0:0]
	for _, lt := range all {
		if lt.Kind == kind {
			out = append(out, lt)
		}
	}
	return out
}

// TotalBytes sums the byte volume across all layers of a kind.
func (c *Collector) TotalBytes(kind comm.Kind) int64 {
	var total int64
	for _, lt := range c.KindLayers(kind) {
		total += lt.Bytes
	}
	return total
}

// Machines returns the cluster size the collector was built for.
func (c *Collector) Machines() int { return c.m }

// Reset clears all cells (e.g. between the configure and reduce timings
// of an experiment).
func (c *Collector) Reset() {
	for s := range c.shards {
		sh := &c.shards[s]
		sh.mu.Lock()
		sh.cells = make(map[cellKey]*senderCell)
		sh.mu.Unlock()
	}
	c.invalid.Store(0)
}

// String renders a compact per-layer table for logs.
func (c *Collector) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %5s %10s %14s %14s %14s\n", "kind", "layer", "msgs", "bytes", "maxNodeBytes", "maxRecvBytes")
	for _, lt := range c.Layers() {
		fmt.Fprintf(&b, "%-14s %5d %10d %14d %14d %14d\n", lt.Kind, lt.Layer, lt.Msgs, lt.Bytes, lt.MaxNodeBytes, lt.MaxNodeRecvBytes)
	}
	return b.String()
}
