// Package trace accumulates per-phase, per-layer traffic statistics from
// transport sends. The collected volumes regenerate Figure 5 (the
// "Kylix" per-layer communication profile) directly and feed the netsim
// cost model that converts traffic into modelled cluster time for
// Figures 6-9 and Table I.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"kylix/internal/comm"
)

// LayerTraffic aggregates every message of one (kind, layer) cell.
type LayerTraffic struct {
	// Kind is the protocol phase (config, reduce, gather, ...).
	Kind comm.Kind
	// Layer is the communication layer the messages belong to.
	Layer int
	// Msgs and Bytes are network-wide totals, self-sends included (the
	// paper's Figure 5 counts "packets to its own").
	Msgs  int64
	Bytes int64
	// SelfMsgs/SelfBytes count the self-send subset, so callers can also
	// report pure wire traffic.
	SelfMsgs  int64
	SelfBytes int64
	// MaxNodeBytes/MaxNodeMsgs are the largest per-sender totals; phase
	// completion time is governed by the busiest node.
	MaxNodeBytes int64
	MaxNodeMsgs  int64
}

type cellKey struct {
	kind  comm.Kind
	layer int
}

type cell struct {
	msgs, bytes         int64
	selfMsgs, selfBytes int64
	perNodeBytes        []int64
	perNodeMsgs         []int64
}

// Collector implements comm.Recorder. It is safe for concurrent use.
type Collector struct {
	m     int
	mu    sync.Mutex
	cells map[cellKey]*cell
}

// NewCollector creates a Collector for an m-machine cluster.
func NewCollector(m int) *Collector {
	return &Collector{m: m, cells: make(map[cellKey]*cell)}
}

// Record implements comm.Recorder.
func (c *Collector) Record(from, to int, tag comm.Tag, bytes int) {
	k := cellKey{tag.Kind(), tag.Layer()}
	c.mu.Lock()
	cl := c.cells[k]
	if cl == nil {
		cl = &cell{perNodeBytes: make([]int64, c.m), perNodeMsgs: make([]int64, c.m)}
		c.cells[k] = cl
	}
	cl.msgs++
	cl.bytes += int64(bytes)
	if from == to {
		cl.selfMsgs++
		cl.selfBytes += int64(bytes)
	}
	if from >= 0 && from < c.m {
		cl.perNodeBytes[from] += int64(bytes)
		cl.perNodeMsgs[from]++
	}
	c.mu.Unlock()
}

// Layers returns the aggregated traffic, sorted by kind then layer.
func (c *Collector) Layers() []LayerTraffic {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]LayerTraffic, 0, len(c.cells))
	for k, cl := range c.cells {
		lt := LayerTraffic{
			Kind: k.kind, Layer: k.layer,
			Msgs: cl.msgs, Bytes: cl.bytes,
			SelfMsgs: cl.selfMsgs, SelfBytes: cl.selfBytes,
		}
		for i := 0; i < c.m; i++ {
			if cl.perNodeBytes[i] > lt.MaxNodeBytes {
				lt.MaxNodeBytes = cl.perNodeBytes[i]
			}
			if cl.perNodeMsgs[i] > lt.MaxNodeMsgs {
				lt.MaxNodeMsgs = cl.perNodeMsgs[i]
			}
		}
		out = append(out, lt)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Kind != out[b].Kind {
			return out[a].Kind < out[b].Kind
		}
		return out[a].Layer < out[b].Layer
	})
	return out
}

// KindLayers returns only the cells of one kind, sorted by layer.
func (c *Collector) KindLayers(kind comm.Kind) []LayerTraffic {
	all := c.Layers()
	out := all[:0:0]
	for _, lt := range all {
		if lt.Kind == kind {
			out = append(out, lt)
		}
	}
	return out
}

// TotalBytes sums the byte volume across all layers of a kind.
func (c *Collector) TotalBytes(kind comm.Kind) int64 {
	var total int64
	for _, lt := range c.KindLayers(kind) {
		total += lt.Bytes
	}
	return total
}

// Machines returns the cluster size the collector was built for.
func (c *Collector) Machines() int { return c.m }

// Reset clears all cells (e.g. between the configure and reduce timings
// of an experiment).
func (c *Collector) Reset() {
	c.mu.Lock()
	c.cells = make(map[cellKey]*cell)
	c.mu.Unlock()
}

// String renders a compact per-layer table for logs.
func (c *Collector) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %5s %10s %14s %14s\n", "kind", "layer", "msgs", "bytes", "maxNodeBytes")
	for _, lt := range c.Layers() {
		fmt.Fprintf(&b, "%-14s %5d %10d %14d %14d\n", lt.Kind, lt.Layer, lt.Msgs, lt.Bytes, lt.MaxNodeBytes)
	}
	return b.String()
}
