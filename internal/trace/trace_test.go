package trace

import (
	"strings"
	"sync"
	"testing"

	"kylix/internal/comm"
)

func TestCollectorAggregates(t *testing.T) {
	c := NewCollector(4)
	tag1 := comm.MakeTag(comm.KindConfig, 1, 0)
	tag2 := comm.MakeTag(comm.KindConfig, 2, 0)
	c.Record(0, 1, tag1, 100)
	c.Record(0, 0, tag1, 50) // self send
	c.Record(1, 2, tag1, 100)
	c.Record(2, 3, tag2, 10)

	layers := c.KindLayers(comm.KindConfig)
	if len(layers) != 2 {
		t.Fatalf("want 2 layers, got %d", len(layers))
	}
	l1 := layers[0]
	if l1.Layer != 1 || l1.Msgs != 3 || l1.Bytes != 250 {
		t.Fatalf("layer1 = %+v", l1)
	}
	if l1.SelfMsgs != 1 || l1.SelfBytes != 50 {
		t.Fatalf("self accounting wrong: %+v", l1)
	}
	if l1.MaxNodeBytes != 150 || l1.MaxNodeMsgs != 2 {
		t.Fatalf("max-node accounting wrong: %+v", l1)
	}
	if c.TotalBytes(comm.KindConfig) != 260 {
		t.Fatalf("total = %d", c.TotalBytes(comm.KindConfig))
	}
	if c.TotalBytes(comm.KindReduce) != 0 {
		t.Fatal("unexpected reduce traffic")
	}
}

func TestCollectorLayersSorted(t *testing.T) {
	c := NewCollector(2)
	c.Record(0, 1, comm.MakeTag(comm.KindReduce, 3, 0), 1)
	c.Record(0, 1, comm.MakeTag(comm.KindConfig, 2, 0), 1)
	c.Record(0, 1, comm.MakeTag(comm.KindConfig, 1, 0), 1)
	layers := c.Layers()
	if len(layers) != 3 {
		t.Fatalf("want 3 cells, got %d", len(layers))
	}
	if layers[0].Kind != comm.KindConfig || layers[0].Layer != 1 ||
		layers[1].Layer != 2 || layers[2].Kind != comm.KindReduce {
		t.Fatalf("not sorted: %+v", layers)
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector(2)
	c.Record(0, 1, comm.MakeTag(comm.KindConfig, 1, 0), 9)
	c.Reset()
	if len(c.Layers()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestCollectorMachines(t *testing.T) {
	if NewCollector(7).Machines() != 7 {
		t.Fatal("Machines() wrong")
	}
}

func TestCollectorString(t *testing.T) {
	c := NewCollector(2)
	c.Record(0, 1, comm.MakeTag(comm.KindGather, 1, 0), 42)
	s := c.String()
	if !strings.Contains(s, "gather") || !strings.Contains(s, "42") {
		t.Fatalf("String() = %q", s)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Record(g, (g+1)%8, comm.MakeTag(comm.KindReduce, 1, 0), 10)
			}
		}(g)
	}
	wg.Wait()
	layers := c.KindLayers(comm.KindReduce)
	if len(layers) != 1 || layers[0].Msgs != 8000 || layers[0].Bytes != 80000 {
		t.Fatalf("lost samples: %+v", layers)
	}
}
