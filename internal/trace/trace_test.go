package trace

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"kylix/internal/comm"
)

func TestCollectorAggregates(t *testing.T) {
	c := NewCollector(4)
	tag1 := comm.MakeTag(comm.KindConfig, 1, 0)
	tag2 := comm.MakeTag(comm.KindConfig, 2, 0)
	c.Record(0, 1, tag1, 100)
	c.Record(0, 0, tag1, 50) // self send
	c.Record(1, 2, tag1, 100)
	c.Record(2, 3, tag2, 10)

	layers := c.KindLayers(comm.KindConfig)
	if len(layers) != 2 {
		t.Fatalf("want 2 layers, got %d", len(layers))
	}
	l1 := layers[0]
	if l1.Layer != 1 || l1.Msgs != 3 || l1.Bytes != 250 {
		t.Fatalf("layer1 = %+v", l1)
	}
	if l1.SelfMsgs != 1 || l1.SelfBytes != 50 {
		t.Fatalf("self accounting wrong: %+v", l1)
	}
	if l1.MaxNodeBytes != 150 || l1.MaxNodeMsgs != 2 {
		t.Fatalf("max-node accounting wrong: %+v", l1)
	}
	if c.TotalBytes(comm.KindConfig) != 260 {
		t.Fatalf("total = %d", c.TotalBytes(comm.KindConfig))
	}
	if c.TotalBytes(comm.KindReduce) != 0 {
		t.Fatal("unexpected reduce traffic")
	}
}

func TestCollectorLayersSorted(t *testing.T) {
	c := NewCollector(2)
	c.Record(0, 1, comm.MakeTag(comm.KindReduce, 3, 0), 1)
	c.Record(0, 1, comm.MakeTag(comm.KindConfig, 2, 0), 1)
	c.Record(0, 1, comm.MakeTag(comm.KindConfig, 1, 0), 1)
	layers := c.Layers()
	if len(layers) != 3 {
		t.Fatalf("want 3 cells, got %d", len(layers))
	}
	if layers[0].Kind != comm.KindConfig || layers[0].Layer != 1 ||
		layers[1].Layer != 2 || layers[2].Kind != comm.KindReduce {
		t.Fatalf("not sorted: %+v", layers)
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector(2)
	c.Record(0, 1, comm.MakeTag(comm.KindConfig, 1, 0), 9)
	c.Reset()
	if len(c.Layers()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestCollectorMachines(t *testing.T) {
	if NewCollector(7).Machines() != 7 {
		t.Fatal("Machines() wrong")
	}
}

func TestCollectorString(t *testing.T) {
	c := NewCollector(2)
	c.Record(0, 1, comm.MakeTag(comm.KindGather, 1, 0), 42)
	s := c.String()
	if !strings.Contains(s, "gather") || !strings.Contains(s, "42") {
		t.Fatalf("String() = %q", s)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Record(g, (g+1)%8, comm.MakeTag(comm.KindReduce, 1, 0), 10)
			}
		}(g)
	}
	wg.Wait()
	layers := c.KindLayers(comm.KindReduce)
	if len(layers) != 1 || layers[0].Msgs != 8000 || layers[0].Bytes != 80000 {
		t.Fatalf("lost samples: %+v", layers)
	}
}

func TestCollectorRejectsInvalidRanks(t *testing.T) {
	c := NewCollector(4)
	tag := comm.MakeTag(comm.KindReduce, 1, 0)
	c.Record(-1, 0, tag, 10)
	c.Record(4, 0, tag, 10)
	c.Record(0, -1, tag, 10)
	c.Record(0, 4, tag, 10)
	if len(c.Layers()) != 0 {
		t.Fatalf("invalid ranks produced traffic cells: %+v", c.Layers())
	}
	if got := c.InvalidRecords(); got != 4 {
		t.Fatalf("InvalidRecords = %d, want 4", got)
	}
	c.Record(0, 3, tag, 10) // valid boundary ranks still count
	c.Record(3, 0, tag, 10)
	if got := c.KindLayers(comm.KindReduce)[0].Msgs; got != 2 {
		t.Fatalf("valid boundary records lost: msgs = %d", got)
	}
	c.Reset()
	if c.InvalidRecords() != 0 {
		t.Fatal("Reset did not clear the invalid count")
	}
}

func TestCollectorPerReceiverMax(t *testing.T) {
	c := NewCollector(4)
	tag := comm.MakeTag(comm.KindReduce, 1, 0)
	// Rank 3 is the fan-in hotspot: every sender targets it.
	for from := 0; from < 4; from++ {
		c.Record(from, 3, tag, 100)
	}
	c.Record(0, 1, tag, 50)
	lt := c.KindLayers(comm.KindReduce)[0]
	if lt.MaxNodeRecvBytes != 400 || lt.MaxNodeRecvMsgs != 4 {
		t.Fatalf("per-receiver max = (%d bytes, %d msgs), want (400, 4)", lt.MaxNodeRecvBytes, lt.MaxNodeRecvMsgs)
	}
	// Per-sender max is unchanged by fan-in: the busiest sender is rank 0
	// with 150 bytes.
	if lt.MaxNodeBytes != 150 || lt.MaxNodeMsgs != 2 {
		t.Fatalf("per-sender max = (%d bytes, %d msgs), want (150, 2)", lt.MaxNodeBytes, lt.MaxNodeMsgs)
	}
}

// TestCollectorHammer drives Record, Layers, String and Reset from many
// goroutines at once; under -race it proves the sharded collector's
// synchronization.
func TestCollectorHammer(t *testing.T) {
	const m = 8
	c := NewCollector(m)
	var recorders, reader sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < m; g++ {
		recorders.Add(1)
		go func(g int) {
			defer recorders.Done()
			tag := comm.MakeTag(comm.KindReduce, 1+g%3, 0)
			for i := 0; i < 5000; i++ {
				c.Record(g, (g+i)%m, tag, 8)
			}
		}(g)
	}
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = c.Layers()
			_ = c.String()
			c.Reset()
		}
	}()
	recorders.Wait()
	close(stop)
	reader.Wait()
	// No totals to assert (Reset races with Record by design); the test's
	// value is its -race cleanliness and absence of panics.
	_ = c.Layers()
}

// BenchmarkCollectorRecordParallel measures Record under full sender
// parallelism — the transport hot path of every machine at once. The
// per-sender sharding means throughput should scale with senders
// instead of collapsing onto one global mutex.
func BenchmarkCollectorRecordParallel(b *testing.B) {
	const m = 16
	c := NewCollector(m)
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		from := int(next.Add(1)-1) % m
		tag := comm.MakeTag(comm.KindReduce, 1, 0)
		to := 0
		for pb.Next() {
			c.Record(from, to, tag, 64)
			to = (to + 1) % m
		}
	})
}
