package bench

import (
	"fmt"
	"os"
	"testing"

	"kylix/internal/netsim"
)

// TestRenderAllQuick prints every table at quick scale when -v is used;
// it doubles as an end-to-end smoke test of the full harness.
func TestRenderAllQuick(t *testing.T) {
	sc := QuickScale()
	tables := []*Table{Figure2(netsim.EC2()), Figure4()}
	for _, gen := range []func(Scale) (*Table, error){Figure5, Figure6, Figure7, TableI, Figure8, Figure9} {
		tab, err := gen(sc)
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, tab)
	}
	if os.Getenv("BENCH_RENDER") != "" {
		for _, tab := range tables {
			fmt.Println(tab.Render())
		}
	}
}
