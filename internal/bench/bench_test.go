package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"kylix/internal/netsim"
)

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("table %q missing cell (%d,%d):\n%s", tab.Title, row, col, tab.Render())
	}
	return tab.Rows[row][col]
}

func cellF(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSuffix(cell(t, tab, row, col), "x"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric", row, col, s)
	}
	return v
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Note: "n", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	s := tab.Render()
	for _, want := range []string{"== T ==", "a", "bb", "1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}

func TestScaleDegrees(t *testing.T) {
	cases := []struct {
		degrees []int
		m       int
	}{
		{[]int{8, 4, 2}, 64}, {[]int{8, 4, 2}, 16}, {[]int{16, 4}, 8},
		{[]int{8, 4, 2}, 6}, {[]int{2}, 2}, {[]int{4}, 1},
	}
	for _, c := range cases {
		got := scaleDegrees(c.degrees, c.m)
		prod := 1
		for _, d := range got {
			prod *= d
		}
		if prod != c.m {
			t.Errorf("scaleDegrees(%v, %d) = %v (product %d)", c.degrees, c.m, got, prod)
		}
	}
}

func TestFigure2ModelShape(t *testing.T) {
	tab := Figure2(netsim.EC2())
	if len(tab.Rows) < 5 {
		t.Fatal("too few sweep points")
	}
	prev := -1.0
	for r := range tab.Rows {
		g := cellF(t, tab, r, 1)
		if g <= prev {
			t.Fatalf("goodput not monotone at row %d:\n%s", r, tab.Render())
		}
		prev = g
	}
	// The 5 MB row reaches at least 75% of peak.
	for r := range tab.Rows {
		if cell(t, tab, r, 0) == "5.00" && cellF(t, tab, r, 2) < 75 {
			t.Fatalf("5MB packets below 75%%:\n%s", tab.Render())
		}
	}
}

func TestFigure2Measured(t *testing.T) {
	if testing.Short() {
		t.Skip("network sweep")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts throughput shapes")
	}
	tab, err := Figure2Measured(30 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Large packets must beat tiny ones on loopback too.
	first := cellF(t, tab, 0, 1)
	last := cellF(t, tab, len(tab.Rows)-1, 1)
	if last <= first {
		t.Fatalf("no throughput rise with packet size:\n%s", tab.Render())
	}
}

func TestFigure4Shape(t *testing.T) {
	tab := Figure4()
	// Density increases down the rows for every alpha column.
	for col := 1; col <= 3; col++ {
		prev := -1.0
		for r := range tab.Rows {
			v := cellF(t, tab, r, col)
			if v < prev {
				t.Fatalf("density not monotone in lambda (col %d):\n%s", col, tab.Render())
			}
			prev = v
		}
	}
	// At lambda = lambda_0.9 the density is ~0.9 in every column.
	for r := range tab.Rows {
		if cell(t, tab, r, 0) == "1.000" {
			for col := 1; col <= 3; col++ {
				if v := cellF(t, tab, r, col); v < 0.88 || v > 0.92 {
					t.Fatalf("normalization broken (col %d = %f)", col, v)
				}
			}
		}
	}
}

func TestFigure5KylixShape(t *testing.T) {
	tab, err := Figure5(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// Per dataset: measured volume non-increasing down the layers.
	byDataset := map[string][]float64{}
	for r := range tab.Rows {
		ds := cell(t, tab, r, 0)
		byDataset[ds] = append(byDataset[ds], cellF(t, tab, r, 3))
	}
	if len(byDataset) != 2 {
		t.Fatalf("expected 2 datasets:\n%s", tab.Render())
	}
	for ds, vols := range byDataset {
		for i := 1; i < len(vols); i++ {
			if vols[i] > vols[i-1]*1.05 {
				t.Fatalf("%s: volume grew at layer %d (%v)\n%s", ds, i, vols, tab.Render())
			}
		}
		// Near-optimality: total within layers x top volume.
		total := 0.0
		for _, v := range vols {
			total += v
		}
		if total > float64(len(vols))*vols[0] {
			t.Fatalf("%s: total %f exceeds layers x top %f", ds, total, vols[0])
		}
	}
}

func TestFigure6OptimalWins(t *testing.T) {
	tab, err := Figure6(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in dataset groups with "optimal" first; every other
	// topology's vsOptimal ratio must be > 1.
	for r := range tab.Rows {
		topoName := cell(t, tab, r, 1)
		ratio := cellF(t, tab, r, 6)
		if topoName == "optimal" {
			if ratio != 1.0 {
				t.Fatalf("optimal row ratio %f:\n%s", ratio, tab.Render())
			}
		} else if ratio <= 1.0 {
			t.Fatalf("%s not slower than optimal:\n%s", topoName, tab.Render())
		}
	}
}

func TestFigure7ThreadingShape(t *testing.T) {
	tab, err := Figure7(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	totals := make([]float64, len(tab.Rows))
	for r := range tab.Rows {
		totals[r] = cellF(t, tab, r, 3)
	}
	// Monotone non-increasing; 1->4 threads is a big win; 16->32 is nil.
	for i := 1; i < len(totals); i++ {
		if totals[i] > totals[i-1] {
			t.Fatalf("threading hurt:\n%s", tab.Render())
		}
	}
	if totals[0] < 1.5*totals[2] {
		t.Fatalf("1->4 threads gain too small:\n%s", tab.Render())
	}
	if totals[len(totals)-1] != totals[len(totals)-2] {
		t.Fatalf("gains continued past 16 threads:\n%s", tab.Render())
	}
}

func TestTableIShape(t *testing.T) {
	tab, err := TableI(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("want 6 rows:\n%s", tab.Render())
	}
	// Replicated rows (2..5) have identical-ish times regardless of dead
	// count: within 30% of each other.
	base := cellF(t, tab, 2, 5)
	for r := 3; r <= 5; r++ {
		v := cellF(t, tab, r, 5)
		if v > base*1.3 || v < base*0.7 {
			t.Fatalf("replicated reduce time varies with failures:\n%s", tab.Render())
		}
	}
	// Replication costs more than the half-size unreplicated network but
	// less than 3x (the paper: +25% config, +60% reduce).
	halfReduce := cellF(t, tab, 1, 5)
	replReduce := cellF(t, tab, 2, 5)
	if replReduce < halfReduce || replReduce > 3*halfReduce {
		t.Fatalf("replication overhead out of band (half %f, repl %f):\n%s", halfReduce, replReduce, tab.Render())
	}
}

func TestFigure8SystemOrdering(t *testing.T) {
	tab, err := Figure8(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// For every dataset: kylix <= direct < mapreduce, with mapreduce
	// orders of magnitude slower.
	for r := 0; r < len(tab.Rows); r += 3 {
		kylixSec := cellF(t, tab, r, 2)
		directSec := cellF(t, tab, r+1, 2)
		mrSec := cellF(t, tab, r+2, 2)
		if directSec < kylixSec {
			t.Fatalf("direct beat kylix:\n%s", tab.Render())
		}
		if r == 0 && directSec < 2.5*kylixSec {
			t.Fatalf("twitter-like direct gap only %.1fx, paper band is 3-7x:\n%s", directSec/kylixSec, tab.Render())
		}
		if mrSec < 50*kylixSec {
			t.Fatalf("hadoop-proxy gap only %.0fx, want >> 50x:\n%s", mrSec/kylixSec, tab.Render())
		}
	}
}

func TestFigure9ScalingShape(t *testing.T) {
	sc := QuickScale()
	tab, err := Figure9(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatalf("too few sizes:\n%s", tab.Render())
	}
	// Compute time per iteration shrinks with machines; comm share grows.
	firstCompute := cellF(t, tab, 0, 2)
	lastCompute := cellF(t, tab, len(tab.Rows)-1, 2)
	if lastCompute >= firstCompute {
		t.Fatalf("compute did not shrink with machines:\n%s", tab.Render())
	}
	firstShare := cellF(t, tab, 0, 6)
	lastShare := cellF(t, tab, len(tab.Rows)-1, 6)
	if lastShare < firstShare {
		t.Fatalf("comm share did not grow with machines:\n%s", tab.Render())
	}
	// Speedup at the largest size is substantial (paper: 7-11x at 64
	// over 4; the quick scale lands lower but must clear 3x).
	if sp := cellF(t, tab, len(tab.Rows)-1, 5); sp < 3 {
		t.Fatalf("final speedup only %.1fx:\n%s", sp, tab.Render())
	}
}
