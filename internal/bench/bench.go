// Package bench regenerates every table and figure of the paper's
// evaluation section (ICPP 2014, §VII) as text tables: the packet-size
// throughput curve (Fig 2), the density function (Fig 4), per-layer
// communication volumes (Fig 5), topology timing comparisons (Fig 6),
// the thread-count sweep (Fig 7), the system comparison on PageRank
// (Fig 8), scaling with cluster size (Fig 9), and the fault-tolerance
// cost table (Table I).
//
// Workloads are synthetic power-law datasets calibrated to the paper's
// measured partition densities (0.21 Twitter-like, 0.035 Yahoo-like) at
// reduced scale; timing columns are modelled EC2 seconds obtained by
// pushing the *measured* traffic of real protocol runs through the
// netsim cost model. Shape fidelity — who wins, by what factor, where
// curves bend — is the reproduction target, not absolute seconds (see
// EXPERIMENTS.md).
package bench

import (
	"fmt"
	"strings"

	"kylix/internal/netsim"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		for _, line := range strings.Split(t.Note, "\n") {
			fmt.Fprintf(&b, "   %s\n", line)
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Scale sizes the synthetic experiments. The paper's setup is 64
// machines over 60M/1.4B-feature datasets; Default shrinks the feature
// space (keeping densities and exponents) so everything runs in seconds
// on one host, and Quick shrinks further for unit tests.
type Scale struct {
	// N is the feature-space (vertex) size.
	N int64
	// Machines is the cluster size for the 64-node experiments.
	Machines int
	// EdgesPerVertex sizes the PageRank graphs.
	EdgesPerVertex int
	// PageRankIters is the iteration count for system comparisons.
	PageRankIters int
	// Seed fixes all synthetic draws.
	Seed int64
}

// DefaultScale is used by cmd/kylix-bench.
func DefaultScale() Scale {
	return Scale{N: 1 << 16, Machines: 64, EdgesPerVertex: 16, PageRankIters: 3, Seed: 20140901}
}

// QuickScale keeps unit tests fast: the feature space shrinks but the
// machine count stays at the paper's 64 — the topology contrasts
// (8x4x2 vs 64 vs 2^6) only exist at full cluster width.
func QuickScale() Scale {
	return Scale{N: 1 << 13, Machines: 64, EdgesPerVertex: 8, PageRankIters: 2, Seed: 20140901}
}

// scaledEC2 returns the EC2 cost model with its per-message constants
// shrunk by the experiment's data-scale factor: the ratio of the
// experiment's per-node data bytes to the corresponding paper
// experiment's. Scaling the half-throughput packet size and latency
// together with the data keeps the dimensionless message-size/knee
// ratios — and therefore every figure's shape — equal to the full-size
// experiment's. (Incast, copy and compute terms are ratios of byte
// volumes and need no scaling.)
func scaledEC2(expNodeBytes, paperNodeBytes float64) netsim.Model {
	m := netsim.EC2()
	f := expNodeBytes / paperNodeBytes
	m.MsgOverheadSec *= f
	m.LatencySec *= f
	return m
}

// nodeBytes is the expected per-node data volume of a profile at a
// given feature count (4-byte elements).
func (p profile) nodeBytes(n int64) float64 { return p.density * float64(n) * 4 }

// modelFor builds the scaled model for a profile at experiment scale.
func modelFor(p profile, sc Scale) netsim.Model {
	return scaledEC2(p.nodeBytes(sc.N), p.paperNodeBytes)
}

// The two dataset profiles of the evaluation.
type profile struct {
	name    string
	density float64
	alpha   float64
	// degrees is the paper's optimal configuration at 64 machines.
	degrees []int
	// paperNodeBytes is the per-node data volume of the corresponding
	// paper experiment (density x vertices x 4 bytes), the anchor the
	// cost model is scaled against.
	paperNodeBytes float64
}

func twitterProfile() profile {
	return profile{
		name: "twitter-like", density: 0.21, alpha: 0.8,
		degrees:        []int{8, 4, 2},
		paperNodeBytes: 0.21 * 60e6 * 4, // ~50 MB
	}
}

func yahooProfile() profile {
	return profile{
		name: "yahoo-like", density: 0.035, alpha: 0.8,
		degrees:        []int{16, 4},
		paperNodeBytes: 0.035 * 1.4e9 * 4, // ~196 MB
	}
}

// scaleDegrees adapts a 64-machine degree vector to a smaller test
// cluster while keeping the heterogeneous shape (largest first).
func scaleDegrees(degrees []int, m int) []int {
	prod := 1
	for _, d := range degrees {
		prod *= d
	}
	if prod == m {
		return degrees
	}
	// Factor m greedily into non-increasing factors echoing the shape.
	var out []int
	remaining := m
	for _, d := range degrees {
		if remaining == 1 {
			break
		}
		f := gcd(remaining, d)
		for f < 2 && remaining > 1 {
			f = smallestFactor(remaining)
		}
		if f > remaining {
			f = remaining
		}
		out = append(out, f)
		remaining /= f
	}
	for remaining > 1 {
		f := smallestFactor(remaining)
		out = append(out, f)
		remaining /= f
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func smallestFactor(n int) int {
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return d
		}
	}
	return n
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func f6(v float64) string  { return fmt.Sprintf("%.6f", v) }
func fi(v int64) string    { return fmt.Sprintf("%d", v) }
func fmtMB(v int64) string { return fmt.Sprintf("%.2f", float64(v)/(1<<20)) }
