//go:build race

package bench

// raceEnabled reports that the race detector is instrumenting this
// build; performance-shape assertions are skipped under it.
const raceEnabled = true
